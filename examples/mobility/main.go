// Mobility: the robustness story of the paper's §2 — a user walks out
// of WiFi range mid-stream. MSPlayer keeps playing over LTE while the
// single-path WiFi player stalls until connectivity returns.
//
//	go run ./examples/mobility
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/netem"
)

func run(label string, sel msplayer.PathSelection) {
	tb, err := msplayer.NewTestbed(msplayer.TestbedProfile(3))
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()

	// 60 s into the session, WiFi disappears for 50 s: long enough to
	// drain a full playout buffer. Testbed.Inject makes the outage land
	// at a deterministic virtual instant.
	defer tb.Inject(func(p *netem.Participant) {
		p.Sleep(60 * time.Second)
		tb.WiFi().SetAlive(false)
		p.Sleep(50 * time.Second)
		tb.WiFi().SetAlive(true)
	})()

	m, err := tb.Stream(context.Background(), msplayer.SessionConfig{
		Scheduler: msplayer.NewHarmonicScheduler(msplayer.DefaultBaseChunk, msplayer.DefaultDelta),
		Paths:     sel,
	})
	if err != nil {
		fmt.Printf("%-10s stream error: %v\n", label, err)
		return
	}
	var stall time.Duration
	for _, s := range m.Stalls {
		stall += s.Duration
	}
	fmt.Printf("%-10s delivered %5.1f MB, %d stall(s) totalling %5.1fs",
		label, float64(m.TotalBytes)/1e6, len(m.Stalls), stall.Seconds())
	if wifi := m.Paths[0]; wifi.Failures > 0 || wifi.Rebootstraps > 0 {
		fmt.Printf("  (wifi: %d failed requests, %d re-bootstraps)", wifi.Failures, wifi.Rebootstraps)
	}
	fmt.Println()
}

func main() {
	fmt.Println("50s WiFi outage during a 5-minute stream:")
	run("MSPlayer", msplayer.BothPaths)
	run("WiFi-only", msplayer.WiFiOnly)
}
