// YouTube bootstrap walkthrough: performs MSPlayer's multi-source
// bootstrap by hand against the emulated YouTube origin — per-network
// DNS views, the secure watch request, JSON decoding, URL synthesis
// with the signed token, and the first range requests on both paths —
// printing each step with its emulated timestamp.
//
//	go run ./examples/youtube
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"

	"repro"
	"repro/internal/httpx"
	"repro/internal/netem"
	"repro/internal/origin"
)

func main() {
	tb, err := msplayer.NewTestbed(msplayer.YouTubeProfile(1))
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()
	clock := tb.Clock()
	t0 := clock.Now()
	stamp := func(format string, args ...any) {
		fmt.Printf("[%8.3fs] %s\n", clock.Now().Sub(t0).Seconds(), fmt.Sprintf(format, args...))
	}

	for _, iface := range []*netem.Interface{tb.WiFi(), tb.LTE()} {
		network := iface.Name()
		stamp("--- path %q ---", network)

		// 1. Resolve the web proxy through this network's DNS view.
		proxies, err := tb.Cluster().Resolver().Lookup(network, origin.WebProxyName)
		if err != nil {
			log.Fatal(err)
		}
		stamp("dns(%s) %s -> %v", network, origin.WebProxyName, proxies)

		// 2. Secure watch request: TCP + emulated TLS + GET /watch.
		client := httpx.NewClient(iface)
		resp, err := client.Get(fmt.Sprintf("http://%s/watch?v=qjT4T2gU9sM", proxies[0]))
		if err != nil {
			log.Fatal(err)
		}
		var info origin.VideoInfo
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		stamp("JSON decoded: %q by %s, %ds long, %d formats, servers %v, token %.16s...",
			info.Title, info.Author, info.LengthSeconds, len(info.Formats),
			info.VideoServers, info.Token)

		// 3. Synthesize the videoplayback URL and fetch the first chunk.
		url := info.PlaybackURL(info.VideoServers[0], 22)
		body, err := httpx.GetRange(context.Background(), client, url, 0, 256<<10-1)
		if err != nil {
			log.Fatal(err)
		}
		stamp("first 256 KB chunk fetched (%d bytes) from %s", len(body), info.VideoServers[0])

		// 4. Tokens are network-bound: replaying this one on the other
		// network's replica is rejected.
		other := tb.LTE()
		if network == "lte" {
			other = tb.WiFi()
		}
		otherServers, _ := tb.Cluster().Resolver().Lookup(other.Name(), origin.VideoServersName)
		crossURL := info.PlaybackURL(otherServers[0], 22)
		_, err = httpx.GetRange(context.Background(), httpx.NewClient(other), crossURL, 0, 1023)
		var se *httpx.StatusError
		if errors.As(err, &se) && se.Code == http.StatusForbidden {
			stamp("cross-network token replay correctly rejected (403)")
		} else if err != nil {
			stamp("cross-network fetch failed: %v", err)
		} else {
			stamp("WARNING: cross-network token replay was accepted")
		}
		client.CloseIdleConnections()
	}
	fmt.Println("\nthe per-path bootstrap above is exactly what the player automates;")
	fmt.Println("note the WiFi path finishing every step ahead of LTE (the head start).")
}
