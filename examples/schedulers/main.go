// Schedulers: compare the three MSPlayer chunk schedulers (Ratio
// baseline, EWMA, Harmonic) under oscillating LTE bandwidth — the
// conditions where dynamic chunk-size adjustment pays off.
//
//	go run ./examples/schedulers
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/stats"
)

func main() {
	const reps = 5
	fmt.Println("40s pre-buffer under oscillating LTE bandwidth (5 runs each):")
	for _, name := range []string{"ratio", "ewma", "harmonic"} {
		var xs []float64
		for rep := 0; rep < reps; rep++ {
			xs = append(xs, runOnce(name, int64(rep)))
		}
		s := stats.Summarize(xs)
		fmt.Printf("  %-9s median %5.2fs  (min %5.2fs  max %5.2fs  std %4.2fs)\n",
			name, s.Median, s.Min, s.Max, s.Std)
	}
	fmt.Println("\nthe dynamic schedulers shrink the slow path's chunks when its")
	fmt.Println("bandwidth dips, so both transfers keep finishing together; the")
	fmt.Println("Ratio baseline reacts to single samples and swings wildly.")
}

func runOnce(scheduler string, seed int64) float64 {
	p := msplayer.TestbedProfile(seed*17 + 5)
	// Strong oscillation on LTE: ±60% swings every few seconds.
	p.LTE.Sigma = 0.6
	p.LTE.VaryEvery = 2 * time.Second
	tb, err := msplayer.NewTestbed(p)
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()

	var sched msplayer.Scheduler
	switch scheduler {
	case "ratio":
		sched = msplayer.NewRatioScheduler(msplayer.DefaultBaseChunk)
	case "ewma":
		sched = msplayer.NewEWMAScheduler(msplayer.DefaultBaseChunk, msplayer.DefaultDelta, msplayer.DefaultAlpha)
	case "harmonic":
		sched = msplayer.NewHarmonicScheduler(msplayer.DefaultBaseChunk, msplayer.DefaultDelta)
	}
	m, err := tb.Stream(context.Background(), msplayer.SessionConfig{
		Scheduler:          sched,
		Paths:              msplayer.BothPaths,
		StopAfterPreBuffer: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	return m.PreBufferTime.Seconds()
}
