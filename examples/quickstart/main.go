// Quickstart: stream one HD video with MSPlayer over an emulated
// WiFi+LTE testbed and print the start-up metrics.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	// A testbed is a fully emulated environment: two access networks
	// (WiFi ~9.5 Mb/s / 25 ms RTT, LTE ~8 Mb/s / 70 ms RTT) and a
	// YouTube-like origin with two video-server replicas per network.
	// It runs in virtual time: emulated seconds cost milliseconds.
	tb, err := msplayer.NewTestbed(msplayer.TestbedProfile(1))
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()

	// Stream with MSPlayer's default configuration: the Harmonic
	// dynamic chunk scheduler (Alg. 1 with the Eq. 2 harmonic-mean
	// estimator), 256 KB initial chunks, both paths.
	m, err := tb.Stream(context.Background(), msplayer.SessionConfig{
		Scheduler:          msplayer.NewHarmonicScheduler(msplayer.DefaultBaseChunk, msplayer.DefaultDelta),
		Paths:              msplayer.BothPaths,
		StopAfterPreBuffer: true, // measure start-up latency only
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("pre-buffered 40s of 720p video in %.2fs\n", m.PreBufferTime.Seconds())
	for _, p := range m.Paths {
		fmt.Printf("  %-4s fetched %5.1f MB in %d chunks, first video byte after %.2fs\n",
			p.Network, float64(p.Bytes)/1e6, p.Chunks, p.FirstVideoByte.Seconds())
	}
	fmt.Printf("  wifi carried %.0f%% of pre-buffering traffic\n",
		m.Share("wifi", msplayer.PhasePreBuffer)*100)
}
