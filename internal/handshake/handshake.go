// Package handshake emulates the secure-connection establishment of
// Fig. 1 in the MSPlayer paper: a TLS-style message exchange layered on
// an emulated TCP connection.
//
// The paper models the time to establish a secure HTTP connection over
// path i as
//
//	ηᵢ = 4·Rᵢ + Δ₁ + Δ₂
//
// (one round trip of TCP handshake plus three message exchanges, with
// server processing times Δ₁ for key verification and Δ₂ for completing
// the key exchange), the time to receive the complete JSON video
// information as
//
//	ψᵢ = 6·Rᵢ + Δ₁ + Δ₂
//
// and the time until the first video packet arrives from the video
// server as πᵢ ≈ ψᵢ + ηᵢ. Because MSPlayer starts streaming on a path as
// soon as that path's JSON decodes, the fast path enjoys a head start of
// π₂ − π₁ ≈ 10·(θ−1)·R₁ where θ = R₂/R₁.
//
// The exchange implemented here reproduces that sequence message by
// message so that measured bootstrap times over netem match the closed
// forms, which are also provided for direct computation.
package handshake

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Message types of the emulated exchange, in protocol order.
const (
	msgClientHello       = 1
	msgServerHello       = 2
	msgCertificateReq    = 3 // client ack prompting certificate delivery
	msgCertificate       = 4 // certificate + ServerHelloDone + ServerKeyExchange
	msgClientKeyExchange = 5
	msgFinished          = 6 // NewSessionTicket + Finished
)

// Wire sizes of each message, chosen to mirror a typical TLS 1.2
// exchange (certificates dominate).
var msgSize = map[byte]int{
	msgClientHello:       220,
	msgServerHello:       90,
	msgCertificateReq:    60,
	msgCertificate:       3100,
	msgClientKeyExchange: 330,
	msgFinished:          260,
}

// Sleeper is the subset of the netem clock used by the server side to
// charge processing delays.
type Sleeper interface {
	Sleep(d time.Duration)
}

// Params configures the server-side processing delays of Fig. 1.
type Params struct {
	// Delta1 is the key-verification time charged before the certificate
	// flight.
	Delta1 time.Duration
	// Delta2 is the key-exchange completion time charged before the
	// Finished flight.
	Delta2 time.Duration
}

// Eta returns the closed-form secure-connection establishment time
// η = 4R + Δ₁ + Δ₂ for a path with round-trip time rtt.
func (p Params) Eta(rtt time.Duration) time.Duration {
	return 4*rtt + p.Delta1 + p.Delta2
}

// Psi returns the closed-form time ψ = 6R + Δ₁ + Δ₂ to receive the
// complete JSON video information over a path with round-trip time rtt.
func (p Params) Psi(rtt time.Duration) time.Duration {
	return 6*rtt + p.Delta1 + p.Delta2
}

// Pi returns the closed-form time π ≈ ψ + η until the first video packet
// arrives over a path with round-trip time rtt, assuming the web proxy
// and video server are equally distant and equally provisioned.
func (p Params) Pi(rtt time.Duration) time.Duration {
	return p.Psi(rtt) + p.Eta(rtt)
}

// HeadStart returns the closed-form lead π₂ − π₁ ≈ 10·(θ−1)·R₁ that the
// fast path (RTT r1) holds over the slow path (RTT r2 ≥ r1), ignoring
// the Δ terms as the paper does.
func HeadStart(r1, r2 time.Duration) time.Duration {
	return 10 * (r2 - r1)
}

// maxMsgSize bounds the wire size of any handshake message (the
// certificate flight dominates).
const maxMsgSize = 3200

// msgBufPool recycles message staging buffers. Message bodies are
// all-zero filler (only the 5-byte header carries information), and
// writeMsg never writes past the header, so a pooled buffer's body
// stays zero across uses — each buffer is cleared exactly once at
// birth instead of a ~3 KB stack clear per message, which added up
// across every connection of a fleet.
var msgBufPool = sync.Pool{
	New: func() any { return new([5 + maxMsgSize]byte) },
}

func writeMsg(conn net.Conn, typ byte) error {
	size := msgSize[typ]
	buf := msgBufPool.Get().(*[5 + maxMsgSize]byte)
	buf[0] = typ
	binary.BigEndian.PutUint32(buf[1:5], uint32(size))
	_, err := conn.Write(buf[:5+size])
	msgBufPool.Put(buf)
	if err != nil {
		return fmt.Errorf("handshake: write msg %d: %w", typ, err)
	}
	return nil
}

func readMsg(conn net.Conn, want byte) error {
	var hdr [5]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return fmt.Errorf("handshake: read header: %w", err)
	}
	if hdr[0] != want {
		return fmt.Errorf("handshake: got message %d, want %d", hdr[0], want)
	}
	size := binary.BigEndian.Uint32(hdr[1:5])
	if size > 1<<20 {
		return fmt.Errorf("handshake: message %d implausibly large (%d bytes)", hdr[0], size)
	}
	if _, err := io.CopyN(io.Discard, conn, int64(size)); err != nil {
		return fmt.Errorf("handshake: read body: %w", err)
	}
	return nil
}

// Client runs the client side of the exchange on conn. On return the
// connection is "secure" and ready for application data.
func Client(conn net.Conn) error {
	steps := []struct {
		send byte
		recv byte
	}{
		{msgClientHello, msgServerHello},
		{msgCertificateReq, msgCertificate},
		{msgClientKeyExchange, msgFinished},
	}
	for _, s := range steps {
		if err := writeMsg(conn, s.send); err != nil {
			return err
		}
		if err := readMsg(conn, s.recv); err != nil {
			return err
		}
	}
	return nil
}

// Server runs the server side of the exchange on conn, charging Δ₁ and
// Δ₂ of processing time through clock.
func Server(conn net.Conn, clock Sleeper, p Params) error {
	if err := readMsg(conn, msgClientHello); err != nil {
		return err
	}
	if err := writeMsg(conn, msgServerHello); err != nil {
		return err
	}
	if err := readMsg(conn, msgCertificateReq); err != nil {
		return err
	}
	clock.Sleep(p.Delta1)
	if err := writeMsg(conn, msgCertificate); err != nil {
		return err
	}
	if err := readMsg(conn, msgClientKeyExchange); err != nil {
		return err
	}
	clock.Sleep(p.Delta2)
	return writeMsg(conn, msgFinished)
}

// HeaderLen is the wire size of a handshake message header: one type
// byte plus a big-endian uint32 body length.
const HeaderLen = 5

// wireImages holds the rendered wire form (header plus all-zero body)
// of every message type. The images are immutable and shared: message
// bodies carry no information, so one rendering serves every
// connection, and event-driven endpoints hand the shared slice to
// TryWrite (which copies into pacing segments exactly as the blocking
// writeMsg's single conn.Write does).
var wireImages = func() map[byte][]byte {
	m := make(map[byte][]byte, len(msgSize))
	for typ, size := range msgSize {
		b := make([]byte, HeaderLen+size)
		b[0] = typ
		binary.BigEndian.PutUint32(b[1:HeaderLen], uint32(size))
		m[typ] = b
	}
	return m
}()

// Wire returns the immutable wire image of message typ (header plus
// zero-filled body). Callers must not modify the returned slice.
func Wire(typ byte) []byte { return wireImages[typ] }

// ParseHeader validates a received message header against the expected
// type and returns the body length that follows, applying the same
// checks as the blocking readMsg. hdr must hold HeaderLen bytes.
func ParseHeader(hdr []byte, want byte) (int, error) {
	if hdr[0] != want {
		return 0, fmt.Errorf("handshake: got message %d, want %d", hdr[0], want)
	}
	size := binary.BigEndian.Uint32(hdr[1:HeaderLen])
	if size > 1<<20 {
		return 0, fmt.Errorf("handshake: message %d implausibly large (%d bytes)", hdr[0], size)
	}
	return int(size), nil
}

// ServerStep is one request-response leg of the server side of the
// exchange, in the form an event-driven server consumes: expect a
// message of type Expect, charge Delay of processing time, then send
// the Send wire image. The legs replayed in order are exactly the
// Server function's sequence, so a state machine stepping through
// ServerScript produces the same bytes at the same emulated instants
// as a goroutine parked in Server.
type ServerStep struct {
	Expect byte
	Delay  time.Duration
	Send   []byte
}

// ServerScript returns the server side of the exchange as a replayable
// script with p's processing delays in place.
func ServerScript(p Params) [3]ServerStep {
	return [3]ServerStep{
		{Expect: msgClientHello, Send: Wire(msgServerHello)},
		{Expect: msgCertificateReq, Delay: p.Delta1, Send: Wire(msgCertificate)},
		{Expect: msgClientKeyExchange, Delay: p.Delta2, Send: Wire(msgFinished)},
	}
}

// ClientStep is one send-then-expect leg of the client side of the
// exchange for event-driven clients, mirroring ServerStep.
type ClientStep struct {
	Send   []byte
	Expect byte
}

// ClientScript returns the client side of the exchange as a replayable
// script: the Client function's sequence, leg by leg.
func ClientScript() [3]ClientStep {
	return [3]ClientStep{
		{Send: Wire(msgClientHello), Expect: msgServerHello},
		{Send: Wire(msgCertificateReq), Expect: msgCertificate},
		{Send: Wire(msgClientKeyExchange), Expect: msgFinished},
	}
}

// Serving the handshake behind a listener lives in package httpx
// (httpx.Serve), which runs the exchange on clock-registered
// goroutines so the deterministic virtual clock can account for it.
