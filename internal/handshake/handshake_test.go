package handshake

import (
	"context"
	"testing"
	"time"

	"repro/internal/netem"
)

func TestClosedForms(t *testing.T) {
	p := Params{Delta1: 3 * time.Millisecond, Delta2: 2 * time.Millisecond}
	rtt := 50 * time.Millisecond
	if got, want := p.Eta(rtt), 205*time.Millisecond; got != want {
		t.Errorf("Eta = %v, want %v", got, want)
	}
	if got, want := p.Psi(rtt), 305*time.Millisecond; got != want {
		t.Errorf("Psi = %v, want %v", got, want)
	}
	if got, want := p.Pi(rtt), 510*time.Millisecond; got != want {
		t.Errorf("Pi = %v, want %v", got, want)
	}
}

func TestHeadStart(t *testing.T) {
	r1, r2 := 25*time.Millisecond, 70*time.Millisecond
	if got, want := HeadStart(r1, r2), 450*time.Millisecond; got != want {
		t.Errorf("HeadStart = %v, want %v", got, want)
	}
	if HeadStart(r1, r1) != 0 {
		t.Error("equal paths should have zero head start")
	}
}

// TestMeasuredEtaMatchesClosedForm establishes a secure connection over
// netem and compares the measured η against 4R + Δ₁ + Δ₂.
func TestMeasuredEtaMatchesClosedForm(t *testing.T) {
	clock := netem.NewVirtualClock()
	defer clock.Stop()
	n := netem.NewNetwork(clock)
	inner, err := n.Listen("proxy.test:443", 0)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Delta1: 4 * time.Millisecond, Delta2: 3 * time.Millisecond}
	go func() {
		c, err := inner.Accept()
		if err != nil {
			return
		}
		Server(c, clock, p)
	}()

	delay := 25 * time.Millisecond // one-way; RTT = 50 ms
	iface := n.NewInterface("wifi",
		netem.LinkParams{Rate: netem.Mbps(20), Delay: delay},
		netem.LinkParams{Rate: netem.Mbps(20), Delay: delay})

	start := clock.Now()
	conn, err := iface.DialContext(context.Background(), "tcp", "proxy.test:443")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := Client(conn); err != nil {
		t.Fatal(err)
	}
	measured := clock.Now().Sub(start)
	want := p.Eta(2 * delay)
	// Allow transmission time of the certificate flight plus emulator
	// quantum slack on top of the propagation-only closed form.
	if measured < want || measured > want+25*time.Millisecond {
		t.Fatalf("measured eta = %v, closed form = %v", measured, want)
	}
}

// TestServerRejectsGarbage ensures a non-handshake client is dropped.
func TestServerRejectsGarbage(t *testing.T) {
	clock := netem.NewVirtualClock()
	defer clock.Stop()
	client, server := netem.Pipe(clock,
		netem.LinkParams{Rate: netem.Mbps(10), Delay: time.Millisecond},
		netem.LinkParams{Rate: netem.Mbps(10), Delay: time.Millisecond},
		"c", "s")
	errCh := make(chan error, 1)
	go func() { errCh <- Server(server, clock, Params{}) }()
	client.Write([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"))
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("server accepted garbage")
		}
	case <-time.After(5 * time.Second): //detlint:allow wallclock -- test watchdog against emulator deadlock runs on wall time
		t.Fatal("server hung on garbage")
	}
}

// TestFasterPathFinishesBootstrapFirst reproduces the head-start effect:
// a WiFi-like path with a third of the RTT finishes η well before LTE.
func TestFasterPathFinishesBootstrapFirst(t *testing.T) {
	clock := netem.NewVirtualClock()
	defer clock.Stop()
	n := netem.NewNetwork(clock)
	p := Params{Delta1: 2 * time.Millisecond, Delta2: 2 * time.Millisecond}
	for _, host := range []string{"w.test:443", "l.test:443"} {
		inner, err := n.Listen(host, 0)
		if err != nil {
			t.Fatal(err)
		}
		l := inner
		clock.Go(func(ap *netem.Participant) {
			for {
				c, err := l.AcceptP(ap)
				if err != nil {
					return
				}
				conn := c
				clock.Go(func(sp *netem.Participant) {
					conn.(*netem.Conn).Bind(sp)
					Server(conn, sp, p)
				})
			}
		})
	}
	wifi := n.NewInterface("wifi",
		netem.LinkParams{Rate: netem.Mbps(20), Delay: 12 * time.Millisecond},
		netem.LinkParams{Rate: netem.Mbps(20), Delay: 12 * time.Millisecond})
	lte := n.NewInterface("lte",
		netem.LinkParams{Rate: netem.Mbps(20), Delay: 36 * time.Millisecond},
		netem.LinkParams{Rate: netem.Mbps(20), Delay: 36 * time.Millisecond})

	type result struct {
		name string
		eta  time.Duration
	}
	results := make(chan result, 2)
	start := clock.Now()
	// Register the spawning goroutine until both clients are up, so the
	// clock cannot run the first client's sleeps before the second
	// client exists — the bootstraps really run concurrently.
	spawner := clock.Register()
	for _, tc := range []struct {
		iface *netem.Interface
		addr  string
	}{{wifi, "w.test:443"}, {lte, "l.test:443"}} {
		iface, addr := tc.iface, tc.addr
		clock.Go(func(cp *netem.Participant) {
			conn, err := iface.Dial(context.Background(), addr, cp)
			if err != nil {
				t.Errorf("dial: %v", err)
				results <- result{iface.Name(), 0}
				return
			}
			defer conn.Close()
			if err := Client(conn); err != nil {
				t.Errorf("handshake: %v", err)
			}
			results <- result{iface.Name(), clock.Now().Sub(start)}
		})
	}
	spawner.Unregister()
	etas := map[string]time.Duration{}
	for i := 0; i < 2; i++ {
		r := <-results
		etas[r.name] = r.eta
	}
	if etas["wifi"] >= etas["lte"] {
		t.Fatalf("wifi eta (%v) should beat lte eta (%v)", etas["wifi"], etas["lte"])
	}
	lead := etas["lte"] - etas["wifi"]
	// Closed form for the eta difference alone: 4·(R2−R1) = 192 ms.
	if lead < 150*time.Millisecond || lead > 260*time.Millisecond {
		t.Fatalf("eta lead = %v, want ~192ms", lead)
	}
}
