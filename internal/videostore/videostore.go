// Package videostore models the video side of the emulated YouTube
// service: a catalog of fixed-bitrate videos with deterministic synthetic
// content, plus the byte↔playback-time arithmetic the player and the
// experiment harness rely on.
//
// The paper streams HD (720p) MP4 videos at a constant bitrate and
// explicitly leaves rate adaptation out of scope, so a format is fully
// described by its bitrate: the mapping between a byte range and seconds
// of playback is linear.
package videostore

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Format describes one encoding profile of a video, mirroring a YouTube
// itag entry in the JSON metadata.
type Format struct {
	// Itag is the YouTube format identifier (e.g. 22 for MP4 720p).
	Itag int
	// Quality is the human label: "720p", "360p", ...
	Quality string
	// MimeType is the container/codec description.
	MimeType string
	// Bitrate is the combined audio+video bitrate in bits per second.
	Bitrate int64
}

// BytesPerSecond returns the storage rate of the format.
func (f Format) BytesPerSecond() float64 { return float64(f.Bitrate) / 8 }

// BytesFor returns the number of content bytes covering d of playback.
func (f Format) BytesFor(d time.Duration) int64 {
	return int64(d.Seconds() * f.BytesPerSecond())
}

// PlaybackFor returns the playback duration stored in n bytes.
func (f Format) PlaybackFor(n int64) time.Duration {
	return time.Duration(float64(n) / f.BytesPerSecond() * float64(time.Second))
}

// Standard formats used throughout the experiments. HD720 matches the
// paper's evaluation profile: MP4 720p video with 44.1 kHz audio at a
// combined ~2.5 Mb/s.
var (
	HD720 = Format{Itag: 22, Quality: "720p", MimeType: "video/mp4; codecs=\"avc1.64001F, mp4a.40.2\"", Bitrate: 2_500_000}
	SD360 = Format{Itag: 18, Quality: "360p", MimeType: "video/mp4; codecs=\"avc1.42001E, mp4a.40.2\"", Bitrate: 700_000}
)

// Video is a catalog entry identified by an 11-character YouTube-style ID.
type Video struct {
	ID       string
	Title    string
	Author   string
	Duration time.Duration
	Formats  []Format
}

// Format returns the format with the given itag.
func (v *Video) Format(itag int) (Format, error) {
	for _, f := range v.Formats {
		if f.Itag == itag {
			return f, nil
		}
	}
	return Format{}, fmt.Errorf("videostore: video %s has no itag %d", v.ID, itag)
}

// Size returns the content length of the video in the given format.
func (v *Video) Size(f Format) int64 { return f.BytesFor(v.Duration) }

// Content returns a deterministic synthetic byte stream for the video in
// the given format, usable with http.ServeContent. Bytes are a pure
// function of (video ID, itag, offset) so range responses fetched over
// different paths and different replicas agree exactly, which lets tests
// verify multi-source reassembly byte for byte.
func (v *Video) Content(f Format) *Content {
	return &Content{seed: contentSeed(v.ID, f.Itag), size: v.Size(f)}
}

func contentSeed(id string, itag int) uint64 {
	h := uint64(1469598103934665603) // FNV offset basis
	for _, c := range []byte(id) {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h ^ uint64(itag)*0x9E3779B9
}

// Content is a deterministic pseudo-random blob implementing io.ReaderAt,
// io.ReadSeeker and io.Reader without materializing the bytes.
type Content struct {
	seed uint64
	size int64
	pos  int64
}

// Size returns the total length of the blob.
func (c *Content) Size() int64 { return c.size }

// wordAt computes the 8-byte hash word covering offsets
// [8*block, 8*block+8); the blob's byte at offset off is byte off&7
// (little-endian) of wordAt(off/8).
func (c *Content) wordAt(block int64) uint64 {
	x := c.seed + uint64(block)*0x9E3779B9
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CC9
	x ^= x >> 33
	return x
}

// byteAt computes the blob's byte at absolute offset off.
func (c *Content) byteAt(off int64) byte {
	return byte(c.wordAt(off/8) >> (8 * (uint(off) & 7)))
}

// Page cache: every session of a fleet streams the same few catalog
// entries, so the same (video, itag) byte ranges are generated over and
// over — hash generation was ~10% of fleet-scale CPU. Since content is
// a pure function of (seed, offset), the leading pages of each blob are
// materialized once, process-wide, and served with a copy; offsets past
// the cached window fall back to direct generation. Bytes are identical
// either way, so nothing observable changes except CPU time.
const (
	contentPageShift = 18 // 256 KB pages
	contentPageSize  = 1 << contentPageShift
	contentMaxPages  = 64 // cache up to 16 MB per (seed, size) blob
)

type contentPages struct {
	pages [contentMaxPages]atomic.Pointer[[]byte]
}

// contentCaches maps a Content seed to its shared page set. Seeds are
// derived from (video ID, itag), which also fixes the size, so the seed
// alone identifies the blob.
var contentCaches sync.Map // uint64 -> *contentPages

func (c *Content) pageFor(page int64) []byte {
	pcv, ok := contentCaches.Load(c.seed)
	if !ok {
		pcv, _ = contentCaches.LoadOrStore(c.seed, &contentPages{})
	}
	pc := pcv.(*contentPages)
	if b := pc.pages[page].Load(); b != nil {
		return *b
	}
	// Miss: generate the full page. Concurrent misses duplicate the
	// work but produce identical bytes; last store wins harmlessly.
	b := make([]byte, contentPageSize)
	c.generate(b, page<<contentPageShift)
	pc.pages[page].Store(&b)
	return b
}

// ReadAt implements io.ReaderAt. Ranges inside the cached window are
// copied from materialized pages; the tail of very large blobs is
// generated directly. The produced bytes are identical to repeated
// byteAt calls.
func (c *Content) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("videostore: negative offset")
	}
	if off >= c.size {
		return 0, io.EOF
	}
	n := len(p)
	if int64(n) > c.size-off {
		n = int(c.size - off)
	}
	rest, at := p[:n], off
	for len(rest) > 0 {
		page := at >> contentPageShift
		if page >= contentMaxPages {
			c.generate(rest, at)
			break
		}
		m := copy(rest, c.pageFor(page)[at&(contentPageSize-1):])
		rest = rest[m:]
		at += int64(m)
	}
	if int64(n) < int64(len(p)) {
		return n, io.EOF
	}
	return n, nil
}

// Cached reports whether [off, off+n) lies entirely inside the page
// cache's window (pages materialize on demand), so a range server can
// commit to serving it from cache before emitting headers.
func (c *Content) Cached(off, n int64) bool {
	return off >= 0 && n > 0 && off+n <= c.size &&
		(off+n-1)>>contentPageShift < contentMaxPages
}

// CachedSlice returns a read-only view of the blob's bytes
// [off, off+n) borrowed from the page cache, or nil when the range
// crosses a page boundary, exceeds the cached window, or falls outside
// the blob. Callers must not retain or mutate the slice; it lets range
// servers put content on the wire without an intermediate copy.
func (c *Content) CachedSlice(off int64, n int) []byte {
	if n <= 0 || off < 0 || off >= c.size || int64(n) > c.size-off {
		return nil
	}
	page := off >> contentPageShift
	po := off & (contentPageSize - 1)
	if page >= contentMaxPages || po+int64(n) > contentPageSize {
		return nil
	}
	// Cap-clip the view (3-index slice) so even a misbehaving caller
	// cannot append into the rest of the cached page.
	return c.pageFor(page)[po : po+int64(n) : po+int64(n)]
}

// generate fills p with the blob's bytes starting at off: the bulk one
// hash word (8 bytes) at a time — byte-at-a-time generation dominated
// origin-side CPU at fleet scale — with ragged edges handled per byte.
func (c *Content) generate(p []byte, off int64) {
	n := len(p)
	i := 0
	// Leading edge up to the next 8-byte block boundary.
	for ; i < n && (off+int64(i))&7 != 0; i++ {
		p[i] = c.byteAt(off + int64(i))
	}
	// Aligned full words.
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(p[i:i+8], c.wordAt((off+int64(i))/8))
	}
	// Trailing edge.
	for ; i < n; i++ {
		p[i] = c.byteAt(off + int64(i))
	}
}

// Read implements io.Reader.
func (c *Content) Read(p []byte) (int, error) {
	n, err := c.ReadAt(p, c.pos)
	c.pos += int64(n)
	return n, err
}

// Seek implements io.Seeker.
func (c *Content) Seek(offset int64, whence int) (int64, error) {
	var abs int64
	switch whence {
	case io.SeekStart:
		abs = offset
	case io.SeekCurrent:
		abs = c.pos + offset
	case io.SeekEnd:
		abs = c.size + offset
	default:
		return 0, fmt.Errorf("videostore: invalid whence %d", whence)
	}
	if abs < 0 {
		return 0, fmt.Errorf("videostore: negative seek position")
	}
	c.pos = abs
	return abs, nil
}

// Catalog is a set of videos addressable by ID.
type Catalog struct {
	videos map[string]*Video
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return &Catalog{videos: make(map[string]*Video)} }

// Add registers a video; the ID must be 11 characters, as on YouTube.
func (c *Catalog) Add(v *Video) error {
	if len(v.ID) != 11 {
		return fmt.Errorf("videostore: video ID %q must be 11 characters", v.ID)
	}
	if len(v.Formats) == 0 {
		return fmt.Errorf("videostore: video %s has no formats", v.ID)
	}
	c.videos[v.ID] = v
	return nil
}

// Get looks up a video by ID.
func (c *Catalog) Get(id string) (*Video, error) {
	v, ok := c.videos[id]
	if !ok {
		return nil, fmt.Errorf("videostore: unknown video %q", id)
	}
	return v, nil
}

// IDs returns the catalog's video IDs, sorted: callers feed them into
// reports and scenario setup, so the order must not depend on map
// iteration.
func (c *Catalog) IDs() []string {
	ids := make([]string, 0, len(c.videos))
	for id := range c.videos {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// DefaultCatalog returns a catalog with the reference videos used by the
// examples and experiments: a 5-minute HD clip mirroring the paper's
// testbed videos, plus a short clip for quick tests.
func DefaultCatalog() *Catalog {
	c := NewCatalog()
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(c.Add(&Video{
		ID:       "qjT4T2gU9sM",
		Title:    "Testbed HD Reference Clip",
		Author:   "msplayer-testbed",
		Duration: 5 * time.Minute,
		Formats:  []Format{HD720, SD360},
	}))
	must(c.Add(&Video{
		ID:       "shortclip01",
		Title:    "Short Clip",
		Author:   "msplayer-testbed",
		Duration: 30 * time.Second,
		Formats:  []Format{HD720, SD360},
	}))
	return c
}
