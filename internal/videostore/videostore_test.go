package videostore

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
	"time"
)

func TestFormatByteMath(t *testing.T) {
	f := HD720 // 2.5 Mb/s = 312500 B/s
	if got := f.BytesFor(40 * time.Second); got != 12_500_000 {
		t.Errorf("BytesFor(40s) = %d, want 12500000", got)
	}
	if got := f.PlaybackFor(312_500); got != time.Second {
		t.Errorf("PlaybackFor(312500) = %v, want 1s", got)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	f := func(ms uint32) bool {
		d := time.Duration(ms%3_600_000) * time.Millisecond
		back := HD720.PlaybackFor(HD720.BytesFor(d))
		diff := back - d
		if diff < 0 {
			diff = -diff
		}
		return diff < 10*time.Millisecond // one byte of rounding slack
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVideoFormatLookup(t *testing.T) {
	v := &Video{ID: "qjT4T2gU9sM", Formats: []Format{HD720, SD360}}
	got, err := v.Format(22)
	if err != nil || got.Quality != "720p" {
		t.Fatalf("Format(22) = %+v, %v", got, err)
	}
	if _, err := v.Format(99); err == nil {
		t.Fatal("Format(99) should fail")
	}
}

func TestContentDeterministicAcrossReplicas(t *testing.T) {
	v := &Video{ID: "qjT4T2gU9sM", Duration: 10 * time.Second, Formats: []Format{HD720}}
	a := v.Content(HD720)
	b := v.Content(HD720)
	bufA := make([]byte, 4096)
	bufB := make([]byte, 4096)
	if _, err := a.ReadAt(bufA, 12345); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ReadAt(bufB, 12345); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA, bufB) {
		t.Fatal("replicas disagree on content bytes")
	}
}

func TestContentDiffersAcrossVideos(t *testing.T) {
	v1 := &Video{ID: "qjT4T2gU9sM", Duration: 10 * time.Second}
	v2 := &Video{ID: "aaaaaaaaaaa", Duration: 10 * time.Second}
	b1 := make([]byte, 1024)
	b2 := make([]byte, 1024)
	v1.Content(HD720).ReadAt(b1, 0)
	v2.Content(HD720).ReadAt(b2, 0)
	if bytes.Equal(b1, b2) {
		t.Fatal("different videos produced identical content")
	}
}

func TestContentReadAtMatchesSequentialRead(t *testing.T) {
	v := &Video{ID: "qjT4T2gU9sM", Duration: time.Second}
	c := v.Content(HD720)
	all, err := io.ReadAll(v.Content(HD720))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(all)) != c.Size() {
		t.Fatalf("sequential read %d bytes, want %d", len(all), c.Size())
	}
	probe := make([]byte, 100)
	for _, off := range []int64{0, 1, 999, c.Size() - 100} {
		if _, err := c.ReadAt(probe, off); err != nil {
			t.Fatalf("ReadAt(%d): %v", off, err)
		}
		if !bytes.Equal(probe, all[off:off+100]) {
			t.Fatalf("ReadAt(%d) disagrees with sequential read", off)
		}
	}
}

func TestContentReadAtEOF(t *testing.T) {
	v := &Video{ID: "qjT4T2gU9sM", Duration: time.Second}
	c := v.Content(HD720)
	buf := make([]byte, 10)
	if _, err := c.ReadAt(buf, c.Size()); err != io.EOF {
		t.Fatalf("ReadAt past end = %v, want io.EOF", err)
	}
	n, err := c.ReadAt(buf, c.Size()-5)
	if n != 5 || err != io.EOF {
		t.Fatalf("short tail read = (%d, %v), want (5, EOF)", n, err)
	}
}

func TestContentSeek(t *testing.T) {
	v := &Video{ID: "qjT4T2gU9sM", Duration: time.Second}
	c := v.Content(HD720)
	if pos, err := c.Seek(100, io.SeekStart); err != nil || pos != 100 {
		t.Fatalf("SeekStart = (%d, %v)", pos, err)
	}
	if pos, err := c.Seek(-10, io.SeekEnd); err != nil || pos != c.Size()-10 {
		t.Fatalf("SeekEnd = (%d, %v)", pos, err)
	}
	if _, err := c.Seek(-1, io.SeekStart); err == nil {
		t.Fatal("negative seek should fail")
	}
	if _, err := c.Seek(0, 42); err == nil {
		t.Fatal("bad whence should fail")
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	if err := c.Add(&Video{ID: "short", Formats: []Format{HD720}}); err == nil {
		t.Fatal("short ID accepted")
	}
	if err := c.Add(&Video{ID: "elevenchars"}); err == nil {
		t.Fatal("video with no formats accepted")
	}
	v := &Video{ID: "elevenchars", Duration: time.Minute, Formats: []Format{HD720}}
	if err := c.Add(v); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("elevenchars")
	if err != nil || got != v {
		t.Fatalf("Get = %v, %v", got, err)
	}
	if _, err := c.Get("missingmiss"); err == nil {
		t.Fatal("Get of missing video should fail")
	}
	if n := len(c.IDs()); n != 1 {
		t.Fatalf("IDs length = %d, want 1", n)
	}
}

func TestDefaultCatalog(t *testing.T) {
	c := DefaultCatalog()
	v, err := c.Get("qjT4T2gU9sM")
	if err != nil {
		t.Fatal(err)
	}
	if v.Duration != 5*time.Minute {
		t.Errorf("reference clip duration = %v", v.Duration)
	}
	if _, err := v.Format(22); err != nil {
		t.Error("reference clip missing HD720")
	}
}
