package fleet

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestFaultValidation(t *testing.T) {
	co := []Cohort{{Name: "c", Sessions: 1}}
	cases := []struct {
		name string
		sc   Scenario
	}{
		{"unknown kind", Scenario{Cohorts: co, Faults: []Fault{{Kind: "meteor"}}}},
		{"origin fault without network", Scenario{Cohorts: co,
			Faults: []Fault{{Kind: FaultOriginKill, Replica: 1}}}},
		{"origin fault replica 0", Scenario{Cohorts: co,
			Faults: []Fault{{Kind: FaultOriginKill, Network: "wifi"}}}},
		{"blackhole without duration", Scenario{Cohorts: co,
			Faults: []Fault{{Kind: FaultOriginBlackhole, Network: "wifi", Replica: 1}}}},
		{"edge fault without tier", Scenario{Cohorts: co,
			Faults: []Fault{{Kind: FaultEdgeOutage, Edge: 1, Duration: time.Second}}}},
		{"edge fault out of range", Scenario{Cohorts: co,
			EdgeTier: &EdgeTierSpec{Edges: []EdgeSpec{{}}},
			Faults:   []Fault{{Kind: FaultEdgeOutage, Edge: 2, Duration: time.Second}}}},
		{"negative onset", Scenario{Cohorts: co,
			Faults: []Fault{{Kind: FaultOriginKill, Network: "wifi", Replica: 1, At: -time.Second}}}},
		{"negative degrade factor", Scenario{Cohorts: co,
			EdgeTier: &EdgeTierSpec{Edges: []EdgeSpec{{}}},
			Faults:   []Fault{{Kind: FaultBackhaulDegrade, Edge: 1, Duration: time.Second, Factor: -1}}}},
	}
	for _, tc := range cases {
		if err := tc.sc.validate(); err == nil {
			t.Errorf("%s: scenario validated", tc.name)
		}
	}
}

// TestOriginStormDeterministicAndRecovers runs the origin failure storm
// twice at a small scale: the two reports must render byte-identically,
// every fault window must have closed (finite time-to-recovery), and
// the robustness counters must show the machinery actually engaged —
// deadline expiries against the blackholed replica, failovers and
// rebootstraps away from the killed ones — with zero errored sessions.
func TestOriginStormDeterministicAndRecovers(t *testing.T) {
	run := func() *Report {
		sc, err := Builtin("originstorm", 8, 3)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(context.Background(), sc)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.String() != b.String() {
		t.Fatalf("originstorm not deterministic:\n--- run 1\n%s--- run 2\n%s", a, b)
	}
	if a.Fleet.Errored != 0 {
		t.Errorf("%d sessions errored", a.Fleet.Errored)
	}
	if !a.LoadsSettled {
		t.Error("origin books did not settle")
	}
	if a.Fleet.Timeouts == 0 {
		t.Error("no request-deadline expiries despite the blackholed replica")
	}
	if a.Fleet.Failovers == 0 {
		t.Error("no failovers despite the killed replicas")
	}
	if a.Fleet.Rebootstraps == 0 {
		t.Error("no rebootstraps despite exhausted replica lists")
	}
	if len(a.Faults) != 3 {
		t.Fatalf("fault plan executed %d windows, want 3", len(a.Faults))
	}
	for i, w := range a.Faults {
		if !w.Recovered {
			t.Errorf("fault %d (%s %s) never recovered", i+1, w.Kind, w.Target)
		}
		if w.End <= w.Start {
			t.Errorf("fault %d has no finite time-to-recovery (start %v end %v)", i+1, w.Start, w.End)
		}
	}
}

// TestEdgeFlapDeterministicAndRefills: the edge outages must cold-wipe
// the stores (fills exceeding resident pages prove the re-fill) and the
// degraded backhaul plus the request deadline must produce timeouts,
// all byte-identically across runs.
func TestEdgeFlapDeterministicAndRefills(t *testing.T) {
	run := func() *Report {
		sc, err := Builtin("edgeflap", 12, 1)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(context.Background(), sc)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.String() != b.String() {
		t.Fatalf("edgeflap not deterministic:\n--- run 1\n%s--- run 2\n%s", a, b)
	}
	if a.Fleet.Errored != 0 {
		t.Errorf("%d sessions errored", a.Fleet.Errored)
	}
	if a.Fleet.Timeouts == 0 {
		t.Error("no request-deadline expiries despite the degraded backhaul")
	}
	if a.Fleet.Rebootstraps == 0 {
		t.Error("no rebootstraps despite the edge outages")
	}
	if len(a.Edges) != 2 {
		t.Fatalf("edge tier has %d edges, want 2", len(a.Edges))
	}
	for _, e := range a.Edges {
		if e.Fills <= e.Pages {
			t.Errorf("%s: fills=%d <= resident pages=%d — no cold-restart re-fill visible",
				e.Name, e.Fills, e.Pages)
		}
	}
	for i, w := range a.Faults {
		if !w.Recovered {
			t.Errorf("fault %d (%s %s) never recovered", i+1, w.Kind, w.Target)
		}
	}
}

// TestNoFaultPlanReportUnchanged pins backward compatibility in-process:
// scenarios without a fault plan render no fault or robustness lines at
// all (the full byte-for-byte fence is TestFlashCrowd200Golden).
func TestNoFaultPlanReportUnchanged(t *testing.T) {
	sc, err := Builtin("flashcrowd", 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Faults) != 0 {
		t.Fatalf("legacy scenario grew %d fault windows", len(rep.Faults))
	}
	out := rep.String()
	if strings.Contains(out, "fault") || strings.Contains(out, "robustness") {
		t.Fatal("legacy report mentions the fault plan")
	}
}

// TestFaultScenarioGoldens compares the full 200-session seed-1 reports
// of both fault builtins against committed baselines, byte for byte —
// the regression fence for the fault engine itself: onset/recovery
// instants, robustness counters and downtime accounting all pinned.
func TestFaultScenarioGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("200-session golden runs in -short mode")
	}
	for _, name := range []string{"originstorm", "edgeflap"} {
		want, err := os.ReadFile(filepath.Join("testdata", name+"_200_seed1.txt"))
		if err != nil {
			t.Fatal(err)
		}
		sc, err := Builtin(name, 200, 1)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(context.Background(), sc)
		if err != nil {
			t.Fatal(err)
		}
		if got := rep.String(); got != string(want) {
			t.Errorf("%s_200 seed=1 report drifted from committed baseline:\n--- want\n%s--- got\n%s", name, want, got)
		}
	}
}
