package fleet

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestColdEdgeSingleFlightVsStampede is the edge tier's end-to-end
// guarantee: two same-seed runs render byte-identical reports, the
// single-flight edge fetched every page exactly once (fills == resident
// pages, zero evictions), and the stampede edge paid for coalescing's
// absence with strictly more fills for the same working set.
func TestColdEdgeSingleFlightVsStampede(t *testing.T) {
	run := func() *Report {
		sc, err := Builtin("coldedge", 24, 7)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(context.Background(), sc)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Fleet.Errored != 0 {
			t.Fatalf("%d sessions errored", rep.Fleet.Errored)
		}
		if !rep.LoadsSettled {
			t.Fatal("books did not settle")
		}
		return rep
	}
	a, b := run(), run()
	if a.String() != b.String() {
		t.Fatalf("same-seed coldedge reports differ:\n--- run 1\n%s--- run 2\n%s", a, b)
	}
	if len(a.Edges) != 2 {
		t.Fatalf("edges = %d, want 2", len(a.Edges))
	}
	sf, st := a.Edges[0], a.Edges[1]
	if sf.HitRatio() <= 0 {
		t.Errorf("single-flight edge hit ratio = %v, want > 0", sf.HitRatio())
	}
	if sf.Evictions != 0 {
		t.Errorf("single-flight edge evicted %d pages; budget is sized for zero", sf.Evictions)
	}
	// With coalescing on and no evictions, every (video, page) fills
	// exactly once: the fill count IS the resident page count.
	if sf.Fills != sf.Pages {
		t.Errorf("single-flight edge fills = %d, resident pages = %d; want equal", sf.Fills, sf.Pages)
	}
	if st.Fills <= st.Pages {
		t.Errorf("stampede edge fills = %d <= pages = %d; storm should refetch", st.Fills, st.Pages)
	}
	if st.BackhaulBytes <= sf.BackhaulBytes {
		t.Errorf("stampede backhaul %d <= single-flight %d; coalescing saved nothing?",
			st.BackhaulBytes, sf.BackhaulBytes)
	}
	if !strings.Contains(a.String(), "edge tier: 2 edges") {
		t.Error("report missing edge tier table")
	}
}

// TestEdgeMeshPoliciesDiverge checks the LRU/LFU axis end to end: under
// identical offered load, paired edges running different policies keep
// different books, and every edge under a tight budget actually evicts.
func TestEdgeMeshPoliciesDiverge(t *testing.T) {
	sc, err := Builtin("edgemesh", 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Edges) != 4 {
		t.Fatalf("edges = %d, want 4", len(rep.Edges))
	}
	for _, e := range rep.Edges {
		if e.Evictions == 0 {
			t.Errorf("edge %s never evicted under a tight budget", e.Name)
		}
		if e.Hits+e.Misses == 0 {
			t.Errorf("edge %s saw no traffic", e.Name)
		}
	}
	if rep.Edges[0].Policy != "lru" || rep.Edges[2].Policy != "lfu" {
		t.Fatalf("policies = %s/%s, want lru/lfu", rep.Edges[0].Policy, rep.Edges[2].Policy)
	}
}

// TestNoEdgeTierReportUnchanged pins backward compatibility in-process:
// scenarios without an edge tier render no edge lines at all.
func TestNoEdgeTierReportUnchanged(t *testing.T) {
	sc, err := Builtin("flashcrowd", 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Edges) != 0 {
		t.Fatalf("legacy scenario grew %d edges", len(rep.Edges))
	}
	if strings.Contains(rep.String(), "edge") {
		t.Fatal("legacy report mentions the edge tier")
	}
}

// TestFlashCrowd200Golden compares the full flashcrowd_200 seed-1
// report against the committed baseline, byte for byte — the regression
// fence proving the edge tier (and the origin sharding underneath it)
// changed nothing for legacy scenarios.
func TestFlashCrowd200Golden(t *testing.T) {
	if testing.Short() {
		t.Skip("200-session golden run in -short mode")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "flashcrowd_200_seed1.txt"))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Builtin("flashcrowd", 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.String(); got != string(want) {
		t.Errorf("flashcrowd_200 seed=1 report drifted from committed baseline:\n--- want\n%s--- got\n%s", want, got)
	}
}
