package fleet

import (
	"fmt"
	"time"
)

// ChaosPlan is a seeded randomized fault plan: Expand turns it into a
// concrete []Fault deterministically (a splitmix64 stream over Seed),
// so a chaos run is exactly as reproducible as a hand-written plan —
// same seed, same faults, same report bytes. Intensity scales the
// fault count (≈ Intensity faults per 10 s of horizon); Horizon bounds
// the plan (every fault starts and recovers inside it).
type ChaosPlan struct {
	// Seed drives the expansion. Zero is a valid seed.
	Seed int64
	// Intensity is the fault density: n = max(1, Intensity×Horizon/10s).
	// Defaults to 1.
	Intensity float64
	// Horizon is the plan's span. Defaults to 20 s.
	Horizon time.Duration
}

func (cp ChaosPlan) withDefaults() ChaosPlan {
	if cp.Intensity <= 0 {
		cp.Intensity = 1
	}
	if cp.Horizon <= 0 {
		cp.Horizon = 20 * time.Second
	}
	return cp
}

// chaosRng is a splitmix64 stream: the same generator family as the
// sub-seed mixer and the paths' jitter streams, with its own increment
// phase so plans never alias either.
type chaosRng struct{ s uint64 }

func (r *chaosRng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *chaosRng) below(n int64) int64 { return int64(r.next() % uint64(n)) }

func (r *chaosRng) between(lo, hi time.Duration) time.Duration {
	return lo + time.Duration(r.below(int64(hi-lo)))
}

// chaosNetworks are the access networks a chaos plan draws targets
// from, matching the testbed's two client links.
var chaosNetworks = []string{"wifi", "lte"}

// Expand generates the plan's faults. replicasPerNetwork and edges
// describe the deployment the plan fires into: origin faults draw a
// replica in [1, replicasPerNetwork], and edge faults are only
// generated when edges > 0. Every generated fault recovers (all
// durations are positive and end inside the horizon), so an expanded
// plan always passes the recovered-fault invariant.
func (cp ChaosPlan) Expand(replicasPerNetwork, edges int) []Fault {
	cp = cp.withDefaults()
	if replicasPerNetwork < 1 {
		replicasPerNetwork = 1
	}
	rng := &chaosRng{s: uint64(cp.Seed)*0x9E3779B97F4A7C15 + 0x8AC7230489E7FFD9}
	n := int(cp.Intensity * cp.Horizon.Seconds() / 10)
	if n < 1 {
		n = 1
	}
	kinds := []string{FaultOriginKill, FaultOriginBlackhole, FaultPartition, FaultLossStorm, FaultFlap}
	if edges > 0 {
		kinds = append(kinds, FaultEdgeOutage, FaultBackhaulDegrade)
	}
	faults := make([]Fault, 0, n)
	for i := 0; i < n; i++ {
		f := Fault{Kind: kinds[rng.below(int64(len(kinds)))]}
		f.Duration = rng.between(1500*time.Millisecond, 6*time.Second)
		if f.Duration > cp.Horizon {
			f.Duration = cp.Horizon / 2
		}
		if maxAt := cp.Horizon - f.Duration; maxAt > 0 {
			f.At = time.Duration(rng.below(int64(maxAt)))
		}
		switch f.Kind {
		case FaultOriginKill, FaultOriginBlackhole, FaultPartition, FaultFlap:
			f.Network = chaosNetworks[rng.below(int64(len(chaosNetworks)))]
			f.Replica = 1 + int(rng.below(int64(replicasPerNetwork)))
			if f.Kind == FaultFlap {
				f.Period = rng.between(400*time.Millisecond, 1200*time.Millisecond)
				if f.Period > f.Duration {
					f.Period = f.Duration
				}
			}
		case FaultLossStorm:
			f.Network = chaosNetworks[rng.below(int64(len(chaosNetworks)))]
			f.Factor = float64(5+rng.below(30)) / 100 // loss prob 5%–34%
		case FaultEdgeOutage:
			f.Edge = 1 + int(rng.below(int64(edges)))
		case FaultBackhaulDegrade:
			f.Edge = 1 + int(rng.below(int64(edges)))
			f.Factor = float64(5+rng.below(25)) / 100 // rate ×0.05–×0.29
		}
		faults = append(faults, f)
	}
	return faults
}

// expandChaos resolves the scenario's chaos plan (if any) into concrete
// faults appended to Faults, using the scenario's own deployment shape
// for targets. The append clips capacity so a shared Faults slice is
// never mutated in place.
func (sc *Scenario) expandChaos() {
	if sc.Chaos == nil {
		return
	}
	replicas := 2 // msplayer.TestbedProfile default
	if sc.Profile != nil && sc.Profile.ReplicasPerNetwork > 0 {
		replicas = sc.Profile.ReplicasPerNetwork
	}
	edges := 0
	if sc.EdgeTier != nil {
		edges = len(sc.EdgeTier.Edges)
	}
	base := sc.Faults[:len(sc.Faults):len(sc.Faults)]
	sc.Faults = append(base, sc.Chaos.Expand(replicas, edges)...)
	sc.Chaos = nil
}

// CheckInvariants verifies the structural end-of-run invariants a
// fault plan must not break, whatever it injected: every session
// reached a terminal state, the drain barriers settled with no
// in-flight requests, the per-origin books balance, and every fault
// with a scheduled recovery actually recovered. It returns the first
// violation found, or nil.
func CheckInvariants(rep *Report) error {
	for ci, cohort := range rep.Results {
		for i, res := range cohort {
			if res.Metrics == nil && res.Err == nil {
				return fmt.Errorf("fleet: session %d of cohort %d never reached a terminal state", i, ci)
			}
		}
	}
	if !rep.LoadsSettled {
		return fmt.Errorf("fleet: origin books did not settle (clock stopped mid-drain)")
	}
	for _, l := range rep.Loads {
		if l.InFlight != 0 {
			return fmt.Errorf("fleet: server %s reports %d in-flight requests after drain", l.Addr, l.InFlight)
		}
		if l.Aborted > l.Total {
			return fmt.Errorf("fleet: server %s books do not balance: %d aborted of %d total", l.Addr, l.Aborted, l.Total)
		}
		if l.Bytes < 0 || l.Total < 0 {
			return fmt.Errorf("fleet: server %s books went negative (total=%d bytes=%d)", l.Addr, l.Total, l.Bytes)
		}
	}
	for i, w := range rep.Faults {
		if w.End > w.Start && !w.Recovered {
			return fmt.Errorf("fleet: fault %d (%s on %s) never recovered", i+1, w.Kind, w.Target)
		}
	}
	return nil
}
