// Package fleet is a scenario-driven multi-session simulation engine on
// top of the MSPlayer testbed: it spawns whole populations of concurrent
// streaming sessions — organised into cohorts with their own link
// profiles, schedulers, arrival processes and mid-session events —
// against one shared origin cluster in one virtual-time world, and
// aggregates per-session metrics into cohort- and fleet-level QoE
// reports (pre-buffer percentiles, stall rates, re-buffer cycles,
// per-path traffic split, Jain fairness).
//
// Every stochastic component of a run derives from the scenario seed
// through per-session sub-seeds, so a fleet run is deterministic: two
// runs of the same scenario with the same seed produce byte-identical
// reports. A quick start:
//
//	report, err := fleet.Run(context.Background(), fleet.FlashCrowd(200, 1))
//	if err != nil { ... }
//	fmt.Print(report)
//
// or, from the command line:
//
//	go run ./cmd/fleet -scenario flashcrowd -sessions 200 -seed 1
package fleet

import (
	"fmt"
	"math/rand"
	"time"

	"repro"
	"repro/internal/edge"
)

// Session engine kinds for Scenario.Engine.
const (
	// EngineGoroutine runs every session as parked goroutines (the
	// original engine; also the default for an empty Engine).
	EngineGoroutine = "goroutine"
	// EngineEventLoop runs every session as event-loop state machines
	// over borrow-based zero-copy reads, and serves the origin's
	// eligible servers evented too: a whole run needs O(cores)
	// goroutines instead of O(sessions). Wire-identical to the
	// goroutine engine — reports are byte-identical per seed.
	EngineEventLoop = "eventloop"
)

// SchedulerSpec names a chunk scheduler declaratively, so scenarios can
// be described (and compared in A/B cohorts) without holding live
// scheduler state.
type SchedulerSpec struct {
	// Kind is "harmonic", "ewma", "ratio", "fixed" or "bulk".
	Kind string
	// Chunk is the base (or fixed) chunk size; DefaultBaseChunk if 0.
	Chunk int64
	// Delta is the throughput-variation parameter δ of the dynamic
	// schedulers; DefaultDelta if 0.
	Delta float64
	// Alpha is the EWMA weight α; DefaultAlpha if 0.
	Alpha float64
}

// build instantiates a fresh scheduler for one session.
func (s SchedulerSpec) build() (msplayer.Scheduler, error) {
	chunk := s.Chunk
	if chunk == 0 {
		chunk = msplayer.DefaultBaseChunk
	}
	delta := s.Delta
	if delta == 0 {
		delta = msplayer.DefaultDelta
	}
	alpha := s.Alpha
	if alpha == 0 {
		alpha = msplayer.DefaultAlpha
	}
	switch s.Kind {
	case "", "harmonic":
		return msplayer.NewHarmonicScheduler(chunk, delta), nil
	case "ewma":
		return msplayer.NewEWMAScheduler(chunk, delta, alpha), nil
	case "ratio":
		return msplayer.NewRatioScheduler(chunk), nil
	case "fixed":
		return msplayer.NewFixedScheduler(chunk), nil
	case "bulk":
		return msplayer.NewBulkScheduler(), nil
	default:
		return nil, fmt.Errorf("fleet: unknown scheduler kind %q", s.Kind)
	}
}

// Arrival process kinds.
const (
	// ArrivalBatch starts every session at Start (default).
	ArrivalBatch = "batch"
	// ArrivalSpread spaces sessions evenly over [Start, Start+Window).
	ArrivalSpread = "spread"
	// ArrivalPoisson draws exponential inter-arrival times with mean
	// Window/n over [Start, ...), the classic flash-crowd model.
	ArrivalPoisson = "poisson"
)

// ArrivalSpec describes when a cohort's sessions start.
type ArrivalSpec struct {
	// Kind is ArrivalBatch, ArrivalSpread or ArrivalPoisson.
	Kind string
	// Start is the offset of the first arrival from scenario start.
	Start time.Duration
	// Window is the span arrivals spread over (spread/poisson).
	Window time.Duration
}

// times returns n arrival offsets (ascending for spread, arrival-order
// for poisson), deterministic per rng state.
func (a ArrivalSpec) times(n int, rng *rand.Rand) ([]time.Duration, error) {
	out := make([]time.Duration, n)
	switch a.Kind {
	case "", ArrivalBatch:
		for i := range out {
			out[i] = a.Start
		}
	case ArrivalSpread:
		for i := range out {
			if n > 1 {
				out[i] = a.Start + time.Duration(int64(a.Window)*int64(i)/int64(n))
			} else {
				out[i] = a.Start
			}
		}
	case ArrivalPoisson:
		mean := float64(a.Window) / float64(n)
		t := float64(a.Start)
		for i := range out {
			t += rng.ExpFloat64() * mean
			out[i] = time.Duration(t)
		}
	default:
		return nil, fmt.Errorf("fleet: unknown arrival kind %q", a.Kind)
	}
	return out, nil
}

// Event kinds.
const (
	// EventWiFiDown / EventLTEDown take the interface down for Duration
	// (aborting its connections, as mobility does).
	EventWiFiDown = "wifi-down"
	EventLTEDown  = "lte-down"
	// EventWiFiDegrade / EventLTEDegrade scale the link rate by Factor
	// for Duration (compiled into the link's rate profile).
	EventWiFiDegrade = "wifi-degrade"
	EventLTEDegrade  = "lte-degrade"
)

// Event is a mid-session disturbance applied to some or all of a
// cohort's sessions.
type Event struct {
	// Kind selects the disturbance (see the Event* constants).
	Kind string
	// At is the event's onset, offset from scenario start.
	At time.Duration
	// Duration is how long the disturbance lasts.
	Duration time.Duration
	// Factor is the rate multiplier for degrade events (e.g. 0.1).
	Factor float64
	// Fraction of the cohort's sessions affected (default 1.0). Which
	// sessions are hit is drawn from each session's own RNG, so the
	// choice is deterministic per scenario seed.
	Fraction float64
	// Stagger delays the onset by session-index × Stagger, turning a
	// simultaneous event into a wave sweeping through the cohort.
	Stagger time.Duration
}

func (e Event) validate() error {
	switch e.Kind {
	case EventWiFiDown, EventLTEDown:
	case EventWiFiDegrade, EventLTEDegrade:
		if e.Factor < 0 {
			return fmt.Errorf("fleet: event %q has negative factor", e.Kind)
		}
	default:
		return fmt.Errorf("fleet: unknown event kind %q", e.Kind)
	}
	if e.Duration <= 0 {
		return fmt.Errorf("fleet: event %q has no duration", e.Kind)
	}
	if e.Fraction < 0 || e.Fraction > 1 {
		return fmt.Errorf("fleet: event %q fraction %v outside [0,1]", e.Kind, e.Fraction)
	}
	return nil
}

// Fault kinds.
const (
	// FaultOriginKill crashes an origin replica at At, aborting its
	// connections; Duration > 0 restarts it (fresh process, fresh books)
	// that much later, Duration == 0 leaves it down for good.
	FaultOriginKill = "origin-kill"
	// FaultOriginBlackhole wedges a replica for Duration: it keeps
	// accepting connections and reading requests but never responds, so
	// only clients with a request deadline ever see it fail.
	FaultOriginBlackhole = "origin-blackhole"
	// FaultEdgeOutage takes an edge cache down for Duration and then
	// cold-restarts it: the store comes back empty, so the tier re-fills
	// (coalesced or stampeding, per the edge's config).
	FaultEdgeOutage = "edge-outage"
	// FaultBackhaulDegrade scales an edge's backhaul rate by Factor
	// inside [At, At+Duration), compiled into the backhaul link's rate
	// profile at deploy time.
	FaultBackhaulDegrade = "backhaul-degrade"
	// FaultPartition cuts reachability between one access network's
	// clients and one origin replica for Duration — both sides stay
	// alive, but dials fail instantly and established connections across
	// the cut abort at the onset (netem.Network.SetPartitioned).
	FaultPartition = "partition"
	// FaultLossStorm overlays a packet-loss storm on one access
	// network's links inside [At, At+Duration): the per-segment loss
	// probability is raised to Factor, compiled into the links at
	// session attach (netem.LinkParams.LossWindows).
	FaultLossStorm = "loss-storm"
	// FaultFlap cycles a partition between one access network and one
	// origin replica: down for Period/2, up for Period/2, repeating
	// through [At, At+Duration) with a final heal at the end. Fast
	// cycles punish naive breakers that re-trust a flapping replica at
	// full strength.
	FaultFlap = "flap"
)

// Fault is one entry of a scenario's fault plan: a declarative,
// deterministic infrastructure failure. Onsets and recoveries execute
// via emulation-clock timers at exact virtual instants (offset At from
// scenario start), so two runs of the same plan fail — and recover —
// identically.
type Fault struct {
	// Kind selects the failure (see the Fault* constants).
	Kind string
	// At is the onset, offset from scenario start.
	At time.Duration
	// Duration is how long the fault lasts. Must be > 0 except for
	// FaultOriginKill, where 0 means the replica never comes back.
	Duration time.Duration
	// Network and Replica (1-based, in deployment order) pick the origin
	// replica for origin faults.
	Network string
	Replica int
	// Edge picks the edge cache (1-based index into EdgeTierSpec.Edges)
	// for edge faults.
	Edge int
	// Factor is the backhaul rate multiplier for FaultBackhaulDegrade,
	// or the per-segment loss probability for FaultLossStorm.
	Factor float64
	// Period is the down/up cycle length for FaultFlap (down the first
	// half, up the second).
	Period time.Duration
}

func (f Fault) validate(sc *Scenario) error {
	switch f.Kind {
	case FaultOriginKill, FaultOriginBlackhole:
		if f.Network == "" {
			return fmt.Errorf("fleet: fault %q names no network", f.Kind)
		}
		if f.Replica < 1 {
			return fmt.Errorf("fleet: fault %q replica %d (want 1-based)", f.Kind, f.Replica)
		}
		if f.Kind == FaultOriginBlackhole && f.Duration <= 0 {
			return fmt.Errorf("fleet: fault %q has no duration", f.Kind)
		}
	case FaultPartition, FaultFlap:
		if f.Network == "" {
			return fmt.Errorf("fleet: fault %q names no network", f.Kind)
		}
		if f.Replica < 1 {
			return fmt.Errorf("fleet: fault %q replica %d (want 1-based)", f.Kind, f.Replica)
		}
		if f.Duration <= 0 {
			return fmt.Errorf("fleet: fault %q has no duration", f.Kind)
		}
		if f.Kind == FaultFlap && f.Period <= 0 {
			return fmt.Errorf("fleet: fault %q has no period", f.Kind)
		}
	case FaultLossStorm:
		if f.Network == "" {
			return fmt.Errorf("fleet: fault %q names no network", f.Kind)
		}
		if f.Duration <= 0 {
			return fmt.Errorf("fleet: fault %q has no duration", f.Kind)
		}
		if f.Factor <= 0 || f.Factor > 1 {
			return fmt.Errorf("fleet: fault %q loss probability %v outside (0,1]", f.Kind, f.Factor)
		}
	case FaultEdgeOutage, FaultBackhaulDegrade:
		if sc.EdgeTier == nil {
			return fmt.Errorf("fleet: fault %q without an edge tier", f.Kind)
		}
		if f.Edge < 1 || f.Edge > len(sc.EdgeTier.Edges) {
			return fmt.Errorf("fleet: fault %q edge %d of %d", f.Kind, f.Edge, len(sc.EdgeTier.Edges))
		}
		if f.Duration <= 0 {
			return fmt.Errorf("fleet: fault %q has no duration", f.Kind)
		}
		if f.Kind == FaultBackhaulDegrade && f.Factor < 0 {
			return fmt.Errorf("fleet: fault %q has negative factor", f.Kind)
		}
	default:
		return fmt.Errorf("fleet: unknown fault kind %q", f.Kind)
	}
	if f.At < 0 {
		return fmt.Errorf("fleet: fault %q at negative offset", f.Kind)
	}
	if f.Duration < 0 {
		return fmt.Errorf("fleet: fault %q has negative duration", f.Kind)
	}
	return nil
}

// Cohort is a homogeneous group of sessions within a scenario.
type Cohort struct {
	// Name labels the cohort in reports.
	Name string
	// Sessions is the number of sessions in the cohort.
	Sessions int
	// Scheduler picks the chunk scheduler (default harmonic).
	Scheduler SchedulerSpec
	// Paths selects MSPlayer (BothPaths) or a single-path baseline.
	Paths msplayer.PathSelection
	// Arrival describes when sessions start (default: all at once).
	Arrival ArrivalSpec
	// WiFi/LTE override the scenario profile's link profiles for this
	// cohort's clients (nil = inherit).
	WiFi *msplayer.LinkProfile
	LTE  *msplayer.LinkProfile
	// Video/Itag override the streamed clip (default: profile's).
	Video string
	Itag  int
	// Buffer overrides the playout thresholds.
	Buffer msplayer.BufferConfig
	// StopAfterPreBuffer ends sessions at pre-buffer completion (the
	// start-up-latency measurement mode; cheap at scale).
	StopAfterPreBuffer bool
	// StopAfterRefills ends sessions after N re-buffering cycles.
	StopAfterRefills int
	// RequestTimeout bounds every request the cohort's sessions issue
	// with a virtual-time deadline; zero (the default) disables it.
	// Scenarios with blackhole faults need it: a wedged server fails
	// only through the deadline.
	RequestTimeout time.Duration
	// Resilience enables per-target circuit breakers, health-scored
	// source selection and hedged requests on the cohort's paths (see
	// msplayer.Resilience). The zero value disables all of it.
	Resilience msplayer.Resilience
	// Events are mid-session disturbances applied to this cohort.
	Events []Event
	// Edge pins the cohort to one edge cache (1-based index into
	// EdgeTierSpec.Edges). Zero spreads cohorts round-robin across the
	// tier (cohort index mod edge count). Ignored without an edge tier.
	Edge int
}

// EdgeSpec describes one edge cache of a scenario's edge tier.
type EdgeSpec struct {
	// ByteBudget bounds the edge store (default 8 MiB); every resident
	// page charges one full PageSize against it.
	ByteBudget int64
	// PageSize is the cache page granularity (default 64 KiB).
	PageSize int64
	// Policy is edge.PolicyLRU (default) or edge.PolicyLFU.
	Policy string
	// Stampede disables single-flight fill coalescing on this edge, so
	// concurrent misses storm the origin — the cache-stampede baseline.
	Stampede bool
}

// EdgeTierSpec deploys edge caches between the fleet's clients and the
// origin cluster. Every path of every session is routed at its cohort's
// edge instead of the origin replicas; the edges fill misses from the
// origin over emulated backhaul links.
type EdgeTierSpec struct {
	// Edges are the tier's caches, deployed as edge1, edge2, ... in
	// order (at least one).
	Edges []EdgeSpec
	// BackhaulMbps is each edge's backhaul link rate (default 200).
	BackhaulMbps float64
	// BackhaulDelay is the backhaul one-way delay (default 4 ms).
	BackhaulDelay time.Duration
}

func (t *EdgeTierSpec) validate() error {
	if len(t.Edges) == 0 {
		return fmt.Errorf("fleet: edge tier has no edges")
	}
	for ei, es := range t.Edges {
		switch es.Policy {
		case "", edge.PolicyLRU, edge.PolicyLFU:
		default:
			return fmt.Errorf("fleet: edge %d has unknown policy %q", ei+1, es.Policy)
		}
		if es.ByteBudget < 0 || es.PageSize < 0 {
			return fmt.Errorf("fleet: edge %d has negative sizing", ei+1)
		}
	}
	if t.BackhaulMbps < 0 {
		return fmt.Errorf("fleet: negative backhaul rate")
	}
	return nil
}

// Scenario is a declarative description of one fleet run.
type Scenario struct {
	// Name and Description label the scenario in reports.
	Name        string
	Description string
	// Seed drives every stochastic component of the run.
	Seed int64
	// Profile is the base testbed configuration; nil uses
	// msplayer.TestbedProfile(Seed).
	Profile *msplayer.Profile
	// Cohorts are the session populations (at least one).
	Cohorts []Cohort
	// EdgeTier, when non-nil, interposes edge caches between the
	// clients and the origin cluster. Legacy scenarios (nil) are
	// wire-identical to runs before the tier existed.
	EdgeTier *EdgeTierSpec
	// Faults is the scenario's deterministic fault plan, executed by
	// emulation-clock timers at exact virtual instants. Scenarios
	// without one (nil) render byte-identically to runs before the
	// fault engine existed.
	Faults []Fault
	// Chaos, when non-nil, appends a seeded randomized fault plan to
	// Faults at Run time. The expansion is a pure function of the plan
	// (splitmix64 over ChaosPlan.Seed), so two runs of the same
	// scenario still produce byte-identical reports.
	Chaos *ChaosPlan
	// Engine selects the session engine: EngineGoroutine (also the
	// empty default) or EngineEventLoop. The engines are wire-identical
	// — same report bytes per seed — and differ only in resource
	// footprint (see the Engine* constants).
	Engine string
}

// faultHorizon is the latest instant the fault plan touches (offset
// from scenario start): the run must not sample its final books before
// every pending recovery timer has fired.
func (sc Scenario) faultHorizon() time.Duration {
	var h time.Duration
	for _, f := range sc.Faults {
		if end := f.At + f.Duration; end > h {
			h = end
		}
	}
	return h
}

func (sc Scenario) validate() error {
	if len(sc.Cohorts) == 0 {
		return fmt.Errorf("fleet: scenario %q has no cohorts", sc.Name)
	}
	switch sc.Engine {
	case "", EngineGoroutine, EngineEventLoop:
	default:
		return fmt.Errorf("fleet: scenario %q has unknown engine %q", sc.Name, sc.Engine)
	}
	if sc.EdgeTier != nil {
		if err := sc.EdgeTier.validate(); err != nil {
			return fmt.Errorf("fleet: scenario %q: %w", sc.Name, err)
		}
	}
	for fi, f := range sc.Faults {
		if err := f.validate(&sc); err != nil {
			return fmt.Errorf("fleet: scenario %q fault %d: %w", sc.Name, fi, err)
		}
	}
	for ci, co := range sc.Cohorts {
		if co.Sessions <= 0 {
			return fmt.Errorf("fleet: cohort %d (%q) has %d sessions", ci, co.Name, co.Sessions)
		}
		if _, err := co.Scheduler.build(); err != nil {
			return fmt.Errorf("fleet: cohort %q: %w", co.Name, err)
		}
		if _, err := co.Arrival.times(1, rand.New(rand.NewSource(1))); err != nil {
			return fmt.Errorf("fleet: cohort %q: %w", co.Name, err)
		}
		for _, ev := range co.Events {
			if err := ev.validate(); err != nil {
				return fmt.Errorf("fleet: cohort %q: %w", co.Name, err)
			}
		}
		if co.Edge != 0 {
			if sc.EdgeTier == nil {
				return fmt.Errorf("fleet: cohort %q pins edge %d but the scenario has no edge tier", co.Name, co.Edge)
			}
			if co.Edge < 0 || co.Edge > len(sc.EdgeTier.Edges) {
				return fmt.Errorf("fleet: cohort %q pins edge %d of %d", co.Name, co.Edge, len(sc.EdgeTier.Edges))
			}
		}
	}
	return nil
}

// TotalSessions returns the scenario's session count across cohorts.
func (sc Scenario) TotalSessions() int {
	n := 0
	for _, co := range sc.Cohorts {
		n += co.Sessions
	}
	return n
}

// mix derives a sub-seed from seed and a path of indices (splitmix64
// finalisation), decorrelating per-cohort and per-session randomness.
func mix(seed int64, parts ...int64) int64 {
	z := uint64(seed)
	for _, p := range parts {
		z += uint64(p)*0x9E3779B97F4A7C15 + 0x9E3779B97F4A7C15
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
	}
	return int64(z)
}
