package fleet

import (
	"fmt"
	"sort"
	"time"

	"repro"
)

// Builtin returns a named built-in scenario sized to sessions and seed.
// Names: see BuiltinNames.
func Builtin(name string, sessions int, seed int64) (Scenario, error) {
	f, ok := builtins[name]
	if !ok {
		return Scenario{}, fmt.Errorf("fleet: unknown scenario %q (have %v)", name, BuiltinNames())
	}
	return f(sessions, seed), nil
}

// BuiltinNames lists the built-in scenarios, sorted.
func BuiltinNames() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

var builtins = map[string]func(int, int64) Scenario{
	"ramp":        LoadRamp,
	"flashcrowd":  FlashCrowd,
	"densecrowd":  DenseCrowd,
	"megacrowd":   MegaCrowd,
	"wifiwave":    WiFiWave,
	"abtest":      SchedulerAB,
	"coldedge":    ColdEdge,
	"edgemesh":    EdgeMesh,
	"originstorm": OriginStorm,
	"edgeflap":    EdgeFlap,
	"chaosfleet":  ChaosFleet,
}

// stormResilience is the resilience configuration the fault-plan
// builtins run with: breakers trip after two consecutive strikes and
// hedging reissues fetches that exceed the learned latency budget, so
// sessions stop burning full request deadlines on known-dead replicas.
var stormResilience = msplayer.Resilience{
	BreakerThreshold: 2,
	// Half the 800 ms default: half-open probes are 1 KiB ranges, so
	// re-probing a still-dead target is nearly free, while every extra
	// cooldown tick a session sleeps past a replica's recovery instant
	// is pure heal-discovery latency on the pre-buffer tail. 400 ms
	// erases the storm timeouts without inflating the tail (250 ms adds
	// probe churn and buys nothing further).
	BreakerCooldown: 400 * time.Millisecond,
	HedgeEnabled:    true,
	// Two samples arm hedging as early as the rate quantile is
	// meaningful, so paths have a budget before the first fault lands.
	// The 1500 ms request deadline is only ~1.5× the typical chunk
	// latency on the congested access links, so the default 2×
	// multiplier would always clamp to the deadline; 1.25×p90 hedges
	// the true laggards while leaving the healthy tail alone.
	HedgeMinSamples: 2,
	HedgeMultiplier: 1.25,
}

// shortPlayBuffer is the playout configuration for full plays of the
// 30-second reference clip: a 10 s start-up goal and small refills, so
// steady-state ON/OFF cycling is exercised within the clip.
var shortPlayBuffer = msplayer.BufferConfig{
	PreBufferTarget: 10 * time.Second,
	LowWater:        4 * time.Second,
	RefillSize:      4 * time.Second,
	StallRecovery:   2 * time.Second,
}

// FlashCrowd is a burst-arrival start-up-latency study: every session
// requests the 5-minute 720p clip within a two-second Poisson burst and
// runs until pre-buffering completes, measuring the population's
// start-up-time distribution under a thundering herd at the origin.
func FlashCrowd(sessions int, seed int64) Scenario {
	if sessions <= 0 {
		sessions = 200
	}
	return Scenario{
		Name:        "flashcrowd",
		Description: "poisson burst of pre-buffering sessions against one origin",
		Seed:        seed,
		Cohorts: []Cohort{{
			Name:               "crowd",
			Sessions:           sessions,
			Paths:              msplayer.BothPaths,
			Scheduler:          SchedulerSpec{Kind: "harmonic"},
			Arrival:            ArrivalSpec{Kind: ArrivalPoisson, Window: 2 * time.Second},
			StopAfterPreBuffer: true,
		}},
	}
}

// DenseCrowd is the population-density stress scenario: thousands of
// sessions pile onto one origin within a ten-second Poisson window,
// each running to a deliberately small (10 s) pre-buffer goal. Where
// FlashCrowd is a start-up-latency study at the paper's 40 s target,
// DenseCrowd keeps the per-session payload light so the cost that
// dominates is the emulator's ability to carry the population itself —
// clock scheduling, connection churn, origin fan-in — which is what
// the scenario exists to measure (and what the perf CI smoke tracks).
func DenseCrowd(sessions int, seed int64) Scenario {
	if sessions <= 0 {
		sessions = 2000
	}
	return Scenario{
		Name:        "densecrowd",
		Description: "thousands of light pre-buffering sessions against one origin",
		Seed:        seed,
		Cohorts: []Cohort{{
			Name:     "dense",
			Sessions: sessions,
			Paths:    msplayer.BothPaths,
			Scheduler: SchedulerSpec{
				Kind: "harmonic",
			},
			Arrival: ArrivalSpec{Kind: ArrivalPoisson, Window: 10 * time.Second},
			Buffer: msplayer.BufferConfig{
				PreBufferTarget: 10 * time.Second,
				LowWater:        4 * time.Second,
				RefillSize:      4 * time.Second,
				StallRecovery:   2 * time.Second,
			},
			StopAfterPreBuffer: true,
		}},
	}
}

// MegaCrowd is the 20k-session scale proof: an order of magnitude past
// DenseCrowd, with the per-session payload cut down further (the SD
// format and a 5 s pre-buffer goal, ~440 KB per session) so the run
// measures what it exists to measure — the emulator carrying tens of
// thousands of concurrently parked sessions on one clock: timer-wheel
// scheduling, shard contention, connection churn, origin fan-in. The
// thirty-second Poisson window keeps tens of thousands of arrival
// deadlines resident in the wheel's overflow level at once.
func MegaCrowd(sessions int, seed int64) Scenario {
	if sessions <= 0 {
		sessions = 20000
	}
	return Scenario{
		Name:        "megacrowd",
		Description: "tens of thousands of SD pre-buffering sessions against one origin",
		Seed:        seed,
		Cohorts: []Cohort{{
			Name:     "mega",
			Sessions: sessions,
			Paths:    msplayer.BothPaths,
			Scheduler: SchedulerSpec{
				Kind: "harmonic",
			},
			Arrival: ArrivalSpec{Kind: ArrivalPoisson, Window: 30 * time.Second},
			Itag:    18, // SD360: light per-session payload at huge populations
			Buffer: msplayer.BufferConfig{
				PreBufferTarget: 5 * time.Second,
				LowWater:        2 * time.Second,
				RefillSize:      2 * time.Second,
				StallRecovery:   time.Second,
			},
			StopAfterPreBuffer: true,
		}},
	}
}

// ColdEdge is the cache-stampede study: a FlashCrowd-style Poisson
// burst of pre-buffering sessions hits two cold edge caches at once.
// Both cohorts stream the same clip, so every page is a miss exactly
// once per edge — but edge1 coalesces concurrent misses into one
// backhaul fill (single-flight) while edge2 runs in stampede mode and
// lets every concurrent miss storm the origin. The per-edge fill and
// backhaul-byte columns quantify what fill coalescing is worth under a
// thundering herd; the budgets are sized so neither edge evicts, making
// "fills == resident pages" the single-flight correctness signature.
func ColdEdge(sessions int, seed int64) Scenario {
	if sessions <= 0 {
		sessions = 200
	}
	half := sessions / 2
	if half < 1 {
		half = 1
	}
	cohort := func(name string, n, edge int) Cohort {
		return Cohort{
			Name:               name,
			Sessions:           n,
			Paths:              msplayer.BothPaths,
			Scheduler:          SchedulerSpec{Kind: "harmonic"},
			Arrival:            ArrivalSpec{Kind: ArrivalPoisson, Window: 2 * time.Second},
			StopAfterPreBuffer: true,
			Edge:               edge,
		}
	}
	return Scenario{
		Name:        "coldedge",
		Description: "flash crowd on cold edge caches: single-flight vs stampede fills",
		Seed:        seed,
		Cohorts: []Cohort{
			cohort("coalesced", half, 1),
			cohort("stampede", sessions-half, 2),
		},
		EdgeTier: &EdgeTierSpec{
			Edges: []EdgeSpec{
				{ByteBudget: 32 << 20},
				{ByteBudget: 32 << 20, Stampede: true},
			},
		},
	}
}

// EdgeMesh is the cache-policy comparison across a four-edge tier: two
// LRU and two LFU edges with deliberately tight byte budgets, each
// serving one cohort of HD pre-buffering sessions (the hot working set)
// plus one later-arriving cohort of full SD short-clip plays (the
// churn that pressures the store). The same offered load runs against
// both policies, so the per-edge hit-ratio and eviction columns read as
// an LRU-versus-LFU study under working-set churn.
func EdgeMesh(sessions int, seed int64) Scenario {
	if sessions <= 0 {
		sessions = 80
	}
	per := sessions / 8
	if per < 1 {
		per = 1
	}
	var cohorts []Cohort
	for i := 1; i <= 4; i++ {
		cohorts = append(cohorts, Cohort{
			Name:               fmt.Sprintf("hot%d", i),
			Sessions:           per,
			Paths:              msplayer.BothPaths,
			Scheduler:          SchedulerSpec{Kind: "harmonic"},
			Arrival:            ArrivalSpec{Kind: ArrivalSpread, Window: 5 * time.Second},
			StopAfterPreBuffer: true,
			Edge:               i,
		})
	}
	churn := sessions - 4*per
	for i := 1; i <= 4; i++ {
		n := churn / 4
		if i == 4 {
			n = churn - 3*(churn/4)
		}
		if n < 1 {
			n = 1
		}
		cohorts = append(cohorts, Cohort{
			Name:      fmt.Sprintf("churn%d", i),
			Sessions:  n,
			Paths:     msplayer.BothPaths,
			Scheduler: SchedulerSpec{Kind: "harmonic"},
			Arrival:   ArrivalSpec{Kind: ArrivalPoisson, Start: 10 * time.Second, Window: 2 * time.Second},
			Video:     "shortclip01",
			Itag:      18,
			Buffer:    shortPlayBuffer,
			Edge:      i,
		})
	}
	tight := EdgeSpec{ByteBudget: 4 << 20}
	return Scenario{
		Name:        "edgemesh",
		Description: "four tight-budget edges, LRU vs LFU, hot HD set plus SD churn",
		Seed:        seed,
		Cohorts:     cohorts,
		EdgeTier: &EdgeTierSpec{
			Edges: []EdgeSpec{
				tight,
				tight,
				{ByteBudget: 4 << 20, Policy: "lfu"},
				{ByteBudget: 4 << 20, Policy: "lfu"},
			},
		},
	}
}

// OriginStorm is the failure-storm robustness study: a FlashCrowd-style
// Poisson burst of pre-buffering sessions, then the fault plan sweeps
// through the origin replicas mid-crowd — the first WiFi replica
// crashes (and restarts ten seconds later), the first LTE replica
// wedges into a blackhole (accepting connections, never answering) and
// the second LTE replica crashes while the first is still wedged. The
// cohort runs with a request deadline, so blackholed requests surface
// as timeouts at exact virtual instants; the robustness block counts
// the resulting failovers, timeouts and re-bootstraps, and the fault
// windows publish each replica's downtime and time-to-recovery.
func OriginStorm(sessions int, seed int64) Scenario {
	if sessions <= 0 {
		sessions = 200
	}
	return Scenario{
		Name:        "originstorm",
		Description: "replica crash + blackhole storm under a pre-buffering crowd",
		Seed:        seed,
		Cohorts: []Cohort{{
			Name:               "storm",
			Sessions:           sessions,
			Paths:              msplayer.BothPaths,
			Scheduler:          SchedulerSpec{Kind: "harmonic"},
			Arrival:            ArrivalSpec{Kind: ArrivalPoisson, Window: 2 * time.Second},
			StopAfterPreBuffer: true,
			RequestTimeout:     1500 * time.Millisecond,
			Resilience:         stormResilience,
		}},
		Faults: []Fault{
			{Kind: FaultOriginKill, At: 3 * time.Second, Duration: 10 * time.Second, Network: "wifi", Replica: 1},
			{Kind: FaultOriginBlackhole, At: 4 * time.Second, Duration: 8 * time.Second, Network: "lte", Replica: 1},
			{Kind: FaultOriginKill, At: 6 * time.Second, Duration: 6 * time.Second, Network: "lte", Replica: 2},
		},
	}
}

// EdgeFlap is the edge-tier robustness study: the ColdEdge crowd (a
// coalescing edge and a stampeding edge, each serving half the
// sessions) with a flapping tier — both edges suffer an outage
// mid-crowd and cold-restart with wiped stores, so the tier re-fills
// under load (single-flight on edge1, stampeding on edge2; cumulative
// fills exceeding resident pages is the re-fill signature). A deep
// backhaul degradation then slows edge2's fills to a crawl, which the
// cohorts' request deadline converts into timeouts and jittered
// backoff instead of wedged sessions.
func EdgeFlap(sessions int, seed int64) Scenario {
	if sessions <= 0 {
		sessions = 200
	}
	half := sessions / 2
	if half < 1 {
		half = 1
	}
	cohort := func(name string, n, edge int) Cohort {
		return Cohort{
			Name:               name,
			Sessions:           n,
			Paths:              msplayer.BothPaths,
			Scheduler:          SchedulerSpec{Kind: "harmonic"},
			Arrival:            ArrivalSpec{Kind: ArrivalPoisson, Window: 2 * time.Second},
			StopAfterPreBuffer: true,
			RequestTimeout:     2 * time.Second,
			Resilience:         stormResilience,
			Edge:               edge,
		}
	}
	return Scenario{
		Name:        "edgeflap",
		Description: "edge outages with cold restarts plus a backhaul collapse under a flash crowd",
		Seed:        seed,
		Cohorts: []Cohort{
			cohort("coalesced", half, 1),
			cohort("stampede", sessions-half, 2),
		},
		EdgeTier: &EdgeTierSpec{
			Edges: []EdgeSpec{
				{ByteBudget: 32 << 20},
				{ByteBudget: 32 << 20, Stampede: true},
			},
		},
		Faults: []Fault{
			{Kind: FaultEdgeOutage, At: 2500 * time.Millisecond, Duration: 1500 * time.Millisecond, Edge: 1},
			{Kind: FaultEdgeOutage, At: 3 * time.Second, Duration: 1500 * time.Millisecond, Edge: 2},
			{Kind: FaultBackhaulDegrade, At: 6 * time.Second, Duration: 4 * time.Second, Edge: 2, Factor: 0.02},
		},
	}
}

// ChaosFleet is the seeded chaos study: a Poisson burst of resilient
// pre-buffering sessions while a randomized fault plan — replica kills
// and blackholes, network partitions, packet-loss storms and flapping
// partitions — fires at splitmix64-drawn instants. The plan expands
// deterministically from the scenario seed, so every seed is a distinct
// but exactly reproducible storm; CheckInvariants verifies the run's
// structural invariants afterwards whatever the plan injected.
func ChaosFleet(sessions int, seed int64) Scenario {
	if sessions <= 0 {
		sessions = 150
	}
	return Scenario{
		Name:        "chaosfleet",
		Description: "seeded randomized fault storm under a resilient pre-buffering crowd",
		Seed:        seed,
		Cohorts: []Cohort{{
			Name:               "chaos",
			Sessions:           sessions,
			Paths:              msplayer.BothPaths,
			Scheduler:          SchedulerSpec{Kind: "harmonic"},
			Arrival:            ArrivalSpec{Kind: ArrivalPoisson, Window: 2 * time.Second},
			StopAfterPreBuffer: true,
			RequestTimeout:     1500 * time.Millisecond,
			Resilience:         stormResilience,
		}},
		Chaos: &ChaosPlan{Seed: mix(seed, 777), Intensity: 2, Horizon: 20 * time.Second},
	}
}

// LoadRamp is a steady-state load ramp: three cohorts of full plays of
// the short reference clip arrive in successive ten-second waves
// (quarter, half, quarter of the population), exercising ON/OFF playout
// cycling and cross-session fairness as origin load rises and falls.
func LoadRamp(sessions int, seed int64) Scenario {
	if sessions <= 0 {
		sessions = 60
	}
	quarter := sessions / 4
	if quarter < 1 {
		quarter = 1
	}
	mid := sessions - 2*quarter
	cohort := func(name string, n int, start time.Duration) Cohort {
		return Cohort{
			Name:      name,
			Sessions:  n,
			Paths:     msplayer.BothPaths,
			Scheduler: SchedulerSpec{Kind: "harmonic"},
			Arrival:   ArrivalSpec{Kind: ArrivalSpread, Start: start, Window: 10 * time.Second},
			Video:     "shortclip01",
			Buffer:    shortPlayBuffer,
		}
	}
	return Scenario{
		Name:        "ramp",
		Description: "three arrival waves of full short-clip plays (load ramp)",
		Seed:        seed,
		Cohorts: []Cohort{
			cohort("wave1", quarter, 0),
			cohort("wave2", mid, 10*time.Second),
			cohort("wave3", quarter, 20*time.Second),
		},
	}
}

// WiFiWave is a degradation wave: full plays of the short clip arrive
// over five seconds, then a WiFi rate collapse (to 8% of nominal for
// twelve seconds) sweeps through 60% of the population, one session
// every 250 ms — the cohort must shift traffic to LTE to keep playing.
func WiFiWave(sessions int, seed int64) Scenario {
	if sessions <= 0 {
		sessions = 60
	}
	return Scenario{
		Name:        "wifiwave",
		Description: "WiFi degradation wave sweeping 60% of full-play sessions",
		Seed:        seed,
		Cohorts: []Cohort{{
			Name:      "wave",
			Sessions:  sessions,
			Paths:     msplayer.BothPaths,
			Scheduler: SchedulerSpec{Kind: "harmonic"},
			Arrival:   ArrivalSpec{Kind: ArrivalSpread, Window: 5 * time.Second},
			Video:     "shortclip01",
			Buffer:    shortPlayBuffer,
			Events: []Event{{
				Kind:     EventWiFiDegrade,
				At:       8 * time.Second,
				Duration: 12 * time.Second,
				Factor:   0.08,
				Fraction: 0.6,
				Stagger:  250 * time.Millisecond,
			}},
		}},
	}
}

// SchedulerAB is a mixed-scheduler A/B study: two same-size cohorts
// start together under identical links, one on the paper's harmonic
// dynamic scheduler and one on a fixed 256 KB commercial-player-style
// scheduler, comparing start-up latency distributions head to head.
func SchedulerAB(sessions int, seed int64) Scenario {
	if sessions <= 0 {
		sessions = 40
	}
	half := sessions / 2
	if half < 1 {
		half = 1
	}
	cohort := func(name string, spec SchedulerSpec, n int) Cohort {
		return Cohort{
			Name:               name,
			Sessions:           n,
			Paths:              msplayer.BothPaths,
			Scheduler:          spec,
			Arrival:            ArrivalSpec{Kind: ArrivalSpread, Window: time.Second},
			StopAfterPreBuffer: true,
		}
	}
	return Scenario{
		Name:        "abtest",
		Description: "harmonic vs fixed-256KB schedulers, same links, same arrivals",
		Seed:        seed,
		Cohorts: []Cohort{
			cohort("harmonic", SchedulerSpec{Kind: "harmonic"}, half),
			cohort("fixed256", SchedulerSpec{Kind: "fixed", Chunk: 256 << 10}, sessions-half),
		},
	}
}
