package fleet

import (
	"fmt"
	"sort"
	"time"

	"repro"
)

// Builtin returns a named built-in scenario sized to sessions and seed.
// Names: see BuiltinNames.
func Builtin(name string, sessions int, seed int64) (Scenario, error) {
	f, ok := builtins[name]
	if !ok {
		return Scenario{}, fmt.Errorf("fleet: unknown scenario %q (have %v)", name, BuiltinNames())
	}
	return f(sessions, seed), nil
}

// BuiltinNames lists the built-in scenarios, sorted.
func BuiltinNames() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

var builtins = map[string]func(int, int64) Scenario{
	"ramp":       LoadRamp,
	"flashcrowd": FlashCrowd,
	"densecrowd": DenseCrowd,
	"megacrowd":  MegaCrowd,
	"wifiwave":   WiFiWave,
	"abtest":     SchedulerAB,
}

// shortPlayBuffer is the playout configuration for full plays of the
// 30-second reference clip: a 10 s start-up goal and small refills, so
// steady-state ON/OFF cycling is exercised within the clip.
var shortPlayBuffer = msplayer.BufferConfig{
	PreBufferTarget: 10 * time.Second,
	LowWater:        4 * time.Second,
	RefillSize:      4 * time.Second,
	StallRecovery:   2 * time.Second,
}

// FlashCrowd is a burst-arrival start-up-latency study: every session
// requests the 5-minute 720p clip within a two-second Poisson burst and
// runs until pre-buffering completes, measuring the population's
// start-up-time distribution under a thundering herd at the origin.
func FlashCrowd(sessions int, seed int64) Scenario {
	if sessions <= 0 {
		sessions = 200
	}
	return Scenario{
		Name:        "flashcrowd",
		Description: "poisson burst of pre-buffering sessions against one origin",
		Seed:        seed,
		Cohorts: []Cohort{{
			Name:               "crowd",
			Sessions:           sessions,
			Paths:              msplayer.BothPaths,
			Scheduler:          SchedulerSpec{Kind: "harmonic"},
			Arrival:            ArrivalSpec{Kind: ArrivalPoisson, Window: 2 * time.Second},
			StopAfterPreBuffer: true,
		}},
	}
}

// DenseCrowd is the population-density stress scenario: thousands of
// sessions pile onto one origin within a ten-second Poisson window,
// each running to a deliberately small (10 s) pre-buffer goal. Where
// FlashCrowd is a start-up-latency study at the paper's 40 s target,
// DenseCrowd keeps the per-session payload light so the cost that
// dominates is the emulator's ability to carry the population itself —
// clock scheduling, connection churn, origin fan-in — which is what
// the scenario exists to measure (and what the perf CI smoke tracks).
func DenseCrowd(sessions int, seed int64) Scenario {
	if sessions <= 0 {
		sessions = 2000
	}
	return Scenario{
		Name:        "densecrowd",
		Description: "thousands of light pre-buffering sessions against one origin",
		Seed:        seed,
		Cohorts: []Cohort{{
			Name:     "dense",
			Sessions: sessions,
			Paths:    msplayer.BothPaths,
			Scheduler: SchedulerSpec{
				Kind: "harmonic",
			},
			Arrival: ArrivalSpec{Kind: ArrivalPoisson, Window: 10 * time.Second},
			Buffer: msplayer.BufferConfig{
				PreBufferTarget: 10 * time.Second,
				LowWater:        4 * time.Second,
				RefillSize:      4 * time.Second,
				StallRecovery:   2 * time.Second,
			},
			StopAfterPreBuffer: true,
		}},
	}
}

// MegaCrowd is the 20k-session scale proof: an order of magnitude past
// DenseCrowd, with the per-session payload cut down further (the SD
// format and a 5 s pre-buffer goal, ~440 KB per session) so the run
// measures what it exists to measure — the emulator carrying tens of
// thousands of concurrently parked sessions on one clock: timer-wheel
// scheduling, shard contention, connection churn, origin fan-in. The
// thirty-second Poisson window keeps tens of thousands of arrival
// deadlines resident in the wheel's overflow level at once.
func MegaCrowd(sessions int, seed int64) Scenario {
	if sessions <= 0 {
		sessions = 20000
	}
	return Scenario{
		Name:        "megacrowd",
		Description: "tens of thousands of SD pre-buffering sessions against one origin",
		Seed:        seed,
		Cohorts: []Cohort{{
			Name:     "mega",
			Sessions: sessions,
			Paths:    msplayer.BothPaths,
			Scheduler: SchedulerSpec{
				Kind: "harmonic",
			},
			Arrival: ArrivalSpec{Kind: ArrivalPoisson, Window: 30 * time.Second},
			Itag:    18, // SD360: light per-session payload at huge populations
			Buffer: msplayer.BufferConfig{
				PreBufferTarget: 5 * time.Second,
				LowWater:        2 * time.Second,
				RefillSize:      2 * time.Second,
				StallRecovery:   time.Second,
			},
			StopAfterPreBuffer: true,
		}},
	}
}

// LoadRamp is a steady-state load ramp: three cohorts of full plays of
// the short reference clip arrive in successive ten-second waves
// (quarter, half, quarter of the population), exercising ON/OFF playout
// cycling and cross-session fairness as origin load rises and falls.
func LoadRamp(sessions int, seed int64) Scenario {
	if sessions <= 0 {
		sessions = 60
	}
	quarter := sessions / 4
	if quarter < 1 {
		quarter = 1
	}
	mid := sessions - 2*quarter
	cohort := func(name string, n int, start time.Duration) Cohort {
		return Cohort{
			Name:      name,
			Sessions:  n,
			Paths:     msplayer.BothPaths,
			Scheduler: SchedulerSpec{Kind: "harmonic"},
			Arrival:   ArrivalSpec{Kind: ArrivalSpread, Start: start, Window: 10 * time.Second},
			Video:     "shortclip01",
			Buffer:    shortPlayBuffer,
		}
	}
	return Scenario{
		Name:        "ramp",
		Description: "three arrival waves of full short-clip plays (load ramp)",
		Seed:        seed,
		Cohorts: []Cohort{
			cohort("wave1", quarter, 0),
			cohort("wave2", mid, 10*time.Second),
			cohort("wave3", quarter, 20*time.Second),
		},
	}
}

// WiFiWave is a degradation wave: full plays of the short clip arrive
// over five seconds, then a WiFi rate collapse (to 8% of nominal for
// twelve seconds) sweeps through 60% of the population, one session
// every 250 ms — the cohort must shift traffic to LTE to keep playing.
func WiFiWave(sessions int, seed int64) Scenario {
	if sessions <= 0 {
		sessions = 60
	}
	return Scenario{
		Name:        "wifiwave",
		Description: "WiFi degradation wave sweeping 60% of full-play sessions",
		Seed:        seed,
		Cohorts: []Cohort{{
			Name:      "wave",
			Sessions:  sessions,
			Paths:     msplayer.BothPaths,
			Scheduler: SchedulerSpec{Kind: "harmonic"},
			Arrival:   ArrivalSpec{Kind: ArrivalSpread, Window: 5 * time.Second},
			Video:     "shortclip01",
			Buffer:    shortPlayBuffer,
			Events: []Event{{
				Kind:     EventWiFiDegrade,
				At:       8 * time.Second,
				Duration: 12 * time.Second,
				Factor:   0.08,
				Fraction: 0.6,
				Stagger:  250 * time.Millisecond,
			}},
		}},
	}
}

// SchedulerAB is a mixed-scheduler A/B study: two same-size cohorts
// start together under identical links, one on the paper's harmonic
// dynamic scheduler and one on a fixed 256 KB commercial-player-style
// scheduler, comparing start-up latency distributions head to head.
func SchedulerAB(sessions int, seed int64) Scenario {
	if sessions <= 0 {
		sessions = 40
	}
	half := sessions / 2
	if half < 1 {
		half = 1
	}
	cohort := func(name string, spec SchedulerSpec, n int) Cohort {
		return Cohort{
			Name:               name,
			Sessions:           n,
			Paths:              msplayer.BothPaths,
			Scheduler:          spec,
			Arrival:            ArrivalSpec{Kind: ArrivalSpread, Window: time.Second},
			StopAfterPreBuffer: true,
		}
	}
	return Scenario{
		Name:        "abtest",
		Description: "harmonic vs fixed-256KB schedulers, same links, same arrivals",
		Seed:        seed,
		Cohorts: []Cohort{
			cohort("harmonic", SchedulerSpec{Kind: "harmonic"}, half),
			cohort("fixed256", SchedulerSpec{Kind: "fixed", Chunk: 256 << 10}, sessions-half),
		},
	}
}
