package fleet

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/edge"
	"repro/internal/origin"
	"repro/internal/stats"
)

// Aggregate is a mergeable QoE summary over a set of sessions. Cohort
// aggregates merge into the fleet aggregate via stats.Digest, so the
// fleet percentiles are computed over the union of sessions, not
// averaged over cohorts.
type Aggregate struct {
	// Sessions, Completed and Errored count the set's outcomes.
	Sessions  int
	Completed int
	Errored   int
	// PreBuffered counts sessions that finished pre-buffering;
	// PreBuffer digests their start-up times in seconds.
	PreBuffered int
	PreBuffer   stats.Digest
	// StalledSessions counts sessions with at least one underrun;
	// Stalls and Refills total the events across sessions.
	StalledSessions int
	Stalls          int
	Refills         int
	// Goodput digests per-session delivered goodput in Mb/s.
	Goodput stats.Digest
	// WiFiBytes / TotalBytes hold the per-path traffic split.
	WiFiBytes  int64
	TotalBytes int64
	// Failovers, Timeouts and Rebootstraps total the sessions' recovery
	// actions across paths: replica switches, request-deadline expiries
	// and renewed watch requests. Rendered only for scenarios with a
	// fault plan, but accumulated always (they are zero when nothing
	// fails).
	Failovers    int
	Timeouts     int
	Rebootstraps int
	// BreakerOpens, HalfOpenProbes, Hedges, HedgesWon and
	// HedgeWastedBytes total the resilience layer's actions across
	// paths: circuit-breaker trips, half-open probe requests, hedged
	// (budget-exceeded, reissued) fetches, hedges whose reissue beat the
	// abandoned attempt, and bytes of work discarded by hedging.
	// Rendered with the robustness block; zero when resilience is off.
	BreakerOpens     int
	HalfOpenProbes   int
	Hedges           int
	HedgesWon        int
	HedgeWastedBytes int64

	// Jain's index needs only Σx and Σx² over per-session goodput, so
	// the aggregate stays bounded no matter the fleet size.
	gpSum, gpSumSq float64
	gpN            int
}

// add folds one session result into the aggregate.
func (a *Aggregate) add(r SessionResult) {
	a.Sessions++
	if r.Err != nil || r.Metrics == nil {
		a.Errored++
		return
	}
	a.Completed++
	m := r.Metrics
	if m.PreBufferDone {
		a.PreBuffered++
		a.PreBuffer.Add(m.PreBufferTime.Seconds())
	}
	if len(m.Stalls) > 0 {
		a.StalledSessions++
	}
	a.Stalls += len(m.Stalls)
	a.Refills += len(m.Refills)
	for _, p := range m.Paths {
		a.TotalBytes += p.Bytes
		if p.Network == "wifi" {
			a.WiFiBytes += p.Bytes
		}
		a.Failovers += p.Failovers
		a.Timeouts += p.Timeouts
		a.Rebootstraps += p.Rebootstraps
		a.BreakerOpens += p.BreakerOpens
		a.HalfOpenProbes += p.HalfOpenProbes
		a.Hedges += p.Hedges
		a.HedgesWon += p.HedgesWon
		a.HedgeWastedBytes += p.HedgeWastedBytes
	}
	if m.Elapsed > 0 {
		gp := float64(m.TotalBytes) * 8 / 1e6 / m.Elapsed.Seconds()
		a.Goodput.Add(gp)
		a.gpSum += gp
		a.gpSumSq += gp * gp
		a.gpN++
	}
}

// merge folds o into a (counter addition plus digest merging).
func (a *Aggregate) merge(o *Aggregate) {
	a.Sessions += o.Sessions
	a.Completed += o.Completed
	a.Errored += o.Errored
	a.PreBuffered += o.PreBuffered
	a.PreBuffer.Merge(&o.PreBuffer)
	a.StalledSessions += o.StalledSessions
	a.Stalls += o.Stalls
	a.Refills += o.Refills
	a.Goodput.Merge(&o.Goodput)
	a.WiFiBytes += o.WiFiBytes
	a.TotalBytes += o.TotalBytes
	a.Failovers += o.Failovers
	a.Timeouts += o.Timeouts
	a.Rebootstraps += o.Rebootstraps
	a.BreakerOpens += o.BreakerOpens
	a.HalfOpenProbes += o.HalfOpenProbes
	a.Hedges += o.Hedges
	a.HedgesWon += o.HedgesWon
	a.HedgeWastedBytes += o.HedgeWastedBytes
	a.gpSum += o.gpSum
	a.gpSumSq += o.gpSumSq
	a.gpN += o.gpN
}

// StallRate is the fraction of completed sessions that stalled.
func (a *Aggregate) StallRate() float64 {
	if a.Completed == 0 {
		return 0
	}
	return float64(a.StalledSessions) / float64(a.Completed)
}

// Fairness is Jain's index over per-session goodput: (Σx)² / (n·Σx²),
// 1 when every session got an equal share.
func (a *Aggregate) Fairness() float64 {
	if a.gpN == 0 || a.gpSumSq == 0 {
		return 0
	}
	return a.gpSum * a.gpSum / (float64(a.gpN) * a.gpSumSq)
}

// WiFiShare is the fraction of bytes carried over WiFi.
func (a *Aggregate) WiFiShare() float64 {
	if a.TotalBytes == 0 {
		return 0
	}
	return float64(a.WiFiBytes) / float64(a.TotalBytes)
}

// CohortReport is one cohort's aggregate.
type CohortReport struct {
	Name string
	Agg  Aggregate
}

// FaultWindow records one executed fault of a scenario's plan: what was
// injected, into what, and whether the recovery action ran. Start and
// End are offsets from scenario start (End 0 means the fault was never
// scheduled to end, i.e. a forever-kill). Windows are deterministic per
// seed: onsets and recoveries execute via emulation-clock timers.
type FaultWindow struct {
	// Kind is the Fault* constant.
	Kind string
	// Target is the failed component: an origin replica address, or the
	// edge name ("edge2", "edge2-backhaul").
	Target string
	// Start and End bound the fault window.
	Start time.Duration
	End   time.Duration
	// Recovered reports that the recovery action executed successfully
	// (restart, un-blackhole, cold edge restart). Time-to-recovery is
	// End - Start. Compiled faults (backhaul-degrade) are recovered by
	// construction.
	Recovered bool
}

// Report is the outcome of a fleet run.
type Report struct {
	// Scenario/Description/Seed echo the scenario.
	Scenario    string
	Description string
	Seed        int64
	// Elapsed is the virtual duration from scenario start to the last
	// session's completion (max over sessions of arrival + session
	// elapsed — derived from per-session metrics, which are snapshotted
	// at each session's deterministic stop instant).
	Elapsed time.Duration
	// Cohorts holds per-cohort aggregates, in scenario order; Fleet is
	// their merged union.
	Cohorts []CohortReport
	Fleet   Aggregate
	// Loads snapshots per-origin-server request accounting, sampled
	// exactly once after the cluster's drain barrier: totals, body byte
	// attribution and Aborted dispositions are final and deterministic
	// per seed.
	Loads []origin.ServerLoad
	// Edges snapshots per-edge cache accounting in deployment order,
	// sampled once after the edge drain barrier; empty when the
	// scenario has no edge tier (and then absent from the rendering,
	// keeping legacy reports byte-identical).
	Edges []edge.Stats
	// Faults records the executed fault plan in plan order; empty when
	// the scenario has no plan (and then absent from the rendering,
	// keeping legacy reports byte-identical).
	Faults []FaultWindow
	// epoch is the scenario-start instant on the emulation clock, the
	// zero point of every FaultWindow offset; used to intersect session
	// stalls (absolute instants) with fault windows.
	epoch time.Time
	// LoadsSettled reports whether the origin drain barrier completed
	// (it only fails when the emulation clock was stopped mid-run); when
	// false the Loads table may be missing in-flight remainders and the
	// report says so instead of publishing wrong totals.
	LoadsSettled bool
	// Results holds the raw per-session outcomes, indexed
	// [cohort][session], for tests and downstream analysis.
	Results [][]SessionResult
}

// buildReport aggregates raw session results deterministically: cohorts
// in scenario order, sessions in index order.
func buildReport(sc Scenario, results [][]SessionResult, loads []origin.ServerLoad) *Report {
	rep := &Report{
		Scenario:    sc.Name,
		Description: sc.Description,
		Seed:        sc.Seed,
		Loads:       loads,
		Results:     results,
	}
	for ci := range results {
		cr := CohortReport{Name: sc.Cohorts[ci].Name}
		for i := range results[ci] {
			r := results[ci][i]
			cr.Agg.add(r)
			// Errored sessions carry live-clock (nondeterministic)
			// elapsed readings; only clean completions bound Elapsed.
			if r.Err == nil && r.Metrics != nil {
				if end := r.Arrival + r.Metrics.Elapsed; end > rep.Elapsed {
					rep.Elapsed = end
				}
			}
		}
		rep.Cohorts = append(rep.Cohorts, cr)
		rep.Fleet.merge(&cr.Agg)
	}
	return rep
}

// String renders the report as a fixed-format text block; two runs of
// the same scenario and seed render byte-identically.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %q seed=%d: %d sessions, %d cohorts, virtual elapsed %.3fs\n",
		r.Scenario, r.Seed, r.Fleet.Sessions, len(r.Cohorts), r.Elapsed.Seconds())
	if r.Description != "" {
		fmt.Fprintf(&b, "  %s\n", r.Description)
	}
	for i := range r.Cohorts {
		writeAggregate(&b, fmt.Sprintf("cohort %q", r.Cohorts[i].Name), &r.Cohorts[i].Agg)
	}
	if len(r.Cohorts) > 1 {
		writeAggregate(&b, "fleet", &r.Fleet)
	}
	var total, aborted int64
	for _, l := range r.Loads {
		total += l.Total
		aborted += l.Aborted
	}
	fmt.Fprintf(&b, "origin load: %d servers, %d requests (%d aborted)\n",
		len(r.Loads), total, aborted)
	if !r.LoadsSettled {
		fmt.Fprintf(&b, "  WARNING: origin books did not settle (clock stopped mid-drain); totals below may be partial\n")
	}
	for _, l := range r.Loads {
		fmt.Fprintf(&b, "  %-32s %-5s reqs=%d bytes=%d aborted=%d inflight=%d\n",
			l.Addr, l.Network, l.Total, l.Bytes, l.Aborted, l.InFlight)
	}
	if len(r.Edges) > 0 {
		var hits, misses, fills, evictions int64
		for _, e := range r.Edges {
			hits += e.Hits
			misses += e.Misses
			fills += e.Fills
			evictions += e.Evictions
		}
		ratio := 0.0
		if hits+misses > 0 {
			ratio = float64(hits) / float64(hits+misses)
		}
		fmt.Fprintf(&b, "edge tier: %d edges, hit ratio %.3f (%d hits / %d misses), %d fills, %d evictions\n",
			len(r.Edges), ratio, hits, misses, fills, evictions)
		for _, e := range r.Edges {
			fmt.Fprintf(&b, "  %-8s %-3s hits=%d misses=%d ratio=%.3f fills=%d evict=%d pages=%d served=%d backhaul=%d\n",
				e.Name, e.Policy, e.Hits, e.Misses, e.HitRatio(), e.Fills, e.Evictions, e.Pages, e.ServedBytes, e.BackhaulBytes)
		}
	}
	if len(r.Faults) > 0 {
		recovered := 0
		for _, w := range r.Faults {
			if w.Recovered {
				recovered++
			}
		}
		// Downtime (how long the infrastructure was impaired) and
		// client-observed outage (how much playback stall landed inside
		// those windows) are distinct quantities: breakers and hedging
		// exist precisely to keep the second near zero while the first
		// is unchanged.
		fmt.Fprintf(&b, "fault plan: %d faults, %d recovered; fault downtime %.3fs, client-observed outage %.3fs\n",
			len(r.Faults), recovered, r.FaultDowntimeSeconds(), r.FaultStallSeconds())
		for i, w := range r.Faults {
			fmt.Fprintf(&b, "  [%d] %-17s %-32s t=%.3fs", i+1, w.Kind, w.Target, w.Start.Seconds())
			if w.End > w.Start {
				fmt.Fprintf(&b, " dur=%.3fs", (w.End - w.Start).Seconds())
			} else {
				fmt.Fprintf(&b, " dur=forever")
			}
			if w.Recovered {
				fmt.Fprintf(&b, " recovered ttr=%.3fs", (w.End - w.Start).Seconds())
			} else {
				fmt.Fprintf(&b, " not recovered")
			}
			fmt.Fprintf(&b, " outage=%.3fs\n", r.windowOutageSeconds(w))
		}
		writeRobustness(&b, "robustness:", &r.Fleet)
		for i := range r.Cohorts {
			writeRobustness(&b, fmt.Sprintf("  cohort %-12q", r.Cohorts[i].Name), &r.Cohorts[i].Agg)
		}
	}
	return b.String()
}

// writeRobustness renders one aggregate's recovery and resilience
// counters as a single fixed-format line.
func writeRobustness(b *strings.Builder, prefix string, a *Aggregate) {
	fmt.Fprintf(b, "%s failovers=%d timeouts=%d rebootstraps=%d breaker-opens=%d half-open-probes=%d hedges=%d hedges-won=%d hedge-wasted=%dB\n",
		prefix, a.Failovers, a.Timeouts, a.Rebootstraps,
		a.BreakerOpens, a.HalfOpenProbes, a.Hedges, a.HedgesWon, a.HedgeWastedBytes)
}

// faultSpan is one half-open [s, e) interval of the fault timeline.
type faultSpan struct{ s, e time.Duration }

// mergedFaultSpans returns the fault windows as sorted, merged spans.
// Forever-faults extend to the end of the run.
func (r *Report) mergedFaultSpans() []faultSpan {
	var ivs []faultSpan
	for _, w := range r.Faults {
		end := w.End
		if end <= w.Start {
			end = r.Elapsed
		}
		if end > w.Start {
			ivs = append(ivs, faultSpan{w.Start, end})
		}
	}
	if len(ivs) == 0 {
		return nil
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].s < ivs[j].s })
	merged := ivs[:1]
	for _, v := range ivs[1:] {
		if v.s <= merged[len(merged)-1].e {
			if v.e > merged[len(merged)-1].e {
				merged[len(merged)-1].e = v.e
			}
		} else {
			merged = append(merged, v)
		}
	}
	return merged
}

// stallOverlapSeconds sums, across all sessions, the playback stall
// time that fell inside the given spans.
func (r *Report) stallOverlapSeconds(spans []faultSpan) float64 {
	if len(spans) == 0 {
		return 0
	}
	var total time.Duration
	for _, cohort := range r.Results {
		for _, res := range cohort {
			if res.Metrics == nil {
				continue
			}
			for _, st := range res.Metrics.Stalls {
				ss := st.Start.Sub(r.epoch)
				se := ss + st.Duration
				for _, v := range spans {
					lo, hi := ss, se
					if v.s > lo {
						lo = v.s
					}
					if v.e < hi {
						hi = v.e
					}
					if hi > lo {
						total += hi - lo
					}
				}
			}
		}
	}
	return total.Seconds()
}

// FaultStallSeconds is the client-observed outage: the total playback
// stall time that fell inside the (merged) fault windows — the QoE
// damage directly attributable to the injected failures. Distinct from
// FaultDowntimeSeconds, which measures how long the infrastructure was
// impaired regardless of whether any client noticed.
func (r *Report) FaultStallSeconds() float64 {
	return r.stallOverlapSeconds(r.mergedFaultSpans())
}

// FaultDowntimeSeconds is the total impaired-infrastructure time: the
// union (merged span length) of all fault windows, with forever-faults
// extending to the end of the run.
func (r *Report) FaultDowntimeSeconds() float64 {
	var total time.Duration
	for _, v := range r.mergedFaultSpans() {
		total += v.e - v.s
	}
	return total.Seconds()
}

// windowOutageSeconds is the client-observed outage attributable to one
// fault window alone (overlapping windows may double-charge a stall;
// the headline FaultStallSeconds never does, it merges first).
func (r *Report) windowOutageSeconds(w FaultWindow) float64 {
	end := w.End
	if end <= w.Start {
		end = r.Elapsed
	}
	if end <= w.Start {
		return 0
	}
	return r.stallOverlapSeconds([]faultSpan{{w.Start, end}})
}

func writeAggregate(b *strings.Builder, title string, a *Aggregate) {
	fmt.Fprintf(b, "%s (%d sessions: %d ok, %d err)\n", title, a.Sessions, a.Completed, a.Errored)
	if a.PreBuffered > 0 {
		fmt.Fprintf(b, "  pre-buffer: %d/%d done  p50=%.3fs p95=%.3fs p99=%.3fs mean=%.3fs\n",
			a.PreBuffered, a.Sessions,
			a.PreBuffer.Quantile(0.50), a.PreBuffer.Quantile(0.95),
			a.PreBuffer.Quantile(0.99), a.PreBuffer.Mean())
	} else {
		fmt.Fprintf(b, "  pre-buffer: 0/%d done\n", a.Sessions)
	}
	fmt.Fprintf(b, "  stalls: %d sessions (%.1f%%), %d events; re-buffer cycles: %d\n",
		a.StalledSessions, a.StallRate()*100, a.Stalls, a.Refills)
	fmt.Fprintf(b, "  goodput: mean=%.2f Mb/s p50=%.2f p95=%.2f  fairness(Jain)=%.4f\n",
		a.Goodput.Mean(), a.Goodput.Quantile(0.50), a.Goodput.Quantile(0.95), a.Fairness())
	fmt.Fprintf(b, "  split: wifi %.1f%% / lte %.1f%%  (%.1f MB total)\n",
		a.WiFiShare()*100, (1-a.WiFiShare())*100, float64(a.TotalBytes)/1e6)
}
