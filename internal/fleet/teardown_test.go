package fleet

import (
	"context"
	"testing"
	"time"

	"repro"
	"repro/internal/origin"
)

// ifdownWave returns a flashcrowd scenario with a mid-session WiFi
// outage wave sweeping half the population one session at a time: the
// outage aborts established connections while transfers are in flight,
// and the pre-buffer stop condition tears sessions down while the other
// path may still be mid-request — both exercising the deterministic
// shutdown pipeline end to end (conn abort protocol, origin Aborted
// dispositions, fleet drain barrier). Trickle-style server pacing is
// enabled so responses are long-lived at the origin: a paced handler is
// parked mid-response for most of its service time, which is what lets
// the aborts deterministically catch requests in flight (with unpaced
// servers a response is buffered whole in ~zero virtual time and dies
// in flight only after the handler has already moved on).
func ifdownWave(sessions int, seed int64) Scenario {
	sc := FlashCrowd(sessions, seed)
	sc.Name = "flashcrowd-ifdown"
	sc.Description = "poisson burst with a mid-session WiFi outage wave"
	profile := msplayer.TestbedProfile(seed)
	profile.Throttle = &origin.ThrottleConfig{BurstBytes: 256 << 10, RateFactor: 3}
	sc.Profile = &profile
	co := &sc.Cohorts[0]
	// The wave starts after the 2 s arrival window, so every affected
	// session has established connections and transfers in flight when
	// its interface drops.
	co.Events = []Event{{
		Kind:     EventWiFiDown,
		At:       3 * time.Second,
		Duration: 2 * time.Second,
		Fraction: 0.5,
		Stagger:  5 * time.Millisecond,
	}}
	return sc
}

// TestTeardownDeterministicUnderChurn is the acceptance gate for the
// deterministic shutdown pipeline: two same-seed 200-session flashcrowd
// runs with a mid-session interface-down wave must produce byte-identical
// full reports — per-origin request, byte and abort totals included —
// with every origin book settled (no in-flight remainders) and no
// wall-clock quiescence polling anywhere in the teardown path. Run it
// with -race: the former failure mode was wall-clock-racy teardown
// accounting at exactly this kind of scale.
func TestTeardownDeterministicUnderChurn(t *testing.T) {
	const sessions = 200
	run := func() *Report {
		rep, err := Run(context.Background(), ifdownWave(sessions, 23))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	repA := run()
	a, b := repA.String(), run().String()
	if a != b {
		t.Fatalf("same-seed reports differ:\n--- run 1\n%s--- run 2\n%s", a, b)
	}

	if repA.Fleet.Errored != 0 {
		t.Errorf("%d sessions errored; the outage wave should be survivable via LTE", repA.Fleet.Errored)
	}
	if !repA.LoadsSettled {
		t.Error("origin books did not settle after the drain barrier")
	}
	var aborted int64
	for _, l := range repA.Loads {
		aborted += l.Aborted
		if l.InFlight != 0 {
			t.Errorf("server %s left %d requests in flight after drain", l.Addr, l.InFlight)
		}
		if l.Aborted > l.Total {
			t.Errorf("server %s: aborted %d > total %d", l.Addr, l.Aborted, l.Total)
		}
	}
	if aborted == 0 {
		t.Error("no aborted requests recorded; the scenario failed to exercise mid-flight teardown")
	}
}

// TestDensecrowdTeardownDeterministic repeats the byte-identity check
// at densecrowd population density (lighter sessions, heavier conn
// churn), at a population sized to stay fast under -race.
func TestDensecrowdTeardownDeterministic(t *testing.T) {
	sessions := 250
	if testing.Short() {
		sessions = 120
	}
	run := func() string {
		sc, err := Builtin("densecrowd", sessions, 59)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(context.Background(), sc)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Fleet.Errored != 0 {
			t.Fatalf("%d sessions errored", rep.Fleet.Errored)
		}
		if !rep.LoadsSettled {
			t.Fatal("origin books did not settle")
		}
		return rep.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same-seed densecrowd reports differ:\n--- run 1\n%s--- run 2\n%s", a, b)
	}
}
