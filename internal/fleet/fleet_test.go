package fleet

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro"
)

func TestArrivalSpecs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	batch, err := ArrivalSpec{Kind: ArrivalBatch, Start: 3 * time.Second}.times(4, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range batch {
		if a != 3*time.Second {
			t.Fatalf("batch arrival = %v", a)
		}
	}
	spread, _ := ArrivalSpec{Kind: ArrivalSpread, Window: 8 * time.Second}.times(4, rng)
	want := []time.Duration{0, 2 * time.Second, 4 * time.Second, 6 * time.Second}
	for i := range want {
		if spread[i] != want[i] {
			t.Fatalf("spread arrivals = %v", spread)
		}
	}
	// Poisson: ascending, deterministic per rng seed.
	p1, _ := ArrivalSpec{Kind: ArrivalPoisson, Window: 2 * time.Second}.times(16, rand.New(rand.NewSource(9)))
	p2, _ := ArrivalSpec{Kind: ArrivalPoisson, Window: 2 * time.Second}.times(16, rand.New(rand.NewSource(9)))
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("poisson arrivals not deterministic per seed")
		}
		if i > 0 && p1[i] < p1[i-1] {
			t.Fatal("poisson arrivals not ascending")
		}
	}
	if _, err := (ArrivalSpec{Kind: "bogus"}).times(1, rng); err == nil {
		t.Fatal("unknown arrival kind accepted")
	}
}

func TestScenarioValidation(t *testing.T) {
	if err := (Scenario{Name: "empty"}).validate(); err == nil {
		t.Error("scenario without cohorts validated")
	}
	bad := Scenario{Cohorts: []Cohort{{Name: "c", Sessions: 1, Scheduler: SchedulerSpec{Kind: "nope"}}}}
	if err := bad.validate(); err == nil {
		t.Error("unknown scheduler validated")
	}
	badEv := Scenario{Cohorts: []Cohort{{Name: "c", Sessions: 1,
		Events: []Event{{Kind: EventWiFiDown}}}}}
	if err := badEv.validate(); err == nil {
		t.Error("zero-duration event validated")
	}
	if _, err := Builtin("nosuch", 0, 1); err == nil {
		t.Error("unknown builtin accepted")
	}
	for _, n := range BuiltinNames() {
		sc, err := Builtin(n, 0, 1)
		if err != nil {
			t.Errorf("builtin %s: %v", n, err)
		}
		if err := sc.validate(); err != nil {
			t.Errorf("builtin %s invalid: %v", n, err)
		}
		if sc.TotalSessions() <= 0 {
			t.Errorf("builtin %s has no sessions", n)
		}
	}
}

func TestMixDecorrelates(t *testing.T) {
	seen := map[int64]bool{}
	for ci := int64(0); ci < 8; ci++ {
		for i := int64(0); i < 64; i++ {
			s := mix(1, ci, i)
			if seen[s] {
				t.Fatalf("seed collision at cohort %d session %d", ci, i)
			}
			seen[s] = true
		}
	}
	if mix(1, 0, 0) == mix(2, 0, 0) {
		t.Error("scenario seed does not propagate")
	}
}

// TestRunDeterministic is the subsystem's core guarantee: two runs of
// the same scenario and seed render byte-identical reports, and a
// different seed renders a different (but structurally valid) one.
func TestRunDeterministic(t *testing.T) {
	run := func(seed int64) string {
		sc, err := Builtin("flashcrowd", 6, seed)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(context.Background(), sc)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Fleet.Errored != 0 {
			t.Fatalf("seed %d: %d sessions errored", seed, rep.Fleet.Errored)
		}
		if rep.Fleet.PreBuffered != 6 {
			t.Fatalf("seed %d: %d/6 sessions pre-buffered", seed, rep.Fleet.PreBuffered)
		}
		return rep.String()
	}
	a, b := run(41), run(41)
	if a != b {
		t.Fatalf("same-seed reports differ:\n--- run 1\n%s--- run 2\n%s", a, b)
	}
	if c := run(42); c == a {
		t.Fatal("different seed produced an identical report")
	}
}

// TestRunMixedCohorts exercises a two-cohort scenario with per-cohort
// schedulers and checks aggregate bookkeeping.
func TestRunMixedCohorts(t *testing.T) {
	sc, err := Builtin("abtest", 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cohorts) != 2 {
		t.Fatalf("cohorts = %d", len(rep.Cohorts))
	}
	if got := rep.Cohorts[0].Agg.Sessions + rep.Cohorts[1].Agg.Sessions; got != rep.Fleet.Sessions {
		t.Errorf("fleet sessions %d != cohort sum %d", rep.Fleet.Sessions, got)
	}
	if rep.Fleet.TotalBytes != rep.Cohorts[0].Agg.TotalBytes+rep.Cohorts[1].Agg.TotalBytes {
		t.Error("fleet bytes != cohort byte sum")
	}
	if f := rep.Fleet.Fairness(); f <= 0 || f > 1 {
		t.Errorf("fairness = %v outside (0,1]", f)
	}
	if rep.Fleet.WiFiShare() <= 0 || rep.Fleet.WiFiShare() >= 1 {
		t.Errorf("wifi share = %v, want interior split", rep.Fleet.WiFiShare())
	}
	// Origin accounting: one watch per path per session at minimum.
	var watch int64
	for _, l := range rep.Loads {
		if l.InFlight != 0 {
			t.Errorf("server %s left %d in flight", l.Addr, l.InFlight)
		}
		if l.Addr[:3] == "www" {
			watch += l.Total
		}
	}
	if watch < int64(2*rep.Fleet.Completed) {
		t.Errorf("watch requests = %d, want >= %d", watch, 2*rep.Fleet.Completed)
	}
}

// TestRunEvents checks that a degradation wave actually degrades: the
// affected cohort must stall or re-buffer more than an unaffected twin.
func TestRunEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("full-play event scenario in -short mode")
	}
	base := Cohort{
		Name:      "c",
		Sessions:  6,
		Paths:     msplayer.BothPaths,
		Scheduler: SchedulerSpec{Kind: "harmonic"},
		Arrival:   ArrivalSpec{Kind: ArrivalSpread, Window: 2 * time.Second},
		Video:     "shortclip01",
		Buffer:    shortPlayBuffer,
	}
	calm := base
	stormy := base
	stormy.Events = []Event{{
		Kind: EventWiFiDegrade, At: 5 * time.Second, Duration: 15 * time.Second,
		Factor: 0.02, Fraction: 1,
	}}
	// Degrade LTE too, so the cohort cannot fully compensate.
	stormy.Events = append(stormy.Events, Event{
		Kind: EventLTEDegrade, At: 5 * time.Second, Duration: 15 * time.Second,
		Factor: 0.05, Fraction: 1,
	})
	run := func(co Cohort) *Report {
		rep, err := Run(context.Background(), Scenario{Name: "ev", Seed: 11, Cohorts: []Cohort{co}})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	calmRep, stormRep := run(calm), run(stormy)
	if calmRep.Fleet.Errored != 0 || stormRep.Fleet.Errored != 0 {
		t.Fatalf("errors: calm %d, storm %d", calmRep.Fleet.Errored, stormRep.Fleet.Errored)
	}
	if stormRep.Fleet.StalledSessions <= calmRep.Fleet.StalledSessions &&
		stormRep.Fleet.Goodput.Mean() >= calmRep.Fleet.Goodput.Mean() {
		t.Errorf("degradation had no effect: calm stalls=%d goodput=%.2f, storm stalls=%d goodput=%.2f",
			calmRep.Fleet.StalledSessions, calmRep.Fleet.Goodput.Mean(),
			stormRep.Fleet.StalledSessions, stormRep.Fleet.Goodput.Mean())
	}
}
