package fleet

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro"
	"repro/internal/edge"
	"repro/internal/netem"
	"repro/internal/netem/trace"
)

// edgeNetworks are the access networks an edge tier fronts, matching
// the testbed's two client links.
var edgeNetworks = []string{"wifi", "lte"}

// deployEdgeTier builds the scenario's edge caches against tb's origin
// cluster, edge i filling from the network's replica i mod replicas.
func deployEdgeTier(tb *msplayer.Testbed, spec *EdgeTierSpec) ([]*edge.Cache, error) {
	cluster := tb.Cluster()
	edges := make([]*edge.Cache, 0, len(spec.Edges))
	for ei, es := range spec.Edges {
		var nets []edge.Network
		for _, nw := range edgeNetworks {
			ups := cluster.VideoServerAddrs(nw)
			if len(ups) == 0 {
				return edges, fmt.Errorf("fleet: no origin replicas in network %q", nw)
			}
			nets = append(nets, edge.Network{Name: nw, Upstream: ups[ei%len(ups)]})
		}
		e, err := edge.Deploy(tb.Network(), edge.Config{
			Name:       fmt.Sprintf("edge%d", ei+1),
			Networks:   nets,
			ByteBudget: es.ByteBudget,
			PageSize:   es.PageSize,
			Policy:     es.Policy,
			Stampede:   es.Stampede,
			Catalog:    cluster.Catalog(),
			Secret:     cluster.Secret(),
			TokenTTL:   cluster.TokenTTL(),
			Handshake:  tb.Profile().Handshake,
			Backhaul:   edge.Backhaul{RateMbps: spec.BackhaulMbps, Delay: spec.BackhaulDelay},
		})
		if err != nil {
			return edges, err
		}
		edges = append(edges, e)
	}
	return edges, nil
}

// edgeServers is the per-network video-server override steering one
// cohort's sessions at its edge.
func edgeServers(e *edge.Cache) map[string][]string {
	m := make(map[string][]string, len(edgeNetworks))
	for _, nw := range edgeNetworks {
		m[nw] = []string{e.Addr(nw)}
	}
	return m
}

// SessionResult is the outcome of one session in a fleet run.
type SessionResult struct {
	// Cohort and Index identify the session within the scenario.
	Cohort string
	Index  int
	// Arrival is the session's start offset from scenario start.
	Arrival time.Duration
	// Metrics is the session's QoE result (nil on spawn error).
	Metrics *msplayer.Metrics
	// Err is the session error, if any.
	Err error
}

// Run executes a scenario: one shared testbed (origin cluster + virtual
// clock), one client and session per cohort member, all concurrent, and
// returns the aggregated report. Deterministic per scenario seed: the
// clock only advances when every session's goroutines are parked, and
// every random draw derives from Scenario.Seed, so two runs produce
// byte-identical reports.
func Run(ctx context.Context, sc Scenario) (*Report, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	var profile msplayer.Profile
	if sc.Profile != nil {
		profile = *sc.Profile
		profile.Seed = sc.Seed
	} else {
		profile = msplayer.TestbedProfile(sc.Seed)
	}
	tb, err := msplayer.NewTestbed(profile)
	if err != nil {
		return nil, err
	}
	defer tb.Close()

	// The edge tier deploys before any session exists, so listener and
	// backhaul creation order is a pure function of the scenario. Edges
	// close before the testbed (LIFO), mirroring deploy order in reverse.
	var edges []*edge.Cache
	if sc.EdgeTier != nil {
		edges, err = deployEdgeTier(tb, sc.EdgeTier)
		for _, e := range edges {
			defer e.Close()
		}
		if err != nil {
			return nil, err
		}
	}

	clock := tb.Clock()
	// The driver registers so virtual time stays pinned at the scenario
	// epoch until every session goroutine is spawned and parked on its
	// arrival deadline; otherwise early arrivals could burn virtual time
	// before late cohorts exist.
	driver := clock.Register()
	start := clock.Now()

	results := make([][]SessionResult, len(sc.Cohorts))
	var wg sync.WaitGroup
	for ci := range sc.Cohorts {
		co := &sc.Cohorts[ci]
		var servers map[string][]string
		if len(edges) > 0 {
			ei := co.Edge - 1
			if co.Edge == 0 {
				ei = ci % len(edges)
			}
			servers = edgeServers(edges[ei])
		}
		results[ci] = make([]SessionResult, co.Sessions)
		arrivalRng := rand.New(rand.NewSource(mix(sc.Seed, int64(ci), -1)))
		arrivals, err := co.Arrival.times(co.Sessions, arrivalRng)
		if err != nil {
			driver.Unregister()
			return nil, err
		}
		for i := 0; i < co.Sessions; i++ {
			i := i
			sessSeed := mix(sc.Seed, int64(ci), int64(i))
			slot := &results[ci][i]
			slot.Cohort = co.Name
			slot.Index = i
			slot.Arrival = arrivals[i]
			wg.Add(1)
			clock.Go(func(sp *netem.Participant) {
				defer wg.Done()
				slot.Metrics, slot.Err = runSession(ctx, sp, tb, &profile, co, servers, i, arrivals[i], sessSeed, start)
			})
		}
	}
	// Park outside the clock's accounting while the sessions drain; they
	// must be free to advance virtual time.
	driver.Suspend()
	wg.Wait()
	driver.Resume()

	// Every session has torn down its transports through the clock-visible
	// conn abort protocol, so the origin's per-connection loops unwind at
	// deterministic virtual instants. Join that drain barrier on the
	// clock, then sample the per-server books exactly once: after a
	// settled drain they are final and exact — no wall-clock quiescence
	// polling, no racy in-flight remainders.
	// Edges drain first — their client-facing conns unwind, releasing any
	// backhaul fills still in flight — then the origin behind them. After
	// both barriers settle, edge and origin books alike are final.
	settled := true
	for _, e := range edges {
		if !e.Drain(driver) {
			settled = false
		}
	}
	if !tb.Drain(driver) {
		settled = false
	}
	loads := tb.Cluster().Loads()
	edgeStats := make([]edge.Stats, 0, len(edges))
	for _, e := range edges {
		edgeStats = append(edgeStats, e.Stats())
	}
	driver.Unregister()

	rep := buildReport(sc, results, loads)
	rep.Edges = edgeStats
	rep.LoadsSettled = settled
	return rep, nil
}

// runSession executes one cohort member: wait for its arrival instant,
// attach a client with per-session links (degrade events compiled in),
// arm down events, and stream. sp is the session goroutine's clock
// handle; every park — the arrival wait and the whole session via
// StreamAs — goes through it.
func runSession(ctx context.Context, sp *netem.Participant, tb *msplayer.Testbed, profile *msplayer.Profile,
	co *Cohort, servers map[string][]string, idx int, arrival time.Duration, sessSeed int64, start time.Time) (*msplayer.Metrics, error) {
	clock := tb.Clock()
	sp.SleepUntil(start.Add(arrival))

	// The session RNG decides event participation; its draws happen in a
	// fixed order, so participation is a pure function of the seed.
	rng := rand.New(rand.NewSource(sessSeed))
	wifiProf := profile.WiFi
	if co.WiFi != nil {
		wifiProf = *co.WiFi
	}
	lteProf := profile.LTE
	if co.LTE != nil {
		lteProf = *co.LTE
	}

	var downs []Event
	for _, ev := range co.Events {
		affected := ev.Fraction == 0 || ev.Fraction >= 1 || rng.Float64() < ev.Fraction
		if !affected {
			continue
		}
		onset := start.Add(ev.At + time.Duration(idx)*ev.Stagger)
		switch ev.Kind {
		case EventWiFiDegrade:
			wifiProf.Shape = composeShape(wifiProf.Shape, scaleWindow(onset, ev.Duration, ev.Factor))
		case EventLTEDegrade:
			lteProf.Shape = composeShape(lteProf.Shape, scaleWindow(onset, ev.Duration, ev.Factor))
		case EventWiFiDown, EventLTEDown:
			ev := ev
			downs = append(downs, ev)
		}
	}

	client := tb.NewClient(wifiProf, lteProf, sessSeed)

	for _, ev := range downs {
		iface := client.WiFi()
		if ev.Kind == EventLTEDown {
			iface = client.LTE()
		}
		onset := start.Add(ev.At + time.Duration(idx)*ev.Stagger)
		end := onset.Add(ev.Duration)
		release := tb.Inject(func(ip *netem.Participant) {
			if !clock.Now().Before(end) {
				return // window already over when the session arrived
			}
			ip.SleepUntil(onset)
			iface.SetAlive(false)
			ip.SleepUntil(end)
			iface.SetAlive(true)
		})
		defer release()
	}

	sched, err := co.Scheduler.build()
	if err != nil {
		return nil, err
	}
	return client.StreamAs(ctx, sp, msplayer.SessionConfig{
		Scheduler:          sched,
		Paths:              co.Paths,
		Buffer:             co.Buffer,
		Video:              co.Video,
		Itag:               co.Itag,
		VideoServers:       servers,
		StopAfterPreBuffer: co.StopAfterPreBuffer,
		StopAfterRefills:   co.StopAfterRefills,
	})
}

// scaleWindow returns a shape that multiplies the rate by factor inside
// [onset, onset+d).
func scaleWindow(onset time.Time, d time.Duration, factor float64) func(trace.Rate) trace.Rate {
	end := onset.Add(d)
	return func(base trace.Rate) trace.Rate {
		return trace.RateFunc(func(t time.Time) float64 {
			r := base.RateAt(t)
			if !t.Before(onset) && t.Before(end) {
				return r * factor
			}
			return r
		})
	}
}

// composeShape chains shape transforms (inner first).
func composeShape(inner, outer func(trace.Rate) trace.Rate) func(trace.Rate) trace.Rate {
	if inner == nil {
		return outer
	}
	return func(base trace.Rate) trace.Rate { return outer(inner(base)) }
}
