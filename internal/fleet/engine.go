package fleet

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro"
	"repro/internal/edge"
	"repro/internal/netem"
	"repro/internal/netem/trace"
)

// edgeNetworks are the access networks an edge tier fronts, matching
// the testbed's two client links.
var edgeNetworks = []string{"wifi", "lte"}

// deployEdgeTier builds the scenario's edge caches against tb's origin
// cluster, edge i filling from the network's replica i mod replicas.
// bhShapes carries per-edge backhaul rate transforms (1-based edge
// index) compiled from the scenario's backhaul-degrade faults.
func deployEdgeTier(tb *msplayer.Testbed, spec *EdgeTierSpec,
	bhShapes map[int]func(trace.Rate) trace.Rate) ([]*edge.Cache, error) {
	cluster := tb.Cluster()
	edges := make([]*edge.Cache, 0, len(spec.Edges))
	for ei, es := range spec.Edges {
		var nets []edge.Network
		for _, nw := range edgeNetworks {
			ups := cluster.VideoServerAddrs(nw)
			if len(ups) == 0 {
				return edges, fmt.Errorf("fleet: no origin replicas in network %q", nw)
			}
			nets = append(nets, edge.Network{Name: nw, Upstream: ups[ei%len(ups)]})
		}
		e, err := edge.Deploy(tb.Network(), edge.Config{
			Name:       fmt.Sprintf("edge%d", ei+1),
			Networks:   nets,
			ByteBudget: es.ByteBudget,
			PageSize:   es.PageSize,
			Policy:     es.Policy,
			Stampede:   es.Stampede,
			Catalog:    cluster.Catalog(),
			Secret:     cluster.Secret(),
			TokenTTL:   cluster.TokenTTL(),
			Handshake:  tb.Profile().Handshake,
			Backhaul: edge.Backhaul{RateMbps: spec.BackhaulMbps, Delay: spec.BackhaulDelay,
				Shape: bhShapes[ei+1]},
		})
		if err != nil {
			return edges, err
		}
		edges = append(edges, e)
	}
	return edges, nil
}

// faultPlan is the armed form of a scenario's fault plan: one window
// record per fault, recovery marks written by the timer callbacks that
// execute the recoveries. Callbacks fire on the clock's jump goroutine
// at exact virtual instants, so the records are deterministic per seed;
// the mutex is only the cross-goroutine memory fence for the final
// snapshot.
type faultPlan struct {
	mu      sync.Mutex
	windows []FaultWindow
}

func (fp *faultPlan) recovered(i int) {
	fp.mu.Lock()
	fp.windows[i].Recovered = true
	fp.mu.Unlock()
}

func (fp *faultPlan) snapshot() []FaultWindow {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	return append([]FaultWindow(nil), fp.windows...)
}

// armFaults schedules the scenario's fault plan on the emulation clock:
// one timer per onset and one per recovery, armed in fault order before
// any session exists, so same-instant faults fire in plan order. The
// callbacks run under a clock hold and never park (Kill, Restart,
// Blackhole, Outage and edge Restart are all park-free by contract).
// Backhaul-degrade faults are already compiled into the backhaul links
// at deploy time; armFaults only records their windows.
func armFaults(tb *msplayer.Testbed, sc *Scenario, edges []*edge.Cache, start time.Time) (*faultPlan, error) {
	fp := &faultPlan{windows: make([]FaultWindow, len(sc.Faults))}
	clock := tb.Clock()
	cluster := tb.Cluster()
	for fi, f := range sc.Faults {
		fi, f := fi, f
		w := &fp.windows[fi]
		w.Kind = f.Kind
		w.Start = f.At
		if f.Duration > 0 {
			w.End = f.At + f.Duration
		}
		switch f.Kind {
		case FaultOriginKill, FaultOriginBlackhole:
			addrs := cluster.VideoServerAddrs(f.Network)
			if f.Replica > len(addrs) {
				return nil, fmt.Errorf("fleet: fault %d targets replica %d of %d in network %q",
					fi, f.Replica, len(addrs), f.Network)
			}
			addr := addrs[f.Replica-1]
			w.Target = addr
			if f.Kind == FaultOriginKill {
				clock.NewTimer(func() { _ = cluster.Kill(addr) }).Schedule(start.Add(f.At))
				if f.Duration > 0 {
					clock.NewTimer(func() {
						// Recovery is goal-state-based: the window counts as
						// recovered when the replica is alive afterwards, even
						// if an overlapping fault's restart already revived it
						// (chaos plans overlap same-target windows freely).
						if cluster.Restart(addr) == nil || cluster.Alive(addr) {
							fp.recovered(fi)
						}
					}).Schedule(start.Add(f.At + f.Duration))
				}
			} else {
				clock.NewTimer(func() { _ = cluster.Blackhole(addr, true) }).Schedule(start.Add(f.At))
				clock.NewTimer(func() {
					// A dead replica is not wedged: if an overlapping kill
					// took the server down, its eventual restart comes back
					// clean, so the blackhole window has recovered.
					if cluster.Blackhole(addr, false) == nil || !cluster.Alive(addr) {
						fp.recovered(fi)
					}
				}).Schedule(start.Add(f.At + f.Duration))
			}
		case FaultEdgeOutage:
			e := edges[f.Edge-1]
			w.Target = e.Name()
			clock.NewTimer(func() { e.Outage() }).Schedule(start.Add(f.At))
			clock.NewTimer(func() {
				if e.Restart() == nil {
					fp.recovered(fi)
				}
			}).Schedule(start.Add(f.At + f.Duration))
		case FaultBackhaulDegrade:
			w.Target = fmt.Sprintf("edge%d-backhaul", f.Edge)
			w.Recovered = true // compiled into the link's rate profile
		case FaultPartition:
			addrs := cluster.VideoServerAddrs(f.Network)
			if f.Replica > len(addrs) {
				return nil, fmt.Errorf("fleet: fault %d targets replica %d of %d in network %q",
					fi, f.Replica, len(addrs), f.Network)
			}
			addr := addrs[f.Replica-1]
			w.Target = addr
			nw := tb.Network()
			group := f.Network
			clock.NewTimer(func() { nw.SetPartitioned(group, addr, true) }).Schedule(start.Add(f.At))
			clock.NewTimer(func() {
				nw.SetPartitioned(group, addr, false)
				fp.recovered(fi)
			}).Schedule(start.Add(f.At + f.Duration))
		case FaultFlap:
			addrs := cluster.VideoServerAddrs(f.Network)
			if f.Replica > len(addrs) {
				return nil, fmt.Errorf("fleet: fault %d targets replica %d of %d in network %q",
					fi, f.Replica, len(addrs), f.Network)
			}
			addr := addrs[f.Replica-1]
			w.Target = addr
			nw := tb.Network()
			group := f.Network
			// Down the first half of each period, up the second; the
			// final heal lands exactly at the window's end even when the
			// last cycle is clipped.
			for off := time.Duration(0); off < f.Duration; off += f.Period {
				clock.NewTimer(func() { nw.SetPartitioned(group, addr, true) }).Schedule(start.Add(f.At + off))
				if up := off + f.Period/2; up < f.Duration {
					clock.NewTimer(func() { nw.SetPartitioned(group, addr, false) }).Schedule(start.Add(f.At + up))
				}
			}
			clock.NewTimer(func() {
				nw.SetPartitioned(group, addr, false)
				fp.recovered(fi)
			}).Schedule(start.Add(f.At + f.Duration))
		case FaultLossStorm:
			w.Target = f.Network + "-access"
			w.Recovered = true // compiled into the access links' loss windows
		}
	}
	return fp, nil
}

// edgeServers is the per-network video-server override steering one
// cohort's sessions at its edge.
func edgeServers(e *edge.Cache) map[string][]string {
	m := make(map[string][]string, len(edgeNetworks))
	for _, nw := range edgeNetworks {
		m[nw] = []string{e.Addr(nw)}
	}
	return m
}

// SessionResult is the outcome of one session in a fleet run.
type SessionResult struct {
	// Cohort and Index identify the session within the scenario.
	Cohort string
	Index  int
	// Arrival is the session's start offset from scenario start.
	Arrival time.Duration
	// Metrics is the session's QoE result (nil on spawn error).
	Metrics *msplayer.Metrics
	// Err is the session error, if any.
	Err error
}

// Run executes a scenario: one shared testbed (origin cluster + virtual
// clock), one client and session per cohort member, all concurrent, and
// returns the aggregated report. Deterministic per scenario seed: the
// clock only advances when every session's goroutines are parked, and
// every random draw derives from Scenario.Seed, so two runs produce
// byte-identical reports.
func Run(ctx context.Context, sc Scenario) (*Report, error) {
	// A chaos plan expands into concrete faults first, so validation,
	// arming, horizon-riding and the report's fault table all see the
	// same deterministic plan.
	sc.expandChaos()
	if err := sc.validate(); err != nil {
		return nil, err
	}
	var profile msplayer.Profile
	if sc.Profile != nil {
		profile = *sc.Profile
		profile.Seed = sc.Seed
	} else {
		profile = msplayer.TestbedProfile(sc.Seed)
	}
	evented := sc.Engine == EngineEventLoop
	if evented {
		// The evented engine flips the whole world: sessions become
		// state machines and the origin's eligible servers serve evented
		// too. Both engines are wire-identical, so the report bytes do
		// not change with this knob.
		profile.EventLoop = true
	}
	tb, err := msplayer.NewTestbed(profile)
	if err != nil {
		return nil, err
	}
	defer tb.Close()

	clock := tb.Clock()
	// The scenario epoch: nothing is registered yet, so Now() cannot move
	// before the driver registers below. Captured this early because the
	// fault plan's backhaul windows are compiled into the edge links at
	// deploy time.
	start := clock.Now()

	// The edge tier deploys before any session exists, so listener and
	// backhaul creation order is a pure function of the scenario. Edges
	// close before the testbed (LIFO), mirroring deploy order in reverse.
	var edges []*edge.Cache
	if sc.EdgeTier != nil {
		var bhShapes map[int]func(trace.Rate) trace.Rate
		for _, f := range sc.Faults {
			if f.Kind != FaultBackhaulDegrade {
				continue
			}
			if bhShapes == nil {
				bhShapes = make(map[int]func(trace.Rate) trace.Rate)
			}
			bhShapes[f.Edge] = composeShape(bhShapes[f.Edge],
				scaleWindow(start.Add(f.At), f.Duration, f.Factor))
		}
		edges, err = deployEdgeTier(tb, sc.EdgeTier, bhShapes)
		for _, e := range edges {
			defer e.Close()
		}
		if err != nil {
			return nil, err
		}
	}

	// Loss-storm faults compile into the access links of every client
	// attached during the run: one window list per network name, applied
	// at session attach in both engines (the windows are anchored at the
	// scenario epoch, so every client sees the same storm instants).
	var lossWins map[string][]netem.LossWindow
	for _, f := range sc.Faults {
		if f.Kind != FaultLossStorm {
			continue
		}
		if lossWins == nil {
			lossWins = make(map[string][]netem.LossWindow)
		}
		lossWins[f.Network] = append(lossWins[f.Network],
			netem.LossWindow{From: start.Add(f.At), To: start.Add(f.At + f.Duration), Prob: f.Factor})
	}

	// The driver registers so virtual time stays pinned at the scenario
	// epoch until every session goroutine is spawned and parked on its
	// arrival deadline; otherwise early arrivals could burn virtual time
	// before late cohorts exist.
	driver := clock.Register()

	// The fault plan arms before any session exists: timers created here
	// get the lowest sequence numbers, so a fault onset sharing an
	// instant with session activity executes first, deterministically.
	faults, err := armFaults(tb, &sc, edges, start)
	if err != nil {
		driver.Unregister()
		return nil, err
	}

	results := make([][]SessionResult, len(sc.Cohorts))
	var ev *eventedRun
	if evented {
		ev = &eventedRun{loop: netem.NewLoop()}
		ev.cond = netem.NewCond(clock, &ev.mu)
	}
	var wg sync.WaitGroup
	for ci := range sc.Cohorts {
		co := &sc.Cohorts[ci]
		var servers map[string][]string
		if len(edges) > 0 {
			ei := co.Edge - 1
			if co.Edge == 0 {
				ei = ci % len(edges)
			}
			servers = edgeServers(edges[ei])
		}
		results[ci] = make([]SessionResult, co.Sessions)
		arrivalRng := rand.New(rand.NewSource(mix(sc.Seed, int64(ci), -1)))
		arrivals, err := co.Arrival.times(co.Sessions, arrivalRng)
		if err != nil {
			driver.Unregister()
			return nil, err
		}
		for i := 0; i < co.Sessions; i++ {
			i := i
			sessSeed := mix(sc.Seed, int64(ci), int64(i))
			slot := &results[ci][i]
			slot.Cohort = co.Name
			slot.Index = i
			slot.Arrival = arrivals[i]
			if evented {
				// Arrival timers arm in cohort/session order after the
				// fault timers, so same-instant ties resolve exactly as
				// the goroutine engine's spawn order does.
				ev.arm(tb, &profile, co, servers, lossWins, i, arrivals[i], sessSeed, start, slot)
				continue
			}
			wg.Add(1)
			clock.Go(func(sp *netem.Participant) {
				defer wg.Done()
				slot.Metrics, slot.Err = runSession(ctx, sp, tb, &profile, co, servers, lossWins, i, arrivals[i], sessSeed, start)
			})
		}
	}
	if evented {
		ev.wait(driver)
	} else {
		// Park outside the clock's accounting while the sessions drain;
		// they must be free to advance virtual time.
		driver.Suspend()
		wg.Wait()
		driver.Resume()
	}

	// Ride out the fault horizon: recovery timers scheduled past the last
	// session's completion (a restart nobody was waiting for) must fire
	// before the books are sampled, or the window records — and the Loads
	// rows a restart appends — would depend on wall-clock racing.
	if len(sc.Faults) > 0 {
		driver.SleepUntil(start.Add(sc.faultHorizon()).Add(time.Millisecond))
	}

	// Every session has torn down its transports through the clock-visible
	// conn abort protocol, so the origin's per-connection loops unwind at
	// deterministic virtual instants. Join that drain barrier on the
	// clock, then sample the per-server books exactly once: after a
	// settled drain they are final and exact — no wall-clock quiescence
	// polling, no racy in-flight remainders.
	// Edges drain first — their client-facing conns unwind, releasing any
	// backhaul fills still in flight — then the origin behind them. After
	// both barriers settle, edge and origin books alike are final.
	settled := true
	for _, e := range edges {
		if !e.Drain(driver) {
			settled = false
		}
	}
	if !tb.Drain(driver) {
		settled = false
	}
	loads := tb.Cluster().Loads()
	edgeStats := make([]edge.Stats, 0, len(edges))
	for _, e := range edges {
		edgeStats = append(edgeStats, e.Stats())
	}
	driver.Unregister()

	rep := buildReport(sc, results, loads)
	rep.Edges = edgeStats
	rep.Faults = faults.snapshot()
	rep.epoch = start
	rep.LoadsSettled = settled
	return rep, nil
}

// runSession executes one cohort member: wait for its arrival instant,
// attach a client with per-session links (degrade events compiled in),
// arm down events, and stream. sp is the session goroutine's clock
// handle; every park — the arrival wait and the whole session via
// StreamAs — goes through it.
func runSession(ctx context.Context, sp *netem.Participant, tb *msplayer.Testbed, profile *msplayer.Profile,
	co *Cohort, servers map[string][]string, lossWins map[string][]netem.LossWindow,
	idx int, arrival time.Duration, sessSeed int64, start time.Time) (*msplayer.Metrics, error) {
	clock := tb.Clock()
	sp.SleepUntil(start.Add(arrival))

	// The session RNG decides event participation; its draws happen in a
	// fixed order, so participation is a pure function of the seed.
	rng := rand.New(rand.NewSource(sessSeed))
	wifiProf := profile.WiFi
	if co.WiFi != nil {
		wifiProf = *co.WiFi
	}
	lteProf := profile.LTE
	if co.LTE != nil {
		lteProf = *co.LTE
	}
	overlayLossWindows(&wifiProf, lossWins)
	overlayLossWindows(&lteProf, lossWins)

	var downs []Event
	for _, ev := range co.Events {
		affected := ev.Fraction == 0 || ev.Fraction >= 1 || rng.Float64() < ev.Fraction
		if !affected {
			continue
		}
		onset := start.Add(ev.At + time.Duration(idx)*ev.Stagger)
		switch ev.Kind {
		case EventWiFiDegrade:
			wifiProf.Shape = composeShape(wifiProf.Shape, scaleWindow(onset, ev.Duration, ev.Factor))
		case EventLTEDegrade:
			lteProf.Shape = composeShape(lteProf.Shape, scaleWindow(onset, ev.Duration, ev.Factor))
		case EventWiFiDown, EventLTEDown:
			ev := ev
			downs = append(downs, ev)
		}
	}

	client := tb.NewClient(wifiProf, lteProf, sessSeed)

	for _, ev := range downs {
		iface := client.WiFi()
		if ev.Kind == EventLTEDown {
			iface = client.LTE()
		}
		onset := start.Add(ev.At + time.Duration(idx)*ev.Stagger)
		end := onset.Add(ev.Duration)
		release := tb.Inject(func(ip *netem.Participant) {
			if !clock.Now().Before(end) {
				return // window already over when the session arrived
			}
			ip.SleepUntil(onset)
			iface.SetAlive(false)
			ip.SleepUntil(end)
			iface.SetAlive(true)
		})
		defer release()
	}

	sched, err := co.Scheduler.build()
	if err != nil {
		return nil, err
	}
	return client.StreamAs(ctx, sp, msplayer.SessionConfig{
		Scheduler:          sched,
		Paths:              co.Paths,
		Buffer:             co.Buffer,
		Video:              co.Video,
		Itag:               co.Itag,
		VideoServers:       servers,
		StopAfterPreBuffer: co.StopAfterPreBuffer,
		StopAfterRefills:   co.StopAfterRefills,
		RequestTimeout:     co.RequestTimeout,
		Resilience:         co.Resilience,
		Seed:               sessSeed,
	})
}

// overlayLossWindows appends the scenario's loss-storm windows for lp's
// network onto the profile. The append clips capacity first, so the
// shared profile's own window slice is never mutated in place.
func overlayLossWindows(lp *msplayer.LinkProfile, wins map[string][]netem.LossWindow) {
	extra := wins[lp.Name]
	if len(extra) == 0 {
		return
	}
	lp.LossWindows = append(lp.LossWindows[:len(lp.LossWindows):len(lp.LossWindows)], extra...)
}

// eventedRun drives a scenario's sessions as event-loop state machines:
// one shared netem.Loop for every session's machines, arrival timers
// instead of parked spawn goroutines, and a completion count the driver
// parks on. The whole run needs O(cores) goroutines regardless of the
// session count.
type eventedRun struct {
	loop *netem.Loop

	mu        sync.Mutex
	cond      *netem.Cond
	remaining int
	handles   []*msplayer.EventedSession
	slots     []*SessionResult
}

// errClockStopped fills the slots of evented sessions the emulation
// clock stopped out from under (mirroring the goroutine engine, whose
// sessions return core's clock-stopped error from their own teardown).
var errClockStopped = fmt.Errorf("fleet: emulation clock stopped mid-scenario")

// arm schedules one session's arrival: at the arrival instant the
// timer callback — a loop step — performs exactly what runSession does
// after its arrival sleep (participation draws, client attachment, down
// events, scheduler build) and starts the session machines.
func (ev *eventedRun) arm(tb *msplayer.Testbed, profile *msplayer.Profile, co *Cohort,
	servers map[string][]string, lossWins map[string][]netem.LossWindow,
	idx int, arrival time.Duration, sessSeed int64, start time.Time, slot *SessionResult) {
	ev.remaining++
	ev.slots = append(ev.slots, slot)
	clock := tb.Clock()
	finish := func(m *msplayer.Metrics, err error) {
		slot.Metrics, slot.Err = m, err
		ev.mu.Lock()
		ev.remaining--
		ev.cond.Broadcast()
		ev.mu.Unlock()
	}
	spawn := func() {
		// The session RNG decides event participation; its draws happen
		// in a fixed order, so participation is a pure function of the
		// seed — the same order and draws as runSession's.
		rng := rand.New(rand.NewSource(sessSeed))
		wifiProf := profile.WiFi
		if co.WiFi != nil {
			wifiProf = *co.WiFi
		}
		lteProf := profile.LTE
		if co.LTE != nil {
			lteProf = *co.LTE
		}
		overlayLossWindows(&wifiProf, lossWins)
		overlayLossWindows(&lteProf, lossWins)
		var downs []Event
		for _, ev := range co.Events {
			affected := ev.Fraction == 0 || ev.Fraction >= 1 || rng.Float64() < ev.Fraction
			if !affected {
				continue
			}
			onset := start.Add(ev.At + time.Duration(idx)*ev.Stagger)
			switch ev.Kind {
			case EventWiFiDegrade:
				wifiProf.Shape = composeShape(wifiProf.Shape, scaleWindow(onset, ev.Duration, ev.Factor))
			case EventLTEDegrade:
				lteProf.Shape = composeShape(lteProf.Shape, scaleWindow(onset, ev.Duration, ev.Factor))
			case EventWiFiDown, EventLTEDown:
				ev := ev
				downs = append(downs, ev)
			}
		}
		client := tb.NewClient(wifiProf, lteProf, sessSeed)
		for _, dev := range downs {
			iface := client.WiFi()
			if dev.Kind == EventLTEDown {
				iface = client.LTE()
			}
			onset := start.Add(dev.At + time.Duration(idx)*dev.Stagger)
			end := onset.Add(dev.Duration)
			if !clock.Now().Before(end) {
				continue // window already over when the session arrived
			}
			clock.NewTimer(func() { iface.SetAlive(false) }).Schedule(onset)
			clock.NewTimer(func() { iface.SetAlive(true) }).Schedule(end)
		}
		sched, err := co.Scheduler.build()
		if err != nil {
			finish(nil, err)
			return
		}
		es, err := client.StreamEvented(ev.loop, msplayer.SessionConfig{
			Scheduler:          sched,
			Paths:              co.Paths,
			Buffer:             co.Buffer,
			Video:              co.Video,
			Itag:               co.Itag,
			VideoServers:       servers,
			StopAfterPreBuffer: co.StopAfterPreBuffer,
			StopAfterRefills:   co.StopAfterRefills,
			RequestTimeout:     co.RequestTimeout,
			Resilience:         co.Resilience,
			Seed:               sessSeed,
		}, finish)
		if err != nil {
			finish(nil, err)
			return
		}
		ev.mu.Lock()
		ev.handles = append(ev.handles, es)
		ev.mu.Unlock()
	}
	clock.NewTimer(func() { ev.loop.Do(spawn) }).Schedule(start.Add(arrival))
}

// wait parks the driver until every armed session has completed. On a
// stopped clock it interrupts the surviving sessions (collecting their
// partial, sealed metrics) and marks never-arrived slots with
// errClockStopped, mirroring the goroutine engine's stopped-clock
// unwind.
func (ev *eventedRun) wait(driver *netem.Participant) {
	stopped := false
	ev.mu.Lock()
	for ev.remaining > 0 {
		if !ev.cond.Wait(driver) {
			stopped = true
			break
		}
	}
	handles := append([]*msplayer.EventedSession(nil), ev.handles...)
	ev.mu.Unlock()
	if !stopped {
		return
	}
	for _, es := range handles {
		es.Interrupt() // idempotent; completed sessions ignore it
	}
	// Sessions whose arrival timer never fired have no handle; their
	// slots are still empty (a finished session always has Metrics or a
	// non-nil Err).
	for _, slot := range ev.slots {
		if slot.Metrics == nil && slot.Err == nil {
			slot.Err = errClockStopped
		}
	}
}
func scaleWindow(onset time.Time, d time.Duration, factor float64) func(trace.Rate) trace.Rate {
	end := onset.Add(d)
	return func(base trace.Rate) trace.Rate {
		return trace.RateFunc(func(t time.Time) float64 {
			r := base.RateAt(t)
			if !t.Before(onset) && t.Before(end) {
				return r * factor
			}
			return r
		})
	}
}

// composeShape chains shape transforms (inner first).
func composeShape(inner, outer func(trace.Rate) trace.Rate) func(trace.Rate) trace.Rate {
	if inner == nil {
		return outer
	}
	return func(base trace.Rate) trace.Rate { return outer(inner(base)) }
}
