package fleet

import (
	"context"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// runEngine runs a builtin scenario on the given engine and returns its
// rendered report.
func runEngine(t *testing.T, name string, sessions int, seed int64, engine string) string {
	t.Helper()
	sc, err := Builtin(name, sessions, seed)
	if err != nil {
		t.Fatal(err)
	}
	sc.Engine = engine
	rep, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	return rep.String()
}

// diffReports fails the test with the first differing lines of two
// reports that were expected to be byte-identical.
func diffReports(t *testing.T, label, want, got string) {
	t.Helper()
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			t.Errorf("%s: line %d differs\n  want: %s\n  got:  %s", label, i+1, wl[i], gl[i])
			return
		}
	}
	t.Errorf("%s: reports differ in length (%d vs %d lines)", label, len(wl), len(gl))
}

// TestEngineParity is the cross-engine fence: every builtin scenario
// must produce a byte-identical report on the goroutine engine and the
// event-loop engine. It covers every behavioural regime — pre-buffer-
// only crowds, full plays with steady-state gate cycles, edge tiers,
// fault plans, mid-session link events and mixed-scheduler cohorts.
func TestEngineParity(t *testing.T) {
	// The fence holds under the production scheduler conditions every
	// committed report is pinned under. Race instrumentation perturbs
	// goroutine scheduling enough to flip pre-existing same-instant
	// freedom — e.g. the order Broadcast-woken blocking waiters
	// re-acquire the chunk mutex — and those flips move bytes in BOTH
	// engines' reports (the blocking engine's wifiwave/ramp output
	// changes under -race with no evented engine in sight). The evented
	// gates that must survive -race (double-run determinism, goldens,
	// goroutine ceiling) have their own tests below.
	if raceEnabled {
		t.Skip("cross-engine parity is pinned under the production scheduler; -race perturbs same-instant scheduling freedom in both engines")
	}
	for _, tc := range []struct {
		name     string
		sessions int
	}{
		{"flashcrowd", 24},
		{"densecrowd", 100},
		{"megacrowd", 500},
		{"coldedge", 40},
		{"edgemesh", 40},
		{"originstorm", 24},
		// edgeflap used to be pinned at a tie-free population: the
		// single-flight fill opener's network named the upstream origin
		// server, so at populations where misses from both networks
		// reached the store at one virtual instant the per-origin books
		// depended on mutex arrival order. Fill sources are now a pure
		// hash of the page key (edge.Cache.fillSource), so the CI-smoke
		// population works here too.
		{"edgeflap", 24},
		// chaosfleet exercises the full resilience surface on both
		// engines at once: breakers, hedges, partitions, loss storms and
		// flapping from a seeded randomized plan.
		{"chaosfleet", 16},
		{"ramp", 30},
		{"wifiwave", 30},
		{"abtest", 30},
	} {
		a := runEngine(t, tc.name, tc.sessions, 7, EngineGoroutine)
		b := runEngine(t, tc.name, tc.sessions, 7, EngineEventLoop)
		if a != b {
			diffReports(t, tc.name, a, b)
		}
	}
}

// TestEventedGoldens re-runs the committed 200-session seed-1 golden
// scenarios on the event-loop engine and compares byte-for-byte against
// the same baselines the goroutine engine is pinned to — the reports
// must be indistinguishable from the files on disk.
func TestEventedGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("200-session golden runs in -short mode")
	}
	for _, name := range []string{"flashcrowd", "originstorm", "edgeflap"} {
		want, err := os.ReadFile(filepath.Join("testdata", name+"_200_seed1.txt"))
		if err != nil {
			t.Fatal(err)
		}
		if got := runEngine(t, name, 200, 1, EngineEventLoop); got != string(want) {
			diffReports(t, name+" (evented vs golden)", string(want), got)
		}
	}
}

// TestEventedDeterministic is the scale smoke for the event-loop
// engine: a 2000-session megacrowd run twice with the same seed must
// render byte-identical reports. CI runs this under -race, where the
// double run also shakes out loop-confinement violations.
func TestEventedDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("2000-session double run in -short mode")
	}
	a := runEngine(t, "megacrowd", 2000, 59, EngineEventLoop)
	b := runEngine(t, "megacrowd", 2000, 59, EngineEventLoop)
	if a != b {
		t.Fatalf("same-seed evented megacrowd reports differ:\n--- run 1\n%s--- run 2\n%s", a, b)
	}
}

// TestEventedGoroutineCeiling asserts the point of the event-loop
// engine: a 2000-session fleet must run on a goroutine count bounded by
// a small constant — O(cores + servers), independent of the session
// count. A wall-clock sampler records the peak goroutine count over the
// whole run (spawn ramp, steady state and teardown alike); on the
// goroutine engine the same scenario peaks in the thousands.
func TestEventedGoroutineCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("2000-session run in -short mode")
	}
	var peak atomic.Int64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if n := int64(runtime.NumGoroutine()); n > peak.Load() {
				peak.Store(n)
			}
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond): //detlint:allow wallclock -- goroutine-count sampler polls in real time, outside the emulation
			}
		}
	}()
	runEngine(t, "megacrowd", 2000, 7, EngineEventLoop)
	close(stop)
	<-done
	const ceiling = 64
	if p := peak.Load(); p > ceiling {
		t.Fatalf("2000-session evented fleet peaked at %d goroutines, want <= %d", p, ceiling)
	} else {
		t.Logf("2000-session evented fleet peaked at %d goroutines", p)
	}
}
