package fleet

import (
	"context"
	"fmt"
	"testing"
)

// runChaos runs one chaosfleet configuration and returns the report.
func runChaos(t *testing.T, sessions int, seed int64, engine string) *Report {
	t.Helper()
	sc, err := Builtin("chaosfleet", sessions, seed)
	if err != nil {
		t.Fatal(err)
	}
	sc.Engine = engine
	rep, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestChaosSweepDeterminism is the chaos fence: across a sweep of chaos
// seeds — each a distinct splitmix64-expanded storm of replica kills,
// blackholes, partitions, loss storms and flapping — every chaosfleet
// run must (1) double-run byte-identically, (2) render byte-identically
// on the goroutine and event-loop engines, and (3) pass the structural
// invariant checker: all sessions terminal, origin books settled and
// balanced, every windowed fault recovered. The full 25-seed sweep runs
// in long mode; CI's -short pass (which carries -race) keeps a 4-seed
// subset so loop-confinement violations under chaos still get shaken
// out on every push.
func TestChaosSweepDeterminism(t *testing.T) {
	const sessions = 30
	seeds := make([]int64, 25)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	if testing.Short() {
		seeds = seeds[:4]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			var cross [2]string
			for ei, engine := range []string{EngineGoroutine, EngineEventLoop} {
				a := runChaos(t, sessions, seed, engine)
				b := runChaos(t, sessions, seed, engine)
				if as, bs := a.String(), b.String(); as != bs {
					diffReports(t, fmt.Sprintf("seed %d %s double-run", seed, engine), as, bs)
					return
				}
				if err := CheckInvariants(a); err != nil {
					t.Errorf("seed %d %s: invariants violated: %v", seed, engine, err)
				}
				cross[ei] = a.String()
			}
			if cross[0] != cross[1] {
				diffReports(t, fmt.Sprintf("seed %d cross-engine", seed), cross[0], cross[1])
			}
		})
	}
}

// TestChaosPlanShapes: distinct seeds must expand into distinct fault
// timelines (the generator is not collapsing), every expanded plan must
// stay inside its horizon with recovery for every windowed fault, and
// expansion must be a pure function of the plan parameters.
func TestChaosPlanShapes(t *testing.T) {
	shapes := map[string]int64{}
	for seed := int64(1); seed <= 25; seed++ {
		p := ChaosPlan{Seed: seed, Intensity: 2, Horizon: 20e9}
		a := p.Expand(2, 0)
		b := p.Expand(2, 0)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("seed %d: expansion is not a pure function of the plan", seed)
		}
		if len(a) == 0 {
			t.Fatalf("seed %d: empty fault plan at intensity 2", seed)
		}
		for _, f := range a {
			if f.At < 0 || f.At+f.Duration > p.Horizon {
				t.Errorf("seed %d: fault %+v escapes the horizon", seed, f)
			}
		}
		if prev, dup := shapes[fmt.Sprint(a)]; dup {
			t.Errorf("seeds %d and %d expanded into identical storms", prev, seed)
		}
		shapes[fmt.Sprint(a)] = seed
	}
}
