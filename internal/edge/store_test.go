package edge

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newTestStore builds a clockless store with a hand-advanced virtual
// now and a page size of one byte, so budgets read as page counts.
func newTestStore(budget int64, policy string, stampede bool) (*store, *time.Time) {
	s := newStore(nil, budget, 1, policy, stampede)
	now := time.Unix(1000, 0)
	s.now = func() time.Time { return now }
	return s, &now
}

func key(video string, pg int64) pageKey { return pageKey{video: video, itag: 22, page: pg} }

// get acquires a one-byte page, failing the test on error.
func get(t *testing.T, s *store, k pageKey) {
	t.Helper()
	if _, err := s.acquire(nil, k, func() ([]byte, error) { return []byte{1}, nil }); err != nil {
		t.Fatalf("acquire %v: %v", k, err)
	}
}

// resident returns whether k is in the store.
func resident(s *store, k pageKey) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.pages[k]
	return ok
}

func wantResident(t *testing.T, s *store, in []pageKey, out []pageKey) {
	t.Helper()
	for _, k := range in {
		if !resident(s, k) {
			t.Errorf("page %v missing from store", k)
		}
	}
	for _, k := range out {
		if resident(s, k) {
			t.Errorf("page %v still resident, want evicted", k)
		}
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	s, now := newTestStore(3, PolicyLRU, false)
	a, b, c, d := key("a", 0), key("b", 0), key("c", 0), key("d", 0)
	get(t, s, a)
	*now = now.Add(time.Second)
	get(t, s, b)
	*now = now.Add(time.Second)
	get(t, s, c)
	*now = now.Add(time.Second)
	get(t, s, a) // refresh a's recency past b and c
	*now = now.Add(time.Second)
	get(t, s, d) // over budget: b is now the least recently used
	wantResident(t, s, []pageKey{a, c, d}, []pageKey{b})
	hits, misses, fills, evictions, res, _, _, _ := s.stats()
	if hits != 1 || misses != 4 || fills != 4 || evictions != 1 || res != 3 {
		t.Errorf("stats = hits %d misses %d fills %d evictions %d resident %d, want 1/4/4/1/3",
			hits, misses, fills, evictions, res)
	}
}

func TestLRUTieBreaksByKeyOrder(t *testing.T) {
	s, now := newTestStore(2, PolicyLRU, false)
	// b then a land at the same virtual instant: equal recency, so the
	// eviction tie-break is pure (videoID, itag, page) order.
	get(t, s, key("b", 0))
	get(t, s, key("a", 0))
	*now = now.Add(time.Second)
	get(t, s, key("c", 0))
	wantResident(t, s, []pageKey{key("b", 0), key("c", 0)}, []pageKey{key("a", 0)})

	// Page index is the last tie-break component.
	s2, now2 := newTestStore(2, PolicyLRU, false)
	get(t, s2, key("v", 7))
	get(t, s2, key("v", 3))
	*now2 = now2.Add(time.Second)
	get(t, s2, key("v", 9))
	wantResident(t, s2, []pageKey{key("v", 7), key("v", 9)}, []pageKey{key("v", 3)})
}

func TestLFUEvictsLeastFrequentlyUsed(t *testing.T) {
	s, now := newTestStore(2, PolicyLFU, false)
	a, b, c := key("a", 0), key("b", 0), key("c", 0)
	get(t, s, a)
	get(t, s, b)
	*now = now.Add(time.Second)
	get(t, s, a) // a: 2 uses, b: 1
	*now = now.Add(time.Second)
	get(t, s, a) // a: 3 uses
	*now = now.Add(time.Second)
	get(t, s, c) // over budget: b has the fewest uses
	wantResident(t, s, []pageKey{a, c}, []pageKey{b})
}

func TestLFUTieBreaksByKeyOrder(t *testing.T) {
	s, now := newTestStore(2, PolicyLFU, false)
	// Equal use counts; recency differs (b is older) but LFU must break
	// the tie on key order, evicting a, not the least recent.
	get(t, s, key("b", 0))
	*now = now.Add(time.Second)
	get(t, s, key("a", 0))
	*now = now.Add(time.Second)
	get(t, s, key("c", 0))
	wantResident(t, s, []pageKey{key("b", 0), key("c", 0)}, []pageKey{key("a", 0)})
}

// TestSameInstantInsertOrderIndependent is the determinism core: two
// stores folding the same pages at one virtual instant in opposite wall
// orders converge on the same resident set.
func TestSameInstantInsertOrderIndependent(t *testing.T) {
	for _, policy := range []string{PolicyLRU, PolicyLFU} {
		ab, _ := newTestStore(1, policy, false)
		get(t, ab, key("a", 0))
		get(t, ab, key("b", 0))
		ba, _ := newTestStore(1, policy, false)
		get(t, ba, key("b", 0))
		get(t, ba, key("a", 0))
		for _, k := range []pageKey{key("a", 0), key("b", 0)} {
			if resident(ab, k) != resident(ba, k) {
				t.Errorf("%s: residency of %v depends on insert order", policy, k)
			}
		}
		wantResident(t, ab, []pageKey{key("b", 0)}, []pageKey{key("a", 0)})
	}
}

// TestSingleFlightCoalesces pins the tentpole guarantee: N concurrent
// misses on one page trigger exactly one upstream fetch, and every
// caller gets the fetched bytes.
func TestSingleFlightCoalesces(t *testing.T) {
	s, _ := newTestStore(8, PolicyLRU, false)
	const n = 8
	var fetches atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	fetch := func() ([]byte, error) {
		fetches.Add(1)
		close(started)
		<-release
		return []byte{42}, nil
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	data := make([][]byte, n)
	wg.Add(1)
	go func() {
		defer wg.Done()
		data[0], errs[0] = s.acquire(nil, key("v", 0), fetch)
	}()
	<-started // the filler holds the flight; everyone else must coalesce
	for i := 1; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			data[i], errs[i] = s.acquire(nil, key("v", 0), fetch)
		}()
	}
	close(release)
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if len(data[i]) != 1 || data[i][0] != 42 {
			t.Fatalf("caller %d got %v, want [42]", i, data[i])
		}
	}
	if got := fetches.Load(); got != 1 {
		t.Fatalf("fetches = %d, want 1 (single-flight)", got)
	}
	_, misses, fills, _, _, _, _, _ := s.stats()
	if fills != 1 {
		t.Errorf("fills = %d, want 1", fills)
	}
	if misses != n {
		t.Errorf("misses = %d, want %d (waiters count as misses)", misses, n)
	}
}

// TestStampedeFetchesPerMiss checks the storm baseline: with coalescing
// disabled every concurrent miss goes upstream.
func TestStampedeFetchesPerMiss(t *testing.T) {
	s, _ := newTestStore(8, PolicyLRU, true)
	const n = 6
	var fetches atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			if _, err := s.acquire(nil, key("v", 0), func() ([]byte, error) {
				fetches.Add(1)
				return []byte{7}, nil
			}); err != nil {
				t.Error(err)
			}
		}()
	}
	close(gate)
	wg.Wait()
	// At the same virtual instant no fill is a strict hit, so all n miss.
	if got := fetches.Load(); got != n {
		t.Fatalf("fetches = %d, want %d (stampede mode)", got, n)
	}
	_, _, fills, _, res, _, _, _ := s.stats()
	if fills != n || res != 1 {
		t.Errorf("fills = %d resident = %d, want %d/1", fills, res, n)
	}
}

// TestStrictHitRule: a request at the fill's own instant is a miss; one
// virtual tick later it is a hit.
func TestStrictHitRule(t *testing.T) {
	s, now := newTestStore(4, PolicyLRU, false)
	k := key("v", 0)
	get(t, s, k)
	get(t, s, k) // same instant: resident, but not a strict hit
	hits, misses, fills, _, _, _, _, _ := s.stats()
	if hits != 0 || misses != 2 || fills != 1 {
		t.Fatalf("same-instant: hits %d misses %d fills %d, want 0/2/1", hits, misses, fills)
	}
	*now = now.Add(time.Nanosecond)
	get(t, s, k)
	hits, misses, fills, _, _, _, _, _ = s.stats()
	if hits != 1 || misses != 2 || fills != 1 {
		t.Fatalf("after tick: hits %d misses %d fills %d, want 1/2/1", hits, misses, fills)
	}
}
