package edge

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/handshake"
	"repro/internal/httpx"
	"repro/internal/netem"
	"repro/internal/netem/trace"
	"repro/internal/origin"
	"repro/internal/videostore"
)

// Network attaches an edge cache to one access network: the cache
// listens at edge<name>.youtube.<network>.test:443 in that network and
// fills misses from the named upstream origin replica.
type Network struct {
	// Name is the access network ("wifi", "lte").
	Name string
	// Upstream is the origin video-server address fills fetch from.
	Upstream string
}

// Backhaul describes the edge-to-origin link. It is deliberately clean
// — constant rate, no jitter, no loss — which is both realistic for a
// provisioned backhaul and what keeps concurrent fills deterministic
// (see doc.go).
type Backhaul struct {
	// RateMbps is the link rate (default 200 Mb/s).
	RateMbps float64
	// Delay is the one-way propagation delay (default 4 ms).
	Delay time.Duration
	// Shape optionally transforms the constant base rate into a
	// time-varying one — the fault engine compiles backhaul-degradation
	// windows into it at deploy time, so a brown-out is part of the
	// link's deterministic timetable rather than a runtime mutation.
	Shape func(trace.Rate) trace.Rate
}

func (b Backhaul) withDefaults() Backhaul {
	if b.RateMbps == 0 {
		b.RateMbps = 200
	}
	if b.Delay == 0 {
		b.Delay = 4 * time.Millisecond
	}
	return b
}

// Config describes one edge cache deployment.
type Config struct {
	// Name labels the edge ("edge1") and prefixes its listener names.
	Name string
	// Networks are the access networks the edge serves, each with its
	// fill upstream.
	Networks []Network
	// ByteBudget bounds the store; every resident page charges one full
	// PageSize against it (default 8 MiB).
	ByteBudget int64
	// PageSize is the cache page granularity (default 64 KiB).
	PageSize int64
	// Policy is PolicyLRU (default) or PolicyLFU.
	Policy string
	// Stampede disables single-flight fill coalescing, reproducing
	// cache-stampede storms: every concurrent miss fetches upstream.
	Stampede bool
	// Catalog is the served content catalog (for sizes and formats).
	Catalog *videostore.Catalog
	// Secret verifies client tokens and signs backhaul fill tokens;
	// it must match the origin cluster's.
	Secret []byte
	// TokenTTL is the fill-token validity (default origin.TokenTTL).
	TokenTTL time.Duration
	// Handshake sets the edge server's Δ₁/Δ₂ processing delays.
	Handshake handshake.Params
	// Backhaul shapes the edge-to-origin link.
	Backhaul Backhaul
}

// Stats is one edge's exact accounting, sampled after Drain.
type Stats struct {
	// Name and Policy identify the edge in reports.
	Name   string
	Policy string
	// Hits counts page requests served from a previously filled page;
	// Misses counts the rest (fillers, coalesced waiters, stampeders).
	Hits, Misses int64
	// Fills counts completed upstream fetches; with single-flight
	// coalescing and no evictions it equals the distinct pages touched.
	Fills int64
	// Evictions counts pages dropped to fit the byte budget.
	Evictions int64
	// Pages and UsedBytes describe the final resident set.
	Pages     int64
	UsedBytes int64
	// ServedBytes counts body bytes written toward clients;
	// BackhaulBytes counts bytes fetched from the origin.
	ServedBytes   int64
	BackhaulBytes int64
}

// HitRatio is hits over page requests.
func (s Stats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Cache is a running edge cache: one store, one backhaul interface,
// and one httpx server per fronted access network. The store pointer
// is atomic because a cold Restart swaps in a wiped store while
// stragglers of the previous incarnation (handlers finishing a
// backhaul fill that outlived the outage abort) may still read it.
type Cache struct {
	name     string
	n        *netem.Network
	cfg      Config // post-defaults, for Restart
	clock    *netem.Clock
	catalog  *videostore.Catalog
	secret   []byte
	tokenTTL time.Duration
	policy   string
	pageSize int64
	store    atomic.Pointer[store]
	backhaul *netem.Interface
	addrs    map[string]string // network -> listener addr; immutable after Deploy

	mu   sync.Mutex
	srvs []*httpx.Server // every incarnation's servers, deploy order
	old  []*store        // stores retired by Restart; their books still count
}

// Deploy builds and starts an edge cache on n.
func Deploy(n *netem.Network, cfg Config) (*Cache, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("edge: config needs a name")
	}
	if len(cfg.Networks) == 0 {
		return nil, fmt.Errorf("edge: %s fronts no networks", cfg.Name)
	}
	if cfg.Catalog == nil {
		cfg.Catalog = videostore.DefaultCatalog()
	}
	if cfg.ByteBudget == 0 {
		cfg.ByteBudget = 8 << 20
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = 64 << 10
	}
	switch cfg.Policy {
	case "":
		cfg.Policy = PolicyLRU
	case PolicyLRU, PolicyLFU:
	default:
		return nil, fmt.Errorf("edge: unknown policy %q", cfg.Policy)
	}
	if cfg.TokenTTL == 0 {
		cfg.TokenTTL = origin.TokenTTL
	}
	bh := cfg.Backhaul.withDefaults()
	cfg.Backhaul = bh
	clock := n.Clock()
	e := &Cache{
		name:     cfg.Name,
		n:        n,
		cfg:      cfg,
		clock:    clock,
		catalog:  cfg.Catalog,
		secret:   cfg.Secret,
		tokenTTL: cfg.TokenTTL,
		policy:   cfg.Policy,
		pageSize: cfg.PageSize,
		addrs:    make(map[string]string),
	}
	e.store.Store(newStore(clock, cfg.ByteBudget, cfg.PageSize, cfg.Policy, cfg.Stampede))
	link := netem.LinkParams{Rate: netem.Mbps(bh.RateMbps), Delay: bh.Delay, SlowStart: true}
	if bh.Shape != nil {
		base := link.Rate
		link.Trace = bh.Shape(trace.RateFunc(func(time.Time) float64 { return base }))
	}
	e.backhaul = n.NewInterface(cfg.Name+"-backhaul", link, link)
	for _, nw := range cfg.Networks {
		if nw.Upstream == "" {
			e.Close()
			return nil, fmt.Errorf("edge: %s has no upstream in network %q", cfg.Name, nw.Name)
		}
	}
	if err := e.listen(); err != nil {
		e.Close()
		return nil, err
	}
	return e, nil
}

// listen starts one httpx server per fronted network, registering the
// edge's addresses. Called at Deploy and again by Restart (the outage
// deregistered them).
func (e *Cache) listen() error {
	for _, nw := range e.cfg.Networks {
		addr := fmt.Sprintf("%s.youtube.%s.test:443", e.name, nw.Name)
		l, err := e.n.Listen(addr, 0)
		if err != nil {
			return fmt.Errorf("edge: listen %s: %w", addr, err)
		}
		e.addrs[nw.Name] = addr
		h := &netHandler{e: e, network: nw.Name}
		mux := http.NewServeMux()
		mux.HandleFunc("/videoplayback", h.handlePlayback)
		srv := httpx.Serve(e.clock, l, mux, e.cfg.Handshake)
		e.mu.Lock()
		e.srvs = append(e.srvs, srv)
		e.mu.Unlock()
	}
	return nil
}

// Outage crashes the edge at the current instant: every listener
// closes, established connections abort with netem.ErrServerDown and
// new dials fail, while the store and its books stay frozen. Safe to
// call from a netem.Timer callback — nothing here parks.
func (e *Cache) Outage() {
	e.mu.Lock()
	srvs := append([]*httpx.Server(nil), e.srvs...)
	e.mu.Unlock()
	for _, srv := range srvs {
		srv.Close()
	}
}

// Restart cold-restarts an outaged edge: fresh listeners on the same
// addresses over a wiped store. Resident pages are gone, so the first
// request wave after recovery re-fills the working set — a re-fill
// stampede, or a coalesced re-warm under single-flight. Books of
// earlier incarnations keep counting in Stats; only the resident set
// resets. Safe to call from a netem.Timer callback.
func (e *Cache) Restart() error {
	old := e.store.Swap(newStore(e.clock, e.cfg.ByteBudget, e.cfg.PageSize, e.policy, e.cfg.Stampede))
	e.mu.Lock()
	e.old = append(e.old, old)
	e.mu.Unlock()
	return e.listen()
}

// Name returns the edge's label.
func (e *Cache) Name() string { return e.name }

// Addr returns the edge's listener address in a network ("" if the
// edge does not front it).
func (e *Cache) Addr(network string) string { return e.addrs[network] }

// Stats snapshots the edge's books. Exact after Drain. Counters
// accumulate across cold restarts (the traffic happened, whichever
// incarnation served it); the resident set is the current store's —
// pages lost to a crash are not evictions.
func (e *Cache) Stats() Stats {
	hits, misses, fills, evictions, resident, served, backhaul, used := e.store.Load().stats()
	e.mu.Lock()
	for _, s := range e.old {
		h, m, f, ev, _, sv, bh, _ := s.stats()
		hits += h
		misses += m
		fills += f
		evictions += ev
		served += sv
		backhaul += bh
	}
	e.mu.Unlock()
	return Stats{
		Name: e.name, Policy: e.policy,
		Hits: hits, Misses: misses, Fills: fills, Evictions: evictions,
		Pages: resident, UsedBytes: used,
		ServedBytes: served, BackhaulBytes: backhaul,
	}
}

// Drain parks the caller until the edge's per-connection loops have
// unwound (p may be nil to park as a transient), in deploy order.
// After a true return the books are final.
func (e *Cache) Drain(p *netem.Participant) bool {
	e.mu.Lock()
	srvs := append([]*httpx.Server(nil), e.srvs...)
	e.mu.Unlock()
	settled := true
	for _, srv := range srvs {
		if !srv.Drain(p) {
			settled = false
		}
	}
	return settled
}

// Close shuts the edge's servers down in deploy order, aborting their
// connections.
func (e *Cache) Close() {
	e.mu.Lock()
	srvs := append([]*httpx.Server(nil), e.srvs...)
	e.mu.Unlock()
	for _, srv := range srvs {
		srv.Close()
	}
}

// netHandler serves one access network's playback requests. Fills are
// not routed through the handler's own network: the upstream replica
// is a pure function of the page key (see fillSource).
type netHandler struct {
	e       *Cache
	network string
}

// handlePlayback answers GET /videoplayback exactly like an origin
// video server — same query contract, same token checks, same header
// shape — but from the edge store, filling misses over the backhaul.
// Only the plain closed single-range GETs the players send are
// supported; anything else is a 501.
func (h *netHandler) handlePlayback(w http.ResponseWriter, r *http.Request) {
	e := h.e
	q := r.URL.Query()
	id := q.Get("v")
	v, err := e.catalog.Get(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	if q.Get("net") != h.network {
		http.Error(w, fmt.Sprintf("edge: token network %q not valid on %q", q.Get("net"), h.network), http.StatusForbidden)
		return
	}
	if err := origin.VerifyToken(e.secret, id, h.network, q.Get("token"), q.Get("expire"), e.clock.Now()); err != nil {
		http.Error(w, err.Error(), http.StatusForbidden)
		return
	}
	itag, err := strconv.Atoi(q.Get("itag"))
	if err != nil {
		http.Error(w, "edge: bad itag", http.StatusBadRequest)
		return
	}
	f, err := v.Format(itag)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	size := v.Size(f)
	if r.Method != http.MethodGet {
		http.Error(w, "edge: only GET is served", http.StatusNotImplemented)
		return
	}
	from, to, ok := parsePlainRange(r.Header.Get("Range"))
	if !ok {
		http.Error(w, "edge: only plain single-range GETs are served", http.StatusNotImplemented)
		return
	}
	if to >= size {
		http.Error(w, "edge: range beyond content", http.StatusRequestedRangeNotSatisfiable)
		return
	}
	hw := w.Header()
	hw.Set("Content-Type", "video/mp4")
	hw.Set("Accept-Ranges", "bytes")
	hw.Set("X-Edge", e.name)
	hw.Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", from, to, size))
	hw.Set("Content-Length", strconv.FormatInt(to-from+1, 10))
	w.WriteHeader(http.StatusPartialContent)

	// The body streams page by page: acquire each page covering the
	// range (hit, coalesced wait, or fill) and write its overlap through
	// the stable zero-copy path in the origin's 32 KB strides. Page
	// buffers are immutable and never recycled, so the borrowed views
	// satisfy WriteStable's contract (doc.go, ownership).
	sw, _ := w.(stableWriter)
	cp := httpx.ConnParticipant(w)
	for off := from; off <= to; {
		data, err := e.PageView(cp, id, itag, size, off/e.pageSize)
		if err != nil {
			return // fill failed or emulation stopped; the conn is done either way
		}
		pstart := (off / e.pageSize) * e.pageSize
		n := min(pstart+int64(len(data))-1, to) - off + 1
		view := data[off-pstart : off-pstart+n]
		for len(view) > 0 {
			k := min(len(view), rangeChunk)
			var werr error
			var wn int
			if sw != nil {
				wn, werr = sw.WriteStable(view[:k])
			} else {
				wn, werr = w.Write(view[:k])
			}
			e.store.Load().addServed(int64(wn))
			if werr != nil {
				return // aborted mid-body
			}
			view = view[k:]
		}
		off += n
	}
}

// PageView returns the store's view of one content page, filling it
// over the backhaul on a miss. The result is a borrowed view of an
// immutable edge-owned buffer: serve it or copy it, never retain it
// (registered as a detlint borrowck producer).
func (e *Cache) PageView(p *netem.Participant, video string, itag int, size, pg int64) ([]byte, error) {
	key := pageKey{video: video, itag: itag, page: pg}
	pstart := pg * e.pageSize
	plen := min(e.pageSize, size-pstart)
	return e.store.Load().acquire(p, key, func() ([]byte, error) {
		return e.fetchPage(p, key, pstart, plen)
	})
}

// fillSource picks the origin replica one page fills from: an FNV-1a
// hash of the page key over the fronted networks. The single-flight
// opener used to fill from its own listener's upstream, which made the
// per-origin request books depend on which same-instant miss won the
// store mutex — real multicore scheduler freedom, and the one report
// surface that could differ between runs (or engines) at populations
// where misses from different networks tie. Keying the choice to the
// page makes fill attribution a pure function of content, never of
// arrival order; the replicas are wire-identical, so the pick spreads
// backhaul load without biasing it.
func (e *Cache) fillSource(key pageKey) Network {
	nws := e.cfg.Networks
	if len(nws) == 1 {
		return nws[0]
	}
	h := uint64(14695981039346656037)
	for _, b := range []byte(key.video) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	h = (h ^ uint64(key.itag)) * 1099511628211
	h = (h ^ uint64(key.page)) * 1099511628211
	return nws[h%uint64(len(nws))]
}

// fetchPage fetches one page-aligned range from the page's fill-source
// origin replica over the backhaul: a fresh connection per fill, bound
// to the filling conn goroutine's clock handle, torn down when the
// body is read. The bytes come back in an owned, never-recycled
// buffer.
func (e *Cache) fetchPage(p *netem.Participant, key pageKey, pstart, plen int64) ([]byte, error) {
	nw := e.fillSource(key)
	tr := httpx.NewTransport(e.backhaul)
	tr.Bind(p)
	defer tr.CloseIdleConnections()
	expire := e.clock.Now().Add(e.tokenTTL)
	info := origin.VideoInfo{
		VideoID: key.video,
		Network: nw.Name,
		Token:   origin.SignToken(e.secret, key.video, expire, nw.Name),
		Expire:  expire.Unix(),
	}
	url := info.PlaybackURL(nw.Upstream, key.itag)
	return httpx.GetRange(context.Background(), &http.Client{Transport: tr}, url, pstart, pstart+plen-1)
}

// rangeChunk mirrors the origin's 32 KB response write strides, so
// pacing and flush behaviour downstream of an edge looks like the
// origin's.
const rangeChunk = 32 << 10

// stableWriter is implemented by httpx response writers for body bytes
// that are immutable and outlive the response.
type stableWriter interface {
	WriteStable(b []byte) (int, error)
}

// parsePlainRange parses the closed single-range form the players send
// ("bytes=a-b", both ends explicit).
func parsePlainRange(s string) (from, to int64, ok bool) {
	const pfx = "bytes="
	if len(s) <= len(pfx) || s[:len(pfx)] != pfx {
		return 0, 0, false
	}
	dash := -1
	for i := len(pfx); i < len(s); i++ {
		if s[i] == '-' {
			dash = i
			break
		}
	}
	if dash < 0 {
		return 0, 0, false
	}
	var err error
	if from, err = strconv.ParseInt(s[len(pfx):dash], 10, 64); err != nil || from < 0 {
		return 0, 0, false
	}
	if to, err = strconv.ParseInt(s[dash+1:], 10, 64); err != nil || to < from {
		return 0, 0, false
	}
	return from, to, true
}
