// Package edge emulates an edge-cache tier in front of the origin
// cluster: each Cache is an httpx server holding a bounded byte-budget
// store of content pages, serving plain single-range videoplayback GETs
// from cached pages and filling misses from an upstream origin replica
// over an emulated backhaul link. It is the middle layer of the
// YouTube-style delivery hierarchy the fleet scenarios model — client
// access links in front, the sharded origin behind — and a new
// experiment axis (cache policy x crowd shape x link mix) for the
// deterministic QoE reports.
//
// # Ownership of cached pages
//
// A cached page buffer is allocated once by the fill that brought it
// in and is immutable from that point on. The store only ever drops
// references at eviction — buffers are never recycled, pooled, or
// written again — so a view handed out by (*Cache).PageView remains
// valid for as long as the holder keeps it, even across evictions (the
// garbage collector keeps borrowed views alive). Handlers therefore
// write page views straight through the httpx WriteStable zero-copy
// path: the bytes are stable by construction. PageView is registered
// as a borrow producer with detlint's borrowck, which flags callers
// that retain a view beyond the call (struct fields, containers,
// spawned closures) — serve it or copy it, never store it.
//
// # Determinism invariants
//
// The store's observable state — resident set, eviction order, and the
// hit/miss/fill/evict/byte counters — is a pure function of the
// scenario seed, independent of wall-clock goroutine interleaving:
//
//   - Recency and frequency are keyed to virtual time, never to a
//     wall-clock or arrival-order counter. Same-instant touches
//     commute: they set the same lastUse and add to the use count.
//   - Eviction victims are picked by a total order — LRU compares
//     (lastUse, videoID, itag, page), LFU compares (uses, videoID,
//     itag, page) — so ties broken by (videoID, page) order, never by
//     map iteration or insertion order. The victim scan walks a slice
//     of resident pages, not a map.
//   - Budget accounting charges every resident page one full PageSize
//     (tail pages included), so same-instant concurrent inserts fold
//     to the same resident set in any wall order: each insert adds its
//     page then evicts global minima until the store fits, and with
//     uniform page cost that greedy fold is order-independent.
//   - A request is a hit only when the page's fill landed at a
//     strictly earlier virtual instant. A request racing a fill
//     completion at the same instant counts as a miss whichever way
//     the wall-clock race resolves (it either joins the flight or sees
//     a page whose fill instant equals now), and in neither case does
//     it touch recency/frequency — so the counters and the eviction
//     state cannot flap between runs.
//   - Single-flight waiters take the filled bytes from the flight
//     record, not a store re-lookup, so a same-instant eviction by an
//     unrelated insert cannot change what a waiter observes.
//   - The backhaul link is clean (no jitter, no loss), so the racy
//     per-interface dial sequence perturbs nothing observable, and
//     per-connection shaping makes a fill's duration a function of its
//     start instant and size alone.
package edge
