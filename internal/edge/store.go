package edge

import (
	"errors"
	"sync"
	"time"

	"repro/internal/netem"
)

// Eviction policies.
const (
	// PolicyLRU evicts the least-recently-used page, ties broken by
	// (videoID, itag, page) order.
	PolicyLRU = "lru"
	// PolicyLFU evicts the least-frequently-used page, ties broken by
	// (videoID, itag, page) order.
	PolicyLFU = "lfu"
)

// pageKey identifies one cached content page. The key order
// (videoID, itag, page) is the deterministic tie-break of both
// eviction policies.
type pageKey struct {
	video string
	itag  int
	page  int64
}

func (k pageKey) less(o pageKey) bool {
	if k.video != o.video {
		return k.video < o.video
	}
	if k.itag != o.itag {
		return k.itag < o.itag
	}
	return k.page < o.page
}

// page is one resident cache entry. data is immutable once inserted
// and never recycled; eviction only drops the reference (see doc.go).
type page struct {
	key      pageKey
	data     []byte
	fillTime time.Time // virtual instant the bytes landed
	lastUse  time.Time // fill instant, advanced by strict hits
	uses     int64     // fill plus strict hits
}

// flight is one in-progress single-flight fill. Waiters read the
// result from the flight record itself — never from a store re-lookup
// — so a same-instant eviction cannot change what they observe.
type flight struct {
	done bool
	data []byte
	err  error
}

// errStopped aborts waiters when the emulation clock stops mid-fill.
var errStopped = errors.New("edge: emulation clock stopped")

// store is the bounded byte-budget page store behind one edge cache.
// All determinism invariants are documented in doc.go.
type store struct {
	budget   int64 // bytes; every resident page charges one pageSize
	pageSize int64
	policy   string // PolicyLRU or PolicyLFU
	stampede bool   // disable single-flight coalescing
	now      func() time.Time

	mu      sync.Mutex
	cond    *netem.Cond
	pages   map[pageKey]*page
	order   []*page // resident pages; the victim scan walks this slice
	used    int64
	flights map[pageKey]*flight

	hits, misses, fills, evictions int64
	servedBytes, backhaulBytes     int64
}

func newStore(clock *netem.Clock, budget, pageSize int64, policy string, stampede bool) *store {
	s := &store{
		budget:   budget,
		pageSize: pageSize,
		policy:   policy,
		stampede: stampede,
		pages:    make(map[pageKey]*page),
		flights:  make(map[pageKey]*flight),
	}
	if clock != nil {
		s.now = clock.Now
	}
	s.cond = netem.NewCond(clock, &s.mu)
	return s
}

// acquire returns the page bytes for key, serving from the store on a
// hit and calling fetch (outside the store lock, on the caller's
// goroutine) on a miss. p is the caller's clock handle; single-flight
// waiters park through it.
func (s *store) acquire(p *netem.Participant, key pageKey, fetch func() ([]byte, error)) ([]byte, error) {
	now := s.now()
	s.mu.Lock()
	if pg, ok := s.pages[key]; ok && pg.fillTime.Before(now) {
		// A strict hit: the fill landed at an earlier instant, so every
		// wall-clock interleaving observes it. Touches commute.
		s.hits++
		pg.lastUse = now
		pg.uses++
		data := pg.data
		s.mu.Unlock()
		return data, nil
	}
	s.misses++
	if !s.stampede {
		if f, ok := s.flights[key]; ok {
			// Coalesce onto the in-progress fill.
			for !f.done {
				if !s.cond.Wait(p) {
					s.mu.Unlock()
					return nil, errStopped
				}
			}
			data, err := f.data, f.err
			s.mu.Unlock()
			return data, err
		}
		if pg, ok := s.pages[key]; ok {
			// Resident with fillTime == now: this request raced the fill
			// completion and lost the lock order. The other ordering would
			// have joined the flight — same bytes, same miss, no touch.
			data := pg.data
			s.mu.Unlock()
			return data, nil
		}
		f := &flight{}
		s.flights[key] = f
		s.mu.Unlock()
		data, err := fetch()
		s.mu.Lock()
		if err == nil {
			s.fill(key, data)
		}
		f.done, f.data, f.err = true, data, err
		delete(s.flights, key)
		s.cond.Broadcast()
		s.mu.Unlock()
		return data, err
	}
	// Stampede mode: every miss fetches upstream, cache-storm style.
	// A request racing a fill completion refetches in either wall
	// ordering (absent, or resident with fillTime == now), so the fill
	// count cannot flap between runs.
	s.mu.Unlock()
	data, err := fetch()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.fill(key, data)
	s.mu.Unlock()
	return data, nil
}

// fill accounts a completed upstream fetch and inserts (or refreshes)
// the page, then evicts global minima until the store fits. Callers
// hold s.mu.
func (s *store) fill(key pageKey, data []byte) {
	s.fills++
	s.backhaulBytes += int64(len(data))
	now := s.now()
	if pg, ok := s.pages[key]; ok {
		// A concurrent stampede fill already landed. Same bytes; refresh
		// the fill instant (same-instant refreshes write the same value).
		pg.data = data
		pg.fillTime = now
		pg.lastUse = now
		return
	}
	pg := &page{key: key, data: data, fillTime: now, lastUse: now, uses: 1}
	s.pages[key] = pg
	s.order = append(s.order, pg)
	s.used += s.pageSize
	for s.used > s.budget && len(s.order) > 0 {
		s.evict()
	}
}

// evict drops the policy's victim: the minimum of the policy's total
// order over resident pages. Callers hold s.mu.
func (s *store) evict() {
	vi := 0
	for i := 1; i < len(s.order); i++ {
		if s.less(s.order[i], s.order[vi]) {
			vi = i
		}
	}
	victim := s.order[vi]
	s.order[vi] = s.order[len(s.order)-1]
	s.order = s.order[:len(s.order)-1]
	delete(s.pages, victim.key)
	s.used -= s.pageSize
	s.evictions++
}

// less is the policy's total order: true when a is a better victim
// (ranks below b). LRU compares (lastUse, key); LFU (uses, key).
func (s *store) less(a, b *page) bool {
	switch s.policy {
	case PolicyLFU:
		if a.uses != b.uses {
			return a.uses < b.uses
		}
	default: // PolicyLRU
		if !a.lastUse.Equal(b.lastUse) {
			return a.lastUse.Before(b.lastUse)
		}
	}
	return a.key.less(b.key)
}

// addServed accounts body bytes written toward clients.
func (s *store) addServed(n int64) {
	s.mu.Lock()
	s.servedBytes += n
	s.mu.Unlock()
}

// stats snapshots the store's books.
func (s *store) stats() (hits, misses, fills, evictions, resident int64, served, backhaul, used int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses, s.fills, s.evictions, int64(len(s.order)), s.servedBytes, s.backhaulBytes, s.used
}
