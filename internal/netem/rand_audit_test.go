package netem

import (
	"sync"
	"testing"
	"time"

	"repro/internal/netem/trace"
)

// These tests pin the emulator's randomness invariant (see direction in
// pipe.go): every stochastic component is a per-instance or per-slot
// *rand.Rand derived from a seed — never package-global rand — so fleet
// runs with many concurrent sessions stay bit-identical per seed.

// TestPipeJitterPerInstanceSeed drives two identically-seeded lossy,
// jittery pipes with identical byte streams — while a differently
// seeded "noise" pipe runs concurrently — and asserts the two twins
// deliver on identical schedules. Shared/global randomness would let
// the noise pipe's draws perturb one twin but not the other.
func TestPipeJitterPerInstanceSeed(t *testing.T) {
	clock := NewVirtualClock()
	defer clock.Stop()
	params := func(seed int64) LinkParams {
		return LinkParams{
			Rate:     Mbps(8),
			Delay:    5 * time.Millisecond,
			Jitter:   3 * time.Millisecond,
			LossProb: 0.05,
			Seed:     seed,
		}
	}
	type run struct {
		times []time.Duration
	}
	const total = 64 << 10
	drive := func(seed int64, out *run, wg *sync.WaitGroup) {
		a, b := Pipe(clock, params(seed), params(seed+1), Addr("a"), Addr("b"))
		wg.Add(2)
		clock.Go(func(p *Participant) {
			defer wg.Done()
			a.Bind(p)
			buf := make([]byte, 8<<10)
			for i := 0; i < total/len(buf); i++ {
				if _, err := a.Write(buf); err != nil {
					t.Error(err)
					return
				}
			}
			a.Close()
		})
		clock.Go(func(p *Participant) {
			defer wg.Done()
			b.Bind(p)
			start := clock.Now()
			buf := make([]byte, 4<<10)
			for {
				n, err := b.Read(buf)
				if n > 0 {
					out.times = append(out.times, clock.Now().Sub(start))
				}
				if err != nil {
					return
				}
			}
		})
	}
	var wg sync.WaitGroup
	var twin1, twin2, noise run
	drive(1234, &twin1, &wg)
	drive(9999, &noise, &wg)
	drive(1234, &twin2, &wg)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second): //detlint:allow wallclock -- test watchdog against emulator deadlock runs on wall time
		t.Fatal("pipes did not drain")
	}
	if len(twin1.times) == 0 || len(twin1.times) != len(twin2.times) {
		t.Fatalf("twin read counts differ: %d vs %d", len(twin1.times), len(twin2.times))
	}
	for i := range twin1.times {
		if twin1.times[i] != twin2.times[i] {
			t.Fatalf("identically seeded pipes diverged at read %d: %v vs %v",
				i, twin1.times[i], twin2.times[i])
		}
	}
	if len(noise.times) == len(twin1.times) {
		same := true
		for i := range noise.times {
			if noise.times[i] != twin1.times[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("differently seeded pipe produced an identical schedule")
		}
	}
}

// TestLognormalConcurrentDeterminism queries one Lognormal profile from
// many goroutines at the same instants and asserts every goroutine sees
// the same values — and that a fresh profile with the same seed agrees.
func TestLognormalConcurrentDeterminism(t *testing.T) {
	base := trace.Constant(1e6)
	r1 := trace.Lognormal(base, 0.3, 100*time.Millisecond, 77)
	epoch := time.Unix(1_700_000_000, 0)
	const goroutines, points = 8, 200
	vals := make([][]float64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		vals[g] = make([]float64, points)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < points; i++ {
				vals[g][i] = r1.RateAt(epoch.Add(time.Duration(i) * 37 * time.Millisecond))
			}
		}()
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range vals[g] {
			if vals[g][i] != vals[0][i] {
				t.Fatalf("goroutine %d saw %v at point %d, goroutine 0 saw %v",
					g, vals[g][i], i, vals[0][i])
			}
		}
	}
	r2 := trace.Lognormal(base, 0.3, 100*time.Millisecond, 77)
	for i := 0; i < points; i++ {
		at := epoch.Add(time.Duration(i) * 37 * time.Millisecond)
		if r2.RateAt(at) != vals[0][i] {
			t.Fatal("same-seed Lognormal profiles disagree")
		}
	}
	r3 := trace.Lognormal(base, 0.3, 100*time.Millisecond, 78)
	diff := false
	for i := 0; i < points; i++ {
		at := epoch.Add(time.Duration(i) * 37 * time.Millisecond)
		if r3.RateAt(at) != vals[0][i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different-seed Lognormal profiles agree everywhere")
	}
}

// TestRandomWalkConcurrentDeterminism hammers one RandomWalk from many
// goroutines over a fixed instant grid and asserts agreement, then
// replays a same-seed walk over the same grid sequentially and asserts
// it matches — the walk's value must be a function of (seed, slots),
// not of query interleaving.
func TestRandomWalkConcurrentDeterminism(t *testing.T) {
	epoch := time.Unix(1_700_000_000, 0)
	grid := make([]time.Time, 300)
	for i := range grid {
		grid[i] = epoch.Add(time.Duration(i) * 200 * time.Millisecond)
	}
	walk := trace.RandomWalk(1e6, 1e5, 2e6, 500*time.Millisecond, 55)
	walk.RateAt(grid[0]) // pin the anchor before concurrent queries
	const goroutines = 8
	vals := make([][]float64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		vals[g] = make([]float64, len(grid))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, at := range grid {
				vals[g][i] = walk.RateAt(at)
			}
		}()
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range grid {
			if vals[g][i] != vals[0][i] {
				t.Fatalf("goroutine %d diverged at grid point %d", g, i)
			}
		}
	}
	replay := trace.RandomWalk(1e6, 1e5, 2e6, 500*time.Millisecond, 55)
	for i, at := range grid {
		if replay.RateAt(at) != vals[0][i] {
			t.Fatalf("same-seed replay diverged at grid point %d", i)
		}
	}
}
