package netem

import (
	"testing"
	"time"
)

// TestIdleConnReleasesDeliveredMemory pins the ring-buffer fix for the
// old `queue = queue[1:]` re-slicing: delivered segments must release
// their payload buffers immediately, so a long-lived connection that
// has gone idle pins no payload memory no matter how much traffic has
// passed through it.
func TestIdleConnReleasesDeliveredMemory(t *testing.T) {
	clock := NewVirtualClock()
	defer clock.Stop()
	p := LinkParams{Rate: Mbps(50), Delay: 2 * time.Millisecond}
	client, server := Pipe(clock, p, p, "c", "s")

	const total = 4 << 20
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 64<<10)
		for sent := 0; sent < total; sent += len(buf) {
			if _, err := server.Write(buf); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
	}()
	var got int
	buf := make([]byte, 64<<10)
	for got < total {
		n, err := client.Read(buf)
		if err != nil {
			t.Fatalf("read after %d bytes: %v", got, err)
		}
		got += n
	}
	<-done

	// The conn is now idle with every segment delivered. The down
	// direction's queue must reference zero payload bytes: popped ring
	// slots are zeroed and their buffers returned to the pool.
	if pinned := client.in.queueCapBytes(); pinned != 0 {
		t.Fatalf("idle conn pins %d payload bytes after delivering %d", pinned, total)
	}
	if queued := client.in.queuedBytes(); queued != 0 {
		t.Fatalf("idle conn reports %d queued bytes", queued)
	}
}

// TestSteadyStateTransferAllocs guards the zero-copy data plane: the
// steady-state read/write path of a netem conn — pooled segment
// buffers, reusable ring slots, participant-handle parks — must not
// allocate per transferred block. The old per-segment allocations cost
// ~25 allocations per 256 KB; the pooled path is bounded well under
// one allocation per op on average.
func TestSteadyStateTransferAllocs(t *testing.T) {
	clock := NewVirtualClock()
	defer clock.Stop()
	p := LinkParams{Rate: Mbps(100), Delay: time.Millisecond, SendBuf: 1 << 20}
	client, server := Pipe(clock, p, p, "c", "s")

	const block = 256 << 10
	clock.Go(func(wp *Participant) {
		server.Bind(wp)
		buf := make([]byte, block)
		for {
			if _, err := server.Write(buf); err != nil {
				return
			}
		}
	})

	// The reading side runs registered too, so parks reuse the
	// participant's wake channel instead of allocating transient state.
	result := make(chan float64, 1)
	clock.Go(func(rp *Participant) {
		client.Bind(rp)
		buf := make([]byte, 64<<10)
		readBlock := func() {
			for got := 0; got < block; {
				n, err := client.Read(buf)
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				got += n
			}
		}
		readBlock() // warm pools and ring capacity
		result <- testing.AllocsPerRun(20, readBlock)
	})
	select {
	case avg := <-result:
		if avg > 4 {
			t.Fatalf("steady-state transfer allocates %.1f times per %d KB block, want <= 4", avg, block>>10)
		}
	case <-time.After(30 * time.Second): //detlint:allow wallclock -- test watchdog against emulator deadlock runs on wall time
		t.Fatal("transfer did not reach steady state")
	}
	client.Close()
	server.Close()
}
