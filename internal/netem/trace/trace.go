// Package trace provides time-varying bandwidth profiles for netem links.
//
// A Rate maps an emulated instant to the instantaneous link rate in bytes
// per second. Profiles compose: Scale, Clamp and Sum build complex shapes
// (e.g. an LTE-like random walk with periodic dips plus a mobility outage)
// out of simple parts.
package trace

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Rate returns the instantaneous rate of a link, in bytes per second, at
// emulated time t. Implementations must be safe for concurrent use and
// should be deterministic functions of t so that pacing decisions made at
// different call sites agree.
type Rate interface {
	RateAt(t time.Time) float64
}

// RateFunc adapts a plain function to the Rate interface.
type RateFunc func(t time.Time) float64

// RateAt implements Rate.
func (f RateFunc) RateAt(t time.Time) float64 { return f(t) }

// Constant returns a fixed-rate profile.
func Constant(bytesPerSec float64) Rate {
	return RateFunc(func(time.Time) float64 { return bytesPerSec })
}

// Sine oscillates around mean with the given amplitude and period,
// modelling slow diurnal or contention-driven variation.
func Sine(mean, amplitude float64, period time.Duration, phase float64) Rate {
	if period <= 0 {
		period = time.Second
	}
	return RateFunc(func(t time.Time) float64 {
		x := float64(t.UnixNano()) / float64(period.Nanoseconds())
		r := mean + amplitude*math.Sin(2*math.Pi*(x+phase))
		if r < 0 {
			return 0
		}
		return r
	})
}

// Steps holds a piecewise-constant profile: Rates[i] applies from
// Boundaries[i-1] (or the epoch for i = 0) until Boundaries[i].
type Steps struct {
	Boundaries []time.Time // ascending; len = len(Rates)-1
	Rates      []float64   // bytes per second
}

// RateAt implements Rate.
func (s *Steps) RateAt(t time.Time) float64 {
	if len(s.Rates) == 0 {
		return 0
	}
	i := 0
	for i < len(s.Boundaries) && !t.Before(s.Boundaries[i]) {
		i++
	}
	if i >= len(s.Rates) {
		i = len(s.Rates) - 1
	}
	return s.Rates[i]
}

// Outage wraps a base profile and forces the rate to zero inside
// [Start, Start+Duration), modelling a connectivity loss (e.g. walking
// out of WiFi range).
func Outage(base Rate, start time.Time, d time.Duration) Rate {
	end := start.Add(d)
	return RateFunc(func(t time.Time) float64 {
		if !t.Before(start) && t.Before(end) {
			return 0
		}
		return base.RateAt(t)
	})
}

// Lognormal perturbs a base profile with deterministic pseudo-random
// lognormal noise resampled every interval. Sigma is the standard
// deviation of the underlying normal; 0.2–0.4 reproduces the per-chunk
// throughput spread reported for home WiFi and LTE links.
//
// Randomness invariant: the multiplier is a pure function of (seed,
// slot) — a fresh *rand.Rand is derived per slot and no state is shared
// between calls — so concurrent queries from any number of sessions
// return identical values for identical instants, keeping fleet runs
// bit-identical per seed.
//
// Because the multiplier is pure, the last computed (slot, multiplier)
// pair is cached behind an atomic pointer: pacing queries hit the same
// slot many times per interval, and seeding a math/rand source per
// query (~600 words of state) dominated fleet-scale profiles. A cache
// hit returns the identical value a recomputation would.
func Lognormal(base Rate, sigma float64, interval time.Duration, seed int64) Rate {
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	type slotMul struct {
		slot int64
		f    float64
	}
	var memo atomic.Pointer[slotMul]
	return RateFunc(func(t time.Time) float64 {
		slot := t.UnixNano() / interval.Nanoseconds()
		if m := memo.Load(); m != nil && m.slot == slot {
			return base.RateAt(t) * m.f
		}
		rng := rand.New(rand.NewSource(seed ^ slot*0x7E3779B97F4A7C15))
		f := math.Exp(rng.NormFloat64()*sigma - sigma*sigma/2) // mean-one multiplier
		memo.Store(&slotMul{slot: slot, f: f})
		return base.RateAt(t) * f
	})
}

// RandomWalk produces a mean-reverting multiplicative random walk around
// mean, bounded to [min, max], resampled every interval. It mimics LTE
// cell-load dynamics: sustained excursions rather than white noise.
//
// Randomness invariant: each step's rng is derived from (seed, slot)
// and the walk state is guarded by a mutex; replaying from the anchor
// makes any query a deterministic function of (seed, anchor slot,
// query slot) regardless of query interleaving across sessions.
func RandomWalk(mean, min, max float64, interval time.Duration, seed int64) Rate {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	var mu sync.Mutex
	anchor := int64(-1) // slot of the first query; the walk starts there
	lastSlot := int64(-1)
	lastVal := mean
	step := func(slot int64, from float64) float64 {
		rng := rand.New(rand.NewSource(seed ^ slot*0x7E3779B97F4A7C15))
		r := from + 0.25*(mean-from) + rng.NormFloat64()*0.1*mean
		if r < min {
			r = min
		}
		if r > max {
			r = max
		}
		return r
	}
	return RateFunc(func(t time.Time) float64 {
		slot := t.UnixNano() / interval.Nanoseconds()
		mu.Lock()
		defer mu.Unlock()
		if anchor < 0 {
			anchor = slot
			lastSlot = slot - 1
		}
		if slot <= anchor {
			return mean // at or before the walk's origin
		}
		if slot < lastSlot {
			// Query behind the frontier: replay the walk from the anchor.
			lastSlot, lastVal = anchor-1, mean
		}
		for s := lastSlot + 1; s <= slot; s++ {
			lastVal = step(s-anchor, lastVal)
		}
		lastSlot = slot
		return lastVal
	})
}

// Clamp bounds a profile to [min, max].
func Clamp(base Rate, min, max float64) Rate {
	return RateFunc(func(t time.Time) float64 {
		r := base.RateAt(t)
		if r < min {
			return min
		}
		if r > max {
			return max
		}
		return r
	})
}

// Scale multiplies a profile by a constant factor.
func Scale(base Rate, factor float64) Rate {
	return RateFunc(func(t time.Time) float64 { return base.RateAt(t) * factor })
}
