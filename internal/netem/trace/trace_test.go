package trace

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

var epoch = time.Unix(1_700_000_000, 0)

func TestConstant(t *testing.T) {
	r := Constant(1e6)
	for _, off := range []time.Duration{0, time.Second, time.Hour} {
		if got := r.RateAt(epoch.Add(off)); got != 1e6 {
			t.Fatalf("rate at +%v = %v", off, got)
		}
	}
}

func TestSineBoundsAndPeriod(t *testing.T) {
	mean, amp := 1e6, 3e5
	r := Sine(mean, amp, 10*time.Second, 0)
	min, max := math.Inf(1), math.Inf(-1)
	for off := time.Duration(0); off < 20*time.Second; off += 100 * time.Millisecond {
		v := r.RateAt(epoch.Add(off))
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	if min < mean-amp-1 || max > mean+amp+1 {
		t.Fatalf("sine out of bounds: [%v, %v]", min, max)
	}
	if max-min < amp { // actually oscillates
		t.Fatalf("sine swing too small: %v", max-min)
	}
	// Period repeats.
	a := r.RateAt(epoch.Add(3 * time.Second))
	b := r.RateAt(epoch.Add(13 * time.Second))
	if math.Abs(a-b) > 1 {
		t.Fatalf("sine not periodic: %v vs %v", a, b)
	}
}

func TestSineNeverNegative(t *testing.T) {
	r := Sine(1e5, 1e6, time.Second, 0) // amplitude >> mean
	for off := time.Duration(0); off < 2*time.Second; off += 10 * time.Millisecond {
		if v := r.RateAt(epoch.Add(off)); v < 0 {
			t.Fatalf("negative rate %v", v)
		}
	}
}

func TestSteps(t *testing.T) {
	s := &Steps{
		Boundaries: []time.Time{epoch.Add(10 * time.Second), epoch.Add(20 * time.Second)},
		Rates:      []float64{100, 200, 300},
	}
	cases := []struct {
		off  time.Duration
		want float64
	}{
		{0, 100}, {9 * time.Second, 100}, {10 * time.Second, 200},
		{19 * time.Second, 200}, {25 * time.Second, 300}, {time.Hour, 300},
	}
	for _, c := range cases {
		if got := s.RateAt(epoch.Add(c.off)); got != c.want {
			t.Errorf("rate at +%v = %v, want %v", c.off, got, c.want)
		}
	}
	empty := &Steps{}
	if empty.RateAt(epoch) != 0 {
		t.Error("empty steps should be 0")
	}
}

func TestOutage(t *testing.T) {
	r := Outage(Constant(1e6), epoch.Add(5*time.Second), 3*time.Second)
	if r.RateAt(epoch.Add(4*time.Second)) != 1e6 {
		t.Error("rate before outage")
	}
	if r.RateAt(epoch.Add(5*time.Second)) != 0 {
		t.Error("rate at outage start")
	}
	if r.RateAt(epoch.Add(7999*time.Millisecond)) != 0 {
		t.Error("rate inside outage")
	}
	if r.RateAt(epoch.Add(8*time.Second)) != 1e6 {
		t.Error("rate after outage")
	}
}

func TestLognormalDeterministicAndMeanish(t *testing.T) {
	a := Lognormal(Constant(1e6), 0.3, 500*time.Millisecond, 42)
	b := Lognormal(Constant(1e6), 0.3, 500*time.Millisecond, 42)
	sum := 0.0
	n := 0
	for off := time.Duration(0); off < 5*time.Minute; off += 500 * time.Millisecond {
		va := a.RateAt(epoch.Add(off))
		vb := b.RateAt(epoch.Add(off))
		if va != vb {
			t.Fatalf("same seed, different values at +%v", off)
		}
		if va <= 0 {
			t.Fatalf("non-positive rate %v", va)
		}
		sum += va
		n++
	}
	mean := sum / float64(n)
	if mean < 0.8e6 || mean > 1.2e6 {
		t.Fatalf("lognormal mean drifted: %v", mean)
	}
	// Different seeds differ.
	c := Lognormal(Constant(1e6), 0.3, 500*time.Millisecond, 43)
	if c.RateAt(epoch) == a.RateAt(epoch) && c.RateAt(epoch.Add(time.Second)) == a.RateAt(epoch.Add(time.Second)) {
		t.Fatal("different seeds produced identical samples")
	}
}

func TestRandomWalkBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := RandomWalk(1e6, 2e5, 2e6, 500*time.Millisecond, seed)
		for off := time.Duration(0); off < time.Minute; off += 250 * time.Millisecond {
			v := r.RateAt(epoch.Add(off))
			if v < 2e5 || v > 2e6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomWalkConsistentAcrossQueryOrder(t *testing.T) {
	// Re-querying earlier instants on the same instance must replay the
	// identical walk (the walk is anchored at the first query).
	r := RandomWalk(1e6, 1e5, 5e6, time.Second, 9)
	var forward []float64
	for off := time.Duration(0); off < 10*time.Second; off += time.Second {
		forward = append(forward, r.RateAt(epoch.Add(off)))
	}
	for i := len(forward) - 1; i >= 0; i-- {
		off := time.Duration(i) * time.Second
		if got := r.RateAt(epoch.Add(off)); got != forward[i] {
			t.Fatalf("walk differs at +%v: %v vs %v", off, got, forward[i])
		}
	}
	// And the anchor instant itself returns the mean.
	if got := r.RateAt(epoch); got != forward[0] {
		t.Fatalf("anchor value changed: %v vs %v", got, forward[0])
	}
}

func TestClampAndScale(t *testing.T) {
	base := Constant(1e6)
	if got := Clamp(base, 2e6, 3e6).RateAt(epoch); got != 2e6 {
		t.Errorf("clamp low = %v", got)
	}
	if got := Clamp(base, 0, 5e5).RateAt(epoch); got != 5e5 {
		t.Errorf("clamp high = %v", got)
	}
	if got := Scale(base, 2.5).RateAt(epoch); got != 2.5e6 {
		t.Errorf("scale = %v", got)
	}
}
