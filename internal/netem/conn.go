package netem

import (
	"errors"
	"io"
	"net"
	"time"
)

var (
	errClosedConn = errors.New("netem: use of closed connection")
	errEOF        = io.EOF

	// ErrInterfaceDown is surfaced on connections whose local interface
	// lost connectivity (mobility events).
	ErrInterfaceDown = errors.New("netem: interface down")

	// ErrServerDown is surfaced on connections whose remote endpoint was
	// killed (server failure injection).
	ErrServerDown = errors.New("netem: server down")

	// ErrPartitioned is surfaced on connections and dials cut by a
	// network partition (Network.SetPartitioned): both endpoints stay
	// alive but cannot reach each other.
	ErrPartitioned = errors.New("netem: network partitioned")
)

// Addr is a trivial net.Addr for emulated endpoints.
type Addr string

// Network implements net.Addr.
func (Addr) Network() string { return "netem" }

// String implements net.Addr.
func (a Addr) String() string { return string(a) }

// Conn is one endpoint of an emulated connection. It implements net.Conn.
type Conn struct {
	in, out *direction // in: peer→us, out: us→peer
	local   Addr
	remote  Addr
	onClose func()
	part    *Participant // owning goroutine's clock handle; see Bind
}

// Bind attaches the clock Participant of the goroutine that owns this
// endpoint. Reads and writes park through the bound handle (O(1),
// allocation-free); an unbound endpoint parks as a transient clock
// participant, which still works but costs determinism and a per-park
// allocation. Each endpoint of an emulated connection is owned by
// exactly one goroutine in this codebase (the dialing fetch loop on the
// client side, the per-connection server loop on the other), so binding
// happens once at dial/accept time.
func (c *Conn) Bind(p *Participant) { c.part = p }

// Pipe creates a connected pair of emulated conns. c2s shapes the c→s
// direction, s2c the reverse. The returned conns are (client, server).
func Pipe(clock *Clock, c2s, s2c LinkParams, clientAddr, serverAddr Addr) (*Conn, *Conn) {
	up := newDirection(clock, c2s)
	down := newDirection(clock, s2c)
	client := &Conn{in: down, out: up, local: clientAddr, remote: serverAddr}
	server := &Conn{in: up, out: down, local: serverAddr, remote: clientAddr}
	return client, server
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	return c.in.read(p, c.part)
}

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) { return c.out.write(p, c.part, false) }

// WriteStable is Write for callers that guarantee p is immutable and
// outlives its delivery (the origin's content page cache): delivery
// segments alias p instead of copying it into pooled buffers. Pacing
// and arrival instants are identical to Write; only the copy is
// skipped.
func (c *Conn) WriteStable(p []byte) (int, error) { return c.out.write(p, c.part, true) }

// Close implements net.Conn. The peer drains in-flight data, then sees
// EOF; local reads fail from the close instant on (data that had
// already arrived stays deliverable under the abort protocol's
// delivered-before-abort rule, but a closing endpoint never reads it).
func (c *Conn) Close() error {
	c.out.close()
	c.in.abort(errClosedConn)
	if c.onClose != nil {
		c.onClose()
	}
	return nil
}

// Abort hard-fails the connection in both directions with err effective
// at the current emulated instant, modelling interface loss or a
// crashed peer. Equivalent to AbortAt(now, err); see AbortAt for the
// determinism rules.
func (c *Conn) Abort(err error) {
	c.out.abort(err)
	c.in.abort(err)
}

// AbortAt schedules a hard failure of both directions at the emulated
// instant t (clamped to now). The abort is a clock event, not a
// wall-clock side effect: both endpoints observe err exactly from t
// onward, in-flight segments arriving at or before t remain
// deliverable, and segments arriving strictly after t are dropped. The
// earliest scheduled abort wins, so redundant abort sources commute and
// teardown outcomes never depend on goroutine scheduling order.
func (c *Conn) AbortAt(t time.Time, err error) {
	c.out.abortAt(t, err)
	c.in.abortAt(t, err)
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline implements net.Conn. Deadlines are accepted but not
// enforced: the emulation's own clock governs all timing, and the HTTP
// stacks used in this repository do not rely on conn deadlines.
func (c *Conn) SetDeadline(time.Time) error { return nil }

// SetReadDeadline implements net.Conn (no-op; see SetDeadline).
func (c *Conn) SetReadDeadline(time.Time) error { return nil }

// SetWriteDeadline implements net.Conn (no-op; see SetDeadline).
func (c *Conn) SetWriteDeadline(time.Time) error { return nil }
