package netem

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// Network is an emulated internet: listeners register under string
// addresses ("host:port"), and Interfaces dial them through shaped paths.
type Network struct {
	clock *Clock

	mu        sync.Mutex
	listeners map[string]*Listener
	conns     map[*Conn]struct{} // live conns for teardown
	// partitions maps an interface-group name ("wifi", "lte") to the set
	// of listener addresses its clients cannot currently reach. Both
	// sides stay alive — unlike a kill or an interface-down event — but
	// dials fail instantly with ErrPartitioned and established
	// connections across the cut are aborted at the onset instant.
	partitions map[string]map[string]bool
}

// NewNetwork creates an empty emulated network driven by clock.
func NewNetwork(clock *Clock) *Network {
	return &Network{
		clock:     clock,
		listeners: make(map[string]*Listener),
		conns:     make(map[*Conn]struct{}),
	}
}

// Clock returns the network's time source.
func (n *Network) Clock() *Clock { return n.clock }

// Listen registers a listener at addr (e.g. "video1.wifi.test:80").
// ExtraDelay is added to the one-way delay of every path reaching this
// listener, modelling server distance from the access network.
func (n *Network) Listen(addr string, extraDelay time.Duration) (*Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[addr]; ok {
		return nil, fmt.Errorf("netem: address %s already in use", addr)
	}
	l := &Listener{
		network:    n,
		addr:       Addr(addr),
		extraDelay: extraDelay,
	}
	l.cond = NewCond(n.clock, &l.mu)
	n.listeners[addr] = l
	return l, nil
}

// SetPartitioned cuts (or heals) reachability from the interface group
// named group — every Interface whose name is group — to the listener
// at addr, while both sides stay up. While partitioned, dials from the
// group to addr fail instantly with ErrPartitioned (no handshake time
// is burned), and at the onset instant every established connection
// between the group and addr is aborted with ErrPartitioned. Healing
// restores dials only; aborted connections stay dead, as after a real
// partition.
func (n *Network) SetPartitioned(group, addr string, on bool) {
	n.mu.Lock()
	if n.partitions == nil {
		n.partitions = make(map[string]map[string]bool)
	}
	set := n.partitions[group]
	if on {
		if set == nil {
			set = make(map[string]bool)
			n.partitions[group] = set
		}
		set[addr] = true
	} else if set != nil {
		delete(set, addr)
	}
	l := n.listeners[addr]
	n.mu.Unlock()
	if on && l != nil {
		// Client local addresses are rendered "<group>:<port>", so the
		// peer-address prefix identifies the cut side.
		l.abortFrom(group+":", ErrPartitioned)
	}
}

// partitioned reports whether dials from group to addr are cut.
func (n *Network) partitioned(group, addr string) bool {
	return n.partitions[group][addr]
}

// Interface models a client network attachment (WiFi or LTE): its access
// link dominates the path, as in the paper's testbed.
type Interface struct {
	network *Network
	name    string
	srcAddr Addr
	up      LinkParams // client → server
	down    LinkParams // server → client

	mu    sync.Mutex
	alive bool
	conns map[*Conn]struct{}

	dialSeq int
}

// NewInterface attaches an interface named name (also used as the local
// address) with the given access-link shaping.
func (n *Network) NewInterface(name string, up, down LinkParams) *Interface {
	return &Interface{
		network: n,
		name:    name,
		srcAddr: Addr(name),
		up:      up,
		down:    down,
		alive:   true,
		conns:   make(map[*Conn]struct{}),
	}
}

// Name returns the interface name ("wifi", "lte", ...).
func (i *Interface) Name() string { return i.name }

// Network returns the emulated network the interface is attached to.
func (i *Interface) Network() *Network { return i.network }

// Alive reports whether the interface currently has connectivity.
func (i *Interface) Alive() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.alive
}

// SetAlive toggles connectivity. Taking an interface down aborts every
// established connection with ErrInterfaceDown and fails future dials
// until connectivity returns, emulating mobility.
func (i *Interface) SetAlive(alive bool) {
	i.mu.Lock()
	i.alive = alive
	var toAbort []*Conn
	if !alive {
		for c := range i.conns { //detlint:allow maprange -- conn aborts commute: all land at the same pinned virtual instant
			toAbort = append(toAbort, c)
		}
		i.conns = make(map[*Conn]struct{})
	}
	i.mu.Unlock()
	for _, c := range toAbort {
		c.Abort(ErrInterfaceDown)
	}
}

// DialContext establishes an emulated connection to addr through this
// interface, charging one round trip for the TCP three-way handshake.
// It is shaped to plug into http.Transport.DialContext. The caller
// parks as a transient clock participant during the handshake;
// registered goroutines should use Dial with their handle instead.
func (i *Interface) DialContext(ctx context.Context, _ string, addr string) (net.Conn, error) {
	return i.Dial(ctx, addr, nil)
}

// Dial establishes an emulated connection to addr through this
// interface on behalf of the registered participant p (nil dials as a
// transient). The returned conn is bound to p: its reads and writes
// park through the handle.
func (i *Interface) Dial(ctx context.Context, addr string, p *Participant) (*Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	i.mu.Lock()
	if !i.alive {
		i.mu.Unlock()
		return nil, &net.OpError{Op: "dial", Net: "netem", Addr: Addr(addr), Err: ErrInterfaceDown}
	}
	i.dialSeq++
	seq := i.dialSeq
	i.mu.Unlock()

	n := i.network
	n.mu.Lock()
	l, ok := n.listeners[addr]
	parted := n.partitioned(i.name, addr)
	n.mu.Unlock()
	if !ok {
		return nil, &net.OpError{Op: "dial", Net: "netem", Addr: Addr(addr), Err: fmt.Errorf("connection refused")}
	}
	if parted {
		// The partition drops the SYN: fail instantly, before any
		// handshake round trip is charged.
		return nil, &net.OpError{Op: "dial", Net: "netem", Addr: Addr(addr), Err: ErrPartitioned}
	}

	up, down := i.up, i.down
	up.Delay += l.extraDelay
	down.Delay += l.extraDelay
	// Derive per-connection seeds so jitter/loss differ across conns but
	// stay reproducible.
	up.Seed = up.Seed*1000003 + int64(seq)
	down.Seed = down.Seed*1000003 + int64(seq)*7

	// TCP 3WHS: one full round trip before the connection is usable.
	if p != nil {
		p.Sleep(2 * up.Delay)
	} else {
		n.clock.Sleep(2 * up.Delay)
	}

	local := Addr(fmt.Sprintf("%s:%d", i.name, 40000+seq))
	client, server := Pipe(n.clock, up, down, local, Addr(addr))
	client.Bind(p)
	client.onClose = func() { i.forget(client) }

	i.mu.Lock()
	if !i.alive {
		i.mu.Unlock()
		client.Abort(ErrInterfaceDown)
		return nil, &net.OpError{Op: "dial", Net: "netem", Addr: Addr(addr), Err: ErrInterfaceDown}
	}
	i.conns[client] = struct{}{}
	i.mu.Unlock()

	if err := l.deliver(server); err != nil {
		client.Abort(err)
		return nil, &net.OpError{Op: "dial", Net: "netem", Addr: Addr(addr), Err: err}
	}
	return client, nil
}

func (i *Interface) forget(c *Conn) {
	i.mu.Lock()
	delete(i.conns, c)
	i.mu.Unlock()
}

// Listener accepts emulated connections. It implements net.Listener, so
// an http.Server can Serve on it directly. Accept waits are
// clock-visible: a goroutine parked in Accept does not hold up virtual
// time, and a dialing goroutine hands the connection over before it can
// park again, keeping delivery deterministic.
type Listener struct {
	network    *Network
	addr       Addr
	extraDelay time.Duration

	mu      sync.Mutex
	cond    *Cond
	pending []*Conn
	closed  bool
	conns   map[*Conn]struct{}
}

func (l *Listener) deliver(c *Conn) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrServerDown
	}
	if l.conns == nil {
		l.conns = make(map[*Conn]struct{})
	}
	l.conns[c] = struct{}{}
	l.pending = append(l.pending, c)
	l.cond.Signal()
	l.mu.Unlock()
	return nil
}

// abortFrom aborts every established connection on this listener whose
// peer address begins with prefix, all at the caller's current virtual
// instant (the partition-onset sweep).
func (l *Listener) abortFrom(prefix string, err error) {
	l.mu.Lock()
	var toAbort []*Conn
	for c := range l.conns { //detlint:allow maprange -- conn aborts commute: all land at the same pinned virtual instant
		if strings.HasPrefix(string(c.remote), prefix) {
			toAbort = append(toAbort, c)
		}
	}
	l.mu.Unlock()
	for _, c := range toAbort {
		c.Abort(err)
	}
}

// Accept implements net.Listener. The caller parks as a transient
// clock participant; registered accept loops should use AcceptP.
func (l *Listener) Accept() (net.Conn, error) { return l.AcceptP(nil) }

// AcceptP accepts the next connection on behalf of the registered
// participant p (nil accepts as a transient).
func (l *Listener) AcceptP(p *Participant) (net.Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.closed {
			return nil, &net.OpError{Op: "accept", Net: "netem", Addr: l.addr, Err: errClosedConn}
		}
		if len(l.pending) > 0 {
			c := l.pending[0]
			copy(l.pending, l.pending[1:])
			l.pending[len(l.pending)-1] = nil
			l.pending = l.pending[:len(l.pending)-1]
			return c, nil
		}
		if !l.cond.Wait(p) {
			return nil, &net.OpError{Op: "accept", Net: "netem", Addr: l.addr, Err: errClosedConn}
		}
	}
}

// Close implements net.Listener. It also aborts established connections
// with ErrServerDown, emulating a server crash, and deregisters the
// address so it can be reused.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.pending = nil
	conns := l.conns
	l.conns = nil
	l.cond.Broadcast()
	l.mu.Unlock()

	l.network.mu.Lock()
	delete(l.network.listeners, string(l.addr))
	l.network.mu.Unlock()

	for c := range conns {
		c.Abort(ErrServerDown)
	}
	return nil
}

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return l.addr }
