package netem

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

// drainEvented reads everything from c through the event API, returning
// the received bytes, the terminal error (io.EOF on clean close) and
// the virtual instant the terminal state was observed. It releases
// every borrowed view as soon as it is copied out.
func drainEvented(c *Conn) (received *bytes.Buffer, termErr *error, doneAt *time.Time) {
	received = &bytes.Buffer{}
	termErr = new(error)
	doneAt = &time.Time{}
	clock := c.in.clock
	c.OnReadable(func() {
		for {
			view, err := c.ReadBuf()
			if err != nil {
				if *termErr == nil {
					*termErr = err
					*doneAt = clock.Now()
				}
				return
			}
			if view == nil {
				return
			}
			received.Write(view)
			c.Release(len(view))
		}
	})
	return received, termErr, doneAt
}

// TestEventReadMatchesBlockingRead sends the same payload over two
// identically parameterised pipes — one drained by blocking Read, one
// by OnReadable/ReadBuf — and requires byte-identical content and the
// same virtual completion instant.
func TestEventReadMatchesBlockingRead(t *testing.T) {
	params := LinkParams{Rate: Mbps(8), Delay: 25 * time.Millisecond, SlowStart: true, Seed: 42}
	payload := make([]byte, 300_000)
	for i := range payload {
		payload[i] = byte(i * 31)
	}

	run := func(evented bool) ([]byte, time.Duration) {
		clock := NewVirtualClock()
		defer clock.Stop()
		client, server := Pipe(clock, params, params, "c", "s")
		start := clock.Now()
		clock.Go(func(p *Participant) {
			server.Bind(p)
			if _, err := server.Write(payload); err != nil {
				t.Errorf("write: %v", err)
			}
			server.Close()
		})
		if !evented {
			var buf bytes.Buffer
			if _, err := io.Copy(&buf, client); err != nil {
				t.Fatalf("blocking read: %v", err)
			}
			return buf.Bytes(), clock.Now().Sub(start)
		}
		received, termErr, doneAt := drainEvented(client)
		clock.SleepUntil(start.Add(time.Hour))
		if !errors.Is(*termErr, io.EOF) {
			t.Fatalf("evented terminal error = %v, want EOF", *termErr)
		}
		return received.Bytes(), doneAt.Sub(start)
	}

	gotB, durB := run(false)
	gotE, durE := run(true)
	if !bytes.Equal(gotB, gotE) {
		t.Fatalf("evented read delivered different bytes (%d vs %d)", len(gotE), len(gotB))
	}
	if durB != durE {
		t.Fatalf("completion time differs: blocking %v, evented %v", durB, durE)
	}
}

// TestReadBufBorrowRelease verifies that consumed-but-unreleased views
// stay accounted and that Release returns them FIFO, including partial
// releases of the head view.
func TestReadBufBorrowRelease(t *testing.T) {
	clock := NewVirtualClock()
	defer clock.Stop()
	params := LinkParams{Rate: Mbps(80), Delay: 10 * time.Millisecond}
	client, server := Pipe(clock, params, params, "c", "s")

	payload := make([]byte, 50_000)
	clock.Go(func(p *Participant) {
		server.Bind(p)
		server.Write(payload)
		server.Close()
	})

	var views []int
	var total int
	client.OnReadable(func() {
		for {
			view, err := client.ReadBuf()
			if err != nil || view == nil {
				return
			}
			views = append(views, len(view))
			total += len(view)
		}
	})
	clock.SleepUntil(clock.Now().Add(time.Hour))

	if total != len(payload) {
		t.Fatalf("consumed %d bytes, want %d", total, len(payload))
	}
	if got := client.in.retainedBytes(); got != total {
		t.Fatalf("retainedBytes = %d before release, want %d", got, total)
	}
	// Partial release of the head view, then the rest.
	client.Release(views[0] / 2)
	if got := client.in.retainedBytes(); got != total-views[0]/2 {
		t.Fatalf("retainedBytes = %d after partial release, want %d", got, total-views[0]/2)
	}
	client.Release(total - views[0]/2)
	if got := client.in.retainedBytes(); got != 0 {
		t.Fatalf("retainedBytes = %d after full release, want 0", got)
	}
	// Over-release is an ownership bug and must panic.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("Release beyond outstanding views did not panic")
			}
		}()
		client.Release(1)
	}()
}

// TestTryWriteBackpressure drives a writer entirely through
// TryWrite/OnWritable against a small send buffer and verifies the
// reader receives every byte.
func TestTryWriteBackpressure(t *testing.T) {
	clock := NewVirtualClock()
	defer clock.Stop()
	params := LinkParams{Rate: Mbps(20), Delay: 5 * time.Millisecond, SendBuf: 16 << 10}
	client, server := Pipe(clock, params, params, "c", "s")

	payload := make([]byte, 200_000)
	for i := range payload {
		payload[i] = byte(i)
	}
	var cursor int
	var sawPartial bool
	pump := func() {
		for cursor < len(payload) {
			n, err := server.TryWrite(payload[cursor:])
			if err != nil {
				t.Errorf("TryWrite: %v", err)
				return
			}
			cursor += n
			if cursor < len(payload) {
				sawPartial = true
				if n == 0 {
					return // wait for OnWritable
				}
			}
		}
		server.OnWritable(nil)
		server.Close()
	}
	server.OnWritable(pump)
	pump()

	var received bytes.Buffer
	done := make(chan error, 1)
	clock.Go(func(p *Participant) {
		client.Bind(p)
		_, err := io.Copy(&received, client)
		done <- err
	})
	clock.SleepUntil(clock.Now().Add(time.Hour))
	if err := <-done; err != nil {
		t.Fatalf("read: %v", err)
	}
	if !sawPartial {
		t.Fatalf("send buffer never filled; backpressure path untested")
	}
	if !bytes.Equal(received.Bytes(), payload) {
		t.Fatalf("received %d bytes, want %d identical", received.Len(), len(payload))
	}
}

// TestEventAbortSurfacesAtInstant schedules a future abort and checks
// the evented reader drains delivered-before-abort data, then observes
// the error exactly at the abort instant.
func TestEventAbortSurfacesAtInstant(t *testing.T) {
	clock := NewVirtualClock()
	defer clock.Stop()
	params := LinkParams{Rate: Mbps(8), Delay: 20 * time.Millisecond}
	client, server := Pipe(clock, params, params, "c", "s")

	clock.Go(func(p *Participant) {
		server.Bind(p)
		server.Write(make([]byte, 500_000))
	})
	abortErr := errors.New("scheduled failure")
	abortAt := clock.Now().Add(150 * time.Millisecond)
	client.AbortAt(abortAt, abortErr)

	received, termErr, doneAt := drainEvented(client)
	clock.SleepUntil(clock.Now().Add(time.Hour))

	if !errors.Is(*termErr, abortErr) {
		t.Fatalf("terminal error = %v, want %v", *termErr, abortErr)
	}
	if !(*doneAt).Equal(abortAt) {
		t.Fatalf("error observed at %v, want abort instant %v", *doneAt, abortAt)
	}
	if received.Len() == 0 {
		t.Fatalf("no delivered-before-abort data surfaced")
	}
}

// TestDialEventMatchesDialTiming checks DialEvent completes at the
// same virtual instant as Dial (one handshake round trip) and yields a
// working connection.
func TestDialEventMatchesDialTiming(t *testing.T) {
	clock := NewVirtualClock()
	defer clock.Stop()
	n := NewNetwork(clock)
	params := LinkParams{Rate: Mbps(10), Delay: 30 * time.Millisecond}
	cli := n.NewInterface("cli", params, params)

	l, err := n.Listen("srv:80", 0)
	if err != nil {
		t.Fatal(err)
	}
	clock.Go(func(p *Participant) {
		for {
			c, err := l.AcceptP(p)
			if err != nil {
				return
			}
			clock.Go(func(p *Participant) {
				if nc, ok := c.(*Conn); ok {
					nc.Bind(p)
				}
				io.Copy(c, c) // echo
				c.Close()
			})
		}
	})

	start := clock.Now()
	var dialedAt time.Time
	var conn *Conn
	if err := cli.DialEvent("srv:80", func(c *Conn, err error) {
		if err != nil {
			t.Errorf("DialEvent: %v", err)
			return
		}
		dialedAt = clock.Now()
		conn = c
	}); err != nil {
		t.Fatal(err)
	}
	clock.SleepUntil(start.Add(time.Hour))

	if conn == nil {
		t.Fatalf("DialEvent callback never fired")
	}
	if want := start.Add(2 * params.Delay); !dialedAt.Equal(want) {
		t.Fatalf("DialEvent completed at %v, want %v (one RTT)", dialedAt, want)
	}

	// The dialed conn round-trips data through the echo server.
	msg := []byte("hello over event dial")
	received, termErr, _ := drainEvented(conn)
	if _, err := conn.TryWrite(msg); err != nil {
		t.Fatalf("TryWrite: %v", err)
	}
	conn.out.close() // half-close our write side so the echo drains
	clock.SleepUntil(clock.Now().Add(time.Hour))
	if !bytes.Equal(received.Bytes(), msg) {
		t.Fatalf("echo = %q, want %q (err %v)", received.Bytes(), msg, *termErr)
	}
}

// TestDialEventRefusedImmediately mirrors Dial's synchronous
// connection-refused error for unknown addresses.
func TestDialEventRefusedImmediately(t *testing.T) {
	clock := NewVirtualClock()
	defer clock.Stop()
	n := NewNetwork(clock)
	params := LinkParams{Rate: Mbps(10), Delay: 10 * time.Millisecond}
	cli := n.NewInterface("cli", params, params)
	if err := cli.DialEvent("nowhere:80", func(*Conn, error) {
		t.Errorf("callback fired for refused dial")
	}); err == nil {
		t.Fatalf("DialEvent to unknown address succeeded, want refusal")
	}
}

// TestLoopSerializesReentrantSteps verifies that a step enqueued from
// within a running step is deferred, not run reentrantly.
func TestLoopSerializesReentrantSteps(t *testing.T) {
	l := NewLoop()
	var order []int
	l.Do(func() {
		order = append(order, 1)
		l.Do(func() { order = append(order, 3) })
		order = append(order, 2)
	})
	for i, want := range []int{1, 2, 3} {
		if i >= len(order) || order[i] != want {
			t.Fatalf("step order = %v, want [1 2 3]", order)
		}
	}
}
