package netem

import (
	"fmt"
	"net"
	"time"
)

// Event-driven connection API.
//
// The blocking Conn API parks a goroutine per pending read or write;
// the event API below replaces those parks with timer-wheel callbacks
// so a whole session's I/O can run as a state machine on the clock's
// jump goroutine. The two APIs share every byte of pacing, arrival and
// abort machinery (write and tryWrite push segments through the same
// pushSegmentLocked path; readBuf drains the same arrival-ordered
// queue as read), so a connection driven by callbacks produces exactly
// the virtual-time timeline a goroutine-driven one does.
//
// Rules (see also netem/doc.go, "Timer-driven state machines"):
//
//   - OnReadable/OnWritable callbacks fire on the clock's jump
//     goroutine (or synchronously on a mutating caller) under a clock
//     hold and MUST NOT park. Drain, re-arm, hand off — never Sleep,
//     Wait or blocking Read/Write.
//   - A callback is a level trigger, not an edge count: it may fire
//     spuriously, and one firing may cover many arrivals. Consumers
//     drain until ReadBuf returns nil (or TryWrite stops accepting)
//     and rely on the next firing for the rest.
//   - ReadBuf hands out borrowed views of arrived segments. A view is
//     valid until released; Release(n) returns the oldest n borrowed
//     bytes to the segment pool, strictly FIFO per direction. Escaping
//     a view past its release is a buffer-ownership bug (detlint's
//     borrowck flags retention).

// OnReadable arms fn as the connection's readability callback: it is
// invoked (once or more) whenever bytes may have become readable — a
// segment arrival, writer close, or abort taking effect. fn must not
// park; it typically drains via ReadBuf until nil and returns. Passing
// nil disarms. If data, EOF or an error is already observable, fn
// fires immediately.
func (c *Conn) OnReadable(fn func()) { c.in.onReadable(fn) }

// ReadBuf returns a borrowed view of the next arrived, unconsumed
// bytes, or (nil, nil) when nothing is observable yet — in which case
// the armed OnReadable callback is guaranteed to fire when that
// changes. The view is owned by the direction: it stays valid until
// the caller has Released that many bytes (FIFO). At EOF it returns
// (nil, io.EOF); after an effective abort, (nil, err). Like the
// blocking read, queued data always drains before an abort error
// surfaces.
func (c *Conn) ReadBuf() ([]byte, error) { return c.in.readBuf() }

// Release returns the oldest n bytes previously handed out by ReadBuf
// to the segment pool. Views are released strictly in the order they
// were borrowed; releasing more than is outstanding panics (it is an
// ownership bug, not a runtime condition).
func (c *Conn) Release(n int) { c.in.release(n) }

// TryWrite paces as much of p onto the link as the send buffer admits
// and returns the number of bytes accepted — segment boundaries,
// arrival instants and flow control identical to Write, minus the
// park. A short write means the send buffer filled: keep a cursor and
// resume when the armed OnWritable callback fires.
func (c *Conn) TryWrite(p []byte) (int, error) { return c.out.tryWrite(p, false) }

// TryWriteStable is TryWrite under the WriteStable ownership contract:
// p is immutable and outlives delivery, so enqueued segments alias it
// instead of copying.
func (c *Conn) TryWriteStable(p []byte) (int, error) { return c.out.tryWrite(p, true) }

// OnWritable arms fn as the connection's writability callback: it is
// invoked whenever send-buffer space may have freed (the peer drained)
// or the direction failed (abort, close) — a level trigger, like
// OnReadable. fn must not park. Passing nil disarms.
func (c *Conn) OnWritable(fn func()) { c.out.onWritable(fn) }

// onReadable arms (or disarms) the readable callback and fires or
// schedules it for already-observable state.
func (d *direction) onReadable(fn func()) {
	d.mu.Lock()
	d.readableCb = fn
	if fn == nil {
		d.mu.Unlock()
		return
	}
	if d.readTimer == nil {
		d.readTimer = d.clock.NewTimer(d.fireReadable)
	}
	var arm time.Time
	fire := false
	if d.queue.len() > 0 {
		arm = d.queue.front().arrival
	} else if d.closed || d.abortErr != nil {
		// EOF now, or an abort that is (or will become) observable; for
		// a future abort the armed abortTimer re-fires the callback at
		// the abort instant, so firing now at worst drains to nil.
		fire = true
	}
	d.mu.Unlock()
	d.dispatchReadable(arm, fire)
}

func (d *direction) onWritable(fn func()) {
	d.mu.Lock()
	d.writableCb = fn
	d.mu.Unlock()
}

// readableArmLocked decides, after segments were enqueued, whether the
// readable callback needs (re)arming: only when the queue went from
// empty to non-empty — an unchanged head keeps its already-armed
// timer, and a reader that drained to nil re-arms through readBuf.
func (d *direction) readableArmLocked(wasEmpty bool) (arm time.Time, fire bool) {
	if d.readableCb == nil || !wasEmpty || d.queue.len() == 0 {
		return time.Time{}, false
	}
	// The reader commits to this wake instant exactly as a blocking
	// reader woken by the push broadcast would SleepUntil it.
	d.evWake = d.queue.front().arrival
	return d.queue.front().arrival, false
}

// dispatchReadable performs the arming decided under d.mu, outside it:
// Timer.Schedule on a past instant fires synchronously, and the
// callback re-enters d.mu through ReadBuf.
func (d *direction) dispatchReadable(arm time.Time, fire bool) {
	if fire {
		d.fireReadable()
		return
	}
	if !arm.IsZero() {
		d.readTimer.Schedule(arm)
	}
}

func (d *direction) fireReadable() {
	d.mu.Lock()
	cb := d.readableCb
	d.mu.Unlock()
	if cb != nil {
		cb()
	}
}

// readBuf is the non-parking counterpart of read: it consumes the head
// segment's arrived bytes as a borrowed view, moving the segment to
// the retained ring until released. Send-buffer accounting (buffered)
// is charged at consume time, exactly when the blocking read's copy
// would decrement it; release only returns memory.
func (d *direction) readBuf() ([]byte, error) {
	d.mu.Lock()
	now := d.clock.Now()
	if d.queue.len() == 0 {
		// Delivered-before-abort rule, as in read: the queue never holds
		// post-abort arrivals, so an empty queue surfaces the error.
		if err := d.abortedBy(now); err != nil {
			if d.evWake.After(now) {
				// The reader had committed to the (now dropped) head
				// segment's arrival instant; a blocking reader would be
				// sleeping toward it and observe the error only on waking.
				// The readTimer armed for that instant re-fires the
				// callback then.
				d.mu.Unlock()
				return nil, nil
			}
			d.mu.Unlock()
			return nil, err
		}
		if d.closed {
			d.mu.Unlock()
			return nil, errEOF
		}
		d.mu.Unlock()
		return nil, nil
	}
	head := d.queue.front()
	if head.arrival.After(now) {
		arm := head.arrival
		d.evWake = arm
		d.mu.Unlock()
		if d.readTimer != nil {
			d.readTimer.Schedule(arm)
		}
		return nil, nil
	}
	view := head.data[d.unread:]
	d.unread = 0
	s := d.queue.pop()
	// Retain only the borrowed view: a prefix consumed by a blocking
	// read before the event API took over is already accounted, and
	// release bookkeeping is in view bytes.
	s.data = view
	d.retained.push(s)
	d.buffered -= len(view)
	d.cond.Broadcast()
	wcb := d.writableCb
	d.mu.Unlock()
	if wcb != nil && len(view) > 0 {
		wcb()
	}
	return view, nil
}

// release returns the oldest n borrowed bytes to the segment pool.
func (d *direction) release(n int) {
	d.mu.Lock()
	for n > 0 {
		if d.retained.len() == 0 {
			d.mu.Unlock()
			panic("netem: Release beyond outstanding borrowed views")
		}
		head := d.retained.front()
		rem := len(head.data) - d.relOff
		if n < rem {
			d.relOff += n
			n = 0
			break
		}
		n -= rem
		d.relOff = 0
		putSegBuf(d.retained.pop())
	}
	d.mu.Unlock()
}

// retainedBytes reports the borrowed-view bytes not yet released; used
// by tests to verify release bookkeeping.
func (d *direction) retainedBytes() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	total := -d.relOff
	for i := 0; i < d.retained.len(); i++ {
		total += len(d.retained.buf[(d.retained.head+i)&(len(d.retained.buf)-1)].data)
	}
	if total < 0 {
		total = 0
	}
	return total
}

// tryWrite is the non-parking counterpart of write: it pushes segments
// through the same pacing path until p is exhausted or the send buffer
// fills, and returns the bytes accepted instead of parking.
func (d *direction) tryWrite(p []byte, stable bool) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	written := 0
	d.mu.Lock()
	wasEmpty := d.queue.len() == 0
	for len(p) > 0 {
		if err := d.abortedBy(d.clock.Now()); err != nil {
			arm, fire := d.readableArmLocked(wasEmpty)
			d.mu.Unlock()
			d.dispatchReadable(arm, fire)
			return written, err
		}
		if d.closed {
			arm, fire := d.readableArmLocked(wasEmpty)
			d.mu.Unlock()
			d.dispatchReadable(arm, fire)
			return written, errClosedConn
		}
		if d.buffered >= d.params.SendBuf {
			break
		}
		segBytes := d.pushSegmentLocked(p, stable)
		p = p[segBytes:]
		written += segBytes
		d.cond.Broadcast()
	}
	arm, fire := d.readableArmLocked(wasEmpty)
	d.mu.Unlock()
	d.dispatchReadable(arm, fire)
	return written, nil
}

// DialEvent is the non-parking counterpart of Dial: it performs the
// same admission checks and per-connection seed derivation, then
// completes the TCP handshake through a wheel timer instead of a
// parked sleep. cb is invoked exactly once — on the clock's jump
// goroutine at the instant Dial would have returned (or synchronously,
// when the handshake round trip is zero) — with the connected endpoint
// or the dial error. Immediate failures (interface down, connection
// refused) are returned directly and cb is never called. cb must not
// park.
func (i *Interface) DialEvent(addr string, cb func(*Conn, error)) error {
	i.mu.Lock()
	if !i.alive {
		i.mu.Unlock()
		return &net.OpError{Op: "dial", Net: "netem", Addr: Addr(addr), Err: ErrInterfaceDown}
	}
	i.dialSeq++
	seq := i.dialSeq
	i.mu.Unlock()

	n := i.network
	n.mu.Lock()
	l, ok := n.listeners[addr]
	parted := n.partitioned(i.name, addr)
	n.mu.Unlock()
	if !ok {
		return &net.OpError{Op: "dial", Net: "netem", Addr: Addr(addr), Err: fmt.Errorf("connection refused")}
	}
	if parted {
		// Mirrors Dial: the partition drops the SYN instantly.
		return &net.OpError{Op: "dial", Net: "netem", Addr: Addr(addr), Err: ErrPartitioned}
	}

	up, down := i.up, i.down
	up.Delay += l.extraDelay
	down.Delay += l.extraDelay
	// Per-connection seeds, derived exactly as Dial derives them.
	up.Seed = up.Seed*1000003 + int64(seq)
	down.Seed = down.Seed*1000003 + int64(seq)*7

	clock := n.clock
	done := clock.NewTimer(func() {
		local := Addr(fmt.Sprintf("%s:%d", i.name, 40000+seq))
		client, server := Pipe(clock, up, down, local, Addr(addr))
		client.onClose = func() { i.forget(client) }

		i.mu.Lock()
		if !i.alive {
			i.mu.Unlock()
			client.Abort(ErrInterfaceDown)
			cb(nil, &net.OpError{Op: "dial", Net: "netem", Addr: Addr(addr), Err: ErrInterfaceDown})
			return
		}
		i.conns[client] = struct{}{}
		i.mu.Unlock()

		if err := l.deliver(server); err != nil {
			client.Abort(err)
			cb(nil, &net.OpError{Op: "dial", Net: "netem", Addr: Addr(addr), Err: err})
			return
		}
		cb(client, nil)
	})
	// TCP 3WHS: one full round trip, the instant Dial's sleep ends at.
	done.Schedule(clock.Now().Add(2 * up.Delay))
	return nil
}

// Loop serializes the steps of an event-driven state machine. Steps
// run one at a time in FIFO order; a step scheduled from within
// another step (directly or through a callback chain that re-enters
// the same machine) is deferred until the running step returns, so
// machines can call into connections — whose callbacks may call
// straight back — without reentrant locking. Do never parks and may
// execute fn on the calling goroutine or on whichever goroutine is
// currently draining the loop.
type Loop struct {
	mu      chanMutex
	running bool
	q       []func()
}

// chanMutex is a tiny mutex that the Loop can hand off between
// goroutines without tripping sync.Mutex's unlock-of-unlocked checks
// in the drain-migration pattern. Implemented over a 1-buffered
// channel; zero value ready after init via ensure.
type chanMutex struct {
	ch chan struct{}
}

func (m *chanMutex) lock()   { m.ch <- struct{}{} }
func (m *chanMutex) unlock() { <-m.ch }

// NewLoop returns a ready Loop.
func NewLoop() *Loop {
	return &Loop{mu: chanMutex{ch: make(chan struct{}, 1)}}
}

// Do enqueues fn and, unless a step is already running, drains the
// queue. fn must not park.
func (l *Loop) Do(fn func()) {
	l.mu.lock()
	l.q = append(l.q, fn)
	if l.running {
		l.mu.unlock()
		return
	}
	l.running = true
	for len(l.q) > 0 {
		step := l.q[0]
		copy(l.q, l.q[1:])
		l.q[len(l.q)-1] = nil
		l.q = l.q[:len(l.q)-1]
		l.mu.unlock()
		step()
		l.mu.lock()
	}
	l.running = false
	l.mu.unlock()
}
