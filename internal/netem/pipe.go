package netem

import (
	"math"
	"math/rand"
	"sync"
	"time"
)

// segment is a block of bytes due for delivery at an emulated instant.
// data is a pooled buffer owned by the direction until the reader has
// fully consumed it, at which point it returns to segPool. box is the
// pool's reusable header so put-backs allocate nothing.
type segment struct {
	data    []byte
	box     *[]byte
	arrival time.Time
}

// ackPoint marks the emulated instant at which the sender has received
// acknowledgements covering cum bytes.
type ackPoint struct {
	t   time.Time
	cum int64
}

// ring is a reusable FIFO over a power-of-two circular buffer. Unlike
// the previous `q = q[1:]` re-slicing queues, popping compacts nothing
// and retains nothing: slots are zeroed on pop, so delivered segments
// release their (pooled) payload buffers immediately instead of pinning
// the backing array for the life of the connection.
type ring[T any] struct {
	buf  []T
	head int
	n    int
}

func (r *ring[T]) len() int { return r.n }

func (r *ring[T]) push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

func (r *ring[T]) grow() {
	next := make([]T, max(len(r.buf)*2, 8))
	for i := 0; i < r.n; i++ {
		next[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = next
	r.head = 0
}

// front returns a pointer to the oldest element; undefined when empty.
func (r *ring[T]) front() *T { return &r.buf[r.head] }

// back returns a pointer to the newest element; undefined when empty.
func (r *ring[T]) back() *T { return &r.buf[(r.head+r.n-1)&(len(r.buf)-1)] }

func (r *ring[T]) pop() T {
	var zero T
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

// popBack removes and returns the newest element; undefined when empty.
// Used by the abort protocol to drop segments that would arrive at or
// after the abort instant (the queue is arrival-ordered, so dropped
// segments are always a suffix).
func (r *ring[T]) popBack() T {
	var zero T
	i := (r.head + r.n - 1) & (len(r.buf) - 1)
	v := r.buf[i]
	r.buf[i] = zero
	r.n--
	return v
}

// segPool recycles segment payload buffers across every direction in
// the process. Buffers are handed out by write sized to the pacing
// segment and returned by read once fully consumed (or by teardown
// paths). Oversized one-off buffers (beyond maxPooledSeg) are left to
// the garbage collector so a burst of huge segments cannot pin memory.
var segPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, defaultSegCap)
		return &b
	},
}

const (
	defaultSegCap = 32 << 10
	maxPooledSeg  = 256 << 10
)

func getSegBuf(n int) ([]byte, *[]byte) {
	box := segPool.Get().(*[]byte)
	if cap(*box) < n {
		*box = make([]byte, 0, max(n, defaultSegCap))
	}
	return (*box)[:n], box
}

func putSegBuf(s segment) {
	if s.box == nil {
		return
	}
	if cap(s.data) > maxPooledSeg {
		*s.box = nil // oversized one-off: let the GC take the payload
	} else {
		*s.box = s.data[:0]
	}
	segPool.Put(s.box)
}

// direction carries bytes one way between two conns: pacing state on the
// write side, an arrival-ordered queue on the read side.
//
// Randomness invariant: the jitter/loss rng is a per-instance
// *rand.Rand derived from LinkParams.Seed (itself derived from the
// testbed or scenario seed), only ever touched under d.mu, and created
// lazily on the first draw — links with neither jitter nor loss never
// pay for seeding. No global rand is consulted anywhere in the
// emulator, so runs with hundreds of concurrent sessions stay
// bit-identical per seed: one direction's draw sequence depends only on
// its own byte stream, never on scheduling order against other
// directions.
type direction struct {
	clock  *Clock
	params LinkParams
	rng    *rand.Rand // lazily seeded on first draw; guarded by mu

	mu       sync.Mutex
	cond     *Cond // clock-aware; signalled on enqueue, read, close, abort
	queue    ring[segment]
	buffered int // bytes written but not yet read (send buffer accounting)
	unread   int // offset into the head segment already consumed

	lastDeparture time.Time // pacing frontier
	lastArrival   time.Time // FIFO arrival frontier

	// slow-start state: cwnd grows by one byte per acknowledged byte
	// (classic slow start), where a segment counts as acknowledged one
	// reverse-path delay after it arrives.
	lastActivity time.Time
	sentCum      int64          // bytes queued onto the link
	ackedCum     int64          // bytes acknowledged by time lastAckCheck
	ackQueue     ring[ackPoint] // pending (ackTime, cumulative sent) marks
	ssBaseline   int64          // ackedCum at the last slow-start (re)start

	closed bool // writer closed: drain queue then EOF

	// Event-API state (see event.go). readableCb/writableCb are the
	// armed completion callbacks of a non-parking reader/writer;
	// readTimer is the wheel entry that fires readableCb at the head
	// segment's arrival instant. retained holds segments consumed
	// through readBuf whose borrowed views are still outstanding
	// (released FIFO by release); relOff is the released prefix of the
	// retained head.
	readableCb func()
	writableCb func()
	readTimer  *Timer
	retained   ring[segment]
	relOff     int
	// evWake is the arrival instant an evented reader last committed to
	// wake at (the queue head's arrival when it drained to nil, exactly
	// the instant a blocking reader would SleepUntil). An abort that
	// drops that segment stays unobservable through readBuf until
	// evWake, mirroring the sleeping blocking reader that only sees the
	// error once its scheduled wake instant arrives.
	evWake time.Time

	// Abort protocol state. An abort is a scheduled event at an emulated
	// instant, not a wall-clock side effect: abortErr/abortTime are set
	// once (earliest schedule wins) and every endpoint behaviour is then
	// a pure function of virtual time — reads and writes fail once the
	// clock reaches abortTime, segments that arrived at or before the
	// abort instant stay deliverable (even if read later), and segments
	// that would arrive strictly after it are dropped in flight.
	// Outcomes therefore never depend on goroutine scheduling order
	// around the abort. abortTimer re-wakes parked waiters at a
	// future abort instant; it is a clock timer-wheel entry, not a
	// goroutine, so scheduling (and re-scheduling, when an earlier
	// abort supersedes) is a bucket write on the owner's shard.
	abortErr   error
	abortTime  time.Time
	abortTimer *Timer
}

func newDirection(clock *Clock, p LinkParams) *direction {
	d := &direction{
		clock:  clock,
		params: p.withDefaults(),
	}
	d.cond = NewCond(clock, &d.mu)
	now := clock.Now()
	d.lastActivity = now
	d.lastDeparture = now
	d.lastArrival = now
	return d
}

// draws returns the direction's lazily-created rng. Seeding a math/rand
// source costs ~600 words of state initialisation, which dominated
// fleet-scale connection setup when done eagerly for every direction;
// deferring it to the first jitter/loss draw keeps the draw sequence
// identical while making loss-free links free. Callers must hold d.mu.
func (d *direction) draws() *rand.Rand {
	if d.rng == nil {
		d.rng = rand.New(rand.NewSource(d.params.Seed + 1))
	}
	return d.rng
}

// ssRate returns the slow-start cap on the pacing rate at emulated time t,
// in bytes per second, or +Inf when slow start is disabled. Classic
// slow start: the congestion window starts at InitCwnd segments and
// grows by one byte per acknowledged byte (doubling per round trip
// while the link keeps up), restarting after an idle period.
func (d *direction) ssRate(t time.Time) float64 {
	if !d.params.SlowStart {
		return math.Inf(1)
	}
	rtt := 2 * d.params.Delay
	if rtt <= 0 {
		return math.Inf(1)
	}
	// Absorb acknowledgements due by t.
	for d.ackQueue.len() > 0 && !d.ackQueue.front().t.After(t) {
		d.ackedCum = d.ackQueue.pop().cum
	}
	if t.Sub(d.lastActivity) > d.params.SSRestartIdle {
		d.ssBaseline = d.ackedCum // idle restart
	}
	cwnd := float64(d.params.InitCwnd*DefaultMSS) + float64(d.ackedCum-d.ssBaseline)
	return cwnd / rtt.Seconds()
}

// write paces p onto the link, blocking while the send buffer is full.
// It returns the number of bytes accepted and the abort error, if any.
// part is the writing goroutine's clock handle (nil parks as
// transient).
//
// stable marks p as immutable and immortal for the purposes of this
// write (a borrowed view of the origin's content page cache): instead
// of copying into a pooled segment buffer, the queue aliases sub-slices
// of p directly (capacity clipped to length, so the coalescing append
// can never touch bytes beyond the slice and falls back to a fresh
// segment instead). Pacing, arrival instants and delivered bytes are
// identical either way — only the copy disappears.
func (d *direction) write(p []byte, part *Participant, stable bool) (int, error) {
	written := 0
	for len(p) > 0 {
		d.mu.Lock()
		for {
			if err := d.abortedBy(d.clock.Now()); err != nil {
				d.mu.Unlock()
				return written, err
			}
			if d.closed {
				d.mu.Unlock()
				return written, errClosedConn
			}
			if d.buffered < d.params.SendBuf {
				break
			}
			// Send buffer full: space is freed only by reads, and a
			// reader waiting out an arrival wakes through the clock, so
			// this wait cannot deadlock (a pending abort re-wakes every
			// waiter at the abort instant). A false return means the
			// clock stopped and the reader will never drain.
			if !d.cond.Wait(part) {
				d.mu.Unlock()
				return written, errClosedConn
			}
		}

		wasEmpty := d.queue.len() == 0
		segBytes := d.pushSegmentLocked(p, stable)
		p = p[segBytes:]
		written += segBytes
		d.cond.Broadcast()
		arm, fire := d.readableArmLocked(wasEmpty)
		d.mu.Unlock()
		d.dispatchReadable(arm, fire)
	}
	return written, nil
}

// pushSegmentLocked paces one segment of p onto the link and returns its
// size. It is the single pacing/enqueue path shared by the blocking
// write and the non-parking tryWrite, so both produce identical segment
// boundaries, arrival instants and slow-start evolution. Callers must
// hold d.mu, must have checked abort/closed/send-buffer admission, and
// must broadcast afterwards.
func (d *direction) pushSegmentLocked(p []byte, stable bool) int {
	now := d.clock.Now()
	if d.lastDeparture.Before(now) {
		d.lastDeparture = now
	}
	rate := d.params.rateAt(d.lastDeparture)
	if ss := d.ssRate(d.lastDeparture); ss < rate {
		rate = ss
	}
	d.lastActivity = d.lastDeparture

	// Segment size: at most Quantum of line time, at least one MSS.
	segBytes := int(rate * d.params.Quantum.Seconds())
	if segBytes < DefaultMSS {
		segBytes = DefaultMSS
	}
	if segBytes > len(p) {
		segBytes = len(p)
	}

	tx := time.Duration(float64(segBytes) / rate * float64(time.Second))
	dep := d.lastDeparture.Add(tx)
	arr := dep.Add(d.params.Delay)
	if d.params.Jitter > 0 {
		arr = arr.Add(time.Duration(d.draws().Int63n(int64(d.params.Jitter))))
	}
	if prob := d.params.lossAt(dep); prob > 0 {
		// Loss draws happen only when the effective probability at the
		// departure instant is positive, so links whose storms never
		// activate — and all loss-free links — keep a byte-identical
		// draw sequence with and without LossWindows configured.
		nseg := (segBytes + DefaultMSS - 1) / DefaultMSS
		for i := 0; i < nseg; i++ {
			if d.draws().Float64() < prob {
				arr = arr.Add(d.params.RTOPenalty)
			}
		}
	}
	if arr.Before(d.lastArrival) {
		arr = d.lastArrival // FIFO
	}
	d.lastDeparture = dep
	d.lastArrival = arr
	d.sentCum += int64(segBytes)
	if d.params.SlowStart {
		// The segment is acknowledged one reverse-path delay after
		// it arrives.
		d.ackQueue.push(ackPoint{t: arr.Add(d.params.Delay), cum: d.sentCum})
	}
	if d.abortErr != nil && arr.After(d.abortTime) {
		// Dropped-at-abort rule: the segment would arrive strictly
		// after the scheduled abort instant, so it is accepted from
		// the sender (which cannot tell yet) but vanishes in flight
		// and never occupies the receive queue.
	} else if last := d.lastSegment(); last != nil && last.arrival.Equal(arr) &&
		len(last.data)+segBytes <= cap(last.data) {
		// Coalesce into the tail segment when the arrival instant is
		// identical (a clamped backlog) and the pooled buffer has
		// room: the reader drains by arrival instant, so merging
		// changes neither timing nor content, only queue churn.
		// (Aliased stable segments advertise no spare capacity, so
		// they are never appended into.)
		last.data = append(last.data, p[:segBytes]...)
		d.buffered += segBytes
	} else if stable {
		d.queue.push(segment{data: p[:segBytes:segBytes], arrival: arr})
		d.buffered += segBytes
	} else {
		data, box := getSegBuf(segBytes)
		copy(data, p[:segBytes])
		d.queue.push(segment{data: data, box: box, arrival: arr})
		d.buffered += segBytes
	}
	return segBytes
}

// lastSegment returns the newest queued segment, or nil when the queue
// is empty. Appending to it is safe even when it doubles as the
// partially consumed head: consumption tracks unread while append only
// extends len, and both happen under d.mu. Callers must hold d.mu.
func (d *direction) lastSegment() *segment {
	if d.queue.len() == 0 {
		return nil
	}
	return d.queue.back()
}

// read copies delivered bytes into p, blocking until data is available
// (waiting out the arrival time of the head segment when necessary).
// Fully consumed segments return their pooled buffers. part is the
// reading goroutine's clock handle (nil parks as transient).
func (d *direction) read(p []byte, part *Participant) (int, error) {
	for {
		d.mu.Lock()
		if d.queue.len() == 0 {
			// Delivered-before-abort rule: the queue only ever holds
			// segments arriving at or before the abort instant (later
			// ones are dropped at enqueue/schedule time), so queued data
			// is always drained before the abort error surfaces — even
			// when the reader runs after the abort instant.
			if err := d.abortedBy(d.clock.Now()); err != nil {
				d.mu.Unlock()
				return 0, err
			}
			if d.closed {
				d.mu.Unlock()
				return 0, errEOF
			}
			ok := d.cond.Wait(part)
			d.mu.Unlock()
			if !ok {
				return 0, errClosedConn
			}
			continue
		}
		head := d.queue.front()
		now := d.clock.Now()
		if head.arrival.After(now) {
			if d.clock.Stopped() {
				// Teardown: SleepUntil would return immediately and the
				// arrival instant will never come.
				d.mu.Unlock()
				return 0, errClosedConn
			}
			arrival := head.arrival
			d.mu.Unlock()
			if part != nil {
				part.SleepUntil(arrival)
			} else {
				d.clock.SleepUntil(arrival)
			}
			continue
		}
		// Drain as many arrived segments as fit into p.
		n := 0
		for n < len(p) && d.queue.len() > 0 {
			s := d.queue.front()
			if s.arrival.After(now) {
				break
			}
			avail := s.data[d.unread:]
			c := copy(p[n:], avail)
			n += c
			d.unread += c
			if d.unread == len(s.data) {
				putSegBuf(d.queue.pop())
				d.unread = 0
			}
		}
		d.buffered -= n
		d.cond.Broadcast()
		wcb := d.writableCb
		d.mu.Unlock()
		if wcb != nil && n > 0 {
			wcb()
		}
		return n, nil
	}
}

// close marks the writer side closed: the reader drains then sees EOF.
// Idempotent: only the first close signals waiters and callbacks, so a
// callback that closes its own conn cannot recurse through itself.
func (d *direction) close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	d.cond.Broadcast()
	var rcb func()
	if d.queue.len() == 0 {
		rcb = d.readableCb // EOF is observable immediately
	}
	wcb := d.writableCb
	d.mu.Unlock()
	if rcb != nil {
		rcb()
	}
	if wcb != nil {
		wcb()
	}
}

// abortedBy returns the abort error when the scheduled abort has taken
// effect by the emulated instant now. Callers must hold d.mu.
func (d *direction) abortedBy(now time.Time) error {
	if d.abortErr != nil && !now.Before(d.abortTime) {
		return d.abortErr
	}
	return nil
}

// abort schedules a hard failure effective at the current emulated
// instant: both ends fail from now on, and queued segments that have
// not yet arrived are dropped (already-arrived data stays deliverable).
func (d *direction) abort(err error) { d.abortAt(d.clock.Now(), err) }

// abortAt schedules a hard failure of the direction at the emulated
// instant t (clamped to now). The earliest scheduled abort wins; a
// later re-schedule is a no-op, which makes redundant abort sources
// (teardown sweep, per-request cancellation watchers, interface loss)
// commute. Segments whose arrival instant is strictly after t are
// dropped immediately (releasing their pooled buffers); segments
// arriving at or before t remain deliverable until read. Both
// endpoints observe the error exactly from t onward, regardless of
// when their goroutines are scheduled.
func (d *direction) abortAt(t time.Time, err error) {
	d.mu.Lock()
	now := d.clock.Now()
	if t.Before(now) {
		t = now
	}
	if d.abortErr != nil && !d.abortTime.After(t) {
		d.mu.Unlock()
		return
	}
	d.abortErr, d.abortTime = err, t
	// Dropped-at-abort rule: in-flight segments arriving strictly after
	// the abort instant vanish; a segment arriving exactly at t counts
	// as delivered. Strictness is what makes same-instant races
	// commute: a reader runnable at t may already have (partially)
	// consumed a segment with arrival == t, and dropping it here would
	// make the outcome depend on which goroutine ran first (besides
	// corrupting the unread/buffered accounting of a half-read head).
	// The queue is arrival-ordered, so dropped segments form a suffix,
	// and a partially consumed head (arrival <= now <= t) survives.
	for d.queue.len() > 0 && d.queue.back().arrival.After(t) {
		s := d.queue.popBack()
		d.buffered -= len(s.data)
		putSegBuf(s)
	}
	future := t.After(now)
	if future && d.abortTimer == nil {
		d.abortTimer = d.clock.NewTimer(func() {
			d.mu.Lock()
			d.cond.Broadcast()
			rcb, wcb := d.readableCb, d.writableCb
			d.mu.Unlock()
			// The abort instant has arrived: event-API endpoints learn of
			// the failure through their armed callbacks, exactly like the
			// parked waiters the broadcast re-wakes.
			if rcb != nil {
				rcb()
			}
			if wcb != nil {
				wcb()
			}
		})
	}
	watcher := d.abortTimer
	d.cond.Broadcast()
	var rcb, wcb func()
	if !future {
		rcb, wcb = d.readableCb, d.writableCb
	}
	d.mu.Unlock()
	if rcb != nil {
		rcb()
	}
	if wcb != nil {
		wcb()
	}
	if !future {
		return
	}
	// Future abort: a wheel timer re-wakes all waiters at the abort
	// instant, when the error becomes observable. An earlier abort
	// superseding a later one reschedules the same timer (its old entry
	// is cancelled in place); immediate aborts (the teardown hot path)
	// never schedule anything.
	//
	// Schedule runs outside d.mu (a stale schedule fires the broadcast
	// callback synchronously, which retakes d.mu), so two racing
	// abortAt calls could otherwise interleave as set(t1) set(t2<t1)
	// schedule(t2) schedule(t1), pinning the timer at the later
	// instant while abortTime holds the earlier one. Converge instead:
	// after scheduling, re-read abortTime and reschedule until the
	// timer's target matches it — abortTime only ever moves earlier,
	// so the loop terminates, and earliest-abort-wins stays true
	// regardless of goroutine interleaving.
	for {
		watcher.Schedule(t)
		d.mu.Lock()
		cur := d.abortTime
		d.mu.Unlock()
		if cur.Equal(t) {
			return
		}
		t = cur
	}
}

// queuedBytes reports the bytes currently queued for delivery,
// including the partially consumed head segment; used by tests to
// verify that delivered segments release their memory.
func (d *direction) queuedBytes() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	total := -d.unread
	for i := 0; i < d.queue.len(); i++ {
		total += len(d.queue.buf[(d.queue.head+i)&(len(d.queue.buf)-1)].data)
	}
	if total < 0 {
		total = 0
	}
	return total
}

// queueCapBytes reports the payload capacity referenced by the queue's
// backing array — what the direction is actually pinning. A drained
// queue must report 0 regardless of how much traffic has passed.
func (d *direction) queueCapBytes() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	total := 0
	for i := range d.queue.buf {
		total += cap(d.queue.buf[i].data)
	}
	return total
}
