package netem

import (
	"math"
	"math/rand"
	"sync"
	"time"
)

// segment is a block of bytes due for delivery at an emulated instant.
type segment struct {
	data    []byte
	arrival time.Time
}

// ackPoint marks the emulated instant at which the sender has received
// acknowledgements covering cum bytes.
type ackPoint struct {
	t   time.Time
	cum int64
}

// direction carries bytes one way between two conns: pacing state on the
// write side, an arrival-ordered queue on the read side.
//
// Randomness invariant: the jitter/loss rng is a per-instance
// *rand.Rand derived from LinkParams.Seed (itself derived from the
// testbed or scenario seed), only ever touched under d.mu. No global
// rand is consulted anywhere in the emulator, so runs with hundreds of
// concurrent sessions stay bit-identical per seed: one direction's draw
// sequence depends only on its own byte stream, never on scheduling
// order against other directions.
type direction struct {
	clock  *Clock
	params LinkParams
	rng    *rand.Rand // per-instance, seeded; guarded by mu

	mu       sync.Mutex
	cond     *Cond // clock-aware; signalled on enqueue, read, close, abort
	queue    []segment
	buffered int // bytes written but not yet read (send buffer accounting)
	unread   int // offset into queue[0].data already consumed

	lastDeparture time.Time // pacing frontier
	lastArrival   time.Time // FIFO arrival frontier

	// slow-start state: cwnd grows by one byte per acknowledged byte
	// (classic slow start), where a segment counts as acknowledged one
	// reverse-path delay after it arrives.
	lastActivity time.Time
	sentCum      int64      // bytes queued onto the link
	ackedCum     int64      // bytes acknowledged by time lastAckCheck
	ackQueue     []ackPoint // pending (ackTime, cumulative sent) marks
	ssBaseline   int64      // ackedCum at the last slow-start (re)start

	closed  bool  // writer closed: drain queue then EOF
	aborted error // hard failure: surfaces immediately on both ends
}

func newDirection(clock *Clock, p LinkParams) *direction {
	d := &direction{
		clock:  clock,
		params: p.withDefaults(),
		rng:    rand.New(rand.NewSource(p.Seed + 1)),
	}
	d.cond = NewCond(clock, &d.mu)
	now := clock.Now()
	d.lastActivity = now
	d.lastDeparture = now
	d.lastArrival = now
	return d
}

// ssRate returns the slow-start cap on the pacing rate at emulated time t,
// in bytes per second, or +Inf when slow start is disabled. Classic
// slow start: the congestion window starts at InitCwnd segments and
// grows by one byte per acknowledged byte (doubling per round trip
// while the link keeps up), restarting after an idle period.
func (d *direction) ssRate(t time.Time) float64 {
	if !d.params.SlowStart {
		return math.Inf(1)
	}
	rtt := 2 * d.params.Delay
	if rtt <= 0 {
		return math.Inf(1)
	}
	// Absorb acknowledgements due by t.
	for len(d.ackQueue) > 0 && !d.ackQueue[0].t.After(t) {
		d.ackedCum = d.ackQueue[0].cum
		d.ackQueue = d.ackQueue[1:]
	}
	if t.Sub(d.lastActivity) > d.params.SSRestartIdle {
		d.ssBaseline = d.ackedCum // idle restart
	}
	cwnd := float64(d.params.InitCwnd*DefaultMSS) + float64(d.ackedCum-d.ssBaseline)
	return cwnd / rtt.Seconds()
}

// write paces p onto the link, blocking while the send buffer is full.
// It returns the number of bytes accepted and the abort error, if any.
func (d *direction) write(p []byte) (int, error) {
	written := 0
	for len(p) > 0 {
		d.mu.Lock()
		for {
			if d.aborted != nil {
				d.mu.Unlock()
				return written, d.aborted
			}
			if d.closed {
				d.mu.Unlock()
				return written, errClosedConn
			}
			if d.buffered < d.params.SendBuf {
				break
			}
			// Send buffer full: space is freed only by reads, and a
			// reader waiting out an arrival wakes through the clock, so
			// this wait cannot deadlock. A false return means the clock
			// stopped and the reader will never drain.
			if !d.cond.Wait() {
				d.mu.Unlock()
				return written, errClosedConn
			}
		}

		now := d.clock.Now()
		if d.lastDeparture.Before(now) {
			d.lastDeparture = now
		}
		rate := d.params.rateAt(d.lastDeparture)
		if ss := d.ssRate(d.lastDeparture); ss < rate {
			rate = ss
		}
		d.lastActivity = d.lastDeparture

		// Segment size: at most Quantum of line time, at least one MSS.
		segBytes := int(rate * d.params.Quantum.Seconds())
		if segBytes < DefaultMSS {
			segBytes = DefaultMSS
		}
		if segBytes > len(p) {
			segBytes = len(p)
		}
		data := make([]byte, segBytes)
		copy(data, p[:segBytes])
		p = p[segBytes:]

		tx := time.Duration(float64(segBytes) / rate * float64(time.Second))
		dep := d.lastDeparture.Add(tx)
		arr := dep.Add(d.params.Delay)
		if d.params.Jitter > 0 {
			arr = arr.Add(time.Duration(d.rng.Int63n(int64(d.params.Jitter))))
		}
		if d.params.LossProb > 0 {
			nseg := (segBytes + DefaultMSS - 1) / DefaultMSS
			for i := 0; i < nseg; i++ {
				if d.rng.Float64() < d.params.LossProb {
					arr = arr.Add(d.params.RTOPenalty)
				}
			}
		}
		if arr.Before(d.lastArrival) {
			arr = d.lastArrival // FIFO
		}
		d.lastDeparture = dep
		d.lastArrival = arr
		d.sentCum += int64(segBytes)
		if d.params.SlowStart {
			// The segment is acknowledged one reverse-path delay after
			// it arrives.
			d.ackQueue = append(d.ackQueue, ackPoint{t: arr.Add(d.params.Delay), cum: d.sentCum})
		}
		d.queue = append(d.queue, segment{data: data, arrival: arr})
		d.buffered += segBytes
		written += segBytes
		d.cond.Broadcast()
		d.mu.Unlock()
	}
	return written, nil
}

// read copies delivered bytes into p, blocking until data is available
// (waiting out the arrival time of the head segment when necessary).
func (d *direction) read(p []byte) (int, error) {
	for {
		d.mu.Lock()
		if d.aborted != nil {
			err := d.aborted
			d.mu.Unlock()
			return 0, err
		}
		if len(d.queue) == 0 {
			if d.closed {
				d.mu.Unlock()
				return 0, errEOF
			}
			ok := d.cond.Wait()
			d.mu.Unlock()
			if !ok {
				return 0, errClosedConn
			}
			continue
		}
		head := d.queue[0]
		now := d.clock.Now()
		if head.arrival.After(now) {
			if d.clock.Stopped() {
				// Teardown: SleepUntil would return immediately and the
				// arrival instant will never come.
				d.mu.Unlock()
				return 0, errClosedConn
			}
			arrival := head.arrival
			d.mu.Unlock()
			d.clock.SleepUntil(arrival)
			continue
		}
		// Drain as many arrived segments as fit into p.
		n := 0
		for n < len(p) && len(d.queue) > 0 {
			s := &d.queue[0]
			if s.arrival.After(now) {
				break
			}
			avail := s.data[d.unread:]
			c := copy(p[n:], avail)
			n += c
			d.unread += c
			if d.unread == len(s.data) {
				d.queue = d.queue[1:]
				d.unread = 0
			}
		}
		d.buffered -= n
		d.cond.Broadcast()
		d.mu.Unlock()
		return n, nil
	}
}

// close marks the writer side closed: the reader drains then sees EOF.
func (d *direction) close() {
	d.mu.Lock()
	d.closed = true
	d.cond.Broadcast()
	d.mu.Unlock()
}

// abort poisons the direction with a hard error for both ends.
func (d *direction) abort(err error) {
	d.mu.Lock()
	if d.aborted == nil {
		d.aborted = err
	}
	d.cond.Broadcast()
	d.mu.Unlock()
}
