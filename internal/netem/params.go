package netem

import (
	"time"

	"repro/internal/netem/trace"
)

// Default tuning constants. They are exported so experiment code can
// reference the exact values the emulator uses.
const (
	// DefaultMSS is the segment size used for loss accounting, matching
	// an Ethernet TCP MSS.
	DefaultMSS = 1460

	// DefaultQuantum is the pacing granularity: writes are carved into
	// delivery segments worth at most this much line time.
	DefaultQuantum = 20 * time.Millisecond

	// DefaultSendBuf bounds emulated bytes in flight per direction,
	// modelling the kernel send buffer plus path BDP.
	DefaultSendBuf = 1 << 20

	// DefaultInitCwnd is the slow-start initial window in segments (IW10).
	DefaultInitCwnd = 10

	// DefaultSSRestartIdle is the idle period after which the slow-start
	// ramp restarts, mirroring TCP's congestion-window validation.
	DefaultSSRestartIdle = time.Second
)

// LinkParams describes one direction of an emulated path.
type LinkParams struct {
	// Rate is the base bottleneck rate in bytes per second. Ignored if
	// Trace is set.
	Rate float64

	// Trace optionally makes the rate time varying.
	Trace trace.Rate

	// Delay is the one-way propagation delay.
	Delay time.Duration

	// Jitter adds a uniform random extra delay in [0, Jitter) per
	// delivery segment. Delivery order is still FIFO.
	Jitter time.Duration

	// LossProb is the per-MSS-segment loss probability. A loss is
	// modelled as a head-of-line retransmission penalty of RTOPenalty.
	LossProb float64

	// LossWindows overlay time-bounded loss storms on the direction: a
	// segment departing inside a window is lossed with the window's
	// probability when it exceeds LossProb. The effective probability
	// is a pure function of the departure instant, so storm runs stay
	// deterministic per seed.
	LossWindows []LossWindow

	// RTOPenalty is the extra delay charged per lost segment. If zero,
	// 4*Delay is used (two extra round trips).
	RTOPenalty time.Duration

	// SlowStart enables a TCP-like ramp: the effective pacing rate is
	// capped at cwnd/RTT, with cwnd starting at InitCwnd segments and
	// doubling per round trip until it reaches the line rate.
	SlowStart bool

	// InitCwnd overrides the initial window in segments (default IW10).
	InitCwnd int

	// SSRestartIdle overrides the idle period that restarts slow start.
	SSRestartIdle time.Duration

	// SendBuf bounds in-flight bytes; Write blocks when exceeded.
	SendBuf int

	// Quantum overrides the pacing granularity.
	Quantum time.Duration

	// Seed makes jitter and loss deterministic per direction.
	Seed int64
}

// withDefaults returns a copy with zero fields replaced by defaults.
func (p LinkParams) withDefaults() LinkParams {
	if p.Trace == nil {
		p.Trace = trace.Constant(p.Rate)
	}
	if p.RTOPenalty == 0 {
		p.RTOPenalty = 4 * p.Delay
	}
	if p.InitCwnd == 0 {
		p.InitCwnd = DefaultInitCwnd
	}
	if p.SSRestartIdle == 0 {
		p.SSRestartIdle = DefaultSSRestartIdle
	}
	if p.SendBuf == 0 {
		p.SendBuf = DefaultSendBuf
	}
	if p.Quantum == 0 {
		p.Quantum = DefaultQuantum
	}
	return p
}

// LossWindow is one time-bounded loss storm: segments departing in
// [From, To) suffer at least Prob per-MSS-segment loss.
type LossWindow struct {
	From, To time.Time
	Prob     float64
}

// lossAt returns the effective per-segment loss probability for a
// segment departing at t: the base LossProb raised to any active
// window's probability.
func (p *LinkParams) lossAt(t time.Time) float64 {
	prob := p.LossProb
	for _, w := range p.LossWindows {
		if w.Prob > prob && !t.Before(w.From) && t.Before(w.To) {
			prob = w.Prob
		}
	}
	return prob
}

// rateAt returns the instantaneous rate, floored at one byte/sec so the
// pacer never divides by zero; an Outage trace still effectively stalls
// the link because transfer times explode.
func (p *LinkParams) rateAt(t time.Time) float64 {
	r := p.Trace.RateAt(t)
	if r < 1 {
		return 1
	}
	return r
}

// Mbps converts megabits per second to the bytes-per-second unit used by
// LinkParams.Rate.
func Mbps(m float64) float64 { return m * 1e6 / 8 }

// Symmetric builds an up/down pair with the same rate and delay, the
// common configuration for the experiments in this repository.
func Symmetric(rate float64, delay time.Duration) (up, down LinkParams) {
	up = LinkParams{Rate: rate, Delay: delay}
	down = LinkParams{Rate: rate, Delay: delay}
	return up, down
}
