// Package netem is a userspace network emulator used as the testbed
// substrate for MSPlayer experiments.
//
// It provides net.Conn / net.Listener implementations whose byte streams
// are subject to per-direction bandwidth pacing, propagation delay,
// jitter, random loss (modelled as head-of-line retransmission penalty),
// time-varying rate traces, and an optional TCP-like slow-start ramp.
// HTTP clients and servers run on top of it unmodified, so the full
// range-request machinery of MSPlayer is exercised end to end.
//
// All emulated waiting goes through a Clock. The Clock has two modes:
//
//   - Virtual (the default): a deterministic discrete-event clock driven
//     by waiter accounting. Every emulation participant — pipe readers
//     and writers, HTTP fetch loops, origin request handlers, playout
//     drain timers — registers with the clock (Clock.Register or
//     Clock.Go) and parks only through clock-visible primitives:
//     Sleep/SleepUntil for deadline waits and Cond for emulated-I/O
//     waits. The instant every registered participant is parked, the
//     clock jumps to the earliest pending deadline and wakes the
//     sleepers that become due. There are no wall-clock sleeps and no
//     quiescence polling, so hours of emulated streaming complete as
//     fast as the CPU allows and the event order is bit-for-bit
//     reproducible across machines and load conditions.
//
//   - Scaled real time: emulated durations are divided by a constant
//     factor and slept for real (interruptibly by Clock.Stop). Useful
//     for interactive demos.
//
// Three rules keep virtual runs deterministic:
//
//  1. Registered goroutines must never park invisibly (bare channel
//     operations, time.Sleep): the clock would refuse to jump while they
//     wait, or jump while they are about to run. Park through the Clock
//     or a Cond instead.
//  2. Goroutines are spawned with Clock.Go (or under a Hold), so the
//     clock cannot jump during the handoff between spawner and spawnee.
//  3. Wake-ups transfer accounting to the wakee at signal time
//     (Cond.Signal pre-credits the waiter), so there is no window in
//     which a runnable goroutine is invisible to the clock.
//
// Unregistered goroutines may still use the blocking primitives: they
// are accounted as transient participants while parked. This keeps
// casual use (tests, example main functions, injected failure events)
// working, at reduced determinism while such a goroutine is runnable.
//
// The emulator is a fluid model at a configurable pacing quantum
// (default 20 ms of line time per delivery segment): transfer durations,
// per-request round trips and slow-start ramps are exact at quantum
// granularity, which is far finer than the chunk sizes (16 KB..1 MB)
// scheduled by the systems under test.
package netem
