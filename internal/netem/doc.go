// Package netem is a userspace network emulator used as the testbed
// substrate for MSPlayer experiments.
//
// It provides net.Conn / net.Listener implementations whose byte streams
// are subject to per-direction bandwidth pacing, propagation delay,
// jitter, random loss (modelled as head-of-line retransmission penalty),
// time-varying rate traces, and an optional TCP-like slow-start ramp.
// Real net/http clients and servers run unmodified on top of it, so the
// full HTTP range-request machinery of MSPlayer is exercised end to end.
//
// All emulated waiting goes through a Clock. The Clock has two modes:
//
//   - Virtual (the default): a discrete-event "time warp" clock. When
//     every participant is blocked waiting for an emulated instant, the
//     clock jumps straight to the earliest pending deadline. Hours of
//     emulated streaming complete in seconds of real time while every
//     timing relationship (RTT overhead per range request, pacing,
//     head-start between paths) is preserved exactly.
//
//   - Scaled real time: emulated durations are divided by a constant
//     factor and slept for real. Useful for interactive demos.
//
// The emulator is a fluid model at a configurable pacing quantum
// (default 20 ms of line time per delivery segment): transfer durations,
// per-request round trips and slow-start ramps are exact at quantum
// granularity, which is far finer than the chunk sizes (16 KB..1 MB)
// scheduled by the systems under test.
package netem
