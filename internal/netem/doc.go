// Package netem is a userspace network emulator used as the testbed
// substrate for MSPlayer experiments.
//
// It provides net.Conn / net.Listener implementations whose byte streams
// are subject to per-direction bandwidth pacing, propagation delay,
// jitter, random loss (modelled as head-of-line retransmission penalty),
// time-varying rate traces, and an optional TCP-like slow-start ramp.
// HTTP clients and servers run on top of it unmodified, so the full
// range-request machinery of MSPlayer is exercised end to end.
//
// All emulated waiting goes through a Clock. The Clock has two modes:
//
//   - Virtual (the default): a deterministic discrete-event clock driven
//     by waiter accounting. Every emulation participant — pipe readers
//     and writers, HTTP fetch loops, origin request handlers, playout
//     drain timers — registers with the clock (Clock.Register or
//     Clock.Go), receiving a *Participant handle, and parks only
//     through clock-visible primitives: Participant.Sleep/SleepUntil
//     for deadline waits and Cond.Wait for emulated-I/O waits. The
//     instant every registered participant is parked, the clock jumps
//     to the earliest pending deadline and wakes the sleepers that
//     become due. There are no wall-clock sleeps and no quiescence
//     polling, so hours of emulated streaming complete as fast as the
//     CPU allows and the event order is bit-for-bit reproducible across
//     machines and load conditions.
//
//   - Scaled real time: emulated durations are divided by a constant
//     factor and slept for real (interruptibly by Clock.Stop). Useful
//     for interactive demos.
//
// # Participant handles
//
// The Participant handle is the unit of clock accounting, introduced to
// make the hot path O(1) at fleet scale (the previous design parsed the
// goroutine id out of runtime.Stack on every park and looked it up in a
// global registration map under the clock lock). The rules:
//
//  1. Registered goroutines must never park invisibly (bare channel
//     operations, time.Sleep): the clock would refuse to jump while
//     they wait. Park through the goroutine's Participant or pass it to
//     Cond.Wait. The no-wall-clock half of this rule is mechanically
//     enforced by detlint/wallclock (see internal/detlint): time.Now,
//     time.Sleep, time.After and friends are findings outside
//     //detlint:allow-justified sites.
//  2. Goroutines are spawned with Clock.Go (or under a Hold), so the
//     clock cannot jump during the handoff between spawner and spawnee;
//     Go passes the new goroutine its Participant. Mechanically
//     enforced by detlint/baredgo: a bare go statement in a non-test
//     file is a finding.
//  3. Wake-ups transfer accounting to the wakee at signal time
//     (Cond.Signal pre-credits the waiter), so there is no window in
//     which a runnable goroutine is invisible to the clock.
//  4. A Participant belongs to one goroutine at a time, and a
//     registered goroutine holds exactly one: code called on behalf of
//     an already-registered caller takes the caller's handle (see
//     core.Player.RunAs, Interface.Dial, Listener.AcceptP, Conn.Bind)
//     instead of registering again — a second registration for the
//     same goroutine would deadlock the accounting.
//
// Unregistered goroutines may still use the clock-level blocking
// shims (Clock.Sleep, Clock.SleepUntil, Cond.Wait with nil, Accept,
// DialContext): they are accounted as transient participants while
// parked. This keeps casual use (tests, example main functions)
// working, at reduced determinism while such a goroutine is runnable.
// Registered goroutines must not call the transient shims: the clock
// would count them twice and wedge.
//
// # Shutdown and draining
//
// Teardown is part of the deterministic model, not an afterthought: a
// connection abort is a scheduled clock event, never a racy side
// effect. Conn.AbortAt(t, err) (and Conn.Abort, its t=now shorthand)
// schedules a hard failure of both directions at the emulated instant
// t, and from there every endpoint behaviour is a pure function of
// virtual time:
//
//   - Reads and writes fail with err exactly from t onward.
//   - Segments that arrived at or before t stay deliverable — a reader
//     drains them first, even if it is only scheduled after t — then
//     sees err (the delivered-before-abort rule).
//   - Segments that would arrive strictly after t are dropped in
//     flight: the sender's pre-t writes are accepted (it cannot tell
//     yet), but the bytes never reach the peer (the dropped-at-abort
//     rule). Strict inequality keeps same-instant races commutative: a
//     segment arriving exactly at t is delivered whether or not its
//     reader beat the abort to it.
//   - The earliest scheduled abort wins; later re-schedules are no-ops,
//     so redundant abort sources (a teardown sweep, a per-request
//     cancellation watcher, interface loss) commute.
//
// Who initiates, and what parks where: an initiator that is RUNNABLE
// and registered (a fleet session's teardown, a fault injector) pins
// virtual time while it sweeps its connections, so every abort in the
// sweep lands at one deterministic instant T; everything parked at T —
// fetch loops in clock-visible reads, server loops in request reads or
// paced writes — wakes through the abort's Cond broadcast and observes
// err by the rules above, at instants the clock alone decides. The only
// scheduling races left are between goroutines runnable at the very
// same virtual instant, which the protocol makes commute. Clock.Stop is
// the out-of-band big hammer for ending an emulation from outside
// emulated time: it wakes every parked waiter and freezes Now() at the
// stop instant in both clock modes, so post-stop accessors read one
// stable time instead of a wall clock that keeps running.
//
// Consumers build drain barriers on these semantics: httpx.Server
// counts its per-connection loops and Server.Drain parks a caller (via
// Cond) until they unwind, origin.Cluster.Drain chains that across
// every server, and the fleet engine joins that barrier on the clock
// after its sessions finish, then samples the per-origin books exactly
// once — final, settled, and bit-identical per seed, with no wall-clock
// quiescence polling anywhere.
//
// # Timer wheel
//
// Pending deadlines live in a sharded hierarchical timer wheel rather
// than one global heap, so deadline scheduling is not a single lock the
// whole emulation serialises on:
//
//   - Sharding is participant-affine: Register assigns each Participant
//     one of the wheel's shards (round-robin), and every deadline park
//     the participant makes touches only that shard's lock and cache
//     lines, reusing the handle's embedded wheel node. Transient parks
//     and timers are spread round-robin the same way. Two participants
//     on different shards never contend on a park.
//   - Each shard is a coarse-bucket wheel with an overflow level:
//     ~1 ms buckets (deadlines keep full nanosecond resolution — the
//     bucket width only coarsens the index, never the firing instant)
//     spanning a ~268 ms horizon, with beyond-horizon deadlines in a
//     per-shard min-heap that re-homes into buckets as the wheel
//     advances. The dense deadline band (propagation delays, pacing
//     quanta, think times) is an O(1) bucket append; only coarse
//     session-scale waits pay a heap push, once.
//   - The jump loop finds the next instant from a lock-free summary:
//     each shard maintains its earliest pending deadline in an atomic,
//     and the loop scans those (O(shards), no locks) before touching
//     only the shards that actually own the instant.
//   - Same-instant wakes are batched: all sleepers due at the jump
//     instant across all shards are popped as one batch, and their wake
//     tokens are fanned out after every shard lock is released, sorted
//     by (deadline, seq) — the exact order the retired global heap
//     popped in, so event sequencing (and with it every report byte) is
//     unchanged. A differential test drives randomized schedules
//     through the retired heap and the wheel and asserts identical
//     firing sequences.
//
// The wheel also backs Timer, an event-at-an-instant callback that
// replaces dedicated watcher goroutines (future conn aborts park no
// goroutine at all): the jump loop runs the callback at the scheduled
// instant, holding the clock until it completes, and Timer.Stop /
// re-Schedule cancel the pending entry in place.
//
// # Timer-driven fault callbacks
//
// Timers are the substrate for deterministic fault injection (request
// deadlines in httpx, the fleet fault-plan engine's server kills,
// blackholes and edge outages): arming a Timer at an exact virtual
// instant makes the fault — and its recovery — part of the event
// schedule, so two runs of the same plan fail identically. Callbacks
// run under tight rules:
//
//  1. A callback executes on whichever goroutine performs the jump, at
//     the popped instant, under a clock hold collectDue took for it.
//     Same-instant timers fire in (deadline, seq) order, so arming
//     order decides firing order at a shared instant.
//  2. Callbacks must not park — no Sleep, no Cond.Wait, no emulated
//     I/O. The clock is held; a parking callback wedges the jump loop.
//     Broadcast, signal, abort, schedule another timer: fine. Follow-up
//     work that must park (an edge cold-restart re-deploying a server)
//     is done synchronously only if the API is documented park-free
//     (origin.Cluster.Restart is), otherwise deferred to a registered
//     goroutine woken by the callback.
//  3. Callbacks may take emulation locks — abort a conn, flip a
//     server's blackhole flag — because every park site releases its
//     lock before advancing the clock: Cond.Wait appends its waiter,
//     unlocks L, and only then attempts the advance that may run
//     callbacks inline. (A callback firing under the parker's L would
//     self-deadlock; the request-deadline callback aborting the very
//     conn its goroutine parked reading is the canonical case.)
//  4. No bare goroutines from callbacks: anything spawned goes through
//     Clock.Go, same as everywhere else (detlint/baredgo enforces it),
//     or the spawned work would be invisible to the accounting and the
//     clock could jump past it.
//  5. Resilience state (core's circuit breakers, health scores, hedge
//     service windows) is never read or written from a timer callback.
//     The hedge timer's callback only aborts the in-flight conn at the
//     budget instant — mechanism, not policy; the resulting error is
//     observed by the path's driving context (its fetch goroutine or
//     its event-loop step), which alone advances breaker/hedge state
//     at selection and completion instants. Callbacks mutating that
//     state would make the outcome depend on where a jump happened to
//     run a timer, and the two engines — whose callbacks fire on
//     different goroutines — could then diverge byte-wise.
//
// # Timer-driven state machines
//
// The blocking Conn API costs one parked goroutine per pending read or
// write. The event-driven API (Conn.OnReadable, Conn.ReadBuf,
// Conn.Release, Conn.TryWrite/TryWriteStable, Conn.OnWritable,
// DialEvent, and Loop to serialise machine steps) removes the
// goroutine: a whole session's I/O runs as a state machine stepped by
// timer-wheel callbacks, so a fleet's goroutine count is O(cores +
// servers) instead of O(sessions × paths). Both APIs share every byte
// of pacing, arrival, flow-control and abort machinery, so a
// callback-driven connection produces exactly the virtual-time
// timeline a goroutine-driven one does. The rules extend the fault-
// callback rules above:
//
//  1. Readiness callbacks fire on the clock's jump goroutine (or
//     synchronously on a mutating caller) under a clock hold and must
//     not park — no Sleep, no Cond.Wait, no blocking Read/Write.
//     Drain, re-arm, schedule, hand the rest to a Loop step: fine.
//  2. Callbacks are level triggers, not edge counts: a firing may be
//     spurious and one firing may cover many arrivals. Consumers drain
//     until ReadBuf returns (nil, nil) (or TryWrite stops accepting)
//     and rely on the next firing for the rest.
//  3. ReadBuf hands out a borrowed view of the oldest arrived,
//     unconsumed bytes — zero-copy: the view aliases the direction's
//     pooled segment buffer. The borrow lifetime is explicit: a view
//     stays valid until the caller has Released that many bytes, and
//     releases are strictly FIFO per direction. Flow control is
//     charged at borrow time — ReadBuf decrements the sender's
//     send-buffer accounting exactly when the blocking read's copy
//     would, so a consumer that sits on unreleased views delays only
//     its own memory reclamation, never the wire timeline. Escaping a
//     view past its Release (storing it, appending to it, capturing it
//     in a spawned closure) is a buffer-ownership bug;
//     detlint/borrowck flags retention mechanically.
//  4. Machines that span several connections serialise their steps
//     through a Loop: steps run one at a time in FIFO order, and a
//     step enqueued from within a step (a connection callback calling
//     straight back into the machine) is deferred until the running
//     step returns, so machines need no reentrant locking. Loop.Do
//     never parks.
//  5. Waiting is always a Timer, never a poll: a machine that needs a
//     deadline (request timeout, scheduler backoff) arms a Timer whose
//     callback enqueues the next step. Between callbacks a machine
//     occupies no goroutine and the clock sees only its timers, so the
//     jump loop's waiter accounting — and with it every report byte —
//     is identical to the blocking engine's.
//
// core.RunEvented is the reference consumer: the full MSPlayer session
// (bootstrap, multi-path fetch loops, failover backoff, playout gate)
// as one such machine.
//
// Internally the participant/idle counters are atomics and the jump
// mutex guards only the jump loop itself; wake tokens are delivered
// outside every lock. Parks reuse the participant's wake channel and
// wheel node, so steady-state parking allocates nothing
// (TestWheelParkAllocs pins this, and bucket arrays are reused across
// jumps).
//
// # Pooling invariants
//
// The data plane recycles payload buffers to keep fleet-scale runs out
// of the allocator:
//
//   - Segment buffers (direction.write → read) come from a process-wide
//     sync.Pool. A buffer is owned by the direction's queue from
//     enqueue until the reader consumes its last byte (or the direction
//     aborts), then returns to the pool. Ring-buffer queues zero popped
//     slots, so a drained connection pins no payload memory (the old
//     `q = q[1:]` re-slicing retained every delivered segment for the
//     connection's lifetime).
//   - Segments enqueued at an identical arrival instant coalesce into
//     the queue tail when the pooled buffer has room; arrival instants
//     and byte order are unchanged, only queue churn shrinks.
//   - The jitter/loss rng is seeded lazily on the first draw; links
//     with neither jitter nor loss never pay the ~600-word math/rand
//     seeding. Draw sequences are unchanged for links that do draw.
//
// Consumers keep their own pools layered on the same idea: httpx pools
// connection bufio.Readers and response-body scratch, and core recycles
// chunk bodies between range requests and in-order delivery. In every
// case the invariant is the same: a buffer returns to its pool only
// after the last reader of its bytes has finished, and pooled buffers
// above a size cap are dropped so one-off spikes cannot pin memory.
// The retention half of these rules is mechanically enforced by
// detlint/borrowck: storing a borrowed view (a CachedSlice result, a
// WriteStable argument, a pooled payload) into longer-lived state,
// capturing it in a spawned closure, or growing it with append is a
// finding. Likewise detlint/globalrand keeps every rng seed-derived and
// detlint/maprange keeps map-iteration order out of anything
// observable; `go run ./cmd/detlint ./...` runs the whole suite.
//
// The emulator is a fluid model at a configurable pacing quantum
// (default 20 ms of line time per delivery segment): transfer durations,
// per-request round trips and slow-start ramps are exact at quantum
// granularity, which is far finer than the chunk sizes (16 KB..1 MB)
// scheduled by the systems under test.
package netem
