package netem

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
)

// This file holds the sharded hierarchical timer wheel backing the
// virtual clock's deadline scheduling. The previous implementation kept
// every pending deadline in one mutex-guarded container/heap, which
// serialised every park in the emulator — client sleeps, pacing ticks,
// segment arrivals, abort watchers — on a single lock and paid O(log n)
// per event. The wheel splits that state across numShards independent
// shards (each participant parks on its own shard, assigned round-robin
// at registration), makes the common park O(1) (an append into a coarse
// time bucket), and exposes a lock-free per-shard earliest-deadline
// summary so the jump loop finds the next instant with one atomic load
// per shard instead of taking any lock.
//
// Layout per shard:
//
//   - wheelBuckets coarse buckets of bucketGran (2^granShift ns ≈ 1 ms)
//     each, covering the wheelHorizon (~268 ms) ahead of the last jump.
//     A deadline d lives in bucket index d>>granShift; the bucket slot
//     is that index mod wheelBuckets, which is bijective inside the
//     horizon. A bitmap of non-empty slots makes "first pending bucket"
//     a couple of bits.TrailingZeros64 calls.
//   - an overflow min-heap (ordered by (deadline, seq), exactly the
//     retired global heap's order) for deadlines beyond the horizon:
//     session arrival spreads, playout drains, idle timeouts. As the
//     wheel advances, overflow entries whose deadline comes within the
//     horizon are re-homed into buckets, so each far deadline pays its
//     O(log n) once and the steady-state hot path (segment arrivals,
//     pacing ticks — all well inside the horizon) never touches the
//     heap.
//   - earliest: an atomic copy of the shard's minimum pending deadline
//     (sleeperNone when the shard is empty), maintained on every push
//     and pop. The jump loop's "what is the next instant" scan is
//     numShards atomic loads, no locks.
//
// Ordering: the wheel does not keep buckets internally sorted — the
// jump loop collects every sleeper due at the jump instant across all
// shards into one batch and sorts that batch by (deadline, seq), the
// exact comparison the retired heap popped in. Firing order is
// therefore bit-identical to the old implementation (the differential
// test in wheel_diff_test.go drives randomized schedules through both).

const (
	// shardBits/numShards: shard count for participant-affine sharding.
	// A small power of two: enough to spread lock traffic at fleet
	// populations, cheap enough that the per-jump earliest scan (one
	// atomic load per shard) stays negligible.
	shardBits = 4
	numShards = 1 << shardBits

	// granShift/bucketGran: level-0 bucket width. 2^20 ns ≈ 1.05 ms is
	// far coarser than the scheduling precision (deadlines keep full ns
	// resolution; buckets only index them) and fine enough that one
	// bucket rarely mixes more than a handful of distinct instants.
	granShift = 20

	// wheelBuckets/wheelHorizon: buckets per shard. 256 × ~1 ms ≈ 268 ms
	// of horizon, comfortably past the emulator's dense deadline band
	// (propagation delays, pacing quanta, server think times), so the
	// overflow heap only sees coarse session-scale waits.
	wheelBuckets = 256
	bucketMask   = wheelBuckets - 1
	bitmapWords  = wheelBuckets / 64

	// sleeperNone is the shard earliest-summary value meaning "empty".
	sleeperNone = math.MaxInt64
)

// sleeper is one pending deadline entry: a parked goroutine's wake
// token target (ch != nil) or a timer callback (fn != nil). Nodes are
// owned by their Participant or Timer and reused across parks, so the
// steady state allocates nothing.
type sleeper struct {
	deadline  int64 // ns offset from the clock base
	seq       int64 // global tiebreaker; preserves retired-heap firing order
	ch        chan struct{}
	fn        func() // timer callback, run on the jump goroutine
	transient bool   // auto-registered for the duration of this sleep
	cancelled bool   // timers only; a cancelled entry never fires
	// queued distinguishes "in a bucket" (removable in place) from "in
	// the overflow heap" (cancelled lazily; the node is abandoned and a
	// reschedule allocates a fresh one). slot is the bucket slot the
	// entry was pushed into (valid while queued == sleeperInBucket).
	// Both are guarded by the shard mutex.
	queued sleeperState
	slot   int32
}

type sleeperState uint8

const (
	sleeperIdle sleeperState = iota
	sleeperInBucket
	sleeperInOverflow
)

// overflowHeap is a min-heap over (deadline, seq) — the retired global
// heap's exact ordering, now holding only beyond-horizon deadlines.
type overflowHeap []*sleeper

func (h overflowHeap) less(i, j int) bool {
	if h[i].deadline != h[j].deadline {
		return h[i].deadline < h[j].deadline
	}
	return h[i].seq < h[j].seq
}

func (h *overflowHeap) push(s *sleeper) {
	*h = append(*h, s)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h).less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *overflowHeap) pop() *sleeper {
	old := *h
	s := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = nil
	*h = old[:n]
	h.siftDown(0)
	return s
}

func (h overflowHeap) siftDown(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

// clockShard is one lock's worth of the wheel. Participants are
// assigned a shard at registration and park on it for life, so a
// session's reusable sleeper node stays on one lock and one set of
// cache lines.
type clockShard struct {
	mu       sync.Mutex
	earliest atomic.Int64 // min pending deadline, sleeperNone when empty

	// base is the bucket index of the last jump instant: every bucketed
	// entry has index in [base, base+wheelBuckets). Guarded by mu.
	base      int64
	bitmap    [bitmapWords]uint64
	bucketIdx [wheelBuckets]int64 // absolute bucket index held by each slot
	buckets   [wheelBuckets][]*sleeper
	overflow  overflowHeap
}

// push enqueues s; the caller holds sh.mu and guarantees s.deadline is
// in the future of the deadlines already popped (modulo the transient
// race documented in Clock.SleepUntil, which pop's <= comparison
// absorbs).
func (sh *clockShard) push(s *sleeper) {
	idx := s.deadline >> granShift
	if idx < sh.base {
		idx = sh.base // stale transient push: due at the next jump
	}
	if idx < sh.base+wheelBuckets {
		slot := int(idx & bucketMask)
		sh.buckets[slot] = append(sh.buckets[slot], s)
		sh.bucketIdx[slot] = idx
		sh.bitmap[slot>>6] |= 1 << uint(slot&63)
		s.queued = sleeperInBucket
		s.slot = int32(slot)
	} else {
		sh.overflow.push(s)
		s.queued = sleeperInOverflow
	}
	if s.deadline < sh.earliest.Load() {
		sh.earliest.Store(s.deadline)
	}
}

// popDue advances the shard to instant t (ns offset), appending every
// pending non-cancelled sleeper with deadline <= t to batch. It re-homes
// overflow entries that came within the new horizon and refreshes the
// shard's earliest summary. Bucket backing arrays are retained across
// jumps (length reset, capacity kept), so steady-state jumps allocate
// nothing. The caller holds the jump lock; popDue takes sh.mu itself.
func (sh *clockShard) popDue(t int64, batch []*sleeper) []*sleeper {
	sh.mu.Lock()
	if sh.earliest.Load() > t {
		// Nothing due here; still advance base so future pushes and
		// re-homes index off the current instant. Safe: no pending
		// deadline is <= t, so no bucketed index is below t's bucket.
		if b := t >> granShift; b > sh.base {
			sh.base = b
		}
		sh.mu.Unlock()
		return batch
	}
	tIdx := t >> granShift
	for w := 0; w < bitmapWords; w++ {
		bm := sh.bitmap[w]
		for bm != 0 {
			slot := w<<6 + bits.TrailingZeros64(bm)
			bm &= bm - 1
			if sh.bucketIdx[slot] > tIdx {
				continue
			}
			b := sh.buckets[slot]
			if sh.bucketIdx[slot] < tIdx {
				// Whole bucket due: every deadline precedes t's bucket.
				for i, s := range b {
					if !s.cancelled {
						s.queued = sleeperIdle
						batch = append(batch, s)
					}
					b[i] = nil
				}
				sh.buckets[slot] = b[:0]
				sh.bitmap[slot>>6] &^= 1 << uint(slot&63)
				continue
			}
			// t's own bucket: split around the exact instant.
			keep := b[:0]
			for _, s := range b {
				switch {
				case s.cancelled:
				case s.deadline <= t:
					s.queued = sleeperIdle
					batch = append(batch, s)
				default:
					keep = append(keep, s)
				}
			}
			for i := len(keep); i < len(b); i++ {
				b[i] = nil
			}
			sh.buckets[slot] = keep
			if len(keep) == 0 {
				sh.bitmap[slot>>6] &^= 1 << uint(slot&63)
			}
		}
	}
	if tIdx > sh.base {
		sh.base = tIdx
	}
	// Overflow: pop everything due, then re-home what the advance
	// brought inside the horizon so it fires from buckets next time.
	for len(sh.overflow) > 0 {
		top := sh.overflow[0]
		if top.cancelled {
			sh.overflow.pop()
			continue
		}
		if top.deadline > t {
			break
		}
		top.queued = sleeperIdle
		batch = append(batch, sh.overflow.pop())
	}
	for len(sh.overflow) > 0 {
		top := sh.overflow[0]
		if top.cancelled {
			sh.overflow.pop()
			continue
		}
		if top.deadline>>granShift >= sh.base+wheelBuckets {
			break
		}
		sh.push(sh.overflow.pop())
	}
	sh.earliest.Store(sh.minPending())
	sh.mu.Unlock()
	return batch
}

// minPending recomputes the shard's earliest pending deadline. Caller
// holds sh.mu. The minimum bucketed deadline lives in the slot with the
// lowest absolute bucket index (bucket index is deadline>>granShift, so
// bucket order is deadline order at bucket granularity); within that
// slot a linear scan finds it. Cancelled overflow tops are discarded on
// the way.
func (sh *clockShard) minPending() int64 {
	min := int64(sleeperNone)
	bestIdx := int64(sleeperNone)
	bestSlot := -1
	for w := 0; w < bitmapWords; w++ {
		bm := sh.bitmap[w]
		for bm != 0 {
			slot := w<<6 + bits.TrailingZeros64(bm)
			bm &= bm - 1
			if sh.bucketIdx[slot] < bestIdx {
				bestIdx = sh.bucketIdx[slot]
				bestSlot = slot
			}
		}
	}
	if bestSlot >= 0 {
		for _, s := range sh.buckets[bestSlot] {
			if !s.cancelled && s.deadline < min {
				min = s.deadline
			}
		}
	}
	for len(sh.overflow) > 0 && sh.overflow[0].cancelled {
		sh.overflow.pop()
	}
	if len(sh.overflow) > 0 && sh.overflow[0].deadline < min {
		min = sh.overflow[0].deadline
	}
	return min
}

// cancel removes a queued timer entry. Bucketed entries are removed in
// place (the node is immediately reusable); overflow entries are marked
// and swept lazily by popDue/minPending, and the node is abandoned to
// the heap (reported via the false return, so the owner re-allocates on
// the next schedule). Caller holds sh.mu.
func (sh *clockShard) cancel(s *sleeper) (reusable bool) {
	switch s.queued {
	case sleeperInBucket:
		slot := int(s.slot)
		b := sh.buckets[slot]
		for i, e := range b {
			if e == s {
				last := len(b) - 1
				b[i] = b[last]
				b[last] = nil
				sh.buckets[slot] = b[:last]
				break
			}
		}
		if len(sh.buckets[slot]) == 0 {
			sh.bitmap[slot>>6] &^= 1 << uint(slot&63)
		}
		s.queued = sleeperIdle
		if s.deadline <= sh.earliest.Load() {
			sh.earliest.Store(sh.minPending())
		}
		return true
	case sleeperInOverflow:
		s.cancelled = true
		if s.deadline <= sh.earliest.Load() {
			sh.earliest.Store(sh.minPending())
		}
		return false
	default:
		return true
	}
}

// reset drops every pending entry (Clock.Stop): parked waiters are woken
// through the clock's done channel instead.
func (sh *clockShard) reset() {
	sh.mu.Lock()
	for slot := range sh.buckets {
		b := sh.buckets[slot]
		for i := range b {
			b[i] = nil
		}
		sh.buckets[slot] = b[:0]
	}
	for i := range sh.bitmap {
		sh.bitmap[i] = 0
	}
	for i := range sh.overflow {
		sh.overflow[i] = nil
	}
	sh.overflow = sh.overflow[:0]
	sh.earliest.Store(sleeperNone)
	sh.mu.Unlock()
}

// sleeperBatch sorts a jump batch by (deadline, seq) — the retired
// heap's pop order — so same-instant wakes fan out in the exact
// sequence the old implementation produced.
type sleeperBatch []*sleeper

func (b *sleeperBatch) Len() int { return len(*b) }
func (b *sleeperBatch) Less(i, j int) bool {
	s, t := (*b)[i], (*b)[j]
	if s.deadline != t.deadline {
		return s.deadline < t.deadline
	}
	return s.seq < t.seq
}
func (b *sleeperBatch) Swap(i, j int) { (*b)[i], (*b)[j] = (*b)[j], (*b)[i] }
