package netem

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

func newTestNet(t *testing.T) (*Network, *Clock) {
	t.Helper()
	clock := NewVirtualClock()
	t.Cleanup(clock.Stop)
	return NewNetwork(clock), clock
}

func TestDialChargesOneRTT(t *testing.T) {
	n, clock := newTestNet(t)
	l, err := n.Listen("srv.test:80", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err == nil {
			c.Close()
		}
	}()
	iface := n.NewInterface("wifi", LinkParams{Rate: Mbps(10), Delay: 25 * time.Millisecond}, LinkParams{Rate: Mbps(10), Delay: 25 * time.Millisecond})
	start := clock.Now()
	c, err := iface.DialContext(context.Background(), "tcp", "srv.test:80")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if hs := clock.Now().Sub(start); hs < 50*time.Millisecond || hs > 80*time.Millisecond {
		t.Fatalf("3WHS took %v, want ~50ms", hs)
	}
}

func TestDialUnknownAddressRefused(t *testing.T) {
	n, _ := newTestNet(t)
	iface := n.NewInterface("wifi", LinkParams{Rate: Mbps(10), Delay: time.Millisecond}, LinkParams{Rate: Mbps(10), Delay: time.Millisecond})
	if _, err := iface.DialContext(context.Background(), "tcp", "nobody.test:80"); err == nil {
		t.Fatal("dial to unregistered address succeeded")
	}
}

func TestInterfaceDownAbortsConns(t *testing.T) {
	n, _ := newTestNet(t)
	l, _ := n.Listen("srv.test:80", 0)
	defer l.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	iface := n.NewInterface("wifi", LinkParams{Rate: Mbps(10), Delay: time.Millisecond}, LinkParams{Rate: Mbps(10), Delay: time.Millisecond})
	c, err := iface.DialContext(context.Background(), "tcp", "srv.test:80")
	if err != nil {
		t.Fatal(err)
	}
	<-accepted

	errCh := make(chan error, 1)
	go func() {
		_, err := c.Read(make([]byte, 1))
		errCh <- err
	}()
	time.Sleep(5 * time.Millisecond) //detlint:allow wallclock -- real sleep lets goroutines park before asserting waiter accounting
	iface.SetAlive(false)
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrInterfaceDown) {
			t.Fatalf("read error = %v, want ErrInterfaceDown", err)
		}
	case <-time.After(2 * time.Second): //detlint:allow wallclock -- test watchdog against emulator deadlock runs on wall time
		t.Fatal("interface down did not abort read")
	}
	if _, err := iface.DialContext(context.Background(), "tcp", "srv.test:80"); !errors.Is(err, ErrInterfaceDown) {
		t.Fatalf("dial on dead interface error = %v, want ErrInterfaceDown", err)
	}
	iface.SetAlive(true)
	c2, err := iface.DialContext(context.Background(), "tcp", "srv.test:80")
	if err != nil {
		t.Fatalf("dial after recovery: %v", err)
	}
	c2.Close()
}

func TestListenerCloseKillsConns(t *testing.T) {
	n, _ := newTestNet(t)
	l, _ := n.Listen("srv.test:80", 0)
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	iface := n.NewInterface("wifi", LinkParams{Rate: Mbps(10), Delay: time.Millisecond}, LinkParams{Rate: Mbps(10), Delay: time.Millisecond})
	c, err := iface.DialContext(context.Background(), "tcp", "srv.test:80")
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Read(make([]byte, 1))
		errCh <- err
	}()
	time.Sleep(5 * time.Millisecond) //detlint:allow wallclock -- real sleep lets goroutines park before asserting waiter accounting
	l.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrServerDown) {
			t.Fatalf("read error = %v, want ErrServerDown", err)
		}
	case <-time.After(2 * time.Second): //detlint:allow wallclock -- test watchdog against emulator deadlock runs on wall time
		t.Fatal("listener close did not abort conns")
	}
	// Address is released for reuse.
	if _, err := n.Listen("srv.test:80", 0); err != nil {
		t.Fatalf("re-listen after close: %v", err)
	}
}

func TestDuplicateListenRejected(t *testing.T) {
	n, _ := newTestNet(t)
	if _, err := n.Listen("srv.test:80", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("srv.test:80", 0); err == nil {
		t.Fatal("duplicate listen succeeded")
	}
}

// TestHTTPOverNetem runs a real net/http server and client over the
// emulator and checks both correctness and that per-request timing
// reflects the configured RTT.
func TestHTTPOverNetem(t *testing.T) {
	n, clock := newTestNet(t)
	l, _ := n.Listen("web.test:80", 0)
	defer l.Close()

	mux := http.NewServeMux()
	payload := make([]byte, 200<<10)
	mux.HandleFunc("/blob", func(w http.ResponseWriter, r *http.Request) {
		w.Write(payload)
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(l)
	defer srv.Close()

	iface := n.NewInterface("wifi",
		LinkParams{Rate: Mbps(8), Delay: 25 * time.Millisecond},
		LinkParams{Rate: Mbps(8), Delay: 25 * time.Millisecond})
	client := &http.Client{Transport: &http.Transport{DialContext: iface.DialContext}}

	start := clock.Now()
	resp, err := client.Get("http://web.test/blob")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != len(payload) {
		t.Fatalf("body length = %d, want %d", len(body), len(payload))
	}
	elapsed := clock.Now().Sub(start)
	// 3WHS (50 ms) + request RTT (50 ms) + 200 KiB at 1 MB/s (~205 ms).
	want := 300 * time.Millisecond
	if elapsed < want*8/10 || elapsed > want*16/10 {
		t.Fatalf("HTTP GET took %v, want ~%v", elapsed, want)
	}

	// Second request on the kept-alive conn skips the handshake.
	start = clock.Now()
	resp, err = client.Get("http://web.test/blob")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	second := clock.Now().Sub(start)
	if second >= elapsed {
		t.Fatalf("keep-alive request (%v) not faster than cold request (%v)", second, elapsed)
	}
}

func TestHTTPRangeRequestsOverNetem(t *testing.T) {
	n, _ := newTestNet(t)
	l, _ := n.Listen("web.test:80", 0)
	defer l.Close()

	content := make([]byte, 100<<10)
	for i := range content {
		content[i] = byte(i * 31)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v", func(w http.ResponseWriter, r *http.Request) {
		http.ServeContent(w, r, "v.mp4", time.Unix(0, 0), newSectionReader(content))
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(l)
	defer srv.Close()

	iface := n.NewInterface("wifi",
		LinkParams{Rate: Mbps(20), Delay: 5 * time.Millisecond},
		LinkParams{Rate: Mbps(20), Delay: 5 * time.Millisecond})
	client := &http.Client{Transport: &http.Transport{DialContext: iface.DialContext}}

	req, _ := http.NewRequest("GET", "http://web.test/v", nil)
	req.Header.Set("Range", "bytes=1000-1999")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("status = %d, want 206", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if len(body) != 1000 {
		t.Fatalf("range body length = %d, want 1000", len(body))
	}
	for i, b := range body {
		if b != content[1000+i] {
			t.Fatalf("range byte %d = %d, want %d", i, b, content[1000+i])
		}
	}
}

func newSectionReader(b []byte) io.ReadSeeker {
	return io.NewSectionReader(byteReaderAt(b), 0, int64(len(b)))
}

type byteReaderAt []byte

func (b byteReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(b)) {
		return 0, io.EOF
	}
	n := copy(p, b[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func TestManyParallelConns(t *testing.T) {
	n, _ := newTestNet(t)
	l, _ := n.Listen("srv.test:80", 0)
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				io.Copy(c, c) // echo
				c.Close()
			}(c)
		}
	}()
	iface := n.NewInterface("wifi", LinkParams{Rate: Mbps(50), Delay: 2 * time.Millisecond}, LinkParams{Rate: Mbps(50), Delay: 2 * time.Millisecond})
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			c, err := iface.DialContext(context.Background(), "tcp", "srv.test:80")
			if err != nil {
				done <- err
				return
			}
			msg := fmt.Sprintf("conn-%d-payload", i)
			c.Write([]byte(msg))
			buf := make([]byte, len(msg))
			if _, err := io.ReadFull(c, buf); err != nil {
				done <- err
				return
			}
			c.Close()
			if string(buf) != msg {
				done <- fmt.Errorf("echo mismatch: %q", buf)
				return
			}
			done <- nil
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
