package netem

import (
	"container/heap"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// This file differentially tests the sharded timer wheel against the
// retired implementation it replaced: one global container/heap ordered
// by (deadline, seq). The virtual clock's determinism contract says the
// wheel must fire sleepers in exactly the sequence the heap popped them
// — including same-instant ties, cancellations, and deadlines that
// straddle the bucket horizon — so randomized schedules are driven
// through both structures and the firing sequences compared
// element-by-element across many seeds.

// refHeap is the retired scheduler: the exact sleeperHeap that used to
// live in clock.go, popped in (deadline, seq) order.
type refHeap []*sleeper

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].deadline != h[j].deadline {
		return h[i].deadline < h[j].deadline
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(*sleeper)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return s
}

// refScheduler wraps refHeap with the retired jump-loop semantics:
// min() names the next instant, popDue collects everything due at or
// before it (skipping cancelled entries, as the wheel does).
type refScheduler struct{ h refHeap }

func (r *refScheduler) push(s *sleeper) { heap.Push(&r.h, s) }

func (r *refScheduler) min() int64 {
	for len(r.h) > 0 && r.h[0].cancelled {
		heap.Pop(&r.h)
	}
	if len(r.h) == 0 {
		return sleeperNone
	}
	return r.h[0].deadline
}

func (r *refScheduler) popDue(t int64) []*sleeper {
	var due []*sleeper
	for len(r.h) > 0 && r.h[0].deadline <= t {
		s := heap.Pop(&r.h).(*sleeper)
		if !s.cancelled {
			due = append(due, s)
		}
	}
	return due
}

// wheelScheduler wraps a set of shards with the new jump-loop
// semantics: lock-free earliest summary for min(), per-shard popDue
// merged into one (deadline, seq)-sorted batch — the exact code path
// Clock.collectDue runs, minus the participant accounting.
type wheelScheduler struct {
	shards []*clockShard
}

func newWheelScheduler(n int) *wheelScheduler {
	w := &wheelScheduler{}
	for i := 0; i < n; i++ {
		sh := &clockShard{}
		sh.earliest.Store(sleeperNone)
		w.shards = append(w.shards, sh)
	}
	return w
}

func (w *wheelScheduler) push(shard int, s *sleeper) {
	sh := w.shards[shard%len(w.shards)]
	sh.mu.Lock()
	sh.push(s)
	sh.mu.Unlock()
}

func (w *wheelScheduler) min() int64 {
	min := int64(sleeperNone)
	for _, sh := range w.shards {
		if e := sh.earliest.Load(); e < min {
			min = e
		}
	}
	return min
}

func (w *wheelScheduler) popDue(t int64) []*sleeper {
	var batch sleeperBatch
	for _, sh := range w.shards {
		if sh.earliest.Load() <= t {
			batch = sh.popDue(t, batch)
		}
	}
	sort.Sort(&batch)
	return batch
}

func (w *wheelScheduler) cancel(shard int, s *sleeper) {
	sh := w.shards[shard%len(w.shards)]
	sh.mu.Lock()
	if s.queued != sleeperIdle {
		sh.cancel(s)
	}
	sh.mu.Unlock()
}

// TestWheelMatchesRetiredHeap drives a randomized schedule — parks at
// mixed ranges (same-bucket, cross-bucket, beyond the overflow
// horizon), same-instant ties, and timer cancellations (the abort
// path) — through the retired heap and the sharded wheel, asserting
// identical firing sequences, jump instants, and emptiness across 100
// seeds.
func TestWheelMatchesRetiredHeap(t *testing.T) {
	const (
		seeds      = 100
		opsPerSeed = 400
	)
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ref := &refScheduler{}
		wheel := newWheelScheduler(numShards)

		type entry struct {
			refS, wheelS *sleeper
			shard        int
		}
		var (
			virt int64
			seq  int64
			live []entry
		)
		push := func(deadline int64) {
			seq++
			shard := rng.Intn(numShards)
			// Two nodes with identical ordering keys, one per structure:
			// the structures take ownership of what they queue.
			rs := &sleeper{deadline: deadline, seq: seq}
			ws := &sleeper{deadline: deadline, seq: seq}
			ref.push(rs)
			wheel.push(shard, ws)
			live = append(live, entry{refS: rs, wheelS: ws, shard: shard})
		}
		newDeadline := func() int64 {
			switch rng.Intn(10) {
			case 0, 1, 2: // same-bucket: sub-granularity offsets
				return virt + 1 + rng.Int63n(1<<granShift)
			case 3, 4, 5, 6: // in-horizon: the steady-state band
				return virt + 1 + rng.Int63n(int64(wheelBuckets)<<granShift-1)
			case 7, 8: // beyond the horizon: overflow level
				return virt + (int64(wheelBuckets) << granShift) + rng.Int63n(50*int64(time.Second))
			default: // far future
				return virt + rng.Int63n(500*int64(time.Second))
			}
		}

		for op := 0; op < opsPerSeed; op++ {
			switch k := rng.Intn(10); {
			case k < 5: // park
				d := newDeadline()
				push(d)
				if rng.Intn(3) == 0 { // same-instant tie
					push(d)
				}
			case k < 7 && len(live) > 0: // cancel (abort-watcher reschedule path)
				i := rng.Intn(len(live))
				e := live[i]
				e.refS.cancelled = true
				wheel.cancel(e.shard, e.wheelS)
				live = append(live[:i], live[i+1:]...)
			default: // jump to the next instant and compare firing order
				rmin, wmin := ref.min(), wheel.min()
				if rmin != wmin {
					t.Fatalf("seed %d op %d: next instant diverged: heap %d, wheel %d", seed, op, rmin, wmin)
				}
				if rmin == sleeperNone {
					continue
				}
				virt = rmin
				rdue, wdue := ref.popDue(virt), wheel.popDue(virt)
				if len(rdue) != len(wdue) {
					t.Fatalf("seed %d op %d: batch size diverged at %d: heap %d, wheel %d",
						seed, op, virt, len(rdue), len(wdue))
				}
				for i := range rdue {
					if rdue[i].deadline != wdue[i].deadline || rdue[i].seq != wdue[i].seq {
						t.Fatalf("seed %d op %d: firing order diverged at %d[%d]: heap (%d,%d), wheel (%d,%d)",
							seed, op, virt, i,
							rdue[i].deadline, rdue[i].seq, wdue[i].deadline, wdue[i].seq)
					}
				}
				fired := make(map[int64]bool, len(rdue))
				for _, s := range rdue {
					fired[s.seq] = true
				}
				keep := live[:0]
				for _, e := range live {
					if !fired[e.refS.seq] {
						keep = append(keep, e)
					}
				}
				live = keep
			}
		}
		// Drain both completely: every remaining entry must fire, in
		// the same order, across as many jumps as it takes.
		for {
			rmin, wmin := ref.min(), wheel.min()
			if rmin != wmin {
				t.Fatalf("seed %d drain: next instant diverged: heap %d, wheel %d", seed, rmin, wmin)
			}
			if rmin == sleeperNone {
				break
			}
			virt = rmin
			rdue, wdue := ref.popDue(virt), wheel.popDue(virt)
			if len(rdue) != len(wdue) {
				t.Fatalf("seed %d drain: batch size diverged at %d: heap %d, wheel %d", seed, virt, len(rdue), len(wdue))
			}
			for i := range rdue {
				if rdue[i].seq != wdue[i].seq {
					t.Fatalf("seed %d drain: firing order diverged at %d[%d]", seed, virt, i)
				}
			}
		}
	}
}

// TestTimerFiresAtScheduledInstant pins the goroutine-free timer path:
// the callback runs at exactly the scheduled virtual instant, ordered
// with sleeping participants, and a Stop before the instant suppresses
// it.
func TestTimerFiresAtScheduledInstant(t *testing.T) {
	clock := NewVirtualClock()
	defer clock.Stop()
	start := clock.Now()

	firedAt := make(chan time.Duration, 1)
	done := make(chan struct{})
	// Scheduling happens on a registered goroutine, as in real use: the
	// scheduler is a live participant, so the clock cannot jump until it
	// parks — anchoring the timer to the instant of the schedule.
	clock.Go(func(p *Participant) {
		timer := p.NewTimer(func() { firedAt <- clock.Now().Sub(start) })
		timer.Schedule(start.Add(30 * time.Millisecond))
		p.Sleep(50 * time.Millisecond)
		close(done)
	})
	<-done
	select {
	case d := <-firedAt:
		if d != 30*time.Millisecond {
			t.Fatalf("timer fired at +%v, want +30ms", d)
		}
	default:
		t.Fatal("timer never fired although virtual time passed its instant")
	}
}

// TestTimerStopAndReschedule exercises the cancel paths of the wheel:
// a stopped timer never fires, and rescheduling replaces the pending
// instant (the earliest-abort-wins reschedule in the conn protocol).
func TestTimerStopAndReschedule(t *testing.T) {
	clock := NewVirtualClock()
	defer clock.Stop()
	start := clock.Now()

	var fired []time.Duration
	mu := make(chan struct{}, 1)
	mu <- struct{}{}
	timer := clock.NewTimer(func() {
		<-mu
		fired = append(fired, clock.Now().Sub(start))
		mu <- struct{}{}
	})

	far := clock.NewTimer(func() {
		<-mu
		fired = append(fired, clock.Now().Sub(start))
		mu <- struct{}{}
	})
	stopped := clock.NewTimer(func() { t.Error("stopped timer fired") })

	done := make(chan struct{})
	// All scheduling happens on a registered goroutine (as in real use —
	// otherwise an idle clock jumps to each schedule the moment it is
	// made).
	clock.Go(func(p *Participant) {
		stopped.Schedule(start.Add(10 * time.Millisecond))
		stopped.Stop()

		// Schedule at +40ms, then move earlier to +20ms: only +20ms fires.
		timer.Schedule(start.Add(40 * time.Millisecond))
		timer.Schedule(start.Add(20 * time.Millisecond))

		// A beyond-horizon schedule moved inside the horizon exercises
		// the overflow-abandonment path of cancel.
		far.Schedule(start.Add(10 * time.Second))
		far.Schedule(start.Add(25 * time.Millisecond))

		p.Sleep(60 * time.Millisecond)
		close(done)
	})
	<-done
	<-mu
	defer func() { mu <- struct{}{} }()
	if len(fired) != 2 || fired[0] != 20*time.Millisecond || fired[1] != 25*time.Millisecond {
		t.Fatalf("fired at %v, want [20ms 25ms]", fired)
	}
}

// TestWheelParkAllocs guards the zero-alloc park path: steady-state
// deadline parks of a registered participant — a wheel bucket append
// reusing the participant's node, the jump, and the wake — must not
// allocate, and bucket arrays must be reused across jumps.
func TestWheelParkAllocs(t *testing.T) {
	clock := NewVirtualClock()
	defer clock.Stop()

	result := make(chan float64, 1)
	clock.Go(func(p *Participant) {
		p.Sleep(time.Millisecond) // warm the participant's shard buckets
		result <- testing.AllocsPerRun(200, func() {
			// Mixed distances: same-bucket, cross-bucket, and a re-homed
			// overflow entry all stay on the reused backing arrays.
			p.Sleep(100 * time.Microsecond)
			p.Sleep(3 * time.Millisecond)
		})
	})
	select {
	case avg := <-result:
		if avg > 0 {
			t.Fatalf("steady-state wheel park allocates %.2f times per park pair, want 0", avg)
		}
	case <-time.After(10 * time.Second): //detlint:allow wallclock -- test watchdog against emulator deadlock runs on wall time
		t.Fatal("park loop did not finish")
	}
}
