package netem

import (
	"errors"
	"io"
	"testing"
	"time"
)

// TestConnAbortDeliveredVsDropped pins the conn abort protocol's
// segment rule: an abort scheduled for instant T drops in-flight
// segments arriving strictly after T, while segments that arrived at
// or before T stay deliverable — even when the reader only gets
// scheduled after T — and both endpoints observe the abort error
// exactly from T onward.
func TestConnAbortDeliveredVsDropped(t *testing.T) {
	clock := NewVirtualClock()
	defer clock.Stop()
	errBoom := errors.New("boom")
	// Fast link so transmission time is negligible next to the 10 ms
	// propagation delay: a write at instant w arrives at ~w+10ms.
	p := LinkParams{Rate: Mbps(80), Delay: 10 * time.Millisecond}
	client, server := Pipe(clock, p, p, "c", "s")
	start := clock.Now()
	at := func(off time.Duration) time.Time { return start.Add(off) }

	done := make(chan struct{})
	clock.Go(func(wp *Participant) {
		defer close(done)
		server.Bind(wp)
		// t=0: segment A departs, arriving ~10 ms — before the abort.
		if _, err := server.Write([]byte("delivered-before-abort")); err != nil {
			t.Errorf("write A: %v", err)
		}
		wp.SleepUntil(at(50 * time.Millisecond))
		// t=50ms: schedule the abort for t=60ms.
		client.AbortAt(at(60*time.Millisecond), errBoom)
		wp.SleepUntil(at(55 * time.Millisecond))
		// t=55ms: before the abort instant, so the write is accepted —
		// but its segment would arrive ~65 ms > T, so it is dropped in
		// flight by rule.
		if _, err := server.Write([]byte("dropped-at-abort")); err != nil {
			t.Errorf("write B at t=55ms (before abort instant): %v", err)
		}
		wp.SleepUntil(at(70 * time.Millisecond))
		// t=70ms: past the abort instant; the writer sees the error.
		if _, err := server.Write([]byte("x")); err != errBoom {
			t.Errorf("write C after abort instant: err = %v, want errBoom", err)
		}
	})
	<-done

	// The reader runs long after the abort instant: segment A arrived
	// before T and must still be delivered; segment B must not; then the
	// scheduled error surfaces.
	buf := make([]byte, 64)
	n, err := client.Read(buf)
	if err != nil {
		t.Fatalf("read delivered segment: %v", err)
	}
	if got := string(buf[:n]); got != "delivered-before-abort" {
		t.Fatalf("read %q, want the pre-abort segment", got)
	}
	if _, err := client.Read(buf); err != errBoom {
		t.Fatalf("read after drain: err = %v, want errBoom", err)
	}
	// A later re-schedule must not override the earliest abort.
	client.Abort(errors.New("too late"))
	if _, err := client.Read(buf); err != errBoom {
		t.Fatalf("read after redundant abort: err = %v, want errBoom (earliest wins)", err)
	}
}

// TestConnImmediateAbortDrainsArrivedData pins the immediate-abort
// case: Abort(err) at instant T keeps data that had already arrived
// (but was not yet read) deliverable, then surfaces err.
func TestConnImmediateAbortDrainsArrivedData(t *testing.T) {
	clock := NewVirtualClock()
	defer clock.Stop()
	errDown := errors.New("down")
	p := LinkParams{Rate: Mbps(80), Delay: 10 * time.Millisecond}
	client, server := Pipe(clock, p, p, "c", "s")

	done := make(chan struct{})
	clock.Go(func(wp *Participant) {
		defer close(done)
		server.Bind(wp)
		if _, err := server.Write([]byte("tail")); err != nil {
			t.Errorf("write: %v", err)
		}
		wp.Sleep(50 * time.Millisecond) // segment arrives at ~10 ms
		client.Abort(errDown)           // t=50ms: arrived data survives
	})
	<-done

	got, err := io.ReadAll(client)
	if err != errDown {
		t.Fatalf("read error = %v, want errDown", err)
	}
	if string(got) != "tail" {
		t.Fatalf("pre-abort data = %q, want %q", got, "tail")
	}
}
