package netem

import (
	"sync"
	"testing"
	"time"
)

func TestVirtualClockAdvancesToDeadline(t *testing.T) {
	c := NewVirtualClock()
	defer c.Stop()

	start := c.Now()
	real := time.Now()
	c.Sleep(10 * time.Second) // emulated
	if wall := time.Since(real); wall > 2*time.Second {
		t.Fatalf("virtual 10s sleep took %v of wall time", wall)
	}
	if got := c.Now().Sub(start); got < 10*time.Second {
		t.Fatalf("clock advanced only %v, want >= 10s", got)
	}
}

func TestVirtualClockOrdersConcurrentSleepers(t *testing.T) {
	c := NewVirtualClock()
	defer c.Stop()

	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	base := c.Now()
	delays := []time.Duration{300 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond}
	for i, d := range delays {
		wg.Add(1)
		go func(i int, d time.Duration) {
			defer wg.Done()
			c.SleepUntil(base.Add(d))
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}(i, d)
	}
	wg.Wait()
	want := []int{1, 2, 0} // by ascending deadline
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order = %v, want %v", order, want)
		}
	}
}

func TestVirtualClockNowMonotonic(t *testing.T) {
	c := NewVirtualClock()
	defer c.Stop()
	prev := c.Now()
	for i := 0; i < 50; i++ {
		c.Sleep(time.Duration(i%7+1) * time.Millisecond)
		now := c.Now()
		if now.Before(prev) {
			t.Fatalf("clock went backwards: %v -> %v", prev, now)
		}
		prev = now
	}
}

func TestScaledClockCompressesSleep(t *testing.T) {
	c := NewScaledClock(100)
	defer c.Stop()
	real := time.Now()
	c.Sleep(time.Second) // emulated 1s -> ~10ms real
	wall := time.Since(real)
	if wall < 5*time.Millisecond || wall > 500*time.Millisecond {
		t.Fatalf("scaled sleep wall time = %v, want ~10ms", wall)
	}
	if got := c.Now().Sub(c.base); got < time.Second {
		t.Fatalf("emulated elapsed = %v, want >= 1s", got)
	}
}

func TestClockStopWakesSleepers(t *testing.T) {
	c := NewVirtualClock()
	done := make(chan struct{})
	go func() {
		c.SleepUntil(c.Now().Add(time.Hour))
		close(done)
	}()
	time.Sleep(5 * time.Millisecond)
	c.Stop()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("sleeper not released by Stop")
	}
}

func TestSleepUntilPastReturnsImmediately(t *testing.T) {
	c := NewVirtualClock()
	defer c.Stop()
	done := make(chan struct{})
	go func() {
		c.SleepUntil(c.Now().Add(-time.Minute))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("SleepUntil in the past blocked")
	}
}
