package netem

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestVirtualClockAdvancesToDeadline(t *testing.T) {
	c := NewVirtualClock()
	defer c.Stop()

	start := c.Now()
	real := time.Now()                                  //detlint:allow wallclock -- asserts the virtual run needs negligible wall time
	c.Sleep(10 * time.Second)                           // emulated
	if wall := time.Since(real); wall > 2*time.Second { //detlint:allow wallclock -- asserts the virtual run needs negligible wall time
		t.Fatalf("virtual 10s sleep took %v of wall time", wall)
	}
	if got := c.Now().Sub(start); got < 10*time.Second {
		t.Fatalf("clock advanced only %v, want >= 10s", got)
	}
}

func TestVirtualClockOrdersConcurrentSleepers(t *testing.T) {
	c := NewVirtualClock()
	defer c.Stop()

	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	base := c.Now()
	delays := []time.Duration{300 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond}
	for i, d := range delays {
		i, d := i, d
		wg.Add(1)
		// Clock.Go registers each sleeper before any of them can park,
		// so no deadline fires until all three are asleep.
		c.Go(func(p *Participant) {
			defer wg.Done()
			p.SleepUntil(base.Add(d))
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		})
	}
	wg.Wait()
	want := []int{1, 2, 0} // by ascending deadline
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order = %v, want %v", order, want)
		}
	}
}

func TestVirtualClockNowMonotonic(t *testing.T) {
	c := NewVirtualClock()
	defer c.Stop()
	prev := c.Now()
	for i := 0; i < 50; i++ {
		c.Sleep(time.Duration(i%7+1) * time.Millisecond)
		now := c.Now()
		if now.Before(prev) {
			t.Fatalf("clock went backwards: %v -> %v", prev, now)
		}
		prev = now
	}
}

func TestScaledClockCompressesSleep(t *testing.T) {
	c := NewScaledClock(100)
	defer c.Stop()
	real := time.Now()       //detlint:allow wallclock -- test measures wall-clock elapsed time on purpose
	c.Sleep(time.Second)     // emulated 1s -> ~10ms real
	wall := time.Since(real) //detlint:allow wallclock -- test measures wall-clock elapsed time on purpose
	if wall < 5*time.Millisecond || wall > 500*time.Millisecond {
		t.Fatalf("scaled sleep wall time = %v, want ~10ms", wall)
	}
	if got := c.Now().Sub(c.base); got < time.Second {
		t.Fatalf("emulated elapsed = %v, want >= 1s", got)
	}
}

func TestClockStopWakesSleepers(t *testing.T) {
	c := NewVirtualClock()
	done := make(chan struct{})
	c.Go(func(p *Participant) {
		p.SleepUntil(c.Now().Add(time.Hour))
		close(done)
	})
	time.Sleep(5 * time.Millisecond) //detlint:allow wallclock -- real sleep lets goroutines park before asserting waiter accounting
	c.Stop()
	select {
	case <-done:
	case <-time.After(2 * time.Second): //detlint:allow wallclock -- test watchdog against emulator deadlock runs on wall time
		t.Fatal("sleeper not released by Stop")
	}
}

// TestScaledClockStopInterruptsSleep checks the realtime mode: Stop must
// wake goroutines parked in scaled wall-clock sleeps, or Testbed.Close
// on a RealTimeScale run would leak goroutines stuck in time.Sleep.
func TestScaledClockStopInterruptsSleep(t *testing.T) {
	c := NewScaledClock(1) // plain real time
	done := make(chan struct{})
	go func() {
		c.Sleep(time.Hour)
		close(done)
	}()
	time.Sleep(5 * time.Millisecond) //detlint:allow wallclock -- real sleep lets goroutines park before asserting waiter accounting
	real := time.Now()               //detlint:allow wallclock -- test measures wall-clock elapsed time on purpose
	c.Stop()
	select {
	case <-done:
		if wall := time.Since(real); wall > time.Second { //detlint:allow wallclock -- test measures wall-clock elapsed time on purpose
			t.Fatalf("Stop took %v to interrupt a realtime sleep", wall)
		}
	case <-time.After(2 * time.Second): //detlint:allow wallclock -- test watchdog against emulator deadlock runs on wall time
		t.Fatal("realtime sleeper not released by Stop")
	}
}

func TestSleepUntilPastReturnsImmediately(t *testing.T) {
	c := NewVirtualClock()
	defer c.Stop()
	done := make(chan struct{})
	go func() {
		c.SleepUntil(c.Now().Add(-time.Minute))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second): //detlint:allow wallclock -- test watchdog against emulator deadlock runs on wall time
		t.Fatal("SleepUntil in the past blocked")
	}
}

// TestVirtualClockWaitsForActiveParticipants verifies the waiter
// accounting: a registered participant that is runnable (not parked)
// pins virtual time, even while other participants sleep.
func TestVirtualClockWaitsForActiveParticipants(t *testing.T) {
	c := NewVirtualClock()
	defer c.Stop()

	release := make(chan struct{})
	parked := make(chan struct{})
	var wake time.Time
	var wg sync.WaitGroup
	wg.Add(2)
	c.Go(func(p *Participant) {
		defer wg.Done()
		p.Sleep(50 * time.Millisecond)
		wake = c.Now()
	})
	c.Go(func(*Participant) {
		defer wg.Done()
		close(parked)
		<-release // deliberately invisible: holds the clock still
	})
	<-parked
	//detlint:allow wallclock -- real sleep in real-time mode: no virtual jump may happen
	time.Sleep(20 * time.Millisecond) // real time: no jump may happen
	if got := c.Now().Sub(c.base); got != 0 {
		t.Fatalf("clock advanced %v while a participant was runnable", got)
	}
	close(release)
	wg.Wait()
	if got := wake.Sub(c.base); got != 50*time.Millisecond {
		t.Fatalf("sleeper woke at +%v, want +50ms", got)
	}
}

// TestVirtualClockDeterministicTimestamps runs the same multi-goroutine
// sleep schedule twice and requires bit-identical wake timestamps — the
// property the waiter-accounted clock guarantees and the old
// quiet-polling advancer could not.
func TestVirtualClockDeterministicTimestamps(t *testing.T) {
	run := func() []time.Duration {
		c := NewVirtualClock()
		defer c.Stop()
		var mu sync.Mutex
		var wakes []time.Duration
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			g := g
			wg.Add(1)
			c.Go(func(p *Participant) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(g) + 1))
				for i := 0; i < 25; i++ {
					p.Sleep(time.Duration(rng.Intn(5000)+1) * time.Microsecond)
					mu.Lock()
					wakes = append(wakes, c.Now().Sub(c.base))
					mu.Unlock()
				}
			})
		}
		wg.Wait()
		return wakes
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("wake counts differ: %d vs %d", len(a), len(b))
	}
	// Per-goroutine schedules are independent, so the multiset of wake
	// times must match exactly; the final instant must too.
	counts := map[time.Duration]int{}
	for _, d := range a {
		counts[d]++
	}
	for _, d := range b {
		counts[d]--
	}
	for d, n := range counts {
		if n != 0 {
			t.Fatalf("wake time %v seen %+d more times in first run", d, n)
		}
	}
	if a[len(a)-1] != b[len(b)-1] {
		t.Fatalf("final virtual instants differ: %v vs %v", a[len(a)-1], b[len(b)-1])
	}
}

// TestClockConcurrentRegisterSleepStop hammers registration, sleeping
// and Stop from many goroutines; run with -race. Every sleeper must be
// released, by jump or by Stop.
func TestClockConcurrentRegisterSleepStop(t *testing.T) {
	for round := 0; round < 20; round++ {
		c := NewVirtualClock()
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			g := g
			wg.Add(1)
			c.Go(func(p *Participant) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					p.Sleep(time.Duration(g*7+i%5+1) * time.Millisecond)
				}
			})
			// Unregistered transient sleepers racing with the registered
			// ones and with Stop.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					c.Sleep(time.Duration(i%3+1) * time.Millisecond)
				}
			}()
		}
		if round%2 == 0 {
			time.Sleep(time.Duration(round%5) * time.Millisecond) //detlint:allow wallclock -- real sleep staggers racing participants in wall time
			c.Stop()
		}
		wg.Wait()
		c.Stop()
	}
}

// TestCondWaitReleasedByStop checks that Stop unwedges Cond waiters:
// their wake-up condition may never be signalled once the emulation is
// torn down, so Wait must return false instead of parking forever.
func TestCondWaitReleasedByStop(t *testing.T) {
	c := NewVirtualClock()
	var mu sync.Mutex
	cond := NewCond(c, &mu)
	done := make(chan bool, 1)
	c.Go(func(p *Participant) {
		mu.Lock()
		ok := cond.Wait(p)
		mu.Unlock()
		done <- ok
	})
	time.Sleep(5 * time.Millisecond) //detlint:allow wallclock -- real sleep lets goroutines park before asserting waiter accounting
	c.Stop()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Cond.Wait returned true after Stop")
		}
	case <-time.After(2 * time.Second): //detlint:allow wallclock -- test watchdog against emulator deadlock runs on wall time
		t.Fatal("Cond.Wait not released by Stop")
	}
	// Waiting on an already-stopped clock must not park at all.
	mu.Lock()
	ok := cond.Wait(nil)
	mu.Unlock()
	if ok {
		t.Fatal("Cond.Wait on a stopped clock returned true")
	}
}

// TestCondSignalTransfersCredit checks the Cond handoff: a consumer
// parked on a Cond must not be jumped over once signalled, so a
// producer-consumer pair observes production and consumption at the
// same virtual instant.
func TestCondSignalTransfersCredit(t *testing.T) {
	c := NewVirtualClock()
	defer c.Stop()

	var mu sync.Mutex
	cond := NewCond(c, &mu)
	ready := false
	var consumedAt time.Time
	var producedAt time.Time
	var wg sync.WaitGroup
	wg.Add(2)
	c.Go(func(p *Participant) {
		defer wg.Done()
		mu.Lock()
		for !ready {
			cond.Wait(p)
		}
		mu.Unlock()
		consumedAt = c.Now()
		p.Sleep(time.Millisecond)
	})
	c.Go(func(p *Participant) {
		defer wg.Done()
		p.Sleep(10 * time.Millisecond)
		mu.Lock()
		ready = true
		producedAt = c.Now()
		cond.Signal()
		mu.Unlock()
		// A second sleeper with a nearer deadline than anything the
		// consumer will set: if the signal failed to transfer credit,
		// the clock could jump here before the consumer reads Now.
		p.Sleep(time.Microsecond)
	})
	wg.Wait()
	if !consumedAt.Equal(producedAt) {
		t.Fatalf("consumer observed %v, producer signalled at %v",
			consumedAt.Sub(c.base), producedAt.Sub(c.base))
	}
}

// TestStopFreezesNow pins the post-teardown time contract: once Stop
// has run, Now returns the stop instant forever, in both clock modes —
// so accessors consulted after teardown (player buffer levels, metrics
// of cancelled sessions) read one stable emulated time instead of a
// wall clock that keeps running.
func TestStopFreezesNow(t *testing.T) {
	c := NewScaledClock(1000)        // 1 ms wall ≈ 1 s emulated: drift is obvious
	time.Sleep(2 * time.Millisecond) //detlint:allow wallclock -- real sleep lets goroutines park before asserting waiter accounting
	c.Stop()
	frozen := c.Now()
	time.Sleep(5 * time.Millisecond) //detlint:allow wallclock -- real sleep lets goroutines park before asserting waiter accounting
	if !c.Now().Equal(frozen) {
		t.Fatalf("scaled clock advanced after Stop: %v -> %v", frozen, c.Now())
	}

	v := NewVirtualClock()
	v.Go(func(p *Participant) { p.Sleep(3 * time.Second) })
	v.Sleep(time.Second)
	v.Stop()
	vf := v.Now()
	if got := v.Now(); !got.Equal(vf) {
		t.Fatalf("virtual clock moved after Stop: %v -> %v", vf, got)
	}
}
