package netem

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netem/trace"
)

// transferTime sends size bytes through a fresh pipe with the given params
// and returns the emulated duration from first write to full read.
func transferTime(t *testing.T, size int, p LinkParams) time.Duration {
	t.Helper()
	clock := NewVirtualClock()
	defer clock.Stop()
	client, server := Pipe(clock, p, p, "c", "s")
	start := clock.Now()
	go func() {
		buf := make([]byte, size)
		if _, err := server.Write(buf); err != nil {
			t.Errorf("write: %v", err)
		}
		server.Close()
	}()
	n, err := io.Copy(io.Discard, client)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if int(n) != size {
		t.Fatalf("read %d bytes, want %d", n, size)
	}
	return clock.Now().Sub(start)
}

func TestPipeTransferTimeMatchesRatePlusDelay(t *testing.T) {
	p := LinkParams{Rate: Mbps(8), Delay: 25 * time.Millisecond} // 1 MB/s
	size := 1 << 20                                              // 1 MiB -> ~1.05 s + 25 ms
	got := transferTime(t, size, p)
	want := time.Duration(float64(size)/Mbps(8)*float64(time.Second)) + p.Delay
	if got < want*95/100 || got > want*115/100 {
		t.Fatalf("transfer time = %v, want ~%v", got, want)
	}
}

func TestPipeDelayDominatesSmallTransfer(t *testing.T) {
	p := LinkParams{Rate: Mbps(100), Delay: 40 * time.Millisecond}
	got := transferTime(t, 100, p)
	if got < 40*time.Millisecond || got > 60*time.Millisecond {
		t.Fatalf("small transfer time = %v, want ~40ms", got)
	}
}

func TestPipeSlowStartRampsUp(t *testing.T) {
	base := LinkParams{Rate: Mbps(50), Delay: 25 * time.Millisecond}
	ss := base
	ss.SlowStart = true
	size := 256 << 10
	fast := transferTime(t, size, base)
	ramped := transferTime(t, size, ss)
	if ramped <= fast {
		t.Fatalf("slow start transfer (%v) should exceed unramped (%v)", ramped, fast)
	}
	// The ramp should cost at least one extra RTT for a 256 KB transfer
	// on a 50 Mb/s, 50 ms RTT path (BDP ~312 KB, so most of the transfer
	// happens inside slow start).
	if ramped-fast < 25*time.Millisecond {
		t.Fatalf("slow start penalty only %v, want >= 25ms", ramped-fast)
	}
}

func TestPipeLossAddsPenalty(t *testing.T) {
	base := LinkParams{Rate: Mbps(8), Delay: 25 * time.Millisecond, Seed: 42}
	lossy := base
	lossy.LossProb = 0.02
	clean := transferTime(t, 512<<10, base)
	withLoss := transferTime(t, 512<<10, lossy)
	if withLoss <= clean {
		t.Fatalf("lossy transfer (%v) should exceed clean (%v)", withLoss, clean)
	}
}

func TestPipeDataIntegrity(t *testing.T) {
	clock := NewVirtualClock()
	defer clock.Stop()
	p := LinkParams{Rate: Mbps(20), Delay: 5 * time.Millisecond, Jitter: 2 * time.Millisecond, Seed: 7}
	client, server := Pipe(clock, p, p, "c", "s")

	payload := make([]byte, 300<<10)
	rand.New(rand.NewSource(1)).Read(payload)
	go func() {
		// Write in odd-sized slabs to exercise segmentation.
		for off := 0; off < len(payload); {
			n := 777
			if off+n > len(payload) {
				n = len(payload) - off
			}
			if _, err := server.Write(payload[off : off+n]); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			off += n
		}
		server.Close()
	}()
	got, err := io.ReadAll(client)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted: got %d bytes, want %d", len(got), len(payload))
	}
}

func TestPipeBidirectional(t *testing.T) {
	clock := NewVirtualClock()
	defer clock.Stop()
	p := LinkParams{Rate: Mbps(10), Delay: 10 * time.Millisecond}
	client, server := Pipe(clock, p, p, "c", "s")

	go func() {
		buf := make([]byte, 5)
		if _, err := io.ReadFull(server, buf); err != nil {
			t.Errorf("server read: %v", err)
			return
		}
		server.Write(append([]byte("re:"), buf...))
		server.Close()
	}()
	client.Write([]byte("hello"))
	got, err := io.ReadAll(client)
	if err != nil {
		t.Fatalf("client read: %v", err)
	}
	if string(got) != "re:hello" {
		t.Fatalf("echo = %q", got)
	}
}

func TestPipeCloseDrainsThenEOF(t *testing.T) {
	clock := NewVirtualClock()
	defer clock.Stop()
	p := LinkParams{Rate: Mbps(8), Delay: 20 * time.Millisecond}
	client, server := Pipe(clock, p, p, "c", "s")
	server.Write([]byte("tail data"))
	server.Close()
	got, err := io.ReadAll(client)
	if err != nil {
		t.Fatalf("read after close: %v", err)
	}
	if string(got) != "tail data" {
		t.Fatalf("got %q, want %q", got, "tail data")
	}
}

func TestPipeAbortSurfacesError(t *testing.T) {
	clock := NewVirtualClock()
	defer clock.Stop()
	p := LinkParams{Rate: Mbps(8), Delay: 20 * time.Millisecond}
	client, server := Pipe(clock, p, p, "c", "s")
	errCh := make(chan error, 1)
	go func() {
		buf := make([]byte, 10)
		_, err := client.Read(buf)
		errCh <- err
	}()
	time.Sleep(5 * time.Millisecond) //detlint:allow wallclock -- real sleep lets goroutines park before asserting waiter accounting
	server.Abort(ErrServerDown)
	select {
	case err := <-errCh:
		if err != ErrServerDown {
			t.Fatalf("read error = %v, want ErrServerDown", err)
		}
	case <-time.After(2 * time.Second): //detlint:allow wallclock -- test watchdog against emulator deadlock runs on wall time
		t.Fatal("abort did not wake reader")
	}
}

func TestPipeSendBufferBlocksWriter(t *testing.T) {
	clock := NewVirtualClock()
	defer clock.Stop()
	p := LinkParams{Rate: Mbps(1), Delay: 10 * time.Millisecond, SendBuf: 64 << 10}
	client, server := Pipe(clock, p, p, "c", "s")

	wrote := make(chan struct{})
	go func() {
		buf := make([]byte, 512<<10) // far larger than SendBuf
		server.Write(buf)
		close(wrote)
	}()
	select {
	case <-wrote:
		t.Fatal("writer did not block on full send buffer")
	case <-time.After(50 * time.Millisecond): //detlint:allow wallclock -- short real wait proves the write stays blocked
	}
	go io.Copy(io.Discard, client)
	select {
	case <-wrote:
	case <-time.After(5 * time.Second): //detlint:allow wallclock -- test watchdog against emulator deadlock runs on wall time
		t.Fatal("writer never unblocked while reader drained")
	}
}

func TestPipeArrivalsFIFO(t *testing.T) {
	// Property: with jitter and loss enabled, bytes still arrive in order.
	f := func(seed int64, sizes []uint16) bool {
		if len(sizes) == 0 || len(sizes) > 20 {
			return true
		}
		clock := NewVirtualClock()
		defer clock.Stop()
		p := LinkParams{
			Rate: Mbps(10), Delay: 5 * time.Millisecond,
			Jitter: 10 * time.Millisecond, LossProb: 0.05, Seed: seed,
		}
		client, server := Pipe(clock, p, p, "c", "s")
		var want []byte
		go func() {
			b := byte(0)
			for _, s := range sizes {
				n := int(s)%4096 + 1
				chunk := bytes.Repeat([]byte{b}, n)
				server.Write(chunk)
				b++
			}
			server.Close()
		}()
		b := byte(0)
		for _, s := range sizes {
			n := int(s)%4096 + 1
			want = append(want, bytes.Repeat([]byte{b}, n)...)
			b++
		}
		got, err := io.ReadAll(client)
		return err == nil && bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceOutageStallsTransfer(t *testing.T) {
	clock := NewVirtualClock()
	defer clock.Stop()
	start := clock.Now()
	p := LinkParams{
		Trace: trace.Outage(trace.Constant(Mbps(8)), start.Add(100*time.Millisecond), 2*time.Second),
		Delay: 10 * time.Millisecond,
	}
	client, server := Pipe(clock, p, p, "c", "s")
	go func() {
		server.Write(make([]byte, 1<<20))
		server.Close()
	}()
	io.Copy(io.Discard, client)
	elapsed := clock.Now().Sub(start)
	if elapsed < 2*time.Second {
		t.Fatalf("transfer finished in %v despite a 2s outage", elapsed)
	}
}
