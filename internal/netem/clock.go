package netem

import (
	"container/heap"
	"runtime"
	"sync"
	"time"
)

// Clock is the time source for an emulated network. All emulated delays
// (propagation, pacing, server think time, playout draining) must be
// expressed through a Clock so that virtual and scaled-real-time modes
// behave identically apart from wall-clock duration.
//
// In virtual mode the Clock is a deterministic discrete-event scheduler
// driven by waiter accounting: every emulation participant registers
// (Register / Go), parks only through clock-visible primitives (Sleep,
// SleepUntil, Cond.Wait), and the moment every registered participant is
// parked the clock jumps straight to the earliest pending deadline. There
// is no background advancer goroutine and no wall-clock polling: virtual
// runs are CPU-bound and their event order is independent of machine
// load.
//
// Goroutines that never registered (tests, example main functions) may
// still call the blocking primitives: they are accounted as transient
// participants for the duration of the park, so casual use "just works",
// at the cost of the determinism guarantee that full registration gives.
type Clock struct {
	mu       sync.Mutex
	virt     time.Duration // current virtual offset from base
	base     time.Time     // virtual epoch
	sleepers sleeperHeap
	seq      int64 // tiebreaker for heap ordering stability

	parts int            // registered participants plus holds
	idle  int            // participants currently parked in clock-visible waits
	regs  map[uint64]int // goroutine id -> registration count

	stopped bool
	done    chan struct{} // closed by Stop; interrupts realtime sleeps

	// realtime mode
	realtime  bool
	scale     float64
	realStart time.Time
}

type sleeper struct {
	deadline  time.Duration
	seq       int64
	ch        chan struct{}
	transient bool // auto-registered for the duration of this sleep
}

type sleeperHeap []*sleeper

func (h sleeperHeap) Len() int { return len(h) }
func (h sleeperHeap) Less(i, j int) bool {
	if h[i].deadline != h[j].deadline {
		return h[i].deadline < h[j].deadline
	}
	return h[i].seq < h[j].seq
}
func (h sleeperHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *sleeperHeap) Push(x any)   { *h = append(*h, x.(*sleeper)) }
func (h *sleeperHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return s
}

// goid returns the current goroutine's id, parsed from the runtime stack
// header ("goroutine N [running]: ..."). Goroutine ids are never reused,
// so registration entries cannot be inherited by unrelated goroutines.
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	var id uint64
	for _, b := range buf[len("goroutine "):n] {
		if b < '0' || b > '9' {
			break
		}
		id = id*10 + uint64(b-'0')
	}
	return id
}

// NewVirtualClock returns a deterministic discrete-event clock. Time only
// advances when every registered participant is parked in a clock-visible
// wait; it then jumps to the earliest pending deadline. Call Stop when
// the emulation is finished.
func NewVirtualClock() *Clock {
	return &Clock{
		base: time.Unix(1_700_000_000, 0), // arbitrary fixed epoch for determinism
		regs: make(map[uint64]int),
		done: make(chan struct{}),
	}
}

// NewScaledClock returns a real-time clock compressed by scale: an
// emulated duration d is slept for d/scale of wall time. scale = 1 gives
// plain real time.
func NewScaledClock(scale float64) *Clock {
	if scale <= 0 {
		scale = 1
	}
	return &Clock{
		base:      time.Now(),
		realtime:  true,
		scale:     scale,
		realStart: time.Now(),
		done:      make(chan struct{}),
	}
}

// Register marks the current goroutine as an emulation participant: the
// virtual clock refuses to jump while any participant is running, so
// everything the goroutine does between parks happens at a frozen
// virtual instant. Registration nests; pair every Register with an
// Unregister on the same goroutine. No-op in realtime mode.
func (c *Clock) Register() {
	if c.realtime {
		return
	}
	g := goid()
	c.mu.Lock()
	if c.regs[g] == 0 {
		c.parts++
	}
	c.regs[g]++
	c.mu.Unlock()
}

// Unregister removes the current goroutine's innermost registration.
func (c *Clock) Unregister() {
	if c.realtime {
		return
	}
	g := goid()
	c.mu.Lock()
	if c.regs[g] > 0 {
		c.regs[g]--
		if c.regs[g] == 0 {
			delete(c.regs, g)
			c.parts--
			c.maybeAdvanceLocked()
		}
	}
	c.mu.Unlock()
}

// Suspend removes the current goroutine's registration entirely —
// across all nesting levels — returning a token for Resume. Use it
// around a wait the clock cannot see (e.g. joining worker goroutines
// whose progress needs virtual time): while suspended the goroutine
// does not hold up jumps, whatever registration depth its callers
// established.
func (c *Clock) Suspend() int {
	if c.realtime {
		return 0
	}
	g := goid()
	c.mu.Lock()
	depth := c.regs[g]
	if depth > 0 {
		delete(c.regs, g)
		c.parts--
		c.maybeAdvanceLocked()
	}
	c.mu.Unlock()
	return depth
}

// Resume restores a registration removed by Suspend.
func (c *Clock) Resume(depth int) {
	if c.realtime || depth <= 0 {
		return
	}
	g := goid()
	c.mu.Lock()
	if c.regs[g] == 0 {
		c.parts++
	}
	c.regs[g] += depth
	c.mu.Unlock()
}

// Hold blocks virtual-time jumps until Release, without registering a
// goroutine. It covers handoff windows where work has been scheduled but
// the goroutine that will perform it has not started executing yet.
func (c *Clock) Hold() {
	if c.realtime {
		return
	}
	c.mu.Lock()
	c.parts++
	c.mu.Unlock()
}

// Release undoes one Hold.
func (c *Clock) Release() {
	if c.realtime {
		return
	}
	c.mu.Lock()
	if c.parts > 0 {
		c.parts--
	}
	c.maybeAdvanceLocked()
	c.mu.Unlock()
}

// Go runs fn on a new goroutine registered with the clock. The clock
// cannot jump between the call and fn starting to execute, so events fn
// schedules are anchored to the virtual instant of the spawn.
func (c *Clock) Go(fn func()) {
	c.Hold()
	go func() {
		c.Register()
		c.Release()
		defer c.Unregister()
		fn()
	}()
}

// Stop terminates the clock. Pending sleepers are woken immediately (in
// both clock modes); the emulation is expected to be torn down
// afterwards.
func (c *Clock) Stop() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	close(c.done)
	for _, s := range c.sleepers {
		close(s.ch)
	}
	c.sleepers = nil
	c.mu.Unlock()
}

// Stopped reports whether Stop has been called. Blocking primitives
// return immediately on a stopped clock, so loops that wait for an
// emulated instant must check this to avoid spinning during teardown.
func (c *Clock) Stopped() bool {
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// Now returns the current emulated time.
func (c *Clock) Now() time.Time {
	if c.realtime {
		real := time.Since(c.realStart)
		return c.base.Add(time.Duration(float64(real) * c.scale))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.base.Add(c.virt)
}

// Sleep blocks for an emulated duration d.
func (c *Clock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.SleepUntil(c.Now().Add(d))
}

// SleepUntil blocks until the emulated instant t. In virtual mode the
// caller becomes a parked waiter with a deadline; in realtime mode it
// sleeps for the scaled wall duration, interruptibly by Stop.
func (c *Clock) SleepUntil(t time.Time) {
	if c.realtime {
		emuLeft := t.Sub(c.Now())
		if emuLeft <= 0 {
			return
		}
		timer := time.NewTimer(time.Duration(float64(emuLeft) / c.scale))
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-c.done:
		}
		return
	}
	g := goid()
	c.mu.Lock()
	deadline := t.Sub(c.base)
	if c.stopped || deadline <= c.virt {
		c.mu.Unlock()
		return
	}
	s := &sleeper{deadline: deadline, seq: c.seq, ch: make(chan struct{}), transient: c.regs[g] == 0}
	c.seq++
	heap.Push(&c.sleepers, s)
	if s.transient {
		c.parts++
	}
	c.idle++
	c.maybeAdvanceLocked()
	c.mu.Unlock()
	<-s.ch
}

// maybeAdvanceLocked jumps virtual time to the earliest pending deadline
// when every participant is parked, waking every sleeper that becomes
// due. Waking a registered sleeper leaves idle < parts, ending the loop
// until that goroutine parks again; a woken transient sleeper vanishes
// from the accounting entirely (it may never touch the clock again), so
// the condition is re-evaluated and further jumps may fire immediately.
// Callers must hold c.mu.
func (c *Clock) maybeAdvanceLocked() {
	for !c.stopped && !c.realtime && c.idle == c.parts && len(c.sleepers) > 0 {
		if earliest := c.sleepers[0].deadline; earliest > c.virt {
			c.virt = earliest
		}
		for len(c.sleepers) > 0 && c.sleepers[0].deadline <= c.virt {
			s := heap.Pop(&c.sleepers).(*sleeper)
			c.idle--
			if s.transient {
				c.parts--
			}
			close(s.ch)
		}
	}
}

// Cond is a clock-aware condition variable: waiting parks the caller in
// a clock-visible state (so virtual time can advance past it), and
// signalling transfers the waiter back to the running state before the
// signaller can park, closing the wake-up race that would otherwise let
// the clock jump over a goroutine that is about to resume.
//
// Usage mirrors sync.Cond, with one extra rule: Signal and Broadcast
// must also be called with L held. A nil clock degrades to plain
// condition-variable behaviour (used by unit tests that exercise data
// structures without an emulation clock).
type Cond struct {
	clock   *Clock
	L       sync.Locker
	waiters []condWaiter
}

type condWaiter struct {
	ch        chan struct{}
	transient bool
	accounted bool
}

// NewCond returns a Cond bound to clock whose Wait/Signal/Broadcast are
// guarded by l. clock may be nil.
func NewCond(clock *Clock, l sync.Locker) *Cond {
	return &Cond{clock: clock, L: l}
}

// Wait atomically unlocks L and parks until woken by Signal or
// Broadcast, then relocks L before returning. Unlike sync.Cond there
// are no spurious wakeups, but callers should still re-check their
// predicate in a loop.
//
// Wait returns false when the clock has been stopped (at entry, or
// while parked): the wait's wake-up condition may never be signalled
// once the emulation is torn down, so callers must treat false as an
// abort rather than re-checking and waiting again.
func (cv *Cond) Wait() bool {
	w := condWaiter{ch: make(chan struct{})}
	var stopCh <-chan struct{}
	if c := cv.clock; c != nil {
		stopCh = c.done
		if c.realtime {
			if c.Stopped() {
				return false
			}
		} else {
			g := goid()
			c.mu.Lock()
			if c.stopped {
				c.mu.Unlock()
				return false
			}
			w.transient = c.regs[g] == 0
			if w.transient {
				c.parts++
			}
			c.idle++
			w.accounted = true
			c.maybeAdvanceLocked()
			c.mu.Unlock()
		}
	}
	cv.waiters = append(cv.waiters, w)
	cv.L.Unlock()
	ok := true
	select {
	case <-w.ch:
	case <-stopCh: // nil (blocks forever) when no clock is attached
		ok = false
	}
	cv.L.Lock()
	return ok
}

// Signal wakes the longest-waiting goroutine, if any. L must be held.
func (cv *Cond) Signal() {
	if len(cv.waiters) == 0 {
		return
	}
	w := cv.waiters[0]
	cv.waiters = cv.waiters[1:]
	cv.wake(w)
}

// Broadcast wakes every waiter. L must be held.
func (cv *Cond) Broadcast() {
	ws := cv.waiters
	cv.waiters = nil
	for _, w := range ws {
		cv.wake(w)
	}
}

// wake returns the waiter to the running state before releasing it, so
// the clock sees it as active from the instant of the signal.
func (cv *Cond) wake(w condWaiter) {
	if w.accounted {
		c := cv.clock
		c.mu.Lock()
		if !c.stopped {
			c.idle--
			if w.transient {
				c.parts--
			}
		}
		c.mu.Unlock()
	}
	close(w.ch)
}
