package netem

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Clock is the time source for an emulated network. All emulated delays
// (propagation, pacing, server think time, playout draining) must be
// expressed through a Clock so that virtual and scaled-real-time modes
// behave identically apart from wall-clock duration.
//
// In virtual mode the Clock is a deterministic discrete-event scheduler
// driven by waiter accounting: every emulation participant registers
// (Register / Go), receiving a *Participant handle, and parks only
// through clock-visible primitives (Participant.Sleep / SleepUntil,
// Cond.Wait). The moment every registered participant is parked the
// clock jumps straight to the earliest pending deadline. There is no
// background advancer goroutine and no wall-clock polling: virtual runs
// are CPU-bound and their event order is independent of machine load.
//
// Pending deadlines live in a sharded timer wheel (see wheel.go):
// each participant is assigned a shard at registration and its parks
// touch only that shard's lock, so deadline scheduling no longer
// serialises the whole emulation on one mutex, and the common park is
// an O(1) bucket append instead of an O(log n) heap insert. The jump
// loop finds the next instant from a lock-free per-shard
// earliest-deadline summary (one atomic load per shard), pops every
// sleeper due at that instant across all shards as one batch, and fans
// the wake tokens out after all shard locks are released — sorted by
// the same (deadline, seq) order the previous global heap popped in,
// so firing order (and with it every downstream report byte) is
// unchanged.
//
// The Participant handle is the unit of accounting: registering is a
// counter increment, parking reuses the handle's wake channel and
// wheel node, and no per-park goroutine-identity lookup happens
// anywhere. The participant/idle counters are atomics, so
// condition-variable parks and wakes never take any clock lock at all.
// This keeps the hot path O(1) and allocation-free, which is what lets
// one clock carry tens of thousands of concurrently parked session
// goroutines without serialising them on a single lock.
//
// Goroutines that never registered (tests, example main functions) may
// still call the clock-level blocking primitives (Clock.Sleep,
// Clock.SleepUntil, Cond.Wait with a nil participant): they are
// accounted as transient participants for the duration of the park, so
// casual use "just works", at the cost of the determinism guarantee
// that full registration gives. Registered goroutines must always park
// through their Participant — parking a registered goroutine through
// the transient shims would double-count it and wedge the clock.
type Clock struct {
	// parts counts registered participants plus holds plus parked
	// transients; idle counts participants currently parked in
	// clock-visible waits. The clock may jump exactly when idle ==
	// parts. Every operation that can make the condition become true
	// (parking, releasing a hold, unregistering, waking a transient)
	// calls tryAdvance afterwards, so no advance is ever missed.
	parts atomic.Int64
	idle  atomic.Int64

	virt atomic.Int64 // current virtual offset from base, in ns
	base time.Time    // virtual epoch

	seq       atomic.Int64  // global tiebreaker for same-instant firing order
	nextShard atomic.Uint32 // round-robin shard assignment
	stopped   atomic.Bool

	// jumpMu serialises the jump loop (and Stop) only: parks and
	// cancels take shard locks, never this one.
	jumpMu sync.Mutex
	shards [numShards]clockShard
	batch  sleeperBatch // jump-scratch; reused across jumps
	fire   []wakeItem   // jump-scratch: batch snapshot fanned out lock-free

	done chan struct{} // closed by Stop; wakes every parked waiter

	// frozen/frozenAt pin Now() at the stop instant: once Stop has run,
	// every Now() call returns the same value in both clock modes, so
	// post-teardown accessors (metrics, buffer levels) read a stable
	// emulated time instead of a wall clock that keeps running.
	frozen   atomic.Bool
	frozenAt atomic.Int64 // emulated offset from base at Stop, in ns

	// realtime mode
	realtime  bool
	scale     float64
	realStart time.Time
}

// Participant is one registered emulation participant: a handle minted
// by Register or Go that the owning goroutine threads through every
// clock-visible park (Sleep, SleepUntil, Cond.Wait). A Participant
// belongs to exactly one goroutine at a time and its park state (wake
// channel, timer-wheel node) is reused across parks, so steady-state
// parking allocates nothing and never consults a goroutine-identity
// map. Each participant is pinned to one wheel shard at registration
// (round-robin), so all of its deadline parks contend only with the
// 1/numShards of the emulation sharing that shard.
type Participant struct {
	c     *Clock
	wake  chan struct{} // cap 1; carries one wake token per park
	s     sleeper       // reusable wheel node for deadline parks
	shard uint32
	gone  atomic.Bool // unregistered
}

// NewVirtualClock returns a deterministic discrete-event clock. Time only
// advances when every registered participant is parked in a clock-visible
// wait; it then jumps to the earliest pending deadline. Call Stop when
// the emulation is finished.
func NewVirtualClock() *Clock {
	c := &Clock{
		base: time.Unix(1_700_000_000, 0), // arbitrary fixed epoch for determinism
		done: make(chan struct{}),
	}
	for i := range c.shards {
		c.shards[i].earliest.Store(sleeperNone)
	}
	return c
}

// NewScaledClock returns a real-time clock compressed by scale: an
// emulated duration d is slept for d/scale of wall time. scale = 1 gives
// plain real time.
func NewScaledClock(scale float64) *Clock {
	if scale <= 0 {
		scale = 1
	}
	return &Clock{
		base:      time.Now(), //detlint:allow wallclock -- scaled-real-time mode anchors the clock to the wall by definition
		realtime:  true,
		scale:     scale,
		realStart: time.Now(), //detlint:allow wallclock -- scaled-real-time mode anchors the clock to the wall by definition
		done:      make(chan struct{}),
	}
}

// Register marks the calling goroutine as an emulation participant and
// returns its handle: the virtual clock refuses to jump while any
// participant is running, so everything the goroutine does between
// parks happens at a frozen virtual instant. Park only through the
// returned handle, and pair every Register with Unregister. In realtime
// mode the handle's primitives degrade to scaled wall-clock sleeps.
func (c *Clock) Register() *Participant {
	p := &Participant{
		c:     c,
		wake:  make(chan struct{}, 1),
		shard: c.nextShard.Add(1) & (numShards - 1),
	}
	if !c.realtime {
		c.parts.Add(1)
	}
	return p
}

// Clock returns the clock the participant is registered with.
func (p *Participant) Clock() *Clock { return p.c }

// Unregister removes the participant from the clock's accounting. It is
// idempotent; a handle must not be used to park after unregistering.
func (p *Participant) Unregister() {
	c := p.c
	if c.realtime {
		return
	}
	if !p.gone.Swap(true) {
		c.parts.Add(-1)
		c.tryAdvance()
	}
}

// Suspend removes the participant from the accounting without retiring
// the handle, returning after Resume restores it. Use it around a wait
// the clock cannot see (e.g. joining worker goroutines whose progress
// needs virtual time): while suspended the goroutine does not hold up
// jumps. The participant must not park while suspended.
func (p *Participant) Suspend() {
	c := p.c
	if c.realtime || p.gone.Load() {
		return
	}
	c.parts.Add(-1)
	c.tryAdvance()
}

// Resume restores a registration removed by Suspend.
func (p *Participant) Resume() {
	c := p.c
	if c.realtime || p.gone.Load() {
		return
	}
	c.parts.Add(1)
}

// Hold blocks virtual-time jumps until Release, without registering a
// goroutine. It covers handoff windows where work has been scheduled but
// the goroutine that will perform it has not started executing yet.
func (c *Clock) Hold() {
	if c.realtime {
		return
	}
	c.parts.Add(1)
}

// Release undoes one Hold.
func (c *Clock) Release() {
	if c.realtime {
		return
	}
	c.parts.Add(-1)
	c.tryAdvance()
}

// Go runs fn on a new goroutine registered with the clock, passing fn
// its Participant handle. The clock cannot jump between the call and fn
// starting to execute, so events fn schedules are anchored to the
// virtual instant of the spawn.
func (c *Clock) Go(fn func(*Participant)) {
	c.Hold()
	go func() { //detlint:allow baredgo -- this IS Clock.Go: the one registered spawn point
		p := c.Register()
		c.Release()
		defer p.Unregister()
		fn(p)
	}()
}

// Stop terminates the clock. Parked waiters are woken immediately (in
// both clock modes) through the done channel; the emulation is expected
// to be torn down afterwards. Now() is frozen at the stop instant: a
// stopped clock reports the same emulated time forever, in both modes,
// so teardown-path reads (session metrics, buffer levels) are stable.
func (c *Clock) Stop() {
	c.jumpMu.Lock()
	if c.stopped.Load() {
		c.jumpMu.Unlock()
		return
	}
	if c.realtime {
		c.frozenAt.Store(int64(float64(time.Since(c.realStart)) * c.scale)) //detlint:allow wallclock -- realtime pacing converts wall progress into emulated time
	} else {
		c.frozenAt.Store(c.virt.Load())
	}
	c.frozen.Store(true)
	c.stopped.Store(true)
	close(c.done)
	for i := range c.shards {
		c.shards[i].reset()
	}
	c.jumpMu.Unlock()
}

// Stopped reports whether Stop has been called. Blocking primitives
// return immediately on a stopped clock, so loops that wait for an
// emulated instant must check this to avoid spinning during teardown.
func (c *Clock) Stopped() bool {
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// Now returns the current emulated time. In virtual mode this is a
// lock-free atomic read: registered participants can only observe the
// clock between jumps (jumps require them all parked), and transient
// observers tolerate the relaxed ordering by construction. After Stop,
// Now is frozen at the stop instant in both modes.
func (c *Clock) Now() time.Time {
	if c.realtime {
		if c.frozen.Load() {
			return c.base.Add(time.Duration(c.frozenAt.Load()))
		}
		real := time.Since(c.realStart) //detlint:allow wallclock -- realtime pacing converts wall progress into emulated time
		return c.base.Add(time.Duration(float64(real) * c.scale))
	}
	return c.base.Add(time.Duration(c.virt.Load()))
}

// Sleep blocks the participant for an emulated duration d.
func (p *Participant) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	p.SleepUntil(p.c.Now().Add(d))
}

// SleepUntil parks the participant until the emulated instant t. The
// park reuses the participant's wake channel and wheel node on the
// participant's own shard, so the steady state allocates nothing and
// contends with no other shard.
func (p *Participant) SleepUntil(t time.Time) {
	c := p.c
	if c.realtime {
		c.SleepUntil(t)
		return
	}
	sh := &c.shards[p.shard]
	deadline := int64(t.Sub(c.base))
	sh.mu.Lock()
	if c.stopped.Load() || deadline <= c.virt.Load() {
		sh.mu.Unlock()
		return
	}
	p.s = sleeper{deadline: deadline, seq: c.seq.Add(1), ch: p.wake}
	sh.push(&p.s)
	sh.mu.Unlock()
	// The sleeper becomes eligible to be popped only once idle is
	// incremented: an advance requires idle == parts, and this
	// goroutine is counted in parts but not yet in idle.
	if c.idle.Add(1) == c.parts.Load() {
		c.tryAdvance()
	}
	select {
	case <-p.wake:
	case <-c.done:
	}
}

// Sleep blocks for an emulated duration d. This is the transient shim:
// the caller is accounted as a participant only for the duration of the
// park. Registered goroutines must use Participant.Sleep instead.
func (c *Clock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.SleepUntil(c.Now().Add(d))
}

// SleepUntil blocks until the emulated instant t. In virtual mode the
// caller becomes a transient parked waiter with a deadline (see
// Clock.Sleep); in realtime mode it sleeps for the scaled wall
// duration, interruptibly by Stop.
func (c *Clock) SleepUntil(t time.Time) {
	if c.realtime {
		emuLeft := t.Sub(c.Now())
		if emuLeft <= 0 {
			return
		}
		timer := time.NewTimer(time.Duration(float64(emuLeft) / c.scale)) //detlint:allow wallclock -- realtime SleepUntil waits out the scaled interval on a real timer
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-c.done:
		}
		return
	}
	sh := &c.shards[c.nextShard.Add(1)&(numShards-1)]
	sh.mu.Lock()
	deadline := int64(t.Sub(c.base))
	if c.stopped.Load() || deadline <= c.virt.Load() {
		sh.mu.Unlock()
		return
	}
	s := &sleeper{deadline: deadline, seq: c.seq.Add(1), ch: make(chan struct{}, 1), transient: true}
	sh.push(s)
	sh.mu.Unlock()
	c.parts.Add(1)
	if c.idle.Add(1) == c.parts.Load() {
		c.tryAdvance()
	}
	select {
	case <-s.ch:
	case <-c.done:
	}
}

// tryAdvance jumps virtual time to the earliest pending deadline when
// every participant is parked, waking every sleeper that becomes due.
// Waking a registered sleeper leaves idle < parts, ending the loop
// until that goroutine parks again; a woken transient sleeper vanishes
// from the accounting entirely (it may never touch the clock again), so
// the condition is re-evaluated and further jumps may fire immediately.
//
// The idle == parts check is a pair of atomic loads, re-evaluated under
// the jump mutex on every loop iteration. A torn read can only produce
// equality at instants where the condition genuinely held (every
// counter transition toward equality triggers its own tryAdvance, and
// transitions away from it mean the affected goroutine is runnable and
// will re-check when it parks), so jumps stay deterministic for fully
// registered emulations.
func (c *Clock) tryAdvance() {
	if c.realtime {
		return
	}
	// Due sleepers are collected into one batch under the jump mutex
	// (taking each shard lock exactly once per jump) but their wake
	// tokens are fanned out after every lock is released: a channel
	// send can wake a goroutine (a futex syscall under contention), and
	// doing that inside the critical section convoys other advance
	// attempts behind it. Popping a registered sleeper decrements idle,
	// so no further jump can fire until it parks again — sending its
	// token late is indistinguishable from the goroutine being slow to
	// run. A popped transient reopens the condition (it vanishes from
	// the accounting), and a popped timer closes it (the pending
	// callback holds the clock) until the callback has run; the outer
	// loop re-checks both.
	for {
		c.jumpMu.Lock()
		fire := c.collectDue()
		c.jumpMu.Unlock()
		if len(fire) == 0 {
			return
		}
		for _, w := range fire {
			if w.fn != nil {
				// Timer callback: runs on this goroutine at the popped
				// instant, under the hold collectDue took for it.
				// Callbacks must not park (they broadcast, signal,
				// schedule — never wait).
				w.fn()
				c.parts.Add(-1) // release the hold; loop re-checks
				continue
			}
			select {
			case w.ch <- struct{}{}:
			default:
			}
		}
	}
}

// wakeItem is a popped sleeper's wake action, snapshotted under the
// jump lock. Fan-out must not touch the sleeper nodes themselves: the
// moment the first token of a batch is delivered, a woken goroutine may
// reuse its own node for the next park — or reschedule a popped Timer,
// whose node would be rewritten mid-fan-out.
type wakeItem struct {
	ch chan struct{}
	fn func()
}

// collectDue advances virtual time while every participant is parked,
// collecting every due sleeper across shards into one (deadline, seq)
// sorted batch and snapshotting its wake actions. The caller holds
// jumpMu; the returned slice is the clock's reusable scratch, valid
// until the next collectDue call.
func (c *Clock) collectDue() []wakeItem {
	batch := c.batch[:0]
	for !c.stopped.Load() && c.idle.Load() == c.parts.Load() {
		// Lock-free earliest-deadline summary: one atomic load per
		// shard names the next instant.
		min := int64(sleeperNone)
		for i := range c.shards {
			if e := c.shards[i].earliest.Load(); e < min {
				min = e
			}
		}
		if min == sleeperNone {
			break
		}
		virt := c.virt.Load()
		if min > virt {
			virt = min
			c.virt.Store(virt)
		}
		// Pop only shards whose summary says they have due work: in the
		// common case one shard owns the next instant and the other
		// locks are never touched. The summary is exact while every
		// participant is parked (nothing can push); the transient-shim
		// race can at worst delay an unregistered sleeper to the next
		// jump, which pop's <= comparison absorbs.
		n0 := len(batch)
		for i := range c.shards {
			if c.shards[i].earliest.Load() <= virt {
				batch = c.shards[i].popDue(virt, batch)
			}
		}
		// Account the batch before re-checking the loop condition:
		// registered sleepers return to the running state (idle--),
		// transients vanish (parts-- too), and timers take a hold
		// (parts++) released by tryAdvance after their callback runs.
		for _, s := range batch[n0:] {
			if s.fn != nil {
				c.parts.Add(1)
				continue
			}
			c.idle.Add(-1)
			if s.transient {
				c.parts.Add(-1)
			}
		}
	}
	c.batch = batch
	if len(batch) > 1 {
		// Same-instant wakes fire in (deadline, seq) order — exactly the
		// retired global heap's pop order — so event sequencing is
		// unchanged by the wheel. c.batch is a persistent field, so the
		// sort interface conversion does not allocate.
		sort.Sort(&c.batch)
	}
	fire := c.fire[:0]
	for _, s := range batch {
		fire = append(fire, wakeItem{ch: s.ch, fn: s.fn})
	}
	c.fire = fire
	return fire
}

// A Timer runs a callback at an emulated instant without dedicating a
// goroutine to waiting for it: the clock's jump loop fires the callback
// when virtual time reaches the scheduled deadline. Consumers use it
// for event-at-an-instant work that previously parked a whole goroutine
// per event (future conn aborts, wake-the-waiters watchers).
//
// The callback runs on the jump goroutine at the exact scheduled
// instant, while the clock is mid-jump: it must not park (no Sleep, no
// Cond.Wait) — broadcasting a Cond, signalling, or scheduling further
// timers is the intended use. In realtime mode the callback runs on a
// private goroutine after the scaled wall delay.
//
// Schedule and Stop may be called from any running goroutine. A timer
// holds at most one pending schedule: Schedule replaces the previous
// one. Stop cancels the pending schedule if the callback has not fired
// yet; a callback that is already firing cannot be recalled (it is
// idempotent in every consumer here).
type Timer struct {
	c     *Clock
	fn    func()
	shard uint32

	mu sync.Mutex // orders Schedule/Stop against each other
	s  *sleeper   // current node; recycled unless abandoned to overflow
	rt *rtTimer   // realtime mode
}

type rtTimer struct {
	stop atomic.Bool
}

// NewTimer returns an unscheduled timer firing fn, pinned to the next
// round-robin wheel shard.
func (c *Clock) NewTimer(fn func()) *Timer {
	return &Timer{c: c, fn: fn, shard: c.nextShard.Add(1) & (numShards - 1)}
}

// NewTimer returns an unscheduled timer firing fn, pinned to the
// participant's own wheel shard: events the participant schedules stay
// on the shard its parks already touch.
func (p *Participant) NewTimer(fn func()) *Timer {
	return &Timer{c: p.c, fn: fn, shard: p.shard}
}

// Schedule (re)schedules the timer to fire at the emulated instant t,
// replacing any pending schedule. An instant at or before the current
// emulated time runs the callback synchronously. On a stopped clock
// Schedule is a no-op (parked waiters have already been woken through
// the done channel).
func (t *Timer) Schedule(at time.Time) {
	c := t.c
	if c.Stopped() {
		return
	}
	if c.realtime {
		t.mu.Lock()
		if t.rt != nil {
			t.rt.stop.Store(true)
		}
		rt := &rtTimer{}
		t.rt = rt
		t.mu.Unlock()
		go func() { //detlint:allow baredgo -- realtime timers fire on an OS timer goroutine; virtual mode never runs this path
			c.SleepUntil(at)
			if !rt.stop.Load() && !c.Stopped() {
				t.fn()
			}
		}()
		return
	}
	// The hold pins virtual time across the push for unregistered
	// callers (mirroring Clock.Go's handoff window); for registered
	// callers it is a cheap no-op-equivalent pair of atomic adds.
	c.Hold()
	defer c.Release()
	t.mu.Lock()
	defer t.mu.Unlock()
	sh := &c.shards[t.shard]
	sh.mu.Lock()
	if t.s != nil && t.s.queued != sleeperIdle {
		if !sh.cancel(t.s) {
			t.s = nil // abandoned to the overflow heap
		}
	}
	deadline := int64(at.Sub(c.base))
	if c.stopped.Load() {
		sh.mu.Unlock()
		return
	}
	if deadline <= c.virt.Load() {
		sh.mu.Unlock()
		t.fn()
		return
	}
	if t.s == nil {
		t.s = &sleeper{}
	}
	*t.s = sleeper{deadline: deadline, seq: c.seq.Add(1), fn: t.fn}
	sh.push(t.s)
	sh.mu.Unlock()
}

// Stop cancels the pending schedule, if any. It does not wait for a
// callback that is already firing.
func (t *Timer) Stop() {
	c := t.c
	if c.realtime {
		t.mu.Lock()
		if t.rt != nil {
			t.rt.stop.Store(true)
			t.rt = nil
		}
		t.mu.Unlock()
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.s == nil {
		return
	}
	sh := &c.shards[t.shard]
	sh.mu.Lock()
	if t.s.queued != sleeperIdle && !sh.cancel(t.s) {
		t.s = nil // abandoned to the overflow heap
	}
	sh.mu.Unlock()
}

// Cond is a clock-aware condition variable: waiting parks the caller in
// a clock-visible state (so virtual time can advance past it), and
// signalling transfers the waiter back to the running state before the
// signaller can park, closing the wake-up race that would otherwise let
// the clock jump over a goroutine that is about to resume.
//
// Usage mirrors sync.Cond, with one extra rule: Signal and Broadcast
// must also be called with L held. Wait takes the caller's Participant
// handle; a nil participant accounts the caller as transient for the
// duration of the park (registered goroutines must pass their handle).
// A nil clock degrades to plain condition-variable behaviour (used by
// unit tests that exercise data structures without an emulation clock).
//
// Neither Wait nor wake touches any clock lock: parking is one atomic
// increment (plus an advance attempt when the caller was the last
// runner), waking one atomic decrement.
type Cond struct {
	clock   *Clock
	L       sync.Locker
	waiters []condWaiter
}

type condWaiter struct {
	ch        chan struct{}
	transient bool
	accounted bool
}

// NewCond returns a Cond bound to clock whose Wait/Signal/Broadcast are
// guarded by l. clock may be nil.
func NewCond(clock *Clock, l sync.Locker) *Cond {
	return &Cond{clock: clock, L: l}
}

// Wait atomically unlocks L and parks until woken by Signal or
// Broadcast, then relocks L before returning. p is the caller's
// Participant handle (nil for unregistered goroutines, which park as
// transients). Unlike sync.Cond there are no spurious wakeups, but
// callers should still re-check their predicate in a loop.
//
// Wait returns false when the clock has been stopped (at entry, or
// while parked): the wait's wake-up condition may never be signalled
// once the emulation is torn down, so callers must treat false as an
// abort rather than re-checking and waiting again.
func (cv *Cond) Wait(p *Participant) bool {
	w := condWaiter{}
	var stopCh <-chan struct{}
	advance := false
	c := cv.clock
	if c != nil {
		stopCh = c.done
		if c.Stopped() {
			return false
		}
		if c.realtime {
			w.ch = make(chan struct{}, 1)
		} else {
			if p != nil {
				w.ch = p.wake
			} else {
				w.ch = make(chan struct{}, 1)
				w.transient = true
				c.parts.Add(1)
			}
			w.accounted = true
			advance = c.idle.Add(1) == c.parts.Load()
		}
	} else {
		w.ch = make(chan struct{}, 1)
	}
	cv.waiters = append(cv.waiters, w)
	cv.L.Unlock()
	// The advance runs only after L is released: tryAdvance fires due
	// timer callbacks inline on this goroutine, and a callback may need
	// L itself (a request-deadline callback aborting the very conn this
	// goroutine parked reading) — firing under L would self-deadlock.
	// Running it here is safe against lost wakeups because the waiter is
	// already appended: any Signal/Broadcast issued from inside the
	// advance sees it. And it is safe against a stale condition because
	// tryAdvance re-checks idle == parts under the jump lock.
	if advance {
		c.tryAdvance()
	}
	ok := true
	select {
	case <-w.ch:
	case <-stopCh: // nil (blocks forever) when no clock is attached
		ok = false
	}
	cv.L.Lock()
	return ok
}

// Signal wakes the longest-waiting goroutine, if any. L must be held.
func (cv *Cond) Signal() {
	if len(cv.waiters) == 0 {
		return
	}
	w := cv.waiters[0]
	n := copy(cv.waiters, cv.waiters[1:])
	cv.waiters[n] = condWaiter{}
	cv.waiters = cv.waiters[:n]
	cv.wake(w)
}

// Broadcast wakes every waiter. L must be held.
func (cv *Cond) Broadcast() {
	for i, w := range cv.waiters {
		cv.waiters[i] = condWaiter{}
		cv.wake(w)
	}
	cv.waiters = cv.waiters[:0]
}

// wake returns the waiter to the running state before releasing it, so
// the clock sees it as active from the instant of the signal.
func (cv *Cond) wake(w condWaiter) {
	if w.accounted {
		c := cv.clock
		c.idle.Add(-1)
		if w.transient {
			c.parts.Add(-1)
			c.tryAdvance()
		}
	}
	select {
	case w.ch <- struct{}{}:
	default:
	}
}
