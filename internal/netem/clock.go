package netem

import (
	"container/heap"
	"sync"
	"sync/atomic"
	"time"
)

// Clock is the time source for an emulated network. All emulated delays
// (propagation, pacing, server think time, playout draining) must be
// expressed through a Clock so that virtual and scaled-real-time modes
// behave identically apart from wall-clock duration.
type Clock struct {
	mu       sync.Mutex
	virt     time.Duration // current virtual offset from base
	base     time.Time     // virtual epoch
	sleepers sleeperHeap
	seq      int64 // tiebreaker for heap ordering stability

	activity atomic.Uint64 // bumped on every externally visible event
	stopped  atomic.Bool

	// realtime mode
	realtime  bool
	scale     float64
	realStart time.Time

	// virtual mode advancer tuning
	tick time.Duration // real polling period of the advancer

	done chan struct{}
}

type sleeper struct {
	deadline time.Duration
	seq      int64
	ch       chan struct{}
}

type sleeperHeap []*sleeper

func (h sleeperHeap) Len() int { return len(h) }
func (h sleeperHeap) Less(i, j int) bool {
	if h[i].deadline != h[j].deadline {
		return h[i].deadline < h[j].deadline
	}
	return h[i].seq < h[j].seq
}
func (h sleeperHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *sleeperHeap) Push(x any)   { *h = append(*h, x.(*sleeper)) }
func (h *sleeperHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return s
}

// NewVirtualClock returns a discrete-event clock. Time only advances when
// every registered waiter is asleep; it then jumps to the earliest pending
// deadline. Call Stop when the emulation is finished.
func NewVirtualClock() *Clock {
	c := &Clock{
		base: time.Unix(1_700_000_000, 0), // arbitrary fixed epoch for determinism
		tick: 50 * time.Microsecond,
		done: make(chan struct{}),
	}
	go c.advance()
	return c
}

// NewScaledClock returns a real-time clock compressed by scale: an
// emulated duration d is slept for d/scale of wall time. scale = 1 gives
// plain real time.
func NewScaledClock(scale float64) *Clock {
	if scale <= 0 {
		scale = 1
	}
	return &Clock{
		base:      time.Now(),
		realtime:  true,
		scale:     scale,
		realStart: time.Now(),
		done:      make(chan struct{}),
	}
}

// Stop terminates the clock. Pending sleepers are woken immediately; the
// emulation is expected to be torn down afterwards.
func (c *Clock) Stop() {
	if c.stopped.Swap(true) {
		return
	}
	if !c.realtime {
		close(c.done)
	}
	c.mu.Lock()
	for _, s := range c.sleepers {
		close(s.ch)
	}
	c.sleepers = nil
	c.mu.Unlock()
}

// Now returns the current emulated time.
func (c *Clock) Now() time.Time {
	if c.realtime {
		real := time.Since(c.realStart)
		return c.base.Add(time.Duration(float64(real) * c.scale))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.base.Add(c.virt)
}

// Bump records externally visible activity. The virtual advancer refuses
// to jump time while activity is still happening, so CPU-bound work
// between events is given a chance to finish and schedule its own waits.
func (c *Clock) Bump() { c.activity.Add(1) }

// Sleep blocks for an emulated duration d.
func (c *Clock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.SleepUntil(c.Now().Add(d))
}

// SleepUntil blocks until the emulated instant t.
func (c *Clock) SleepUntil(t time.Time) {
	if c.realtime {
		emuLeft := t.Sub(c.Now())
		if emuLeft <= 0 {
			return
		}
		time.Sleep(time.Duration(float64(emuLeft) / c.scale))
		return
	}
	deadline := t.Sub(c.base)
	c.mu.Lock()
	if c.stopped.Load() || deadline <= c.virt {
		c.mu.Unlock()
		return
	}
	s := &sleeper{deadline: deadline, seq: c.seq, ch: make(chan struct{})}
	c.seq++
	heap.Push(&c.sleepers, s)
	c.mu.Unlock()
	c.Bump() // registering a sleeper is itself activity
	<-s.ch
}

// advance is the virtual-mode coordinator: after enough consecutive
// quiet polling ticks (no Bump calls) it jumps time to the earliest
// pending deadline and wakes every sleeper that is due.
//
// The quiet requirement scales with the size of the jump. Small jumps
// (segment arrivals, sub-second pacing) commit after two quiet ticks; a
// spurious one merely adds jitter-sized noise. Large jumps (idle drain
// periods, outage timers) demand milliseconds of quiet, so a goroutine
// that is runnable but momentarily descheduled — e.g. inside the HTTP
// transport's channel handoffs, which register no sleepers — cannot be
// leapt over.
func (c *Clock) advance() {
	var lastAct uint64
	quiet := 0
	for {
		select {
		case <-c.done:
			return
		default:
		}
		time.Sleep(c.tick)
		act := c.activity.Load()
		if act != lastAct {
			lastAct = act
			quiet = 0
			continue
		}
		quiet++
		c.mu.Lock()
		if len(c.sleepers) == 0 {
			c.mu.Unlock()
			continue
		}
		earliest := c.sleepers[0].deadline
		jump := earliest - c.virt
		required := 2
		switch {
		case jump > 10*time.Second:
			required = 100 // ~5 ms of real quiet
		case jump > time.Second:
			required = 60
		case jump > 100*time.Millisecond:
			required = 20
		}
		if quiet < required {
			c.mu.Unlock()
			continue
		}
		if earliest > c.virt {
			c.virt = earliest
		}
		for len(c.sleepers) > 0 && c.sleepers[0].deadline <= c.virt {
			s := heap.Pop(&c.sleepers).(*sleeper)
			close(s.ch)
		}
		c.mu.Unlock()
		quiet = 0
		lastAct = c.activity.Add(1) // the jump itself counts as activity
	}
}
