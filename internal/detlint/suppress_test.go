package detlint

import (
	"go/token"
	"testing"
)

func TestParseDirective(t *testing.T) {
	pos := token.Position{Filename: "x.go", Line: 1}
	cases := []struct {
		text      string
		analyzers []string
		reason    string
		malformed bool
	}{
		{"//detlint:allow wallclock -- benchmark wall time", []string{"wallclock"}, "benchmark wall time", false},
		{"//detlint:allow wallclock,baredgo -- two at once", []string{"wallclock", "baredgo"}, "two at once", false},
		{"//detlint:allow wallclock", nil, "", true},          // no reason separator
		{"//detlint:allow wallclock --   ", nil, "", true},    // blank reason
		{"//detlint:allow nosuch -- reason", nil, "", true},   // unknown analyzer
		{"//detlint:allow -- reason", nil, "", true},          // no analyzer names
		{"//detlint:allowwallclock -- reason", nil, "", true}, // missing space after marker
	}
	for _, c := range cases {
		d := parseDirective(pos, c.text)
		if (d.Malformed != "") != c.malformed {
			t.Errorf("%q: malformed=%q, want malformed=%v", c.text, d.Malformed, c.malformed)
			continue
		}
		if c.malformed {
			continue
		}
		if d.Reason != c.reason {
			t.Errorf("%q: reason %q, want %q", c.text, d.Reason, c.reason)
		}
		if len(d.Analyzers) != len(c.analyzers) {
			t.Errorf("%q: analyzers %v, want %v", c.text, d.Analyzers, c.analyzers)
			continue
		}
		for i := range c.analyzers {
			if d.Analyzers[i] != c.analyzers[i] {
				t.Errorf("%q: analyzers %v, want %v", c.text, d.Analyzers, c.analyzers)
				break
			}
		}
	}
}

// wantSuppressions pins the tree's escape-hatch surface: the exact
// number of //detlint:allow directives cmd/detlint -suppressions lists.
// Adding or removing one must update this constant, so every new escape
// hatch shows up in review as a deliberate diff, not a silent drift.
// 67th: netem Listener.abortFrom ranges the conn set to abort every
// connection crossing a severed partition edge — the aborts commute
// (each lands at the same pinned virtual instant), so map order cannot
// leak into observable state.
const wantSuppressions = 67

// TestTreeCleanAndSuppressionCount runs the full suite over the whole
// module, exactly as the CI detlint step does: zero unsuppressed
// findings, zero malformed or stale directives, and the pinned count.
func TestTreeCleanAndSuppressionCount(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			t.Errorf("%s: type error: %v", p.PkgPath, e)
		}
	}
	diags, err := RunAnalyzers(pkgs, Analyzers())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	dirs := CollectDirectives(pkgs)
	for _, d := range dirs {
		if d.Malformed != "" {
			t.Errorf("%s:%d: malformed directive: %s", d.Pos.Filename, d.Pos.Line, d.Malformed)
		}
	}
	kept, suppressed := FilterSuppressed(diags, dirs)
	for _, d := range kept {
		t.Errorf("unsuppressed finding: %s", d)
	}
	if len(suppressed) == 0 {
		t.Error("no suppressed findings at all; the suite does not seem to have run")
	}
	if len(dirs) != wantSuppressions {
		t.Errorf("suppression directives: got %d, want %d (update wantSuppressions so the new escape hatch is a reviewed diff)", len(dirs), wantSuppressions)
	}
	for _, d := range Unused(dirs) {
		t.Errorf("%s:%d: stale suppression directive (suppresses nothing)", d.Pos.Filename, d.Pos.Line)
	}
}
