package detlint

import (
	"go/ast"
	"go/types"
)

// globalrandAllowed names the math/rand package-level functions that do
// NOT draw from the process-global source: constructors fed an explicit
// seed or source.
var globalrandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// GlobalrandAnalyzer enforces the seeded-RNG rule (see the rand-audit
// invariant notes in netem/pipe.go and netem/trace/trace.go): every
// random draw in the emulation derives from the scenario seed through an
// owned rand.New(rand.NewSource(subseed)) stream, so two same-seed runs
// draw identical sequences. The top-level math/rand functions
// (rand.Intn, rand.Float64, rand.Perm, rand.Seed, ...) share one
// process-global, lock-guarded source whose draw interleaving depends on
// goroutine scheduling — randomness from it is unreproducible by
// construction.
var GlobalrandAnalyzer = &Analyzer{
	Name: "globalrand",
	Doc:  "forbid the process-global math/rand functions; derive randomness from the scenario seed via rand.New(rand.NewSource(subseed))",
	Run:  runGlobalrand,
}

func runGlobalrand(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			// Methods on *rand.Rand are fine — only package-level
			// functions touch the global source.
			if fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			if !globalrandAllowed[fn.Name()] {
				pass.Reportf(sel.Pos(), "rand.%s draws from the process-global source; derive randomness from the scenario seed via rand.New(rand.NewSource(subseed))", fn.Name())
			}
			return true
		})
	}
	return nil
}
