package detlint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, type-checked package unit. Units with
// in-package test files are loaded as their test-augmented variant, so
// _test.go files are analyzed alongside the code they exercise.
type Package struct {
	PkgPath   string // bracket-free import path, e.g. repro/internal/netem
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info

	// TypeErrors collects type-checker complaints. Analysis proceeds on
	// a partially typed AST, but the driver surfaces these loudly: a
	// finding-free run over a package that did not type-check proves
	// nothing.
	TypeErrors []error
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	ForTest    string
	Standard   bool
	Export     string
	Module     *struct {
		Path string
		Main bool
	}
}

// Load lists, parses and type-checks the module packages matching
// patterns (plus their test variants), resolving imports from the
// toolchain's export data so no network or external dependency is
// needed. dir is the directory to run `go list` from ("" = cwd).
func Load(dir string, patterns ...string) ([]*Package, error) {
	entries, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}

	// Export data for every dependency, keyed by the exact ImportPath
	// go list reported (test-augmented variants keep their brackets).
	exports := make(map[string]string)
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}

	// Select the units to analyze: module packages only, preferring the
	// test-augmented variant of a package over the plain one so test
	// files are covered, and skipping the synthesized test mains (their
	// sources live in the build cache, not the tree).
	selected := make(map[string]listPkg)
	for _, e := range entries {
		if e.Module == nil || !e.Module.Main || e.Standard {
			continue
		}
		if strings.HasSuffix(e.ImportPath, ".test") {
			continue
		}
		key := strippedPath(e.ImportPath)
		prev, ok := selected[key]
		if !ok || (prev.ForTest == "" && e.ForTest != "") {
			selected[key] = e
		}
	}

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, e := range sortedValues(selected) {
		pkg, err := typecheckUnit(fset, e, exports)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", e.ImportPath, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func goList(dir string, patterns ...string) ([]listPkg, error) {
	args := []string{
		"list", "-export", "-deps", "-test",
		"-json=ImportPath,Name,Dir,GoFiles,Imports,ImportMap,ForTest,Standard,Export,Module",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var entries []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listPkg
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// strippedPath removes the " [pkg.test]" variant suffix.
func strippedPath(importPath string) string {
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

func sortedValues(m map[string]listPkg) []listPkg {
	// Deterministic load order: analyzers and diagnostics must not
	// depend on map iteration (detlint practices what it preaches).
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]listPkg, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

func typecheckUnit(fset *token.FileSet, e listPkg, exports map[string]string) (*Package, error) {
	var files []*ast.File
	for _, name := range e.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(e.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	pkg := &Package{PkgPath: strippedPath(e.ImportPath), Fset: fset, Files: files}

	// A fresh gc importer per unit: the same plain import path can
	// resolve to different compiled variants depending on the unit's
	// ImportMap (external test packages import the test-augmented
	// package under the plain path).
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := e.ImportMap[path]; ok {
			path = mapped
		}
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg.TypesInfo = info
	// Check returns an error on the first problem but still produces a
	// usable (partial) package; per-error detail lands in TypeErrors.
	tpkg, _ := conf.Check(pkg.PkgPath, fset, files, info)
	pkg.Types = tpkg
	return pkg, nil
}
