package detlint

import (
	"go/ast"
	"go/types"
)

// wallclockForbidden names the package-level time functions that read or
// wait on the wall clock. Referencing any of them (called or not) makes
// event timing depend on the machine instead of the virtual clock.
var wallclockForbidden = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"Since":     true,
	"Until":     true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// WallclockAnalyzer enforces netem/doc.go rule 1: emulation code must
// never read or wait on the wall clock — all timing goes through
// netem.Clock (Participant.Sleep/SleepUntil, Clock.Now, netem.Timer).
// One time.Sleep in a registered goroutine wedges the waiter accounting;
// one time.Now leaks machine time into reports. Code that measures wall
// time on purpose (benchmark harnesses, the scaled-real-time clock mode
// itself) carries a //detlint:allow wallclock directive naming why.
var WallclockAnalyzer = &Analyzer{
	Name: "wallclock",
	Doc:  "forbid wall-clock time functions; emulation timing must go through netem.Clock (netem/doc.go rule 1)",
	Run:  runWallclock,
}

func runWallclock(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			// Methods (t.After, t.Since-style comparisons on time.Time
			// values) are pure value arithmetic — only the package-level
			// functions consult the wall clock.
			if fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			if wallclockForbidden[fn.Name()] {
				pass.Reportf(sel.Pos(), "time.%s reads or waits on the wall clock; use netem.Clock (doc.go rule 1) or justify with //detlint:allow wallclock -- <reason>", fn.Name())
			}
			return true
		})
	}
	return nil
}
