package detlint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// allowPrefix is the suppression directive marker. The full form is
//
//	//detlint:allow <analyzer>[,<analyzer>...] -- <reason>
//
// placed either at the end of the offending line or on the line
// directly above it. The reason is mandatory: an unexplained escape
// hatch is itself a finding.
const allowPrefix = "//detlint:allow"

// Directive is one parsed //detlint:allow comment.
type Directive struct {
	Pos       token.Position
	Analyzers []string
	Reason    string
	Malformed string // non-empty: why the directive could not be parsed

	used bool
}

// CollectDirectives extracts every //detlint:allow directive from the
// files, deduplicated by position (a file can appear in more than one
// package unit) and sorted by position.
func CollectDirectives(pkgs []*Package) []*Directive {
	var dirs []*Directive
	seen := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, allowPrefix) {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d:%d", pos.Filename, pos.Line, pos.Column)
					if seen[key] {
						continue
					}
					seen[key] = true
					dirs = append(dirs, parseDirective(pos, c.Text))
				}
			}
		}
	}
	sort.Slice(dirs, func(i, j int) bool {
		a, b := dirs[i].Pos, dirs[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return dirs
}

func parseDirective(pos token.Position, text string) *Directive {
	d := &Directive{Pos: pos}
	rest := strings.TrimPrefix(text, allowPrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		d.Malformed = "directive must be followed by a space and analyzer names"
		return d
	}
	names, reason, ok := strings.Cut(rest, "--")
	if !ok || strings.TrimSpace(reason) == "" {
		d.Malformed = "missing reason: write //detlint:allow <analyzer> -- <reason>"
		return d
	}
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if !knownAnalyzer(n) {
			d.Malformed = fmt.Sprintf("unknown analyzer %q", n)
			return d
		}
		d.Analyzers = append(d.Analyzers, n)
	}
	if len(d.Analyzers) == 0 {
		d.Malformed = "no analyzer names given"
		return d
	}
	d.Reason = strings.TrimSpace(reason)
	return d
}

func knownAnalyzer(name string) bool {
	for _, a := range Analyzers() {
		if a.Name == name {
			return true
		}
	}
	return false
}

func (d *Directive) allows(diag Diagnostic) bool {
	if d.Malformed != "" || d.Pos.Filename != diag.Pos.Filename {
		return false
	}
	if diag.Pos.Line != d.Pos.Line && diag.Pos.Line != d.Pos.Line+1 {
		return false
	}
	for _, n := range d.Analyzers {
		if n == diag.Analyzer {
			return true
		}
	}
	return false
}

// FilterSuppressed partitions diagnostics into kept findings and
// suppressed ones, marking the directives that did the suppressing.
// Unused returns the directives that suppressed nothing (stale escape
// hatches worth deleting) — meaningful only when the full suite ran.
func FilterSuppressed(diags []Diagnostic, dirs []*Directive) (kept, suppressed []Diagnostic) {
	for _, diag := range diags {
		matched := false
		for _, d := range dirs {
			if d.allows(diag) {
				d.used = true
				matched = true
			}
		}
		if matched {
			suppressed = append(suppressed, diag)
		} else {
			kept = append(kept, diag)
		}
	}
	return kept, suppressed
}

// Unused returns the well-formed directives that FilterSuppressed never
// marked as used.
func Unused(dirs []*Directive) []*Directive {
	var out []*Directive
	for _, d := range dirs {
		if d.Malformed == "" && !d.used {
			out = append(out, d)
		}
	}
	return out
}
