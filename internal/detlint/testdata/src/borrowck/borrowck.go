// Package borrowck exercises detlint/borrowck: CachedSlice results,
// WriteStable parameters, and sync.Pool payloads are borrowed views;
// retaining one beyond the call is a finding, while the sanctioned
// owner-write and copy-out patterns pass.
package borrowck

import "sync"

// content mimics videostore.Content: CachedSlice hands out borrowed
// views into its page cache (matching is by method name).
type content struct{ page []byte }

func (c *content) CachedSlice(off int64, n int) []byte {
	return c.page[off : off+int64(n) : off+int64(n)]
}

// edgeCache mimics edge.Cache: PageView hands out borrowed views of
// cached page buffers (matching is by method name).
type edgeCache struct{ page []byte }

func (e *edgeCache) PageView(pg int64) ([]byte, error) {
	return e.page, nil
}

// clock mimics the netem.Clock spawn API: closures handed to Go outlive
// the calling function.
type clock struct{}

func (clock) Go(fn func()) { fn() }

var pool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

type holder struct {
	view []byte
}

var global []byte

func use([]byte) {}

func fieldStore(h *holder, c *content) {
	v := c.CachedSlice(0, 8)
	h.view = v // want "borrowed view stored into field view"
}

func elementStore(c *content, dst [][]byte) {
	v := c.CachedSlice(0, 8)
	dst[0] = v // want "borrowed view stored into a container element"
}

func globalStore(c *content) {
	global = c.CachedSlice(0, 8) // want "borrowed view stored into package variable global"
}

func goCapture(c *content) {
	v := c.CachedSlice(0, 8)
	go func() {
		use(v) // want "borrowed slice v captured by go statement closure"
	}()
}

func spawnCapture(clk clock, c *content) {
	v := c.CachedSlice(0, 8)
	clk.Go(func() {
		use(v) // want "borrowed slice v captured by closure spawned via Go"
	})
}

func appendGrow(c *content) []byte {
	v := c.CachedSlice(0, 8)
	return append(v, 0) // want "append on borrowed slice v"
}

func returned(c *content) []byte {
	v := c.CachedSlice(0, 8)
	return v // want "borrowed view returned from returned"
}

func composite(c *content) holder {
	v := c.CachedSlice(0, 8)
	return holder{view: v} // want "borrowed view stored into a composite literal"
}

// WriteStable's slice parameter is a borrow by contract: local
// reslicing is fine, retaining it is not.
func (h *holder) WriteStable(b []byte) (int, error) {
	n := len(b)
	b = b[:0]
	h.view = b // want "borrowed view stored into field view"
	return n, nil
}

// The pool owner writing into a buffer it just took from the pool is
// the sanctioned ownership protocol, not a finding; copying out before
// Put keeps nothing borrowed.
func poolOwnerWrites() []byte {
	bp := pool.Get().(*[]byte)
	b := (*bp)[:0]
	b = append(b, 'x')
	out := append([]byte(nil), b...)
	pool.Put(bp)
	return out
}

// Handing a pool buffer to a spawned closure still leaks it past the
// call, pool protocol or not.
func poolSpawnCapture(clk clock) {
	bp := pool.Get().(*[]byte)
	clk.Go(func() {
		use(*bp) // want "borrowed slice bp captured by closure spawned via Go"
	})
}

// PageView results are borrows exactly like CachedSlice results:
// retaining one in a field is a finding, serving it onward as a plain
// call argument is the sanctioned pattern.
func pageViewFieldStore(h *holder, e *edgeCache) {
	v, _ := e.PageView(0)
	h.view = v // want "borrowed view stored into field view"
}

func pageViewServePass(h *holder, e *edgeCache) {
	v, _ := e.PageView(0)
	h.WriteStable(v[:4])
}

// evConn mimics netem.Conn's borrow-based read path: ReadBuf hands out
// a view of the head arrived segment, owned by the pipe until the
// reader hands it back through Release (matching is by method name).
type evConn struct{ seg []byte }

func (c *evConn) ReadBuf() ([]byte, error) { return c.seg, nil }
func (c *evConn) Release(n int)            {}

// A ReadBuf view escaping into a field outlives the borrow: once
// Release returns the bytes to the pipe they are recycled into future
// segments.
func readBufFieldStore(h *holder, c *evConn) {
	v, _ := c.ReadBuf()
	h.view = v // want "borrowed view stored into field view"
	c.Release(len(h.view))
}

// Capturing a ReadBuf view in a timer or spawned closure retains it
// past the callback that borrowed it.
func readBufSpawnCapture(clk clock, c *evConn) {
	v, _ := c.ReadBuf()
	clk.Go(func() {
		use(v) // want "borrowed slice v captured by closure spawned via Go"
	})
}

func readBufAppendGrow(c *evConn) []byte {
	v, _ := c.ReadBuf()
	return append(v, 0) // want "append on borrowed slice v"
}

// The sanctioned consumer pattern: copy the view out (or hand it on as
// a plain call argument) and Release the bytes before returning.
func readBufCopyReleasePass(c *evConn) []byte {
	v, _ := c.ReadBuf()
	out := append([]byte(nil), v...)
	c.Release(len(v))
	return out
}

// Copying the borrowed bytes severs the borrow.
func copyOutPass(h *holder, c *content) {
	v := c.CachedSlice(0, 8)
	h.view = append([]byte(nil), v...)
}

func suppressedReturn(c *content) []byte {
	return c.CachedSlice(0, 8) //detlint:allow borrowck -- testdata: documented borrow passthrough
}
