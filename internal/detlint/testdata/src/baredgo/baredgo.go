// Package baredgo exercises detlint/baredgo: bare go statements are
// findings, spawns routed through a Clock.Go-shaped API are not, and
// _test.go files are exempt.
package baredgo

// clock mimics the netem.Clock registered-spawn API; the analyzer only
// cares that the spawn is not a bare go statement.
type clock struct{}

func (clock) Go(fn func()) { fn() }

func bareLiteral() {
	go func() {}() // want "bare go statement spawns a clock-invisible goroutine"
}

func bareNamed() {
	go helper() // want "bare go statement spawns a clock-invisible goroutine"
}

func helper() {}

func viaClock(c clock) {
	c.Go(helper) // registered spawn: not a finding
}

func suppressed() {
	go helper() //detlint:allow baredgo -- testdata: relay that originates outside emulated time
}
