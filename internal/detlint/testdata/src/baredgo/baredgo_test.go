package baredgo

import "testing"

// _test.go files are exempt: test goroutines ride the transient
// participant shims that netem/doc.go explicitly permits, so this bare
// go statement is NOT a finding.
func TestShimGoroutineAllowed(t *testing.T) {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
