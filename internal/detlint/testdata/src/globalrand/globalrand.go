// Package globalrand exercises detlint/globalrand: top-level math/rand
// and math/rand/v2 functions draw from the process-global source and
// are findings; explicitly seeded streams are not.
package globalrand

import (
	"math/rand"
	randv2 "math/rand/v2"
)

func violations() int {
	n := rand.Intn(10)           // want "rand.Intn draws from the process-global source"
	n += int(rand.Int63())       // want "rand.Int63 draws from the process-global source"
	n += int(rand.Float64() * 8) // want "rand.Float64 draws from the process-global source"
	n += randv2.IntN(10)         // want "rand.IntN draws from the process-global source"
	return n
}

// An owned stream seeded from the scenario seed is the sanctioned
// pattern: the constructors are allowed, and methods on the stream are
// not package-level draws.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func suppressed() int {
	return rand.Int() //detlint:allow globalrand -- testdata: justified global draw
}
