// Package wallclock exercises detlint/wallclock: the package-level time
// functions are findings, time.Time methods and constructors are not,
// and //detlint:allow directives suppress justified sites.
package wallclock

import "time"

func violations() {
	_ = time.Now()                       // want "time.Now reads or waits on the wall clock"
	time.Sleep(time.Millisecond)         // want "time.Sleep reads or waits on the wall clock"
	_ = time.After(time.Second)          // want "time.After reads or waits on the wall clock"
	_ = time.Tick(time.Second)           // want "time.Tick reads or waits on the wall clock"
	_ = time.Since(time.Time{})          // want "time.Since reads or waits on the wall clock"
	_ = time.Until(time.Time{})          // want "time.Until reads or waits on the wall clock"
	_ = time.NewTimer(time.Second)       // want "time.NewTimer reads or waits on the wall clock"
	_ = time.NewTicker(time.Second)      // want "time.NewTicker reads or waits on the wall clock"
	_ = time.AfterFunc(time.Second, nil) // want "time.AfterFunc reads or waits on the wall clock"
}

// Methods on time.Time values are pure value arithmetic: only the
// package-level functions consult the machine clock.
func methodsAreFine(t, u time.Time) bool {
	return t.After(u) || t.Before(u) || t.Sub(u) > 0
}

// Constructors and constants do not read the clock either.
func constructorsAreFine() time.Time {
	return time.Date(2014, 12, 2, 0, 0, 0, 0, time.UTC)
}

func suppressedSameLine() time.Time {
	return time.Now() //detlint:allow wallclock -- testdata: justified wall-clock read
}

func suppressedLineAbove() {
	//detlint:allow wallclock -- testdata: directive on the line above also applies
	time.Sleep(time.Millisecond)
}
