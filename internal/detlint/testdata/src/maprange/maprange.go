// Package maprange exercises detlint/maprange: map-iteration order must
// not reach writers, escaping slices, or accounting state; the
// sorted-key extraction pattern and order-insensitive bodies pass.
package maprange

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

func printsInMapOrder(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "fmt.Fprintf inside a map range emits output in iteration order"
	}
}

func builderInMapOrder(m map[string]int) string {
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k) // want "sb.WriteString inside a map range emits output in iteration order"
	}
	return sb.String()
}

func escapesUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want "values accumulated from a map range escape in iteration order"
		keys = append(keys, k)
	}
	return keys
}

// The canonical fix: extract, then sort before the slice escapes.
func sortedKeysPass(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

type books struct {
	total int
}

func accountingInMapOrder(b *books, m map[string]int) {
	for _, v := range m {
		b.total += v // want "mutates b.total in map-iteration order"
	}
}

func sliceWriteInMapOrder(m map[string]int, out []int) {
	i := 0
	for _, v := range m {
		out[i] = v // want "writes out"
		i++
	}
}

// Inserting into another map is order-insensitive: the final contents do
// not depend on insertion order.
func mapInsertPass(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m {
		inv[v] = k
	}
	return inv
}

// Plain scalar accumulation commutes.
func scalarSumPass(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// Ranging over a slice is ordered; writers inside are fine.
func sliceRangePass(w io.Writer, xs []string) {
	for _, x := range xs {
		fmt.Fprintln(w, x)
	}
}

func suppressedPrint(w io.Writer, m map[string]bool) {
	for k := range m {
		fmt.Fprintln(w, k) //detlint:allow maprange -- testdata: single-entry map by construction
	}
}
