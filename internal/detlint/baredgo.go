package detlint

import (
	"go/ast"
	"strings"
)

// BaredgoAnalyzer enforces netem/doc.go rule 2: emulation goroutines are
// spawned with Clock.Go (or under a Hold covering the handoff), so the
// clock cannot jump between the spawn and the new goroutine's first
// park. A bare go statement opens exactly that window: the spawner may
// park, the clock jumps, and the spawnee's first scheduled event lands
// at a later instant than the same-seed run where the scheduler was
// faster.
//
// _test.go files are exempt: test goroutines ride the transient
// participant shims, which doc.go explicitly permits for casual use.
// The handful of intentional bare spawns (Clock.Go's own implementation,
// event relays that originate outside emulated time) carry
// //detlint:allow baredgo directives.
var BaredgoAnalyzer = &Analyzer{
	Name: "baredgo",
	Doc:  "forbid bare go statements in non-test files; spawn through Clock.Go or under a Hold (netem/doc.go rule 2)",
	Run:  runBaredgo,
}

func runBaredgo(pass *Pass) error {
	for _, f := range pass.Files {
		filename := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(), "bare go statement spawns a clock-invisible goroutine; use Clock.Go or cover the handoff with a Hold (doc.go rule 2)")
			}
			return true
		})
	}
	return nil
}
