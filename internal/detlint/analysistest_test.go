package detlint

// The analyzer tests follow the x/tools analysistest convention: each
// testdata/src/<analyzer> package compiles cleanly but carries
// deliberately seeded violations, annotated in place with
//
//	// want "regexp"
//
// comments on the offending line. The runner loads the package through
// the same go list pipeline as cmd/detlint, runs one analyzer, applies
// //detlint:allow filtering, and then requires an exact match: every
// kept diagnostic hits a want on its line, every want is hit, and every
// suppression directive suppresses something.

import (
	"regexp"
	"testing"
)

var wantRe = regexp.MustCompile(`want "([^"]+)"`)

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

func runAnalyzerTest(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	pkgs, err := Load("", "./testdata/src/"+name)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			t.Fatalf("%s: type error: %v", p.PkgPath, e)
		}
	}

	// Collect the want annotations, visiting each file once (a file can
	// appear in both the plain and the test-augmented unit).
	var wants []*expectation
	seenFile := make(map[string]bool)
	for _, p := range pkgs {
		for _, f := range p.Files {
			filename := p.Fset.Position(f.Pos()).Filename
			if seenFile[filename] {
				continue
			}
			seenFile[filename] = true
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("bad want pattern %q: %v", m[1], err)
						}
						pos := p.Fset.Position(c.Pos())
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
					}
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("testdata/src/%s has no want annotations", name)
	}

	diags, err := RunAnalyzers(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	dirs := CollectDirectives(pkgs)
	for _, d := range dirs {
		if d.Malformed != "" {
			t.Errorf("%s:%d: malformed directive: %s", d.Pos.Filename, d.Pos.Line, d.Malformed)
		}
	}
	kept, _ := FilterSuppressed(diags, dirs)

	for _, diag := range kept {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == diag.Pos.Filename && w.line == diag.Pos.Line && w.pattern.MatchString(diag.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", diag)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
	for _, d := range Unused(dirs) {
		t.Errorf("%s:%d: suppression directive suppressed nothing", d.Pos.Filename, d.Pos.Line)
	}
}

func TestWallclockAnalyzer(t *testing.T)  { runAnalyzerTest(t, WallclockAnalyzer, "wallclock") }
func TestBaredgoAnalyzer(t *testing.T)    { runAnalyzerTest(t, BaredgoAnalyzer, "baredgo") }
func TestGlobalrandAnalyzer(t *testing.T) { runAnalyzerTest(t, GlobalrandAnalyzer, "globalrand") }
func TestMaprangeAnalyzer(t *testing.T)   { runAnalyzerTest(t, MaprangeAnalyzer, "maprange") }
func TestBorrowckAnalyzer(t *testing.T)   { runAnalyzerTest(t, BorrowckAnalyzer, "borrowck") }
