package detlint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MaprangeAnalyzer keeps Go's randomized map-iteration order out of
// anything observable: two same-seed runs must print byte-identical
// reports, so a loop that ranges over a map may not let its iteration
// order reach an io.Writer, an escaping slice, or accounting state.
// Flagged bodies:
//
//   - write to an io.Writer (fmt.Fprint* or a Write/WriteString/
//     WriteByte/WriteRune method on a writer) — report lines would come
//     out in a different order every run;
//   - append to a slice declared outside the loop that is not sorted
//     before it escapes — the canonical fix, extracting keys and
//     sorting them first, passes because the sort makes the order
//     deterministic again;
//   - assignment through a field selector or a slice index rooted
//     outside the loop — accounting structs mutated in iteration order.
//
// Deliberately not flagged (order-insensitive or out of mechanical
// reach): plain scalar accumulation into an outside variable
// (sum += v), inserts into another map (the final map contents do not
// depend on insertion order), and side effects hidden behind function
// calls.
var MaprangeAnalyzer = &Analyzer{
	Name: "maprange",
	Doc:  "flag range-over-map loops whose iteration order leaks into writers, escaping slices, or accounting state",
	Run:  runMaprange,
}

func runMaprange(pass *Pass) error {
	for _, f := range pass.Files {
		v := &maprangeVisitor{pass: pass}
		ast.Walk(v, f)
	}
	return nil
}

// maprangeVisitor tracks the stack of enclosing function bodies so the
// sorted-afterwards exemption can look past the loop's own extent.
type maprangeVisitor struct {
	pass    *Pass
	funcs   []*ast.BlockStmt
	inRange []*ast.RangeStmt
}

func (v *maprangeVisitor) Visit(n ast.Node) ast.Visitor {
	switch n := n.(type) {
	case nil:
		return nil
	case *ast.FuncDecl:
		if n.Body == nil {
			return nil
		}
		v.funcs = append(v.funcs, n.Body)
		ast.Walk(v, n.Body)
		v.funcs = v.funcs[:len(v.funcs)-1]
		return nil
	case *ast.FuncLit:
		v.funcs = append(v.funcs, n.Body)
		ast.Walk(v, n.Body)
		v.funcs = v.funcs[:len(v.funcs)-1]
		return nil
	case *ast.RangeStmt:
		if v.isMapRange(n) {
			v.checkMapRange(n)
			// Descend normally so nested map ranges are checked on
			// their own; effects are attributed to the innermost
			// enclosing map range by checkMapRange.
		}
	}
	return v
}

func (v *maprangeVisitor) isMapRange(rs *ast.RangeStmt) bool {
	tv, ok := v.pass.TypesInfo.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func (v *maprangeVisitor) checkMapRange(rs *ast.RangeStmt) {
	var appendTargets []types.Object
	reported := false
	report := func(pos token.Pos, format string, args ...any) {
		if !reported {
			reported = true
			v.pass.Reportf(pos, format, args...)
		}
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		switch n := n.(type) {
		case *ast.RangeStmt:
			// A nested map range owns its body's effects.
			if n != rs && v.isMapRange(n) {
				return false
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				v.checkAssignTarget(rs, n.Tok, lhs, rhs, report, &appendTargets)
			}
		case *ast.IncDecStmt:
			v.checkAssignTarget(rs, n.Tok, n.X, nil, report, &appendTargets)
		case *ast.CallExpr:
			v.checkWriterCall(rs, n, report)
		}
		return true
	})
	if reported || len(appendTargets) == 0 {
		return
	}
	// The sorted-key extraction pattern: keys (or values) accumulated
	// from the map are fine if the slice is sorted before it escapes.
	enclosing := rs.Body
	if len(v.funcs) > 0 {
		enclosing = v.funcs[len(v.funcs)-1]
	}
	for _, obj := range appendTargets {
		if !v.sortedAfter(enclosing, rs, obj) {
			v.pass.Reportf(rs.Pos(), "values accumulated from a map range escape in iteration order (%s is never sorted); extract sorted keys first or sort before use", obj.Name())
			return
		}
	}
}

// checkAssignTarget classifies one assignment target inside the loop
// body. tok distinguishes := (new locals are loop-internal by
// definition) from mutations.
func (v *maprangeVisitor) checkAssignTarget(rs *ast.RangeStmt, tok token.Token, lhs ast.Expr, rhs ast.Expr, report func(token.Pos, string, ...any), appendTargets *[]types.Object) {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if tok == token.DEFINE {
			return
		}
		obj := v.pass.TypesInfo.Uses[lhs]
		if obj == nil || !declaredOutside(obj, rs) {
			return
		}
		// Accumulating via append leaks element order; plain scalar
		// accumulation (sum += v, max tracking) does not.
		if call, ok := skipParens(rhs).(*ast.CallExpr); ok && isBuiltinAppend(v.pass, call) {
			*appendTargets = append(*appendTargets, obj)
		}
	case *ast.SelectorExpr:
		if root := rootIdent(lhs); root != nil {
			obj := v.pass.TypesInfo.Uses[root]
			if obj != nil && declaredOutside(obj, rs) {
				report(lhs.Pos(), "mutates %s.%s in map-iteration order; extract sorted keys first (iteration order leaks into accounting state)", root.Name, lhs.Sel.Name)
			}
		}
	case *ast.IndexExpr:
		// Writing into another map is order-insensitive (same final
		// contents); writing into a slice or array is positional.
		tv, ok := v.pass.TypesInfo.Types[lhs.X]
		if !ok || tv.Type == nil {
			return
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			return
		}
		if root := rootIdent(lhs); root != nil {
			obj := v.pass.TypesInfo.Uses[root]
			if obj != nil && declaredOutside(obj, rs) {
				report(lhs.Pos(), "writes %s[...] in map-iteration order; extract sorted keys first", root.Name)
			}
		}
	case *ast.StarExpr:
		v.checkAssignTarget(rs, tok, lhs.X, rhs, report, appendTargets)
	}
}

var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

func (v *maprangeVisitor) checkWriterCall(rs *ast.RangeStmt, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := v.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Fprint", "Fprintf", "Fprintln":
			report(call.Pos(), "fmt.%s inside a map range emits output in iteration order; extract sorted keys first", fn.Name())
		}
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !writerMethods[fn.Name()] {
		return
	}
	if implementsIOWriter(sig.Recv().Type()) {
		report(call.Pos(), "%s.%s inside a map range emits output in iteration order; extract sorted keys first", exprName(sel.X), fn.Name())
	}
}

// sortedAfter reports whether a sort.* / slices.* call referencing obj
// appears in body after the range statement.
func (v *maprangeVisitor) sortedAfter(body *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := v.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && v.pass.TypesInfo.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// --- small shared AST/type helpers ---

func declaredOutside(obj types.Object, n ast.Node) bool {
	return obj.Pos() == token.NoPos || obj.Pos() < n.Pos() || obj.Pos() >= n.End()
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.CallExpr:
			return nil
		default:
			return nil
		}
	}
}

func skipParens(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := skipParens(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func exprName(e ast.Expr) string {
	if id := rootIdent(e); id != nil {
		return id.Name
	}
	return "writer"
}

// ioWriter is a structurally built io.Writer, so the check does not
// depend on the analyzed package importing io.
var ioWriter = func() *types.Interface {
	sig := types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, nil, "p", types.NewSlice(types.Typ[types.Byte]))),
		types.NewTuple(
			types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
			types.NewVar(token.NoPos, nil, "err", types.Universe.Lookup("error").Type()),
		), false)
	fn := types.NewFunc(token.NoPos, nil, "Write", sig)
	iface := types.NewInterfaceType([]*types.Func{fn}, nil)
	iface.Complete()
	return iface
}()

func implementsIOWriter(t types.Type) bool {
	if types.Implements(t, ioWriter) {
		return true
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), ioWriter)
	}
	return false
}
