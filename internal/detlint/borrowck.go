package detlint

import (
	"go/ast"
	"go/types"
)

// borrowProducers names the functions/methods whose []byte results are
// borrowed views: valid for the duration of the call that received
// them, owned by someone else's cache or pool. Matching is by name so
// the analyzer (and its testdata) needs no dependency on the real
// packages; the tree has exactly one producer per name.
var borrowProducers = map[string]bool{
	"CachedSlice": true, // videostore.Content: views into the content page cache
	"PageView":    true, // edge.Cache: views of immutable edge-cache page buffers
	"ReadBuf":     true, // netem.Conn: borrowed views of arrived segments, returned by Release
}

// borrowParamFuncs names the functions/methods whose slice parameters
// are borrowed: the CALLER retains ownership (or has itself borrowed
// the bytes), so an implementation may forward the slice down the
// delivery chain within the call but must not retain it — the
// legitimate final aliasing into delivery segments happens behind the
// netem pipe's stable-write boundary, under its own ownership protocol.
var borrowParamFuncs = map[string]bool{
	"WriteStable": true,
}

// spawnFuncs names call targets whose func-literal argument outlives
// the call on another goroutine or a timer wheel entry: capturing a
// borrowed view in one retains it beyond the call.
var spawnFuncs = map[string]bool{
	"Go":        true, // Clock.Go
	"NewTimer":  true, // Clock.NewTimer / Participant.NewTimer callbacks
	"AfterFunc": true,
}

// BorrowckAnalyzer enforces the borrowed-slice ownership rules of the
// zero-copy delivery path (netem/doc.go, "Pooling invariants"):
// Content.CachedSlice results, Conn.ReadBuf views (whose consumer end
// is Conn.Release), WriteStable arguments, and sync.Pool payload
// buffers alias memory someone else recycles or serves concurrently. Within each function it tracks values of those origins
// and flags retention beyond the call:
//
//   - assignment into a struct field, slice/map element, or package
//     variable (full borrows only — storing a pool buffer into an
//     owning struct IS the pool handoff protocol);
//   - capture by a closure handed to a go statement, Clock.Go, or a
//     timer (the closure runs after the call returns);
//   - append on a full borrow (spare capacity would let append write
//     into the shared backing array; appending into a pool buffer the
//     function itself just took from the pool is the owner's write);
//   - returning a full borrow from a function not itself named as a
//     borrow producer (hiding the borrow from the caller's analysis).
//
// The tracking is per-function and flow-insensitive by design: it
// catches the retention shapes that have actually bitten (and the ones
// review fears), not every conceivable laundering through interfaces.
var BorrowckAnalyzer = &Analyzer{
	Name: "borrowck",
	Doc:  "flag retention of borrowed views (CachedSlice results, WriteStable args, pooled payloads) beyond the call (netem/doc.go pooling invariants)",
	Run:  runBorrowck,
}

func runBorrowck(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkBorrowFunc(pass, fd)
			return false // FuncLits inside are analyzed as part of the decl
		})
	}
	return nil
}

type borrowKind int

const (
	notBorrowed borrowKind = iota
	fullBorrow             // CachedSlice views, WriteStable parameters
	poolBorrow             // sync.Pool buffers (ownership transfers by protocol)
)

func checkBorrowFunc(pass *Pass, fd *ast.FuncDecl) {
	borrowed := make(map[types.Object]borrowKind)

	// Seed: slice parameters of borrow-consuming functions.
	if borrowParamFuncs[fd.Name.Name] && fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				obj := pass.TypesInfo.Defs[name]
				if obj == nil {
					continue
				}
				if _, ok := obj.Type().Underlying().(*types.Slice); ok {
					borrowed[obj] = fullBorrow
				}
			}
		}
	}

	exprKind := func(e ast.Expr) borrowKind {
		return borrowExprKind(pass, borrowed, e)
	}

	// Propagate borrows through plain local assignments. Two passes so
	// the (rare) use-before-later-assignment chain still resolves; the
	// map only ever grows, so this is a cheap fixpoint.
	for i := 0; i < 2; i++ {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) > len(as.Rhs) && len(as.Rhs) != 1 {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := skipParens(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				var rhs ast.Expr
				if len(as.Rhs) == len(as.Lhs) {
					rhs = as.Rhs[i]
				} else if len(as.Rhs) == 1 && i == 0 {
					// v, ok := <borrow>.(T): track the value side only.
					rhs = as.Rhs[0]
				}
				if rhs == nil {
					continue
				}
				kind := exprKind(rhs)
				if kind == notBorrowed {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj != nil {
					borrowed[obj] = kind
				}
			}
			return true
		})
	}

	// Violation scan.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				if rhs == nil || exprKind(rhs) != fullBorrow {
					continue
				}
				switch target := skipParens(lhs).(type) {
				case *ast.SelectorExpr:
					pass.Reportf(n.Pos(), "borrowed view stored into field %s; it is only valid for the duration of the call (copy it, or own the buffer)", target.Sel.Name)
				case *ast.IndexExpr:
					pass.Reportf(n.Pos(), "borrowed view stored into a container element; it is only valid for the duration of the call (copy it, or own the buffer)")
				case *ast.Ident:
					if obj := pass.TypesInfo.Uses[target]; obj != nil && obj.Parent() == pass.Pkg.Scope() {
						pass.Reportf(n.Pos(), "borrowed view stored into package variable %s; it is only valid for the duration of the call", target.Name)
					}
				}
			}
		case *ast.CallExpr:
			// Append growth applies to full borrows only: appending into
			// a buffer this function itself took from a pool is the
			// normal owner write (httpx request assembly, seg buffers).
			if isBuiltinAppend(pass, n) && len(n.Args) > 0 {
				if root := rootIdent(n.Args[0]); root != nil {
					if obj := pass.TypesInfo.Uses[root]; obj != nil && borrowed[obj] == fullBorrow {
						pass.Reportf(n.Pos(), "append on borrowed slice %s can write into the shared backing array; copy it first", root.Name)
					}
				}
			}
			if fl := spawnedFuncLit(n); fl != nil {
				reportBorrowedCaptures(pass, borrowed, fl, "closure spawned via "+callName(n))
			}
		case *ast.GoStmt:
			if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
				reportBorrowedCaptures(pass, borrowed, fl, "go statement closure")
			}
		case *ast.ReturnStmt:
			if borrowProducers[fd.Name.Name] {
				return true // a declared producer hands borrows out on purpose
			}
			for _, res := range n.Results {
				if exprKind(res) == fullBorrow {
					pass.Reportf(n.Pos(), "borrowed view returned from %s; callers cannot see the borrow — copy it, or register the function as a borrow producer", fd.Name.Name)
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if exprKind(v) == fullBorrow {
					pass.Reportf(v.Pos(), "borrowed view stored into a composite literal; it is only valid for the duration of the call")
				}
			}
		}
		return true
	})
}

// borrowExprKind classifies an expression's borrow origin: a tracked
// ident, a reslice/paren/address of one, a call to a borrow producer,
// or a sync.Pool Get (possibly through a type assertion).
func borrowExprKind(pass *Pass, borrowed map[types.Object]borrowKind, e ast.Expr) borrowKind {
	switch e := e.(type) {
	case *ast.Ident:
		return borrowed[pass.TypesInfo.Uses[e]]
	case *ast.ParenExpr:
		return borrowExprKind(pass, borrowed, e.X)
	case *ast.SliceExpr:
		return borrowExprKind(pass, borrowed, e.X)
	case *ast.StarExpr:
		return borrowExprKind(pass, borrowed, e.X)
	case *ast.UnaryExpr:
		return borrowExprKind(pass, borrowed, e.X)
	case *ast.TypeAssertExpr:
		return borrowExprKind(pass, borrowed, e.X)
	case *ast.CallExpr:
		sel, ok := e.Fun.(*ast.SelectorExpr)
		if !ok {
			return notBorrowed
		}
		if borrowProducers[sel.Sel.Name] {
			return fullBorrow
		}
		if sel.Sel.Name == "Get" && isSyncPool(pass, sel.X) {
			return poolBorrow
		}
		return notBorrowed
	}
	return notBorrowed
}

func isSyncPool(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// spawnedFuncLit returns the func literal argument of a call whose
// callee name marks deferred execution (Clock.Go, NewTimer, ...).
func spawnedFuncLit(call *ast.CallExpr) *ast.FuncLit {
	name := callName(call)
	if !spawnFuncs[name] {
		return nil
	}
	for _, arg := range call.Args {
		if fl, ok := arg.(*ast.FuncLit); ok {
			return fl
		}
	}
	return nil
}

func callName(call *ast.CallExpr) string {
	switch f := skipParens(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

func reportBorrowedCaptures(pass *Pass, borrowed map[types.Object]borrowKind, fl *ast.FuncLit, how string) {
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj != nil && borrowed[obj] != notBorrowed {
			pass.Reportf(id.Pos(), "borrowed slice %s captured by %s outlives the call; copy the bytes before handing them off", id.Name, how)
		}
		return true
	})
}
