package detlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one detlint check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer so the suite can migrate to
// the real framework wholesale if the module ever grows the dependency.
type Analyzer struct {
	Name string // short lower-case identifier, used in //detlint:allow
	Doc  string // what the analyzer enforces and which doc.go rule it maps to
	Run  func(*Pass) error
}

// Pass carries one type-checked package unit through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, with its position already resolved.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// RunAnalyzers runs every analyzer over every package unit and returns
// the merged findings, deduplicated (the same file can be part of both
// a package and its test-augmented variant) and sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	seen := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				report: func(d Diagnostic) {
					key := d.String()
					if !seen[key] {
						seen[key] = true
						diags = append(diags, d)
					}
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkg.PkgPath, a.Name, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
