// Package detlint is a static-analysis suite that mechanically enforces
// the determinism and buffer-ownership invariants the emulation's
// bit-identical replay rests on. The rules themselves are prose in
// internal/netem/doc.go; every analyzer here names the rule it enforces,
// so the documentation and the tooling cannot drift apart:
//
//   - wallclock  — doc.go rule 1 (no invisible parks / wall-clock reads):
//     forbids time.Now, time.Sleep, time.After, time.Tick, time.Since,
//     time.Until, time.NewTimer, time.NewTicker, time.AfterFunc.
//     Emulated waiting and time reads must go through netem.Clock.
//   - baredgo    — doc.go rule 2 (spawns ride Clock.Go or a Hold):
//     forbids bare go statements in non-test files; a clock-invisible
//     goroutine makes virtual-time jumps race the handoff.
//   - globalrand — the seeded-RNG rule (see the rand audit in
//     netem/pipe.go and trace.go): forbids the process-global math/rand
//     functions; all randomness derives from the scenario seed via
//     rand.New(rand.NewSource(subseed)).
//   - maprange   — no map-iteration order in observable output: flags
//     range-over-map loops whose bodies write to an io.Writer, append to
//     an escaping slice without sorting it afterwards, or mutate
//     accounting state through fields and indexed elements.
//   - borrowck   — the borrowed-slice ownership rules from the zero-copy
//     path (doc.go "Pooling invariants"): flags retention of borrowed
//     views (Content.CachedSlice results, WriteStable arguments, pooled
//     payload buffers) beyond the call — struct-field assignment,
//     capture by spawned closures, append growth on the borrowed slice.
//
// Findings are suppressed, one call site at a time, with
//
//	//detlint:allow <analyzer>[,<analyzer>...] -- <reason>
//
// on the offending line or the line above it. The driver
// (cmd/detlint) honors the directive, reports how many findings each
// run suppressed, and warns about directives that suppress nothing;
// `cmd/detlint -suppressions` prints every directive in the tree so
// the full escape-hatch surface is auditable in review.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// API shapes (Analyzer / Pass / analysistest-style testdata with
// `// want` annotations) but is self-contained: the build environment
// is offline, so the loader resolves imports from the toolchain's own
// export data (go list -export) instead of pulling x/tools.
package detlint

// Analyzers returns the full suite in a fixed order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		WallclockAnalyzer,
		BaredgoAnalyzer,
		GlobalrandAnalyzer,
		MaprangeAnalyzer,
		BorrowckAnalyzer,
	}
}
