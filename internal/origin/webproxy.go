// Package origin emulates the YouTube service architecture MSPlayer
// talks to: web proxy servers that authenticate requests and return
// video metadata plus signed access tokens in JSON, and video servers
// that serve the actual bytes via HTTP range requests. A Cluster deploys
// replicated instances of both into multiple access networks over a
// netem Network, providing the source diversity the paper exploits.
package origin

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"time"

	"repro/internal/httpx"
	"repro/internal/netem"
	"repro/internal/videostore"
)

// FormatInfo is the JSON description of one downloadable format, the
// equivalent of a YouTube itag entry.
type FormatInfo struct {
	Itag          int    `json:"itag"`
	Quality       string `json:"quality"`
	MimeType      string `json:"mimeType"`
	Bitrate       int64  `json:"bitrate"`
	ContentLength int64  `json:"contentLength"`
}

// VideoInfo is the JSON object a web proxy returns for a watch request:
// everything the player needs to synthesize video-server URLs.
type VideoInfo struct {
	VideoID       string       `json:"videoId"`
	Title         string       `json:"title"`
	Author        string       `json:"author"`
	LengthSeconds int64        `json:"lengthSeconds"`
	Formats       []FormatInfo `json:"formats"`
	// VideoServers lists replica addresses in the network the request
	// arrived through, preferred server first.
	VideoServers []string `json:"videoServers"`
	// Network is the access network this metadata view belongs to.
	Network string `json:"network"`
	// Token authorizes videoplayback requests until Expire (Unix secs).
	Token  string `json:"token"`
	Expire int64  `json:"expire"`
	// ClientAddr echoes the requester's address, as YouTube embeds the
	// client's public IP in its URLs.
	ClientAddr string `json:"clientAddr"`
}

// WebProxy is the per-network metadata/authentication front end.
type WebProxy struct {
	network  string // access network served, e.g. "wifi"
	catalog  *videostore.Catalog
	servers  func() []string // live video-server addresses in the network
	secret   []byte
	tokenTTL time.Duration
	clock    *netem.Clock
	// ProcessDelay is extra request-handling time charged per watch
	// request (JSON assembly, signature encoding), separate from the
	// handshake Δ terms.
	processDelay time.Duration
}

// NewWebProxy builds a web proxy for one access network. servers must
// return the current replica list (first entry preferred).
func NewWebProxy(network string, catalog *videostore.Catalog, servers func() []string,
	secret []byte, ttl time.Duration, clock *netem.Clock, processDelay time.Duration) *WebProxy {
	if ttl <= 0 {
		ttl = TokenTTL
	}
	return &WebProxy{
		network: network, catalog: catalog, servers: servers,
		secret: secret, tokenTTL: ttl, clock: clock, processDelay: processDelay,
	}
}

// Handler returns the proxy's HTTP handler. It serves
// GET /watch?v=<11-char id> with a VideoInfo JSON document.
func (p *WebProxy) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/watch", p.handleWatch)
	return mux
}

func (p *WebProxy) handleWatch(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("v")
	v, err := p.catalog.Get(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	if p.processDelay > 0 {
		// Handlers run on the server's per-connection goroutine; charge
		// the think time through its clock handle when available.
		if cp := httpx.ConnParticipant(w); cp != nil {
			cp.Sleep(p.processDelay)
		} else {
			p.clock.Sleep(p.processDelay)
		}
	}
	expire := p.clock.Now().Add(p.tokenTTL)
	info := VideoInfo{
		VideoID:       v.ID,
		Title:         v.Title,
		Author:        v.Author,
		LengthSeconds: int64(v.Duration.Seconds()),
		VideoServers:  p.servers(),
		Network:       p.network,
		Token:         SignToken(p.secret, v.ID, expire, p.network),
		Expire:        expire.Unix(),
		ClientAddr:    r.RemoteAddr,
	}
	for _, f := range v.Formats {
		info.Formats = append(info.Formats, FormatInfo{
			Itag:          f.Itag,
			Quality:       f.Quality,
			MimeType:      f.MimeType,
			Bitrate:       f.Bitrate,
			ContentLength: v.Size(f),
		})
	}
	// Pad the response toward the ~20 packets of JSON the paper measures
	// for a watch request, so bootstrap timing is faithful.
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Padding", jsonPadding)
	if err := json.NewEncoder(w).Encode(info); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// jsonPadding inflates watch responses to a realistic size (YouTube's
// JSON payloads run to tens of kilobytes of player configuration).
var jsonPadding = func() string {
	b := make([]byte, 20*1024)
	for i := range b {
		b[i] = 'a' + byte(i%26)
	}
	return string(b)
}()

// PlaybackURL synthesizes the videoplayback URL for a given server
// address and format, as MSPlayer does after decoding the JSON.
func (info *VideoInfo) PlaybackURL(serverAddr string, itag int) string {
	q := url.Values{}
	q.Set("v", info.VideoID)
	q.Set("itag", fmt.Sprint(itag))
	q.Set("token", info.Token)
	q.Set("expire", fmt.Sprint(info.Expire))
	q.Set("net", info.Network)
	return fmt.Sprintf("http://%s/videoplayback?%s", serverAddr, q.Encode())
}

// ContentLengthFor returns the advertised size for itag, or an error if
// the format is absent.
func (info *VideoInfo) ContentLengthFor(itag int) (int64, error) {
	for _, f := range info.Formats {
		if f.Itag == itag {
			return f.ContentLength, nil
		}
	}
	return 0, fmt.Errorf("origin: itag %d not in video info", itag)
}
