package origin

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/httpx"
	"repro/internal/netem"
	"repro/internal/videostore"
)

// ThrottleConfig enables Trickle-style server pacing as deployed on
// YouTube video servers (Ghobadi et al., USENIX ATC'12): an unpaced
// initial burst followed by rate-limited delivery at a multiple of the
// video encoding rate. Off by default in the paper-reproduction
// experiments (the testbed servers are plain Apache), but implemented so
// its interaction with multi-source scheduling can be studied.
type ThrottleConfig struct {
	// BurstBytes are delivered unpaced at the start of each connection.
	BurstBytes int64
	// RateFactor paces subsequent bytes at RateFactor × format bitrate.
	RateFactor float64
}

// VideoServer serves video bytes for one replica. It validates access
// tokens minted by the network's web proxy and answers HTTP range
// requests exactly like the Apache servers in the paper's testbed.
type VideoServer struct {
	name     string // replica address, for logs/metrics
	network  string
	catalog  *videostore.Catalog
	secret   []byte
	clock    *netem.Clock
	throttle *ThrottleConfig
}

// NewVideoServer builds a replica for the given access network.
func NewVideoServer(name, network string, catalog *videostore.Catalog, secret []byte,
	clock *netem.Clock, throttle *ThrottleConfig) *VideoServer {
	return &VideoServer{name: name, network: network, catalog: catalog,
		secret: secret, clock: clock, throttle: throttle}
}

// Handler returns the server's HTTP handler, serving
// GET /videoplayback?v=<id>&itag=<n>&token=<t>&expire=<unix>&net=<name>.
func (s *VideoServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/videoplayback", s.handlePlayback)
	return mux
}

func (s *VideoServer) handlePlayback(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	id := q.Get("v")
	v, err := s.catalog.Get(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	if q.Get("net") != s.network {
		http.Error(w, fmt.Sprintf("origin: token network %q not valid on %q", q.Get("net"), s.network), http.StatusForbidden)
		return
	}
	if err := VerifyToken(s.secret, id, s.network, q.Get("token"), q.Get("expire"), s.clock.Now()); err != nil {
		http.Error(w, err.Error(), http.StatusForbidden)
		return
	}
	itag, err := strconv.Atoi(q.Get("itag"))
	if err != nil {
		http.Error(w, "origin: bad itag", http.StatusBadRequest)
		return
	}
	f, err := v.Format(itag)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("X-Replica", s.name)
	content := v.Content(f)
	if s.throttle != nil {
		w = &pacedWriter{ResponseWriter: w, clock: s.clock,
			part:  httpx.ConnParticipant(w),
			burst: s.throttle.BurstBytes,
			rate:  s.throttle.RateFactor * f.BytesPerSecond()}
	}
	if serveCachedRange(w, r, content) {
		return
	}
	http.ServeContent(w, r, v.ID+".mp4", time.Unix(0, 0), content)
}

// rangeChunk mirrors the 32 KB scratch io.Copy and the httpx response
// writer stream bodies through: serving cached page views in the same
// write-call sizes keeps every downstream behaviour that observes call
// granularity — Trickle pacing sleeps, bufio flush boundaries —
// identical to the ServeContent path.
const rangeChunk = 32 << 10

// serveCachedRange answers the hot-path playback request — a plain
// single-range GET, no preconditions, inside the content page cache —
// by writing borrowed page slices straight to the response, skipping
// ServeContent's per-request seek/copy machinery and its intermediate
// buffer fill. The wire output (status, headers, body bytes, write
// granularity) is byte-identical to http.ServeContent for this shape;
// everything else (suffix/open/multi ranges, 416s, preconditions,
// HEAD, beyond-cache tails) reports false and falls through.
func serveCachedRange(w http.ResponseWriter, r *http.Request, content *videostore.Content) bool {
	if r.Method != http.MethodGet {
		return false
	}
	h := r.Header
	if h.Get("If-Match") != "" || h.Get("If-Unmodified-Since") != "" ||
		h.Get("If-None-Match") != "" || h.Get("If-Modified-Since") != "" ||
		h.Get("If-Range") != "" {
		return false
	}
	from, to, ok := parsePlainRange(h.Get("Range"))
	size := content.Size()
	if !ok || to >= size || !content.Cached(from, to-from+1) {
		return false
	}
	hw := w.Header()
	hw.Set("Content-Type", "video/mp4")
	// No Last-Modified: ServeContent treats the Unix epoch modtime the
	// playback handler passes as "unknown" and omits the header.
	hw.Set("Accept-Ranges", "bytes")
	hw.Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", from, to, size))
	hw.Set("Content-Length", strconv.FormatInt(to-from+1, 10))
	w.WriteHeader(http.StatusPartialContent)
	// The body streams in the exact strides the ServeContent path
	// produced — 32 KB from the range start, unaligned — so write-call
	// observers stay oblivious. The common stride is a borrowed page
	// view written through the stable (copy-free) path; a stride
	// straddling a page edge goes through one pooled copy and a plain
	// write (the scratch buffer is reused, so it must not be aliased
	// into delivery segments) rather than perturbing the call sizes.
	sw, _ := w.(stableWriter)
	var scratch *[]byte
	for off := from; off <= to; {
		n := min(int64(rangeChunk), to-off+1)
		var err error
		if view := content.CachedSlice(off, int(n)); view != nil && sw != nil {
			_, err = sw.WriteStable(view)
		} else {
			if scratch == nil {
				scratch = rangeBufPool.Get().(*[]byte)
				defer rangeBufPool.Put(scratch)
			}
			buf := (*scratch)[:n]
			if _, rerr := content.ReadAt(buf, off); rerr != nil {
				return true
			}
			_, err = w.Write(buf)
		}
		if err != nil {
			return true // aborted mid-body; the conn is done either way
		}
		off += n
	}
	return true
}

// stableWriter is implemented by httpx response writers (and the paced
// wrapper) for body bytes that are immutable and outlive the response.
type stableWriter interface {
	WriteStable(b []byte) (int, error)
}

// rangeBufPool holds scratch for range strides that straddle a content
// page boundary.
var rangeBufPool = sync.Pool{
	New: func() any { b := make([]byte, rangeChunk); return &b },
}

// parsePlainRange parses exactly the closed single-range form the
// players send ("bytes=a-b", both ends explicit). Anything else —
// suffix, open-ended, multiple ranges, malformed — is left to
// ServeContent's full parser.
func parsePlainRange(s string) (from, to int64, ok bool) {
	const pfx = "bytes="
	if len(s) <= len(pfx) || s[:len(pfx)] != pfx {
		return 0, 0, false
	}
	dash := -1
	for i := len(pfx); i < len(s); i++ {
		if s[i] == '-' {
			dash = i
			break
		}
	}
	if dash < 0 {
		return 0, 0, false
	}
	var err error
	if from, err = strconv.ParseInt(s[len(pfx):dash], 10, 64); err != nil || from < 0 {
		return 0, 0, false
	}
	if to, err = strconv.ParseInt(s[dash+1:], 10, 64); err != nil || to < from {
		return 0, 0, false
	}
	return from, to, true
}

// pacedWriter implements the Trickle pacing on top of a ResponseWriter.
// Pacing sleeps run on the server's per-connection goroutine and park
// through its clock handle when one is available.
type pacedWriter struct {
	http.ResponseWriter
	clock *netem.Clock
	part  *netem.Participant
	burst int64
	rate  float64 // bytes/sec after the burst
	sent  int64
}

func (p *pacedWriter) Write(b []byte) (int, error) {
	p.pace(len(b))
	n, err := p.ResponseWriter.Write(b)
	p.sent += int64(n)
	return n, err
}

// WriteStable forwards stable (copy-free) writes with the same pacing
// as Write.
func (p *pacedWriter) WriteStable(b []byte) (int, error) {
	p.pace(len(b))
	var n int
	var err error
	if sw, ok := p.ResponseWriter.(stableWriter); ok {
		n, err = sw.WriteStable(b)
	} else {
		n, err = p.ResponseWriter.Write(b)
	}
	p.sent += int64(n)
	return n, err
}

func (p *pacedWriter) pace(n int) {
	if p.sent >= p.burst && p.rate > 0 {
		d := time.Duration(float64(n) / p.rate * float64(time.Second))
		if p.part != nil {
			p.part.Sleep(d)
		} else {
			p.clock.Sleep(d)
		}
	}
}
