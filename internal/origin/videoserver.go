package origin

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/httpx"
	"repro/internal/netem"
	"repro/internal/videostore"
)

// ThrottleConfig enables Trickle-style server pacing as deployed on
// YouTube video servers (Ghobadi et al., USENIX ATC'12): an unpaced
// initial burst followed by rate-limited delivery at a multiple of the
// video encoding rate. Off by default in the paper-reproduction
// experiments (the testbed servers are plain Apache), but implemented so
// its interaction with multi-source scheduling can be studied.
type ThrottleConfig struct {
	// BurstBytes are delivered unpaced at the start of each connection.
	BurstBytes int64
	// RateFactor paces subsequent bytes at RateFactor × format bitrate.
	RateFactor float64
}

// VideoServer serves video bytes for one replica. It validates access
// tokens minted by the network's web proxy and answers HTTP range
// requests exactly like the Apache servers in the paper's testbed.
type VideoServer struct {
	name     string // replica address, for logs/metrics
	network  string
	catalog  *videostore.Catalog
	secret   []byte
	clock    *netem.Clock
	throttle *ThrottleConfig
}

// NewVideoServer builds a replica for the given access network.
func NewVideoServer(name, network string, catalog *videostore.Catalog, secret []byte,
	clock *netem.Clock, throttle *ThrottleConfig) *VideoServer {
	return &VideoServer{name: name, network: network, catalog: catalog,
		secret: secret, clock: clock, throttle: throttle}
}

// Handler returns the server's HTTP handler, serving
// GET /videoplayback?v=<id>&itag=<n>&token=<t>&expire=<unix>&net=<name>.
func (s *VideoServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/videoplayback", s.handlePlayback)
	return mux
}

func (s *VideoServer) handlePlayback(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	id := q.Get("v")
	v, err := s.catalog.Get(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	if q.Get("net") != s.network {
		http.Error(w, fmt.Sprintf("origin: token network %q not valid on %q", q.Get("net"), s.network), http.StatusForbidden)
		return
	}
	if err := verifyToken(s.secret, id, s.network, q.Get("token"), q.Get("expire"), s.clock.Now()); err != nil {
		http.Error(w, err.Error(), http.StatusForbidden)
		return
	}
	itag, err := strconv.Atoi(q.Get("itag"))
	if err != nil {
		http.Error(w, "origin: bad itag", http.StatusBadRequest)
		return
	}
	f, err := v.Format(itag)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("X-Replica", s.name)
	content := v.Content(f)
	if s.throttle != nil {
		w = &pacedWriter{ResponseWriter: w, clock: s.clock,
			part:  httpx.ConnParticipant(w),
			burst: s.throttle.BurstBytes,
			rate:  s.throttle.RateFactor * f.BytesPerSecond()}
	}
	http.ServeContent(w, r, v.ID+".mp4", time.Unix(0, 0), content)
}

// pacedWriter implements the Trickle pacing on top of a ResponseWriter.
// Pacing sleeps run on the server's per-connection goroutine and park
// through its clock handle when one is available.
type pacedWriter struct {
	http.ResponseWriter
	clock *netem.Clock
	part  *netem.Participant
	burst int64
	rate  float64 // bytes/sec after the burst
	sent  int64
}

func (p *pacedWriter) Write(b []byte) (int, error) {
	if p.sent >= p.burst && p.rate > 0 {
		d := time.Duration(float64(len(b)) / p.rate * float64(time.Second))
		if p.part != nil {
			p.part.Sleep(d)
		} else {
			p.clock.Sleep(d)
		}
	}
	n, err := p.ResponseWriter.Write(b)
	p.sent += int64(n)
	return n, err
}
