package origin

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"repro/internal/httpx"
	"repro/internal/netem"
)

// loadTable runs one fixed workload against a cluster deployed with the
// given shard count and renders its Loads() books as text.
func loadTable(t *testing.T, shards int) string {
	t.Helper()
	cluster, n, wifi, lte := testDeployment(t, ClusterConfig{ReplicasPerNetwork: 3, Shards: shards})
	var wg sync.WaitGroup
	var werr error
	wg.Add(1)
	n.Clock().Go(func(p *netem.Participant) {
		defer wg.Done()
		werr = func() error {
			for _, side := range []struct {
				iface   *netem.Interface
				network string
			}{{wifi, "wifi"}, {lte, "lte"}} {
				tr := httpx.NewTransport(side.iface)
				tr.Bind(p)
				client := &http.Client{Transport: tr}
				info, err := fetchInfoErr(cluster, side.iface, side.network, "shortclip01", p)
				if err != nil {
					return fmt.Errorf("%s: %w", side.network, err)
				}
				for i, s := range info.VideoServers {
					// Uneven per-replica traffic, so a mis-merged table
					// can't pass by symmetry.
					if _, err := httpx.GetRange(context.Background(), client, info.PlaybackURL(s, 22), 0, int64(1000*(i+1))-1); err != nil {
						return fmt.Errorf("%s replica %s: %w", side.network, s, err)
					}
				}
				client.CloseIdleConnections()
			}
			return nil
		}()
	})
	wg.Wait()
	if werr != nil {
		t.Fatalf("shards=%d: %v", shards, werr)
	}
	if !cluster.Drain(nil) {
		t.Fatalf("shards=%d: cluster drain did not settle", shards)
	}
	var out string
	for _, l := range cluster.Loads() {
		out += fmt.Sprintf("%s %s %d %d %d %d\n", l.Addr, l.Network, l.Total, l.Bytes, l.Aborted, l.InFlight)
	}
	return out
}

// TestShardedLoadsMergeInDeploymentOrder pins the wire-invisibility of
// instance-table sharding: the same workload against 1, 3 and 8 shards
// must render identical Loads tables, ordered by global deployment
// sequence, with every byte attributed.
func TestShardedLoadsMergeInDeploymentOrder(t *testing.T) {
	base := loadTable(t, 1)
	if base == "" {
		t.Fatal("empty loads table")
	}
	for _, shards := range []int{3, 8} {
		if got := loadTable(t, shards); got != base {
			t.Errorf("shards=%d loads table diverged:\n--- shards=1\n%s--- shards=%d\n%s", shards, base, shards, got)
		}
	}
}
