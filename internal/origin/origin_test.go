package origin

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/handshake"
	"repro/internal/httpx"
	"repro/internal/netem"
	"repro/internal/videostore"
)

// testDeployment spins up a two-network cluster plus wifi/lte interfaces.
func testDeployment(t *testing.T, cfg ClusterConfig) (*Cluster, *netem.Network, *netem.Interface, *netem.Interface) {
	t.Helper()
	clock := netem.NewVirtualClock()
	t.Cleanup(clock.Stop)
	n := netem.NewNetwork(clock)
	c, err := Deploy(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	wifi := n.NewInterface("wifi",
		netem.LinkParams{Rate: netem.Mbps(36), Delay: 12 * time.Millisecond},
		netem.LinkParams{Rate: netem.Mbps(36), Delay: 12 * time.Millisecond})
	lte := n.NewInterface("lte",
		netem.LinkParams{Rate: netem.Mbps(30), Delay: 35 * time.Millisecond},
		netem.LinkParams{Rate: netem.Mbps(30), Delay: 35 * time.Millisecond})
	return c, n, wifi, lte
}

func fetchInfo(t *testing.T, cluster *Cluster, iface *netem.Interface, network, videoID string) *VideoInfo {
	t.Helper()
	client := httpx.NewClient(iface)
	proxy, err := cluster.ProxyAddr(network)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Get("http://" + proxy + "/watch?v=" + videoID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("watch status %d: %s", resp.StatusCode, body)
	}
	var info VideoInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return &info
}

func TestWatchReturnsPerNetworkMetadata(t *testing.T) {
	cluster, _, wifi, lte := testDeployment(t, ClusterConfig{})
	wifiInfo := fetchInfo(t, cluster, wifi, "wifi", "qjT4T2gU9sM")
	lteInfo := fetchInfo(t, cluster, lte, "lte", "qjT4T2gU9sM")

	if wifiInfo.Network != "wifi" || lteInfo.Network != "lte" {
		t.Fatalf("networks = %q/%q", wifiInfo.Network, lteInfo.Network)
	}
	if len(wifiInfo.VideoServers) != 2 || len(lteInfo.VideoServers) != 2 {
		t.Fatalf("replica counts = %d/%d, want 2/2", len(wifiInfo.VideoServers), len(lteInfo.VideoServers))
	}
	for _, s := range wifiInfo.VideoServers {
		if !strings.Contains(s, ".wifi.") {
			t.Errorf("wifi view leaked server %s", s)
		}
	}
	if wifiInfo.Token == lteInfo.Token {
		t.Error("tokens should be network bound")
	}
	if wifiInfo.LengthSeconds != 300 {
		t.Errorf("LengthSeconds = %d, want 300", wifiInfo.LengthSeconds)
	}
	if n, err := wifiInfo.ContentLengthFor(22); err != nil || n != videostore.HD720.BytesFor(5*time.Minute) {
		t.Errorf("ContentLengthFor(22) = %d, %v", n, err)
	}
	if _, err := wifiInfo.ContentLengthFor(999); err == nil {
		t.Error("ContentLengthFor of missing itag should fail")
	}
}

func TestWatchUnknownVideo404(t *testing.T) {
	cluster, _, wifi, _ := testDeployment(t, ClusterConfig{})
	client := httpx.NewClient(wifi)
	proxy, _ := cluster.ProxyAddr("wifi")
	resp, err := client.Get("http://" + proxy + "/watch?v=nosuchvideo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

func TestVideoPlaybackRangeAndContent(t *testing.T) {
	cluster, _, wifi, _ := testDeployment(t, ClusterConfig{})
	info := fetchInfo(t, cluster, wifi, "wifi", "shortclip01")
	url := info.PlaybackURL(info.VideoServers[0], 22)
	client := httpx.NewClient(wifi)

	body, err := httpx.GetRange(context.Background(), client, url, 1000, 4999)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != 4000 {
		t.Fatalf("range length = %d, want 4000", len(body))
	}
	// Bytes must match the deterministic catalog content.
	v, _ := videostore.DefaultCatalog().Get("shortclip01")
	want := make([]byte, 4000)
	v.Content(videostore.HD720).ReadAt(want, 1000)
	for i := range want {
		if body[i] != want[i] {
			t.Fatalf("content mismatch at %d", i)
		}
	}
}

func TestReplicasServeIdenticalBytes(t *testing.T) {
	cluster, _, wifi, _ := testDeployment(t, ClusterConfig{})
	info := fetchInfo(t, cluster, wifi, "wifi", "shortclip01")
	client := httpx.NewClient(wifi)
	var bodies [][]byte
	for _, s := range info.VideoServers {
		b, err := httpx.GetRange(context.Background(), client, info.PlaybackURL(s, 22), 500, 1499)
		if err != nil {
			t.Fatalf("replica %s: %v", s, err)
		}
		bodies = append(bodies, b)
	}
	for i := range bodies[0] {
		if bodies[0][i] != bodies[1][i] {
			t.Fatal("replicas disagree on bytes")
		}
	}
}

func TestTokenEnforcement(t *testing.T) {
	cluster, _, wifi, lte := testDeployment(t, ClusterConfig{})
	wifiInfo := fetchInfo(t, cluster, wifi, "wifi", "shortclip01")
	lteInfo := fetchInfo(t, cluster, lte, "lte", "shortclip01")
	client := httpx.NewClient(wifi)

	// A wifi-network token replayed against an LTE replica is rejected.
	cross := *lteInfo
	cross.Token = wifiInfo.Token
	cross.Network = "lte"
	if _, err := httpx.GetRange(context.Background(), client, cross.PlaybackURL(lteInfo.VideoServers[0], 22), 0, 99); err == nil {
		t.Fatal("cross-network token accepted")
	}
	// A forged token is rejected.
	forged := *wifiInfo
	forged.Token = strings.Repeat("ab", 32)
	if _, err := httpx.GetRange(context.Background(), client, forged.PlaybackURL(wifiInfo.VideoServers[0], 22), 0, 99); err == nil {
		t.Fatal("forged token accepted")
	}
	// The legitimate token works on its own network.
	if _, err := httpx.GetRange(context.Background(), client, wifiInfo.PlaybackURL(wifiInfo.VideoServers[0], 22), 0, 99); err != nil {
		t.Fatalf("legitimate token rejected: %v", err)
	}
}

func TestTokenExpiry(t *testing.T) {
	clock := netem.NewVirtualClock()
	defer clock.Stop()
	secret := []byte("s")
	now := clock.Now()
	expire := now.Add(time.Hour)
	tok := SignToken(secret, "shortclip01", expire, "wifi")
	if err := VerifyToken(secret, "shortclip01", "wifi", tok, itoa(expire.Unix()), now); err != nil {
		t.Fatalf("fresh token rejected: %v", err)
	}
	if err := VerifyToken(secret, "shortclip01", "wifi", tok, itoa(expire.Unix()), now.Add(2*time.Hour)); err == nil {
		t.Fatal("expired token accepted")
	}
	if err := VerifyToken(secret, "shortclip01", "wifi", tok, "notanumber", now); err == nil {
		t.Fatal("malformed expire accepted")
	}
}

func itoa(v int64) string { return strconv.FormatInt(v, 10) }

func TestKillRemovesReplicaFromWatch(t *testing.T) {
	cluster, _, wifi, _ := testDeployment(t, ClusterConfig{})
	before := fetchInfo(t, cluster, wifi, "wifi", "shortclip01")
	if len(before.VideoServers) != 2 {
		t.Fatalf("want 2 replicas, got %d", len(before.VideoServers))
	}
	if err := cluster.Kill(before.VideoServers[0]); err != nil {
		t.Fatal(err)
	}
	after := fetchInfo(t, cluster, wifi, "wifi", "shortclip01")
	if len(after.VideoServers) != 1 || after.VideoServers[0] != before.VideoServers[1] {
		t.Fatalf("replicas after kill = %v", after.VideoServers)
	}
	if err := cluster.Kill("nonexistent:443"); err == nil {
		t.Fatal("killing unknown server should fail")
	}
}

func TestThrottlePacesAfterBurst(t *testing.T) {
	throttled := ClusterConfig{Throttle: &ThrottleConfig{BurstBytes: 64 << 10, RateFactor: 1.25}}
	cluster, n, wifi, _ := testDeployment(t, throttled)
	info := fetchInfo(t, cluster, wifi, "wifi", "shortclip01")
	client := httpx.NewClient(wifi)
	url := info.PlaybackURL(info.VideoServers[0], 22)

	clock := n.Clock()
	start := clock.Now()
	// 1 MiB: 64 KiB burst + ~960 KiB paced at 1.25×312.5 KB/s ≈ 2.5 s.
	if _, err := httpx.GetRange(context.Background(), client, url, 0, 1<<20-1); err != nil {
		t.Fatal(err)
	}
	elapsed := clock.Now().Sub(start)
	if elapsed < 2*time.Second {
		t.Fatalf("throttled fetch took %v, want >= 2s", elapsed)
	}
}

func TestDNSViews(t *testing.T) {
	cluster, _, _, _ := testDeployment(t, ClusterConfig{})
	r := cluster.Resolver()
	wifiServers, err := r.Lookup("wifi", VideoServersName)
	if err != nil || len(wifiServers) != 2 {
		t.Fatalf("wifi lookup = %v, %v", wifiServers, err)
	}
	lteServers, _ := r.Lookup("lte", VideoServersName)
	if wifiServers[0] == lteServers[0] {
		t.Fatal("network views should differ")
	}
	if _, err := r.Lookup("ethernet", VideoServersName); err == nil {
		t.Fatal("unknown network view should fail")
	}
	if _, err := r.Lookup("wifi", "nope.test"); err == nil {
		t.Fatal("unknown name should fail")
	}
}

var _ = handshake.Params{} // keep import for doc cross-reference
