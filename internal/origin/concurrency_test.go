package origin

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/httpx"
	"repro/internal/netem"
	"repro/internal/videostore"
)

// decodeJSONBody decodes resp's JSON body into v, closing the body.
func decodeJSONBody(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// fetchInfoErr is fetchInfo with error return instead of t.Fatal, for
// use off the test goroutine.
func fetchInfoErr(cluster *Cluster, iface *netem.Interface, network, videoID string, cp *netem.Participant) (*VideoInfo, error) {
	tr := httpx.NewTransport(iface)
	tr.Bind(cp)
	client := &http.Client{Transport: tr}
	defer client.CloseIdleConnections()
	proxy, err := cluster.ProxyAddr(network)
	if err != nil {
		return nil, err
	}
	resp, err := client.Get("http://" + proxy + "/watch?v=" + videoID)
	if err != nil {
		return nil, err
	}
	var info VideoInfo
	if err := decodeJSONBody(resp, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// TestConcurrentWatchAndRange drives many concurrent clients — each with
// its own interface, as a fleet run does — against one shared Cluster:
// every watch must issue a working token, every range fetch must return
// the catalog's exact bytes, and the whole run must be race-clean.
func TestConcurrentWatchAndRange(t *testing.T) {
	const (
		clients        = 12
		rangesPerFetch = 3
	)
	clock := netem.NewVirtualClock()
	t.Cleanup(clock.Stop)
	n := netem.NewNetwork(clock)
	cluster, err := Deploy(n, ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)

	v, _ := videostore.DefaultCatalog().Get("shortclip01")
	content := v.Content(videostore.HD720)

	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		i := i
		network := "wifi"
		if i%2 == 1 {
			network = "lte"
		}
		iface := n.NewInterface(network,
			netem.LinkParams{Rate: netem.Mbps(20), Delay: 10 * time.Millisecond, Seed: int64(i)},
			netem.LinkParams{Rate: netem.Mbps(20), Delay: 10 * time.Millisecond, Seed: int64(i) + 7})
		wg.Add(1)
		clock.Go(func(cp *netem.Participant) {
			defer wg.Done()
			errs[i] = func() error {
				tr := httpx.NewTransport(iface)
				tr.Bind(cp)
				client := &http.Client{Transport: tr}
				defer client.CloseIdleConnections()
				proxy, err := cluster.ProxyAddr(network)
				if err != nil {
					return err
				}
				resp, err := client.Get("http://" + proxy + "/watch?v=shortclip01")
				if err != nil {
					return fmt.Errorf("watch: %w", err)
				}
				var info VideoInfo
				err = decodeJSONBody(resp, &info)
				if err != nil {
					return fmt.Errorf("decode: %w", err)
				}
				if info.Network != network {
					return fmt.Errorf("network = %q, want %q", info.Network, network)
				}
				if len(info.VideoServers) == 0 {
					return fmt.Errorf("no video servers")
				}
				// Tokens issued under contention must verify on every
				// replica of the issuing network.
				for r := 0; r < rangesPerFetch; r++ {
					server := info.VideoServers[r%len(info.VideoServers)]
					lo := int64(i*1000 + r*100)
					hi := lo + 499
					body, err := httpx.GetRange(context.Background(), client,
						info.PlaybackURL(server, 22), lo, hi)
					if err != nil {
						return fmt.Errorf("range %s [%d-%d]: %w", server, lo, hi, err)
					}
					want := make([]byte, hi-lo+1)
					content.ReadAt(want, lo)
					if len(body) != len(want) {
						return fmt.Errorf("range length = %d, want %d", len(body), len(want))
					}
					for j := range want {
						if body[j] != want[j] {
							return fmt.Errorf("content mismatch at offset %d", lo+int64(j))
						}
					}
				}
				return nil
			}()
		})
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", i, err)
		}
	}

	// Load accounting: every request must have been counted. Each client
	// closed its idle connections before returning, so the cluster's
	// drain barrier closes the books on the clock — no wall-clock
	// settle polling.
	if !cluster.Drain(nil) {
		t.Fatal("cluster drain did not settle")
	}
	loads := cluster.Loads()
	var total int64
	for _, l := range loads {
		if l.InFlight != 0 {
			t.Errorf("server %s: %d requests still in flight", l.Addr, l.InFlight)
		}
		if l.Total < 0 || int64(l.Peak) > l.Total {
			t.Errorf("server %s: inconsistent load %+v", l.Addr, l)
		}
		total += l.Total
	}
	want := int64(clients * (1 + rangesPerFetch)) // one watch + N ranges each
	if total != want {
		t.Errorf("total requests = %d, want %d", total, want)
	}
}

// TestConcurrentTokenIssuanceDistinct checks that tokens issued to
// different networks under contention stay network-bound.
func TestConcurrentTokenIssuanceDistinct(t *testing.T) {
	cluster, _, wifi, lte := testDeployment(t, ClusterConfig{})
	type out struct {
		info *VideoInfo
		err  error
	}
	results := make([]out, 8)
	var wg sync.WaitGroup
	for i := range results {
		i := i
		iface, network := wifi, "wifi"
		if i%2 == 1 {
			iface, network = lte, "lte"
		}
		wg.Add(1)
		cluster.net.Clock().Go(func(cp *netem.Participant) {
			defer wg.Done()
			info, err := fetchInfoErr(cluster, iface, network, "shortclip01", cp)
			results[i] = out{info, err}
		})
	}
	wg.Wait()
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("fetch %d: %v", i, r.err)
		}
	}
	// Cross-network replay must still fail even when both tokens were
	// minted in the same virtual instant.
	client := httpx.NewClient(wifi)
	defer client.CloseIdleConnections()
	wifiInfo, lteInfo := results[0].info, results[1].info
	cross := *lteInfo
	cross.Token = wifiInfo.Token
	if _, err := httpx.GetRange(context.Background(), client,
		cross.PlaybackURL(lteInfo.VideoServers[0], 22), 0, 99); err == nil {
		t.Fatal("cross-network token accepted")
	}
	if _, err := httpx.GetRange(context.Background(), client,
		wifiInfo.PlaybackURL(wifiInfo.VideoServers[0], 22), 0, 99); err != nil {
		t.Fatalf("legitimate token rejected: %v", err)
	}
}
