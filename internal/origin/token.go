package origin

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"time"
)

// TokenTTL is the default validity of an access token, matching the
// one-hour tokens issued by the YouTube web proxy servers.
const TokenTTL = time.Hour

// SignToken computes the HMAC-SHA256 access token binding a video, an
// expiry instant and the requesting network, mirroring how YouTube
// tokens bind the video, a deadline and the client's public IP.
// Exported so other emulated tiers of the deployment — the edge caches
// fronting the origin — can mint fill tokens for their backhaul
// requests with the shared cluster secret.
func SignToken(secret []byte, videoID string, expire time.Time, network string) string {
	mac := hmac.New(sha256.New, secret)
	fmt.Fprintf(mac, "%s|%d|%s", videoID, expire.Unix(), network)
	return hex.EncodeToString(mac.Sum(nil))
}

// VerifyToken checks token validity for the given video/network at
// emulated time now. It returns a descriptive error for expired or
// forged tokens so experiments can distinguish the two.
func VerifyToken(secret []byte, videoID, network, token, expireUnix string, now time.Time) error {
	exp, err := strconv.ParseInt(expireUnix, 10, 64)
	if err != nil {
		return fmt.Errorf("origin: malformed expire %q", expireUnix)
	}
	expire := time.Unix(exp, 0)
	if now.After(expire) {
		return fmt.Errorf("origin: token expired at %v", expire)
	}
	want := SignToken(secret, videoID, expire, network)
	if !hmac.Equal([]byte(want), []byte(token)) {
		return fmt.Errorf("origin: token signature mismatch")
	}
	return nil
}
