package origin

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"time"
)

// TokenTTL is the default validity of an access token, matching the
// one-hour tokens issued by the YouTube web proxy servers.
const TokenTTL = time.Hour

// signToken computes the HMAC-SHA256 access token binding a video, an
// expiry instant and the requesting network, mirroring how YouTube
// tokens bind the video, a deadline and the client's public IP.
func signToken(secret []byte, videoID string, expire time.Time, network string) string {
	mac := hmac.New(sha256.New, secret)
	fmt.Fprintf(mac, "%s|%d|%s", videoID, expire.Unix(), network)
	return hex.EncodeToString(mac.Sum(nil))
}

// verifyToken checks token validity for the given video/network at
// emulated time now. It returns a descriptive error for expired or
// forged tokens so experiments can distinguish the two.
func verifyToken(secret []byte, videoID, network, token, expireUnix string, now time.Time) error {
	exp, err := strconv.ParseInt(expireUnix, 10, 64)
	if err != nil {
		return fmt.Errorf("origin: malformed expire %q", expireUnix)
	}
	expire := time.Unix(exp, 0)
	if now.After(expire) {
		return fmt.Errorf("origin: token expired at %v", expire)
	}
	want := signToken(secret, videoID, expire, network)
	if !hmac.Equal([]byte(want), []byte(token)) {
		return fmt.Errorf("origin: token signature mismatch")
	}
	return nil
}
