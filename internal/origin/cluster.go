package origin

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/handshake"
	"repro/internal/httpx"
	"repro/internal/netem"
	"repro/internal/origin/dnsx"
	"repro/internal/videostore"
)

// WebProxyName and VideoServersName are the DNS names under which a
// Cluster registers its services in each network view.
const (
	WebProxyName     = "www.youtube.test"
	VideoServersName = "videoservers.youtube.test"
)

// ClusterConfig describes a full emulated YouTube deployment.
type ClusterConfig struct {
	// Catalog holds the served videos; DefaultCatalog if nil.
	Catalog *videostore.Catalog
	// Networks are the access networks to deploy into ("wifi", "lte").
	Networks []string
	// ReplicasPerNetwork is the number of video servers per network
	// (default 2, matching the paper's two UMass subnets with a primary
	// and a failover per network).
	ReplicasPerNetwork int
	// Handshake sets the Δ₁/Δ₂ processing delays of every server.
	Handshake handshake.Params
	// ServerDelay is the extra one-way delay to reach the servers beyond
	// the access link (server distance). Applied to web proxies and
	// video servers alike, as the paper assumes the proxy is close to
	// the video server.
	ServerDelay time.Duration
	// WatchDelay is the per-watch-request processing time at the proxy.
	WatchDelay time.Duration
	// TokenTTL overrides the one-hour default token validity.
	TokenTTL time.Duration
	// Throttle optionally enables Trickle-style pacing on video servers.
	Throttle *ThrottleConfig
	// Secret signs access tokens; a fixed default is used if empty.
	Secret []byte
	// Shards is the number of liveness/accounting shards the instance
	// table is spread over (default 4). Sharding is wire-invisible: it
	// only spreads the mutexes that liveReplicas/Kill contend on, and
	// Loads/Drain/Close merge the shard books back into deployment
	// order, so reports are byte-identical for any shard count.
	Shards int
	// EventLoop serves connections as event-loop state machines instead
	// of parked per-connection goroutines (httpx.WithEventLoop) on every
	// server whose handlers never park: web proxies when WatchDelay is
	// zero and video servers when Throttle is nil. Parking handlers keep
	// the blocking engine — the event engine runs handlers inline in
	// clock callbacks, which must not park. The engines are
	// wire-identical, so reports do not change with this knob.
	EventLoop bool
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.Catalog == nil {
		c.Catalog = videostore.DefaultCatalog()
	}
	if len(c.Networks) == 0 {
		c.Networks = []string{"wifi", "lte"}
	}
	if c.ReplicasPerNetwork == 0 {
		c.ReplicasPerNetwork = 2
	}
	if len(c.Secret) == 0 {
		c.Secret = []byte("msplayer-emulated-origin-secret")
	}
	if c.TokenTTL == 0 {
		c.TokenTTL = TokenTTL
	}
	if c.Shards == 0 {
		c.Shards = 4
	}
	return c
}

// Cluster is a running emulated YouTube deployment. Its instance table
// is split into shards — each shard owns the liveness map and deploy
// list of the instances hashed into it, under its own mutex — so the
// per-bootstrap liveReplicas lookups and kill/teardown sweeps of a
// population-scale fleet do not serialize on one cluster-wide lock.
// Reads that merge across shards (Loads, Drain, Close) re-order the
// per-shard books by global deployment sequence, so sharding never
// shows up in reports.
type Cluster struct {
	cfg      ClusterConfig
	net      *netem.Network
	resolver *dnsx.Resolver

	shards   []*clusterShard
	deployMu sync.Mutex              // orders start() calls (Deploy setup vs later Restarts)
	deployed int                     // instances started so far; guarded by deployMu
	proxies  map[string]string       // network -> proxy addr; immutable after Deploy
	byNet    map[string][]string     // network -> deployed video server addrs; immutable after Deploy
	handlers map[string]http.Handler // addr -> handler, for Restart; immutable after Deploy
	networks map[string]string       // addr -> network, for Restart; immutable after Deploy
	evented  map[string]bool         // addr -> serve on the event-loop engine; immutable after Deploy
}

// clusterShard owns a subset of the cluster's instances: their liveness
// map (addr -> live instance) and the shard-local deploy list.
type clusterShard struct {
	mu      sync.Mutex
	servers map[string]*serverInstance
	all     []*serverInstance
}

type serverInstance struct {
	addr    string
	network string
	seq     int // global deployment order, for merged snapshots
	srv     *httpx.Server
	load    serverLoad
}

// serverLoad is the per-server request accounting behind Cluster.Loads.
// Mutations ride the httpx request lifecycle hooks, which fire on the
// server's clock-registered per-connection goroutines: under the
// deterministic teardown pipeline every increment and decrement lands
// at a deterministic emulated instant, so totals (and the Aborted
// disposition) are exact per seed once the cluster has drained.
type serverLoad struct {
	mu       sync.Mutex
	inFlight int
	peak     int
	total    int64
	bytes    int64
	aborted  int64
}

func (l *serverLoad) start(*http.Request) {
	l.mu.Lock()
	l.inFlight++
	l.total++
	if l.inFlight > l.peak {
		l.peak = l.inFlight
	}
	l.mu.Unlock()
}

func (l *serverLoad) done(_ *http.Request, bodyBytes int64, aborted bool) {
	l.mu.Lock()
	l.inFlight--
	l.bytes += bodyBytes
	if aborted {
		l.aborted++
	}
	l.mu.Unlock()
}

// ServerLoad is a snapshot of one server's request accounting.
type ServerLoad struct {
	// Addr and Network identify the server.
	Addr    string
	Network string
	// InFlight is the number of requests currently being handled. After
	// Cluster.Drain it is always zero.
	InFlight int
	// Peak is the maximum observed concurrent in-flight count. Note that
	// requests whose emulated service intervals merely touch at a
	// boundary instant may or may not be counted as concurrent, so Peak
	// is a diagnostic rather than a deterministic metric.
	Peak int
	// Total counts every request the server has started handling.
	Total int64
	// Bytes counts the response body bytes produced across requests,
	// including the partial bodies of aborted requests (exact up to the
	// deterministic abort instant).
	Bytes int64
	// Aborted counts requests with the Aborted disposition: the response
	// never reached the client intact because the connection failed
	// mid-response — session teardown, interface loss, or a server kill.
	// Completed minus aborted request work is Total - Aborted.
	Aborted int64
}

// Deploy builds and starts a cluster on n.
func Deploy(n *netem.Network, cfg ClusterConfig) (*Cluster, error) {
	cfg = cfg.withDefaults()
	c := &Cluster{
		cfg:      cfg,
		net:      n,
		resolver: dnsx.NewResolver(),
		shards:   make([]*clusterShard, cfg.Shards),
		proxies:  make(map[string]string),
		byNet:    make(map[string][]string),
		handlers: make(map[string]http.Handler),
		networks: make(map[string]string),
		evented:  make(map[string]bool),
	}
	for i := range c.shards {
		c.shards[i] = &clusterShard{servers: make(map[string]*serverInstance)}
	}
	for _, network := range cfg.Networks {
		proxyAddr := fmt.Sprintf("www.youtube.%s.test:443", network)
		var replicas []string
		for i := 1; i <= cfg.ReplicasPerNetwork; i++ {
			replicas = append(replicas, fmt.Sprintf("video%d.youtube.%s.test:443", i, network))
		}
		c.byNet[network] = replicas
		c.proxies[network] = proxyAddr

		network := network // capture
		proxy := NewWebProxy(network, cfg.Catalog, func() []string { return c.liveReplicas(network) },
			cfg.Secret, cfg.TokenTTL, n.Clock(), cfg.WatchDelay)
		if err := c.start(proxyAddr, network, proxy.Handler(), cfg.EventLoop && cfg.WatchDelay == 0); err != nil {
			c.Close()
			return nil, err
		}
		for _, addr := range replicas {
			vs := NewVideoServer(addr, network, cfg.Catalog, cfg.Secret, n.Clock(), cfg.Throttle)
			if err := c.start(addr, network, vs.Handler(), cfg.EventLoop && cfg.Throttle == nil); err != nil {
				c.Close()
				return nil, err
			}
		}
		c.resolver.Register(network, WebProxyName, []string{proxyAddr})
		c.resolver.Register(network, VideoServersName, replicas)
	}
	return c, nil
}

// shardFor maps a server address onto its owning shard (FNV-1a).
func (c *Cluster) shardFor(addr string) *clusterShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= prime64
	}
	return c.shards[h%uint64(len(c.shards))]
}

// snapshot gathers every instance ever started across the shards and
// restores global deployment order, so merged views (Loads, Drain,
// Close) are independent of how addresses hashed into shards.
func (c *Cluster) snapshot() []*serverInstance {
	var insts []*serverInstance
	for _, sh := range c.shards {
		sh.mu.Lock()
		insts = append(insts, sh.all...)
		sh.mu.Unlock()
	}
	sort.Slice(insts, func(i, j int) bool { return insts[i].seq < insts[j].seq })
	return insts
}

func (c *Cluster) start(addr, network string, h http.Handler, evented bool) error {
	inner, err := c.net.Listen(addr, c.cfg.ServerDelay)
	if err != nil {
		return fmt.Errorf("origin: listen %s: %w", addr, err)
	}
	c.deployMu.Lock()
	inst := &serverInstance{addr: addr, network: network, seq: c.deployed}
	c.deployed++
	c.handlers[addr] = h
	c.networks[addr] = network
	c.evented[addr] = evented
	c.deployMu.Unlock()
	// httpx.Serve runs the whole server side — handshake processing,
	// request reads, response writes — on clock-registered goroutines,
	// keeping the virtual clock's waiter accounting exact. The request
	// lifecycle hooks feed the instance's load accounting (including
	// the Aborted disposition and body byte attribution), so per-server
	// utilisation is observable (Cluster.Loads) and exact under
	// population-scale concurrent fleets. With evented, the same server
	// side runs as per-connection state machines on the event loop.
	opts := []httpx.ServerOption{httpx.WithRequestHooks(inst.load.start, inst.load.done)}
	if evented {
		opts = append(opts, httpx.WithEventLoop())
	}
	inst.srv = httpx.Serve(c.net.Clock(), inner, h, c.cfg.Handshake, opts...)
	sh := c.shardFor(addr)
	sh.mu.Lock()
	sh.servers[addr] = inst
	sh.all = append(sh.all, inst)
	sh.mu.Unlock()
	return nil
}

// Loads snapshots per-server request accounting, merging the per-shard
// books back into deployment order. Killed servers stay in the snapshot
// with their final totals.
func (c *Cluster) Loads() []ServerLoad {
	insts := c.snapshot()
	out := make([]ServerLoad, 0, len(insts))
	for _, inst := range insts {
		inst.load.mu.Lock()
		out = append(out, ServerLoad{
			Addr:     inst.addr,
			Network:  inst.network,
			InFlight: inst.load.inFlight,
			Peak:     inst.load.peak,
			Total:    inst.load.total,
			Bytes:    inst.load.bytes,
			Aborted:  inst.load.aborted,
		})
		inst.load.mu.Unlock()
	}
	return out
}

// Drain parks the caller until every server's per-connection loops have
// unwound, joining them on the emulation clock (p may be nil to park as
// a transient). Call it after every client is gone or shut down — e.g.
// after a fleet's sessions have torn down their transports — and before
// sampling Loads: a true return guarantees InFlight is zero everywhere
// and every request's disposition has been recorded, so one Loads call
// observes final, exact books. Returns false when the emulation clock
// stopped before the books closed.
func (c *Cluster) Drain(p *netem.Participant) bool {
	settled := true
	for _, inst := range c.snapshot() {
		if !inst.srv.Drain(p) {
			settled = false
		}
	}
	return settled
}

// liveReplicas returns the not-killed video servers of a network,
// preferred order preserved. The per-network address list is immutable
// after Deploy; only the per-address liveness check takes the owning
// shard's lock, so concurrent bootstraps spread across shards instead
// of serializing on one cluster mutex.
func (c *Cluster) liveReplicas(network string) []string {
	var live []string
	for _, addr := range c.byNet[network] {
		sh := c.shardFor(addr)
		sh.mu.Lock()
		_, ok := sh.servers[addr]
		sh.mu.Unlock()
		if ok {
			live = append(live, addr)
		}
	}
	return live
}

// Resolver returns the cluster's per-network DNS views.
func (c *Cluster) Resolver() *dnsx.Resolver { return c.resolver }

// Secret returns the token-signing secret, so co-operating tiers (edge
// caches) can validate client tokens and mint backhaul fill tokens.
func (c *Cluster) Secret() []byte { return c.cfg.Secret }

// Catalog returns the deployed video catalog.
func (c *Cluster) Catalog() *videostore.Catalog { return c.cfg.Catalog }

// TokenTTL returns the effective access-token validity.
func (c *Cluster) TokenTTL() time.Duration { return c.cfg.TokenTTL }

// ProxyAddr returns the web proxy address for a network.
func (c *Cluster) ProxyAddr(network string) (string, error) {
	addr, ok := c.proxies[network]
	if !ok {
		return "", fmt.Errorf("origin: no proxy for network %q", network)
	}
	return addr, nil
}

// VideoServerAddrs returns the live video server addresses of a network.
func (c *Cluster) VideoServerAddrs(network string) []string {
	return c.liveReplicas(network)
}

// Kill shuts down the server at addr, aborting its connections with
// netem.ErrServerDown. Subsequent watch responses omit the replica.
func (c *Cluster) Kill(addr string) error {
	sh := c.shardFor(addr)
	sh.mu.Lock()
	inst, ok := sh.servers[addr]
	if ok {
		delete(sh.servers, addr)
	}
	sh.mu.Unlock()
	if !ok {
		return fmt.Errorf("origin: unknown server %q", addr)
	}
	inst.srv.Close()
	return nil
}

// Restart re-deploys a previously killed server at addr: a fresh
// listener on the same address, a fresh httpx server over the original
// handler, and a fresh accounting instance appended to the deployment
// sequence (the killed instance keeps its final books in Loads, so a
// crash/recovery cycle is visible as two rows). The replica re-enters
// liveReplicas — and therefore subsequent watch responses — at the
// instant Restart runs. Safe to call from a netem.Timer callback: the
// listen and accept-loop spawn never park.
func (c *Cluster) Restart(addr string) error {
	c.deployMu.Lock()
	h, ok := c.handlers[addr]
	network := c.networks[addr]
	evented := c.evented[addr]
	c.deployMu.Unlock()
	if !ok {
		return fmt.Errorf("origin: server %q was never deployed", addr)
	}
	sh := c.shardFor(addr)
	sh.mu.Lock()
	_, live := sh.servers[addr]
	sh.mu.Unlock()
	if live {
		return fmt.Errorf("origin: server %q is already running", addr)
	}
	return c.start(addr, network, h, evented)
}

// Alive reports whether the server at addr is currently live (deployed
// and not killed). Safe to call from a netem.Timer callback: it never
// parks.
func (c *Cluster) Alive(addr string) bool {
	sh := c.shardFor(addr)
	sh.mu.Lock()
	_, live := sh.servers[addr]
	sh.mu.Unlock()
	return live
}

// Blackhole switches the wedged-process fault of the live server at
// addr: on, it keeps accepting connections and reading requests but
// never responds (see httpx.Server.SetBlackhole). Unlike Kill the
// replica stays in liveReplicas — clients discover the fault only by
// request deadline, which is the point.
func (c *Cluster) Blackhole(addr string, on bool) error {
	sh := c.shardFor(addr)
	sh.mu.Lock()
	inst, ok := sh.servers[addr]
	sh.mu.Unlock()
	if !ok {
		return fmt.Errorf("origin: unknown server %q", addr)
	}
	inst.srv.SetBlackhole(on)
	return nil
}

// Close shuts down every server in the cluster, in deployment order:
// teardown is part of the deterministic model too, so the close sweep
// must not run in map-iteration order.
func (c *Cluster) Close() {
	var insts []*serverInstance
	for _, sh := range c.shards {
		sh.mu.Lock()
		for _, inst := range sh.all {
			if _, live := sh.servers[inst.addr]; live {
				insts = append(insts, inst)
			}
		}
		sh.servers = make(map[string]*serverInstance)
		sh.mu.Unlock()
	}
	sort.Slice(insts, func(i, j int) bool { return insts[i].seq < insts[j].seq })
	for _, inst := range insts {
		inst.srv.Close()
	}
}
