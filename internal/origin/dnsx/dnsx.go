// Package dnsx emulates the per-network DNS views MSPlayer relies on:
// resolving a YouTube server name through different access networks
// yields different, network-local replica addresses. The paper uses
// Google's public DNS per interface for this; here a Resolver holds an
// explicit view per network.
package dnsx

import (
	"fmt"
	"sort"
	"sync"
)

// Resolver maps (network, name) to a list of replica addresses. The
// first address is the preferred server; the rest are failover
// candidates in the same network.
type Resolver struct {
	mu    sync.RWMutex
	views map[string]map[string][]string // network -> name -> addrs
}

// NewResolver returns an empty resolver.
func NewResolver() *Resolver {
	return &Resolver{views: make(map[string]map[string][]string)}
}

// Register installs addrs as the answer for name in the given network
// view, replacing any previous answer.
func (r *Resolver) Register(network, name string, addrs []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.views[network]
	if !ok {
		v = make(map[string][]string)
		r.views[network] = v
	}
	v[name] = append([]string(nil), addrs...)
}

// Lookup resolves name through the given network's view.
func (r *Resolver) Lookup(network, name string) ([]string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.views[network]
	if !ok {
		return nil, fmt.Errorf("dnsx: no view for network %q", network)
	}
	addrs, ok := v[name]
	if !ok || len(addrs) == 0 {
		return nil, fmt.Errorf("dnsx: %q not found in network %q", name, network)
	}
	return append([]string(nil), addrs...), nil
}

// Networks returns the registered network views, sorted so the listing
// is stable across runs rather than map-iteration-ordered.
func (r *Resolver) Networks() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	nets := make([]string, 0, len(r.views))
	for n := range r.views {
		nets = append(nets, n)
	}
	sort.Strings(nets)
	return nets
}
