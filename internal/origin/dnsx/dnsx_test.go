package dnsx

import (
	"sort"
	"testing"
)

func TestRegisterAndLookup(t *testing.T) {
	r := NewResolver()
	r.Register("wifi", "video.test", []string{"a:443", "b:443"})
	r.Register("lte", "video.test", []string{"c:443"})

	got, err := r.Lookup("wifi", "video.test")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "a:443" || got[1] != "b:443" {
		t.Fatalf("wifi answer = %v", got)
	}
	got, err = r.Lookup("lte", "video.test")
	if err != nil || len(got) != 1 || got[0] != "c:443" {
		t.Fatalf("lte answer = %v, %v", got, err)
	}
}

func TestLookupErrors(t *testing.T) {
	r := NewResolver()
	r.Register("wifi", "video.test", []string{"a:443"})
	if _, err := r.Lookup("lte", "video.test"); err == nil {
		t.Fatal("unknown network accepted")
	}
	if _, err := r.Lookup("wifi", "other.test"); err == nil {
		t.Fatal("unknown name accepted")
	}
	r.Register("wifi", "empty.test", nil)
	if _, err := r.Lookup("wifi", "empty.test"); err == nil {
		t.Fatal("empty answer accepted")
	}
}

func TestRegisterReplaces(t *testing.T) {
	r := NewResolver()
	r.Register("wifi", "video.test", []string{"a:443", "b:443"})
	r.Register("wifi", "video.test", []string{"b:443"})
	got, _ := r.Lookup("wifi", "video.test")
	if len(got) != 1 || got[0] != "b:443" {
		t.Fatalf("answer after replace = %v", got)
	}
}

func TestLookupReturnsCopy(t *testing.T) {
	r := NewResolver()
	r.Register("wifi", "video.test", []string{"a:443", "b:443"})
	got, _ := r.Lookup("wifi", "video.test")
	got[0] = "tampered"
	again, _ := r.Lookup("wifi", "video.test")
	if again[0] != "a:443" {
		t.Fatal("lookup result aliased internal state")
	}
}

func TestNetworks(t *testing.T) {
	r := NewResolver()
	if len(r.Networks()) != 0 {
		t.Fatal("fresh resolver has networks")
	}
	r.Register("wifi", "x", []string{"a"})
	r.Register("lte", "x", []string{"b"})
	nets := r.Networks()
	sort.Strings(nets)
	if len(nets) != 2 || nets[0] != "lte" || nets[1] != "wifi" {
		t.Fatalf("networks = %v", nets)
	}
}
