package httpx

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	neturl "net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/handshake"
	"repro/internal/netem"
)

// clientDriver abstracts the two client engines behind one
// continuation-passing workload so the cross-engine test runs the
// identical step sequence on both. The blocking driver executes each
// step synchronously on a participant goroutine; the evented driver
// chains the steps through completion callbacks on the loop.
type clientDriver interface {
	sleepUntil(at time.Time, then func())
	get(url string, then func())
	rangeGet(url string, from, to int64, then func())
	setTimeout(d time.Duration)
	shutdown(err error)
	do(step func(), then func()) // run an arbitrary non-parking step
}

func byteSum(bs ...[]byte) (int, uint64) {
	n := 0
	var sum uint64
	for _, b := range bs {
		n += len(b)
		for _, c := range b {
			sum = sum*131 + uint64(c)
		}
	}
	return n, sum
}

// clientWorkload is the shared step script: range transfers with
// keep-alive reuse, a chunked 200 collect, a discarded 404, an
// oversized non-206 error body, a request deadline against a
// blackholed server, a dead-pooled-conn retry against a closed
// server, and a mid-transfer shutdown.
func clientWorkload(d clientDriver, epoch time.Time, srv2 *Server, setBlackhole func(bool), done func()) {
	origin := "http://origin.test:443"
	flaky := "http://flaky.test:443"
	at := func(off time.Duration) time.Time { return epoch.Add(off) }
	d.sleepUntil(at(0), func() {
		d.rangeGet(origin+"/video", 0, 256<<10-1, func() { // fresh dial, slow start
			d.rangeGet(origin+"/video", 256<<10, 384<<10-1, func() { // keep-alive reuse
				d.sleepUntil(at(2*time.Second), func() {
					d.get(origin+"/watch", func() { // chunked 200, reuses the pooled conn
						d.sleepUntil(at(3*time.Second), func() {
							d.get(origin+"/nope", func() { // 404: body discarded unread
								d.sleepUntil(at(4*time.Second), func() {
									// Non-206 range: the >512-byte chunked error
									// body is truncated into the StatusError.
									d.rangeGet(origin+"/watch", 0, 8<<10-1, func() {
										d.sleepUntil(at(5*time.Second), func() {
											d.rangeGet(origin+"/video", 400<<10, 464<<10-1, func() { // repopulate the pool
												d.sleepUntil(at(6*time.Second), func() {
													d.setTimeout(1500 * time.Millisecond)
													setBlackhole(true)
													// Reused conn stalls at the response head,
													// the deadline retries once on a fresh dial,
													// and the retry stalls in the handshake.
													d.rangeGet(origin+"/video", 512<<10, 768<<10-1, func() {
														d.setTimeout(0)
														setBlackhole(false)
														d.sleepUntil(at(10*time.Second), func() {
															d.rangeGet(origin+"/video", 100<<10, 200<<10, func() { // healthy again
																d.sleepUntil(at(12*time.Second), func() {
																	d.get(flaky+"/watch", func() { // pool a conn to the flaky server
																		d.sleepUntil(at(13*time.Second), func() {
																			d.do(func() { srv2.Close() }, func() {
																				d.sleepUntil(at(14*time.Second), func() {
																					// Dead pooled conn: retry once, then
																					// the redial is refused.
																					d.get(flaky+"/watch", func() {
																						d.sleepUntil(at(16*time.Second), func() {
																							// Shutdown at 16.2s aborts this
																							// transfer mid-body.
																							d.rangeGet(origin+"/video", 0, 512<<10-1, func() {
																								d.sleepUntil(at(17*time.Second), func() {
																									d.rangeGet(origin+"/video", 0, 1023, done)
																								})
																							})
																						})
																					})
																				})
																			})
																		})
																	})
																})
															})
														})
													})
												})
											})
										})
									})
								})
							})
						})
					})
				})
			})
		})
	})
}

// blockingClientDriver runs the workload on the blocking Transport.
type blockingClientDriver struct {
	p      *netem.Participant
	clock  *netem.Clock
	tr     *Transport
	client *http.Client
	record func(format string, args ...any)
}

// unwrapURL strips http.Client's *url.Error wrapper so recorded
// errors compare against the evented engine's raw transport errors.
func unwrapURL(err error) error {
	var ue *neturl.Error
	if errors.As(err, &ue) {
		return ue.Err
	}
	return err
}

func (d *blockingClientDriver) sleepUntil(at time.Time, then func()) {
	d.p.SleepUntil(at)
	then()
}

func (d *blockingClientDriver) do(step func(), then func()) { step(); then() }

func (d *blockingClientDriver) setTimeout(t time.Duration) { d.tr.SetRequestTimeout(t) }

func (d *blockingClientDriver) shutdown(err error) { d.tr.Shutdown(err) }

func (d *blockingClientDriver) get(url string, then func()) {
	defer then()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		d.record("get %s err=%v", url, err)
		return
	}
	resp, err := d.tr.RoundTrip(req)
	if err != nil {
		d.record("get %s err=%v", url, err)
		return
	}
	if resp.StatusCode != http.StatusOK {
		// Mirror core's fetchInfo: a non-200 body is closed unread.
		resp.Body.Close()
		d.record("get %s status=%d", url, resp.StatusCode)
		return
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		d.record("get %s err=%v", url, rerr)
		return
	}
	n, sum := byteSum(body)
	d.record("get %s status=200 len=%d sum=%d", url, n, sum)
}

func (d *blockingClientDriver) rangeGet(url string, from, to int64, then func()) {
	defer then()
	buf := make([]byte, to-from+1)
	data, err := GetRangeBuf(context.Background(), d.client, url, from, to, buf)
	if err != nil {
		d.record("range %s %d-%d err=%v", url, from, to, unwrapURL(err))
		return
	}
	n, sum := byteSum(data)
	d.record("range %s %d-%d len=%d sum=%d", url, from, to, n, sum)
}

// eventClientDriver runs the workload on the EventTransport: every
// step is a loop step, sleeps are clock timers, and the chained
// continuations fire from completion callbacks.
type eventClientDriver struct {
	clock  *netem.Clock
	loop   *netem.Loop
	et     *EventTransport
	record func(format string, args ...any)
}

func (d *eventClientDriver) sleepUntil(at time.Time, then func()) {
	d.clock.NewTimer(func() { d.loop.Do(then) }).Schedule(at)
}

func (d *eventClientDriver) do(step func(), then func()) { step(); then() }

func (d *eventClientDriver) setTimeout(t time.Duration) { d.et.SetRequestTimeout(t) }

func (d *eventClientDriver) shutdown(err error) { d.et.Shutdown(err) }

func (d *eventClientDriver) get(url string, then func()) {
	d.et.Get(url, func(status int, body []byte, err error) {
		defer then()
		if err != nil {
			d.record("get %s err=%v", url, err)
			return
		}
		if status != http.StatusOK {
			d.record("get %s status=%d", url, status)
			return
		}
		n, sum := byteSum(body)
		d.record("get %s status=200 len=%d sum=%d", url, n, sum)
	})
}

func (d *eventClientDriver) rangeGet(url string, from, to int64, then func()) {
	d.et.GetRangeViews(url, from, to, func(views [][]byte, release func(), err error) {
		defer then()
		if err != nil {
			d.record("range %s %d-%d err=%v", url, from, to, err)
			return
		}
		n, sum := byteSum(views...)
		release()
		d.record("range %s %d-%d len=%d sum=%d", url, from, to, n, sum)
	})
}

// clientEngineTrace runs the shared workload on one client engine
// against the same pair of servers and returns the sorted trace of
// response bytes, statuses, errors and their virtual instants.
func clientEngineTrace(t *testing.T, evented bool) []string {
	t.Helper()
	clock := netem.NewVirtualClock()
	defer clock.Stop()
	n := netem.NewNetwork(clock)
	inner, err := n.Listen("origin.test:443", 0)
	if err != nil {
		t.Fatal(err)
	}
	inner2, err := n.Listen("flaky.test:443", 0)
	if err != nil {
		t.Fatal(err)
	}
	epoch := clock.Now()

	var mu sync.Mutex
	var trace []string
	record := func(format string, args ...any) {
		mu.Lock()
		trace = append(trace, fmt.Sprintf("%v "+format,
			append([]any{clock.Now().Sub(epoch)}, args...)...))
		mu.Unlock()
	}

	content := make([]byte, 1<<20)
	for i := range content {
		content[i] = byte(i*37 + i>>9)
	}
	watchBody := []byte("{\"pad\":\"" + strings.Repeat("w", 2000) + "\"}\n")

	type stableW interface {
		WriteStable([]byte) (int, error)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/video", func(w http.ResponseWriter, r *http.Request) {
		var from, to int64
		if _, err := fmt.Sscanf(r.Header.Get("Range"), "bytes=%d-%d", &from, &to); err != nil ||
			from < 0 || to >= int64(len(content)) || to < from {
			http.Error(w, "bad range", http.StatusRequestedRangeNotSatisfiable)
			return
		}
		w.Header().Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", from, to, len(content)))
		w.Header().Set("Content-Length", strconv.FormatInt(to-from+1, 10))
		w.WriteHeader(http.StatusPartialContent)
		w.(stableW).WriteStable(content[from : to+1])
	})
	mux.HandleFunc("/watch", func(w http.ResponseWriter, r *http.Request) {
		w.Write(watchBody) // no Content-Length: chunked, terminal frame on close
	})

	hs := handshake.Params{Delta1: 4 * time.Millisecond, Delta2: 3 * time.Millisecond}
	srv := Serve(clock, inner, mux, hs)
	defer srv.Close()
	srv2 := Serve(clock, inner2, mux, hs)
	defer srv2.Close()

	lp := netem.LinkParams{
		Rate: netem.Mbps(8), Delay: 25 * time.Millisecond,
		SlowStart: true, Jitter: 2 * time.Millisecond,
		LossProb: 0.01, RTOPenalty: 120 * time.Millisecond,
		SendBuf: 32 << 10, Seed: 7,
	}
	iface := n.NewInterface("cli", lp, lp)

	errSession := errors.New("session over")
	done := make(chan struct{})
	if evented {
		loop := netem.NewLoop()
		et := NewEventTransport(iface, clock, loop)
		clock.NewTimer(func() { loop.Do(func() { et.Shutdown(errSession) }) }).
			Schedule(epoch.Add(16*time.Second + 200*time.Millisecond))
		d := &eventClientDriver{clock: clock, loop: loop, et: et, record: record}
		clock.Go(func(p *netem.Participant) {
			var wmu sync.Mutex
			cond := netem.NewCond(clock, &wmu)
			finished := false
			loop.Do(func() {
				clientWorkload(d, epoch, srv2, srv.SetBlackhole, func() {
					wmu.Lock()
					finished = true
					wmu.Unlock()
					cond.Broadcast()
				})
			})
			wmu.Lock()
			for !finished {
				if !cond.Wait(p) {
					break
				}
			}
			wmu.Unlock()
			close(done)
		})
	} else {
		clock.Go(func(p *netem.Participant) {
			tr := NewTransport(iface)
			tr.Bind(p)
			d := &blockingClientDriver{
				p: p, clock: clock, tr: tr,
				client: &http.Client{Transport: tr},
				record: record,
			}
			clock.Go(func(ab *netem.Participant) {
				ab.SleepUntil(epoch.Add(16*time.Second + 200*time.Millisecond))
				tr.Shutdown(errSession)
			})
			clientWorkload(d, epoch, srv2, srv.SetBlackhole, func() { close(done) })
		})
	}
	<-done

	mu.Lock()
	defer mu.Unlock()
	out := append([]string(nil), trace...)
	sort.Strings(out)
	return out
}

// TestEventClientMatchesBlockingTimeline is the client-side
// cross-engine contract: the event-loop transport must reproduce the
// blocking Transport's observable timeline byte for byte — response
// sums, pooling reuse, retry-once, deadline aborts, shutdown aborts —
// under slow-start, jitter, loss and send-buffer backpressure.
func TestEventClientMatchesBlockingTimeline(t *testing.T) {
	blocking := clientEngineTrace(t, false)
	eventloop := clientEngineTrace(t, true)
	if len(blocking) != len(eventloop) {
		t.Fatalf("trace lengths differ: blocking %d, eventloop %d\nblocking: %v\neventloop: %v",
			len(blocking), len(eventloop), blocking, eventloop)
	}
	for i := range blocking {
		if blocking[i] != eventloop[i] {
			t.Errorf("trace[%d]:\n  blocking:  %s\n  eventloop: %s", i, blocking[i], eventloop[i])
		}
	}
}
