package httpx

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"

	"repro/internal/handshake"
	"repro/internal/netem"
)

// blackholeHarness is testServer with the *Server handle exposed, so
// tests can flip the blackhole fault.
func blackholeHarness(t *testing.T, h http.Handler) (*netem.Clock, *netem.Interface, *Server) {
	t.Helper()
	clock := netem.NewVirtualClock()
	t.Cleanup(clock.Stop)
	n := netem.NewNetwork(clock)
	inner, err := n.Listen("srv.test:443", 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(clock, inner, h, handshake.Params{})
	t.Cleanup(func() { srv.Close() })
	lp := netem.LinkParams{Rate: netem.Mbps(20), Delay: 5 * time.Millisecond}
	return clock, n.NewInterface("wifi", lp, lp), srv
}

// runOnClock runs fn on a clock-registered goroutine and waits for it,
// with a wall-clock watchdog against emulator deadlock.
func runOnClock(t *testing.T, clock *netem.Clock, fn func(*netem.Participant) error) {
	t.Helper()
	done := make(chan error, 1)
	clock.Go(func(p *netem.Participant) { done <- fn(p) })
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second): //detlint:allow wallclock -- test watchdog against emulator deadlock runs on wall time
		t.Fatal("clock goroutine did not finish (wedged session?)")
	}
}

// TestDeadlineCutsBlackholedFreshDial pins the deadline instant for the
// worst blackhole case: the server accepts the fresh dial and then
// never answers the handshake, so without the deadline the client would
// park forever. The request must fail with ErrRequestTimeout at exactly
// dial-instant + timeout — one attempt, no retry (nothing was reused).
func TestDeadlineCutsBlackholedFreshDial(t *testing.T) {
	blob := make([]byte, 256<<10)
	clock, iface, srv := blackholeHarness(t, blobHandler(blob))
	srv.SetBlackhole(true)

	tr := NewTransport(iface)
	tr.SetRequestTimeout(time.Second)
	client := &http.Client{Transport: tr}

	runOnClock(t, clock, func(p *netem.Participant) error {
		tr.Bind(p)
		start := clock.Now()
		_, err := GetRange(context.Background(), client, "http://srv.test:443/blob", 0, 1023)
		if !errors.Is(err, ErrRequestTimeout) {
			t.Errorf("err = %v, want ErrRequestTimeout", err)
		}
		if got := clock.Now().Sub(start); got != time.Second {
			t.Errorf("blackholed dial failed after %v, want exactly %v", got, time.Second)
		}

		// Recovery: un-blackhole and the same transport serves again.
		srv.SetBlackhole(false)
		if _, err := GetRange(context.Background(), client, "http://srv.test:443/blob", 0, 1023); err != nil {
			t.Errorf("request after recovery failed: %v", err)
		}
		return nil
	})
}

// TestDeadlineCutsBlackholedReusedConn pins the instant for the
// mid-stream blackhole: the first request warms a pooled conn, then the
// server wedges. The reused-conn attempt times out after one budget,
// RoundTrip retries once on a fresh dial (as for any reused-conn
// failure) under a fresh deadline, and that dial is blackholed too — so
// the call fails at exactly 2 × timeout, deterministically.
func TestDeadlineCutsBlackholedReusedConn(t *testing.T) {
	blob := make([]byte, 256<<10)
	clock, iface, srv := blackholeHarness(t, blobHandler(blob))

	tr := NewTransport(iface)
	tr.SetRequestTimeout(time.Second)
	client := &http.Client{Transport: tr}

	runOnClock(t, clock, func(p *netem.Participant) error {
		tr.Bind(p)
		if _, err := GetRange(context.Background(), client, "http://srv.test:443/blob", 0, 1023); err != nil {
			return err
		}
		srv.SetBlackhole(true)
		start := clock.Now()
		_, err := GetRange(context.Background(), client, "http://srv.test:443/blob", 1024, 2047)
		if !errors.Is(err, ErrRequestTimeout) {
			t.Errorf("err = %v, want ErrRequestTimeout", err)
		}
		if got := clock.Now().Sub(start); got != 2*time.Second {
			t.Errorf("blackholed reused conn failed after %v, want exactly %v (two attempts)", got, 2*time.Second)
		}
		return nil
	})
}

// TestDeadlineLeavesFastRequestsAlone: a request that completes within
// the budget must be untouched — same bytes, conn still pooled — and
// its pending timer must not abort the next request on the conn.
func TestDeadlineLeavesFastRequestsAlone(t *testing.T) {
	blob := make([]byte, 256<<10)
	for i := range blob {
		blob[i] = byte(i * 13)
	}
	clock, iface, _ := blackholeHarness(t, blobHandler(blob))

	tr := NewTransport(iface)
	tr.SetRequestTimeout(10 * time.Second)
	client := &http.Client{Transport: tr}

	runOnClock(t, clock, func(p *netem.Participant) error {
		tr.Bind(p)
		for i := 0; i < 20; i++ {
			from := int64(i * 1024)
			got, err := GetRange(context.Background(), client, "http://srv.test:443/blob", from, from+1023)
			if err != nil {
				return err
			}
			for j, b := range got {
				if b != blob[from+int64(j)] {
					t.Fatalf("request %d byte %d mismatch", i, j)
				}
			}
		}
		return nil
	})
}
