// Package httpx provides the HTTP plumbing MSPlayer uses on each path:
// an http.Client bound to one emulated interface that completes the
// secure-connection handshake inside its dialer, HTTP range-request
// helpers, and an HTTP/1.1 server for the emulated origin.
//
// Both ends are built for the deterministic virtual clock: the client
// Transport performs the whole round trip — dial, handshake, request
// write, response and body reads — on the calling goroutine, and the
// Server runs its accept loop and per-connection loops on goroutines
// registered with the emulation clock. No goroutine in the HTTP path
// ever parks outside the clock's waiter accounting, which is what lets
// virtual time jump deterministically (net/http's Transport and Server
// would park their internal goroutines on plain channels, invisible to
// the clock). Connections are persistent, so each range request after
// the first costs one request round trip, exactly as in the paper.
//
// Teardown is deterministic end to end: Transport.Shutdown aborts every
// connection through the netem conn abort protocol (a clock event at
// one pinned virtual instant), the Server's request lifecycle hooks
// (WithRequestHooks) attribute each request's bytes and Aborted
// disposition on clock-registered goroutines, and Server.Drain joins
// the per-connection loops on the clock. Per-request context
// cancellation remains available for callers outside the emulation's
// timeline (an unregistered watcher aborts the conn mid-request), but a
// deterministic teardown makes those watchers no-ops by scheduling its
// own aborts first — the earliest abort wins.
package httpx

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httputil"
	"net/textproto"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/handshake"
	"repro/internal/netem"
)

// NewClient returns an HTTP client whose TCP connections are dialed
// through iface and complete the emulated TLS-style handshake before
// carrying requests. Keep-alives are on: video streaming reuses one
// connection per (path, server) pair.
func NewClient(iface *netem.Interface) *http.Client {
	return &http.Client{Transport: NewTransport(iface)}
}

// maxIdlePerHost bounds pooled idle connections per server address.
const maxIdlePerHost = 4

// brPool recycles the 16 KB buffered readers that sit on every
// emulated connection (client response parsing and server request
// parsing alike); at fleet scale these buffers dominated per-connection
// setup allocations.
var brPool = sync.Pool{
	New: func() any { return bufio.NewReaderSize(nil, 16<<10) },
}

func getReader(c net.Conn) *bufio.Reader {
	br := brPool.Get().(*bufio.Reader)
	br.Reset(c)
	return br
}

func putReader(br *bufio.Reader) {
	br.Reset(nil)
	brPool.Put(br)
}

// Transport is an http.RoundTripper that speaks HTTP/1.1 directly over
// emulated connections, entirely on the calling goroutine. See the
// package comment for why this replaces http.Transport here.
//
// A Transport is owned by one fetch-loop goroutine; Bind attaches that
// goroutine's clock Participant so dials, handshakes and in-request
// reads all park through the handle instead of as per-park transient
// clock registrations.
type Transport struct {
	iface *netem.Interface
	part  *netem.Participant

	// reqTimeout bounds each request attempt (dial, handshake, request
	// write, response and body reads) with a netem.Timer racing the
	// attempt; zero means no deadline. See SetRequestTimeout.
	reqTimeout time.Duration
	// hedge, when non-zero, races each attempt against a second, shorter
	// budget that aborts with ErrHedged instead of ErrRequestTimeout —
	// the cancel-the-laggard half of a hedged range request. See SetHedge.
	hedge time.Duration

	mu     sync.Mutex
	idle   map[string][]*persistConn
	live   map[*persistConn]struct{} // every open conn (idle and in use)
	closed error                     // non-nil once Shutdown ran; fails new dials
}

// NewTransport builds the transport underlying NewClient; exposed so
// callers can share one connection pool across clients.
func NewTransport(iface *netem.Interface) *Transport {
	return &Transport{
		iface: iface,
		idle:  make(map[string][]*persistConn),
		live:  make(map[*persistConn]struct{}),
	}
}

// Bind attaches the owning goroutine's clock handle. Call before the
// first request from the goroutine that will issue every request on
// this transport.
func (t *Transport) Bind(p *netem.Participant) { t.part = p }

// SetRequestTimeout arms a per-request deadline: every subsequent
// request attempt that has not delivered its full body within d of
// starting is aborted with ErrRequestTimeout at exactly that virtual
// instant, converting a blackholed server (accepts connections, never
// responds) into a retryable error instead of an eternal park. Zero
// disables the deadline. The deadline requires a bound Participant
// (Bind) and covers the whole attempt — dial, handshake, request
// write, response header and body reads; RoundTrip's retry-once on a
// reused conn runs under a fresh deadline. Call it before the first
// request, from the owning goroutine.
func (t *Transport) SetRequestTimeout(d time.Duration) { t.reqTimeout = d }

// ErrRequestTimeout aborts requests whose SetRequestTimeout deadline
// elapsed. Compare with errors.Is: it arrives wrapped in the dial,
// handshake, response-read or body-read error of whichever stage the
// deadline interrupted.
var ErrRequestTimeout = fmt.Errorf("httpx: request deadline exceeded")

// SetHedge arms a hedge budget alongside the request deadline: every
// subsequent attempt still in flight d after starting is aborted with
// ErrHedged at exactly that virtual instant, so the caller can reissue
// the range against another source with most of the deadline budget
// intact. The hedge must be shorter than the request deadline to be
// useful; zero disables it. Like SetRequestTimeout, call it from the
// owning goroutine between requests.
func (t *Transport) SetHedge(d time.Duration) { t.hedge = d }

// ErrHedged aborts requests whose SetHedge budget elapsed: the caller
// gave up on this attempt to hedge the range elsewhere. Compare with
// errors.Is, like ErrRequestTimeout. A hedged-out attempt on a reused
// connection is not transparently retried — hedging exists precisely so
// the caller can redirect the request.
var ErrHedged = fmt.Errorf("httpx: request hedged")

// deadlineGuard races one request attempt against the transport's
// request deadline and, when armed, the shorter hedge budget. The
// attempt's connection is handed over via setConn as soon as it exists
// (a timer elapsing before the dial returns aborts the conn the moment
// it materialises); both timers and the body owner arbitrate through
// the same reqState CAS as the context watcher, so an aborted conn is
// never repooled and at most one abort is ever issued — whichever
// timer fires first decides the attempt's error.
type deadlineGuard struct {
	state reqState
	tm    *netem.Timer // request deadline (nil when unarmed)
	htm   *netem.Timer // hedge budget (nil when unarmed)

	mu      sync.Mutex
	conn    net.Conn
	aborted error // which timer won, for a conn published after the fact
}

// armDeadline returns a scheduled guard for one request attempt, or
// nil when neither a deadline nor a hedge budget is configured. The
// deadline timer is created before the hedge timer, so if both were
// ever scheduled for one instant the deadline would win the wake order
// — though SetHedge callers keep the hedge strictly shorter.
func (t *Transport) armDeadline() *deadlineGuard {
	if t.part == nil || (t.reqTimeout <= 0 && t.hedge <= 0) {
		return nil
	}
	now := t.part.Clock().Now()
	g := &deadlineGuard{}
	if t.reqTimeout > 0 {
		g.tm = t.part.NewTimer(g.fire)
		g.tm.Schedule(now.Add(t.reqTimeout))
	}
	if t.hedge > 0 {
		g.htm = t.part.NewTimer(g.hedgeFire)
		g.htm.Schedule(now.Add(t.hedge))
	}
	return g
}

// setConn publishes the attempt's connection to the guard, aborting it
// immediately when a timer already fired conn-less.
func (g *deadlineGuard) setConn(c net.Conn) {
	g.mu.Lock()
	g.conn = c
	err := g.aborted
	g.mu.Unlock()
	if err != nil {
		abortConn(c, err)
	}
}

// fire and hedgeFire run on the clock's jump goroutine at their
// instants. They only CAS and schedule a conn abort — never park.
func (g *deadlineGuard) fire()      { g.abort(ErrRequestTimeout) }
func (g *deadlineGuard) hedgeFire() { g.abort(ErrHedged) }

func (g *deadlineGuard) abort(err error) {
	if !g.state.v.CompareAndSwap(reqActive, reqAborted) {
		return
	}
	g.mu.Lock()
	c := g.conn
	g.aborted = err
	g.mu.Unlock()
	if c != nil {
		abortConn(c, err)
	}
}

// stop cancels the pending timers; nil-safe.
func (g *deadlineGuard) stop() {
	if g == nil {
		return
	}
	if g.tm != nil {
		g.tm.Stop()
	}
	if g.htm != nil {
		g.htm.Stop()
	}
}

// persistConn is one pooled connection with its read buffer (which may
// hold bytes of the next response and so must persist with the conn).
type persistConn struct {
	conn net.Conn
	br   *bufio.Reader
}

type connAborter interface{ Abort(err error) }

func abortConn(c net.Conn, err error) {
	if a, ok := c.(connAborter); ok {
		a.Abort(err)
		return
	}
	c.Close()
}

// RoundTrip implements http.RoundTripper. The returned response body
// streams straight from the emulated connection; fully draining and
// closing it returns the connection to the keep-alive pool.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	ctx := req.Context()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	addr := req.URL.Host
	if _, _, err := net.SplitHostPort(addr); err != nil {
		addr = net.JoinHostPort(addr, "80")
	}
	for attempt := 0; ; attempt++ {
		// Each attempt runs under its own deadline: a retry after a
		// timed-out reused conn gets the full budget for its fresh dial.
		g := t.armDeadline()
		pc, reused, err := t.getConn(ctx, addr, g)
		if err != nil {
			g.stop()
			return nil, err
		}
		resp, err := t.roundTrip(ctx, req, pc, addr, g)
		if err != nil {
			// A pooled conn may have been aborted since it was cached
			// (mobility event, server kill) — and if one was, its pooled
			// siblings almost certainly were too. Flush the pool for
			// this address and retry once on a genuinely fresh dial, as
			// net/http does for reused conns — and like net/http, only
			// when the request body can be replayed.
			replayable := req.Body == nil || req.Body == http.NoBody
			if !replayable && req.GetBody != nil {
				// Rewind the consumed body before re-sending.
				if body, gerr := req.GetBody(); gerr == nil {
					req.Body = body
					replayable = true
				}
			}
			// A hedged-out attempt is never retried here: the caller
			// cancelled it on purpose and will reissue elsewhere.
			if reused && replayable && attempt == 0 && ctx.Err() == nil &&
				!errors.Is(err, ErrHedged) {
				t.dropIdle(addr)
				continue
			}
			return nil, err
		}
		return resp, nil
	}
}

func (t *Transport) roundTrip(ctx context.Context, req *http.Request, pc *persistConn, addr string, g *deadlineGuard) (*http.Response, error) {
	// Watch for cancellation until the body is closed: aborting the conn
	// wakes any clock-visible read the caller is parked in. The state
	// CAS decides the race between the watcher aborting and the body
	// completing, so a conn the watcher touched is never repooled. A
	// context that can never be cancelled (Done() == nil — the
	// context.Background() of every fleet session) gets no watcher at
	// all: spawning a goroutine and channel per request only to tear
	// them down unused was measurable at 20k-session populations. When a
	// request deadline is armed its guard shares the same state, so the
	// watcher, the deadline timer and the body owner arbitrate through
	// one CAS — the earliest abort wins.
	var (
		done  chan struct{}
		state *reqState
	)
	if g != nil {
		state = &g.state
	}
	if ctx.Done() != nil {
		done = make(chan struct{})
		if state == nil {
			state = &reqState{}
		}
		watchState := state
		go func() { //detlint:allow baredgo -- context watcher only forwards cancellation into a conn abort; clock-invisible by design
			select {
			case <-ctx.Done():
				if watchState.v.CompareAndSwap(reqActive, reqAborted) {
					abortConn(pc.conn, ctx.Err())
				}
			case <-done:
			}
		}()
	}
	fail := func(err error) (*http.Response, error) {
		if done != nil {
			close(done)
		}
		g.stop()
		t.discard(pc)
		if cerr := ctx.Err(); cerr != nil {
			err = cerr
		}
		return nil, err
	}

	if err := writeRequest(pc.conn, req); err != nil {
		return fail(fmt.Errorf("httpx: writing request: %w", err))
	}
	resp, err := readResponse(pc.br, req)
	if err != nil {
		return fail(fmt.Errorf("httpx: reading response: %w", err))
	}
	resp.Body = &bodyGuard{rc: resp.Body, t: t, pc: pc, addr: addr,
		done: done, state: state, dl: g, reusable: !resp.Close}
	return resp, nil
}

// reqBufPool recycles request staging buffers for writeRequest.
var reqBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 512); return &b },
}

// writeRequest puts req on the wire. Bodyless GET/HEAD requests whose
// only headers are the small set the players send — every range and
// metadata request in the emulation — are rendered into one pooled
// buffer with a single conn write, producing byte-for-byte the output
// of req.Write (which allocates a bufio.Writer and sorts a header map
// per call, also flushing as a single write — so pacing sees identical
// segments either way). Anything else falls back to req.Write.
func writeRequest(conn net.Conn, req *http.Request) error {
	if req.Body != nil && req.Body != http.NoBody ||
		(req.Method != http.MethodGet && req.Method != http.MethodHead) ||
		req.ContentLength != 0 || req.Close || len(req.Trailer) > 0 ||
		len(req.TransferEncoding) > 0 {
		return req.Write(conn)
	}
	// req.Write emits Host and a default User-Agent first, then the
	// remaining headers sorted by key. With at most one extra header
	// (Range, in practice) the sorted rendering is the natural append
	// order; more than one falls back to keep ordering exact.
	host := req.Host
	if host == "" {
		host = req.URL.Host
	}
	if len(req.Header) > 1 || host == "" {
		return req.Write(conn)
	}
	bp := reqBufPool.Get().(*[]byte)
	b := (*bp)[:0]
	b = append(b, req.Method...)
	b = append(b, ' ')
	b = append(b, req.URL.RequestURI()...)
	b = append(b, " HTTP/1.1\r\nHost: "...)
	b = append(b, host...)
	b = append(b, "\r\nUser-Agent: Go-http-client/1.1\r\n"...)
	for k, vv := range req.Header { //detlint:allow maprange -- the fallback above caps this loop at one header key, so order cannot vary
		if k == "Host" || k == "User-Agent" || k == "Content-Length" {
			// Keys req.Write treats specially; keep semantics by falling
			// back rather than second-guessing them.
			*bp = b
			reqBufPool.Put(bp)
			return req.Write(conn)
		}
		for _, v := range vv {
			b = append(b, k...)
			b = append(b, ": "...)
			b = append(b, v...)
			b = append(b, "\r\n"...)
		}
	}
	b = append(b, "\r\n"...)
	_, err := conn.Write(b)
	*bp = b
	reqBufPool.Put(bp)
	return err
}

// readResponse parses an HTTP/1.1 response from br into an
// *http.Response, replacing http.ReadResponse on the per-chunk hot
// path: it consumes exactly the same bytes (status line, MIME headers,
// and a Content-Length-, chunked- or close-delimited body) but skips
// the textproto machinery and the locked net/http body wrapper, which
// together were a measurable share of fleet-scale client CPU. Only
// what the emulated origin actually speaks is implemented; anything
// unexpected surfaces as an error rather than a silent misparse.
func readResponse(br *bufio.Reader, req *http.Request) (*http.Response, error) {
	line, err := readHeaderLine(br)
	if err != nil {
		return nil, err
	}
	sp := bytes.IndexByte(line, ' ')
	if sp < 0 || !bytes.HasPrefix(line, []byte("HTTP/1.")) {
		return nil, fmt.Errorf("malformed status line %q", line)
	}
	proto := "HTTP/1.1"
	minor := 1
	if line[sp-1] == '0' {
		proto, minor = "HTTP/1.0", 0
	}
	statusText := bytes.TrimLeft(line[sp+1:], " ")
	if len(statusText) < 3 {
		return nil, fmt.Errorf("malformed status line %q", line)
	}
	code, err := strconv.Atoi(string(statusText[:3]))
	if err != nil {
		return nil, fmt.Errorf("malformed status code in %q", line)
	}
	resp := &http.Response{
		Status:     string(statusText),
		StatusCode: code,
		Proto:      proto,
		ProtoMajor: 1,
		ProtoMinor: minor,
		Header:     make(http.Header, 8),
		Request:    req,
	}
	var (
		contentLength int64 = -1
		chunked       bool
	)
	for {
		line, err := readHeaderLine(br)
		if err != nil {
			return nil, err
		}
		if len(line) == 0 {
			break
		}
		colon := bytes.IndexByte(line, ':')
		if colon < 0 {
			return nil, fmt.Errorf("malformed header line %q", line)
		}
		key := canonicalHeaderKey(line[:colon])
		val := string(bytes.Trim(line[colon+1:], " \t"))
		resp.Header[key] = append(resp.Header[key], val)
		switch key {
		case "Content-Length":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("malformed Content-Length %q", val)
			}
			contentLength = n
		case "Transfer-Encoding":
			if val != "chunked" {
				return nil, fmt.Errorf("unsupported Transfer-Encoding %q", val)
			}
			chunked = true
		case "Connection":
			if val == "close" {
				resp.Close = true
			}
		}
	}
	switch {
	case req.Method == http.MethodHead || code == http.StatusNoContent ||
		code == http.StatusNotModified || code < 200:
		if contentLength < 0 {
			contentLength = 0 // net/http reports 0 when no body is expected
		}
		resp.ContentLength = contentLength
		resp.Body = http.NoBody
	case chunked:
		resp.ContentLength = -1
		resp.Body = &chunkedBody{cr: httputil.NewChunkedReader(br), br: br}
	case contentLength >= 0:
		resp.ContentLength = contentLength
		resp.Body = &lengthBody{br: br, n: contentLength}
	default:
		// Close-delimited: the body ends when the server closes the
		// connection, which also retires it from the pool.
		resp.Close = true
		resp.Body = io.NopCloser(br)
	}
	return resp, nil
}

// readHeaderLine returns the next CRLF-terminated line without its
// terminator. The common case aliases the bufio buffer (valid only
// until the next read, no allocation); a line longer than the buffer —
// the web proxy's padding header mimics the paper's bulky video-info
// responses — is accumulated across fragments.
func readHeaderLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		long := append([]byte(nil), line...)
		for err == bufio.ErrBufferFull {
			line, err = br.ReadSlice('\n')
			long = append(long, line...)
		}
		line = long
	}
	if err != nil {
		return nil, err
	}
	if n := len(line); n >= 2 && line[n-2] == '\r' {
		return line[:n-2], nil
	}
	return nil, fmt.Errorf("header line %q not CRLF-terminated", line)
}

// commonHeaderKeys interns the canonical forms the emulated origin
// sends, so parsing them allocates nothing.
var commonHeaderKeys = []string{
	"Accept-Ranges", "Connection", "Content-Length", "Content-Range",
	"Content-Type", "Date", "Last-Modified", "Transfer-Encoding",
	"X-Content-Type-Options",
}

func canonicalHeaderKey(k []byte) string {
	for _, c := range commonHeaderKeys {
		if len(k) == len(c) && string(k) == c {
			return c
		}
	}
	return textproto.CanonicalMIMEHeaderKey(string(k))
}

// lengthBody reads a Content-Length-framed body straight from the
// connection's buffered reader, returning io.EOF exactly at the
// declared end (and io.ErrUnexpectedEOF on a short connection).
type lengthBody struct {
	br *bufio.Reader
	n  int64
}

func (b *lengthBody) Read(p []byte) (int, error) {
	if b.n <= 0 {
		return 0, io.EOF
	}
	if int64(len(p)) > b.n {
		p = p[:b.n]
	}
	n, err := b.br.Read(p)
	b.n -= int64(n)
	if err == io.EOF && b.n > 0 {
		err = io.ErrUnexpectedEOF
	}
	if err == nil && b.n == 0 {
		// Let the caller see io.EOF together with the final bytes on
		// its next read; bodyGuard's pooling probe depends on a clean
		// (0, io.EOF) after the declared length.
		return n, nil
	}
	return n, err
}

func (b *lengthBody) Close() error { return nil }

// chunkedBody decodes a chunked body, consuming the terminating CRLF of
// the (empty) trailer section so the next keep-alive response starts
// clean on the shared reader.
type chunkedBody struct {
	cr      io.Reader
	br      *bufio.Reader
	trailed bool
}

func (b *chunkedBody) Read(p []byte) (int, error) {
	n, err := b.cr.Read(p)
	if err == io.EOF && !b.trailed {
		b.trailed = true
		var crlf [2]byte
		if _, terr := io.ReadFull(b.br, crlf[:]); terr != nil || crlf != [2]byte{'\r', '\n'} {
			return n, fmt.Errorf("httpx: malformed chunked trailer")
		}
	}
	return n, err
}

func (b *chunkedBody) Close() error { return nil }

// reqState arbitrates one request's end-of-life between the
// cancellation watcher and the body owner.
type reqState struct{ v atomic.Int32 }

const (
	reqActive    = 0 // request in flight
	reqAborted   = 1 // watcher won: conn aborted, must not be reused
	reqCompleted = 2 // body owner won: conn may be pooled
)

func (t *Transport) getConn(ctx context.Context, addr string, g *deadlineGuard) (pc *persistConn, reused bool, err error) {
	t.mu.Lock()
	if err := t.closed; err != nil {
		t.mu.Unlock()
		return nil, false, err
	}
	if pcs := t.idle[addr]; len(pcs) > 0 {
		pc := pcs[len(pcs)-1]
		t.idle[addr] = pcs[:len(pcs)-1]
		t.mu.Unlock()
		if g != nil {
			g.setConn(pc.conn)
		}
		return pc, true, nil
	}
	t.mu.Unlock()
	conn, err := t.iface.Dial(ctx, addr, t.part)
	if err != nil {
		return nil, false, err
	}
	// Publish the conn before the handshake: a blackholed server accepts
	// and then never responds, so the handshake read is the first park
	// the deadline must be able to cut short.
	if g != nil {
		g.setConn(conn)
	}
	if err := handshake.Client(conn); err != nil {
		conn.Close()
		return nil, false, fmt.Errorf("httpx: secure handshake with %s: %w", addr, err)
	}
	pc = &persistConn{conn: conn, br: getReader(conn)}
	t.mu.Lock()
	if err := t.closed; err != nil {
		// Shut down while the dial was parked on the clock: the
		// teardown sweep could not see this conn, so retire it here.
		t.mu.Unlock()
		t.discard(pc)
		return nil, false, err
	}
	t.live[pc] = struct{}{}
	t.mu.Unlock()
	return pc, false, nil
}

// discard retires a connection for good: the emulated conn is closed
// and its buffered reader returns to the pool. Callers must be the
// conn's sole owner (nothing may read pc.br afterwards).
func (t *Transport) discard(pc *persistConn) {
	t.mu.Lock()
	delete(t.live, pc)
	t.mu.Unlock()
	pc.conn.Close()
	if pc.br != nil {
		putReader(pc.br)
		pc.br = nil
	}
}

// Shutdown retires the transport at the current emulated instant: new
// dials fail with err, idle connections are closed, and in-use
// connections are aborted with err. Because netem aborts are clock
// events (see netem.Conn.AbortAt), calling Shutdown from a runnable
// registered goroutine pins the whole sweep to one deterministic
// virtual instant — every in-flight request on this transport, and
// every server handler serving it, observes the failure at exactly that
// instant. Later per-request cancellation watchers become no-ops (the
// earliest abort schedule wins). Shutdown is idempotent.
func (t *Transport) Shutdown(err error) {
	if err == nil {
		err = errTransportClosed
	}
	t.mu.Lock()
	if t.closed != nil {
		t.mu.Unlock()
		return
	}
	t.closed = err
	idle := t.idle
	t.idle = make(map[string][]*persistConn)
	idleSet := make(map[*persistConn]bool, len(idle))
	for _, pcs := range idle {
		for _, pc := range pcs {
			idleSet[pc] = true
		}
	}
	var inUse []*persistConn
	for pc := range t.live { //detlint:allow maprange -- all aborts land at the caller's single pinned virtual instant; sweep order is unobservable
		if !idleSet[pc] {
			inUse = append(inUse, pc)
		}
	}
	t.mu.Unlock()
	for _, pcs := range idle {
		for _, pc := range pcs {
			t.discard(pc) // graceful close: the server sees EOF, not an abort
		}
	}
	// In-use conns are aborted, not closed: their owning fetch loops are
	// parked in clock-visible reads and wake with err by the abort rule;
	// each owner retires its own conn (and pooled reader) afterwards.
	// All aborts land at the caller's single pinned virtual instant, so
	// the map iteration order is unobservable.
	for _, pc := range inUse {
		abortConn(pc.conn, err)
	}
}

// errTransportClosed is the default Shutdown error.
var errTransportClosed = fmt.Errorf("httpx: transport shut down")

// dropIdle discards every pooled connection to addr.
func (t *Transport) dropIdle(addr string) {
	t.mu.Lock()
	pcs := t.idle[addr]
	delete(t.idle, addr)
	t.mu.Unlock()
	for _, pc := range pcs {
		t.discard(pc)
	}
}

func (t *Transport) putIdle(addr string, pc *persistConn) {
	t.mu.Lock()
	if t.closed == nil && len(t.idle[addr]) < maxIdlePerHost {
		t.idle[addr] = append(t.idle[addr], pc)
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	t.discard(pc)
}

// CloseIdleConnections implements the optional interface used by
// http.Client.CloseIdleConnections.
func (t *Transport) CloseIdleConnections() {
	t.mu.Lock()
	idle := t.idle
	t.idle = make(map[string][]*persistConn)
	t.mu.Unlock()
	for _, pcs := range idle {
		for _, pc := range pcs {
			t.discard(pc)
		}
	}
}

// bodyGuard tracks whether a response body was fully drained, deciding
// between pooling and closing the underlying connection, and releases
// the per-request cancellation watcher (done/state are nil when the
// request context could never be cancelled and no watcher was armed).
type bodyGuard struct {
	rc       io.ReadCloser
	t        *Transport
	pc       *persistConn
	addr     string
	done     chan struct{}
	state    *reqState
	dl       *deadlineGuard // pending request deadline, if armed
	reusable bool
	sawEOF   bool
	closed   bool
}

func (b *bodyGuard) Read(p []byte) (int, error) {
	n, err := b.rc.Read(p)
	if err == io.EOF {
		b.sawEOF = true
	}
	return n, err
}

func (b *bodyGuard) Close() error {
	if b.closed {
		return nil
	}
	b.closed = true
	completed := true
	if b.done != nil {
		close(b.done)
	}
	if b.state != nil {
		completed = b.state.v.CompareAndSwap(reqActive, reqCompleted)
	}
	b.dl.stop()
	if !b.sawEOF && completed && b.reusable {
		// The conn is a pooling candidate: tolerate an undrained body
		// that has in fact ended (e.g. a JSON decoder stopping at the
		// final token). Only probe then — on a doomed conn the read
		// could block until the peer's next paced segment.
		var tmp [1]byte
		if n, err := b.rc.Read(tmp[:]); n == 0 && err == io.EOF {
			b.sawEOF = true
		}
	}
	err := b.rc.Close()
	if completed && b.sawEOF && b.reusable && err == nil {
		b.t.putIdle(b.addr, b.pc)
	} else {
		b.t.discard(b.pc)
	}
	return err
}

// StatusError reports an unexpected HTTP status code, letting callers
// distinguish authorization failures (expired tokens) from server
// errors when deciding between token refresh and failover.
type StatusError struct {
	Code int
	Msg  string
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("httpx: status %d: %s", e.Code, e.Msg)
}

// RangeHeader renders the HTTP Range header value for the byte interval
// [from, to] inclusive, as used by YouTube range requests.
func RangeHeader(from, to int64) string {
	return fmt.Sprintf("bytes=%d-%d", from, to)
}

// GetRange fetches the inclusive byte range [from, to] of url and
// returns the body. It fails unless the server honours the range with a
// 206 and the exact requested length.
func GetRange(ctx context.Context, client *http.Client, url string, from, to int64) ([]byte, error) {
	return GetRangeBuf(ctx, client, url, from, to, nil)
}

// do sends req. A plain client over an httpx Transport — no redirect
// policy, cookie jar or timeout, which is every client in the emulation
// (and the origin never redirects these endpoints) — goes straight to
// the transport, skipping http.Client's per-request bookkeeping on the
// range-request hot path. Anything else keeps net/http semantics.
func do(client *http.Client, req *http.Request) (*http.Response, error) {
	if t, ok := client.Transport.(*Transport); ok &&
		client.CheckRedirect == nil && client.Jar == nil && client.Timeout == 0 {
		return t.RoundTrip(req)
	}
	return client.Do(req)
}

// GetRangeBuf is GetRange reading into buf when buf has the capacity
// for the range, avoiding a fresh body allocation per request — the
// video fetch loops recycle chunk buffers through a pool. A too-small
// (or nil) buf falls back to allocating.
func GetRangeBuf(ctx context.Context, client *http.Client, url string, from, to int64, buf []byte) ([]byte, error) {
	if to < from {
		return nil, fmt.Errorf("httpx: invalid range %d-%d", from, to)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Range", RangeHeader(from, to))
	resp, err := do(client, req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, &StatusError{Code: resp.StatusCode,
			Msg: fmt.Sprintf("range %d-%d of %s: %.80s", from, to, url, body)}
	}
	want := to - from + 1
	// The 206 response declares its length, so read into an exact-size
	// buffer instead of letting io.ReadAll grow-and-copy its way there.
	if resp.ContentLength == want {
		var body []byte
		if int64(cap(buf)) >= want {
			body = buf[:want]
		} else {
			body = make([]byte, want)
		}
		if _, err := io.ReadFull(resp.Body, body); err != nil {
			return nil, fmt.Errorf("httpx: reading range body: %w", err)
		}
		// Drain the (empty) tail so the conn is seen fully consumed and
		// returns to the keep-alive pool.
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return nil, fmt.Errorf("httpx: reading range body: %w", err)
		}
		return body, nil
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("httpx: reading range body: %w", err)
	}
	if int64(len(body)) != want {
		return nil, fmt.Errorf("httpx: range %d-%d returned %d bytes, want %d", from, to, len(body), want)
	}
	return body, nil
}

// Head issues a HEAD request and returns the advertised content length.
func Head(ctx context.Context, client *http.Client, url string) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodHead, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := do(client, req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("httpx: HEAD %s: status %d", url, resp.StatusCode)
	}
	return resp.ContentLength, nil
}
