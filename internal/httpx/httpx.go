// Package httpx provides the HTTP plumbing MSPlayer uses on each path:
// an http.Client bound to one emulated interface that completes the
// secure-connection handshake inside its dialer, plus HTTP range-request
// helpers. Connections are persistent, so each range request after the
// first costs one request round trip, exactly as in the paper.
package httpx

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"

	"repro/internal/handshake"
	"repro/internal/netem"
)

// NewClient returns an HTTP client whose TCP connections are dialed
// through iface and complete the emulated TLS-style handshake before
// carrying requests. Keep-alives are on: video streaming reuses one
// connection per (path, server) pair.
func NewClient(iface *netem.Interface) *http.Client {
	return &http.Client{Transport: NewTransport(iface)}
}

// NewTransport builds the underlying http.Transport for NewClient;
// exposed so callers can tune connection pooling.
func NewTransport(iface *netem.Interface) *http.Transport {
	return &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			c, err := iface.DialContext(ctx, network, addr)
			if err != nil {
				return nil, err
			}
			if err := handshake.Client(c); err != nil {
				c.Close()
				return nil, fmt.Errorf("httpx: secure handshake with %s: %w", addr, err)
			}
			return c, nil
		},
		MaxIdleConnsPerHost: 4,
		ForceAttemptHTTP2:   false,
	}
}

// StatusError reports an unexpected HTTP status code, letting callers
// distinguish authorization failures (expired tokens) from server
// errors when deciding between token refresh and failover.
type StatusError struct {
	Code int
	Msg  string
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("httpx: status %d: %s", e.Code, e.Msg)
}

// RangeHeader renders the HTTP Range header value for the byte interval
// [from, to] inclusive, as used by YouTube range requests.
func RangeHeader(from, to int64) string {
	return fmt.Sprintf("bytes=%d-%d", from, to)
}

// GetRange fetches the inclusive byte range [from, to] of url and
// returns the body. It fails unless the server honours the range with a
// 206 and the exact requested length.
func GetRange(ctx context.Context, client *http.Client, url string, from, to int64) ([]byte, error) {
	if to < from {
		return nil, fmt.Errorf("httpx: invalid range %d-%d", from, to)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Range", RangeHeader(from, to))
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, &StatusError{Code: resp.StatusCode,
			Msg: fmt.Sprintf("range %d-%d of %s: %.80s", from, to, url, body)}
	}
	want := to - from + 1
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("httpx: reading range body: %w", err)
	}
	if int64(len(body)) != want {
		return nil, fmt.Errorf("httpx: range %d-%d returned %d bytes, want %d", from, to, len(body), want)
	}
	return body, nil
}

// Head issues a HEAD request and returns the advertised content length.
func Head(ctx context.Context, client *http.Client, url string) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodHead, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("httpx: HEAD %s: status %d", url, resp.StatusCode)
	}
	return resp.ContentLength, nil
}
