package httpx

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/handshake"
	"repro/internal/netem"
)

// Event-loop server engine.
//
// The blocking engine parks one goroutine per connection; this engine
// runs each connection as a netem.Timer-driven state machine on the
// clock's jump goroutine, so a fleet-scale origin holds O(servers)
// goroutines instead of O(connections). The machine replays exactly
// the blocking loop's connection-level behaviour — the handshake
// script's message boundaries and Δ₁/Δ₂ delay instants, the request
// parse instant, the responseWriter's bufio flush boundaries, and the
// request hooks' firing instants — so a scenario produces a
// byte-identical timeline on either engine.
//
// Handlers run inline on the machine (at the request's parse instant)
// against a staging writer that records the exact connection-level
// write calls bufio would have issued; a TryWrite pump then replays
// the records, preserving call boundaries (different boundaries would
// mean different pacing segments and a different emulated timeline).
// Handlers therefore MUST NOT park: no clock sleeps, no blocking I/O.
// Origin handlers qualify exactly when their think-time knobs are off
// (no WatchDelay, no Throttle); parking handlers stay on the blocking
// engine.

// WithEventLoop serves netem connections as event-loop state machines
// instead of parked per-connection goroutines. Handlers must not park
// (see the package comment above); non-netem connections fall back to
// the blocking engine.
func WithEventLoop() ServerOption {
	return func(s *Server) { s.evented = true }
}

// accPool recycles the per-connection input accumulation buffers of
// the event engine (requests and handshake messages are small; chunk
// bodies never flow toward the server).
var accPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 4<<10); return &b },
}

const maxPooledAcc = 64 << 10

// stagePool recycles the per-connection response-staging arenas (a
// response head plus its non-stable body bytes; page payloads alias
// stable views and cost the arena nothing). Evented conns are
// short-lived at fleet scale, so allocating the ~20 KB head arena per
// accept dominated the engine's allocation profile.
var stagePool = sync.Pool{
	New: func() any { b := make([]byte, 0, 4<<10); return &b },
}

// srvBrPool / srvBwPool recycle the per-connection bufio pair the
// evented conn machine feeds http.ReadRequest and the responseWriter
// from, mirroring the blocking path's reader pooling.
var srvBrPool = sync.Pool{
	New: func() any { return bufio.NewReaderSize(nil, 4<<10) },
}

var srvBwPool = sync.Pool{
	New: func() any { return bufio.NewWriterSize(io.Discard, 4<<10) },
}

// evState enumerates the per-connection machine states.
type evState int

const (
	evHandshake evState = iota // accumulating one expected handshake message
	evDelay                    // Δ processing delay armed before a handshake send
	evSend                     // pumping a handshake flight
	evRequest                  // accumulating the next request
	evPump                     // replaying a staged response
	evSwallow                  // blackholed: drain and never respond
	evDone                     // terminal
)

var crlfcrlf = []byte("\r\n\r\n")

// eventConn is one connection's state machine. All mutation happens in
// loop steps (netem.Loop serializes them and defers reentrant wakes),
// which run on the clock's jump goroutine or synchronously on a
// mutating caller — never parked.
type eventConn struct {
	s    *Server
	c    *netem.Conn
	loop *netem.Loop

	state evState

	// Input accumulation: arrived bytes are copied out of their borrowed
	// views immediately (server-bound traffic is headers and handshake
	// messages, so the copy is what the blocking engine's bufio did too).
	acc  []byte
	scan int // request-terminator search resumes here

	// Handshake progress.
	script    [3]handshake.ServerStep
	flight    int
	hsNeed    int  // acc bytes needed for the current expect (0 = header next)
	hsHdrOK   bool // header parsed; hsNeed includes the body
	delay     *netem.Timer
	delayDone bool

	// Send/pump cursors.
	sendBuf []byte
	sendOff int
	pumpIdx int
	pumpOff int

	// Current request.
	req      *http.Request
	reqTotal int // acc bytes spanning the request (headers + body)
	pendReq  *http.Request
	pendKA   bool

	stage      *stageWriter
	rw         *responseWriter
	hdrReader  bytes.Reader
	bodyReader bytes.Reader
	br         *bufio.Reader

	remoteAddr string
}

// serveConnEvent starts the state machine for one accepted connection.
// Runs on the accept-loop goroutine and never parks; the machine lives
// entirely in clock callbacks afterwards.
func (s *Server) serveConnEvent(c *netem.Conn) {
	ec := &eventConn{
		s:          s,
		c:          c,
		loop:       netem.NewLoop(),
		script:     handshake.ServerScript(s.hs),
		remoteAddr: c.RemoteAddr().String(),
	}
	ec.acc = (*accPool.Get().(*[]byte))[:0]
	ec.stage = &stageWriter{arena: (*stagePool.Get().(*[]byte))[:0]}
	bw := srvBwPool.Get().(*bufio.Writer)
	bw.Reset(ec.stage)
	ec.rw = &responseWriter{conn: ec.stage, header: make(http.Header, 8), bw: bw}
	ec.stage.rw = ec.rw
	ec.br = srvBrPool.Get().(*bufio.Reader)
	ec.br.Reset(&ec.hdrReader)
	ec.delay = s.clock.NewTimer(func() {
		ec.loop.Do(func() {
			ec.delayDone = true
			ec.advance()
		})
	})
	if s.blackhole.Load() {
		ec.state = evSwallow
	} else {
		ec.state = evHandshake
		ec.hsNeed = handshake.HeaderLen
	}
	ec.loop.Do(func() {
		wake := func() { ec.loop.Do(ec.advance) }
		c.OnWritable(wake)
		c.OnReadable(wake)
		ec.advance()
	})
}

// wakeless terminal transition: disarm everything, close the conn and
// release the connection's slot in the server's active accounting.
func (ec *eventConn) finish() {
	if ec.state == evDone {
		return
	}
	ec.state = evDone
	ec.c.OnReadable(nil)
	ec.c.OnWritable(nil)
	ec.delay.Stop()
	ec.c.Close()
	if cap(ec.acc) <= maxPooledAcc {
		acc := ec.acc[:0]
		accPool.Put(&acc)
	}
	ec.acc = nil
	// The machine is done: no step can touch the staging or bufio
	// state after evDone, so their buffers go back to their pools.
	if cap(ec.stage.arena) <= maxPooledAcc {
		arena := ec.stage.arena[:0]
		stagePool.Put(&arena)
	}
	ec.stage.arena = nil
	ec.stage.recs = nil
	ec.br.Reset(nil)
	srvBrPool.Put(ec.br)
	ec.br = nil
	ec.rw.bw.Reset(io.Discard)
	srvBwPool.Put(ec.rw.bw)
	ec.rw.bw = nil
	s := ec.s
	s.mu.Lock()
	s.active--
	s.cond.Broadcast()
	s.mu.Unlock()
}

// fill copies arrived bytes into acc until it holds at least need.
// Returns ok when satisfied; a nil !ok return means the machine waits
// for the armed readable callback. err is terminal (EOF, abort).
func (ec *eventConn) fill(need int) (bool, error) {
	for len(ec.acc) < need {
		view, err := ec.c.ReadBuf()
		if err != nil {
			return false, err
		}
		if view == nil {
			return false, nil
		}
		ec.acc = append(ec.acc, view...)
		ec.c.Release(len(view))
	}
	return true, nil
}

// consume discards the oldest n accumulated bytes.
func (ec *eventConn) consume(n int) {
	k := copy(ec.acc, ec.acc[n:])
	ec.acc = ec.acc[:k]
}

// advance cranks the machine as far as current observable state
// allows, re-arming (returning) when it must wait for an arrival, for
// send-buffer space, or for a delay timer. Every wake funnels here.
func (ec *eventConn) advance() {
	for {
		switch ec.state {
		case evDone:
			return

		case evSwallow:
			// The blocking engine's swallow: read and discard forever,
			// terminating only when the peer fails the connection.
			for {
				view, err := ec.c.ReadBuf()
				if err != nil {
					ec.finish()
					return
				}
				if view == nil {
					return
				}
				ec.c.Release(len(view))
			}

		case evHandshake:
			ok, err := ec.fill(ec.hsNeed)
			if err != nil {
				ec.finish()
				return
			}
			if !ok {
				return
			}
			step := &ec.script[ec.flight]
			if !ec.hsHdrOK {
				size, err := handshake.ParseHeader(ec.acc[:handshake.HeaderLen], step.Expect)
				if err != nil {
					ec.finish()
					return
				}
				ec.hsHdrOK = true
				ec.hsNeed = handshake.HeaderLen + size
				continue
			}
			ec.consume(ec.hsNeed)
			ec.hsNeed, ec.hsHdrOK = 0, false
			// Processing delay before the response flight: the timer fires
			// at the same instant the blocking engine's clock.Sleep ends
			// (synchronously when the delay is zero).
			ec.state = evDelay
			ec.delayDone = false
			ec.delay.Schedule(ec.s.clock.Now().Add(step.Delay))

		case evDelay:
			if !ec.delayDone {
				return
			}
			ec.sendBuf = ec.script[ec.flight].Send
			ec.sendOff = 0
			ec.state = evSend

		case evSend:
			for ec.sendOff < len(ec.sendBuf) {
				n, err := ec.c.TryWrite(ec.sendBuf[ec.sendOff:])
				ec.sendOff += n
				if err != nil {
					ec.finish()
					return
				}
				if ec.sendOff < len(ec.sendBuf) {
					return // send buffer full; resume on writable
				}
			}
			ec.sendBuf = nil
			ec.flight++
			if ec.flight < len(ec.script) {
				ec.state = evHandshake
				ec.hsNeed = handshake.HeaderLen
				continue
			}
			ec.state = evRequest

		case evRequest:
			if !ec.readRequest() {
				return
			}

		case evPump:
			done, err := ec.pumpResponse()
			if !done {
				return
			}
			req := ec.pendReq
			ec.pendReq = nil
			if err != nil {
				// The replay failed exactly where the blocking engine's
				// conn write would have: the record's written snapshot is
				// the body-byte count the blocking responseWriter had
				// framed when that call was issued, which is what its
				// aborted reqDone would have reported.
				if req != nil && ec.s.reqDone != nil {
					ec.s.reqDone(req, ec.stage.recs[ec.pumpIdx].written, true)
				}
				ec.finish()
				return
			}
			if req != nil && ec.s.reqDone != nil {
				ec.s.reqDone(req, ec.rw.written, false)
			}
			if !ec.pendKA {
				ec.finish()
				return
			}
			ec.state = evRequest
		}
	}
}

// readRequest accumulates, parses and dispatches one request. It
// returns false when the machine must wait for more input (or has
// reached a terminal state).
func (ec *eventConn) readRequest() bool {
	if ec.req == nil {
		// Accumulate until the header terminator is visible.
		he := -1
		for {
			if i := bytes.Index(ec.acc[ec.scan:], crlfcrlf); i >= 0 {
				he = ec.scan + i
				break
			}
			if len(ec.acc) >= len(crlfcrlf)-1 {
				ec.scan = len(ec.acc) - (len(crlfcrlf) - 1)
			}
			ok, err := ec.fill(len(ec.acc) + 1)
			if err != nil {
				ec.finish()
				return false
			}
			if !ok {
				return false
			}
		}
		ec.hdrReader.Reset(ec.acc[:he+len(crlfcrlf)])
		ec.br.Reset(&ec.hdrReader)
		req, err := http.ReadRequest(ec.br)
		if err != nil {
			ec.finish()
			return false
		}
		if len(req.TransferEncoding) > 0 {
			// Chunked request bodies never occur in this tree; the event
			// engine does not reassemble them.
			ec.finish()
			return false
		}
		ec.req = req
		ec.reqTotal = he + len(crlfcrlf)
		if req.ContentLength > 0 {
			ec.reqTotal += int(req.ContentLength)
		}
	}
	// A declared body is buffered before dispatch (the handler cannot
	// park to wait for it); bodyless requests — all traffic in this
	// tree — dispatch at the same instant the blocking ReadRequest
	// returns.
	ok, err := ec.fill(ec.reqTotal)
	if err != nil {
		ec.finish()
		return false
	}
	if !ok {
		return false
	}
	req := ec.req
	ec.req = nil
	if ec.s.blackhole.Load() {
		ec.acc = ec.acc[:0]
		ec.scan = 0
		ec.state = evSwallow
		return true
	}
	req.RemoteAddr = ec.remoteAddr
	if req.ContentLength > 0 {
		ec.bodyReader.Reset(ec.acc[ec.reqTotal-int(req.ContentLength) : ec.reqTotal])
		req.Body = io.NopCloser(&ec.bodyReader)
	}
	ec.dispatch(req)
	ec.consume(ec.reqTotal)
	ec.scan = 0
	return true
}

// dispatch stages one response: the handler runs inline (at the
// request parse instant, matching the blocking engine) against the
// staging writer, and the machine transitions to the pump.
func (ec *eventConn) dispatch(req *http.Request) {
	s := ec.s
	w := ec.rw
	w.reset(req.Method == http.MethodHead)
	ec.stage.reset()
	if s.reqStart != nil {
		s.reqStart(req)
	}
	panicked := false
	func() {
		defer func() {
			if e := recover(); e != nil {
				panicked = true
				fmt.Fprintf(os.Stderr, "httpx: panic serving %v: %v\n%s",
					ec.c.RemoteAddr(), e, debug.Stack())
			}
		}()
		s.h.ServeHTTP(w, req)
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
	}()
	if panicked {
		// As in the blocking engine, the conn dies but the calls the
		// handler completed before panicking still reach the wire.
		if s.reqDone != nil {
			s.reqDone(req, w.written, true)
		}
		ec.pendReq = nil
		ec.pendKA = false
	} else {
		ec.pendReq = req
		ec.pendKA = w.finish() && !req.Close
	}
	ec.state = evPump
	ec.pumpIdx, ec.pumpOff = 0, 0
}

// pumpResponse replays the staged connection-level calls through
// TryWrite, preserving each call's boundary (segment sizes depend on
// the remaining length of the call in progress). done=false means the
// send buffer filled and the armed writable callback resumes the pump;
// a non-nil err reports the replay failing at record pumpIdx.
func (ec *eventConn) pumpResponse() (done bool, err error) {
	recs := ec.stage.recs
	for ec.pumpIdx < len(recs) {
		rec := &recs[ec.pumpIdx]
		for ec.pumpOff < len(rec.data) {
			var n int
			var werr error
			if rec.stable {
				n, werr = ec.c.TryWriteStable(rec.data[ec.pumpOff:])
			} else {
				n, werr = ec.c.TryWrite(rec.data[ec.pumpOff:])
			}
			ec.pumpOff += n
			if werr != nil {
				return true, werr
			}
			if ec.pumpOff < len(rec.data) {
				return false, nil
			}
		}
		ec.pumpIdx++
		ec.pumpOff = 0
	}
	return true, nil
}

// stageRec is one recorded connection-level write call. written is the
// responseWriter's framed-body count at the instant the call was
// issued: when the replay of this record fails, that is exactly the
// count the blocking engine's aborted reqDone would have reported
// (body bytes are counted before the connection write they trigger,
// and a stop-on-error handler issues no calls after the failing one).
type stageRec struct {
	data    []byte
	stable  bool
	written int64
}

// stageWriter is the net.Conn the responseWriter writes into under the
// event engine: it records every connection-level call — boundaries
// preserved — for later replay. Non-stable bytes are copied into an
// arena (bufio reuses its flush buffer immediately); stable views are
// aliased, keeping the zero-copy path zero-copy.
type stageWriter struct {
	rw    *responseWriter
	arena []byte
	recs  []stageRec
}

func (st *stageWriter) reset() {
	st.arena = st.arena[:0]
	st.recs = st.recs[:0]
}

func (st *stageWriter) Write(p []byte) (int, error) {
	off := len(st.arena)
	st.arena = append(st.arena, p...)
	st.recs = append(st.recs, stageRec{data: st.arena[off:len(st.arena):len(st.arena)],
		written: st.rw.written})
	return len(p), nil
}

// WriteStable implements stableConnWriter, so the responseWriter's
// zero-copy path stages aliases of the origin's immortal page-cache
// views instead of copies.
func (st *stageWriter) WriteStable(p []byte) (int, error) {
	//detlint:allow borrowck -- the stage is a sanctioned delivery-chain tier like the netem pipe: the record aliases the stable view only until the pump hands it to TryWriteStable on the same connection
	st.recs = append(st.recs, stageRec{data: p, stable: true, written: st.rw.written})
	return len(p), nil
}

func (st *stageWriter) Read([]byte) (int, error)         { return 0, io.EOF }
func (st *stageWriter) Close() error                     { return nil }
func (st *stageWriter) LocalAddr() net.Addr              { return nil }
func (st *stageWriter) RemoteAddr() net.Addr             { return nil }
func (st *stageWriter) SetDeadline(time.Time) error      { return nil }
func (st *stageWriter) SetReadDeadline(time.Time) error  { return nil }
func (st *stageWriter) SetWriteDeadline(time.Time) error { return nil }
