package httpx

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/handshake"
	"repro/internal/netem"
)

// engineTrace runs a fixed client workload against a server on one
// engine (blocking goroutines or the event loop) and returns a trace
// of everything observable: client-side response content and
// completion instants, server-side request hook records, and the
// abort/blackhole/drain milestones. The two engines must produce the
// same multiset of records — same bytes, same virtual instants —
// which is the cross-engine byte-identity contract the committed
// fleet reports rely on.
//
// The link is deliberately hostile: slow-start, jitter and loss (so
// the per-direction rng draw order must match push for push), and a
// small send buffer (so response pumps experience backpressure and
// resume through OnWritable at the same instants the blocking writer
// re-wakes from its cond).
func engineTrace(t *testing.T, evented bool) []string {
	t.Helper()
	clock := netem.NewVirtualClock()
	defer clock.Stop()
	n := netem.NewNetwork(clock)
	inner, err := n.Listen("srv.test:443", 0)
	if err != nil {
		t.Fatal(err)
	}
	epoch := clock.Now()

	var mu sync.Mutex
	var trace []string
	record := func(format string, args ...any) {
		mu.Lock()
		trace = append(trace, fmt.Sprintf("%v "+format,
			append([]any{clock.Now().Sub(epoch)}, args...)...))
		mu.Unlock()
	}

	pre := make([]byte, 200)
	tail := make([]byte, 100)
	stableBody := make([]byte, 300<<10)
	for i := range stableBody {
		stableBody[i] = byte(i * 13)
	}
	big := make([]byte, 4<<20)
	for i := range big {
		big[i] = byte(i * 31)
	}

	type stableW interface {
		WriteStable([]byte) (int, error)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/stable", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", strconv.Itoa(len(pre)+len(stableBody)+len(tail)))
		if _, err := w.Write(pre); err != nil {
			return
		}
		if _, err := w.(stableW).WriteStable(stableBody); err != nil {
			return
		}
		w.Write(tail)
	})
	mux.HandleFunc("/chunked", func(w http.ResponseWriter, r *http.Request) {
		buf := make([]byte, 8<<10) // reused and rewritten: the wire must see each generation
		for i := 0; i < 16; i++ {
			for j := range buf {
				buf[j] = byte(i + j)
			}
			if _, err := w.Write(buf); err != nil {
				return
			}
		}
	})
	mux.HandleFunc("/big", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", strconv.Itoa(len(big)))
		sw := w.(stableW)
		for off := 0; off < len(big); off += 32 << 10 {
			if _, err := sw.WriteStable(big[off : off+32<<10]); err != nil {
				return
			}
		}
	})

	opts := []ServerOption{
		WithRequestHooks(
			func(r *http.Request) { record("reqStart %s %s", r.Method, r.URL.Path) },
			func(r *http.Request, bodyBytes int64, aborted bool) {
				record("reqDone %s %s bytes=%d aborted=%v", r.Method, r.URL.Path, bodyBytes, aborted)
			}),
	}
	if evented {
		opts = append(opts, WithEventLoop())
	}
	srv := Serve(clock, inner, mux, handshake.Params{Delta1: 4 * time.Millisecond, Delta2: 3 * time.Millisecond}, opts...)
	defer srv.Close()

	lp := netem.LinkParams{
		Rate: netem.Mbps(8), Delay: 25 * time.Millisecond,
		SlowStart: true, Jitter: 2 * time.Millisecond,
		LossProb: 0.01, RTOPenalty: 120 * time.Millisecond,
		SendBuf: 32 << 10, Seed: 99,
	}
	iface := n.NewInterface("cli", lp, lp)

	// The aborter kills the interface mid-/big-transfer at a fixed
	// instant; the client quantizes the /big request start so the abort
	// lands at the same virtual offset into the transfer on every run.
	clock.Go(func(p *netem.Participant) {
		p.SleepUntil(epoch.Add(10*time.Second + 500*time.Millisecond))
		iface.SetAlive(false)
		record("iface down")
	})

	done := make(chan struct{})
	clock.Go(func(p *netem.Participant) {
		defer close(done)
		tr := NewTransport(iface)
		tr.Bind(p)
		client := &http.Client{Transport: tr}
		get := func(path string) {
			resp, err := client.Get("http://srv.test:443" + path)
			if err != nil {
				record("GET %s err=%v", path, err)
				return
			}
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			var sum uint64
			for _, b := range body {
				sum = sum*131 + uint64(b)
			}
			record("GET %s status=%d len=%d sum=%d readErr=%v", path, resp.StatusCode, len(body), sum, rerr)
		}
		get("/stable")
		get("/stable") // keep-alive reuse
		get("/chunked")
		if n, err := Head(context.Background(), client, "http://srv.test:443/stable"); true {
			record("HEAD /stable len=%d err=%v", n, err)
		}
		p.SleepUntil(epoch.Add(10 * time.Second))
		get("/big") // aborted mid-body by the interface loss at 10.5s
		iface.SetAlive(true)

		// Blackholed server: the request deadline is the only way out.
		p.SleepUntil(epoch.Add(12 * time.Second))
		srv.SetBlackhole(true)
		tr.SetRequestTimeout(2 * time.Second)
		get("/stable")
		srv.SetBlackhole(false)
		tr.SetRequestTimeout(0)
		get("/stable") // fresh conn, healthy again

		tr.Shutdown(errors.New("workload over"))
		if !srv.Drain(p) {
			record("drain failed")
			return
		}
		record("drained")
	})
	<-done

	mu.Lock()
	defer mu.Unlock()
	// Same-instant records from different goroutines may interleave
	// differently run to run (the clock pins instants, not intra-instant
	// scheduling); compare as a sorted multiset — every record carries
	// its virtual instant, so the comparison still pins the timeline.
	out := append([]string(nil), trace...)
	sort.Strings(out)
	return out
}

// TestEventServerMatchesBlockingTimeline is the cross-engine contract
// test: the event-loop server must reproduce the blocking engine's
// observable timeline byte for byte — response bytes, completion
// instants, request hook instants, aborted-request byte attribution,
// blackhole behaviour and drain — under slow-start, jitter, loss and
// send-buffer backpressure.
func TestEventServerMatchesBlockingTimeline(t *testing.T) {
	blocking := engineTrace(t, false)
	eventloop := engineTrace(t, true)
	if len(blocking) != len(eventloop) {
		t.Fatalf("trace lengths differ: blocking %d, eventloop %d\nblocking: %v\neventloop: %v",
			len(blocking), len(eventloop), blocking, eventloop)
	}
	for i := range blocking {
		if blocking[i] != eventloop[i] {
			t.Errorf("trace[%d]:\n  blocking:  %s\n  eventloop: %s", i, blocking[i], eventloop[i])
		}
	}
}

// TestEventServerGoroutineFootprint verifies the point of the event
// engine: connections held open against an evented server park no
// per-connection goroutines.
func TestEventServerGoroutineFootprint(t *testing.T) {
	clock := netem.NewVirtualClock()
	defer clock.Stop()
	n := netem.NewNetwork(clock)
	inner, err := n.Listen("srv.test:443", 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(clock, inner, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}), handshake.Params{}, WithEventLoop())
	defer srv.Close()

	lp := netem.LinkParams{Rate: netem.Mbps(50), Delay: time.Millisecond}
	const conns = 64
	done := make(chan error, conns)
	for i := 0; i < conns; i++ {
		iface := n.NewInterface(fmt.Sprintf("cli%d", i), lp, lp)
		clock.Go(func(p *netem.Participant) {
			tr := NewTransport(iface)
			tr.Bind(p)
			client := &http.Client{Transport: tr}
			resp, err := client.Get("http://srv.test:443/")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			done <- err
			// Keep the pooled conn open; the server side must not hold a
			// goroutine for it. The transport is abandoned, not shut
			// down, until the test ends.
			p.SleepUntil(clock.Now().Add(time.Hour))
		})
	}
	for i := 0; i < conns; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	srv.mu.Lock()
	active := srv.active
	srv.mu.Unlock()
	if active != conns {
		t.Fatalf("active conns = %d, want %d", active, conns)
	}
}
