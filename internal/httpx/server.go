package httpx

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/handshake"
	"repro/internal/netem"
)

// Server is a minimal HTTP/1.1 server for the emulated origin. Every
// goroutine it spawns — the accept loop and one loop per connection —
// is registered with the emulation clock (receiving its Participant
// handle), and all their blocking (accepts, handshake processing
// delays, request reads, paced response writes, handler think time) is
// clock-visible, so the virtual clock can account for the whole server
// side deterministically.
type Server struct {
	clock *netem.Clock
	l     net.Listener
	h     http.Handler
	hs    handshake.Params

	// Request lifecycle hooks, fixed before the accept loop starts.
	reqStart func(*http.Request)
	reqDone  func(req *http.Request, bodyBytes int64, aborted bool)

	// evented serves netem connections as event-loop state machines
	// instead of parked per-connection goroutines (WithEventLoop).
	evented bool

	// blackhole makes the server accept connections and read requests
	// but never respond (a wedged-process fault). Checked both before
	// the handshake (new connections go silent) and before each request
	// dispatch (established keep-alive connections go silent too — the
	// clients most exposed to a wedged server are exactly the ones with
	// a pooled connection to it).
	blackhole atomic.Bool

	// Connection-loop accounting behind the Drain barrier. Conn loops
	// are clock-registered goroutines, so their exits land at emulated
	// instants; a drainer parked on cond therefore joins them on the
	// clock, with no wall-clock polling.
	mu     sync.Mutex
	cond   *netem.Cond
	active int // running per-connection loops
}

// ServerOption configures a Server at Serve time (the accept loop runs
// as soon as Serve returns, so options cannot be applied later).
type ServerOption func(*Server)

// WithRequestHooks observes every dispatched request: start fires when
// the parsed request is handed to the handler, done fires after the
// response is finished (or abandoned), reporting the body bytes the
// handler produced and whether the request was aborted — i.e. the
// response never reached the client intact because a connection write
// failed (teardown abort, interface loss, server kill) or the handler
// panicked. Both fire on the clock-registered per-connection goroutine,
// so under a deterministic teardown every accounting mutation lands at
// a deterministic emulated instant. Either hook may be nil.
func WithRequestHooks(start func(*http.Request), done func(req *http.Request, bodyBytes int64, aborted bool)) ServerOption {
	return func(s *Server) {
		s.reqStart = start
		s.reqDone = done
	}
}

// Serve starts serving h on l, completing the emulated TLS-style
// handshake (with processing delays hs) on every accepted connection
// before reading requests. Close the returned server to stop.
func Serve(clock *netem.Clock, l net.Listener, h http.Handler, hs handshake.Params, opts ...ServerOption) *Server {
	s := &Server{clock: clock, l: l, h: h, hs: hs}
	s.cond = netem.NewCond(clock, &s.mu)
	for _, opt := range opts {
		opt(s)
	}
	clock.Go(s.acceptLoop)
	return s
}

// Close stops the accept loop and, when l is a netem Listener, aborts
// established connections (ErrServerDown), which unblocks and terminates
// the per-connection loops.
func (s *Server) Close() error { return s.l.Close() }

// SetBlackhole switches the server's blackhole fault on or off. A
// blackholed server keeps accepting connections and reading requests
// but never writes a byte back — the failure mode of a wedged process
// behind a live listener. Swallowed connections terminate only when
// the peer aborts them (a client request deadline, a transport
// shutdown), so clients without a deadline hang forever, by design.
// Safe to call from a netem.Timer callback: it only flips a flag.
func (s *Server) SetBlackhole(on bool) { s.blackhole.Store(on) }

// Drain parks the caller until every per-connection loop has unwound,
// waiting on the emulation clock (p may be nil for an unregistered
// caller, which parks as a transient). The caller must guarantee no new
// connections will arrive — every client is gone or shut down —
// otherwise the drain chases a moving target. It returns false when the
// clock stopped before the loops unwound. After a true return, all
// request accounting (WithRequestHooks done callbacks included) has
// been published.
func (s *Server) Drain(p *netem.Participant) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.active > 0 {
		if !s.cond.Wait(p) {
			return s.active == 0
		}
	}
	return true
}

// Addr returns the listen address.
func (s *Server) Addr() net.Addr { return s.l.Addr() }

// participantAccepter is implemented by netem.Listener: accepting with
// the loop's Participant parks O(1) instead of as a transient.
type participantAccepter interface {
	AcceptP(*netem.Participant) (net.Conn, error)
}

// participantBinder is implemented by netem.Conn.
type participantBinder interface {
	Bind(*netem.Participant)
}

func (s *Server) acceptLoop(p *netem.Participant) {
	pl, _ := s.l.(participantAccepter)
	for {
		var c net.Conn
		var err error
		if pl != nil {
			c, err = pl.AcceptP(p)
		} else {
			c, err = s.l.Accept()
		}
		if err != nil {
			return
		}
		conn := c
		s.mu.Lock()
		s.active++
		s.mu.Unlock()
		if s.evented {
			if nc, ok := conn.(*netem.Conn); ok {
				s.serveConnEvent(nc)
				continue
			}
		}
		s.clock.Go(func(cp *netem.Participant) { s.serveConn(cp, conn) })
	}
}

func (s *Server) serveConn(p *netem.Participant, c net.Conn) {
	// The active decrement is the outermost defer: by the time a drainer
	// observes active == 0, this loop's request accounting (including
	// the panic path) has fully published.
	defer func() {
		s.mu.Lock()
		s.active--
		s.cond.Broadcast()
		s.mu.Unlock()
	}()
	defer c.Close()
	// Contain handler panics to this connection, as net/http's server
	// does: the conn dies, the process (and the experiment) survives.
	defer func() {
		if e := recover(); e != nil {
			fmt.Fprintf(os.Stderr, "httpx: panic serving %v: %v\n%s", c.RemoteAddr(), e, debug.Stack())
		}
	}()
	if b, ok := c.(participantBinder); ok {
		b.Bind(p)
	}
	if s.blackhole.Load() {
		swallow(c)
		return
	}
	if err := handshake.Server(c, p, s.hs); err != nil {
		return
	}
	br := getReader(c)
	defer putReader(br)
	// One response writer — header map, write buffer and all — serves
	// every keep-alive request on this connection; reset wipes the
	// per-request state without surrendering the allocations.
	w := &responseWriter{conn: c, part: p, header: make(http.Header, 8),
		bw: bufio.NewWriterSize(c, 4<<10)}
	remoteAddr := c.RemoteAddr().String()
	for {
		req, err := http.ReadRequest(br)
		if err != nil {
			return
		}
		req.RemoteAddr = remoteAddr
		if s.blackhole.Load() {
			swallow(br)
			return
		}
		w.reset(req.Method == http.MethodHead)
		if !s.serveRequest(w, req) || req.Close {
			return
		}
	}
}

// swallow reads and discards from r until it errors, never responding:
// the read parks on the clock like any other connection read, so a
// blackholed connection stays wedged at emulated instants until the
// peer aborts it.
func swallow(r io.Reader) { io.Copy(io.Discard, r) }

// serveRequest dispatches one request through the lifecycle hooks and
// reports whether the connection can carry another. The done hook fires
// on every path out; a request counts as aborted when its response did
// not reach the client intact — a connection write failed (teardown
// abort, interface loss, server kill) or the handler panicked (the
// panic then continues into the conn-level recover). Retiring the
// connection for framing reasons (Connection: close, close-delimited
// body) is a clean completion.
func (s *Server) serveRequest(w *responseWriter, req *http.Request) (keepAlive bool) {
	if s.reqStart != nil {
		s.reqStart(req)
	}
	completed := false
	if s.reqDone != nil {
		defer func() { s.reqDone(req, w.written, !completed) }()
	}
	s.h.ServeHTTP(w, req)
	if req.Body != nil {
		io.Copy(io.Discard, req.Body)
		req.Body.Close()
	}
	keepAlive = w.finish()
	completed = w.err == nil
	return keepAlive
}

// ConnParticipant returns the clock Participant of the server
// connection behind w, or nil when w is not an httpx response writer.
// Handlers run on the per-connection goroutine, so emulated think time
// and pacing they charge must park through this handle.
func ConnParticipant(w http.ResponseWriter) *netem.Participant {
	if rw, ok := w.(*responseWriter); ok {
		return rw.part
	}
	return nil
}

// responseWriter streams a response over the emulated connection so the
// handler's write pattern (and any pacing it applies) reaches the link
// shaper unbuffered beyond a small coalescing window. Bodies without a
// declared Content-Length use chunked transfer encoding to keep the
// connection reusable.
type responseWriter struct {
	conn        net.Conn
	part        *netem.Participant
	bw          *bufio.Writer
	header      http.Header
	isHead      bool
	wroteHeader bool
	status      int
	chunked     bool
	hasCL       bool
	declaredCL  int64 // parsed Content-Length when hasCL
	written     int64 // body bytes actually framed
	err         error // first connection write/flush failure, if any
}

// reset clears per-request state for the next keep-alive request,
// keeping the header map and write buffer allocations.
func (w *responseWriter) reset(isHead bool) {
	clear(w.header)
	w.bw.Reset(w.conn)
	w.isHead = isHead
	w.wroteHeader = false
	w.status = 0
	w.chunked = false
	w.hasCL = false
	w.declaredCL = 0
	w.written = 0
	w.err = nil
}

// Header implements http.ResponseWriter.
func (w *responseWriter) Header() http.Header { return w.header }

// WriteHeader implements http.ResponseWriter.
func (w *responseWriter) WriteHeader(status int) {
	if w.wroteHeader {
		return
	}
	w.wroteHeader = true
	w.status = status
	if cl := w.header.Get("Content-Length"); cl != "" {
		n, err := strconv.ParseInt(cl, 10, 64)
		w.hasCL = err == nil && n >= 0
		w.declaredCL = n
		if !w.hasCL {
			// A malformed handler-set length must not reach the wire
			// next to the chunked framing we fall back to.
			w.header.Del("Content-Length")
		}
	}
	if !w.hasCL && !w.isHead && bodyAllowed(status) {
		w.header.Set("Transfer-Encoding", "chunked")
		w.chunked = true
	}
	text := http.StatusText(status)
	if text == "" {
		text = "status"
	}
	fmt.Fprintf(w.bw, "HTTP/1.1 %03d %s\r\n", status, text)
	w.header.Write(w.bw)
	io.WriteString(w.bw, "\r\n")
}

func bodyAllowed(status int) bool {
	return status >= 200 && status != http.StatusNoContent && status != http.StatusNotModified
}

// Write implements http.ResponseWriter. Body bytes for HEAD requests
// and bodiless statuses (204/304) are swallowed, as net/http does —
// putting them on the wire would desync the keep-alive framing.
func (w *responseWriter) Write(b []byte) (int, error) {
	if !w.wroteHeader {
		w.WriteHeader(http.StatusOK)
	}
	if len(b) == 0 || w.isHead || !bodyAllowed(w.status) {
		return len(b), nil
	}
	w.written += int64(len(b))
	if w.chunked {
		if _, err := fmt.Fprintf(w.bw, "%x\r\n", len(b)); err != nil {
			return 0, w.fail(err)
		}
		n, err := w.bw.Write(b)
		if err != nil {
			return n, w.fail(err)
		}
		if _, err := io.WriteString(w.bw, "\r\n"); err != nil {
			return n, w.fail(err)
		}
		return n, nil
	}
	n, err := w.bw.Write(b)
	if err != nil {
		return n, w.fail(err)
	}
	return n, nil
}

// stableConnWriter is implemented by netem.Conn: a write whose buffer
// is immutable and immortal may be aliased into delivery segments
// instead of copied.
type stableConnWriter interface {
	WriteStable(p []byte) (int, error)
}

// WriteStable is Write for body bytes that are immutable and outlive
// the response (borrowed views of the origin's content page cache).
// On a Content-Length-framed response over a netem conn the bulk of
// the bytes bypasses both the coalescing buffer and the pipe's segment
// copy; otherwise it degrades to Write.
//
// The connection sees the exact write-call sequence bufio would have
// produced — fill a partial buffer, flush it, direct-write a remainder
// only when it exceeds the buffer, re-buffer a short tail — because
// the pipe truncates its final pacing segment to each call's length:
// different call boundaries would mean different segment sizes and a
// different emulated timeline.
func (w *responseWriter) WriteStable(b []byte) (int, error) {
	if !w.wroteHeader {
		w.WriteHeader(http.StatusOK)
	}
	if len(b) == 0 || w.isHead || !bodyAllowed(w.status) {
		return len(b), nil
	}
	sc, ok := w.conn.(stableConnWriter)
	if !ok || w.chunked {
		return w.Write(b)
	}
	w.written += int64(len(b))
	size := w.bw.Available() + w.bw.Buffered()
	total := 0
	for len(b) > w.bw.Available() {
		if w.bw.Buffered() == 0 && len(b) >= size {
			n, err := sc.WriteStable(b)
			total += n
			b = b[n:]
			if err != nil {
				return total, w.fail(err)
			}
			continue
		}
		k := w.bw.Available()
		if _, err := w.bw.Write(b[:k]); err != nil {
			return total, w.fail(err)
		}
		total += k
		b = b[k:]
		if err := w.bw.Flush(); err != nil {
			return total, w.fail(err)
		}
	}
	if len(b) > 0 {
		if _, err := w.bw.Write(b); err != nil {
			return total, w.fail(err)
		}
		total += len(b)
	}
	return total, nil
}

// fail records the first connection write failure (the request's abort
// disposition) and returns err for the caller to propagate.
func (w *responseWriter) fail(err error) error {
	if w.err == nil {
		w.err = err
	}
	return err
}

// copyBufPool recycles the scratch buffers ReadFrom streams bodies
// through (io.Copy would otherwise allocate a fresh 32 KB buffer per
// response).
var copyBufPool = sync.Pool{
	New: func() any { b := make([]byte, 32<<10); return &b },
}

// ReadFrom implements io.ReaderFrom so io.Copy/io.CopyN (and therefore
// http.ServeContent) stream bodies through a pooled buffer.
func (w *responseWriter) ReadFrom(r io.Reader) (int64, error) {
	bp := copyBufPool.Get().(*[]byte)
	defer copyBufPool.Put(bp)
	buf := *bp
	var total int64
	for {
		n, rerr := r.Read(buf)
		if n > 0 {
			wn, werr := w.Write(buf[:n])
			total += int64(wn)
			if werr != nil {
				return total, werr
			}
		}
		if rerr == io.EOF {
			return total, nil
		}
		if rerr != nil {
			return total, rerr
		}
	}
}

// finish completes the response and reports whether the connection can
// carry another request.
func (w *responseWriter) finish() bool {
	if !w.wroteHeader {
		w.WriteHeader(http.StatusOK)
	}
	if w.chunked {
		io.WriteString(w.bw, "0\r\n\r\n")
	}
	if err := w.bw.Flush(); err != nil {
		w.fail(err)
		return false
	}
	if w.header.Get("Connection") == "close" {
		return false
	}
	if w.hasCL && !w.isHead && bodyAllowed(w.status) && w.written != w.declaredCL {
		// Short (or long) write against the declared Content-Length: the
		// client would wait forever for the remainder, so kill the conn
		// as net/http's server does.
		return false
	}
	// Without length framing the client can only detect the body's end
	// by connection close.
	return w.hasCL || w.chunked || w.isHead || !bodyAllowed(w.status)
}
