package httpx

import (
	"errors"
	"fmt"
	"io"
	neturl "net/url"
	"strconv"
	"sync"
	"time"

	"repro/internal/handshake"
	"repro/internal/netem"
)

// Event-loop client engine.
//
// The blocking Transport parks one goroutine per in-flight request;
// EventTransport runs each request as a netem completion-API state
// machine on the session's event loop, so a fleet-scale population
// holds O(cores) goroutines instead of O(sessions). The machine
// replays exactly the blocking round trip's connection-level
// behaviour — the handshake script's message boundaries, the single
// rendered request write, the demand-driven response reads at their
// arrival instants — so a scenario produces a byte-identical timeline
// on either engine. Range bodies are delivered as borrowed segment
// views (Conn.ReadBuf) instead of copies; the consumer hands them
// back through the release callback, and a per-connection FIFO ledger
// reconciles held body views with the immediately-releasable protocol
// bytes around them (Conn.Release is strictly FIFO per direction).
//
// Every method and callback runs as a step on the transport's Loop:
// callers must invoke Get/GetRangeViews/Shutdown from loop steps (or
// before any machine exists), and completion callbacks fire on the
// loop. Nothing here parks, and no internal locking is needed.

// EventTransport is the event-loop counterpart of Transport: one per
// (session, interface), sharing the session's Loop with the machines
// of every other path so their steps serialize without locks.
type EventTransport struct {
	iface *netem.Interface
	clock *netem.Clock
	loop  *netem.Loop

	reqTimeout time.Duration
	hedge      time.Duration

	idle   map[string][]*evClientConn
	live   map[*evClientConn]struct{}
	closed error
}

// NewEventTransport builds an event-loop transport over iface whose
// machines run as steps of loop.
func NewEventTransport(iface *netem.Interface, clock *netem.Clock, loop *netem.Loop) *EventTransport {
	return &EventTransport{
		iface: iface,
		clock: clock,
		loop:  loop,
		idle:  make(map[string][]*evClientConn),
		live:  make(map[*evClientConn]struct{}),
	}
}

// Loop returns the event loop the transport's machines run on.
func (t *EventTransport) Loop() *netem.Loop { return t.loop }

// SetRequestTimeout mirrors Transport.SetRequestTimeout: every
// subsequent request attempt that has not delivered its full body
// within d of starting is aborted with ErrRequestTimeout at exactly
// that virtual instant. Zero disables the deadline.
func (t *EventTransport) SetRequestTimeout(d time.Duration) { t.reqTimeout = d }

// SetHedge mirrors Transport.SetHedge: every subsequent attempt still
// in flight d after starting is aborted with ErrHedged at exactly that
// virtual instant. Zero disables the hedge budget.
func (t *EventTransport) SetHedge(d time.Duration) { t.hedge = d }

// Shutdown mirrors Transport.Shutdown at the caller's instant: new
// requests fail with err, idle connections close gracefully, and
// in-use connections are aborted with err (their machines observe the
// failure at exactly this instant). Idempotent.
func (t *EventTransport) Shutdown(err error) {
	if err == nil {
		err = errTransportClosed
	}
	if t.closed != nil {
		return
	}
	t.closed = err
	idle := t.idle
	t.idle = make(map[string][]*evClientConn)
	idleSet := make(map[*evClientConn]bool, len(idle))
	for _, pcs := range idle {
		for _, pc := range pcs {
			idleSet[pc] = true
		}
	}
	var inUse []*evClientConn
	for pc := range t.live { //detlint:allow maprange -- all aborts land at the caller's single pinned virtual instant; sweep order is unobservable
		if !idleSet[pc] {
			inUse = append(inUse, pc)
		}
	}
	for _, pcs := range idle {
		for _, pc := range pcs {
			t.retire(pc) // graceful close: the server sees EOF, not an abort
		}
	}
	for _, pc := range inUse {
		pc.c.Abort(err)
	}
}

// Get issues a bodyless GET and collects the response. A 200 response
// delivers its full body at the instant the last framing byte is
// consumed; any other status delivers (status, nil, nil) with the
// connection retired exactly as the blocking client's unread-body
// close would have (fetchInfo never reads non-200 bodies). Transport
// errors arrive unwrapped, as RoundTrip returns them.
func (t *EventTransport) Get(url string, cb func(status int, body []byte, err error)) {
	rq := &evReq{done: func(res *evResult, err error) {
		if err != nil {
			cb(0, nil, err)
			return
		}
		cb(res.status, res.body, nil)
	}}
	if !rq.target(url) {
		cb(0, nil, fmt.Errorf("httpx: invalid url %q", url))
		return
	}
	t.startRequest(rq)
}

// GetRangeViews is the evented GetRangeBuf: it fetches the inclusive
// byte range [from, to] of url and delivers the 206 body as borrowed
// views of the connection's arrived segments. The views are valid
// until release is called (from a loop step); releasing returns the
// bytes to the pipe's segment pool, completing the zero-copy read
// path. Failure modes, error wrapping and connection pooling follow
// GetRangeBuf exactly.
func (t *EventTransport) GetRangeViews(url string, from, to int64, cb func(views [][]byte, release func(), err error)) {
	if to < from {
		cb(nil, nil, fmt.Errorf("httpx: invalid range %d-%d", from, to))
		return
	}
	rq := &evReq{
		hasRange:  true,
		rangeFrom: from,
		rangeTo:   to,
	}
	rq.done = func(res *evResult, err error) {
		if err != nil {
			cb(nil, nil, err)
			return
		}
		if res.status != 206 {
			// Non-206: the collected (≤512-byte) prefix becomes the
			// StatusError message, exactly as the blocking ladder reads it.
			cb(nil, nil, &StatusError{Code: res.status,
				Msg: fmt.Sprintf("range %d-%d of %s: %.80s", from, to, url, res.body)})
			return
		}
		want := to - from + 1
		if res.bodyN != want {
			cb(nil, nil, fmt.Errorf("httpx: range %d-%d returned %d bytes, want %d", from, to, res.bodyN, want))
			return
		}
		if res.views == nil {
			// Collect fallback (chunked or mis-declared 206, never produced
			// by the emulated origin): hand the copy over as a single view.
			body := res.body
			cb([][]byte{body}, func() {}, nil)
			return
		}
		cb(res.views, res.release, nil)
	}
	if !rq.target(url) {
		cb(nil, nil, fmt.Errorf("httpx: invalid url %q", url))
		return
	}
	t.startRequest(rq)
}

// evResult is one completed exchange, pre-interpretation.
type evResult struct {
	status  int
	body    []byte   // collect mode
	views   [][]byte // borrow mode (206 range bodies)
	release func()
	bodyN   int64 // logical body bytes
}

// evClientConn is one client connection shared by successive request
// machines (keep-alive pooling mirrors the blocking persistConn).
type evClientConn struct {
	t      *EventTransport
	c      *netem.Conn
	addr   string
	secure bool
	rq     *evReq // in-flight request machine; nil when idle

	// relq is the FIFO release ledger: every consumed stream byte is
	// accounted here in arrival order, either immediately releasable
	// (protocol bytes, copied-out bodies) or held until the borrow's
	// consumer releases it. Conn.Release is strictly FIFO, so held body
	// views block the release of later protocol bytes until then.
	relq []crelSeg
}

type viewHold struct{ released bool }

type crelSeg struct {
	n    int
	hold *viewHold // nil: releasable once it reaches the queue head
}

func (pc *evClientConn) pushRel(n int, hold *viewHold) {
	if n == 0 {
		return
	}
	if k := len(pc.relq) - 1; k >= 0 && pc.relq[k].hold == hold {
		pc.relq[k].n += n
	} else {
		pc.relq = append(pc.relq, crelSeg{n: n, hold: hold})
	}
}

// drainRel releases the maximal releasable prefix of the ledger.
func (pc *evClientConn) drainRel() {
	n, i := 0, 0
	for ; i < len(pc.relq); i++ {
		seg := pc.relq[i]
		if seg.hold != nil && !seg.hold.released {
			break
		}
		n += seg.n
	}
	if i > 0 {
		pc.relq = append(pc.relq[:0], pc.relq[i:]...)
	}
	if n > 0 {
		pc.c.Release(n)
	}
}

// step is the conn's readable/writable callback target; pooled idle
// conns ignore events (an abort while pooled is discovered on reuse,
// exactly as the blocking pool discovers it).
func (pc *evClientConn) step() {
	if pc.rq != nil {
		pc.rq.advance()
	}
}

// retire closes a connection for good and forgets it.
func (t *EventTransport) retire(pc *evClientConn) {
	delete(t.live, pc)
	pc.c.OnReadable(nil)
	pc.c.OnWritable(nil)
	pc.c.Close()
}

func (t *EventTransport) putIdle(pc *evClientConn) {
	pc.rq = nil
	if t.closed == nil && len(t.idle[pc.addr]) < maxIdlePerHost {
		t.idle[pc.addr] = append(t.idle[pc.addr], pc)
		return
	}
	t.retire(pc)
}

// dropIdle discards every pooled connection to addr (the blocking
// retry-once flush: a pooled conn's siblings are likely dead too).
func (t *EventTransport) dropIdle(addr string) {
	pcs := t.idle[addr]
	delete(t.idle, addr)
	for _, pc := range pcs {
		t.retire(pc)
	}
}

// evcState enumerates the request machine's states.
type evcState int

const (
	evcDial   evcState = iota // waiting for the dial completion
	evcHsSend                 // pumping a handshake flight
	evcHsRecv                 // accumulating one expected handshake message
	evcSend                   // pumping the rendered request
	evcHead                   // accumulating the response head
	evcBody                   // consuming the framed body
	evcDone                   // terminal
)

// ckState enumerates the chunked-framing decoder's states.
type ckState int

const (
	ckSize    ckState = iota // accumulating the hex size line
	ckData                   // consuming chunk data
	ckDataCR                 // consuming the CRLF after chunk data
	ckTrailer                // consuming the final CRLF after the 0 chunk
)

// evReq is one GET exchange as a state machine. It mirrors the
// blocking RoundTrip attempt for attempt, including the retry-once on
// a reused connection and the per-attempt request deadline.
type evReq struct {
	t    *EventTransport
	done func(*evResult, error)

	addr, host, uri    string
	hasRange           bool
	rangeFrom, rangeTo int64

	attempt int
	reused  bool
	pc      *evClientConn
	state   evcState

	dl      *netem.Timer // request deadline
	hdl     *netem.Timer // hedge budget
	dlFired bool
	dlErr   error // which budget fired: ErrRequestTimeout or ErrHedged

	script  [3]handshake.ClientStep
	flight  int
	hsNeed  int
	hsHdrOK bool

	sendBuf    []byte
	sendOff    int
	sendPooled *[]byte

	acc  []byte
	scan int

	status        int
	contentLength int64
	chunked       bool
	respClose     bool
	conndead      bool // body completed but the conn must not be pooled

	collectBody bool
	bodyLimit   int64 // collect: retire the conn at logical byte limit+1 (-1: none)
	discard     bool  // non-200 Get: retire at the first body byte
	body        []byte
	bodyN       int64
	remain      int64 // Content-Length countdown
	views       [][]byte
	hold        *viewHold

	ck       ckState
	ckRemain int64
	ckLine   []byte
}

// target parses the request URL into dial address, Host header and
// request URI, mirroring what http.NewRequest + writeRequest render.
func (rq *evReq) target(url string) bool {
	u, err := neturl.Parse(url)
	if err != nil || u.Host == "" {
		return false
	}
	rq.host = u.Host
	rq.uri = u.RequestURI()
	rq.addr = u.Host
	if u.Port() == "" {
		rq.addr = rq.addr + ":80"
	}
	return true
}

func (t *EventTransport) startRequest(rq *evReq) {
	rq.t = t
	rq.acc = (*headPool.Get().(*[]byte))[:0]
	rq.script = handshake.ClientScript()
	rq.armDeadline()
	rq.getConn()
}

// armDeadline starts the per-attempt deadline and hedge budget, the
// evented deadlineGuard: each attempt — including the retry — gets the
// full budgets, and firing aborts whatever conn the attempt holds. The
// deadline timer is created before the hedge timer, matching the
// blocking guard's creation order.
func (rq *evReq) armDeadline() {
	t := rq.t
	if t.reqTimeout <= 0 && t.hedge <= 0 {
		return
	}
	rq.dlFired = false
	rq.dlErr = nil
	now := t.clock.Now()
	if t.reqTimeout > 0 {
		if rq.dl == nil {
			rq.dl = t.clock.NewTimer(func() { t.loop.Do(rq.onDeadline) })
		}
		rq.dl.Schedule(now.Add(t.reqTimeout))
	}
	if t.hedge > 0 {
		if rq.hdl == nil {
			rq.hdl = t.clock.NewTimer(func() { t.loop.Do(rq.onHedge) })
		}
		rq.hdl.Schedule(now.Add(t.hedge))
	}
}

// stopTimers cancels both pending budgets.
func (rq *evReq) stopTimers() {
	if rq.dl != nil {
		rq.dl.Stop()
	}
	if rq.hdl != nil {
		rq.hdl.Stop()
	}
}

func (rq *evReq) onDeadline() {
	if rq.state == evcDone || rq.dlFired {
		return
	}
	rq.dlFired = true
	rq.dlErr = ErrRequestTimeout
	if rq.pc != nil {
		// The machine's next read or write observes ErrRequestTimeout
		// once queued data drains, exactly as the blocking reader does.
		rq.pc.c.Abort(ErrRequestTimeout)
	}
}

func (rq *evReq) onHedge() {
	if rq.state == evcDone || rq.dlFired {
		return
	}
	rq.dlFired = true
	rq.dlErr = ErrHedged
	if rq.pc != nil {
		rq.pc.c.Abort(ErrHedged)
	}
}

func (rq *evReq) getConn() {
	t := rq.t
	if err := t.closed; err != nil {
		rq.fail(err, false)
		return
	}
	if pcs := t.idle[rq.addr]; len(pcs) > 0 {
		pc := pcs[len(pcs)-1]
		t.idle[rq.addr] = pcs[:len(pcs)-1]
		rq.reused = true
		rq.bind(pc)
		if rq.dlFired {
			pc.c.Abort(rq.dlErr)
		}
		rq.beginSend()
		rq.advance()
		return
	}
	rq.state = evcDial
	err := t.iface.DialEvent(rq.addr, func(c *netem.Conn, derr error) {
		t.loop.Do(func() { rq.onDial(c, derr) })
	})
	if err != nil {
		// Immediate dial failures (interface down, connection refused)
		// surface exactly as the blocking Dial returns them.
		rq.fail(err, false)
	}
}

func (rq *evReq) onDial(c *netem.Conn, err error) {
	if err != nil {
		rq.fail(err, false)
		return
	}
	pc := &evClientConn{t: rq.t, c: c, addr: rq.addr}
	wake := func() { pc.t.loop.Do(pc.step) }
	c.OnReadable(wake)
	c.OnWritable(wake)
	rq.bind(pc)
	if rq.dlFired {
		// A budget elapsed while the dial was in flight: abort the
		// conn the moment it materialises (deadlineGuard.setConn). The
		// handshake still runs and fails on the aborted conn, wrapping
		// the timeout exactly as the blocking handshake error does.
		c.Abort(rq.dlErr)
	}
	rq.flight = 0
	rq.beginHsSend()
	rq.advance()
}

func (rq *evReq) bind(pc *evClientConn) {
	rq.pc = pc
	pc.rq = rq
}

func (rq *evReq) beginHsSend() {
	rq.state = evcHsSend
	rq.sendBuf = rq.script[rq.flight].Send
	rq.sendOff = 0
}

func (rq *evReq) beginSend() {
	rq.state = evcSend
	bp := reqBufPool.Get().(*[]byte)
	b := (*bp)[:0]
	// Byte-for-byte the blocking writeRequest fast path.
	b = append(b, "GET "...)
	b = append(b, rq.uri...)
	b = append(b, " HTTP/1.1\r\nHost: "...)
	b = append(b, rq.host...)
	b = append(b, "\r\nUser-Agent: Go-http-client/1.1\r\n"...)
	if rq.hasRange {
		b = append(b, "Range: bytes="...)
		b = strconv.AppendInt(b, rq.rangeFrom, 10)
		b = append(b, '-')
		b = strconv.AppendInt(b, rq.rangeTo, 10)
		b = append(b, "\r\n"...)
	}
	b = append(b, "\r\n"...)
	*bp = b
	rq.sendPooled = bp
	rq.sendBuf = b
	rq.sendOff = 0
}

func (rq *evReq) endSend() {
	rq.sendBuf = nil
	if rq.sendPooled != nil {
		reqBufPool.Put(rq.sendPooled)
		rq.sendPooled = nil
	}
}

// advance cranks the machine as far as current observable state
// allows; every wake (readable, writable, dial, deadline) funnels
// here. It returns when the machine waits for an event or reached a
// terminal state.
func (rq *evReq) advance() {
	for rq.state != evcDone {
		switch rq.state {
		case evcDial:
			return

		case evcHsSend, evcSend:
			for rq.sendOff < len(rq.sendBuf) {
				n, err := rq.pc.c.TryWrite(rq.sendBuf[rq.sendOff:])
				rq.sendOff += n
				if err != nil {
					rq.endSend()
					if rq.state == evcSend {
						rq.fail(fmt.Errorf("httpx: writing request: %w", err), true)
					} else {
						rq.fail(fmt.Errorf("httpx: secure handshake with %s: %w", rq.addr,
							fmt.Errorf("handshake: write msg %d: %w", rq.script[rq.flight].Send[0], err)), false)
					}
					return
				}
				if rq.sendOff < len(rq.sendBuf) {
					return // send buffer full; resume on writable
				}
			}
			if rq.state == evcHsSend {
				rq.sendBuf = nil
				rq.state = evcHsRecv
				rq.hsNeed = handshake.HeaderLen
				rq.hsHdrOK = false
			} else {
				rq.endSend()
				rq.state = evcHead
				rq.acc = rq.acc[:0]
				rq.scan = 0
			}

		case evcHsRecv, evcHead, evcBody:
			if !rq.readStep() {
				return
			}
		}
	}
}

// readStep consumes one arrived view (or the terminal read error)
// through the current receiving state, returning false when the
// machine must wait for the armed readable callback.
func (rq *evReq) readStep() bool {
	pc := rq.pc
	view, err := pc.c.ReadBuf()
	if err != nil {
		rq.readFail(err)
		return false
	}
	if view == nil {
		return false
	}
	off := 0
	for off < len(view) && rq.state != evcDone {
		var n int
		var hold *viewHold
		switch rq.state {
		case evcHsRecv:
			n = rq.feedHandshake(view[off:])
		case evcHead:
			n = rq.feedHead(view[off:])
		case evcBody:
			n, hold = rq.feedBody(view, off)
		default:
			// A state change mid-view back to a sending state (handshake
			// flights alternate): the remaining bytes belong to the next
			// expected message and stay queued — but the pipe delivers
			// strictly request-response, so this cannot happen. Guard by
			// treating the leftover as protocol bytes.
			n = len(view) - off
		}
		pc.pushRel(n, hold)
		off += n
		if rq.state == evcHsSend || rq.state == evcSend {
			// The machine turned around to send (next handshake flight or
			// the request); no response bytes can follow in this view.
			break
		}
	}
	if off < len(view) {
		// Leftover after a terminal state or a send turn-around: the
		// request-response protocol guarantees no response bytes follow,
		// so the tail is releasable residue (only ever seen on a conn
		// that is being retired after an error).
		pc.pushRel(len(view)-off, nil)
	}
	pc.drainRel()
	// The caller's advance loop dispatches on the (possibly new) state.
	return true
}

// readFail maps a read error to the failing stage's wrapped error,
// mirroring exactly where the blocking round trip would have observed
// it (handshake.readMsg's header/body wraps, io.ReadFull's partial-EOF
// promotion, lengthBody's early-EOF promotion).
func (rq *evReq) readFail(err error) {
	switch rq.state {
	case evcHsRecv:
		if !rq.hsHdrOK {
			if err == io.EOF && len(rq.acc) > 0 {
				err = io.ErrUnexpectedEOF
			}
			err = fmt.Errorf("handshake: read header: %w", err)
		} else {
			err = fmt.Errorf("handshake: read body: %w", err)
		}
		rq.fail(fmt.Errorf("httpx: secure handshake with %s: %w", rq.addr, err), false)
	case evcHead:
		rq.fail(fmt.Errorf("httpx: reading response: %w", err), true)
	case evcBody:
		if err == io.EOF && !rq.chunked && rq.remain < 0 {
			// Close-delimited body: the server's EOF is the body's end.
			rq.complete()
			return
		}
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		if rq.hasRange {
			err = fmt.Errorf("httpx: reading range body: %w", err)
		}
		rq.fail(err, false)
	default:
		rq.fail(err, false)
	}
}

// feedHandshake accumulates one expected handshake message, advancing
// the script exactly as handshake.Client does.
func (rq *evReq) feedHandshake(b []byte) int {
	take := min(len(b), rq.hsNeed-len(rq.acc))
	rq.acc = append(rq.acc, b[:take]...)
	if len(rq.acc) < rq.hsNeed {
		return take
	}
	if !rq.hsHdrOK {
		size, err := handshake.ParseHeader(rq.acc[:handshake.HeaderLen], rq.script[rq.flight].Expect)
		if err != nil {
			rq.fail(fmt.Errorf("httpx: secure handshake with %s: %w", rq.addr, err), false)
			return take
		}
		rq.hsHdrOK = true
		rq.hsNeed = handshake.HeaderLen + size
		return take
	}
	// Message complete (body bytes carry no information; discard).
	rq.acc = rq.acc[:0]
	rq.flight++
	if rq.flight < len(rq.script) {
		rq.beginHsSend()
		return take
	}
	rq.secured()
	return take
}

// secured finishes the connection handshake: the conn joins the live
// set and the request proceeds — unless the transport shut down while
// the dial or handshake was in flight, which retires the conn here
// exactly as the blocking getConn's re-check does.
func (rq *evReq) secured() {
	t := rq.t
	rq.pc.secure = true
	if err := t.closed; err != nil {
		t.retire(rq.pc)
		rq.pc = nil
		rq.fail(err, false)
		return
	}
	t.live[rq.pc] = struct{}{}
	rq.beginSend()
}

var evCrlfCrlf = []byte("\r\n\r\n")

// headPool recycles response-head accumulation buffers across
// requests: the proxy's padding header makes heads ~20 KB, far too
// much churn to allocate per request at fleet scale. A request takes a
// buffer when it starts and returns it when it delivers its result.
var headPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 4<<10); return &b },
}

const maxPooledHead = 64 << 10

// putAcc returns the request's head-accumulation buffer to the pool.
// Only call when no live slice of acc can escape the request: after
// parseHead has copied out everything it interprets, results reference
// rq.body and rq.views, never acc.
func (rq *evReq) putAcc() {
	if rq.acc != nil && cap(rq.acc) <= maxPooledHead {
		b := rq.acc[:0]
		headPool.Put(&b)
	}
	rq.acc = nil
}

// feedHead accumulates the response head and parses it at the
// terminator, transitioning to the framed body (or completing).
func (rq *evReq) feedHead(b []byte) int {
	// Find the terminator across the accumulation boundary without
	// rescanning (the proxy's padding header makes heads ~20 KB).
	rq.acc = append(rq.acc, b...)
	i := indexCrlfCrlf(rq.acc, rq.scan)
	if i < 0 {
		if len(rq.acc) >= len(evCrlfCrlf)-1 {
			rq.scan = len(rq.acc) - (len(evCrlfCrlf) - 1)
		}
		return len(b)
	}
	headLen := i + len(evCrlfCrlf)
	// b may extend past the head: return only the head's share of this
	// view; the caller re-feeds the rest to the body state.
	take := len(b) - (len(rq.acc) - headLen)
	rq.acc = rq.acc[:headLen]
	if err := rq.parseHead(); err != nil {
		rq.fail(fmt.Errorf("httpx: reading response: %w", err), true)
		return take
	}
	rq.beginBody()
	return take
}

func indexCrlfCrlf(b []byte, from int) int {
	for i := from; i+len(evCrlfCrlf) <= len(b); i++ {
		if b[i] == '\r' && b[i+1] == '\n' && b[i+2] == '\r' && b[i+3] == '\n' {
			return i
		}
	}
	return -1
}

// parseHead extracts what the machine needs from the accumulated head,
// applying readResponse's checks to the headers it interprets.
func (rq *evReq) parseHead() error {
	head := rq.acc
	rq.status = 0
	rq.contentLength = -1
	rq.chunked = false
	rq.respClose = false
	line, rest := cutLine(head)
	sp := indexByte(line, ' ')
	if sp < 0 || !hasPrefix(line, "HTTP/1.") {
		return fmt.Errorf("malformed status line %q", line)
	}
	statusText := trimLeftSpace(line[sp+1:])
	if len(statusText) < 3 {
		return fmt.Errorf("malformed status line %q", line)
	}
	code, err := strconv.Atoi(string(statusText[:3]))
	if err != nil {
		return fmt.Errorf("malformed status code in %q", line)
	}
	rq.status = code
	for {
		line, rest = cutLine(rest)
		if line == nil {
			return fmt.Errorf("truncated response head")
		}
		if len(line) == 0 {
			break
		}
		colon := indexByte(line, ':')
		if colon < 0 {
			return fmt.Errorf("malformed header line %q", line)
		}
		// Match the three interpreted keys by ASCII-case-insensitive
		// byte comparison and stringify only their (short) values:
		// canonicalising every key and copying every value would
		// allocate the ~20 KB padding header once per request.
		key := line[:colon]
		switch {
		case eqFold(key, "Content-Length"):
			val := string(trimSpace(line[colon+1:]))
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return fmt.Errorf("malformed Content-Length %q", val)
			}
			rq.contentLength = n
		case eqFold(key, "Transfer-Encoding"):
			val := string(trimSpace(line[colon+1:]))
			if val != "chunked" {
				return fmt.Errorf("unsupported Transfer-Encoding %q", val)
			}
			rq.chunked = true
		case eqFold(key, "Connection"):
			if string(trimSpace(line[colon+1:])) == "close" {
				rq.respClose = true
			}
		}
	}
	return nil
}

func cutLine(b []byte) (line, rest []byte) {
	i := 0
	for ; i+1 < len(b); i++ {
		if b[i] == '\r' && b[i+1] == '\n' {
			return b[:i], b[i+2:]
		}
	}
	return nil, nil
}

func indexByte(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return -1
}

func hasPrefix(b []byte, s string) bool {
	return len(b) >= len(s) && string(b[:len(s)]) == s
}

// eqFold reports ASCII case-insensitive equality of b and s without
// allocating.
func eqFold(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c, d := b[i], s[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if 'A' <= d && d <= 'Z' {
			d += 'a' - 'A'
		}
		if c != d {
			return false
		}
	}
	return true
}

func trimLeftSpace(b []byte) []byte {
	for len(b) > 0 && b[0] == ' ' {
		b = b[1:]
	}
	return b
}

func trimSpace(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t') {
		b = b[:len(b)-1]
	}
	return b
}

// beginBody selects the body mode from the parsed head, mirroring
// readResponse's framing switch plus the callers' read patterns.
func (rq *evReq) beginBody() {
	rq.state = evcBody
	rq.body = nil
	rq.bodyN = 0
	rq.views = nil
	rq.hold = nil
	rq.bodyLimit = -1
	rq.discard = false
	rq.collectBody = true

	if rq.status == 204 || rq.status == 304 || rq.status < 200 {
		rq.complete()
		return
	}
	switch {
	case rq.hasRange && rq.status != 206:
		// The blocking ladder reads at most 512 bytes of an error body
		// for the StatusError message; past that the close probe retires
		// the conn at the arrival of byte 513.
		rq.bodyLimit = 512
	case !rq.hasRange && rq.status != 200:
		// fetchInfo closes a non-200 body unread: the pooling probe's
		// single-byte read retires the conn at the first body byte.
		rq.discard = true
	case rq.hasRange && rq.status == 206 && !rq.chunked &&
		rq.contentLength == rq.rangeTo-rq.rangeFrom+1:
		// The exact-length 206: deliver borrowed views, zero-copy.
		rq.collectBody = false
		rq.hold = &viewHold{}
	}
	switch {
	case rq.chunked:
		rq.ck = ckSize
		rq.ckRemain = 0
		rq.ckLine = rq.ckLine[:0]
	case rq.contentLength >= 0:
		rq.remain = rq.contentLength
		if rq.remain == 0 {
			rq.complete()
		}
	default:
		// Close-delimited: the body ends at the server's EOF, which also
		// retires the conn.
		rq.respClose = true
		rq.remain = -1
	}
}

// feedBody consumes body bytes from view[off:], returning the consumed
// count and, for borrowed body bytes, the hold that keeps them from
// being released until the consumer hands them back.
func (rq *evReq) feedBody(view []byte, off int) (int, *viewHold) {
	b := view[off:]
	if rq.chunked {
		return rq.feedChunked(b), nil
	}
	take := len(b)
	if rq.remain >= 0 && int64(take) > rq.remain {
		take = int(rq.remain)
	}
	hold := rq.consumeBody(view, off, take)
	if rq.remain > 0 {
		rq.remain -= int64(take)
		if rq.remain == 0 && rq.state != evcDone {
			rq.complete()
		}
	}
	return take, hold
}

// consumeBody accounts take logical body bytes from view[off:].
func (rq *evReq) consumeBody(view []byte, off, take int) *viewHold {
	if take == 0 {
		return nil
	}
	rq.bodyN += int64(take)
	if rq.discard {
		// First body byte: retire the conn, deliver the status-only
		// result (the rest of the view is residue on a dead conn).
		rq.conndead = true
		rq.complete()
		return nil
	}
	if rq.bodyLimit >= 0 && rq.bodyN > rq.bodyLimit {
		keep := take - int(rq.bodyN-rq.bodyLimit)
		if keep > 0 {
			rq.body = append(rq.body, view[off:off+keep]...)
		}
		rq.bodyN = rq.bodyLimit
		rq.conndead = true
		rq.complete()
		return nil
	}
	if rq.collectBody {
		rq.body = append(rq.body, view[off:off+take]...)
		return nil
	}
	sub := view[off : off+take : off+take]
	rq.views = append(rq.views, sub)
	return rq.hold
}

// feedChunked decodes chunked framing from b, collecting data bytes.
// Framing bytes and collected data are all immediately releasable.
func (rq *evReq) feedChunked(b []byte) int {
	n := 0
	for n < len(b) && rq.state != evcDone {
		switch rq.ck {
		case ckSize:
			c := b[n]
			n++
			rq.ckLine = append(rq.ckLine, c)
			if c != '\n' {
				continue
			}
			line := rq.ckLine
			if len(line) < 2 || line[len(line)-2] != '\r' {
				rq.fail(fmt.Errorf("httpx: malformed chunk size line"), false)
				return n
			}
			size, err := strconv.ParseInt(string(line[:len(line)-2]), 16, 64)
			if err != nil || size < 0 {
				rq.fail(fmt.Errorf("httpx: malformed chunk size %q", line[:len(line)-2]), false)
				return n
			}
			rq.ckLine = rq.ckLine[:0]
			if size == 0 {
				rq.ck = ckTrailer
				continue
			}
			rq.ckRemain = size
			rq.ck = ckData
		case ckData:
			take := min(len(b)-n, int(rq.ckRemain))
			rq.bodyN += int64(take)
			if rq.discard {
				rq.conndead = true
				rq.complete()
				return n + take
			}
			if rq.bodyLimit >= 0 && rq.bodyN > rq.bodyLimit {
				keep := take - int(rq.bodyN-rq.bodyLimit)
				if keep > 0 {
					rq.body = append(rq.body, b[n:n+keep]...)
				}
				rq.bodyN = rq.bodyLimit
				rq.conndead = true
				rq.complete()
				return n + take
			}
			rq.body = append(rq.body, b[n:n+take]...)
			n += take
			rq.ckRemain -= int64(take)
			if rq.ckRemain == 0 {
				rq.ck = ckDataCR
			}
		case ckDataCR, ckTrailer:
			c := b[n]
			n++
			rq.ckLine = append(rq.ckLine, c)
			if len(rq.ckLine) < 2 {
				continue
			}
			if rq.ckLine[0] != '\r' || rq.ckLine[1] != '\n' {
				rq.fail(fmt.Errorf("httpx: malformed chunked trailer"), false)
				return n
			}
			rq.ckLine = rq.ckLine[:0]
			if rq.ck == ckTrailer {
				rq.complete()
				return n
			}
			rq.ck = ckSize
		}
	}
	return n
}

// complete delivers the exchange's result at the current instant and
// decides the connection's fate, mirroring bodyGuard.Close: a fully
// consumed body on a healthy keep-alive conn pools it, anything else
// retires it.
func (rq *evReq) complete() {
	rq.state = evcDone
	rq.stopTimers()
	pc := rq.pc
	pc.rq = nil
	res := &evResult{status: rq.status, body: rq.body, bodyN: rq.bodyN}
	if rq.views != nil {
		hold := rq.hold
		res.views = rq.views
		res.release = func() {
			hold.released = true
			pc.drainRel()
		}
	}
	if rq.conndead || rq.respClose || rq.dlFired {
		rq.t.retire(pc)
	} else {
		rq.t.putIdle(pc)
	}
	rq.putAcc()
	rq.done(res, nil)
}

// fail ends the attempt with err. Mirroring RoundTrip: a reused
// connection whose request or head read failed is retried exactly
// once on a fresh dial (the pooled siblings are flushed), every other
// failure surfaces to the caller. retryStage marks the failure as
// having occurred inside the retryable window (request write or
// response-head read).
func (rq *evReq) fail(err error, retryStage bool) {
	rq.state = evcDone
	if rq.pc != nil {
		pc := rq.pc
		pc.rq = nil
		rq.t.retire(pc)
		rq.pc = nil
	}
	// A hedged-out attempt is never retried here: the caller cancelled
	// it on purpose and will reissue elsewhere (Transport.RoundTrip
	// suppresses its retry-once identically).
	if retryStage && rq.reused && rq.attempt == 0 && rq.t.closed == nil &&
		!errors.Is(err, ErrHedged) {
		rq.t.dropIdle(rq.addr)
		rq.attempt = 1
		rq.reused = false
		rq.conndead = false
		rq.state = evcDial
		rq.acc = rq.acc[:0]
		rq.scan = 0
		rq.stopTimers()
		rq.armDeadline()
		rq.getConn()
		return
	}
	rq.stopTimers()
	rq.putAcc()
	rq.done(nil, err)
}
