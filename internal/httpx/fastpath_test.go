package httpx

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// bufConn is a net.Conn that records writes and serves reads from a
// canned buffer — enough to drive the request/response fast paths.
type bufConn struct {
	bytes.Buffer
}

func (b *bufConn) Read(p []byte) (int, error)       { return b.Buffer.Read(p) }
func (b *bufConn) Write(p []byte) (int, error)      { return b.Buffer.Write(p) }
func (b *bufConn) Close() error                     { return nil }
func (b *bufConn) LocalAddr() net.Addr              { return nil }
func (b *bufConn) RemoteAddr() net.Addr             { return nil }
func (b *bufConn) SetDeadline(time.Time) error      { return nil }
func (b *bufConn) SetReadDeadline(time.Time) error  { return nil }
func (b *bufConn) SetWriteDeadline(time.Time) error { return nil }

// TestWriteRequestMatchesNetHTTP pins the fast request writer to
// net/http's wire output: for every request shape the players send, the
// bytes must be identical — a single divergent byte would shift the
// emulated transfer timeline.
func TestWriteRequestMatchesNetHTTP(t *testing.T) {
	mk := func(method, url string, hdr map[string]string) *http.Request {
		req, err := http.NewRequestWithContext(context.Background(), method, url, nil)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		return req
	}
	cases := []*http.Request{
		mk(http.MethodGet, "http://video1.youtube.wifi.test:443/videoplayback?v=qjT4T2gU9sM&itag=22&token=abc&expire=123&net=wifi", map[string]string{"Range": "bytes=1048576-2097151"}),
		mk(http.MethodGet, "http://www.youtube.wifi.test:443/watch?v=qjT4T2gU9sM", nil),
		mk(http.MethodHead, "http://video1.youtube.lte.test:443/videoplayback?v=x&itag=18", nil),
		mk(http.MethodGet, "http://host.test/path", map[string]string{"Range": "bytes=0-0"}),
	}
	for _, req := range cases {
		var want bytes.Buffer
		if err := req.Write(&want); err != nil {
			t.Fatal(err)
		}
		var got bufConn
		if err := writeRequest(&got, req); err != nil {
			t.Fatal(err)
		}
		if got.String() != want.String() {
			t.Errorf("%s %s:\nfast: %q\nwant: %q", req.Method, req.URL, got.String(), want.String())
		}
	}
}

// TestReadResponseMatchesNetHTTP drives identical wire responses — the
// shapes the emulated origin produces — through the lean parser and
// http.ReadResponse, comparing status, headers, framing metadata, body
// bytes, and crucially the number of connection bytes consumed (a
// desynced shared reader would corrupt the next keep-alive response).
func TestReadResponseMatchesNetHTTP(t *testing.T) {
	body4k := strings.Repeat("x", 4096)
	wires := []string{
		"HTTP/1.1 206 Partial Content\r\nAccept-Ranges: bytes\r\nContent-Length: 4096\r\nContent-Range: bytes 0-4095/9375000\r\nContent-Type: video/mp4\r\nX-Replica: video1\r\n\r\n" + body4k,
		"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n",
		"HTTP/1.1 404 Not Found\r\nContent-Type: text/plain; charset=utf-8\r\nTransfer-Encoding: chunked\r\n\r\nb\r\nnot found\r\n\r\n0\r\n\r\n",
		"HTTP/1.1 200 OK\r\nConnection: close\r\nContent-Length: 2\r\n\r\nokNEXT",
		"HTTP/1.1 204 No Content\r\n\r\n",
	}
	for _, wire := range wires {
		// Append a sentinel so consumed-byte counts are comparable.
		const sentinel = "SENTINEL-NEXT-RESPONSE"
		req, _ := http.NewRequest(http.MethodGet, "http://h/", nil)

		parse := func(read func(*bufio.Reader, *http.Request) (*http.Response, error)) (resp *http.Response, bodyBytes string, left int) {
			br := bufio.NewReaderSize(strings.NewReader(wire+sentinel), 16<<10)
			resp, err := read(br, req)
			if err != nil {
				t.Fatalf("parse %q: %v", wire[:20], err)
			}
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatalf("body %q: %v", wire[:20], err)
			}
			rest, _ := io.ReadAll(br)
			return resp, string(b), len(rest)
		}
		lean, leanBody, leanLeft := parse(readResponse)
		ref, refBody, refLeft := parse(func(br *bufio.Reader, r *http.Request) (*http.Response, error) {
			return http.ReadResponse(br, r)
		})

		if lean.StatusCode != ref.StatusCode || lean.Status != ref.Status ||
			lean.Proto != ref.Proto || lean.Close != ref.Close ||
			lean.ContentLength != ref.ContentLength {
			t.Errorf("%q: metadata diverged:\nlean: %d %q %q close=%v cl=%d\nref:  %d %q %q close=%v cl=%d",
				wire[:20], lean.StatusCode, lean.Status, lean.Proto, lean.Close, lean.ContentLength,
				ref.StatusCode, ref.Status, ref.Proto, ref.Close, ref.ContentLength)
		}
		for k, v := range ref.Header {
			if k == "Transfer-Encoding" {
				// net/http moves it into resp.TransferEncoding; the lean
				// parser keeps the header entry. Framing equality is
				// covered by the body comparison.
				continue
			}
			if got := lean.Header[k]; len(got) != len(v) || (len(v) > 0 && got[0] != v[0]) {
				t.Errorf("%q: header %s: lean %v, ref %v", wire[:20], k, got, v)
			}
		}
		if leanBody != refBody {
			t.Errorf("%q: body diverged: lean %d bytes, ref %d bytes", wire[:20], len(leanBody), len(refBody))
		}
		// Close-delimited responses consume everything including the
		// sentinel in both parsers; framed ones must leave it intact.
		if leanLeft != refLeft {
			t.Errorf("%q: consumed bytes diverged: lean leaves %d, ref leaves %d", wire[:20], leanLeft, refLeft)
		}
	}
}
