package httpx

import (
	"context"
	"errors"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/handshake"
	"repro/internal/netem"
)

// testServer runs the httpx server (with handshake) on an emulated
// network and returns an interface to reach it.
func testServer(t *testing.T, h http.Handler) *netem.Interface {
	t.Helper()
	clock := netem.NewVirtualClock()
	t.Cleanup(clock.Stop)
	n := netem.NewNetwork(clock)
	inner, err := n.Listen("srv.test:443", 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(clock, inner, h, handshake.Params{})
	t.Cleanup(func() { srv.Close() })
	lp := netem.LinkParams{Rate: netem.Mbps(20), Delay: 5 * time.Millisecond}
	return n.NewInterface("wifi", lp, lp)
}

func blobHandler(blob []byte) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/blob", func(w http.ResponseWriter, r *http.Request) {
		http.ServeContent(w, r, "blob", time.Unix(0, 0), readSeeker(blob))
	})
	mux.HandleFunc("/noranges", func(w http.ResponseWriter, r *http.Request) {
		w.Write(blob) // ignores Range: returns 200 with full body
	})
	mux.HandleFunc("/forbidden", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no", http.StatusForbidden)
	})
	return mux
}

func readSeeker(b []byte) io.ReadSeeker {
	return io.NewSectionReader(readerAt(b), 0, int64(len(b)))
}

type readerAt []byte

func (r readerAt) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(r)) {
		return 0, io.EOF
	}
	n := copy(p, r[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func TestRangeHeader(t *testing.T) {
	if got := RangeHeader(0, 1023); got != "bytes=0-1023" {
		t.Fatalf("RangeHeader = %q", got)
	}
}

func TestGetRangeHappyPath(t *testing.T) {
	blob := make([]byte, 64<<10)
	for i := range blob {
		blob[i] = byte(i * 7)
	}
	iface := testServer(t, blobHandler(blob))
	client := NewClient(iface)
	got, err := GetRange(context.Background(), client, "http://srv.test:443/blob", 100, 299)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 200 {
		t.Fatalf("length = %d", len(got))
	}
	for i, b := range got {
		if b != blob[100+i] {
			t.Fatalf("byte %d mismatch", i)
		}
	}
}

func TestGetRangeRejectsNon206(t *testing.T) {
	blob := make([]byte, 1024)
	iface := testServer(t, blobHandler(blob))
	client := NewClient(iface)
	_, err := GetRange(context.Background(), client, "http://srv.test:443/noranges", 0, 99)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusOK {
		t.Fatalf("err = %v, want StatusError{200}", err)
	}
}

func TestGetRangeStatusErrorCode(t *testing.T) {
	iface := testServer(t, blobHandler(nil))
	client := NewClient(iface)
	_, err := GetRange(context.Background(), client, "http://srv.test:443/forbidden", 0, 99)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusForbidden {
		t.Fatalf("err = %v, want StatusError{403}", err)
	}
	if se.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestGetRangeInvalidRange(t *testing.T) {
	iface := testServer(t, blobHandler(nil))
	client := NewClient(iface)
	if _, err := GetRange(context.Background(), client, "http://srv.test:443/blob", 10, 5); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestGetRangeContextCancel(t *testing.T) {
	// A handler that never responds: the fetch can only end through
	// cancellation. (With the deterministic virtual clock any finite
	// emulated transfer completes in microseconds of wall time, so a
	// wall-clock cancel can no longer race a normal download.)
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	mux := http.NewServeMux()
	mux.HandleFunc("/hang", func(w http.ResponseWriter, r *http.Request) {
		<-release
	})
	iface := testServer(t, mux)
	client := NewClient(iface)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := GetRange(ctx, client, "http://srv.test:443/hang", 0, 1<<20-1)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) //detlint:allow wallclock -- real sleep lets goroutines park before asserting waiter accounting
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled fetch succeeded")
		}
	case <-time.After(5 * time.Second): //detlint:allow wallclock -- test watchdog against emulator deadlock runs on wall time
		t.Fatal("cancel did not interrupt fetch")
	}
}

func TestHead(t *testing.T) {
	blob := make([]byte, 12345)
	iface := testServer(t, blobHandler(blob))
	client := NewClient(iface)
	n, err := Head(context.Background(), client, "http://srv.test:443/blob")
	if err != nil {
		t.Fatal(err)
	}
	if n != 12345 {
		t.Fatalf("content length = %d", n)
	}
	if _, err := Head(context.Background(), client, "http://srv.test:443/forbidden"); err == nil {
		t.Fatal("HEAD on 403 should error")
	}
}

func TestClientReusesConnections(t *testing.T) {
	var conns int
	mux := http.NewServeMux()
	mux.HandleFunc("/ping", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "pong")
	})
	wrapped := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mux.ServeHTTP(w, r)
	})
	iface := testServer(t, wrapped)
	client := NewClient(iface)
	_ = conns
	// Issue several requests; with keep-alive they share one conn, so
	// total time is dominated by a single handshake. We assert
	// correctness here (timing covered in netem tests).
	for i := 0; i < 5; i++ {
		resp, err := client.Get("http://srv.test:443/ping")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(body) != "pong" {
			t.Fatalf("body = %q", body)
		}
	}
}
