package httpx

import (
	"context"
	"net/http"
	"testing"
	"time"

	"repro/internal/netem"
)

// TestKeepAliveRequestAllocs guards the keep-alive request path: with
// pooled connection readers, per-connection response-writer reuse
// (header map, write buffer) and pooled chunk body buffers, a steady
// keep-alive range request must stay within a bounded allocation
// budget. The bound covers the irreducible net/http request/response
// parsing allocations plus slack; regressions that reintroduce
// per-request buffer allocations (bufio readers, header maps, body
// copies) blow well past it.
func TestKeepAliveRequestAllocs(t *testing.T) {
	blob := make([]byte, 256<<10)
	iface := testServer(t, blobHandler(blob))
	clock := iface.Network().Clock()

	result := make(chan float64, 1)
	clock.Go(func(cp *netem.Participant) {
		tr := NewTransport(iface)
		tr.Bind(cp)
		client := &http.Client{Transport: tr}
		defer client.CloseIdleConnections()
		buf := make([]byte, 64<<10)
		fetch := func() {
			body, err := GetRangeBuf(context.Background(), client,
				"http://srv.test:443/blob", 0, int64(len(buf))-1, buf)
			if err != nil {
				t.Errorf("range: %v", err)
				return
			}
			if len(body) != len(buf) {
				t.Errorf("got %d bytes", len(body))
			}
		}
		fetch() // dial + handshake + warm pools outside the measurement
		result <- testing.AllocsPerRun(20, fetch)
	})
	select {
	case avg := <-result:
		// net/http's ReadResponse/Request.Write machinery costs ~60
		// allocations per round trip and is outside our control; the
		// emulation layers on top must add almost nothing.
		if avg > 150 {
			t.Fatalf("keep-alive request allocates %.0f times per request, want <= 150", avg)
		}
	case <-time.After(30 * time.Second): //detlint:allow wallclock -- test watchdog against emulator deadlock runs on wall time
		t.Fatal("request loop did not finish")
	}
}
