package core

import (
	"testing"
	"time"
)

const testBPS = 312_500.0 // 2.5 Mb/s video

// mkBuffer builds a buffer for a 5-minute video with the paper's default
// thresholds (40 s pre-buffer, 10 s low water, 10 s refill).
func mkBuffer(onGate func(bool)) (*PlayoutBuffer, time.Time) {
	start := time.Unix(0, 0)
	b := NewPlayoutBuffer(BufferConfig{}, testBPS, 5*time.Minute, start, onGate)
	return b, start
}

func bytesOfPlayback(sec float64) int64 { return int64(sec * testBPS) }

func TestPreBufferCompletion(t *testing.T) {
	var gates []bool
	b, start := mkBuffer(func(on bool) { gates = append(gates, on) })

	// 30 s of video delivered after 5 s: still pre-buffering.
	b.Deliver(bytesOfPlayback(30), start.Add(5*time.Second))
	if b.Started() {
		t.Fatal("playback started before pre-buffer target")
	}
	if _, ok := b.PreBufferTime(); ok {
		t.Fatal("pre-buffer time reported early")
	}
	// 41 s of video delivered after 8 s: pre-buffering done, gate off.
	b.Deliver(bytesOfPlayback(41), start.Add(8*time.Second))
	d, ok := b.PreBufferTime()
	if !ok || d != 8*time.Second {
		t.Fatalf("pre-buffer time = (%v, %v), want 8s", d, ok)
	}
	if len(gates) != 1 || gates[0] != false {
		t.Fatalf("gate transitions = %v, want [false]", gates)
	}
}

func TestDrainToLowWaterTurnsFetchOn(t *testing.T) {
	var gates []bool
	b, start := mkBuffer(func(on bool) { gates = append(gates, on) })
	b.Deliver(bytesOfPlayback(41), start.Add(8*time.Second)) // pre done, 41s buffered

	wake, ok := b.NextWake(start.Add(8 * time.Second))
	if !ok {
		t.Fatal("no wake scheduled during OFF")
	}
	// Buffer drains from 41 s to 10 s in 31 s of playback.
	if want := start.Add(8*time.Second + 31*time.Second); !wake.Equal(want) {
		t.Fatalf("wake = %v, want %v", wake, want)
	}
	b.Tick(wake)
	if len(gates) != 2 || gates[1] != true {
		t.Fatalf("gate transitions = %v, want [false,true]", gates)
	}
}

func TestRefillCycleRecorded(t *testing.T) {
	b, start := mkBuffer(nil)
	b.Deliver(bytesOfPlayback(41), start.Add(8*time.Second))
	onAt := start.Add(8*time.Second + 31*time.Second)
	b.Tick(onAt) // fetching ON at 10 s buffered

	// 12 s later, delivery has pushed the buffer to 20 s: refill done.
	// Received playback needed: played = 8s..51s of wall -> 43s played;
	// buffered 20 => received 63 s.
	doneAt := onAt.Add(12 * time.Second)
	b.Deliver(bytesOfPlayback(63), doneAt)
	refills := b.Refills()
	if len(refills) != 1 {
		t.Fatalf("refills = %d, want 1", len(refills))
	}
	r := refills[0]
	if r.Start != onAt || r.Duration != 12*time.Second {
		t.Fatalf("refill = %+v", r)
	}
	if r.Bytes != bytesOfPlayback(63)-bytesOfPlayback(41) {
		t.Fatalf("refill bytes = %d", r.Bytes)
	}
}

func TestStallDetectionAndRecovery(t *testing.T) {
	b, start := mkBuffer(nil)
	b.Deliver(bytesOfPlayback(41), start.Add(8*time.Second))
	// No further deliveries: buffer runs dry 41 s after playback start.
	dryAt := start.Add(8*time.Second + 41*time.Second)
	probe := dryAt.Add(10 * time.Second)
	if got := b.Buffered(probe); got != 0 {
		t.Fatalf("buffered after underrun = %v, want 0", got)
	}
	// Delivery brings 6 s (> StallRecovery default 5 s): stall ends.
	recoverAt := dryAt.Add(30 * time.Second)
	b.Deliver(bytesOfPlayback(41+6), recoverAt)
	stalls := b.Stalls()
	if len(stalls) != 1 {
		t.Fatalf("stalls = %d, want 1", len(stalls))
	}
	if stalls[0].Start != dryAt {
		t.Fatalf("stall start = %v, want %v", stalls[0].Start, dryAt)
	}
	if stalls[0].Duration != 30*time.Second {
		t.Fatalf("stall duration = %v, want 30s", stalls[0].Duration)
	}
}

func TestPlaybackFinishes(t *testing.T) {
	b, start := mkBuffer(nil)
	b.Deliver(bytesOfPlayback(300), start.Add(20*time.Second)) // whole video
	if !b.Started() {
		t.Fatal("not started")
	}
	end := start.Add(20*time.Second + 300*time.Second)
	if b.Finished(end.Add(-time.Second)) {
		t.Fatal("finished too early")
	}
	if !b.Finished(end.Add(time.Second)) {
		t.Fatal("not finished after full playback")
	}
	// NextWake before the end points at end of playback.
	b2, s2 := mkBuffer(nil)
	b2.Deliver(bytesOfPlayback(300), s2.Add(20*time.Second))
	wake, ok := b2.NextWake(s2.Add(30 * time.Second))
	if !ok {
		t.Fatal("no end-of-playback wake")
	}
	if want := s2.Add(20*time.Second + 300*time.Second); !wake.Equal(want) {
		t.Fatalf("end wake = %v, want %v", wake, want)
	}
}

func TestPreTargetClampedToVideoLength(t *testing.T) {
	start := time.Unix(0, 0)
	b := NewPlayoutBuffer(BufferConfig{PreBufferTarget: 40 * time.Second},
		testBPS, 15*time.Second, start, nil)
	b.Deliver(bytesOfPlayback(15), start.Add(3*time.Second))
	if d, ok := b.PreBufferTime(); !ok || d != 3*time.Second {
		t.Fatalf("short-video pre-buffer = (%v, %v)", d, ok)
	}
}

func TestGoalBytes(t *testing.T) {
	b, start := mkBuffer(nil)
	// Pre phase: goal is the full 40 s.
	if got, want := b.GoalBytes(start), bytesOfPlayback(40); got != want {
		t.Fatalf("pre goal = %d, want %d", got, want)
	}
	b.Deliver(bytesOfPlayback(25), start.Add(2*time.Second))
	if got, want := b.GoalBytes(start.Add(2*time.Second)), bytesOfPlayback(15); got != want {
		t.Fatalf("partial pre goal = %d, want %d", got, want)
	}
	// Steady phase at low water: goal = played + low + refill - received.
	b.Deliver(bytesOfPlayback(41), start.Add(8*time.Second))
	onAt := start.Add(8*time.Second + 31*time.Second) // 31 s played, 10 s buffered
	b.Tick(onAt)
	got := b.GoalBytes(onAt)
	want := bytesOfPlayback(31+10+10) - bytesOfPlayback(41)
	if diff := got - want; diff < -2 || diff > 2 { // rounding slack
		t.Fatalf("refill goal = %d, want %d", got, want)
	}
}

func TestBufferedNeverNegative(t *testing.T) {
	b, start := mkBuffer(nil)
	b.Deliver(bytesOfPlayback(41), start.Add(8*time.Second))
	for off := time.Duration(0); off < 200*time.Second; off += 7 * time.Second {
		if got := b.Buffered(start.Add(8*time.Second + off)); got < 0 {
			t.Fatalf("buffered went negative: %v at +%v", got, off)
		}
	}
}
