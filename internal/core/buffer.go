package core

import (
	"sync"
	"time"
)

// BufferConfig sets the ON/OFF thresholds of §4: MSPlayer pre-buffers
// PreBufferTarget of video, then plays; when the buffer drops below
// LowWater it resumes requesting until RefillSize more video is
// buffered (the paper's default refill stops at 20 s, i.e. a 10 s
// refill above the 10 s low-water mark).
type BufferConfig struct {
	// PreBufferTarget is the start-up buffering goal (default 40 s).
	PreBufferTarget time.Duration
	// LowWater triggers re-buffering (default 10 s).
	LowWater time.Duration
	// RefillSize is the amount fetched per re-buffering cycle above
	// LowWater (default 10 s, giving the paper's 20 s refill point).
	RefillSize time.Duration
	// StallRecovery is the buffered amount required to resume playback
	// after an underrun (default 5 s).
	StallRecovery time.Duration
}

func (c BufferConfig) withDefaults() BufferConfig {
	if c.PreBufferTarget == 0 {
		c.PreBufferTarget = 40 * time.Second
	}
	if c.LowWater == 0 {
		c.LowWater = 10 * time.Second
	}
	if c.RefillSize == 0 {
		c.RefillSize = 10 * time.Second
	}
	if c.StallRecovery == 0 {
		c.StallRecovery = 5 * time.Second
	}
	return c
}

// Refill records one re-buffering cycle: fetching turned ON at Start
// with the buffer at LowWater, and reached the refill goal after
// Duration.
type Refill struct {
	Start    time.Time
	Duration time.Duration
	Bytes    int64 // bytes delivered in order during the refill
}

// Stall records a playback underrun.
type Stall struct {
	Start    time.Time
	Duration time.Duration
}

// PlayoutBuffer tracks received versus played video in emulated time and
// drives the ON/OFF fetch gate. All methods take the current emulated
// instant explicitly so the buffer itself stays clock-agnostic and fully
// deterministic under test.
type PlayoutBuffer struct {
	cfg         BufferConfig
	bytesPerSec float64
	videoLen    time.Duration

	mu         sync.Mutex
	receivedPB time.Duration // playback time received in order
	playedPB   time.Duration
	lastTick   time.Time

	started  bool // playback begun (pre-buffering finished)
	stalled  bool
	fetching bool
	finished bool // playback consumed the whole video

	preStart      time.Time
	preDone       time.Time
	preDoneSet    bool
	refillStart   time.Time
	refillBytes   int64
	refillStartRx int64
	receivedBytes int64

	refills   []Refill
	stalls    []Stall
	stallFrom time.Time

	// onGate is invoked (outside the lock) when the fetch gate flips.
	onGate func(on bool)
}

// NewPlayoutBuffer builds a buffer for a video of the given storage rate
// (bytes of content per second of playback) and duration, starting in
// the pre-buffering phase with fetching ON at time start.
func NewPlayoutBuffer(cfg BufferConfig, bytesPerSec float64, videoLen time.Duration, start time.Time, onGate func(bool)) *PlayoutBuffer {
	cfg = cfg.withDefaults()
	if cfg.PreBufferTarget > videoLen {
		cfg.PreBufferTarget = videoLen
	}
	return &PlayoutBuffer{
		cfg:         cfg,
		bytesPerSec: bytesPerSec,
		videoLen:    videoLen,
		fetching:    true,
		preStart:    start,
		lastTick:    start,
		onGate:      onGate,
	}
}

// playbackFor converts bytes to playback time.
func (b *PlayoutBuffer) playbackFor(n int64) time.Duration {
	return time.Duration(float64(n) / b.bytesPerSec * float64(time.Second))
}

// bytesFor converts playback time to bytes.
func (b *PlayoutBuffer) bytesFor(d time.Duration) int64 {
	return int64(d.Seconds() * b.bytesPerSec)
}

// advanceLocked moves the playback point to now, detecting underruns at
// their exact instant.
func (b *PlayoutBuffer) advanceLocked(now time.Time) {
	if now.Before(b.lastTick) {
		return
	}
	if b.started && !b.stalled && !b.finished {
		elapsed := now.Sub(b.lastTick)
		avail := b.receivedPB - b.playedPB
		if elapsed >= avail && b.receivedPB < b.videoLen {
			// Underrun: playback caught up with delivery mid-interval.
			b.playedPB = b.receivedPB
			b.stalled = true
			b.stallFrom = b.lastTick.Add(avail)
		} else {
			b.playedPB += elapsed
			if b.playedPB >= b.videoLen {
				b.playedPB = b.videoLen
				b.finished = true
			}
		}
	}
	b.lastTick = now
}

// Deliver accounts in-order delivery up to totalBytes at emulated time
// now, handling phase transitions (pre-buffer completion, refill
// completion, stall recovery).
func (b *PlayoutBuffer) Deliver(totalBytes int64, now time.Time) {
	b.mu.Lock()
	b.advanceLocked(now)
	if totalBytes > b.receivedBytes {
		b.receivedBytes = totalBytes
		b.receivedPB = b.playbackFor(totalBytes)
		if b.receivedPB > b.videoLen {
			b.receivedPB = b.videoLen
		}
	}
	var gateOff bool
	buffered := b.receivedPB - b.playedPB

	if !b.started {
		if b.receivedPB >= b.cfg.PreBufferTarget {
			// Pre-buffering complete: start playback, stop fetching.
			b.started = true
			b.preDone = now
			b.preDoneSet = true
			b.fetching = false
			gateOff = true
		}
	} else {
		if b.stalled && buffered >= b.cfg.StallRecovery {
			b.stalls = append(b.stalls, Stall{Start: b.stallFrom, Duration: now.Sub(b.stallFrom)})
			b.stalled = false
		}
		if b.fetching {
			goal := b.cfg.LowWater + b.cfg.RefillSize
			allReceived := b.receivedPB >= b.videoLen
			if buffered >= goal || allReceived {
				b.refills = append(b.refills, Refill{
					Start:    b.refillStart,
					Duration: now.Sub(b.refillStart),
					Bytes:    b.receivedBytes - b.refillStartRx,
				})
				b.fetching = false
				gateOff = true
			}
		}
	}
	onGate := b.onGate
	b.mu.Unlock()
	if gateOff && onGate != nil {
		onGate(false)
	}
}

// NextWake returns the emulated instant at which the buffer next needs
// attention (crossing LowWater during OFF, or finishing playback), and
// whether such an instant exists.
func (b *PlayoutBuffer) NextWake(now time.Time) (time.Time, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advanceLocked(now)
	if b.finished {
		return time.Time{}, false
	}
	if !b.started || b.stalled || b.fetching {
		// Progress is driven by deliveries, not by time.
		return time.Time{}, false
	}
	buffered := b.receivedPB - b.playedPB
	if b.receivedPB >= b.videoLen {
		// Everything fetched; next event is end of playback.
		return now.Add(buffered), true
	}
	wait := buffered - b.cfg.LowWater
	if wait < 0 {
		wait = 0
	}
	return now.Add(wait), true
}

// Tick re-evaluates time-driven transitions at emulated time now: it
// turns fetching ON when the buffer has drained to LowWater.
func (b *PlayoutBuffer) Tick(now time.Time) {
	b.mu.Lock()
	b.advanceLocked(now)
	var gateOn bool
	if b.started && !b.fetching && !b.finished && b.receivedPB < b.videoLen {
		buffered := b.receivedPB - b.playedPB
		if buffered <= b.cfg.LowWater {
			b.fetching = true
			b.refillStart = now
			b.refillStartRx = b.receivedBytes
			gateOn = true
		}
	}
	onGate := b.onGate
	b.mu.Unlock()
	if gateOn && onGate != nil {
		onGate(true)
	}
}

// Buffered returns the buffered playback time at now.
func (b *PlayoutBuffer) Buffered(now time.Time) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advanceLocked(now)
	return b.receivedPB - b.playedPB
}

// GoalBytes returns the bytes still needed to meet the current buffering
// goal (pre-buffer target or refill point); used by the bulk scheduler.
func (b *PlayoutBuffer) GoalBytes(now time.Time) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advanceLocked(now)
	var goalPB time.Duration
	if !b.started {
		goalPB = b.cfg.PreBufferTarget
	} else {
		goalPB = b.playedPB + b.cfg.LowWater + b.cfg.RefillSize
	}
	if goalPB > b.videoLen {
		goalPB = b.videoLen
	}
	n := b.bytesFor(goalPB) - b.receivedBytes
	if n < 0 {
		n = 0
	}
	return n
}

// GoalOffset returns the absolute stream offset of the current
// buffering goal: fresh chunk assignments should not extend past it
// (just-in-time delivery — the player never requests much more video
// than the phase needs).
func (b *PlayoutBuffer) GoalOffset(now time.Time) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advanceLocked(now)
	var goalPB time.Duration
	if !b.started {
		goalPB = b.cfg.PreBufferTarget
	} else {
		goalPB = b.playedPB + b.cfg.LowWater + b.cfg.RefillSize
	}
	if goalPB > b.videoLen {
		goalPB = b.videoLen
	}
	return b.bytesFor(goalPB)
}

// PreBufferTime returns the duration of the pre-buffering phase and
// whether it has completed.
func (b *PlayoutBuffer) PreBufferTime() (time.Duration, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.preDoneSet {
		return 0, false
	}
	return b.preDone.Sub(b.preStart), true
}

// Refills returns the completed re-buffering cycles.
func (b *PlayoutBuffer) Refills() []Refill {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Refill(nil), b.refills...)
}

// Stalls returns the completed playback underruns.
func (b *PlayoutBuffer) Stalls() []Stall {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Stall(nil), b.stalls...)
}

// Finished reports whether the whole video has been played out.
func (b *PlayoutBuffer) Finished(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advanceLocked(now)
	return b.finished
}

// Started reports whether playback has begun (pre-buffering done).
func (b *PlayoutBuffer) Started() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.started
}
