package core

import (
	"sort"
	"time"
)

// Resilience configures the path-level resilience layer: per-target
// circuit breakers, health-scored source selection, and hedged range
// requests. The zero value disables the layer entirely — paths fall
// back to the fixed-rotation failover of earlier revisions and the
// session's wire behavior is bit-for-bit unchanged.
//
// The layer is engine-agnostic by construction: breaker state is
// evaluated only at selection time (never from timer callbacks), all
// jitter comes from a dedicated splitmix64 stream separate from the
// path's backoff stream, and both the blocking and event-loop engines
// drive the same sourceSet methods at mirrored instants.
type Resilience struct {
	// BreakerThreshold is the consecutive-failure count that opens a
	// target's circuit breaker. Zero disables the whole layer.
	BreakerThreshold int
	// BreakerCooldown is the base open duration before a half-open
	// probe is admitted. It doubles on the first re-open (capped at 2×:
	// probes are tiny 1 KiB ranges, so re-probing a flapping target is
	// cheap, while a long cooldown delays discovering that a replica
	// healed) and gains sub-seeded jitter of up to half the base, so a
	// correlated fault does not march every session's probe back at
	// one instant. Defaults to 800ms.
	BreakerCooldown time.Duration
	// HedgeEnabled turns on hedged range requests: when an in-flight
	// fetch exceeds its size-normalized latency budget — HedgeMultiplier
	// × the service time this request size would take at the path's
	// slow-but-healthy throughput — the laggard is cancelled at exactly
	// that instant (via the conn abort protocol) and the range is
	// reissued against the best-scored live source. Normalizing by size
	// matters because chunk fetch latency is dominated by chunk size: a
	// single latency quantile would either hedge every large chunk or
	// never fire at all.
	HedgeEnabled bool
	// HedgeQuantile is the fraction of healthy requests the budget must
	// cover: 0.9 builds the budget from the 10th-percentile observed
	// service rate, so only the slowest decile of healthy fetches risks
	// a false hedge even before the multiplier. Defaults to 0.9.
	HedgeQuantile float64
	// HedgeMultiplier scales the predicted slow-case service time into
	// the hedge budget. Defaults to 2.
	HedgeMultiplier float64
	// HedgeMinSamples is the number of completed requests required
	// before hedging arms. Defaults to 8.
	HedgeMinSamples int
}

func (r Resilience) withDefaults() Resilience {
	if r.BreakerCooldown <= 0 {
		r.BreakerCooldown = 800 * time.Millisecond
	}
	if r.HedgeQuantile <= 0 || r.HedgeQuantile > 1 {
		r.HedgeQuantile = 0.9
	}
	if r.HedgeMultiplier <= 0 {
		r.HedgeMultiplier = 2
	}
	if r.HedgeMinSamples <= 0 {
		r.HedgeMinSamples = 8
	}
	return r
}

// svcWindow is the per-path service digest behind the hedge budget: a
// sliding window of the last 64 successful requests recording each
// one's latency and byte count, with exact quantiles (sort of a
// 64-element copy), so the budget is a pure deterministic function of
// the completed-request history.
type svcWindow struct {
	sec   [64]float64 // request latency, seconds
	bytes [64]int64   // request size
	next  int
	n     int
}

func (w *svcWindow) add(elapsed time.Duration, size int64) {
	w.sec[w.next] = elapsed.Seconds()
	w.bytes[w.next] = size
	w.next = (w.next + 1) % len(w.sec)
	if w.n < len(w.sec) {
		w.n++
	}
}

// rateQuantile returns the q-th quantile of the observed per-request
// service rates (bytes/second), with the fixed per-request overhead
// floor subtracted from each latency first so small requests — whose
// elapsed time is dominated by that overhead — do not read as slow
// transfer rates. Low q picks a slow-but-healthy rate.
func (w *svcWindow) rateQuantile(q, floor float64) float64 {
	if w.n == 0 {
		return 0
	}
	tmp := make([]float64, 0, w.n)
	for i := 0; i < w.n; i++ {
		if w.sec[i] > 0 && w.bytes[i] > 0 {
			sec := w.sec[i] - floor
			if sec < 1e-3 {
				sec = 1e-3
			}
			tmp = append(tmp, float64(w.bytes[i])/sec)
		}
	}
	if len(tmp) == 0 {
		return 0
	}
	sort.Float64s(tmp)
	idx := int(q*float64(len(tmp))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(tmp) {
		idx = len(tmp) - 1
	}
	return tmp[idx]
}

// minSec returns the smallest observed request latency in the window —
// a cheap proxy for the fixed per-request overhead (RTT, dial, headers)
// that does not scale with size.
func (w *svcWindow) minSec() float64 {
	m := 0.0
	for i := 0; i < w.n; i++ {
		if m == 0 || w.sec[i] < m {
			m = w.sec[i]
		}
	}
	return m
}

// srcHealth is the breaker + health score of one target address.
type srcHealth struct {
	fails      int       // consecutive failures since last success
	openUntil  time.Time // breaker open until this instant
	openStreak int       // consecutive opens without a redeeming success
	ewmaLat    float64   // EWMA of successful request latency, seconds
	ewmaFail   float64   // EWMA of the failure indicator (0/1)
	samples    int       // successful requests observed
}

// sourceSet tracks per-target health for one path. All methods run on
// the path's single driving context (the fetch-loop goroutine or the
// event loop), so no locking is needed and the state evolution — and
// every jittered cooldown — is deterministic per seed. State is keyed
// by address, so it survives re-bootstraps that rebuild the server
// list.
type sourceSet struct {
	cfg  Resilience
	rng  uint64 // private splitmix64 stream for breaker-cooldown jitter
	tgts map[string]*srcHealth
	svc  svcWindow
	// hedgeStreak counts consecutive hedges with no intervening
	// success. Each one inflates the next hedge budget by 1.5× (up to
	// the deadline clamp): after a regime shift — a replica kill that
	// doubles the load on the survivor — the window's rate prediction
	// is stale-tight, every fetch would hedge, and no fetch would ever
	// complete to feed a corrective sample. The inflation backs the
	// budget off until fetches complete again and the window re-learns.
	hedgeStreak int
}

// newSourceSet returns nil when the layer is disabled. The rng stream
// is derived from the session seed and path id with an extra offset so
// it never aliases the path's backoff stream.
func newSourceSet(cfg Resilience, seed int64, id int) *sourceSet {
	if cfg.BreakerThreshold <= 0 {
		return nil
	}
	return &sourceSet{
		cfg:  cfg.withDefaults(),
		rng:  uint64(seed)*0x9E3779B97F4A7C15 + uint64(id)*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB,
		tgts: make(map[string]*srcHealth),
	}
}

func (s *sourceSet) tgt(addr string) *srcHealth {
	t := s.tgts[addr]
	if t == nil {
		t = &srcHealth{}
		s.tgts[addr] = t
	}
	return t
}

// observeSuccess closes the target's breaker, decays its failure score
// and feeds the hedge digest with the request's latency and size.
func (s *sourceSet) observeSuccess(addr string, elapsed time.Duration, size int64) {
	t := s.tgt(addr)
	t.fails = 0
	t.openStreak = 0
	t.openUntil = time.Time{}
	sec := elapsed.Seconds()
	if t.samples == 0 {
		t.ewmaLat = sec
	} else {
		t.ewmaLat = 0.7*t.ewmaLat + 0.3*sec
	}
	t.ewmaFail *= 0.7
	t.samples++
	s.svc.add(elapsed, size)
	s.hedgeStreak = 0
}

// observeHedge records a hedge cancel against addr: a breaker strike
// exactly like a hard failure, plus a bump of the path's hedge streak
// so the next budget backs off toward the deadline clamp.
func (s *sourceSet) observeHedge(addr string, now time.Time) (opened bool) {
	s.hedgeStreak++
	return s.observeFailure(addr, now)
}

// probeBytes is the range size of a half-open breaker probe: big
// enough to prove the target serves bytes, small enough that probing a
// still-dead target wastes only the probe itself.
const probeBytes = 1 << 10

// admit closes addr's breaker after a successful half-open probe and
// decays its failure score, without feeding the service window — probe
// latencies say nothing about chunk service rates.
func (s *sourceSet) admit(addr string) {
	t := s.tgt(addr)
	t.fails = 0
	t.openStreak = 0
	t.openUntil = time.Time{}
	t.ewmaFail *= 0.7
}

// observeFailure records a strike against addr at instant now and
// reports whether it opened (or re-opened) the breaker. A half-open
// target — one past its cooldown that has not yet redeemed itself —
// re-opens on a single strike with an escalated (doubled once, then
// flat) cooldown, so a flapping target is not re-admitted every cycle
// yet a healed one is rediscovered within ~2 cooldowns.
func (s *sourceSet) observeFailure(addr string, now time.Time) (opened bool) {
	t := s.tgt(addr)
	t.fails++
	t.ewmaFail = 0.7*t.ewmaFail + 0.3
	if t.openStreak == 0 && t.fails < s.cfg.BreakerThreshold {
		return false
	}
	t.openStreak++
	base := s.cfg.BreakerCooldown << uint(min(t.openStreak-1, 1))
	cd := base + time.Duration(splitmixDraw(&s.rng, int64(base)/2))
	t.openUntil = now.Add(cd)
	t.fails = 0
	return true
}

// pick returns the best live target index at instant now: breaker-open
// targets are skipped outright (fail-fast — no wire time is burned on
// a known-dead replica), the rest are ranked by a deterministic health
// score (latency EWMA inflated by the failure EWMA; never-sampled
// targets rank first), ties broken by slice index. probe reports that
// the winner is a half-open breaker being re-admitted. When every
// target is open, ok is false and wait is the earliest half-open
// instant.
func (s *sourceSet) pick(servers []string, now time.Time) (idx int, probe bool, wait time.Time, ok bool) {
	best := -1
	bestScore := 0.0
	for i, addr := range servers {
		t := s.tgts[addr]
		if t != nil && now.Before(t.openUntil) {
			if wait.IsZero() || t.openUntil.Before(wait) {
				wait = t.openUntil
			}
			continue
		}
		score := 0.0
		if t != nil {
			if t.samples > 0 {
				score = t.ewmaLat * (1 + 8*t.ewmaFail)
			} else {
				// Never-sampled targets rank on a synthetic 10 s latency
				// scale so a fresh target with a failure history can never
				// outrank a sampled healthy one; a fresh target with no
				// history scores zero and is explored first.
				score = 10 * t.ewmaFail
			}
		}
		if best == -1 || score < bestScore {
			best, bestScore = i, score
			probe = t != nil && t.openStreak > 0
		}
	}
	if best == -1 {
		return 0, false, wait, false
	}
	return best, probe, time.Time{}, true
}

// hedgeBudget returns the in-flight latency budget past which a fetch
// of size bytes should be hedged, or 0 when hedging is disarmed (off,
// under-sampled, or the path has fewer than two sources — with no
// alternative to reissue on, cancelling the sole in-flight fetch only
// restarts it from zero against the same laggard, losing whatever
// progress the transfer had made). The budget is size-normalized: the
// time this request would take at the window's slow-but-healthy
// service rate, plus the fixed per-request overhead floor, scaled by
// the multiplier. Against a request deadline the budget is clamped
// just below it — past that instant the deadline would kill the fetch
// anyway, so cancelling the laggard and reissuing it as a hedge
// strictly beats letting it die as a hard timeout and walking the
// failure ladder.
func (s *sourceSet) hedgeBudget(size int64, reqTimeout time.Duration, nsrc int) time.Duration {
	if !s.cfg.HedgeEnabled || size <= 0 || nsrc < 2 || s.svc.n < s.cfg.HedgeMinSamples {
		return 0
	}
	floor := s.svc.minSec()
	rate := s.svc.rateQuantile(1-s.cfg.HedgeQuantile, floor)
	if rate <= 0 {
		return 0
	}
	pred := float64(size)/rate + floor
	b := time.Duration(s.cfg.HedgeMultiplier * pred * float64(time.Second))
	for i := 0; i < s.hedgeStreak && i < 4; i++ {
		b = b * 3 / 2
	}
	if b <= 0 {
		return 0
	}
	if reqTimeout > 0 {
		if max := hedgeClamp(reqTimeout); b > max {
			b = max
		}
		if b <= 0 {
			return 0
		}
	}
	return b
}

// hedgeClamp is the ceiling a hedge budget may reach against a request
// deadline: just under it, so the hedge timer fires strictly ahead of
// the deadline timer instead of racing it at the same instant. The
// margin is deliberately small — a fetch cancelled inside it would
// almost certainly have died at the deadline anyway, so shrinking the
// margin shrinks the band of healthy near-deadline fetches a clamped
// budget can falsely cancel.
func hedgeClamp(reqTimeout time.Duration) time.Duration {
	m := reqTimeout / 64
	if m < time.Millisecond {
		m = time.Millisecond
	}
	return reqTimeout - m
}

// probeBudget returns the hedge budget for a half-open probe. A probe
// exists to measure reality, so it ignores the (possibly stale) rate
// prediction that opened the breaker and runs nearly to the request
// deadline — hedging only at the instant where the deadline would kill
// the fetch anyway. A healthy target therefore always gets room to
// redeem itself and feed a corrective sample into the service window,
// while a still-dead one strikes out as a hedge instead of a hard
// timeout. Returns 0 (unhedged) when hedging is off or deadline-less.
func (s *sourceSet) probeBudget(reqTimeout time.Duration) time.Duration {
	if !s.cfg.HedgeEnabled || reqTimeout <= 0 {
		return 0
	}
	return hedgeClamp(reqTimeout)
}
