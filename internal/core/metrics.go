package core

import (
	"sync"
	"time"
)

// Phase labels which buffering phase a byte was fetched in, for the
// Table 1 traffic-share accounting.
type Phase int

// Buffering phases.
const (
	PhasePreBuffer Phase = iota
	PhaseReBuffer
)

// String returns "pre" or "re".
func (p Phase) String() string {
	if p == PhasePreBuffer {
		return "pre"
	}
	return "re"
}

// PathStats aggregates per-path counters for one streaming session.
type PathStats struct {
	// Network is the access network name ("wifi", "lte").
	Network string
	// Chunks is the number of successfully fetched chunks.
	Chunks int
	// Requests counts all range requests including failed ones.
	Requests int
	// Failures counts failed range requests.
	Failures int
	// Failovers counts switches to another replica in the network.
	Failovers int
	// Timeouts counts failures caused by the per-request deadline
	// (httpx.ErrRequestTimeout); a subset of Failures.
	Timeouts int
	// Rebootstraps counts renewed watch requests (token refresh or
	// server-list refresh after persistent failures).
	Rebootstraps int
	// BreakerOpens counts circuit-breaker opens (including re-opens of
	// a half-open breaker whose probe failed). Zero unless the path's
	// Resilience layer is enabled.
	BreakerOpens int
	// HalfOpenProbes counts selections of a half-open target — probes
	// re-admitting a previously broken replica.
	HalfOpenProbes int
	// Hedges counts hedged range requests: in-flight fetches cancelled
	// at the hedge-budget instant and reissued against the best-scored
	// live source.
	Hedges int
	// HedgesWon counts hedges whose reissued fetch succeeded.
	HedgesWon int
	// HedgeWastedBytes sums the range sizes of hedges whose reissue
	// failed anyway — bytes of cancelled work the hedge did not save.
	HedgeWastedBytes int64
	// Bytes is the total payload fetched over this path.
	Bytes int64
	// PreBytes/ReBytes split Bytes by buffering phase.
	PreBytes int64
	ReBytes  int64
	// ActiveTime is the cumulative wall time this path spent inside
	// range-request transfers, the input to the radio energy model.
	ActiveTime time.Duration
	// FirstVideoByte is the delay from session start until this path
	// completed its first chunk — the measured π of §3.2.
	FirstVideoByte time.Duration
	// FirstByteSet reports whether FirstVideoByte was recorded.
	FirstByteSet bool
}

// Metrics is the result of one streaming session.
type Metrics struct {
	// Scheduler names the chunk scheduler used.
	Scheduler string
	// PreBufferTime is the duration of the pre-buffering phase,
	// measured from session start (bootstrap included).
	PreBufferTime time.Duration
	// PreBufferDone reports whether pre-buffering completed.
	PreBufferDone bool
	// Refills lists completed re-buffering cycles.
	Refills []Refill
	// Stalls lists playback underruns.
	Stalls []Stall
	// Paths holds per-path counters, indexed as configured.
	Paths []PathStats
	// TotalBytes is the in-order delivered byte count.
	TotalBytes int64
	// Elapsed is the total emulated session duration.
	Elapsed time.Duration
}

// Share returns the fraction of phase bytes carried by the named
// network, or 0 when no bytes were fetched in that phase.
func (m *Metrics) Share(network string, phase Phase) float64 {
	var part, total int64
	for _, p := range m.Paths {
		b := p.PreBytes
		if phase == PhaseReBuffer {
			b = p.ReBytes
		}
		total += b
		if p.Network == network {
			part += b
		}
	}
	if total == 0 {
		return 0
	}
	return float64(part) / float64(total)
}

// metricsRecorder is the concurrent accumulator behind Metrics.
type metricsRecorder struct {
	mu    sync.Mutex
	paths []PathStats
	start time.Time
}

func newMetricsRecorder(networks []string, start time.Time) *metricsRecorder {
	r := &metricsRecorder{start: start, paths: make([]PathStats, len(networks))}
	for i, n := range networks {
		r.paths[i].Network = n
	}
	return r
}

func (r *metricsRecorder) request(i int) {
	r.mu.Lock()
	r.paths[i].Requests++
	r.mu.Unlock()
}

func (r *metricsRecorder) failure(i int) {
	r.mu.Lock()
	r.paths[i].Failures++
	r.mu.Unlock()
}

func (r *metricsRecorder) failover(i int) {
	r.mu.Lock()
	r.paths[i].Failovers++
	r.mu.Unlock()
}

func (r *metricsRecorder) timeout(i int) {
	r.mu.Lock()
	r.paths[i].Timeouts++
	r.mu.Unlock()
}

func (r *metricsRecorder) rebootstrap(i int) {
	r.mu.Lock()
	r.paths[i].Rebootstraps++
	r.mu.Unlock()
}

func (r *metricsRecorder) breakerOpen(i int) {
	r.mu.Lock()
	r.paths[i].BreakerOpens++
	r.mu.Unlock()
}

func (r *metricsRecorder) halfOpenProbe(i int) {
	r.mu.Lock()
	r.paths[i].HalfOpenProbes++
	r.mu.Unlock()
}

func (r *metricsRecorder) hedge(i int) {
	r.mu.Lock()
	r.paths[i].Hedges++
	r.mu.Unlock()
}

func (r *metricsRecorder) hedgeWon(i int) {
	r.mu.Lock()
	r.paths[i].HedgesWon++
	r.mu.Unlock()
}

func (r *metricsRecorder) hedgeWasted(i int, n int64) {
	r.mu.Lock()
	r.paths[i].HedgeWastedBytes += n
	r.mu.Unlock()
}

func (r *metricsRecorder) chunk(i int, size int64, phase Phase, now time.Time, elapsed time.Duration) {
	r.mu.Lock()
	p := &r.paths[i]
	p.Chunks++
	p.Bytes += size
	p.ActiveTime += elapsed
	if phase == PhasePreBuffer {
		p.PreBytes += size
	} else {
		p.ReBytes += size
	}
	if !p.FirstByteSet {
		p.FirstVideoByte = now.Sub(r.start)
		p.FirstByteSet = true
	}
	r.mu.Unlock()
}

func (r *metricsRecorder) snapshot() []PathStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]PathStats(nil), r.paths...)
}
