// Package estimator implements the path-bandwidth estimators that drive
// MSPlayer's chunk schedulers (paper §3.3): the exponentially weighted
// moving average of Eq. 1 and the incrementally updated harmonic mean of
// Eq. 2, plus the trivial last-sample estimator used by the Ratio
// baseline.
package estimator

import "fmt"

// Estimator tracks per-chunk throughput samples (bytes per second) for
// one path and produces a smoothed bandwidth estimate.
type Estimator interface {
	// Observe feeds a new throughput measurement w > 0; non-positive
	// samples are ignored.
	Observe(w float64)
	// Estimate returns the current estimate and whether at least one
	// sample has been observed.
	Estimate() (float64, bool)
	// Reset clears all state.
	Reset()
	// Name identifies the estimator ("ewma", "harmonic", "last").
	Name() string
}

// EWMA implements Eq. 1: ŵ(t+1) = α·ŵ(t) + (1−α)·w(t). Larger α weights
// history more heavily; the paper evaluates α = 0.9.
type EWMA struct {
	Alpha float64
	est   float64
	ok    bool
}

// NewEWMA returns an EWMA estimator with the given α ∈ [0, 1).
func NewEWMA(alpha float64) *EWMA {
	if alpha < 0 || alpha >= 1 {
		panic(fmt.Sprintf("estimator: EWMA alpha %v out of [0,1)", alpha))
	}
	return &EWMA{Alpha: alpha}
}

// Observe implements Estimator.
func (e *EWMA) Observe(w float64) {
	if w <= 0 {
		return
	}
	if !e.ok {
		e.est = w
		e.ok = true
		return
	}
	e.est = e.Alpha*e.est + (1-e.Alpha)*w
}

// Estimate implements Estimator.
func (e *EWMA) Estimate() (float64, bool) { return e.est, e.ok }

// Reset implements Estimator.
func (e *EWMA) Reset() { e.est, e.ok = 0, false }

// Name implements Estimator.
func (e *EWMA) Name() string { return "ewma" }

// Harmonic implements the incremental harmonic mean of Eq. 2:
//
//	ŵ(n+1) = (n+1) / ( n/ŵ(n) + 1/w(n+1) )
//
// keeping only the running estimate and the sample count, as the paper
// highlights to avoid storing past measurements. The harmonic mean
// damps large outliers (bandwidth bursts), which is why it is the
// default MSPlayer estimator.
type Harmonic struct {
	n   int
	est float64
}

// NewHarmonic returns an empty harmonic-mean estimator.
func NewHarmonic() *Harmonic { return &Harmonic{} }

// Observe implements Estimator.
func (h *Harmonic) Observe(w float64) {
	if w <= 0 {
		return
	}
	if h.n == 0 {
		h.n = 1
		h.est = w
		return
	}
	n := float64(h.n)
	h.est = (n + 1) / (n/h.est + 1/w)
	h.n++
}

// Estimate implements Estimator.
func (h *Harmonic) Estimate() (float64, bool) { return h.est, h.n > 0 }

// Reset implements Estimator.
func (h *Harmonic) Reset() { h.n, h.est = 0, 0 }

// Name implements Estimator.
func (h *Harmonic) Name() string { return "harmonic" }

// Count returns the number of samples absorbed (the paper's n).
func (h *Harmonic) Count() int { return h.n }

// LastSample remembers only the most recent measurement; it is the
// estimator behind the Ratio baseline, whose weakness — reacting to a
// single noisy sample — the dynamic schedulers are designed to fix.
type LastSample struct {
	est float64
	ok  bool
}

// NewLastSample returns an empty last-sample estimator.
func NewLastSample() *LastSample { return &LastSample{} }

// Observe implements Estimator.
func (l *LastSample) Observe(w float64) {
	if w <= 0 {
		return
	}
	l.est, l.ok = w, true
}

// Estimate implements Estimator.
func (l *LastSample) Estimate() (float64, bool) { return l.est, l.ok }

// Reset implements Estimator.
func (l *LastSample) Reset() { l.est, l.ok = 0, false }

// Name implements Estimator.
func (l *LastSample) Name() string { return "last" }
