package estimator

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEWMAFollowsEq1(t *testing.T) {
	e := NewEWMA(0.9)
	if _, ok := e.Estimate(); ok {
		t.Fatal("fresh estimator should report no estimate")
	}
	e.Observe(100)
	if est, ok := e.Estimate(); !ok || est != 100 {
		t.Fatalf("after first sample: (%v, %v)", est, ok)
	}
	e.Observe(200)
	want := 0.9*100 + 0.1*200
	if est, _ := e.Estimate(); math.Abs(est-want) > 1e-9 {
		t.Fatalf("after second sample: %v, want %v", est, want)
	}
}

func TestEWMAIgnoresNonPositive(t *testing.T) {
	e := NewEWMA(0.9)
	e.Observe(100)
	e.Observe(0)
	e.Observe(-5)
	if est, _ := e.Estimate(); est != 100 {
		t.Fatalf("estimate = %v, want 100", est)
	}
}

func TestEWMAPanicsOnBadAlpha(t *testing.T) {
	for _, a := range []float64{-0.1, 1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha %v did not panic", a)
				}
			}()
			NewEWMA(a)
		}()
	}
}

func TestHarmonicMatchesBatchFormula(t *testing.T) {
	samples := []float64{120, 80, 200, 95, 60, 300}
	h := NewHarmonic()
	sum := 0.0
	for i, w := range samples {
		h.Observe(w)
		sum += 1 / w
		want := float64(i+1) / sum
		if est, ok := h.Estimate(); !ok || math.Abs(est-want) > 1e-9 {
			t.Fatalf("after %d samples: est = %v, want %v", i+1, est, want)
		}
	}
	if h.Count() != len(samples) {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestHarmonicDampsOutliers(t *testing.T) {
	h := NewHarmonic()
	e := NewEWMA(0.5)
	for _, w := range []float64{100, 100, 100, 100} {
		h.Observe(w)
		e.Observe(w)
	}
	h.Observe(10000) // burst outlier
	e.Observe(10000)
	hEst, _ := h.Estimate()
	eEst, _ := e.Estimate()
	if hEst >= eEst {
		t.Fatalf("harmonic (%v) should damp the outlier more than EWMA (%v)", hEst, eEst)
	}
	if hEst > 150 {
		t.Fatalf("harmonic estimate %v blown up by outlier", hEst)
	}
}

func TestLastSample(t *testing.T) {
	l := NewLastSample()
	if _, ok := l.Estimate(); ok {
		t.Fatal("fresh last-sample should be empty")
	}
	l.Observe(10)
	l.Observe(20)
	if est, _ := l.Estimate(); est != 20 {
		t.Fatalf("estimate = %v, want 20", est)
	}
}

func TestReset(t *testing.T) {
	for _, e := range []Estimator{NewEWMA(0.9), NewHarmonic(), NewLastSample()} {
		e.Observe(50)
		e.Reset()
		if _, ok := e.Estimate(); ok {
			t.Errorf("%s: estimate survives Reset", e.Name())
		}
		e.Observe(70)
		if est, ok := e.Estimate(); !ok || est != 70 {
			t.Errorf("%s: estimator unusable after Reset: (%v, %v)", e.Name(), est, ok)
		}
	}
}

// Property (paper's rationale for the harmonic mean): the estimate is
// bounded by the min and max of the samples and never exceeds the
// arithmetic mean.
func TestHarmonicBoundedProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		h := NewHarmonic()
		var xs []float64
		for _, r := range raw {
			w := float64(r%1_000_000) + 1
			xs = append(xs, w)
			h.Observe(w)
		}
		if len(xs) == 0 {
			return true
		}
		est, ok := h.Estimate()
		if !ok {
			return false
		}
		min, max, sum := xs[0], xs[0], 0.0
		for _, x := range xs {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
			sum += x
		}
		mean := sum / float64(len(xs))
		return est >= min*(1-1e-9) && est <= max*(1+1e-9) && est <= mean*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: EWMA stays within the convex hull of its samples.
func TestEWMABoundedProperty(t *testing.T) {
	f := func(raw []uint32, alphaRaw uint8) bool {
		alpha := float64(alphaRaw) / 256.0
		e := NewEWMA(alpha)
		min, max := math.Inf(1), math.Inf(-1)
		seen := false
		for _, r := range raw {
			w := float64(r%1_000_000) + 1
			e.Observe(w)
			if w < min {
				min = w
			}
			if w > max {
				max = w
			}
			seen = true
		}
		if !seen {
			return true
		}
		est, _ := e.Estimate()
		return est >= min*(1-1e-9) && est <= max*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
