package core

import (
	"testing"
	"testing/quick"
	"time"
)

// TestBufferInvariantsProperty drives a playout buffer with arbitrary
// interleavings of deliveries and time and checks the core invariants:
// buffered time is never negative, played never exceeds received,
// refill and stall durations are positive, and state only moves
// forward (pre-buffering completes at most once).
func TestBufferInvariantsProperty(t *testing.T) {
	f := func(steps []uint32) bool {
		start := time.Unix(0, 0)
		b := NewPlayoutBuffer(BufferConfig{}, testBPS, 5*time.Minute, start, nil)
		now := start
		received := int64(0)
		preDoneTimes := 0
		wasDone := false
		for _, s := range steps {
			// Alternate advancing time (up to 8 s) and delivering bytes
			// (up to ~4 s of video), driven by the fuzz input.
			if s%3 == 0 {
				now = now.Add(time.Duration(s%8000) * time.Millisecond)
				b.Tick(now)
			} else {
				received += int64(s % 1_250_000)
				b.Deliver(received, now)
			}
			if got := b.Buffered(now); got < 0 {
				return false
			}
			if _, ok := b.PreBufferTime(); ok {
				if !wasDone {
					preDoneTimes++
					wasDone = true
				}
				if preDoneTimes > 1 {
					return false
				}
			} else if wasDone {
				return false // pre-buffering un-completed
			}
			for _, r := range b.Refills() {
				if r.Duration < 0 {
					return false
				}
			}
			for _, st := range b.Stalls() {
				if st.Duration <= 0 {
					return false
				}
			}
			if b.GoalBytes(now) < 0 || b.GoalOffset(now) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestBufferMonotoneClock checks the buffer tolerates queries with
// non-monotonic timestamps (concurrent callers can observe slightly
// stale clocks) without corrupting state.
func TestBufferMonotoneClock(t *testing.T) {
	start := time.Unix(0, 0)
	b := NewPlayoutBuffer(BufferConfig{}, testBPS, 5*time.Minute, start, nil)
	b.Deliver(bytesOfPlayback(41), start.Add(8*time.Second))
	// A query 'in the past' is a no-op rather than a rewind.
	if got := b.Buffered(start.Add(2 * time.Second)); got < 0 {
		t.Fatalf("buffered = %v", got)
	}
	after := b.Buffered(start.Add(9 * time.Second))
	if after <= 0 || after > 41*time.Second {
		t.Fatalf("buffered after = %v", after)
	}
}
