package core

import (
	"math"
	"testing"
	"time"
)

func TestEnergyModel(t *testing.T) {
	m := EnergyModel{ActivePower: 2, TailEnergy: 1}
	got := m.Energy(10*time.Second, 5)
	if math.Abs(got-25) > 1e-9 {
		t.Fatalf("Energy = %v, want 25 J", got)
	}
	if m.Energy(0, 0) != 0 {
		t.Fatal("idle session should cost nothing")
	}
}

func TestSessionEnergySplitsPerPath(t *testing.T) {
	m := &Metrics{Paths: []PathStats{
		{Network: "wifi", ActiveTime: 10 * time.Second, Chunks: 10},
		{Network: "lte", ActiveTime: 10 * time.Second, Chunks: 10},
	}}
	total, perPath := SessionEnergy(m, DefaultRadios())
	if len(perPath) != 2 {
		t.Fatalf("perPath = %v", perPath)
	}
	wantWiFi := 0.7*10 + 0.1*10 // 8 J
	wantLTE := 1.8*10 + 1.2*10  // 30 J
	if math.Abs(perPath[0]-wantWiFi) > 1e-9 || math.Abs(perPath[1]-wantLTE) > 1e-9 {
		t.Fatalf("perPath = %v, want [%v %v]", perPath, wantWiFi, wantLTE)
	}
	if math.Abs(total-(wantWiFi+wantLTE)) > 1e-9 {
		t.Fatalf("total = %v", total)
	}
	// Same activity costs far more on LTE: the asymmetry an
	// energy-aware scheduler would exploit.
	if perPath[1] <= perPath[0] {
		t.Fatal("LTE should cost more than WiFi for equal activity")
	}
}

func TestSessionEnergyUnknownNetworkFallsBack(t *testing.T) {
	m := &Metrics{Paths: []PathStats{
		{Network: "ethernet", ActiveTime: 10 * time.Second, Chunks: 10},
	}}
	total, _ := SessionEnergy(m, DefaultRadios())
	want := WiFiRadio.Energy(10*time.Second, 10)
	if math.Abs(total-want) > 1e-9 {
		t.Fatalf("fallback total = %v, want %v", total, want)
	}
}
