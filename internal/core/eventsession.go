package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/httpx"
	"repro/internal/netem"
	"repro/internal/origin"
)

// This file is the event-loop session engine: the same MSPlayer session
// RunAs drives with parked goroutines, re-expressed as state machines
// that run as steps of one shared netem.Loop. A fleet of N sessions
// needs O(cores) goroutines instead of O(N): each path is a callback
// machine over httpx.EventTransport (borrowed zero-copy reads included)
// and the gater is a timer machine. Every state change that would have
// Broadcast a blocking path awake instead enqueues a re-poll step, so
// the machines act at exactly the instants the goroutines would have —
// the two engines are wire-identical and produce identical Metrics.

// EventedSession is the handle RunEvented returns. Its only operation,
// Interrupt, force-finishes the session after the emulation clock has
// stopped (the evented analogue of RunAs observing a false Cond.Wait).
type EventedSession struct {
	s *evSession
}

// Interrupt tears the session down with errClockStopped and delivers
// the sealed metrics to the done callback. It is meant for a stopped
// clock, where the machines' pending timers will never fire; calling it
// on a live session ends it at the current instant. Idempotent.
func (es *EventedSession) Interrupt() {
	es.s.loop.Do(es.s.interrupt)
}

// evSession owns the per-session machine set and the completion
// bookkeeping RunAs keeps on its own goroutine: livePaths mirrors the
// pathsExited trigger, liveMachines is the drain barrier, and teardown
// runs inline at the trigger instant instead of on a woken goroutine.
// All fields are loop-confined.
type evSession struct {
	p    *Player
	loop *netem.Loop
	done func(*Metrics, error)

	paths []*evPath
	gater *evGater
	// waitq holds the paths parked in acquire in the order they parked —
	// the image of the blocking Cond's FIFO waiter list. Re-polling in
	// park order matters: when a gate-off leaves less assignable media
	// than the parked paths want, the longest-waiting path wins the span,
	// exactly as Broadcast wakes (and the mutex hands over) in park order.
	waitq        []*evPath
	livePaths    int
	liveMachines int // path machines + gater still to unwind
	torndown     bool
	finished     bool
	runErr       error
}

// RunEvented starts the session as event-loop machines on loop and
// returns immediately. done is invoked from a loop step at the virtual
// instant the last worker machine unwinds — the same instant RunAs
// would have returned — with the sealed Metrics and the RunAs error.
// External context cancellation is not supported: a fleet session's
// context only ever fires at teardown, where the evented engine aborts
// transfers directly. The caller keeps the clock alive (a registered
// participant parked in a Cond, typically); if the clock stops before
// the session completes, call Interrupt to collect the partial result.
func (p *Player) RunEvented(loop *netem.Loop, done func(*Metrics, error)) *EventedSession {
	s := &evSession{p: p, loop: loop, done: done}
	loop.Do(s.start)
	return &EventedSession{s: s}
}

func (s *evSession) start() {
	p := s.p
	if p.cfg.OnRun != nil {
		p.cfg.OnRun()
	}
	p.mu.Lock()
	p.start = p.clock.Now()
	p.mu.Unlock()
	p.metrics.start = p.start

	s.livePaths = len(p.cfg.Paths)
	s.liveMachines = len(p.cfg.Paths) + 1 // paths + gater
	// Install the re-poll hooks before the first machine can signal.
	// Every chunk-manager or lifecycle Broadcast now also enqueues a
	// step, the loop-world image of waking the parked goroutines.
	kick := func() { s.loop.Do(s.step) }
	p.cm.notify = kick
	p.evKick = kick
	s.gater = &evGater{sess: s}
	s.gater.tm = p.clock.NewTimer(func() { s.loop.Do(s.gater.wake) })
	for i, pc := range p.cfg.Paths {
		s.paths = append(s.paths, newEvPath(i, pc, s))
	}
	for _, ep := range s.paths {
		ep.start()
	}
	s.gater.poll()
}

// step is the session-wide re-poll: it runs once per kick, checks the
// stop condition, and lets every parked machine re-evaluate — exactly
// the set of waiters a blocking Broadcast would have woken.
func (s *evSession) step() {
	if s.finished {
		return
	}
	if !s.torndown {
		s.p.smu.Lock()
		sessionDone := s.p.sessionDone
		s.p.smu.Unlock()
		if sessionDone {
			s.teardown(nil)
		}
	}
	s.gater.poll()
	// Drain the wait queue in park order; paths that still find nothing
	// re-append themselves at the tail, just as a woken blocking waiter
	// whose predicate still fails re-Waits behind the others.
	q := s.waitq
	s.waitq = nil
	for _, ep := range q {
		ep.queued = false
		if ep.waiting && !ep.exited {
			ep.fetchStep()
		}
	}
}

// teardown is RunAs's stopping stage at the trigger instant: seal the
// books (a no-op when finish already sealed them), stop assignment,
// make cancellation visible, and abort every in-flight transfer. The
// machines then unwind at the same deterministic instants the blocking
// workers would have — in-flight fetches observe their aborts now,
// pending backoff and gater timers still fire at their scheduled wakes
// and exit there.
func (s *evSession) teardown(trigger error) {
	if s.torndown {
		return
	}
	s.torndown = true
	s.p.smu.Lock()
	sessionDone := s.p.sessionDone
	s.p.smu.Unlock()
	if !sessionDone {
		s.runErr = trigger
	}
	s.p.seal(false)
	s.p.cm.stop()
	s.p.smu.Lock()
	s.p.cancelled = true
	s.p.scond.Broadcast()
	s.p.smu.Unlock()
	for _, ep := range s.paths {
		ep.et.Shutdown(errSessionStopped)
	}
}

// onPathExit mirrors the blocking fetch loop's self-raised pathsExited:
// the last path to exit decides, on the spot, whether the session ended
// short (teardown with the all-paths-exited error) or simply drained.
func (s *evSession) onPathExit() {
	s.livePaths--
	if s.livePaths > 0 {
		return
	}
	s.p.smu.Lock()
	s.p.pathsExited = true
	s.p.scond.Broadcast()
	s.p.smu.Unlock()
	if !s.torndown {
		var err error
		if !s.p.cm.Done() {
			err = errors.New("core: all paths exited before the session completed")
		}
		s.teardown(err)
	}
}

// machineDone is the drain barrier: the last machine to unwind collects
// the sealed result and completes the session.
func (s *evSession) machineDone() {
	s.liveMachines--
	if s.liveMachines > 0 {
		return
	}
	if !s.torndown {
		s.teardown(nil)
	}
	s.finish()
}

func (s *evSession) finish() {
	if s.finished {
		return
	}
	s.finished = true
	s.done(s.p.collect(), s.runErr)
}

// interrupt force-finishes after the clock stopped: no pending timer
// will ever fire, so the remaining machines are abandoned where they
// froze and the sealed books are collected immediately — the evented
// image of RunAs's stopped-clock drain fallback.
func (s *evSession) interrupt() {
	if s.finished {
		return
	}
	s.teardown(errClockStopped)
	s.finish()
}

// evPath is the fetch loop of one MSPlayer path as a callback machine:
// the same bootstrap/acquire/fetch/failover control flow as path.run,
// with continuation callbacks where the goroutine parked. The rng, the
// draw order, every backoff constant and every metrics call site match
// path.go exactly, so both engines retire the same virtual instants.
type evPath struct {
	id   int
	cfg  PathConfig
	pl   *Player
	sess *evSession
	et   *httpx.EventTransport

	info      *origin.VideoInfo
	servers   []string
	serverIdx int
	url       string

	rng        uint64
	failStreak int

	// res / hedging mirror path.res and path.hedging exactly: the
	// resilience layer's per-target health state (nil when disabled)
	// and the pending hedge's range size.
	res     *sourceSet
	hedging int64

	// waiting marks the machine parked in acquire: want is pinned for
	// the whole wait (the blocking acquire's want is fixed too) and
	// session steps re-poll acquireTry until it resolves.
	waiting bool
	queued  bool // in the session's FIFO wait queue
	want    int64
	exited  bool

	// backoffTm drives the exponential-backoff sleeps; backoffFn is the
	// pending continuation it resumes.
	backoffTm *netem.Timer
	backoffFn func(error)
}

func newEvPath(id int, cfg PathConfig, s *evSession) *evPath {
	if cfg.Network == "" {
		cfg.Network = cfg.Iface.Name()
	}
	et := httpx.NewEventTransport(cfg.Iface, s.p.clock, s.loop)
	et.SetRequestTimeout(cfg.RequestTimeout)
	ep := &evPath{
		id: id, cfg: cfg, pl: s.p, sess: s, et: et,
		rng: uint64(s.p.cfg.Seed)*0x9E3779B97F4A7C15 + uint64(id)*0xBF58476D1CE4E5B9,
		res: newSourceSet(cfg.Resilience, s.p.cfg.Seed, id),
	}
	ep.backoffTm = s.p.clock.NewTimer(func() { s.loop.Do(ep.backoffFire) })
	return ep
}

func (ep *evPath) start() {
	ep.bootstrap(0, func(err error) {
		if err != nil {
			ep.exit()
			return
		}
		ep.fetchStep()
	})
}

func (ep *evPath) exit() {
	if ep.exited {
		return
	}
	ep.exited = true
	ep.backoffTm.Stop()
	ep.sess.onPathExit()
	ep.sess.machineDone()
}

// backoff sleeps the same exponentially growing, jittered delay as
// path.backoff and resumes then with nil, or with an error when the
// session was cancelled (checked at the wake instant, exactly as the
// blocking path checks ctx after its Sleep returns).
func (ep *evPath) backoff(attempt int, then func(error)) {
	d := 250 * time.Millisecond << uint(min(attempt, 3))
	d += time.Duration(splitmixDraw(&ep.rng, int64(d)/2))
	ep.backoffFn = then
	ep.backoffTm.Schedule(ep.pl.clock.Now().Add(d))
}

func (ep *evPath) backoffFire() {
	then := ep.backoffFn
	ep.backoffFn = nil
	if then == nil || ep.exited {
		return
	}
	if ep.sess.torndown {
		then(errSessionStopped)
		return
	}
	if ep.pl.clock.Stopped() {
		then(errClockStopped)
		return
	}
	then(nil)
}

// bootstrap fetches video metadata from the network's web proxy,
// retrying with backoff, and resumes then. The blocking fetchInfo's
// json.Decoder-plus-probing-Close pattern lands at exactly the instants
// EventTransport.Get delivers — success completes at the terminal chunk
// frame with the connection pooled, non-200 retires the connection at
// the first body byte — so a plain Unmarshal of the collected body is
// timing-exact.
func (ep *evPath) bootstrap(attempt int, then func(error)) {
	if ep.sess.torndown {
		then(errSessionStopped)
		return
	}
	url := fmt.Sprintf("http://%s/watch?v=%s", ep.cfg.ProxyAddr, ep.pl.cfg.VideoID)
	if ep.res != nil {
		// Watch requests are never hedged (mirrors fetchInfo).
		ep.et.SetHedge(0)
	}
	ep.et.Get(url, func(status int, body []byte, err error) {
		var info *origin.VideoInfo
		if err == nil {
			if status != http.StatusOK {
				err = fmt.Errorf("core: watch request: status %d", status)
			} else {
				info = new(origin.VideoInfo)
				if derr := json.Unmarshal(body, info); derr != nil {
					err = fmt.Errorf("core: decoding video info: %w", derr)
				}
			}
		}
		if err == nil {
			if len(info.VideoServers) == 0 && len(ep.cfg.VideoServers) == 0 {
				err = fmt.Errorf("core: no video servers in network %s", ep.cfg.Network)
			} else if _, e := info.ContentLengthFor(ep.pl.cfg.Itag); e != nil {
				err = e
			}
		}
		if err != nil {
			ep.backoff(attempt, func(berr error) {
				if berr != nil {
					then(berr)
					return
				}
				ep.bootstrap(attempt+1, then)
			})
			return
		}
		ep.info = info
		ep.servers = info.VideoServers
		if len(ep.cfg.VideoServers) > 0 {
			ep.servers = ep.cfg.VideoServers
		}
		ep.serverIdx = 0
		ep.url = info.PlaybackURL(ep.servers[0], ep.pl.cfg.Itag)
		n, _ := info.ContentLengthFor(ep.pl.cfg.Itag)
		ep.pl.onBootstrap(info, n)
		then(nil)
	})
}

// failover mirrors path.failover: rotate replicas within the streak,
// then back off and re-bootstrap once the streak has walked the list.
func (ep *evPath) failover(attempt int, then func(error)) {
	if len(ep.servers) > 1 && attempt%len(ep.servers) != 0 {
		ep.serverIdx = (ep.serverIdx + 1) % len(ep.servers)
		ep.pl.metrics.failover(ep.id)
		ep.url = ep.info.PlaybackURL(ep.servers[ep.serverIdx], ep.pl.cfg.Itag)
		then(nil)
		return
	}
	ep.backoff(attempt, func(err error) {
		if err != nil {
			then(err)
			return
		}
		ep.pl.metrics.rebootstrap(ep.id)
		ep.bootstrap(0, then)
	})
}

// reselect mirrors path.reselect: health-scored selection that fails
// fast past breaker-open targets, with the periodic backoff +
// re-bootstrap fallback.
func (ep *evPath) reselect(attempt int, then func(error)) {
	if attempt > 0 && len(ep.servers) > 0 && attempt%(2*len(ep.servers)) == 0 {
		ep.backoff(attempt, func(err error) {
			if err != nil {
				then(err)
				return
			}
			ep.pl.metrics.rebootstrap(ep.id)
			ep.bootstrap(0, func(err error) {
				if err != nil {
					then(err)
					return
				}
				ep.applyPick(attempt, then)
			})
		})
		return
	}
	ep.applyPick(attempt, then)
}

// applyPick is reselect's selection step. When every breaker is open
// it parks on the backoff timer until the earliest half-open instant —
// the continuation image of path.reselect's SleepUntil (backoffFire
// performs the same torndown / stopped-clock checks at the wake).
// Half-open winners run the 1 KiB probe first and re-enter selection
// when it fails, exactly like the blocking pick loop.
func (ep *evPath) applyPick(attempt int, then func(error)) {
	clock := ep.pl.clock
	idx, probe, wait, ok := ep.res.pick(ep.servers, clock.Now())
	if !ok {
		ep.backoffFn = func(err error) {
			if err != nil {
				then(err)
				return
			}
			idx, probe, _, ok := ep.res.pick(ep.servers, clock.Now())
			if !ok {
				ep.backoff(attempt, then)
				return
			}
			ep.finishPick(idx, probe, attempt, then)
		}
		ep.backoffTm.Schedule(wait)
		return
	}
	ep.finishPick(idx, probe, attempt, then)
}

// finishPick commits idx as the path's source, running the half-open
// probe first when the pick re-admitted an open breaker.
func (ep *evPath) finishPick(idx int, probe bool, attempt int, then func(error)) {
	if probe {
		ep.probe(idx, attempt, then)
		return
	}
	if idx != ep.serverIdx {
		ep.serverIdx = idx
		ep.pl.metrics.failover(ep.id)
		ep.url = ep.info.PlaybackURL(ep.servers[idx], ep.pl.cfg.Itag)
	}
	then(nil)
}

// probe mirrors path.probe exactly: the 1 KiB half-open probe against
// servers[idx], feeding the breaker and robustness metrics but never
// the service window. A failed probe re-enters applyPick; a redeemed
// target is committed as the path's source.
func (ep *evPath) probe(idx, attempt int, then func(error)) {
	pl := ep.pl
	pl.metrics.halfOpenProbe(ep.id)
	pl.metrics.request(ep.id)
	ep.et.SetHedge(ep.res.probeBudget(ep.cfg.RequestTimeout))
	u := ep.info.PlaybackURL(ep.servers[idx], pl.cfg.Itag)
	ep.et.GetRangeViews(u, 0, probeBytes-1, func(views [][]byte, release func(), err error) {
		if err != nil {
			if ep.sess.torndown {
				ep.exit()
				return
			}
			if errors.Is(err, httpx.ErrHedged) {
				pl.metrics.hedge(ep.id)
			} else {
				pl.metrics.failure(ep.id)
				if errors.Is(err, httpx.ErrRequestTimeout) {
					pl.metrics.timeout(ep.id)
				}
			}
			if ep.res.observeFailure(ep.servers[idx], pl.clock.Now()) {
				pl.metrics.breakerOpen(ep.id)
			}
			ep.applyPick(attempt, then)
			return
		}
		release()
		ep.res.admit(ep.servers[idx])
		if idx != ep.serverIdx {
			ep.serverIdx = idx
			pl.metrics.failover(ep.id)
			ep.url = ep.info.PlaybackURL(ep.servers[idx], pl.cfg.Itag)
		}
		then(nil)
	})
}

// fetchStep is one iteration of the blocking fetch loop's head: check
// cancellation, size the next chunk, and try to acquire it. When no
// work is available the machine stays parked in waiting and the next
// session step re-polls with the pinned want.
func (ep *evPath) fetchStep() {
	if ep.exited {
		return
	}
	if !ep.waiting {
		if ep.sess.torndown {
			ep.exit()
			return
		}
		ep.want = ep.pl.cfg.Scheduler.Size(ep.id)
		ep.waiting = true
	}
	span, ok, over := ep.pl.cm.acquireTry(ep.want)
	if over {
		ep.waiting = false
		ep.exit()
		return
	}
	if !ok {
		if !ep.queued {
			ep.queued = true
			ep.sess.waitq = append(ep.sess.waitq, ep)
		}
		return
	}
	ep.waiting = false
	ep.fetch(span)
}

// resume continues the fetch loop after a recovery step (re-bootstrap
// or failover), exiting on cancellation exactly as path.run returns.
func (ep *evPath) resume(err error) {
	if err != nil {
		ep.exit()
		return
	}
	ep.fetchStep()
}

func (ep *evPath) fetch(span Span) {
	pl := ep.pl
	pl.metrics.request(ep.id)
	if ep.res != nil {
		ep.et.SetHedge(ep.res.hedgeBudget(span.Size, ep.cfg.RequestTimeout, len(ep.servers)))
	}
	start := pl.clock.Now()
	ep.et.GetRangeViews(ep.url, span.Off, span.End()-1, func(views [][]byte, release func(), err error) {
		if err != nil {
			if ep.res != nil && errors.Is(err, httpx.ErrHedged) {
				// Mirrors the blocking ladder's hedge branch exactly:
				// not a failure, but a breaker strike and a redirect to
				// the best-scored live source.
				pl.cm.fail(span)
				if ep.sess.torndown {
					ep.exit()
					return
				}
				pl.metrics.hedge(ep.id)
				if ep.hedging > 0 {
					pl.metrics.hedgeWasted(ep.id, ep.hedging)
				}
				ep.hedging = span.Size
				if ep.res.observeHedge(ep.servers[ep.serverIdx], pl.clock.Now()) {
					pl.metrics.breakerOpen(ep.id)
				}
				ep.reselect(0, ep.resume)
				return
			}
			pl.metrics.failure(ep.id)
			pl.cm.fail(span)
			if ep.sess.torndown {
				ep.exit()
				return
			}
			ep.failStreak++
			if errors.Is(err, httpx.ErrRequestTimeout) {
				pl.metrics.timeout(ep.id)
			}
			if ep.hedging > 0 {
				pl.metrics.hedgeWasted(ep.id, ep.hedging)
				ep.hedging = 0
			}
			if ep.res != nil {
				if ep.res.observeFailure(ep.servers[ep.serverIdx], pl.clock.Now()) {
					pl.metrics.breakerOpen(ep.id)
				}
			}
			var se *httpx.StatusError
			if errors.As(err, &se) && (se.Code == http.StatusForbidden || se.Code == http.StatusUnauthorized) {
				// Token expired or rejected: refresh via the proxy.
				pl.metrics.rebootstrap(ep.id)
				ep.bootstrap(0, ep.resume)
			} else if ep.res != nil {
				ep.reselect(ep.failStreak, ep.resume)
			} else {
				ep.failover(ep.failStreak, ep.resume)
			}
			return
		}
		ep.failStreak = 0
		if ep.hedging > 0 {
			pl.metrics.hedgeWon(ep.id)
			ep.hedging = 0
		}
		elapsed := pl.clock.Now().Sub(start)
		if ep.res != nil {
			ep.res.observeSuccess(ep.servers[ep.serverIdx], elapsed, span.Size)
		}
		pl.cfg.Scheduler.Observe(ep.id, span.Size, elapsed)
		pl.metrics.chunk(ep.id, span.Size, pl.phase(), pl.clock.Now(), elapsed)
		pl.cm.completeViews(ep.id, span, views, release, span.Size)
		ep.fetchStep()
	})
}

// evGater is Player.gater as a timer machine: time-based ON flips run
// off a wake timer, delivery-driven periods park until a gate-off (or
// lifecycle) kick re-polls. A teardown while a wake is pending lets the
// timer fire and exit there without ticking, matching the blocking
// gater waking from SleepUntil into an ended session.
type evGater struct {
	sess     *evSession
	tm       *netem.Timer
	sleeping bool
	exited   bool
}

func (g *evGater) poll() {
	if g.exited || g.sleeping {
		return
	}
	p := g.sess.p
	if p.over() || p.clock.Stopped() {
		g.exit()
		return
	}
	p.mu.Lock()
	buf := p.buffer
	p.mu.Unlock()
	if buf == nil {
		return // parked until the first bootstrap kicks bufferReady
	}
	now := p.clock.Now()
	if buf.Finished(now) {
		p.finish()
		g.exit()
		return
	}
	if wake, ok := buf.NextWake(now); ok {
		g.sleeping = true
		g.tm.Schedule(wake)
		return
	}
	// Delivery-driven period: parked until a gate-off kick.
}

func (g *evGater) wake() {
	if g.exited {
		return
	}
	g.sleeping = false
	p := g.sess.p
	if p.over() || p.clock.Stopped() {
		// The session ended while this wake was pending: the books are
		// sealed, so a Tick now would record post-session buffer events.
		g.exit()
		return
	}
	p.mu.Lock()
	buf := p.buffer
	p.mu.Unlock()
	buf.Tick(p.clock.Now())
	if buf.Finished(p.clock.Now()) {
		p.finish()
		g.exit()
		return
	}
	g.poll()
}

func (g *evGater) exit() {
	if g.exited {
		return
	}
	g.exited = true
	g.tm.Stop()
	g.sess.machineDone()
}
