package core

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

func TestChunkManagerInOrderDelivery(t *testing.T) {
	var sink bytes.Buffer
	cm := newChunkManager(nil, 1, &sink)
	cm.setGate(true)
	cm.setTotal(100)

	s1, ok := cm.acquire(0, 40, nil)
	if !ok || s1.Off != 0 || s1.Size != 40 {
		t.Fatalf("span1 = %+v, %v", s1, ok)
	}
	s2, ok := cm.acquire(1, 40, nil)
	if !ok || s2.Off != 40 || s2.Size != 40 {
		t.Fatalf("span2 = %+v, %v", s2, ok)
	}
	// Last span clamps to total.
	s3, ok := cm.acquire(0, 40, nil)
	if !ok || s3.Off != 80 || s3.Size != 20 {
		t.Fatalf("span3 = %+v, %v", s3, ok)
	}

	// Complete out of order: 2nd chunk first.
	cm.complete(1, s2, bytes.Repeat([]byte{'b'}, 40))
	if cm.Frontier() != 0 {
		t.Fatalf("frontier moved on out-of-order chunk: %d", cm.Frontier())
	}
	if cm.outstanding() != 1 {
		t.Fatalf("outstanding = %d, want 1", cm.outstanding())
	}
	cm.complete(0, s1, bytes.Repeat([]byte{'a'}, 40))
	if cm.Frontier() != 80 {
		t.Fatalf("frontier = %d, want 80", cm.Frontier())
	}
	cm.complete(0, s3, bytes.Repeat([]byte{'c'}, 20))
	if !cm.Done() {
		t.Fatal("not done after all chunks")
	}
	want := append(bytes.Repeat([]byte{'a'}, 40), append(bytes.Repeat([]byte{'b'}, 40), bytes.Repeat([]byte{'c'}, 20)...)...)
	if !bytes.Equal(sink.Bytes(), want) {
		t.Fatalf("sink = %q", sink.Bytes())
	}

	// After completion, acquire reports done.
	if _, ok := cm.acquire(0, 10, nil); ok {
		t.Fatal("acquire succeeded after done")
	}
}

func TestChunkManagerOutOfOrderLimitBlocks(t *testing.T) {
	cm := newChunkManager(nil, 1, nil)
	cm.setGate(true)
	cm.setTotal(1000)

	a, _ := cm.acquire(0, 100, nil) // [0,100) path 0 (will be the gap)
	b, _ := cm.acquire(1, 100, nil) // [100,200) path 1
	cm.complete(1, b, make([]byte, 100))

	// Path 1 asking for fresh work must block: one OOO chunk stored.
	got := make(chan Span, 1)
	go func() {
		s, ok := cm.acquire(1, 100, nil)
		if ok {
			got <- s
		}
	}()
	select {
	case s := <-got:
		t.Fatalf("acquire returned %+v despite full OOO store", s)
	case <-time.After(30 * time.Millisecond): //detlint:allow wallclock -- short real wait proves no chunk is ready yet
	}
	// Gap fills: frontier advances, the blocked acquire proceeds.
	cm.complete(0, a, make([]byte, 100))
	select {
	case s := <-got:
		if s.Off != 200 {
			t.Fatalf("unblocked span = %+v, want off 200", s)
		}
	case <-time.After(2 * time.Second): //detlint:allow wallclock -- test watchdog against emulator deadlock runs on wall time
		t.Fatal("acquire still blocked after gap filled")
	}
}

func TestChunkManagerRetryPriority(t *testing.T) {
	cm := newChunkManager(nil, 1, nil)
	cm.setGate(true)
	cm.setTotal(1000)
	s, _ := cm.acquire(0, 100, nil)
	cm.fail(s)
	// The retried span is handed out before fresh work, to any path.
	r, ok := cm.acquire(1, 500, nil)
	if !ok || r != s {
		t.Fatalf("retry span = %+v, want %+v", r, s)
	}
}

func TestChunkManagerRetryBypassesGateAndLimit(t *testing.T) {
	cm := newChunkManager(nil, 1, nil)
	cm.setGate(true)
	cm.setTotal(300)
	a, _ := cm.acquire(0, 100, nil)
	b, _ := cm.acquire(1, 100, nil)
	cm.complete(1, b, make([]byte, 100)) // OOO store full
	cm.setGate(false)                    // and gate closed
	cm.fail(a)
	r, ok := cm.acquire(1, 100, nil)
	if !ok || r != a {
		t.Fatalf("retry under closed gate = %+v, %v, want %+v", r, ok, a)
	}
}

func TestChunkManagerGateBlocksFreshWork(t *testing.T) {
	cm := newChunkManager(nil, 1, nil)
	cm.setTotal(1000) // gate starts closed
	got := make(chan Span, 1)
	go func() {
		s, ok := cm.acquire(0, 100, nil)
		if ok {
			got <- s
		}
	}()
	select {
	case s := <-got:
		t.Fatalf("acquire returned %+v with closed gate", s)
	case <-time.After(30 * time.Millisecond): //detlint:allow wallclock -- short real wait proves no chunk is ready yet
	}
	cm.setGate(true)
	select {
	case <-got:
	case <-time.After(2 * time.Second): //detlint:allow wallclock -- test watchdog against emulator deadlock runs on wall time
		t.Fatal("acquire still blocked after gate opened")
	}
}

func TestChunkManagerStopUnblocks(t *testing.T) {
	cm := newChunkManager(nil, 1, nil)
	cm.setGate(true) // no total yet: acquire must wait
	done := make(chan bool, 1)
	go func() {
		_, ok := cm.acquire(0, 100, nil)
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond) //detlint:allow wallclock -- real sleep lets goroutines park before asserting waiter accounting
	cm.stop()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("acquire returned ok after stop")
		}
	case <-time.After(2 * time.Second): //detlint:allow wallclock -- test watchdog against emulator deadlock runs on wall time
		t.Fatal("acquire not released by stop")
	}
}

func TestChunkManagerOnDeliverFrontier(t *testing.T) {
	var mu sync.Mutex
	var frontiers []int64
	cm := newChunkManager(nil, 2, nil)
	cm.onDeliver = func(f int64) {
		mu.Lock()
		frontiers = append(frontiers, f)
		mu.Unlock()
	}
	cm.setGate(true)
	cm.setTotal(300)
	a, _ := cm.acquire(0, 100, nil)
	b, _ := cm.acquire(1, 100, nil)
	c, _ := cm.acquire(0, 100, nil)
	cm.complete(1, b, make([]byte, 100)) // stored, no callback
	cm.complete(0, c, make([]byte, 100)) // stored, no callback
	cm.complete(0, a, make([]byte, 100)) // releases everything
	mu.Lock()
	defer mu.Unlock()
	if len(frontiers) != 1 || frontiers[0] != 300 {
		t.Fatalf("frontiers = %v, want [300]", frontiers)
	}
}

func TestChunkManagerConcurrentPathsDeliverAllBytes(t *testing.T) {
	var sink bytes.Buffer
	cm := newChunkManager(nil, 1, &sink)
	cm.setGate(true)
	total := int64(1 << 20)
	cm.setTotal(total)
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for {
				s, ok := cm.acquire(p, 64<<10, nil)
				if !ok {
					return
				}
				data := make([]byte, s.Size)
				for i := range data {
					data[i] = byte((s.Off + int64(i)) % 251)
				}
				cm.complete(p, s, data)
			}
		}(p)
	}
	wg.Wait()
	if !cm.Done() {
		t.Fatal("not done")
	}
	got := sink.Bytes()
	if int64(len(got)) != total {
		t.Fatalf("sink length = %d, want %d", len(got), total)
	}
	for i, b := range got {
		if b != byte(i%251) {
			t.Fatalf("byte %d out of order", i)
		}
	}
}
