package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/netem"
	"repro/internal/origin"
)

// Config assembles an MSPlayer session.
type Config struct {
	// Clock drives all emulated timing.
	Clock *netem.Clock
	// VideoID selects the video (11-character YouTube-style ID).
	VideoID string
	// Itag selects the format (22 = MP4 720p, the paper's profile).
	Itag int
	// Scheduler decides per-path chunk sizes. Required.
	Scheduler Scheduler
	// Buffer sets the ON/OFF playout thresholds.
	Buffer BufferConfig
	// Paths lists one or two network paths. One path reproduces the
	// single-path baselines; two is MSPlayer proper.
	Paths []PathConfig
	// MaxOutOfOrder bounds stored out-of-order chunks (default 1, the
	// paper's memory-conscious design point).
	MaxOutOfOrder int
	// Sink receives the in-order video byte stream (nil to discard).
	Sink io.Writer
	// StopAfterPreBuffer ends the session when pre-buffering completes
	// (the Fig. 2-4 measurement mode).
	StopAfterPreBuffer bool
	// StopAfterRefills > 0 ends the session once that many re-buffering
	// cycles have been measured (the Fig. 5 mode).
	StopAfterRefills int
	// OnRun, if set, is called on the session goroutine right after it
	// is registered with the clock, before the session can park. The
	// testbed uses it to anchor pending fault injections: their sleeps
	// must not start running before the session participants exist.
	OnRun func()
}

func (c Config) validate() error {
	if c.Clock == nil {
		return errors.New("core: Config.Clock is required")
	}
	if c.VideoID == "" {
		return errors.New("core: Config.VideoID is required")
	}
	if c.Scheduler == nil {
		return errors.New("core: Config.Scheduler is required")
	}
	if len(c.Paths) < 1 || len(c.Paths) > 2 {
		return fmt.Errorf("core: %d paths configured; MSPlayer uses one or two", len(c.Paths))
	}
	for i, p := range c.Paths {
		if p.Iface == nil {
			return fmt.Errorf("core: path %d has no interface", i)
		}
		if p.ProxyAddr == "" {
			return fmt.Errorf("core: path %d has no proxy address", i)
		}
	}
	if c.Itag == 0 {
		return errors.New("core: Config.Itag is required")
	}
	return nil
}

// Player is one MSPlayer streaming session.
type Player struct {
	cfg     Config
	clock   *netem.Clock
	cm      *chunkManager
	metrics *metricsRecorder

	mu     sync.Mutex
	buffer *PlayoutBuffer
	start  time.Time

	// Session lifecycle state, guarded by smu and signalled through the
	// clock-aware scond so Run and the gater park clock-visibly.
	smu         sync.Mutex
	scond       *netem.Cond
	sessionDone bool // stop condition reached
	cancelled   bool // Run's context fired
	pathsExited bool // every path and the gater returned
	bufferReady bool // first bootstrap created the playout buffer
	kicked      bool // gate turned OFF since the gater last looked
	doneOnce    sync.Once

	// Byte accounting snapshotted at the stop-condition instant (see
	// finish): teardown after that instant races in-flight transfers
	// against connection aborts, so bytes counted after it would differ
	// run to run. The stop condition itself fires at a deterministic
	// virtual instant on a registered goroutine, making the snapshot —
	// and therefore Metrics — bit-identical per seed. Guarded by smu.
	finElapsed time.Duration
	finBytes   int64
	finPaths   []PathStats
}

// NewPlayer validates cfg and builds a session (not yet started).
func NewPlayer(cfg Config) (*Player, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.MaxOutOfOrder == 0 {
		cfg.MaxOutOfOrder = 1
	}
	p := &Player{
		cfg:   cfg,
		clock: cfg.Clock,
	}
	p.scond = netem.NewCond(cfg.Clock, &p.smu)
	p.cm = newChunkManager(cfg.Clock, cfg.MaxOutOfOrder, cfg.Sink)
	p.cm.setGate(true) // pre-buffering starts fetching immediately
	p.cm.onDeliver = p.onDeliver
	networks := make([]string, len(cfg.Paths))
	for i, pc := range cfg.Paths {
		n := pc.Network
		if n == "" {
			n = pc.Iface.Name()
		}
		networks[i] = n
	}
	p.metrics = newMetricsRecorder(networks, time.Time{})
	return p, nil
}

// onBootstrap is called by whichever path decodes its JSON first; it
// sizes the chunk manager and creates the playout buffer.
func (p *Player) onBootstrap(info *origin.VideoInfo, contentLength int64) {
	p.cm.setTotal(contentLength)
	p.mu.Lock()
	if p.buffer != nil {
		p.mu.Unlock()
		return
	}
	var bps float64
	for _, f := range info.Formats {
		if f.Itag == p.cfg.Itag {
			bps = float64(f.Bitrate) / 8
		}
	}
	videoLen := time.Duration(info.LengthSeconds) * time.Second
	p.buffer = NewPlayoutBuffer(p.cfg.Buffer, bps, videoLen, p.start, p.onGate)
	buf := p.buffer
	p.mu.Unlock()
	p.cm.setLimit(func() int64 { return buf.GoalOffset(p.clock.Now()) })
	if b, ok := p.cfg.Scheduler.(*BulkScheduler); ok {
		b.SetGoal(func() int64 { return buf.GoalBytes(p.clock.Now()) })
	}
	p.smu.Lock()
	p.bufferReady = true
	p.scond.Broadcast()
	p.smu.Unlock()
}

// onGate reacts to buffer gate flips: ON/OFF propagates to the chunk
// manager, and OFF transitions kick the gater so it can schedule the
// next LowWater crossing.
func (p *Player) onGate(on bool) {
	p.cm.setGate(on)
	if !on {
		p.smu.Lock()
		p.kicked = true
		p.scond.Broadcast()
		p.smu.Unlock()
	}
}

// onDeliver advances the playout buffer as the in-order frontier moves
// and evaluates stop conditions.
func (p *Player) onDeliver(frontier int64) {
	p.mu.Lock()
	buf := p.buffer
	p.mu.Unlock()
	if buf == nil {
		return
	}
	now := p.clock.Now()
	buf.Deliver(frontier, now)
	if p.cfg.StopAfterPreBuffer {
		if _, ok := buf.PreBufferTime(); ok {
			p.finish()
		}
	}
	if n := p.cfg.StopAfterRefills; n > 0 && len(buf.Refills()) >= n {
		p.finish()
	}
	if p.cm.Done() {
		p.finish()
	}
}

// phase returns the current buffering phase for byte accounting.
func (p *Player) phase() Phase {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.buffer == nil || !p.buffer.Started() {
		return PhasePreBuffer
	}
	return PhaseReBuffer
}

func (p *Player) finish() {
	p.doneOnce.Do(func() {
		p.mu.Lock()
		start := p.start
		p.mu.Unlock()
		elapsed := p.clock.Now().Sub(start)
		bytes := p.cm.Frontier()
		paths := p.metrics.snapshot()
		p.smu.Lock()
		p.finElapsed = elapsed
		p.finBytes = bytes
		p.finPaths = paths
		p.sessionDone = true
		p.scond.Broadcast()
		p.smu.Unlock()
	})
}

// over reports whether the session should stop driving new work.
func (p *Player) over() bool {
	p.smu.Lock()
	defer p.smu.Unlock()
	return p.sessionDone || p.cancelled
}

// gater drives the time-based ON transitions: it sleeps until the
// buffer drains to LowWater and flips fetching back on. part is the
// gater goroutine's clock handle.
func (p *Player) gater(part *netem.Participant) {
	for {
		if p.over() || p.clock.Stopped() {
			return
		}
		p.mu.Lock()
		buf := p.buffer
		p.mu.Unlock()
		if buf == nil {
			// Wait for the first bootstrap. A false Wait means the clock
			// stopped; the loop's top re-check exits then.
			p.smu.Lock()
			if !p.bufferReady && !p.sessionDone && !p.cancelled {
				_ = p.scond.Wait(part)
			}
			p.smu.Unlock()
			continue
		}
		now := p.clock.Now()
		if buf.Finished(now) {
			p.finish()
			return
		}
		if wake, ok := buf.NextWake(now); ok {
			part.SleepUntil(wake)
			buf.Tick(p.clock.Now())
			if buf.Finished(p.clock.Now()) {
				p.finish()
				return
			}
			continue
		}
		// Delivery-driven period: wait for a gate-off kick.
		p.smu.Lock()
		if !p.kicked && !p.sessionDone && !p.cancelled {
			_ = p.scond.Wait(part)
		}
		p.kicked = false
		p.smu.Unlock()
	}
}

// Run executes the session until its stop condition (or ctx
// cancellation) and returns the collected metrics.
//
// The calling goroutine registers with the emulation clock for the
// duration of the session, and every goroutine Run spawns is registered
// too, so in virtual mode the whole session advances deterministically.
// A goroutine that already holds a clock Participant (a fleet session
// spawned with Clock.Go, a test registered around fault injection)
// must use RunAs with that handle instead — registering twice would
// wedge the clock.
func (p *Player) Run(ctx context.Context) (*Metrics, error) {
	part := p.clock.Register()
	defer part.Unregister()
	return p.RunAs(ctx, part)
}

// RunAs is Run on behalf of an already-registered participant: the
// session's clock-visible waits go through part, whose registration the
// caller continues to own.
func (p *Player) RunAs(ctx context.Context, part *netem.Participant) (*Metrics, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	clock := p.clock
	if p.cfg.OnRun != nil {
		p.cfg.OnRun()
	}

	p.mu.Lock()
	p.start = clock.Now()
	p.mu.Unlock()
	p.metrics.start = p.start

	paths := make([]*path, len(p.cfg.Paths))
	// The last fetch loop to exit raises pathsExited itself, on its own
	// still-registered goroutine: paths exiting is an emulated-time
	// event, and relaying it through an unregistered watcher would open
	// a window for nondeterministic clock jumps before Run observes it.
	// The gater is excluded from the count — it legitimately outlives
	// paths that fail before the first bootstrap.
	livePaths := len(p.cfg.Paths)
	var allWg sync.WaitGroup
	for i, pc := range p.cfg.Paths {
		paths[i] = newPath(i, pc, p)
		pt := paths[i]
		allWg.Add(1)
		clock.Go(func(pp *netem.Participant) {
			defer allWg.Done()
			pt.run(ctx, pp)
			p.smu.Lock()
			livePaths--
			if livePaths == 0 {
				p.pathsExited = true
				p.scond.Broadcast()
			}
			p.smu.Unlock()
		})
	}
	allWg.Add(1)
	clock.Go(func(gp *netem.Participant) {
		defer allWg.Done()
		p.gater(gp)
	})

	// Relay external cancellation into the session's clock-visible
	// state. The watcher is intentionally unregistered: it only runs on
	// an event originating outside emulated time.
	go func() {
		<-ctx.Done()
		p.smu.Lock()
		p.cancelled = true
		p.scond.Broadcast()
		p.smu.Unlock()
	}()

	stopped := false
	p.smu.Lock()
	for !p.sessionDone && !p.cancelled && !p.pathsExited {
		if !p.scond.Wait(part) {
			stopped = true // clock stopped mid-session (testbed closed)
			break
		}
	}
	sessionDone, pathsExited := p.sessionDone, p.pathsExited
	p.smu.Unlock()

	var runErr error
	switch {
	case sessionDone:
	case stopped:
		runErr = errClockStopped
	case pathsExited:
		if !p.cm.Done() {
			runErr = errors.New("core: all paths exited before the session completed")
		}
	default:
		runErr = ctx.Err()
	}
	p.cm.stop()
	cancel()
	// Suspend the session participant while joining the workers: they
	// must be able to advance virtual time (e.g. out of backoff sleeps)
	// while this goroutine is parked in a wait the clock cannot see.
	part.Suspend()
	allWg.Wait()
	part.Resume()
	for _, pt := range paths {
		pt.client.CloseIdleConnections()
	}
	return p.collect(), runErr
}

func (p *Player) collect() *Metrics {
	m := &Metrics{Scheduler: p.cfg.Scheduler.Name()}
	p.smu.Lock()
	done := p.sessionDone
	if done {
		m.Paths = p.finPaths
		m.Elapsed = p.finElapsed
		m.TotalBytes = p.finBytes
	}
	p.smu.Unlock()
	p.mu.Lock()
	buf := p.buffer
	start := p.start
	p.mu.Unlock()
	if !done {
		// Aborted teardown (cancel, clock stop, paths lost): report the
		// live state; such sessions carry an error anyway.
		m.Paths = p.metrics.snapshot()
		m.Elapsed = p.clock.Now().Sub(start)
		m.TotalBytes = p.cm.Frontier()
	}
	if buf != nil {
		if d, ok := buf.PreBufferTime(); ok {
			m.PreBufferTime = d
			m.PreBufferDone = true
		}
		m.Refills = buf.Refills()
		m.Stalls = buf.Stalls()
	}
	return m
}

// Buffered exposes the current buffered playback time (0 before the
// first bootstrap); used by examples for progress display.
func (p *Player) Buffered() time.Duration {
	p.mu.Lock()
	buf := p.buffer
	p.mu.Unlock()
	if buf == nil {
		return 0
	}
	return buf.Buffered(p.clock.Now())
}
