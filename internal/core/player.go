package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/netem"
	"repro/internal/origin"
)

// Config assembles an MSPlayer session.
type Config struct {
	// Clock drives all emulated timing.
	Clock *netem.Clock
	// VideoID selects the video (11-character YouTube-style ID).
	VideoID string
	// Itag selects the format (22 = MP4 720p, the paper's profile).
	Itag int
	// Scheduler decides per-path chunk sizes. Required.
	Scheduler Scheduler
	// Buffer sets the ON/OFF playout thresholds.
	Buffer BufferConfig
	// Paths lists one or two network paths. One path reproduces the
	// single-path baselines; two is MSPlayer proper.
	Paths []PathConfig
	// MaxOutOfOrder bounds stored out-of-order chunks (default 1, the
	// paper's memory-conscious design point).
	MaxOutOfOrder int
	// Sink receives the in-order video byte stream (nil to discard).
	Sink io.Writer
	// StopAfterPreBuffer ends the session when pre-buffering completes
	// (the Fig. 2-4 measurement mode).
	StopAfterPreBuffer bool
	// StopAfterRefills > 0 ends the session once that many re-buffering
	// cycles have been measured (the Fig. 5 mode).
	StopAfterRefills int
	// OnRun, if set, is called on the session goroutine right after it
	// is registered with the clock, before the session can park. The
	// testbed uses it to anchor pending fault injections: their sleeps
	// must not start running before the session participants exist.
	OnRun func()
	// Seed decorrelates the per-path backoff jitter streams across
	// sessions. Zero is a valid seed; sessions sharing a seed draw
	// identical jitter sequences.
	Seed int64
}

func (c Config) validate() error {
	if c.Clock == nil {
		return errors.New("core: Config.Clock is required")
	}
	if c.VideoID == "" {
		return errors.New("core: Config.VideoID is required")
	}
	if c.Scheduler == nil {
		return errors.New("core: Config.Scheduler is required")
	}
	if len(c.Paths) < 1 || len(c.Paths) > 2 {
		return fmt.Errorf("core: %d paths configured; MSPlayer uses one or two", len(c.Paths))
	}
	for i, p := range c.Paths {
		if p.Iface == nil {
			return fmt.Errorf("core: path %d has no interface", i)
		}
		if p.ProxyAddr == "" {
			return fmt.Errorf("core: path %d has no proxy address", i)
		}
	}
	if c.Itag == 0 {
		return errors.New("core: Config.Itag is required")
	}
	return nil
}

// Player is one MSPlayer streaming session.
type Player struct {
	cfg     Config
	clock   *netem.Clock
	cm      *chunkManager
	metrics *metricsRecorder

	mu     sync.Mutex
	buffer *PlayoutBuffer
	start  time.Time

	// Session lifecycle state, guarded by smu and signalled through the
	// clock-aware scond so Run, the paths and the gater park
	// clock-visibly. Teardown is a three-stage state machine driven by
	// RunAs: stopping (the books are sealed and every in-flight transfer
	// is aborted at one pinned virtual instant), draining (the worker
	// goroutines unwind on the clock, parked via scond), closed (the
	// sealed metrics are collected).
	smu         sync.Mutex
	scond       *netem.Cond
	sessionDone bool // stop condition reached
	cancelled   bool // Run's context fired or teardown began
	pathsExited bool // every path returned
	liveWorkers int  // running path + gater goroutines (the drain barrier)
	bufferReady bool // first bootstrap created the playout buffer
	kicked      bool // gate turned OFF since the gater last looked
	sealOnce    sync.Once

	// evKick, when set, is invoked after every lifecycle state change
	// that Broadcasts scond (bufferReady, gate-off kicks, seal). The
	// evented engine points it at the session loop so its machines
	// re-poll at exactly the instants the blocking goroutines would have
	// woken. Installed before the machines start, never changed.
	evKick func()

	// Byte accounting sealed at the session-end instant (see seal):
	// Elapsed/TotalBytes/Paths define the session's result at the moment
	// its outcome was decided — the stop condition for clean sessions, or
	// teardown entry for cancelled/aborted ones — deliberately excluding
	// the teardown's own artifacts (abort-induced request failures) from
	// QoE. Both instants are deterministic virtual instants for clean
	// sessions, so Metrics is bit-identical per seed. Guarded by smu.
	finElapsed time.Duration
	finBytes   int64
	finPaths   []PathStats
}

// NewPlayer validates cfg and builds a session (not yet started).
func NewPlayer(cfg Config) (*Player, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.MaxOutOfOrder == 0 {
		cfg.MaxOutOfOrder = 1
	}
	p := &Player{
		cfg:   cfg,
		clock: cfg.Clock,
	}
	p.scond = netem.NewCond(cfg.Clock, &p.smu)
	p.cm = newChunkManager(cfg.Clock, cfg.MaxOutOfOrder, cfg.Sink)
	p.cm.setGate(true) // pre-buffering starts fetching immediately
	p.cm.onDeliver = p.onDeliver
	networks := make([]string, len(cfg.Paths))
	for i, pc := range cfg.Paths {
		n := pc.Network
		if n == "" {
			n = pc.Iface.Name()
		}
		networks[i] = n
	}
	p.metrics = newMetricsRecorder(networks, time.Time{})
	return p, nil
}

// onBootstrap is called by whichever path decodes its JSON first; it
// sizes the chunk manager and creates the playout buffer.
func (p *Player) onBootstrap(info *origin.VideoInfo, contentLength int64) {
	p.cm.setTotal(contentLength)
	p.mu.Lock()
	if p.buffer != nil {
		p.mu.Unlock()
		return
	}
	var bps float64
	for _, f := range info.Formats {
		if f.Itag == p.cfg.Itag {
			bps = float64(f.Bitrate) / 8
		}
	}
	videoLen := time.Duration(info.LengthSeconds) * time.Second
	p.buffer = NewPlayoutBuffer(p.cfg.Buffer, bps, videoLen, p.start, p.onGate)
	buf := p.buffer
	p.mu.Unlock()
	p.cm.setLimit(func() int64 { return buf.GoalOffset(p.clock.Now()) })
	if b, ok := p.cfg.Scheduler.(*BulkScheduler); ok {
		b.SetGoal(func() int64 { return buf.GoalBytes(p.clock.Now()) })
	}
	p.smu.Lock()
	p.bufferReady = true
	p.scond.Broadcast()
	p.smu.Unlock()
	if p.evKick != nil {
		p.evKick()
	}
}

// onGate reacts to buffer gate flips: ON/OFF propagates to the chunk
// manager, and OFF transitions kick the gater so it can schedule the
// next LowWater crossing.
func (p *Player) onGate(on bool) {
	p.cm.setGate(on)
	if !on {
		p.smu.Lock()
		p.kicked = true
		p.scond.Broadcast()
		p.smu.Unlock()
		if p.evKick != nil {
			p.evKick()
		}
	}
}

// onDeliver advances the playout buffer as the in-order frontier moves
// and evaluates stop conditions.
func (p *Player) onDeliver(frontier int64) {
	p.mu.Lock()
	buf := p.buffer
	p.mu.Unlock()
	if buf == nil {
		return
	}
	now := p.clock.Now()
	buf.Deliver(frontier, now)
	if p.cfg.StopAfterPreBuffer {
		if _, ok := buf.PreBufferTime(); ok {
			p.finish()
		}
	}
	if n := p.cfg.StopAfterRefills; n > 0 && len(buf.Refills()) >= n {
		p.finish()
	}
	if p.cm.Done() {
		p.finish()
	}
}

// phase returns the current buffering phase for byte accounting.
func (p *Player) phase() Phase {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.buffer == nil || !p.buffer.Started() {
		return PhasePreBuffer
	}
	return PhaseReBuffer
}

// finish marks the stop condition reached, sealing the session's books
// at the current instant. It runs on a registered goroutine (a path's
// delivery callback or the gater) at a deterministic virtual instant.
func (p *Player) finish() { p.seal(true) }

// seal freezes the session's byte accounting at the caller's current
// instant, exactly once. markDone additionally records that the stop
// condition was reached (as opposed to an external cancellation or a
// stopped clock, where RunAs seals at teardown entry instead).
func (p *Player) seal(markDone bool) {
	p.sealOnce.Do(func() {
		p.mu.Lock()
		start := p.start
		p.mu.Unlock()
		elapsed := p.clock.Now().Sub(start)
		bytes := p.cm.Frontier()
		paths := p.metrics.snapshot()
		p.smu.Lock()
		p.finElapsed = elapsed
		p.finBytes = bytes
		p.finPaths = paths
		if markDone {
			p.sessionDone = true
		}
		p.scond.Broadcast()
		p.smu.Unlock()
		if p.evKick != nil {
			p.evKick()
		}
	})
}

// over reports whether the session should stop driving new work.
func (p *Player) over() bool {
	p.smu.Lock()
	defer p.smu.Unlock()
	return p.sessionDone || p.cancelled
}

// gater drives the time-based ON transitions: it sleeps until the
// buffer drains to LowWater and flips fetching back on. part is the
// gater goroutine's clock handle.
func (p *Player) gater(part *netem.Participant) {
	for {
		if p.over() || p.clock.Stopped() {
			return
		}
		p.mu.Lock()
		buf := p.buffer
		p.mu.Unlock()
		if buf == nil {
			// Wait for the first bootstrap. A false Wait means the clock
			// stopped; the loop's top re-check exits then.
			p.smu.Lock()
			if !p.bufferReady && !p.sessionDone && !p.cancelled {
				_ = p.scond.Wait(part)
			}
			p.smu.Unlock()
			continue
		}
		now := p.clock.Now()
		if buf.Finished(now) {
			p.finish()
			return
		}
		if wake, ok := buf.NextWake(now); ok {
			part.SleepUntil(wake)
			if p.over() || p.clock.Stopped() {
				// The session ended (or the emulation stopped) while this
				// sleep was pending: the books are sealed, so a Tick now
				// would record post-session buffer events.
				return
			}
			buf.Tick(p.clock.Now())
			if buf.Finished(p.clock.Now()) {
				p.finish()
				return
			}
			continue
		}
		// Delivery-driven period: wait for a gate-off kick.
		p.smu.Lock()
		if !p.kicked && !p.sessionDone && !p.cancelled {
			_ = p.scond.Wait(part)
		}
		p.kicked = false
		p.smu.Unlock()
	}
}

// Run executes the session until its stop condition (or ctx
// cancellation) and returns the collected metrics.
//
// The calling goroutine registers with the emulation clock for the
// duration of the session, and every goroutine Run spawns is registered
// too, so in virtual mode the whole session advances deterministically.
// A goroutine that already holds a clock Participant (a fleet session
// spawned with Clock.Go, a test registered around fault injection)
// must use RunAs with that handle instead — registering twice would
// wedge the clock.
func (p *Player) Run(ctx context.Context) (*Metrics, error) {
	part := p.clock.Register()
	defer part.Unregister()
	return p.RunAs(ctx, part)
}

// RunAs is Run on behalf of an already-registered participant: the
// session's clock-visible waits go through part, whose registration the
// caller continues to own.
func (p *Player) RunAs(ctx context.Context, part *netem.Participant) (*Metrics, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	clock := p.clock
	if p.cfg.OnRun != nil {
		p.cfg.OnRun()
	}

	p.mu.Lock()
	p.start = clock.Now()
	p.mu.Unlock()
	p.metrics.start = p.start

	paths := make([]*path, len(p.cfg.Paths))
	// The last fetch loop to exit raises pathsExited itself, on its own
	// still-registered goroutine: paths exiting is an emulated-time
	// event, and relaying it through an unregistered watcher would open
	// a window for nondeterministic clock jumps before Run observes it.
	// The gater is excluded from that count — it legitimately outlives
	// paths that fail before the first bootstrap — but both feed
	// liveWorkers, the drain barrier RunAs parks on during teardown.
	livePaths := len(p.cfg.Paths)
	p.smu.Lock()
	p.liveWorkers = len(p.cfg.Paths) + 1 // paths + gater
	p.smu.Unlock()
	workerDone := func() {
		p.smu.Lock()
		p.liveWorkers--
		p.scond.Broadcast()
		p.smu.Unlock()
	}
	var allWg sync.WaitGroup
	for i, pc := range p.cfg.Paths {
		paths[i] = newPath(i, pc, p)
		pt := paths[i]
		allWg.Add(1)
		clock.Go(func(pp *netem.Participant) {
			defer allWg.Done()
			defer workerDone()
			pt.run(ctx, pp)
			p.smu.Lock()
			livePaths--
			if livePaths == 0 {
				p.pathsExited = true
				p.scond.Broadcast()
			}
			p.smu.Unlock()
		})
	}
	allWg.Add(1)
	clock.Go(func(gp *netem.Participant) {
		defer allWg.Done()
		defer workerDone()
		p.gater(gp)
	})

	// Relay external cancellation into the session's clock-visible
	// state. The watcher is intentionally unregistered: it only runs on
	// an event originating outside emulated time.
	go func() { //detlint:allow baredgo -- context-cancel relay is intentionally clock-invisible; it only forwards the abort
		<-ctx.Done()
		p.smu.Lock()
		p.cancelled = true
		p.scond.Broadcast()
		p.smu.Unlock()
	}()

	stopped := false
	p.smu.Lock()
	for !p.sessionDone && !p.cancelled && !p.pathsExited {
		if !p.scond.Wait(part) {
			stopped = true // clock stopped mid-session (testbed closed)
			break
		}
	}
	sessionDone, pathsExited := p.sessionDone, p.pathsExited
	p.smu.Unlock()

	var runErr error
	switch {
	case sessionDone:
	case stopped:
		runErr = errClockStopped
	case pathsExited:
		if !p.cm.Done() {
			runErr = errors.New("core: all paths exited before the session completed")
		}
	default:
		runErr = ctx.Err()
	}

	// Stopping: this goroutine is runnable, so virtual time is pinned at
	// the teardown instant until it parks again — for a clean session
	// that is exactly the stop-condition instant. Everything here lands
	// at that one instant: the books are sealed (a no-op when finish
	// already sealed them), new chunk assignment stops, cancellation
	// becomes visible to the workers, and every in-flight transfer is
	// aborted through the clock-visible conn abort protocol. Per-request
	// context watchers that fire later are no-ops (earliest abort wins),
	// so teardown outcomes — including the origin's per-server request,
	// byte and abort accounting — are functions of virtual time alone.
	p.seal(false)
	p.cm.stop()
	p.smu.Lock()
	p.cancelled = true
	p.scond.Broadcast()
	p.smu.Unlock()
	cancel()
	for _, pt := range paths {
		pt.tr.Shutdown(errSessionStopped)
	}

	// Draining: the workers unwind at deterministic virtual instants
	// (aborted fetches observe their conn errors, the gater wakes from
	// its pending sleep); RunAs joins them parked on the clock.
	p.smu.Lock()
	for p.liveWorkers > 0 {
		if !p.scond.Wait(part) {
			break // clock stopped: workers exit promptly off-clock
		}
	}
	p.smu.Unlock()
	// Memory barrier (and stopped-clock fallback): the workers' final
	// writes happen-before collect reads them. Suspend the session
	// participant for the wait the clock cannot see.
	part.Suspend()
	allWg.Wait()
	part.Resume()

	// Closed: collect the sealed result.
	return p.collect(), runErr
}

// collect assembles the session Metrics from the sealed books. It runs
// after the drain barrier, so every contributing write has completed;
// the values themselves were sealed at the session-end instant (clean
// stop or teardown entry), so the teardown's own artifacts never leak
// into the result.
func (p *Player) collect() *Metrics {
	m := &Metrics{Scheduler: p.cfg.Scheduler.Name()}
	p.smu.Lock()
	m.Paths = p.finPaths
	m.Elapsed = p.finElapsed
	m.TotalBytes = p.finBytes
	p.smu.Unlock()
	p.mu.Lock()
	buf := p.buffer
	p.mu.Unlock()
	if buf != nil {
		if d, ok := buf.PreBufferTime(); ok {
			m.PreBufferTime = d
			m.PreBufferDone = true
		}
		m.Refills = buf.Refills()
		m.Stalls = buf.Stalls()
	}
	return m
}

// Buffered exposes the current buffered playback time (0 before the
// first bootstrap); used by examples for progress display.
func (p *Player) Buffered() time.Duration {
	p.mu.Lock()
	buf := p.buffer
	p.mu.Unlock()
	if buf == nil {
		return 0
	}
	return buf.Buffered(p.clock.Now())
}
