package core

import "time"

// EnergyModel estimates the radio energy cost of a streaming session —
// the energy-awareness the paper lists as future work ("our scheduler
// currently does not take into account energy constraints when
// leveraging multiple interfaces", §7, citing Huang et al., SIGCOMM'13).
//
// The model is the standard two-component radio abstraction: an active
// transfer power drawn while a range request is in flight, plus a tail
// energy charged per transfer burst (the radio lingers in a
// high-power state after activity ends; LTE tails dominate its budget).
type EnergyModel struct {
	// ActivePower is the radio power while transferring, in watts.
	ActivePower float64
	// TailEnergy is charged once per chunk transfer, in joules,
	// approximating the post-transfer high-power tail.
	TailEnergy float64
}

// Radio models drawn from the LTE measurement literature (Huang et al.):
// LTE draws roughly 1.2–2.5 W active with ~1–2 J tails; WiFi is far
// cheaper per second and has negligible tails.
var (
	// WiFiRadio is the default WiFi energy model.
	WiFiRadio = EnergyModel{ActivePower: 0.7, TailEnergy: 0.1}
	// LTERadio is the default LTE energy model.
	LTERadio = EnergyModel{ActivePower: 1.8, TailEnergy: 1.2}
)

// Energy returns the modelled energy in joules for a path's activity.
func (e EnergyModel) Energy(active time.Duration, chunks int) float64 {
	return e.ActivePower*active.Seconds() + e.TailEnergy*float64(chunks)
}

// SessionEnergy estimates the total radio energy of a session in joules
// using per-network models (falling back to WiFiRadio for unknown
// networks), plus the per-path split.
func SessionEnergy(m *Metrics, models map[string]EnergyModel) (total float64, perPath []float64) {
	perPath = make([]float64, len(m.Paths))
	for i, p := range m.Paths {
		model, ok := models[p.Network]
		if !ok {
			model = WiFiRadio
		}
		perPath[i] = model.Energy(p.ActiveTime, p.Chunks)
		total += perPath[i]
	}
	return total, perPath
}

// DefaultRadios maps the testbed's network names to their models.
func DefaultRadios() map[string]EnergyModel {
	return map[string]EnergyModel{"wifi": WiFiRadio, "lte": LTERadio}
}
