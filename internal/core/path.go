package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/httpx"
	"repro/internal/netem"
	"repro/internal/origin"
)

// PathConfig wires one MSPlayer path: an emulated interface plus the
// address of the web proxy reachable through that interface's network.
type PathConfig struct {
	// Iface is the network attachment (WiFi or LTE).
	Iface *netem.Interface
	// Network is the access network name; defaults to Iface.Name().
	Network string
	// ProxyAddr is the web proxy to bootstrap from.
	ProxyAddr string
	// VideoServers, when non-empty, overrides the video-server list the
	// proxy returns at bootstrap. Deployments with an edge-cache tier
	// use it to steer the path at its network's edge instead of the
	// origin replicas; failover still walks the list in order.
	VideoServers []string
	// RequestTimeout bounds every request the path issues (watch and
	// range alike) with a virtual-time deadline: a server that accepts
	// a connection and then never responds — a blackhole fault — turns
	// into a retryable httpx.ErrRequestTimeout at exactly the deadline
	// instant instead of parking the path forever. Zero disables it.
	RequestTimeout time.Duration
}

// path runs the fetch loop of one MSPlayer path: bootstrap against the
// network's web proxy, then repeatedly acquire a span from the chunk
// manager, fetch it with an HTTP range request, and report the measured
// throughput to the scheduler. Failures trigger same-network replica
// failover, token refresh, or backoff-and-retry on interface loss.
type path struct {
	id     int
	cfg    PathConfig
	player *Player
	client *http.Client
	tr     *httpx.Transport
	part   *netem.Participant // the fetch-loop goroutine's clock handle

	info      *origin.VideoInfo
	servers   []string
	serverIdx int
	url       string

	// rng is the path's private splitmix64 state for backoff jitter,
	// derived from the session seed and path id. Only the fetch-loop
	// goroutine draws from it, so the draw order — and therefore every
	// jittered backoff instant — is deterministic per seed.
	rng uint64
}

func newPath(id int, cfg PathConfig, pl *Player) *path {
	if cfg.Network == "" {
		cfg.Network = cfg.Iface.Name()
	}
	tr := httpx.NewTransport(cfg.Iface)
	tr.SetRequestTimeout(cfg.RequestTimeout)
	return &path{id: id, cfg: cfg, player: pl, tr: tr, client: &http.Client{Transport: tr},
		rng: uint64(pl.cfg.Seed)*0x9E3779B97F4A7C15 + uint64(id)*0xBF58476D1CE4E5B9}
}

// errClockStopped ends retry loops when the emulation is torn down
// mid-session: sleeps on a stopped clock return immediately, so
// retrying without this sentinel would hot-loop.
var errClockStopped = errors.New("core: emulation clock stopped")

// errSessionStopped is the abort error the player's teardown pipeline
// schedules on in-flight connections: it surfaces in both endpoints'
// reads and writes from the teardown instant on.
var errSessionStopped = errors.New("core: session stopped")

// backoff sleeps an exponentially growing emulated delay — 250 ms
// doubling to a 2 s cap, plus deterministic per-path jitter of up to
// half the base — returning a non-nil error if the context was
// cancelled or the clock stopped. The jitter matters under correlated
// faults: when a server kill fails hundreds of sessions at one virtual
// instant, un-jittered exponential backoff would march them all back
// in lockstep, re-creating the stampede on every retry.
func (p *path) backoff(ctx context.Context, attempt int) error {
	d := 250 * time.Millisecond << uint(min(attempt, 3))
	d += time.Duration(p.jitter(int64(d) / 2))
	p.part.Sleep(d)
	if err := ctx.Err(); err != nil {
		return err
	}
	if p.player.clock.Stopped() {
		return errClockStopped
	}
	return nil
}

// jitter returns the next draw in [0, n) from the path's splitmix64
// stream (0 when n <= 0).
func (p *path) jitter(n int64) int64 {
	return splitmixDraw(&p.rng, n)
}

// splitmixDraw advances the splitmix64 state rng and returns a draw in
// [0, n) (0 when n <= 0). Both engines' paths draw through this one
// function, so a given seed yields one jitter sequence regardless of
// which engine runs the session.
func splitmixDraw(rng *uint64, n int64) int64 {
	if n <= 0 {
		return 0
	}
	*rng += 0x9E3779B97F4A7C15
	z := *rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z % uint64(n))
}

// bootstrap fetches video metadata from the network's web proxy,
// retrying with backoff until it succeeds or ctx is cancelled.
func (p *path) bootstrap(ctx context.Context) error {
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		info, err := p.fetchInfo(ctx)
		if err == nil {
			if len(info.VideoServers) == 0 && len(p.cfg.VideoServers) == 0 {
				err = fmt.Errorf("core: no video servers in network %s", p.cfg.Network)
			} else if _, e := info.ContentLengthFor(p.player.cfg.Itag); e != nil {
				err = e
			}
		}
		if err != nil {
			if berr := p.backoff(ctx, attempt); berr != nil {
				return berr
			}
			continue
		}
		p.info = info
		p.servers = info.VideoServers
		if len(p.cfg.VideoServers) > 0 {
			p.servers = p.cfg.VideoServers
		}
		p.serverIdx = 0
		p.url = info.PlaybackURL(p.servers[0], p.player.cfg.Itag)
		n, _ := info.ContentLengthFor(p.player.cfg.Itag)
		p.player.onBootstrap(info, n)
		return nil
	}
}

func (p *path) fetchInfo(ctx context.Context) (*origin.VideoInfo, error) {
	url := fmt.Sprintf("http://%s/watch?v=%s", p.cfg.ProxyAddr, p.player.cfg.VideoID)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("core: watch request: status %d", resp.StatusCode)
	}
	var info origin.VideoInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, fmt.Errorf("core: decoding video info: %w", err)
	}
	return &info, nil
}

// failover rotates to the next replica in the network, wrapping past
// the end of the list so replicas that failed earlier — and may have
// recovered since — are re-probed instead of written off. Once a
// failure streak has walked the whole list (attempt is the streak
// count), it backs off and re-bootstraps to refresh the server list,
// picking up restarted replicas and dropping killed ones.
func (p *path) failover(ctx context.Context, attempt int) error {
	if len(p.servers) > 1 && attempt%len(p.servers) != 0 {
		p.serverIdx = (p.serverIdx + 1) % len(p.servers)
		p.player.metrics.failover(p.id)
		p.url = p.info.PlaybackURL(p.servers[p.serverIdx], p.player.cfg.Itag)
		return nil
	}
	if err := p.backoff(ctx, attempt); err != nil {
		return err
	}
	p.player.metrics.rebootstrap(p.id)
	return p.bootstrap(ctx)
}

// run is the path's main loop; it returns when the stream is complete,
// the player stops, or ctx is cancelled. part is the loop goroutine's
// clock handle: every park the path performs — backoffs, chunk-manager
// waits, dials and in-request reads — goes through it.
func (p *path) run(ctx context.Context, part *netem.Participant) {
	p.part = part
	p.tr.Bind(part)
	if err := p.bootstrap(ctx); err != nil {
		return
	}
	clock := p.player.clock
	failStreak := 0
	for {
		if ctx.Err() != nil {
			return
		}
		want := p.player.cfg.Scheduler.Size(p.id)
		span, ok := p.player.cm.acquire(p.id, want, part)
		if !ok {
			return
		}
		p.player.metrics.request(p.id)
		start := clock.Now()
		buf := getChunkBuf(span.Size)
		data, err := httpx.GetRangeBuf(ctx, p.client, p.url, span.Off, span.End()-1, buf)
		if err != nil {
			putChunkBuf(buf)
			p.player.metrics.failure(p.id)
			p.player.cm.fail(span)
			if ctx.Err() != nil {
				return
			}
			failStreak++
			if errors.Is(err, httpx.ErrRequestTimeout) {
				p.player.metrics.timeout(p.id)
			}
			var se *httpx.StatusError
			if errors.As(err, &se) && (se.Code == http.StatusForbidden || se.Code == http.StatusUnauthorized) {
				// Token expired or rejected: refresh via the proxy.
				p.player.metrics.rebootstrap(p.id)
				if err := p.bootstrap(ctx); err != nil {
					return
				}
			} else if err := p.failover(ctx, failStreak); err != nil {
				return
			}
			continue
		}
		failStreak = 0
		if len(data) == 0 || len(buf) == 0 || &data[0] != &buf[0] {
			// The response took the allocating fallback; recycle ours.
			putChunkBuf(buf)
		}
		elapsed := clock.Now().Sub(start)
		p.player.cfg.Scheduler.Observe(p.id, span.Size, elapsed)
		p.player.metrics.chunk(p.id, span.Size, p.player.phase(), clock.Now(), elapsed)
		p.player.cm.complete(p.id, span, data)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
