package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/httpx"
	"repro/internal/netem"
	"repro/internal/origin"
)

// PathConfig wires one MSPlayer path: an emulated interface plus the
// address of the web proxy reachable through that interface's network.
type PathConfig struct {
	// Iface is the network attachment (WiFi or LTE).
	Iface *netem.Interface
	// Network is the access network name; defaults to Iface.Name().
	Network string
	// ProxyAddr is the web proxy to bootstrap from.
	ProxyAddr string
	// VideoServers, when non-empty, overrides the video-server list the
	// proxy returns at bootstrap. Deployments with an edge-cache tier
	// use it to steer the path at its network's edge instead of the
	// origin replicas; failover still walks the list in order.
	VideoServers []string
	// RequestTimeout bounds every request the path issues (watch and
	// range alike) with a virtual-time deadline: a server that accepts
	// a connection and then never responds — a blackhole fault — turns
	// into a retryable httpx.ErrRequestTimeout at exactly the deadline
	// instant instead of parking the path forever. Zero disables it.
	RequestTimeout time.Duration
	// Resilience configures circuit breakers, health-scored source
	// selection and hedged range requests. The zero value disables the
	// layer and preserves the fixed-rotation failover behavior.
	Resilience Resilience
}

// path runs the fetch loop of one MSPlayer path: bootstrap against the
// network's web proxy, then repeatedly acquire a span from the chunk
// manager, fetch it with an HTTP range request, and report the measured
// throughput to the scheduler. Failures trigger same-network replica
// failover, token refresh, or backoff-and-retry on interface loss.
type path struct {
	id     int
	cfg    PathConfig
	player *Player
	client *http.Client
	tr     *httpx.Transport
	part   *netem.Participant // the fetch-loop goroutine's clock handle

	info      *origin.VideoInfo
	servers   []string
	serverIdx int
	url       string

	// rng is the path's private splitmix64 state for backoff jitter,
	// derived from the session seed and path id. Only the fetch-loop
	// goroutine draws from it, so the draw order — and therefore every
	// jittered backoff instant — is deterministic per seed.
	rng uint64

	// res is the resilience layer's per-target health state; nil when
	// the layer is disabled.
	res *sourceSet
	// hedging is the range size of the most recent hedge whose reissue
	// has not yet resolved (0 when none): the next success counts a
	// hedge win, the next genuine failure counts its bytes wasted.
	hedging int64
}

func newPath(id int, cfg PathConfig, pl *Player) *path {
	if cfg.Network == "" {
		cfg.Network = cfg.Iface.Name()
	}
	tr := httpx.NewTransport(cfg.Iface)
	tr.SetRequestTimeout(cfg.RequestTimeout)
	return &path{id: id, cfg: cfg, player: pl, tr: tr, client: &http.Client{Transport: tr},
		rng: uint64(pl.cfg.Seed)*0x9E3779B97F4A7C15 + uint64(id)*0xBF58476D1CE4E5B9,
		res: newSourceSet(cfg.Resilience, pl.cfg.Seed, id)}
}

// errClockStopped ends retry loops when the emulation is torn down
// mid-session: sleeps on a stopped clock return immediately, so
// retrying without this sentinel would hot-loop.
var errClockStopped = errors.New("core: emulation clock stopped")

// errSessionStopped is the abort error the player's teardown pipeline
// schedules on in-flight connections: it surfaces in both endpoints'
// reads and writes from the teardown instant on.
var errSessionStopped = errors.New("core: session stopped")

// backoff sleeps an exponentially growing emulated delay — 250 ms
// doubling to a 2 s cap, plus deterministic per-path jitter of up to
// half the base — returning a non-nil error if the context was
// cancelled or the clock stopped. The jitter matters under correlated
// faults: when a server kill fails hundreds of sessions at one virtual
// instant, un-jittered exponential backoff would march them all back
// in lockstep, re-creating the stampede on every retry.
func (p *path) backoff(ctx context.Context, attempt int) error {
	d := 250 * time.Millisecond << uint(min(attempt, 3))
	d += time.Duration(p.jitter(int64(d) / 2))
	p.part.Sleep(d)
	if err := ctx.Err(); err != nil {
		return err
	}
	if p.player.clock.Stopped() {
		return errClockStopped
	}
	return nil
}

// jitter returns the next draw in [0, n) from the path's splitmix64
// stream (0 when n <= 0).
func (p *path) jitter(n int64) int64 {
	return splitmixDraw(&p.rng, n)
}

// splitmixDraw advances the splitmix64 state rng and returns a draw in
// [0, n) (0 when n <= 0). Both engines' paths draw through this one
// function, so a given seed yields one jitter sequence regardless of
// which engine runs the session.
func splitmixDraw(rng *uint64, n int64) int64 {
	if n <= 0 {
		return 0
	}
	*rng += 0x9E3779B97F4A7C15
	z := *rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z % uint64(n))
}

// bootstrap fetches video metadata from the network's web proxy,
// retrying with backoff until it succeeds or ctx is cancelled.
func (p *path) bootstrap(ctx context.Context) error {
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		info, err := p.fetchInfo(ctx)
		if err == nil {
			if len(info.VideoServers) == 0 && len(p.cfg.VideoServers) == 0 {
				err = fmt.Errorf("core: no video servers in network %s", p.cfg.Network)
			} else if _, e := info.ContentLengthFor(p.player.cfg.Itag); e != nil {
				err = e
			}
		}
		if err != nil {
			if berr := p.backoff(ctx, attempt); berr != nil {
				return berr
			}
			continue
		}
		p.info = info
		p.servers = info.VideoServers
		if len(p.cfg.VideoServers) > 0 {
			p.servers = p.cfg.VideoServers
		}
		p.serverIdx = 0
		p.url = info.PlaybackURL(p.servers[0], p.player.cfg.Itag)
		n, _ := info.ContentLengthFor(p.player.cfg.Itag)
		p.player.onBootstrap(info, n)
		return nil
	}
}

func (p *path) fetchInfo(ctx context.Context) (*origin.VideoInfo, error) {
	url := fmt.Sprintf("http://%s/watch?v=%s", p.cfg.ProxyAddr, p.player.cfg.VideoID)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	if p.res != nil {
		// Watch requests are never hedged; disarm any budget left over
		// from the preceding range request.
		p.tr.SetHedge(0)
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("core: watch request: status %d", resp.StatusCode)
	}
	var info origin.VideoInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, fmt.Errorf("core: decoding video info: %w", err)
	}
	return &info, nil
}

// failover rotates to the next replica in the network, wrapping past
// the end of the list so replicas that failed earlier — and may have
// recovered since — are re-probed instead of written off. Once a
// failure streak has walked the whole list (attempt is the streak
// count), it backs off and re-bootstraps to refresh the server list,
// picking up restarted replicas and dropping killed ones.
func (p *path) failover(ctx context.Context, attempt int) error {
	if len(p.servers) > 1 && attempt%len(p.servers) != 0 {
		p.serverIdx = (p.serverIdx + 1) % len(p.servers)
		p.player.metrics.failover(p.id)
		p.url = p.info.PlaybackURL(p.servers[p.serverIdx], p.player.cfg.Itag)
		return nil
	}
	if err := p.backoff(ctx, attempt); err != nil {
		return err
	}
	p.player.metrics.rebootstrap(p.id)
	return p.bootstrap(ctx)
}

// reselect is the resilient replacement for failover: it picks the
// best live source by health score, failing fast past breaker-open
// targets instead of burning a request-deadline budget on each, and
// admits half-open probes at their jittered re-open instants. Probes
// are 1 KiB range requests issued outside the chunk manager, so a
// still-dead target wedges only the probe — never a real chunk span
// that would sit on the contiguous buffering frontier for a full
// deadline. When every breaker is open the path sleeps exactly until
// the earliest half-open instant. Every 2×len(servers) consecutive
// failures it falls back to backoff + re-bootstrap to refresh the
// server list.
func (p *path) reselect(ctx context.Context, attempt int) error {
	if attempt > 0 && len(p.servers) > 0 && attempt%(2*len(p.servers)) == 0 {
		if err := p.backoff(ctx, attempt); err != nil {
			return err
		}
		p.player.metrics.rebootstrap(p.id)
		if err := p.bootstrap(ctx); err != nil {
			return err
		}
	}
	clock := p.player.clock
	for {
		idx, probe, wait, ok := p.res.pick(p.servers, clock.Now())
		if !ok {
			p.part.SleepUntil(wait)
			if err := ctx.Err(); err != nil {
				return err
			}
			if clock.Stopped() {
				return errClockStopped
			}
			if idx, probe, _, ok = p.res.pick(p.servers, clock.Now()); !ok {
				return p.backoff(ctx, attempt)
			}
		}
		if probe {
			admitted, err := p.probe(ctx, idx)
			if err != nil {
				return err
			}
			if !admitted {
				continue
			}
		}
		if idx != p.serverIdx {
			p.serverIdx = idx
			p.player.metrics.failover(p.id)
			p.url = p.info.PlaybackURL(p.servers[idx], p.player.cfg.Itag)
		}
		return nil
	}
}

// probe issues the 1 KiB half-open probe against servers[idx] and
// reports whether the target redeemed itself. Probe outcomes drive the
// breaker and the robustness metrics but never feed the service
// window — a 1 KiB probe's latency says nothing about chunk service
// rates. The probe runs on the deadline-clamped probeBudget rather
// than the rate prediction, so a healthy target whose prediction has
// gone stale still gets the full deadline to redeem itself.
func (p *path) probe(ctx context.Context, idx int) (bool, error) {
	clock := p.player.clock
	p.player.metrics.halfOpenProbe(p.id)
	p.player.metrics.request(p.id)
	p.tr.SetHedge(p.res.probeBudget(p.cfg.RequestTimeout))
	u := p.info.PlaybackURL(p.servers[idx], p.player.cfg.Itag)
	buf := getChunkBuf(probeBytes)
	_, err := httpx.GetRangeBuf(ctx, p.client, u, 0, probeBytes-1, buf)
	putChunkBuf(buf)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return false, cerr
		}
		if errors.Is(err, httpx.ErrHedged) {
			p.player.metrics.hedge(p.id)
		} else {
			p.player.metrics.failure(p.id)
			if errors.Is(err, httpx.ErrRequestTimeout) {
				p.player.metrics.timeout(p.id)
			}
		}
		if p.res.observeFailure(p.servers[idx], clock.Now()) {
			p.player.metrics.breakerOpen(p.id)
		}
		return false, nil
	}
	p.res.admit(p.servers[idx])
	return true, nil
}

// run is the path's main loop; it returns when the stream is complete,
// the player stops, or ctx is cancelled. part is the loop goroutine's
// clock handle: every park the path performs — backoffs, chunk-manager
// waits, dials and in-request reads — goes through it.
func (p *path) run(ctx context.Context, part *netem.Participant) {
	p.part = part
	p.tr.Bind(part)
	if err := p.bootstrap(ctx); err != nil {
		return
	}
	clock := p.player.clock
	failStreak := 0
	for {
		if ctx.Err() != nil {
			return
		}
		want := p.player.cfg.Scheduler.Size(p.id)
		span, ok := p.player.cm.acquire(p.id, want, part)
		if !ok {
			return
		}
		p.player.metrics.request(p.id)
		if p.res != nil {
			p.tr.SetHedge(p.res.hedgeBudget(span.Size, p.cfg.RequestTimeout, len(p.servers)))
		}
		start := clock.Now()
		buf := getChunkBuf(span.Size)
		data, err := httpx.GetRangeBuf(ctx, p.client, p.url, span.Off, span.End()-1, buf)
		if err != nil {
			putChunkBuf(buf)
			if p.res != nil && errors.Is(err, httpx.ErrHedged) {
				// The hedge budget elapsed: the laggard was cancelled at
				// exactly that instant, and the range is reissued against
				// the best-scored live source. Abandoning our own request
				// is not a failure, but it is a breaker strike — repeated
				// hedges against a blackholed source open its breaker
				// long before a deadline-based streak would.
				p.player.cm.fail(span)
				if ctx.Err() != nil {
					return
				}
				p.player.metrics.hedge(p.id)
				if p.hedging > 0 {
					p.player.metrics.hedgeWasted(p.id, p.hedging)
				}
				p.hedging = span.Size
				if p.res.observeHedge(p.servers[p.serverIdx], clock.Now()) {
					p.player.metrics.breakerOpen(p.id)
				}
				if err := p.reselect(ctx, 0); err != nil {
					return
				}
				continue
			}
			p.player.metrics.failure(p.id)
			p.player.cm.fail(span)
			if ctx.Err() != nil {
				return
			}
			failStreak++
			if errors.Is(err, httpx.ErrRequestTimeout) {
				p.player.metrics.timeout(p.id)
			}
			if p.hedging > 0 {
				p.player.metrics.hedgeWasted(p.id, p.hedging)
				p.hedging = 0
			}
			if p.res != nil {
				if p.res.observeFailure(p.servers[p.serverIdx], clock.Now()) {
					p.player.metrics.breakerOpen(p.id)
				}
			}
			var se *httpx.StatusError
			if errors.As(err, &se) && (se.Code == http.StatusForbidden || se.Code == http.StatusUnauthorized) {
				// Token expired or rejected: refresh via the proxy.
				p.player.metrics.rebootstrap(p.id)
				if err := p.bootstrap(ctx); err != nil {
					return
				}
			} else if p.res != nil {
				if err := p.reselect(ctx, failStreak); err != nil {
					return
				}
			} else if err := p.failover(ctx, failStreak); err != nil {
				return
			}
			continue
		}
		failStreak = 0
		if p.hedging > 0 {
			p.player.metrics.hedgeWon(p.id)
			p.hedging = 0
		}
		if len(data) == 0 || len(buf) == 0 || &data[0] != &buf[0] {
			// The response took the allocating fallback; recycle ours.
			putChunkBuf(buf)
		}
		elapsed := clock.Now().Sub(start)
		if p.res != nil {
			p.res.observeSuccess(p.servers[p.serverIdx], elapsed, span.Size)
		}
		p.player.cfg.Scheduler.Observe(p.id, span.Size, elapsed)
		p.player.metrics.chunk(p.id, span.Size, p.player.phase(), clock.Now(), elapsed)
		p.player.cm.complete(p.id, span, data)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
