package core

import (
	"testing"
	"time"
)

// drawJitter replays the first n jitter draws of a path constructed
// from (seed, id), exactly as newPath seeds it.
func drawJitter(seed int64, id, n int, bound int64) []int64 {
	p := &path{rng: uint64(seed)*0x9E3779B97F4A7C15 + uint64(id)*0xBF58476D1CE4E5B9}
	out := make([]int64, n)
	for i := range out {
		out[i] = p.jitter(bound)
	}
	return out
}

// TestBackoffJitterDeterministicPerSeed: the jitter stream is a pure
// function of (session seed, path id) — the property every fleet
// byte-identity guarantee leans on.
func TestBackoffJitterDeterministicPerSeed(t *testing.T) {
	const bound = int64(time.Second)
	a := drawJitter(42, 0, 64, bound)
	b := drawJitter(42, 0, 64, bound)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between identical (seed, id): %d vs %d", i, a[i], b[i])
		}
		if a[i] < 0 || a[i] >= bound {
			t.Fatalf("draw %d = %d outside [0, %d)", i, a[i], bound)
		}
	}
}

// TestBackoffJitterDecorrelated is the retry-storm regression test: if
// sessions (or the two paths of one session) shared a jitter stream,
// a correlated fault — a replica kill failing hundreds of paths at one
// virtual instant — would march every retry back in lockstep,
// re-creating the stampede the jitter exists to break. Distinct seeds
// and distinct path ids must produce distinct streams.
func TestBackoffJitterDecorrelated(t *testing.T) {
	const bound = int64(time.Second)
	same := func(a, b []int64) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	base := drawJitter(1, 0, 64, bound)
	if same(base, drawJitter(2, 0, 64, bound)) {
		t.Error("sessions with different seeds drew identical jitter streams")
	}
	if same(base, drawJitter(1, 1, 64, bound)) {
		t.Error("the two paths of one session drew identical jitter streams")
	}
	// Zero is a valid seed, not a degenerate stream.
	zero := drawJitter(0, 0, 64, bound)
	allEqual := true
	for _, v := range zero[1:] {
		if v != zero[0] {
			allEqual = false
			break
		}
	}
	if allEqual {
		t.Error("seed 0 produced a constant jitter stream")
	}
}

// TestBackoffJitterBounds: non-positive bounds must not panic or draw.
func TestBackoffJitterBounds(t *testing.T) {
	p := &path{rng: 7}
	before := p.rng
	if got := p.jitter(0); got != 0 {
		t.Errorf("jitter(0) = %d, want 0", got)
	}
	if got := p.jitter(-5); got != 0 {
		t.Errorf("jitter(-5) = %d, want 0", got)
	}
	if p.rng != before {
		t.Error("jitter with non-positive bound consumed RNG state")
	}
}
