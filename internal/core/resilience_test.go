package core

import (
	"testing"
	"time"
)

// res2 is the resilience config the breaker tests pin instants under:
// threshold 2, the 800 ms default cooldown, hedging off.
var res2 = Resilience{BreakerThreshold: 2}

// TestBreakerFailsFastAtSelection pins the selection-layer instants for
// a dead target: after the breaker opens, pick skips the target in zero
// virtual time (no request-deadline budget is ever burned on it again),
// and when every target is open, pick surfaces the exact earliest
// half-open instant — base cooldown plus the seeded jitter, both
// reproducible from the sourceSet's private splitmix64 stream.
func TestBreakerFailsFastAtSelection(t *testing.T) {
	s := newSourceSet(res2, 7, 0)
	servers := []string{"a:443", "b:443"}
	t0 := time.Unix(0, 0)

	// First strike against a: below threshold, breaker stays closed.
	if opened := s.observeFailure("a:443", t0); opened {
		t.Fatal("breaker opened on the first strike (threshold 2)")
	}
	// Second strike at t0+100ms opens it.
	t1 := t0.Add(100 * time.Millisecond)
	if opened := s.observeFailure("a:443", t1); !opened {
		t.Fatal("breaker did not open on the second consecutive strike")
	}
	openA := s.tgt("a:443").openUntil
	base := 800 * time.Millisecond
	if d := openA.Sub(t1); d < base || d >= base+base/2 {
		t.Fatalf("first open cooldown = %v, want within [%v, %v)", d, base, base+base/2)
	}

	// Selection at t1 must skip a outright and return b — fail fast,
	// with no wait instant: wire time burned on the dead target is zero.
	idx, probe, wait, ok := s.pick(servers, t1)
	if !ok || idx != 1 || probe || !wait.IsZero() {
		t.Fatalf("pick with a open = (%d, %v, %v, %v), want (1, false, 0, true)", idx, probe, wait, ok)
	}

	// Open b too: now nothing is live and pick must report the exact
	// earliest half-open instant across the open set (each target drew
	// its own jitter from the seeded stream).
	s.observeFailure("b:443", t1)
	s.observeFailure("b:443", t1)
	openB := s.tgt("b:443").openUntil
	earliest, early := openA, 0
	if openB.Before(openA) {
		earliest, early = openB, 1
	}
	_, _, wait, ok = s.pick(servers, t1)
	if ok {
		t.Fatal("pick returned a target while every breaker is open")
	}
	if !wait.Equal(earliest) {
		t.Fatalf("all-open wait = %v, want earliest half-open instant %v", wait, earliest)
	}

	// At the half-open instant the target is offered again — flagged as
	// a probe, not a clean pick.
	idx, probe, _, ok = s.pick(servers, earliest)
	if !ok || idx != early || !probe {
		t.Fatalf("pick at half-open instant = (%d, %v, %v), want (%d, true, true)", idx, probe, ok, early)
	}
}

// TestBreakerReopenEscalatesOnce pins the half-open re-open ladder: a
// single strike during half-open re-opens at 2× the base cooldown, and
// the escalation is capped there — the third open draws from the same
// 2× base, so a long-flapping target keeps being probed at a bounded
// cadence and a healed one is rediscovered within ~2 cooldowns.
func TestBreakerReopenEscalatesOnce(t *testing.T) {
	s := newSourceSet(res2, 7, 0)
	t0 := time.Unix(0, 0)
	s.observeFailure("a:443", t0)
	s.observeFailure("a:443", t0) // opens, streak 1

	base := 800 * time.Millisecond
	for i, want := range []time.Duration{2 * base, 2 * base, 2 * base} {
		at := s.tgt("a:443").openUntil // probe exactly at half-open
		if opened := s.observeFailure("a:443", at); !opened {
			t.Fatalf("re-open %d: half-open strike did not re-open", i+1)
		}
		if d := s.tgt("a:443").openUntil.Sub(at); d < want || d >= want+want/2 {
			t.Fatalf("re-open %d cooldown = %v, want within [%v, %v)", i+1, d, want, want+want/2)
		}
	}

	// admit (a successful tiny probe) resets the ladder completely: the
	// next open is back at 1× base.
	s.admit("a:443")
	if st := s.tgt("a:443"); st.openStreak != 0 || !st.openUntil.IsZero() {
		t.Fatalf("admit left openStreak=%d openUntil=%v", st.openStreak, st.openUntil)
	}
	s.observeFailure("a:443", t0)
	s.observeFailure("a:443", t0)
	if d := s.tgt("a:443").openUntil.Sub(t0); d < base || d >= base+base/2 {
		t.Fatalf("post-admit cooldown = %v, want back at base [%v, %v)", d, base, base+base/2)
	}
}

// TestBreakerJitterDeterministicPerSeed: the cooldown jitter must be a
// pure function of (seed, path id) — two sets with the same identity
// draw identical half-open instants, a different path id draws a
// different one, so a correlated fault does not march every session's
// probes back at the same instant yet every run replays exactly.
func TestBreakerJitterDeterministicPerSeed(t *testing.T) {
	t0 := time.Unix(0, 0)
	open := func(seed int64, id int) time.Time {
		s := newSourceSet(res2, seed, id)
		s.observeFailure("a:443", t0)
		s.observeFailure("a:443", t0)
		return s.tgt("a:443").openUntil
	}
	if a, b := open(7, 0), open(7, 0); !a.Equal(b) {
		t.Fatalf("same (seed,id) drew different half-open instants: %v vs %v", a, b)
	}
	if a, b := open(7, 0), open(7, 1); a.Equal(b) {
		t.Fatalf("paths 0 and 1 drew the same half-open instant %v — jitter stream aliased", a)
	}
}

// TestHealthScorePrefersProvenTarget: a fresh target with a failure
// history must never outrank a sampled healthy one, whatever the
// latency EWMA says — the synthetic 10 s scale for unsampled targets
// guarantees it — while a completely fresh target is explored first.
func TestHealthScorePrefersProvenTarget(t *testing.T) {
	s := newSourceSet(res2, 7, 0)
	t0 := time.Unix(0, 0)
	servers := []string{"flaky:443", "good:443"}

	// flaky has failed once (below threshold, breaker closed) and has
	// never completed a request; good is slow but proven.
	s.observeFailure("flaky:443", t0)
	s.observeSuccess("good:443", 900*time.Millisecond, 1<<20)
	if idx, _, _, ok := s.pick(servers, t0); !ok || idx != 1 {
		t.Fatalf("pick = %d, want proven target 1 over failed-fresh 0", idx)
	}

	// An untouched third target scores zero and is explored first.
	servers = append(servers, "fresh:443")
	if idx, _, _, ok := s.pick(servers, t0); !ok || idx != 2 {
		t.Fatalf("pick = %d, want never-seen target 2 explored first", idx)
	}
}

// TestHedgeBudgetSizeNormalized pins the hedge budget arithmetic: the
// budget is multiplier × (size ÷ slow-quantile service rate + fixed
// overhead floor), so a large chunk earns a proportionally larger
// budget instead of being cancelled by a small-chunk latency quantile.
func TestHedgeBudgetSizeNormalized(t *testing.T) {
	cfg := Resilience{BreakerThreshold: 2, HedgeEnabled: true,
		HedgeMinSamples: 2, HedgeMultiplier: 2, HedgeQuantile: 0.9}
	s := newSourceSet(cfg, 7, 0)

	// Two 64 KiB samples, 100 ms and 120 ms. The window's overhead
	// floor is the fastest request (100 ms); past it the 120 ms sample
	// carries 64 KiB in 20 ms → 3 276 800 B/s, which the slow (p10)
	// quantile selects as the slow-but-healthy service rate.
	s.observeSuccess("a:443", 100*time.Millisecond, 64<<10)
	s.observeSuccess("a:443", 120*time.Millisecond, 64<<10)

	// 128 KiB: 40 ms payload at the slow rate + 100 ms floor, ×2 = 280 ms.
	got := s.hedgeBudget(128<<10, 0, 2)
	if want := 280 * time.Millisecond; got != want {
		t.Fatalf("hedgeBudget(128KiB) = %v, want exactly %v", got, want)
	}

	// Half the size earns exactly half the payload budget: (20+100)×2.
	if got, want := s.hedgeBudget(64<<10, 0, 2), 240*time.Millisecond; got != want {
		t.Fatalf("hedgeBudget(64KiB) = %v, want exactly %v", got, want)
	}

	// Against a request deadline the budget clamps just below it —
	// deadline − max(deadline/64, 1ms) — never above.
	if got, want := s.hedgeBudget(128<<10, 256*time.Millisecond, 2), 252*time.Millisecond; got != want {
		t.Fatalf("clamped hedgeBudget = %v, want %v", got, want)
	}

	// A single-source path must never hedge: cancelling the only
	// in-flight fetch just restarts it against the same laggard.
	if got := s.hedgeBudget(128<<10, 0, 1); got != 0 {
		t.Fatalf("single-source hedgeBudget = %v, want disarmed", got)
	}
}

// TestHedgeStreakInflatesBudget: consecutive hedges with no intervening
// success inflate the next budget 1.5× each (regime shift: the window's
// prediction is stale-tight and nothing completes to correct it), and
// one success resets the inflation.
func TestHedgeStreakInflatesBudget(t *testing.T) {
	cfg := Resilience{BreakerThreshold: 2, HedgeEnabled: true,
		HedgeMinSamples: 2, HedgeMultiplier: 2, HedgeQuantile: 0.9}
	s := newSourceSet(cfg, 7, 0)
	s.observeSuccess("a:443", 100*time.Millisecond, 64<<10)
	s.observeSuccess("a:443", 120*time.Millisecond, 64<<10)
	t0 := time.Unix(0, 0)

	base := s.hedgeBudget(64<<10, 0, 2) // 200 ms, pinned above
	s.observeHedge("a:443", t0)
	if got, want := s.hedgeBudget(64<<10, 0, 2), base*3/2; got != want {
		t.Fatalf("budget after 1 hedge = %v, want %v", got, want)
	}
	s.observeHedge("a:443", t0)
	if got, want := s.hedgeBudget(64<<10, 0, 2), base*3/2*3/2; got != want {
		t.Fatalf("budget after 2 hedges = %v, want %v", got, want)
	}
	s.observeSuccess("a:443", 100*time.Millisecond, 64<<10)
	if got := s.hedgeBudget(64<<10, 0, 2); got != base {
		t.Fatalf("budget after redeeming success = %v, want back at %v", got, base)
	}
}
