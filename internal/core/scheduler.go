// Package core implements MSPlayer itself: the chunk schedulers of §3.3
// (Ratio, EWMA, Harmonic), the chunk manager that assigns byte ranges to
// paths and reassembles them with at most one out-of-order chunk, the
// ON/OFF playout buffer of §4, and the per-path fetch loops with
// multi-source failover.
package core

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/core/estimator"
)

// Chunk size limits from the paper and engineering guards.
const (
	// MinChunk is the 16 KB floor of Alg. 1's halving step.
	MinChunk = 16 << 10
	// MaxChunk bounds the doubling/ratio growth at 1 MB, the top of the
	// chunk-size range the paper evaluates (Fig. 3 sweeps 16 KB–1 MB;
	// commercial players it measures use 64 KB–4 MB). The cap keeps the
	// single stored out-of-order chunk — the scheduler's memory budget —
	// small, and keeps an unbounded fast-path multiplier from defeating
	// the finish-together goal on wildly asymmetric paths.
	MaxChunk = 1 << 20
	// DefaultBaseChunk is MSPlayer's default initial chunk size; the
	// paper settles on 256 KB after the Fig. 3 sweep.
	DefaultBaseChunk = 256 << 10
	// DefaultDelta is the throughput variation parameter δ of Alg. 1.
	DefaultDelta = 0.05
	// DefaultAlpha is the EWMA weight α evaluated in the paper.
	DefaultAlpha = 0.9
)

// Scheduler decides per-path chunk sizes. Implementations must be safe
// for concurrent use: each path calls Observe/Size from its own fetch
// goroutine.
type Scheduler interface {
	// Name identifies the scheduler in experiment output.
	Name() string
	// Observe records a completed chunk transfer on path i.
	Observe(i int, size int64, d time.Duration)
	// Size returns the chunk size path i should request next.
	Size(i int) int64
}

func clampChunk(s int64) int64 {
	if s < MinChunk {
		return MinChunk
	}
	if s > MaxChunk {
		return MaxChunk
	}
	return s
}

// clampSlowChunk bounds the slow path's adjusted chunk to half of
// MaxChunk. The fast path requests γ ≥ 2 times the slow path's size
// when the bandwidth ratio calls for it; if the slow path were allowed
// to ratchet all the way to MaxChunk, the fast path's multiplier would
// clamp away and both paths would issue identical chunks, defeating the
// finish-together sizing on asymmetric paths.
func clampSlowChunk(s int64) int64 {
	if s < MinChunk {
		return MinChunk
	}
	if s > MaxChunk/2 {
		return MaxChunk / 2
	}
	return s
}

func throughput(size int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(size) / d.Seconds()
}

// RatioScheduler is the paper's baseline: the slower path always
// requests the base size B, the faster path requests
// ⌈w_fast/w_slow⌉·B based on the most recent throughput samples.
type RatioScheduler struct {
	Base int64

	mu   sync.Mutex
	last [2]*estimator.LastSample
}

// NewRatioScheduler returns a Ratio scheduler with base chunk size b.
func NewRatioScheduler(b int64) *RatioScheduler {
	if b <= 0 {
		b = DefaultBaseChunk
	}
	return &RatioScheduler{
		Base: b,
		last: [2]*estimator.LastSample{estimator.NewLastSample(), estimator.NewLastSample()},
	}
}

// Name implements Scheduler.
func (r *RatioScheduler) Name() string { return "ratio" }

// Observe implements Scheduler.
func (r *RatioScheduler) Observe(i int, size int64, d time.Duration) {
	if i < 0 || i > 1 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.last[i].Observe(throughput(size, d))
}

// Size implements Scheduler.
func (r *RatioScheduler) Size(i int) int64 {
	if i < 0 || i > 1 {
		return clampChunk(r.Base)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	wi, okI := r.last[i].Estimate()
	wo, okO := r.last[1-i].Estimate()
	if !okI || !okO || wi <= wo {
		// Unknown or slower path: fixed base size.
		return clampChunk(r.Base)
	}
	gamma := math.Ceil(wi / wo)
	return clampChunk(int64(gamma * float64(r.Base)))
}

// DCSAScheduler implements Alg. 1 (dynamic chunk size adjustment) on top
// of a pluggable bandwidth estimator: the slow path doubles its chunk
// when the measured throughput beats the estimate by (1+δ) and halves it
// (16 KB floor) when it falls below (1−δ); the fast path requests
// γ = ⌈ŵ_fast/ŵ_slow⌉ times the slow path's chunk so both transfers
// complete at roughly the same time.
type DCSAScheduler struct {
	name  string
	Base  int64
	Delta float64

	mu   sync.Mutex
	est  [2]estimator.Estimator
	size [2]int64 // current chunk size per path (slow-path state)
}

// NewEWMAScheduler returns a DCSA scheduler driven by the Eq. 1 EWMA
// estimator with weight alpha.
func NewEWMAScheduler(b int64, delta, alpha float64) *DCSAScheduler {
	return newDCSA("ewma", b, delta,
		estimator.NewEWMA(alpha), estimator.NewEWMA(alpha))
}

// NewHarmonicScheduler returns a DCSA scheduler driven by the Eq. 2
// incremental harmonic-mean estimator — MSPlayer's default.
func NewHarmonicScheduler(b int64, delta float64) *DCSAScheduler {
	return newDCSA("harmonic", b, delta,
		estimator.NewHarmonic(), estimator.NewHarmonic())
}

func newDCSA(name string, b int64, delta float64, e0, e1 estimator.Estimator) *DCSAScheduler {
	if b <= 0 {
		b = DefaultBaseChunk
	}
	if delta <= 0 {
		delta = DefaultDelta
	}
	s := &DCSAScheduler{name: name, Base: b, Delta: delta, est: [2]estimator.Estimator{e0, e1}}
	s.size[0], s.size[1] = clampChunk(b), clampChunk(b)
	return s
}

// Name implements Scheduler.
func (s *DCSAScheduler) Name() string { return s.name }

// Observe implements Scheduler: it runs the slow-path branch of Alg. 1
// against the pre-update estimate, then feeds the sample to the
// estimator.
func (s *DCSAScheduler) Observe(i int, size int64, d time.Duration) {
	if i < 0 || i > 1 {
		return
	}
	w := throughput(size, d)
	if w <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	wi, okI := s.est[i].Estimate()
	wo, okO := s.est[1-i].Estimate()
	if okI && (!okO || wi < wo) { // slow path (Alg. 1 lines 4-11)
		switch {
		case w > (1+s.Delta)*wi:
			s.size[i] = clampSlowChunk(s.size[i] * 2)
		case w < (1-s.Delta)*wi:
			s.size[i] = clampSlowChunk((s.size[i] + 1) / 2)
		}
	}
	s.est[i].Observe(w)
}

// Size implements Scheduler (Alg. 1 lines 2-3 and 12-15).
func (s *DCSAScheduler) Size(i int) int64 {
	if i < 0 || i > 1 {
		return clampChunk(s.Base)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	wi, okI := s.est[i].Estimate()
	wo, okO := s.est[1-i].Estimate()
	if !okI {
		return clampChunk(s.Base) // line 3: initial chunk size
	}
	if !okO || wi < wo {
		return clampChunk(s.size[i]) // slow path keeps its adjusted size
	}
	gamma := math.Ceil(wi / math.Max(wo, 1))
	return clampChunk(int64(gamma * float64(s.size[1-i])))
}

// Estimates returns the current per-path bandwidth estimates (bytes/sec)
// for introspection by tests and the experiment harness.
func (s *DCSAScheduler) Estimates() (w0, w1 float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w0, _ = s.est[0].Estimate()
	w1, _ = s.est[1].Estimate()
	return w0, w1
}

// FixedScheduler always requests the same chunk size: the behaviour of
// the commercial single-path players the paper compares against (Adobe
// Flash at 64 KB, HTML5 at 256 KB).
type FixedScheduler struct {
	ChunkSize int64
}

// NewFixedScheduler returns a fixed-size scheduler.
func NewFixedScheduler(size int64) *FixedScheduler {
	return &FixedScheduler{ChunkSize: clampChunk(size)}
}

// Name implements Scheduler.
func (f *FixedScheduler) Name() string { return fmt.Sprintf("fixed-%dKB", f.ChunkSize>>10) }

// Observe implements Scheduler (no adaptation).
func (f *FixedScheduler) Observe(int, int64, time.Duration) {}

// Size implements Scheduler.
func (f *FixedScheduler) Size(int) int64 { return f.ChunkSize }

// BulkScheduler requests whatever remains of the current buffering goal
// as a single range, matching how commercial players accumulate the
// pre-buffer "as one large chunk" (paper §6). The goal callback is wired
// by the player.
type BulkScheduler struct {
	goal func() int64
}

// NewBulkScheduler returns a bulk scheduler; the player installs the
// goal before fetching starts.
func NewBulkScheduler() *BulkScheduler { return &BulkScheduler{} }

// SetGoal installs the remaining-bytes callback.
func (b *BulkScheduler) SetGoal(goal func() int64) { b.goal = goal }

// Name implements Scheduler.
func (b *BulkScheduler) Name() string { return "bulk" }

// Observe implements Scheduler (no adaptation).
func (b *BulkScheduler) Observe(int, int64, time.Duration) {}

// Size implements Scheduler.
func (b *BulkScheduler) Size(int) int64 {
	if b.goal == nil {
		return MaxChunk
	}
	g := b.goal()
	if g < MinChunk {
		return MinChunk
	}
	return g // deliberately uncapped: one request per buffering goal
}
