package core

import (
	"io"
	"sort"
	"sync"

	"repro/internal/netem"
)

// chunkPool recycles chunk body buffers between fetch loops and the
// chunk manager: a path checks a buffer out before its range request
// and the manager returns it after the chunk's bytes have been
// delivered in order (and written to the sink). Without recycling,
// every request allocated a fresh chunk-sized body whose first-touch
// page faults dominated fleet-scale read copies.
var chunkPool = sync.Pool{
	New: func() any { return new([]byte) },
}

// maxPooledChunk bounds recycled chunk buffers so a one-off huge bulk
// chunk cannot pin memory.
const maxPooledChunk = 4 << 20

func getChunkBuf(n int64) []byte {
	bp := chunkPool.Get().(*[]byte)
	if int64(cap(*bp)) >= n {
		return (*bp)[:n]
	}
	// Too small: let it go and allocate at the requested size, so the
	// pool converges on the session's working chunk size.
	return make([]byte, n)
}

func putChunkBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledChunk {
		return
	}
	b = b[:0]
	chunkPool.Put(&b)
}

// Span is a half-open byte range [Off, Off+Size) of the video stream.
type Span struct {
	Off  int64
	Size int64
}

// End returns the exclusive end offset.
func (s Span) End() int64 { return s.Off + s.Size }

// chunkPayload is one completed chunk in the out-of-order store. The
// blocking engine stores an owned contiguous buffer (data, recycled
// through chunkPool after delivery); the evented engine stores borrowed
// connection views (views, in stream order) plus the release callback
// that returns their bytes to the connection once the chunk has been
// delivered — the zero-copy path never materialises the chunk.
type chunkPayload struct {
	data    []byte   // owned buffer; the payload's bytes when release == nil
	views   [][]byte // borrowed views; the payload's bytes when release != nil
	release func()   // returns the views' bytes to their connection
	size    int64    // total payload bytes (frontier advance)
}

// chunkManager hands out byte ranges to path fetchers and reassembles
// completed chunks in order. Per the paper's design it stores at most
// MaxOutOfOrder completed chunks that cannot yet be delivered; a path
// asking for fresh work while the store is full waits until the gap
// fills, which also realises the "complete transfers at the same time"
// goal when the scheduler misjudges.
type chunkManager struct {
	// deliverMu serialises whole complete() calls so the in-order
	// prefix reaches the sink and the playout buffer in frontier order
	// even when both paths finish chunks simultaneously. It is always
	// acquired before mu.
	deliverMu sync.Mutex

	mu   sync.Mutex
	cond *netem.Cond // clock-aware: paths parked in acquire are jumpable

	total    int64 // content length; -1 until the first bootstrap
	next     int64 // next unassigned offset
	frontier int64 // delivered in-order up to here
	stored   map[int64]chunkPayload
	storedBy map[int64]int // offset -> path that fetched it
	maxOOO   int
	retry    []Span // failed chunks awaiting reassignment

	gate    bool // fetching allowed (ON/OFF state)
	stopped bool

	// notify, when set, is invoked (outside mu) after every state change
	// that Broadcasts cond. The evented engine points it at the session
	// loop so parked path machines re-poll acquireTry at exactly the
	// instants a blocking path would have woken from cond.Wait. It must
	// be installed before the first path starts and never changed.
	notify func()

	sink io.Writer // receives the in-order byte stream (may be nil)
	// onDeliver is called with the new frontier after in-order delivery;
	// the player advances the playout buffer here.
	onDeliver func(frontier int64)
	// limit optionally bounds fresh assignments to an absolute stream
	// offset (the playout buffer's current goal), implementing
	// just-in-time delivery. Fresh spans are clamped so they do not
	// extend more than a minimum chunk past the limit.
	limit func() int64
}

func newChunkManager(clock *netem.Clock, maxOOO int, sink io.Writer) *chunkManager {
	if maxOOO < 1 {
		maxOOO = 1
	}
	cm := &chunkManager{
		total:    -1,
		stored:   make(map[int64]chunkPayload),
		storedBy: make(map[int64]int),
		maxOOO:   maxOOO,
		sink:     sink,
	}
	cm.cond = netem.NewCond(clock, &cm.mu)
	return cm
}

// notifyAfter runs the evented re-poll hook; call after releasing mu at
// any site that Broadcasts cond.
func (cm *chunkManager) notifyAfter() {
	if cm.notify != nil {
		cm.notify()
	}
}

// setTotal installs the content length once known (first JSON decode).
func (cm *chunkManager) setTotal(n int64) {
	cm.mu.Lock()
	if cm.total < 0 {
		cm.total = n
	}
	cm.cond.Broadcast()
	cm.mu.Unlock()
	cm.notifyAfter()
}

// setLimit installs the just-in-time goal-offset bound.
func (cm *chunkManager) setLimit(f func() int64) {
	cm.mu.Lock()
	cm.limit = f
	cm.cond.Broadcast()
	cm.mu.Unlock()
	cm.notifyAfter()
}

// setGate flips the ON/OFF fetch gate.
func (cm *chunkManager) setGate(on bool) {
	cm.mu.Lock()
	cm.gate = on
	cm.cond.Broadcast()
	cm.mu.Unlock()
	cm.notifyAfter()
}

// stop aborts all waiters; acquire returns ok=false afterwards. Any
// undelivered view payloads still parked in the out-of-order store pin
// connection segment memory, so their bytes are returned to the owning
// connections here.
func (cm *chunkManager) stop() {
	cm.mu.Lock()
	cm.stopped = true
	var rel []func()
	var offs []int64
	for off, pay := range cm.stored {
		if pay.release != nil {
			offs = append(offs, off)
		}
	}
	sort.Slice(offs, func(a, b int) bool { return offs[a] < offs[b] })
	for _, off := range offs {
		rel = append(rel, cm.stored[off].release)
		delete(cm.stored, off)
		delete(cm.storedBy, off)
	}
	cm.cond.Broadcast()
	cm.mu.Unlock()
	for _, f := range rel {
		f()
	}
	cm.notifyAfter()
}

// doneLocked reports whether the whole stream has been delivered.
func (cm *chunkManager) doneLocked() bool {
	return cm.total >= 0 && cm.frontier >= cm.total
}

// Done reports whether the whole stream has been delivered in order.
func (cm *chunkManager) Done() bool {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	return cm.doneLocked()
}

// Frontier returns the in-order delivered byte count.
func (cm *chunkManager) Frontier() int64 {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	return cm.frontier
}

// tryAcquireLocked hands out the next span when one is available right
// now, or reports that the caller must wait. Callers hold cm.mu and
// have already ruled out stopped/doneLocked.
func (cm *chunkManager) tryAcquireLocked(want int64) (Span, bool) {
	// Failed chunks have priority and bypass the gate and the
	// out-of-order limit: they fill the delivery gap.
	if len(cm.retry) > 0 {
		s := cm.retry[0]
		cm.retry = cm.retry[1:]
		return s, true
	}
	hasFresh := cm.total >= 0 && cm.next < cm.total
	oooFull := len(cm.stored) >= cm.maxOOO
	// Just-in-time gate: issue full-size chunks only while the
	// assignment frontier is below the buffering goal. The final
	// chunk may overshoot the goal by up to one chunk, exactly as a
	// chunked player overshoots, which guarantees the goal is
	// crossed decisively instead of approached asymptotically.
	belowGoal := cm.limit == nil || cm.next < cm.limit()
	if cm.gate && hasFresh && !oooFull && belowGoal {
		s := Span{Off: cm.next, Size: want}
		if s.End() > cm.total {
			s.Size = cm.total - s.Off
		}
		cm.next = s.End()
		return s, true
	}
	return Span{}, false
}

// acquire blocks until work is available for path i and returns the next
// span to fetch, sized by want but clamped to the remaining content.
// part is path i's clock handle, used for the clock-visible wait.
// ok=false means the stream is fully delivered or the manager stopped.
func (cm *chunkManager) acquire(i int, want int64, part *netem.Participant) (Span, bool) {
	if want < 1 {
		want = 1
	}
	cm.mu.Lock()
	defer cm.mu.Unlock()
	for {
		if cm.stopped || cm.doneLocked() {
			return Span{}, false
		}
		if s, ok := cm.tryAcquireLocked(want); ok {
			return s, true
		}
		if !cm.cond.Wait(part) {
			// Emulation clock stopped: no further deliveries or gate
			// flips will ever signal this wait.
			return Span{}, false
		}
	}
}

// acquireTry is the evented engine's non-parking acquire. It hands out a
// span when one is available now (ok), reports the stream delivered or
// the manager stopped (over), or — when neither — tells the caller to
// stay idle until the next notify callback re-polls it. want is pinned
// by the caller across re-polls, mirroring the blocking acquire whose
// want is fixed for the whole wait.
func (cm *chunkManager) acquireTry(want int64) (s Span, ok, over bool) {
	if want < 1 {
		want = 1
	}
	cm.mu.Lock()
	defer cm.mu.Unlock()
	if cm.stopped || cm.doneLocked() {
		return Span{}, false, true
	}
	s, ok = cm.tryAcquireLocked(want)
	return s, ok, false
}

// complete records a finished chunk fetched by path i and delivers any
// newly in-order prefix to the sink.
func (cm *chunkManager) complete(i int, s Span, data []byte) {
	cm.deliver(i, s, chunkPayload{data: data, size: int64(len(data))})
}

// completeViews is complete for the evented engine's zero-copy path:
// the chunk's bytes live in borrowed connection views that are written
// to the sink in order and then returned to the connection via release.
// size is the total view length (the span's size).
func (cm *chunkManager) completeViews(i int, s Span, views [][]byte, release func(), size int64) {
	cm.deliver(i, s, chunkPayload{views: views, release: release, size: size})
}

func (cm *chunkManager) deliver(i int, s Span, pay chunkPayload) {
	cm.deliverMu.Lock()
	defer cm.deliverMu.Unlock()
	cm.mu.Lock()
	if cm.stopped {
		cm.mu.Unlock()
		if pay.release != nil {
			pay.release()
		}
		return
	}
	cm.stored[s.Off] = pay
	cm.storedBy[s.Off] = i
	var delivered []chunkPayload
	for {
		d, ok := cm.stored[cm.frontier]
		if !ok {
			break
		}
		delete(cm.storedBy, cm.frontier)
		delete(cm.stored, cm.frontier)
		delivered = append(delivered, d)
		cm.frontier += d.size
	}
	frontier := cm.frontier
	onDeliver := cm.onDeliver
	sink := cm.sink
	cm.cond.Broadcast()
	cm.mu.Unlock()

	if sink != nil {
		for _, d := range delivered {
			if d.release == nil {
				sink.Write(d.data)
			} else {
				for _, v := range d.views {
					sink.Write(v)
				}
			}
		}
	}
	if len(delivered) > 0 && onDeliver != nil {
		onDeliver(frontier)
	}
	// The delivered payloads' bytes have reached the sink (which copies)
	// and every callback has run: recycle owned buffers for future
	// fetches and hand borrowed views back to their connections.
	for _, d := range delivered {
		if d.release != nil {
			d.release()
		} else {
			putChunkBuf(d.data)
		}
	}
	cm.notifyAfter()
}

// fail requeues a chunk whose transfer failed so any path can take it.
func (cm *chunkManager) fail(s Span) {
	cm.mu.Lock()
	cm.retry = append(cm.retry, s)
	sort.Slice(cm.retry, func(a, b int) bool { return cm.retry[a].Off < cm.retry[b].Off })
	cm.cond.Broadcast()
	cm.mu.Unlock()
	cm.notifyAfter()
}

// outstanding reports how many completed chunks are stored out of order.
func (cm *chunkManager) outstanding() int {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	return len(cm.stored)
}
