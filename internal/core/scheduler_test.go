package core

import (
	"testing"
	"testing/quick"
	"time"
)

// observe feeds a chunk completion with the given throughput (bytes/sec).
func observe(s Scheduler, path int, w float64) {
	size := int64(w) // 1-second transfer at rate w
	s.Observe(path, size, time.Second)
}

func TestRatioInitialSize(t *testing.T) {
	s := NewRatioScheduler(64 << 10)
	if got := s.Size(0); got != 64<<10 {
		t.Fatalf("initial size = %d, want 64KB", got)
	}
	if got := s.Size(1); got != 64<<10 {
		t.Fatalf("initial size path 1 = %d, want 64KB", got)
	}
}

func TestRatioFastPathScales(t *testing.T) {
	s := NewRatioScheduler(64 << 10)
	observe(s, 0, 3_000_000) // fast
	observe(s, 1, 1_000_000) // slow
	if got := s.Size(1); got != 64<<10 {
		t.Fatalf("slow path size = %d, want base 64KB", got)
	}
	if got := s.Size(0); got != 3*64<<10 {
		t.Fatalf("fast path size = %d, want 3x base", got)
	}
	// Non-integral ratio rounds up (ceil).
	observe(s, 0, 2_500_000)
	if got := s.Size(0); got != 3*64<<10 {
		t.Fatalf("fast path size with ratio 2.5 = %d, want ceil -> 3x", got)
	}
}

func TestRatioRespondsOnlyToLastSample(t *testing.T) {
	s := NewRatioScheduler(64 << 10)
	observe(s, 0, 1_000_000)
	observe(s, 1, 1_000_000)
	// One noisy burst on path 0 swings the ratio immediately — the
	// baseline's documented weakness.
	observe(s, 0, 10_000_000)
	if got := s.Size(0); got != 10*64<<10 {
		t.Fatalf("fast path after burst = %d, want 10x base", got)
	}
}

func TestDCSAInitialAndFloor(t *testing.T) {
	s := NewHarmonicScheduler(64<<10, 0.05)
	if got := s.Size(0); got != 64<<10 {
		t.Fatalf("initial size = %d, want base", got)
	}
	// Path 0 becomes slow and keeps underperforming: halving to floor.
	observe(s, 0, 1_000_000)
	observe(s, 1, 5_000_000)
	for i := 0; i < 10; i++ {
		observe(s, 0, 100_000) // far below estimate
	}
	if got := s.Size(0); got != MinChunk {
		t.Fatalf("slow path after collapse = %d, want floor %d", got, MinChunk)
	}
}

func TestDCSADoublesOnGoodNews(t *testing.T) {
	s := NewEWMAScheduler(64<<10, 0.05, 0.9)
	observe(s, 0, 1_000_000) // slow path estimate 1 MB/s
	observe(s, 1, 5_000_000)
	// Measurement 2 MB/s > (1.05)·1 MB/s: size doubles once per chunk.
	observe(s, 0, 2_000_000)
	if got := s.Size(0); got != 128<<10 {
		t.Fatalf("slow path after good chunk = %d, want 128KB", got)
	}
	observe(s, 0, 3_000_000)
	if got := s.Size(0); got != 256<<10 {
		t.Fatalf("slow path after second good chunk = %d, want 256KB", got)
	}
}

func TestDCSAStableWithinDelta(t *testing.T) {
	s := NewEWMAScheduler(256<<10, 0.05, 0.9)
	observe(s, 0, 1_000_000)
	observe(s, 1, 5_000_000)
	observe(s, 0, 1_020_000) // within ±5% of estimate: unchanged
	if got := s.Size(0); got != 256<<10 {
		t.Fatalf("size after in-band sample = %d, want unchanged 256KB", got)
	}
}

func TestDCSAFastPathGamma(t *testing.T) {
	s := NewHarmonicScheduler(64<<10, 0.05)
	observe(s, 0, 1_000_000)
	observe(s, 1, 2_500_000)
	// γ = ceil(2.5/1) = 3; fast chunk = 3 × slow chunk.
	if got, want := s.Size(1), int64(3*64<<10); got != want {
		t.Fatalf("fast path size = %d, want %d", got, want)
	}
}

func TestDCSAChunkCap(t *testing.T) {
	s := NewHarmonicScheduler(1<<20, 0.05)
	observe(s, 0, 1000)        // pathological slow path
	observe(s, 1, 100_000_000) // very fast path
	if got := s.Size(1); got > MaxChunk {
		t.Fatalf("fast path size %d exceeds MaxChunk", got)
	}
}

func TestFixedScheduler(t *testing.T) {
	s := NewFixedScheduler(64 << 10)
	observe(s, 0, 5_000_000)
	if got := s.Size(0); got != 64<<10 {
		t.Fatalf("fixed size = %d", got)
	}
	if s.Name() != "fixed-64KB" {
		t.Fatalf("name = %q", s.Name())
	}
}

func TestBulkScheduler(t *testing.T) {
	s := NewBulkScheduler()
	if got := s.Size(0); got != MaxChunk {
		t.Fatalf("goal-less bulk size = %d, want MaxChunk", got)
	}
	remaining := int64(12_500_000)
	s.SetGoal(func() int64 { return remaining })
	if got := s.Size(0); got != remaining {
		t.Fatalf("bulk size = %d, want %d", got, remaining)
	}
	remaining = 1 // below floor
	if got := s.Size(0); got != MinChunk {
		t.Fatalf("tiny bulk size = %d, want MinChunk", got)
	}
}

// Property: every scheduler always returns sizes within [MinChunk,
// MaxChunk] after arbitrary observation sequences — except Bulk, which
// deliberately requests the whole goal at once.
func TestSchedulerSizeBoundsProperty(t *testing.T) {
	mk := func() []Scheduler {
		return []Scheduler{
			NewRatioScheduler(256 << 10),
			NewEWMAScheduler(256<<10, 0.05, 0.9),
			NewHarmonicScheduler(256<<10, 0.05),
			NewFixedScheduler(64 << 10),
		}
	}
	f := func(obs []uint32) bool {
		for _, s := range mk() {
			for _, o := range obs {
				path := int(o % 2)
				w := float64(o%50_000_000) + 1
				observe(s, path, w)
				for i := 0; i < 2; i++ {
					if sz := s.Size(i); sz < MinChunk || sz > MaxChunk {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property (the scheduler's design goal): with stable path bandwidths,
// the chunk-size ratio approaches the bandwidth ratio, so transfers
// complete at roughly the same time.
func TestDCSAFinishTogetherProperty(t *testing.T) {
	for _, ratio := range []float64{1.5, 2, 3, 5} {
		s := NewHarmonicScheduler(256<<10, 0.05)
		wSlow, wFast := 1_000_000.0, 1_000_000.0*ratio
		for i := 0; i < 30; i++ {
			observe(s, 0, wSlow)
			observe(s, 1, wFast)
		}
		tSlow := float64(s.Size(0)) / wSlow
		tFast := float64(s.Size(1)) / wFast
		if tFast > tSlow*1.6 || tSlow > tFast*1.6 {
			t.Errorf("ratio %.1f: completion times diverge: slow %.3fs fast %.3fs (sizes %d/%d)",
				ratio, tSlow, tFast, s.Size(0), s.Size(1))
		}
	}
}

func TestSchedulerIgnoresInvalidPathIndex(t *testing.T) {
	for _, s := range []Scheduler{
		NewRatioScheduler(0), NewEWMAScheduler(0, 0, 0.9), NewHarmonicScheduler(0, 0),
	} {
		s.Observe(7, 1000, time.Second) // must not panic
		if got := s.Size(-1); got != DefaultBaseChunk {
			t.Errorf("%s: Size(-1) = %d, want base", s.Name(), got)
		}
	}
}
