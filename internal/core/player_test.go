package core

import (
	"testing"
	"time"

	"repro/internal/netem"
)

func testIface(t *testing.T) (*netem.Interface, *netem.Clock) {
	t.Helper()
	clock := netem.NewVirtualClock()
	t.Cleanup(clock.Stop)
	n := netem.NewNetwork(clock)
	lp := netem.LinkParams{Rate: netem.Mbps(10), Delay: time.Millisecond}
	return n.NewInterface("wifi", lp, lp), clock
}

func TestConfigValidation(t *testing.T) {
	iface, clock := testIface(t)
	valid := Config{
		Clock:     clock,
		VideoID:   "qjT4T2gU9sM",
		Itag:      22,
		Scheduler: NewHarmonicScheduler(0, 0),
		Paths:     []PathConfig{{Iface: iface, ProxyAddr: "p.test:443"}},
	}
	if _, err := NewPlayer(valid); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"no clock", func(c *Config) { c.Clock = nil }},
		{"no video", func(c *Config) { c.VideoID = "" }},
		{"no scheduler", func(c *Config) { c.Scheduler = nil }},
		{"no itag", func(c *Config) { c.Itag = 0 }},
		{"no paths", func(c *Config) { c.Paths = nil }},
		{"three paths", func(c *Config) {
			p := c.Paths[0]
			c.Paths = []PathConfig{p, p, p}
		}},
		{"path without iface", func(c *Config) {
			c.Paths = []PathConfig{{ProxyAddr: "p.test:443"}}
		}},
		{"path without proxy", func(c *Config) {
			c.Paths = []PathConfig{{Iface: iface}}
		}},
	}
	for _, tc := range cases {
		cfg := valid
		cfg.Paths = append([]PathConfig(nil), valid.Paths...)
		tc.mut(&cfg)
		if _, err := NewPlayer(cfg); err == nil {
			t.Errorf("%s: config accepted", tc.name)
		}
	}
}

func TestMetricsShare(t *testing.T) {
	m := &Metrics{Paths: []PathStats{
		{Network: "wifi", PreBytes: 600, ReBytes: 100},
		{Network: "lte", PreBytes: 400, ReBytes: 300},
	}}
	if got := m.Share("wifi", PhasePreBuffer); got != 0.6 {
		t.Errorf("pre share = %v", got)
	}
	if got := m.Share("wifi", PhaseReBuffer); got != 0.25 {
		t.Errorf("re share = %v", got)
	}
	if got := m.Share("lte", PhaseReBuffer); got != 0.75 {
		t.Errorf("lte re share = %v", got)
	}
	empty := &Metrics{Paths: []PathStats{{Network: "wifi"}}}
	if got := empty.Share("wifi", PhasePreBuffer); got != 0 {
		t.Errorf("empty share = %v", got)
	}
}

func TestPhaseString(t *testing.T) {
	if PhasePreBuffer.String() != "pre" || PhaseReBuffer.String() != "re" {
		t.Fatalf("phase strings: %q %q", PhasePreBuffer, PhaseReBuffer)
	}
}

func TestMetricsRecorder(t *testing.T) {
	start := time.Unix(0, 0)
	r := newMetricsRecorder([]string{"wifi", "lte"}, start)
	r.request(0)
	r.request(0)
	r.failure(0)
	r.failover(1)
	r.rebootstrap(1)
	r.chunk(0, 1000, PhasePreBuffer, start.Add(time.Second), 300*time.Millisecond)
	r.chunk(0, 2000, PhaseReBuffer, start.Add(2*time.Second), 700*time.Millisecond)

	snap := r.snapshot()
	w := snap[0]
	if w.Requests != 2 || w.Failures != 1 || w.Chunks != 2 {
		t.Fatalf("wifi counters = %+v", w)
	}
	if w.Bytes != 3000 || w.PreBytes != 1000 || w.ReBytes != 2000 {
		t.Fatalf("wifi bytes = %+v", w)
	}
	if w.ActiveTime != time.Second {
		t.Fatalf("active time = %v", w.ActiveTime)
	}
	if !w.FirstByteSet || w.FirstVideoByte != time.Second {
		t.Fatalf("first byte = %+v", w)
	}
	l := snap[1]
	if l.Failovers != 1 || l.Rebootstraps != 1 || l.Network != "lte" {
		t.Fatalf("lte counters = %+v", l)
	}
	// Snapshot is a copy.
	snap[0].Bytes = 0
	if r.snapshot()[0].Bytes != 3000 {
		t.Fatal("snapshot aliased recorder state")
	}
}
