package bench

import (
	"context"
	"fmt"
	"io"

	"repro/internal/fleet"
)

// FleetSmoke runs a small fixed-seed fleet scenario — a population of
// concurrent sessions sharing one origin in one virtual-time world —
// and prints its report. It is the scale-path counterpart of the
// figure benches: it does not reproduce a paper figure, but exercises
// the multi-session engine end to end and returns the report so tests
// can assert on (and diff) its deterministic summary.
func FleetSmoke(w io.Writer, opt Options) (*fleet.Report, error) {
	opt = opt.withDefaults()
	header(w, "Fleet smoke: flash-crowd pre-buffering at population scale")
	sc, err := fleet.Builtin("flashcrowd", 16, opt.Seed)
	if err != nil {
		return nil, err
	}
	rep, err := fleet.Run(context.Background(), sc)
	if err != nil {
		return nil, err
	}
	fmt.Fprint(w, rep)
	return rep, nil
}
