package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"repro/internal/fleet"
)

// Guard re-runs the fleet experiments recorded in a committed
// BENCH_fleet.json baseline (at the baseline's own session counts) and
// fails when any experiment's headline wall time regresses beyond
// maxFactor (e.g. 1.25 = +25%). Each experiment runs reps times and the
// fastest repetition is compared, filtering out one-off scheduler and
// GC noise; the guard measures wall time only — metric drift is the
// determinism tests' job.
func Guard(w io.Writer, baselinePath string, maxFactor float64, opt Options) error {
	// Deliberately not opt.withDefaults(): the experiment suite's
	// 20-rep default would turn the CI gate into a multi-minute run;
	// two reps suffice for a best-of wall measurement.
	reps := opt.Reps
	if reps <= 0 {
		reps = 2
	}
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("bench: reading baseline: %w", err)
	}
	var base Artifact
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("bench: parsing baseline %s: %w", baselinePath, err)
	}
	if base.Kind != "fleet" {
		return fmt.Errorf("bench: baseline %s has kind %q, want \"fleet\"", baselinePath, base.Kind)
	}
	// Wall seconds only transfer between matching environments: a
	// baseline from a different machine class or toolchain makes the
	// factor comparison noise. Warn loudly instead of silently
	// comparing, so a guard trip (or pass) on a mismatched runner is
	// read with the right scepticism.
	if base.GoVersion != runtime.Version() {
		fmt.Fprintf(w, "  WARNING: baseline was recorded with %s, running %s — wall-time comparison is unreliable\n",
			base.GoVersion, runtime.Version())
	}
	if base.NumCPU != runtime.NumCPU() {
		fmt.Fprintf(w, "  WARNING: baseline was recorded on %d CPUs, running on %d — wall-time comparison is unreliable\n",
			base.NumCPU, runtime.NumCPU())
	}
	if base.GoMaxProcs != 0 && base.GoMaxProcs != runtime.GOMAXPROCS(0) {
		fmt.Fprintf(w, "  WARNING: baseline was recorded at GOMAXPROCS=%d, running at %d — wall-time comparison is unreliable\n",
			base.GoMaxProcs, runtime.GOMAXPROCS(0))
	}
	var failures []string
	for _, exp := range base.Experiments {
		scenario, sessions, err := parseExperimentName(exp.Name)
		if err != nil {
			return err
		}
		sc, err := fleet.Builtin(scenario, sessions, base.Seed)
		if err != nil {
			return err
		}
		// Match the engine the artifacts are recorded on (FleetArtifact
		// pins the event-loop engine) so the wall-time factor compares
		// like with like.
		sc.Engine = fleet.EngineEventLoop
		// Mega-scale experiments get one repetition: a 20k-session run
		// is long enough that best-of-N would turn the CI gate into a
		// multi-minute step, and proportionally far less noisy than the
		// small runs best-of filtering exists for.
		expReps := reps
		if sessions >= 10000 {
			expReps = 1
		}
		best := time.Duration(0)
		for r := 0; r < expReps; r++ {
			// Attributable wall times, matching FleetArtifact: free the
			// previous run's garbage so a mega-scale predecessor's
			// retained RSS cannot page-thrash this measurement.
			debug.FreeOSMemory()
			start := time.Now() //detlint:allow wallclock -- guard times the benchmark run in real wall time
			if _, err := fleet.Run(context.Background(), sc); err != nil {
				return fmt.Errorf("bench: %s: %w", exp.Name, err)
			}
			if wall := time.Since(start); r == 0 || wall < best { //detlint:allow wallclock -- guard times the benchmark run in real wall time
				best = wall
			}
		}
		limit := exp.WallSecs * maxFactor
		status := "ok"
		if best.Seconds() > limit {
			status = "REGRESSED"
			failures = append(failures, fmt.Sprintf("%s: wall %.2fs > limit %.2fs (baseline %.2fs × %.2f)",
				exp.Name, best.Seconds(), limit, exp.WallSecs, maxFactor))
		}
		fmt.Fprintf(w, "  %-18s wall=%6.2fs baseline=%6.2fs limit=%6.2fs  %s\n",
			exp.Name, best.Seconds(), exp.WallSecs, limit, status)
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench: wall-time regression vs %s:\n  %s",
			baselinePath, strings.Join(failures, "\n  "))
	}
	return nil
}

// parseExperimentName splits a fleet experiment name like
// "flashcrowd_200" into its scenario and session count.
func parseExperimentName(name string) (scenario string, sessions int, err error) {
	i := strings.LastIndexByte(name, '_')
	if i < 0 {
		return "", 0, fmt.Errorf("bench: experiment name %q is not <scenario>_<sessions>", name)
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n <= 0 {
		return "", 0, fmt.Errorf("bench: experiment name %q has no session count", name)
	}
	return name[:i], n, nil
}
