// Package bench regenerates every figure and table of the MSPlayer
// paper's evaluation (§5–§6) on the emulated testbed, plus the ablation
// studies called out in DESIGN.md. Each experiment function prints
// paper-style rows to a writer and returns structured results so tests
// and benchmarks can assert on the shape of the reproduction.
package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro"
	"repro/internal/stats"
)

// Options tunes an experiment run.
type Options struct {
	// Reps is the number of repetitions per configuration cell
	// (default 20, as in the paper's scheduler study).
	Reps int
	// Seed varies the stochastic components; repetition r of an
	// experiment uses Seed + r.
	Seed int64
	// Parallel bounds concurrently running testbeds (default
	// min(4, NumCPU)); each repetition owns an isolated virtual clock.
	Parallel int
}

func (o Options) withDefaults() Options {
	if o.Reps <= 0 {
		o.Reps = 20
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.NumCPU()
		if o.Parallel > 4 {
			o.Parallel = 4
		}
	}
	return o
}

// Series is one line of an experiment: a labelled distribution of
// download times (seconds).
type Series struct {
	// Label identifies the configuration ("MSPlayer", "WiFi 64KB", ...).
	Label string
	// Samples holds one measurement per repetition, in seconds.
	Samples []float64
	// Summary is the five-number summary of Samples.
	Summary stats.Summary
}

func newSeries(label string, samples []float64) Series {
	return Series{Label: label, Samples: samples, Summary: stats.Summarize(samples)}
}

// runner executes one repetition and returns a measurement in seconds.
type runner func(rep int) (float64, error)

// repeat runs fn opt.Reps times with bounded parallelism, dropping
// failed repetitions (a failed rep is reported on w).
func repeat(w io.Writer, opt Options, fn runner) []float64 {
	type out struct {
		v   float64
		err error
	}
	results := make([]out, opt.Reps)
	sem := make(chan struct{}, opt.Parallel)
	var wg sync.WaitGroup
	for r := 0; r < opt.Reps; r++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(r int) { //detlint:allow baredgo -- parallel reps run whole emulations side by side; OS goroutines by design
			defer wg.Done()
			defer func() { <-sem }()
			v, err := fn(r)
			results[r] = out{v, err}
		}(r)
	}
	wg.Wait()
	var xs []float64
	for r, res := range results {
		if res.err != nil {
			fmt.Fprintf(w, "  ! rep %d failed: %v\n", r, res.err)
			continue
		}
		xs = append(xs, res.v)
	}
	return xs
}

// preBufferTime runs one pre-buffering session on a fresh testbed and
// returns the measured start-up download time in seconds.
func preBufferTime(profile msplayer.Profile, sel msplayer.PathSelection,
	sched msplayer.Scheduler, preTarget time.Duration) (float64, error) {
	tb, err := msplayer.NewTestbed(profile)
	if err != nil {
		return 0, err
	}
	defer tb.Close()
	m, err := tb.Stream(context.Background(), msplayer.SessionConfig{
		Scheduler:          sched,
		Paths:              sel,
		Buffer:             msplayer.BufferConfig{PreBufferTarget: preTarget},
		StopAfterPreBuffer: true,
	})
	if err != nil {
		return 0, err
	}
	if !m.PreBufferDone {
		return 0, fmt.Errorf("pre-buffering did not complete")
	}
	return m.PreBufferTime.Seconds(), nil
}

// refillTimes runs a steady-state session and returns the mean refill
// duration (seconds) over `cycles` re-buffering cycles of the given
// size.
func refillTimes(profile msplayer.Profile, sel msplayer.PathSelection,
	sched msplayer.Scheduler, refill time.Duration, cycles int) (float64, error) {
	tb, err := msplayer.NewTestbed(profile)
	if err != nil {
		return 0, err
	}
	defer tb.Close()
	m, err := tb.Stream(context.Background(), msplayer.SessionConfig{
		Scheduler:        sched,
		Paths:            sel,
		Buffer:           msplayer.BufferConfig{RefillSize: refill},
		StopAfterRefills: cycles,
	})
	if err != nil {
		return 0, err
	}
	if len(m.Refills) == 0 {
		return 0, fmt.Errorf("no refills measured")
	}
	var xs []float64
	for _, r := range m.Refills {
		xs = append(xs, r.Duration.Seconds())
	}
	return stats.Mean(xs), nil
}

// fmtRow renders one series as an aligned text row.
func fmtRow(w io.Writer, s Series) {
	fmt.Fprintf(w, "  %-22s %s\n", s.Label, s.Summary)
}

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n", title)
	for range title {
		fmt.Fprint(w, "-")
	}
	fmt.Fprintln(w)
}
