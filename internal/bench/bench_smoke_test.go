package bench

import (
	"io"
	"os"
	"testing"
	"time"
)

// smokeOpt keeps repetition counts moderate: these tests assert the
// shape of each experiment, not tight statistics (benchall runs the
// full repetition counts). The deterministic virtual clock made each
// repetition cheap, so the smoke runs afford more reps and more
// parallel testbeds than the seed did.
func smokeOpt() Options { return Options{Reps: 6, Seed: 42, Parallel: 8} }

func sink(t *testing.T) io.Writer {
	if testing.Verbose() {
		return os.Stderr
	}
	return io.Discard
}

func TestFig1ModelMatchesMeasurement(t *testing.T) {
	rows := Fig1(sink(t), smokeOpt())
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		// Measured eta must be at least the closed form (propagation
		// only) and within ~1 RTT of it (transmission + quantum slack).
		if r.EtaMeasured < r.EtaModel || r.EtaMeasured > r.EtaModel+r.RTT {
			t.Errorf("theta %.1f: eta measured %v vs model %v", r.Theta, r.EtaMeasured, r.EtaModel)
		}
		if r.PsiMeasured < r.PsiModel-r.RTT/2 || r.PsiMeasured > r.PsiModel+2*r.RTT {
			t.Errorf("theta %.1f: psi measured %v vs model %v", r.Theta, r.PsiMeasured, r.PsiModel)
		}
		if r.PsiMeasured <= r.EtaMeasured {
			t.Errorf("theta %.1f: psi (%v) should exceed eta (%v)", r.Theta, r.PsiMeasured, r.EtaMeasured)
		}
	}
	// Head start grows with theta.
	if !(rows[0].HeadStart < rows[1].HeadStart && rows[1].HeadStart < rows[2].HeadStart) {
		t.Errorf("head start not increasing: %v %v %v", rows[0].HeadStart, rows[1].HeadStart, rows[2].HeadStart)
	}
}

func TestFig2MSPlayerWins(t *testing.T) {
	series := Fig2(sink(t), smokeOpt())
	if len(series) != 3 {
		t.Fatalf("series = %d, want 3", len(series))
	}
	wifi, lte, ms := series[0], series[1], series[2]
	if len(ms.Samples) == 0 || len(wifi.Samples) == 0 || len(lte.Samples) == 0 {
		t.Fatal("missing samples")
	}
	if ms.Summary.Median >= wifi.Summary.Median || ms.Summary.Median >= lte.Summary.Median {
		t.Fatalf("MSPlayer median %.2f not below WiFi %.2f / LTE %.2f",
			ms.Summary.Median, wifi.Summary.Median, lte.Summary.Median)
	}
	// The paper's reduction vs the best single path is ~37%; accept a
	// broad band around it on the emulated substrate.
	best := wifi.Summary.Median
	if lte.Summary.Median < best {
		best = lte.Summary.Median
	}
	red := 1 - ms.Summary.Median/best
	if red < 0.15 || red > 0.60 {
		t.Fatalf("reduction = %.0f%%, want 15-60%%", red*100)
	}
}

func TestMobilityMSPlayerAvoidsStalls(t *testing.T) {
	if testing.Short() {
		t.Skip("full-clip outage runs are the slowest smoke tests")
	}
	res := Mobility(sink(t), Options{Reps: 2, Seed: 7})
	if len(res) != 2 {
		t.Fatalf("results = %d", len(res))
	}
	ms, wifi := res[0], res[1]
	if ms.Completed == 0 {
		t.Fatal("MSPlayer never completed under outage")
	}
	if ms.MeanStallSecs >= wifi.MeanStallSecs {
		t.Fatalf("MSPlayer stalls (%.1fs) should be below WiFi-only (%.1fs)",
			ms.MeanStallSecs, wifi.MeanStallSecs)
	}
	if wifi.MeanStallSecs < 5 {
		t.Fatalf("WiFi-only mean stall %.1fs implausibly low for a 45s outage", wifi.MeanStallSecs)
	}
}

func TestTable1SharesInBand(t *testing.T) {
	rows := Table1(sink(t), Options{Reps: 3, Seed: 11})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PreMean < 0.45 || r.PreMean > 0.85 {
			t.Errorf("%v pre share = %.2f, want WiFi-dominant band", r.Size, r.PreMean)
		}
		if r.ReMean < 0.45 || r.ReMean > 0.85 {
			t.Errorf("%v re share = %.2f, want WiFi-dominant band", r.Size, r.ReMean)
		}
	}
}

func TestFig5LargerChunksRefillFaster(t *testing.T) {
	// Single 40s refill row with tiny rep count: asserts 64KB slower
	// than 256KB on the same path and MSPlayer fastest. (The 20s row's
	// MSPlayer and WiFi-256KB distributions overlap, in the paper as
	// here, so the well-separated 40s row is the robust smoke check.)
	if testing.Short() {
		t.Skip("steady-state refill sessions are among the slowest smoke tests")
	}
	opt := Options{Reps: 3, Seed: 5, Parallel: 8}
	rows := Fig5For(sink(t), opt, 40*time.Second)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	r := rows[0]
	if r.WiFi64.Summary.Median <= r.WiFi256.Summary.Median {
		t.Errorf("WiFi 64KB (%.2f) should be slower than 256KB (%.2f)",
			r.WiFi64.Summary.Median, r.WiFi256.Summary.Median)
	}
	if r.MSPlayer.Summary.Median >= r.WiFi256.Summary.Median ||
		r.MSPlayer.Summary.Median >= r.LTE256.Summary.Median {
		t.Errorf("MSPlayer (%.2f) should beat single-path 256KB (wifi %.2f, lte %.2f)",
			r.MSPlayer.Summary.Median, r.WiFi256.Summary.Median, r.LTE256.Summary.Median)
	}
}
