package bench

import (
	"testing"
)

// TestFleetSmokeDeterministic runs the fleet smoke scenario twice at a
// fixed seed and asserts the rendered QoE summaries are byte-identical
// — the determinism contract the fleet engine makes — plus basic shape
// checks on the population's pre-buffering results.
func TestFleetSmokeDeterministic(t *testing.T) {
	rep1, err := FleetSmoke(sink(t), Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := FleetSmoke(sink(t), Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := rep1.String(), rep2.String(); a != b {
		t.Fatalf("fleet summaries differ across identical runs:\n--- run 1\n%s--- run 2\n%s", a, b)
	}
	if rep1.Fleet.Errored != 0 {
		t.Fatalf("%d sessions errored", rep1.Fleet.Errored)
	}
	if rep1.Fleet.PreBuffered != rep1.Fleet.Sessions {
		t.Fatalf("pre-buffered %d/%d sessions", rep1.Fleet.PreBuffered, rep1.Fleet.Sessions)
	}
	p50, p99 := rep1.Fleet.PreBuffer.Quantile(0.5), rep1.Fleet.PreBuffer.Quantile(0.99)
	if p50 <= 0 || p99 < p50 {
		t.Fatalf("implausible pre-buffer percentiles: p50=%.2f p99=%.2f", p50, p99)
	}
	if f := rep1.Fleet.Fairness(); f < 0.8 {
		t.Fatalf("fairness %.3f implausibly low for identical sessions", f)
	}
	// A changed seed must change the summary (the flip side of the
	// determinism contract).
	rep3, err := FleetSmoke(sink(t), Options{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if rep3.String() == rep1.String() {
		t.Fatal("different seed produced an identical summary")
	}
}
