package bench

import (
	"fmt"
	"io"
	"time"

	"repro"
)

// Fig5Row holds the competitors for one re-buffering size of Figure 5:
// commercial-style single-path players with fixed 64 KB (Adobe Flash)
// and 256 KB (HTML5) chunks, against MSPlayer.
type Fig5Row struct {
	Refill   time.Duration
	WiFi64   Series
	WiFi256  Series
	LTE64    Series
	LTE256   Series
	MSPlayer Series
}

// fig5Cycles is the number of re-buffering cycles averaged per session.
const fig5Cycles = 3

// Fig5 reproduces Figure 5: time to refill the playout buffer with
// 20/40/60 seconds of video over the YouTube-like service, comparing
// single-path fixed-chunk commercial players (64/256 KB over WiFi and
// LTE) with MSPlayer (Harmonic, 256 KB initial chunks).
func Fig5(w io.Writer, opt Options) []Fig5Row {
	return Fig5For(w, opt, 20*time.Second, 40*time.Second, 60*time.Second)
}

// Fig5For runs the Figure 5 comparison for specific re-buffering sizes.
func Fig5For(w io.Writer, opt Options, refills ...time.Duration) []Fig5Row {
	opt = opt.withDefaults()
	header(w, "Figure 5: re-buffering with 64/256KB chunks on YouTube-like service")
	var out []Fig5Row
	for _, refill := range refills {
		refill := refill
		run := func(label string, sel msplayer.PathSelection, mk func() msplayer.Scheduler) Series {
			samples := repeat(w, opt, func(rep int) (float64, error) {
				p := msplayer.YouTubeProfile(opt.Seed + int64(rep)*13)
				return refillTimes(p, sel, mk(), refill, fig5Cycles)
			})
			s := newSeries(fmt.Sprintf("%s refill=%ds", label, int(refill.Seconds())), samples)
			fmtRow(w, s)
			return s
		}
		row := Fig5Row{Refill: refill}
		row.WiFi64 = run("WiFi 64KB", msplayer.WiFiOnly, func() msplayer.Scheduler {
			return msplayer.NewFixedScheduler(64 << 10)
		})
		row.WiFi256 = run("WiFi 256KB", msplayer.WiFiOnly, func() msplayer.Scheduler {
			return msplayer.NewFixedScheduler(256 << 10)
		})
		row.LTE64 = run("LTE 64KB", msplayer.LTEOnly, func() msplayer.Scheduler {
			return msplayer.NewFixedScheduler(64 << 10)
		})
		row.LTE256 = run("LTE 256KB", msplayer.LTEOnly, func() msplayer.Scheduler {
			return msplayer.NewFixedScheduler(256 << 10)
		})
		row.MSPlayer = run("MSPlayer", msplayer.BothPaths, func() msplayer.Scheduler {
			return msplayer.NewHarmonicScheduler(256<<10, msplayer.DefaultDelta)
		})
		out = append(out, row)
	}
	return out
}
