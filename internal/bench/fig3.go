package bench

import (
	"fmt"
	"io"
	"time"

	"repro"
)

// Fig3Cell identifies one cell of the Figure 3 sweep.
type Fig3Cell struct {
	Scheduler string        // "harmonic", "ewma", "ratio"
	PreBuffer time.Duration // 20/40/60 s
	Chunk     int64         // 16 KB .. 1 MB initial chunk size
	Series    Series
}

// Fig3Schedulers are the schedulers compared in Figure 3.
var Fig3Schedulers = []string{"harmonic", "ewma", "ratio"}

// Fig3PreBuffers are the pre-buffering durations of Figure 3.
var Fig3PreBuffers = []time.Duration{20 * time.Second, 40 * time.Second, 60 * time.Second}

// Fig3Chunks are the initial chunk sizes of Figure 3.
var Fig3Chunks = []int64{16 << 10, 64 << 10, 256 << 10, 1 << 20}

// NewSchedulerByName builds a Figure 3 scheduler with the paper's
// parameters (δ = 5%, α = 0.9).
func NewSchedulerByName(name string, base int64) msplayer.Scheduler {
	switch name {
	case "harmonic":
		return msplayer.NewHarmonicScheduler(base, msplayer.DefaultDelta)
	case "ewma":
		return msplayer.NewEWMAScheduler(base, msplayer.DefaultDelta, msplayer.DefaultAlpha)
	case "ratio":
		return msplayer.NewRatioScheduler(base)
	default:
		panic("bench: unknown scheduler " + name)
	}
}

// Fig3 reproduces Figure 3: pre-buffer download time for the three
// MSPlayer schedulers across pre-buffering durations (20/40/60 s) and
// initial chunk sizes (16 KB–1 MB). The paper finds download time
// decreasing in chunk size, the Ratio baseline slowest and most
// variable, and Harmonic best with 256 KB ≈ 1 MB.
func Fig3(w io.Writer, opt Options) []Fig3Cell {
	opt = opt.withDefaults()
	header(w, "Figure 3: scheduler x pre-buffer x initial chunk size (emulated testbed)")
	var out []Fig3Cell
	for _, pre := range Fig3PreBuffers {
		for _, chunk := range Fig3Chunks {
			for _, sched := range Fig3Schedulers {
				sched, pre, chunk := sched, pre, chunk
				samples := repeat(w, opt, func(rep int) (float64, error) {
					p := msplayer.TestbedProfile(opt.Seed + int64(rep)*13)
					return preBufferTime(p, msplayer.BothPaths,
						NewSchedulerByName(sched, chunk), pre)
				})
				cell := Fig3Cell{Scheduler: sched, PreBuffer: pre, Chunk: chunk,
					Series: newSeries(fmt.Sprintf("%s %dKB pre=%ds", sched, chunk>>10, int(pre.Seconds())), samples)}
				fmtRow(w, cell.Series)
				out = append(out, cell)
			}
		}
	}
	return out
}
