package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro"
	"repro/internal/stats"
)

// Table1Row is one row of Table 1: the fraction of traffic carried by
// the WiFi path during pre-buffering and re-buffering of a given size,
// with 256 KB initial chunks. The paper measures 60–64% (pre) and
// 56–62% (re).
type Table1Row struct {
	Size    time.Duration
	PreMean float64
	PreStd  float64
	ReMean  float64
	ReStd   float64
}

// Table1 reproduces Table 1 on the YouTube-like service with the
// Harmonic scheduler at 256 KB initial chunks.
func Table1(w io.Writer, opt Options) []Table1Row {
	opt = opt.withDefaults()
	header(w, "Table 1: fraction of traffic over WiFi (mean±std, chunk 256KB)")
	var out []Table1Row
	for _, size := range []time.Duration{20 * time.Second, 40 * time.Second, 60 * time.Second} {
		size := size
		shareOf := func(rep int, phase msplayer.Phase) (float64, error) {
			p := msplayer.YouTubeProfile(opt.Seed + int64(rep)*13)
			tb, err := msplayer.NewTestbed(p)
			if err != nil {
				return 0, err
			}
			defer tb.Close()
			cfg := msplayer.SessionConfig{
				Scheduler: msplayer.NewHarmonicScheduler(256<<10, msplayer.DefaultDelta),
				Paths:     msplayer.BothPaths,
			}
			if phase == msplayer.PhasePreBuffer {
				cfg.Buffer = msplayer.BufferConfig{PreBufferTarget: size}
				cfg.StopAfterPreBuffer = true
			} else {
				cfg.Buffer = msplayer.BufferConfig{RefillSize: size}
				cfg.StopAfterRefills = 2
			}
			m, err := tb.Stream(context.Background(), cfg)
			if err != nil {
				return 0, err
			}
			return m.Share("wifi", phase), nil
		}
		pre := repeat(w, opt, func(rep int) (float64, error) { return shareOf(rep, msplayer.PhasePreBuffer) })
		re := repeat(w, opt, func(rep int) (float64, error) { return shareOf(rep, msplayer.PhaseReBuffer) })
		row := Table1Row{
			Size:    size,
			PreMean: stats.Mean(pre), PreStd: stats.StdDev(pre),
			ReMean: stats.Mean(re), ReStd: stats.StdDev(re),
		}
		fmt.Fprintf(w, "  %2ds  pre %5.1f%% ± %4.1f%%   re %5.1f%% ± %4.1f%%\n",
			int(size.Seconds()), row.PreMean*100, row.PreStd*100, row.ReMean*100, row.ReStd*100)
		out = append(out, row)
	}
	return out
}
