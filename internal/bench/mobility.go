package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro"
	"repro/internal/netem"
	"repro/internal/stats"
)

// MobilityResult summarises the robustness experiment (§2 "Robust Data
// Transport", unreported in the paper): a WiFi outage mid-stream with
// MSPlayer versus a single-path WiFi player.
type MobilityResult struct {
	Label          string
	Completed      int // runs that delivered the whole clip
	Runs           int
	MeanStallSecs  float64
	TotalStallSecs []float64
}

// Mobility streams a full clip while WiFi drops out for a fixed window
// and returns stall statistics for MSPlayer and the WiFi-only baseline.
func Mobility(w io.Writer, opt Options) []MobilityResult {
	opt = opt.withDefaults()
	header(w, "Robustness: 45s WiFi outage during playback (MSPlayer vs single-path WiFi)")
	configs := []struct {
		label string
		sel   msplayer.PathSelection
	}{
		{"MSPlayer", msplayer.BothPaths},
		{"WiFi-only", msplayer.WiFiOnly},
	}
	var out []MobilityResult
	for _, c := range configs {
		c := c
		res := MobilityResult{Label: c.label, Runs: opt.Reps}
		type one struct {
			stall float64
			done  bool
		}
		results := make([]one, opt.Reps)
		for rep := 0; rep < opt.Reps; rep++ {
			stall, done, err := mobilityRun(opt.Seed+int64(rep)*13, c.sel)
			if err != nil {
				fmt.Fprintf(w, "  ! rep %d failed: %v\n", rep, err)
				continue
			}
			results[rep] = one{stall, done}
		}
		for _, r := range results {
			if r.done {
				res.Completed++
			}
			res.TotalStallSecs = append(res.TotalStallSecs, r.stall)
		}
		res.MeanStallSecs = stats.Mean(res.TotalStallSecs)
		fmt.Fprintf(w, "  %-10s completed %d/%d runs, mean stall %.1fs\n",
			res.Label, res.Completed, res.Runs, res.MeanStallSecs)
		out = append(out, res)
	}
	return out
}

func mobilityRun(seed int64, sel msplayer.PathSelection) (stallSecs float64, completed bool, err error) {
	p := msplayer.TestbedProfile(seed)
	tb, err := msplayer.NewTestbed(p)
	if err != nil {
		return 0, false, err
	}
	defer tb.Close()

	// WiFi drops 30 s into the session and returns 45 s later.
	defer tb.Inject(func(p *netem.Participant) {
		p.Sleep(30 * time.Second)
		tb.WiFi().SetAlive(false)
		p.Sleep(45 * time.Second)
		tb.WiFi().SetAlive(true)
	})()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	m, err := tb.Stream(ctx, msplayer.SessionConfig{
		Scheduler: msplayer.NewHarmonicScheduler(256<<10, msplayer.DefaultDelta),
		Paths:     sel,
		Video:     "qjT4T2gU9sM",
	})
	if m == nil {
		return 0, false, err
	}
	var stall time.Duration
	for _, s := range m.Stalls {
		stall += s.Duration
	}
	return stall.Seconds(), err == nil && m.TotalBytes > 0 && m.PreBufferDone, nil
}
