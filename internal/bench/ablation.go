package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro"
)

// Ablations exercise the design choices DESIGN.md calls out: the DCSA
// δ parameter, the EWMA α weight, the out-of-order chunk bound, and the
// fast-path head start.

// AblationDelta sweeps Alg. 1's throughput-variation parameter δ and
// reports 40-second pre-buffer times with the Harmonic scheduler.
func AblationDelta(w io.Writer, opt Options) []Series {
	opt = opt.withDefaults()
	header(w, "Ablation: DCSA delta sweep (Harmonic, 256KB, 40s pre-buffer)")
	var out []Series
	for _, delta := range []float64{0.01, 0.05, 0.10, 0.20} {
		delta := delta
		samples := repeat(w, opt, func(rep int) (float64, error) {
			p := msplayer.TestbedProfile(opt.Seed + int64(rep)*13)
			return preBufferTime(p, msplayer.BothPaths,
				msplayer.NewHarmonicScheduler(256<<10, delta), 40*time.Second)
		})
		s := newSeries(fmt.Sprintf("delta=%.2f", delta), samples)
		fmtRow(w, s)
		out = append(out, s)
	}
	return out
}

// AblationAlpha sweeps the EWMA weight α of Eq. 1.
func AblationAlpha(w io.Writer, opt Options) []Series {
	opt = opt.withDefaults()
	header(w, "Ablation: EWMA alpha sweep (256KB, 40s pre-buffer)")
	var out []Series
	for _, alpha := range []float64{0.5, 0.7, 0.9, 0.99} {
		alpha := alpha
		samples := repeat(w, opt, func(rep int) (float64, error) {
			p := msplayer.TestbedProfile(opt.Seed + int64(rep)*13)
			return preBufferTime(p, msplayer.BothPaths,
				msplayer.NewEWMAScheduler(256<<10, msplayer.DefaultDelta, alpha), 40*time.Second)
		})
		s := newSeries(fmt.Sprintf("alpha=%.2f", alpha), samples)
		fmtRow(w, s)
		out = append(out, s)
	}
	return out
}

// AblationOutOfOrder compares the paper's one-chunk out-of-order bound
// with looser windows: the bound trades a little pre-buffer time for a
// hard cap on reassembly memory.
func AblationOutOfOrder(w io.Writer, opt Options) []Series {
	opt = opt.withDefaults()
	header(w, "Ablation: out-of-order chunk bound (Harmonic, 256KB, 40s pre-buffer)")
	var out []Series
	for _, window := range []int{1, 4, 16} {
		window := window
		samples := repeat(w, opt, func(rep int) (float64, error) {
			p := msplayer.TestbedProfile(opt.Seed + int64(rep)*13)
			tb, err := msplayer.NewTestbed(p)
			if err != nil {
				return 0, err
			}
			defer tb.Close()
			m, err := tb.Stream(context.Background(), msplayer.SessionConfig{
				Scheduler:          msplayer.NewHarmonicScheduler(256<<10, msplayer.DefaultDelta),
				Paths:              msplayer.BothPaths,
				Buffer:             msplayer.BufferConfig{PreBufferTarget: 40 * time.Second},
				StopAfterPreBuffer: true,
				MaxOutOfOrder:      window,
			})
			if err != nil {
				return 0, err
			}
			return m.PreBufferTime.Seconds(), nil
		})
		s := newSeries(fmt.Sprintf("ooo-window=%d", window), samples)
		fmtRow(w, s)
		out = append(out, s)
	}
	return out
}

// AblationEnergy estimates the radio energy of a 40-second pre-buffer
// for MSPlayer and the single-path baselines using the two-component
// radio model (active power + per-transfer tail) — the paper's stated
// future-work dimension. MSPlayer finishes sooner but keeps two radios
// active; the LTE tail energy makes the trade-off visible.
func AblationEnergy(w io.Writer, opt Options) []Series {
	opt = opt.withDefaults()
	header(w, "Ablation: radio energy of a 40s pre-buffer (joules)")
	configs := []struct {
		label string
		sel   msplayer.PathSelection
		mk    func() msplayer.Scheduler
	}{
		{"MSPlayer", msplayer.BothPaths, func() msplayer.Scheduler {
			return msplayer.NewHarmonicScheduler(256<<10, msplayer.DefaultDelta)
		}},
		{"WiFi-only", msplayer.WiFiOnly, msplayer.NewBulkScheduler},
		{"LTE-only", msplayer.LTEOnly, msplayer.NewBulkScheduler},
	}
	var out []Series
	for _, c := range configs {
		c := c
		samples := repeat(w, opt, func(rep int) (float64, error) {
			p := msplayer.TestbedProfile(opt.Seed + int64(rep)*13)
			tb, err := msplayer.NewTestbed(p)
			if err != nil {
				return 0, err
			}
			defer tb.Close()
			m, err := tb.Stream(context.Background(), msplayer.SessionConfig{
				Scheduler:          c.mk(),
				Paths:              c.sel,
				Buffer:             msplayer.BufferConfig{PreBufferTarget: 40 * time.Second},
				StopAfterPreBuffer: true,
			})
			if err != nil {
				return 0, err
			}
			total, _ := msplayer.SessionEnergy(m, msplayer.DefaultRadios())
			return total, nil
		})
		s := newSeries(c.label, samples)
		fmtRow(w, s)
		out = append(out, s)
	}
	return out
}

// AblationHeadStart measures the fast path's bootstrap lead — the time
// between WiFi's and LTE's first completed video chunk, the empirical
// π₂−π₁ of §3.2 — for the paper's RTT ratio and for θ = 1, where the
// closed form predicts the lead collapses to ~0 (only Δ and transfer
// asymmetries remain).
func AblationHeadStart(w io.Writer, opt Options) []Series {
	opt = opt.withDefaults()
	header(w, "Ablation: fast-path head start (LTE first-chunk lag vs WiFi, seconds)")
	configs := []struct {
		label string
		mut   func(*msplayer.Profile)
	}{
		{"theta~2.8 (paper)", func(*msplayer.Profile) {}},
		{"theta=1 (equal RTT)", func(p *msplayer.Profile) { p.LTE.RTT = p.WiFi.RTT }},
	}
	var out []Series
	for _, c := range configs {
		c := c
		samples := repeat(w, opt, func(rep int) (float64, error) {
			p := msplayer.TestbedProfile(opt.Seed + int64(rep)*13)
			c.mut(&p)
			tb, err := msplayer.NewTestbed(p)
			if err != nil {
				return 0, err
			}
			defer tb.Close()
			m, err := tb.Stream(context.Background(), msplayer.SessionConfig{
				Scheduler:          msplayer.NewHarmonicScheduler(256<<10, msplayer.DefaultDelta),
				Paths:              msplayer.BothPaths,
				Buffer:             msplayer.BufferConfig{PreBufferTarget: 40 * time.Second},
				StopAfterPreBuffer: true,
			})
			if err != nil {
				return 0, err
			}
			if len(m.Paths) != 2 || !m.Paths[0].FirstByteSet || !m.Paths[1].FirstByteSet {
				return 0, fmt.Errorf("first-byte times missing")
			}
			return (m.Paths[1].FirstVideoByte - m.Paths[0].FirstVideoByte).Seconds(), nil
		})
		s := newSeries(c.label, samples)
		fmtRow(w, s)
		out = append(out, s)
	}
	return out
}
