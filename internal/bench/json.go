package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/fleet"
)

// Experiment is one benchmarked experiment in a BENCH_*.json artifact:
// its headline metrics plus the wall time and allocation cost of
// producing them, so successive PRs can track the perf trajectory of
// the reproduction alongside its scientific outputs.
type Experiment struct {
	Name       string  `json:"name"`
	WallSecs   float64 `json:"wall_secs"`
	Allocs     uint64  `json:"allocs"`
	AllocBytes uint64  `json:"alloc_bytes"`
	// PeakGoroutines and PeakHeapBytes are sampled over the run by a
	// wall-clock poller: the highest live-goroutine count and heap-alloc
	// size observed. They are the footprint half of the event-loop
	// engine's story — the QoE metrics must not move when the engine
	// changes, these must.
	PeakGoroutines int64              `json:"peak_goroutines,omitempty"`
	PeakHeapBytes  uint64             `json:"peak_heap_bytes,omitempty"`
	Metrics        map[string]float64 `json:"metrics"`
}

// Artifact is the top-level BENCH_*.json document. GoVersion, NumCPU
// and GOMAXPROCS describe the machine and runtime configuration that
// produced the numbers: wall-time comparisons against an artifact from
// a different configuration are noise, and the guard warns on them.
type Artifact struct {
	Kind        string       `json:"kind"` // "fleet" or "figs"
	GoVersion   string       `json:"go_version"`
	NumCPU      int          `json:"num_cpu"`
	GoMaxProcs  int          `json:"gomaxprocs,omitempty"`
	Seed        int64        `json:"seed"`
	Experiments []Experiment `json:"experiments"`
}

// newArtifact stamps an artifact with the current runtime environment.
func newArtifact(kind string, seed int64) *Artifact {
	return &Artifact{
		Kind:       kind,
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Seed:       seed,
	}
}

// measure runs fn and captures its wall time and allocation cost.
// Allocation counts include everything the process does concurrently,
// so run measured experiments sequentially.
func measure(name string, metrics map[string]float64, fn func() error) (Experiment, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	// Peak sampler: a real-time poller alongside the experiment,
	// recording the highest goroutine count and heap size it sees. The
	// 5ms period keeps ReadMemStats' stop-the-world pauses to well under
	// 1% of the run; a sampler necessarily reads between the peaks, so
	// the recorded values are floors on the true maxima — comparable
	// across runs, which is all the trajectory needs. The sampler itself
	// is one of the goroutines it counts.
	var peakG int64
	var peakHeap uint64
	stop := make(chan struct{})
	sampled := make(chan struct{})
	go func() { //detlint:allow baredgo -- footprint sampler lives outside the emulation; joined via channels before the measurement returns
		defer close(sampled)
		var ms runtime.MemStats
		for {
			if n := int64(runtime.NumGoroutine()); n > peakG {
				peakG = n
			}
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peakHeap {
				peakHeap = ms.HeapAlloc
			}
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond): //detlint:allow wallclock -- footprint sampler polls in real time, outside the emulation
			}
		}
	}()
	start := time.Now() //detlint:allow wallclock -- harness records wall-clock duration for the report
	err := fn()
	wall := time.Since(start) //detlint:allow wallclock -- harness records wall-clock duration for the report
	close(stop)
	<-sampled
	runtime.ReadMemStats(&after)
	return Experiment{
		Name:           name,
		WallSecs:       wall.Seconds(),
		Allocs:         after.Mallocs - before.Mallocs,
		AllocBytes:     after.TotalAlloc - before.TotalAlloc,
		PeakGoroutines: peakG,
		PeakHeapBytes:  peakHeap,
		Metrics:        metrics,
	}, err
}

// fleetMetrics extracts the headline QoE numbers of a fleet report,
// plus the edge tier's aggregate books when the scenario has one.
func fleetMetrics(rep *fleet.Report) map[string]float64 {
	a := &rep.Fleet
	m := map[string]float64{
		"sessions":        float64(a.Sessions),
		"completed":       float64(a.Completed),
		"virtual_elapsed": rep.Elapsed.Seconds(),
		"prebuffer_p50_s": a.PreBuffer.Quantile(0.50),
		"prebuffer_p95_s": a.PreBuffer.Quantile(0.95),
		"prebuffer_p99_s": a.PreBuffer.Quantile(0.99),
		"stall_rate":      a.StallRate(),
		"goodput_mean":    a.Goodput.Mean(),
		"fairness_jain":   a.Fairness(),
		"wifi_share":      a.WiFiShare(),
	}
	if len(rep.Edges) > 0 {
		var hits, misses, fills, evictions, backhaul int64
		for _, e := range rep.Edges {
			hits += e.Hits
			misses += e.Misses
			fills += e.Fills
			evictions += e.Evictions
			backhaul += e.BackhaulBytes
		}
		if hits+misses > 0 {
			m["edge_hit_ratio"] = float64(hits) / float64(hits+misses)
		}
		m["edge_fills"] = float64(fills)
		m["edge_evictions"] = float64(evictions)
		m["edge_backhaul_bytes"] = float64(backhaul)
	}
	if len(rep.Faults) > 0 {
		recovered := 0
		for _, w := range rep.Faults {
			if w.Recovered {
				recovered++
			}
		}
		m["faults"] = float64(len(rep.Faults))
		m["faults_recovered"] = float64(recovered)
		m["failovers"] = float64(a.Failovers)
		m["timeouts"] = float64(a.Timeouts)
		m["rebootstraps"] = float64(a.Rebootstraps)
		m["breaker_opens"] = float64(a.BreakerOpens)
		m["half_open_probes"] = float64(a.HalfOpenProbes)
		m["hedges"] = float64(a.Hedges)
		m["hedges_won"] = float64(a.HedgesWon)
		m["hedge_wasted_bytes"] = float64(a.HedgeWastedBytes)
		m["fault_downtime_seconds"] = rep.FaultDowntimeSeconds()
		m["fault_stall_seconds"] = rep.FaultStallSeconds()
	}
	return m
}

// FleetArtifact runs the fleet-scale benchmarks — the flashcrowd
// start-up study, the densecrowd population stress, the megacrowd
// 20k-session scale proof, the coldedge cache-stampede study, the
// originstorm/edgeflap fault-plan studies, and the chaosfleet
// randomized-storm sweep — at the given session counts (a count of 0
// skips that experiment; chaosSeeds counts chaos seeds, not sessions)
// and returns the artifact for BENCH_fleet.json.
func FleetArtifact(w io.Writer, opt Options, flashSessions, denseSessions, megaSessions, coldEdgeSessions, stormSessions, flapSessions, chaosSeeds int) (*Artifact, error) {
	opt = opt.withDefaults()
	art := newArtifact("fleet", opt.Seed)
	for _, c := range []struct {
		scenario string
		sessions int
	}{
		{"flashcrowd", flashSessions},
		{"densecrowd", denseSessions},
		{"megacrowd", megaSessions},
		{"coldedge", coldEdgeSessions},
		{"originstorm", stormSessions},
		{"edgeflap", flapSessions},
	} {
		if c.sessions <= 0 {
			continue
		}
		// Return the previous experiment's garbage to the OS before
		// measuring the next one: at GOGC=400 a mega-scale run leaves a
		// multi-GB collection ceiling behind, and on a memory-tight
		// runner the retained RSS turns every later experiment's wall
		// time into a paging benchmark. Freeing between experiments
		// makes wall, alloc and peak_* numbers attributable to their own
		// experiment (virtual-time metrics are unaffected either way).
		debug.FreeOSMemory()
		sc, err := fleet.Builtin(c.scenario, c.sessions, opt.Seed)
		if err != nil {
			return nil, err
		}
		// The benchmarks run on the event-loop engine: the QoE metrics are
		// byte-identical to the goroutine engine's per seed (the cross-
		// engine parity tests pin that), while peak_goroutines and
		// peak_heap_bytes record the footprint the engine exists to bound.
		sc.Engine = fleet.EngineEventLoop
		var rep *fleet.Report
		exp, err := measure(fmt.Sprintf("%s_%d", c.scenario, c.sessions), nil, func() error {
			var rerr error
			rep, rerr = fleet.Run(context.Background(), sc)
			return rerr
		})
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", c.scenario, err)
		}
		exp.Metrics = fleetMetrics(rep)
		fmt.Fprintf(w, "  %-18s wall=%6.2fs allocs=%d  p50=%.3fs sessions=%d  peak_goroutines=%d peak_heap=%.1fMB\n",
			exp.Name, exp.WallSecs, exp.Allocs, exp.Metrics["prebuffer_p50_s"], int(exp.Metrics["sessions"]),
			exp.PeakGoroutines, float64(exp.PeakHeapBytes)/(1<<20))
		art.Experiments = append(art.Experiments, exp)
	}
	if chaosSeeds > 0 {
		exp, err := chaosExperiment(opt, chaosSeeds)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "  %-18s wall=%6.2fs allocs=%d  p99=%.3fs seeds=%d  hedges=%d breaker_opens=%d\n",
			exp.Name, exp.WallSecs, exp.Allocs, exp.Metrics["prebuffer_p99_s"], chaosSeeds,
			int(exp.Metrics["hedges"]), int(exp.Metrics["breaker_opens"]))
		art.Experiments = append(art.Experiments, exp)
	}
	return art, nil
}

// chaosExperiment runs the chaosfleet randomized-storm sweep: the base
// seed's run is the measured experiment (its name, chaosfleet_150,
// parses for the wall-regression guard, which re-runs exactly that base
// configuration), and the remaining seeds of the sweep run unmeasured —
// every run passes fleet.CheckInvariants, and the sweep's resilience
// totals (hedges, breaker opens, worst p99 pre-buffer under chaos) ride
// along in the metrics block.
func chaosExperiment(opt Options, chaosSeeds int) (Experiment, error) {
	const sessions = 150
	run := func(seed int64) (*fleet.Report, error) {
		sc, err := fleet.Builtin("chaosfleet", sessions, seed)
		if err != nil {
			return nil, err
		}
		sc.Engine = fleet.EngineEventLoop
		rep, err := fleet.Run(context.Background(), sc)
		if err != nil {
			return nil, err
		}
		if err := fleet.CheckInvariants(rep); err != nil {
			return nil, fmt.Errorf("bench: chaosfleet seed %d: %w", seed, err)
		}
		return rep, nil
	}
	debug.FreeOSMemory()
	var rep *fleet.Report
	exp, err := measure(fmt.Sprintf("chaosfleet_%d", sessions), nil, func() error {
		var rerr error
		rep, rerr = run(opt.Seed)
		return rerr
	})
	if err != nil {
		return exp, fmt.Errorf("bench: chaosfleet: %w", err)
	}
	exp.Metrics = fleetMetrics(rep)
	hedges, opens, worstP99 := rep.Fleet.Hedges, rep.Fleet.BreakerOpens, rep.Fleet.PreBuffer.Quantile(0.99)
	for i := 1; i < chaosSeeds; i++ {
		debug.FreeOSMemory()
		r, err := run(opt.Seed + int64(i))
		if err != nil {
			return exp, err
		}
		hedges += r.Fleet.Hedges
		opens += r.Fleet.BreakerOpens
		if p := r.Fleet.PreBuffer.Quantile(0.99); p > worstP99 {
			worstP99 = p
		}
	}
	exp.Metrics["chaos_seeds"] = float64(chaosSeeds)
	exp.Metrics["hedges"] = float64(hedges)
	exp.Metrics["breaker_opens"] = float64(opens)
	exp.Metrics["prebuffer_p99_worst_s"] = worstP99
	return exp, nil
}

// FigsArtifact runs the paper-figure experiments at the given
// repetition count and returns the artifact for BENCH_figs.json.
func FigsArtifact(w io.Writer, opt Options) (*Artifact, error) {
	opt = opt.withDefaults()
	art := newArtifact("figs", opt.Seed)
	add := func(name string, fn func() map[string]float64) {
		var metrics map[string]float64
		exp, _ := measure(name, nil, func() error {
			metrics = fn()
			return nil
		})
		exp.Metrics = metrics
		fmt.Fprintf(w, "  %-18s wall=%6.2fs allocs=%d\n", exp.Name, exp.WallSecs, exp.Allocs)
		art.Experiments = append(art.Experiments, exp)
	}
	add("fig1_handshake", func() map[string]float64 {
		rows := Fig1(io.Discard, opt)
		m := map[string]float64{}
		for _, r := range rows {
			m[fmt.Sprintf("eta_theta%.0f_ms", r.Theta)] = r.EtaMeasured.Seconds() * 1000
			m[fmt.Sprintf("psi_theta%.0f_ms", r.Theta)] = r.PsiMeasured.Seconds() * 1000
		}
		return m
	})
	add("fig2_prebuffer", func() map[string]float64 {
		s := Fig2(io.Discard, opt)
		m := map[string]float64{}
		for _, row := range s {
			m[row.Label+"_med_s"] = row.Summary.Median
		}
		return m
	})
	add("fig4_youtube", func() map[string]float64 {
		rows := Fig4(io.Discard, opt)
		m := map[string]float64{}
		for _, r := range rows {
			m[fmt.Sprintf("reduction_%ds_pct", int(r.PreBuffer.Seconds()))] = r.Reduction * 100
		}
		return m
	})
	add("table1_share", func() map[string]float64 {
		rows := Table1(io.Discard, opt)
		m := map[string]float64{}
		for _, r := range rows {
			m[fmt.Sprintf("wifi_pre_%ds_pct", int(r.Size.Seconds()))] = r.PreMean * 100
		}
		return m
	})
	return art, nil
}

// WriteArtifact marshals art to path as indented JSON.
func WriteArtifact(path string, art *Artifact) error {
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
