package bench

import (
	"io"
	"time"

	"repro"
)

// Fig2 reproduces Figure 2: initial download time of a 40-second
// pre-buffer on the emulated testbed, for single-path WiFi, single-path
// LTE, and MSPlayer with the Ratio scheduler at 1 MB initial chunks.
// The paper reports medians of 10.9 s (WiFi) and 6.9 s (MSPlayer), a
// 37% reduction over the best single path.
func Fig2(w io.Writer, opt Options) []Series {
	opt = opt.withDefaults()
	header(w, "Figure 2: 40-sec pre-buffering download time (emulated testbed)")
	const preTarget = 40 * time.Second

	configs := []struct {
		label string
		sel   msplayer.PathSelection
		mk    func() msplayer.Scheduler
	}{
		{"WiFi", msplayer.WiFiOnly, msplayer.NewBulkScheduler},
		{"LTE", msplayer.LTEOnly, msplayer.NewBulkScheduler},
		{"MSPlayer", msplayer.BothPaths, func() msplayer.Scheduler {
			return msplayer.NewRatioScheduler(1 << 20)
		}},
	}
	var out []Series
	for _, c := range configs {
		c := c
		samples := repeat(w, opt, func(rep int) (float64, error) {
			p := msplayer.TestbedProfile(opt.Seed + int64(rep)*13)
			return preBufferTime(p, c.sel, c.mk(), preTarget)
		})
		s := newSeries(c.label, samples)
		fmtRow(w, s)
		out = append(out, s)
	}
	return out
}
