package bench

import (
	"fmt"
	"io"
	"time"

	"repro"
)

// Fig4Row is one pre-buffering duration of Figure 4 with the three
// competing players.
type Fig4Row struct {
	PreBuffer time.Duration
	WiFi      Series
	LTE       Series
	MSPlayer  Series
	// Reduction is MSPlayer's median start-up delay reduction relative
	// to the best single path (the paper reports 12/21/28% for
	// 20/40/60 s).
	Reduction float64
}

// Fig4 reproduces Figure 4: pre-buffering 20/40/60 seconds of video over
// the YouTube-like service for single-path WiFi, single-path LTE, and
// MSPlayer (Harmonic, 256 KB initial chunks).
func Fig4(w io.Writer, opt Options) []Fig4Row {
	opt = opt.withDefaults()
	header(w, "Figure 4: pre-buffering 20/40/60s on YouTube-like service")
	var out []Fig4Row
	for _, pre := range []time.Duration{20 * time.Second, 40 * time.Second, 60 * time.Second} {
		pre := pre
		run := func(sel msplayer.PathSelection, mk func() msplayer.Scheduler) Series {
			samples := repeat(w, opt, func(rep int) (float64, error) {
				p := msplayer.YouTubeProfile(opt.Seed + int64(rep)*13)
				return preBufferTime(p, sel, mk(), pre)
			})
			return newSeries("", samples)
		}
		row := Fig4Row{PreBuffer: pre}
		row.WiFi = run(msplayer.WiFiOnly, msplayer.NewBulkScheduler)
		row.WiFi.Label = fmt.Sprintf("WiFi pre=%ds", int(pre.Seconds()))
		row.LTE = run(msplayer.LTEOnly, msplayer.NewBulkScheduler)
		row.LTE.Label = fmt.Sprintf("LTE pre=%ds", int(pre.Seconds()))
		row.MSPlayer = run(msplayer.BothPaths, func() msplayer.Scheduler {
			return msplayer.NewHarmonicScheduler(256<<10, msplayer.DefaultDelta)
		})
		row.MSPlayer.Label = fmt.Sprintf("MSPlayer pre=%ds", int(pre.Seconds()))

		best := row.WiFi.Summary.Median
		if row.LTE.Summary.Median < best {
			best = row.LTE.Summary.Median
		}
		if best > 0 {
			row.Reduction = 1 - row.MSPlayer.Summary.Median/best
		}
		fmtRow(w, row.WiFi)
		fmtRow(w, row.LTE)
		fmtRow(w, row.MSPlayer)
		fmt.Fprintf(w, "  -> start-up delay reduction vs best single path: %.0f%%\n", row.Reduction*100)
		out = append(out, row)
	}
	return out
}
