package bench

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"repro/internal/handshake"
	"repro/internal/netem"
)

// Fig1Row compares the measured secure-bootstrap timings over one
// emulated path against the paper's closed forms (Fig. 1 / §3.2):
// η = 4R+Δ₁+Δ₂ to establish the secure connection, ψ = 6R+Δ₁+Δ₂ to
// receive the complete JSON, and the head start 10(θ−1)R₁ the fast path
// gains over a path with θ× the RTT.
type Fig1Row struct {
	RTT         time.Duration
	Theta       float64
	EtaMeasured time.Duration
	EtaModel    time.Duration
	PsiMeasured time.Duration
	PsiModel    time.Duration
	HeadStart   time.Duration // closed form vs the θ=1 base path
}

// fig1JSONSize approximates the ~20 packets of watch-request JSON.
const fig1JSONSize = 28 * 1024

// Fig1 validates the HTTPS-bootstrap timing model by running the
// message sequence of Fig. 1 over emulated paths with RTT ratios
// θ ∈ {1, 2, 3} and comparing measured η/ψ to the closed forms.
func Fig1(w io.Writer, opt Options) []Fig1Row {
	opt = opt.withDefaults()
	header(w, "Figure 1: HTTPS bootstrap timing model validation")
	params := handshake.Params{Delta1: 4 * time.Millisecond, Delta2: 3 * time.Millisecond}
	baseRTT := 25 * time.Millisecond
	var out []Fig1Row
	for _, theta := range []float64{1, 2, 3} {
		rtt := time.Duration(float64(baseRTT) * theta)
		eta, psi, err := measureBootstrap(rtt, params)
		if err != nil {
			fmt.Fprintf(w, "  ! theta %.1f failed: %v\n", theta, err)
			continue
		}
		row := Fig1Row{
			RTT: rtt, Theta: theta,
			EtaMeasured: eta, EtaModel: params.Eta(rtt),
			PsiMeasured: psi, PsiModel: params.Psi(rtt),
			HeadStart: handshake.HeadStart(baseRTT, rtt),
		}
		fmt.Fprintf(w, "  theta=%.1f RTT=%v  eta %-8v (model %-8v)  psi %-8v (model %-8v)  head-start %v\n",
			theta, rtt, row.EtaMeasured.Round(time.Millisecond), row.EtaModel,
			row.PsiMeasured.Round(time.Millisecond), row.PsiModel, row.HeadStart)
		out = append(out, row)
	}
	return out
}

// measureBootstrap runs the Fig. 1 sequence over a fresh emulated path
// and returns the measured η (secure connection established) and ψ
// (complete JSON received).
func measureBootstrap(rtt time.Duration, params handshake.Params) (eta, psi time.Duration, err error) {
	clock := netem.NewVirtualClock()
	defer clock.Stop()
	network := netem.NewNetwork(clock)
	inner, err := network.Listen("proxy.test:443", 0)
	if err != nil {
		return 0, 0, err
	}
	defer inner.Close()

	// Register the measuring goroutine and spawn the minimal web proxy
	// through the clock, so the virtual clock only advances when both
	// sides are parked and the measured η/ψ are deterministic.
	part := clock.Register()
	defer part.Unregister()

	// Minimal web-proxy: handshake, then one HTTP response with a
	// JSON-sized body.
	clock.Go(func(sp *netem.Participant) {
		c, err := inner.AcceptP(sp)
		if err != nil {
			return
		}
		defer c.Close()
		if nc, ok := c.(*netem.Conn); ok {
			nc.Bind(sp)
		}
		if err := handshake.Server(c, sp, params); err != nil {
			return
		}
		br := bufio.NewReader(c)
		if _, err := http.ReadRequest(br); err != nil {
			return
		}
		body := make([]byte, fig1JSONSize)
		fmt.Fprintf(c, "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n", len(body))
		c.Write(body)
	})

	link := netem.LinkParams{Rate: netem.Mbps(20), Delay: rtt / 2, SlowStart: true}
	iface := network.NewInterface("probe", link, link)
	start := clock.Now()
	conn, err := iface.Dial(context.Background(), "proxy.test:443", part)
	if err != nil {
		return 0, 0, err
	}
	defer conn.Close()
	if err := handshake.Client(conn); err != nil {
		return 0, 0, err
	}
	eta = clock.Now().Sub(start)

	if _, err := io.WriteString(conn, "GET /watch?v=qjT4T2gU9sM HTTP/1.1\r\nHost: proxy.test\r\n\r\n"); err != nil {
		return 0, 0, err
	}
	resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
	if err != nil {
		return 0, 0, err
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return 0, 0, err
	}
	resp.Body.Close()
	psi = clock.Now().Sub(start)

	var _ net.Conn = conn
	return eta, psi, nil
}
