package stats

import (
	"math"
	"math/rand"
	"testing"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDigestEmpty(t *testing.T) {
	var d Digest
	if d.Count() != 0 || d.Mean() != 0 || d.Std() != 0 || d.Min() != 0 || d.Max() != 0 {
		t.Fatalf("empty digest not all-zero: %+v", d.Summary())
	}
	if d.Quantile(0.5) != 0 {
		t.Fatal("empty quantile != 0")
	}
	if (d.Summary() != Summary{}) {
		t.Fatal("empty summary not zero")
	}
	// Merging empties is a no-op.
	d.Merge(nil)
	d.Merge(&Digest{})
	if d.Count() != 0 {
		t.Fatal("merge of empties changed count")
	}
}

func TestDigestSingleton(t *testing.T) {
	var d Digest
	d.Add(42)
	if d.Count() != 1 || !almostEq(d.Mean(), 42) || d.Std() != 0 {
		t.Fatalf("singleton: %+v", d.Summary())
	}
	if !almostEq(d.Min(), 42) || !almostEq(d.Max(), 42) || !almostEq(d.Quantile(0.5), 42) {
		t.Fatalf("singleton quantiles: %+v", d.Summary())
	}

	// Merge empty into singleton and singleton into empty.
	var e Digest
	e.Merge(&d)
	if e.Count() != 1 || !almostEq(e.Mean(), 42) || !almostEq(e.Min(), 42) {
		t.Fatalf("empty.Merge(singleton): %+v", e.Summary())
	}
	d.Merge(&Digest{})
	if d.Count() != 1 || !almostEq(d.Mean(), 42) {
		t.Fatalf("singleton.Merge(empty): %+v", d.Summary())
	}
}

// TestDigestMergeMatchesCombined checks that merging two digests agrees
// with digesting the concatenation — and with the plain slice-based
// summary functions — while under the retention cap.
func TestDigestMergeMatchesCombined(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var xs, ys []float64
	for i := 0; i < 500; i++ {
		xs = append(xs, rng.NormFloat64()*3+10)
	}
	for i := 0; i < 300; i++ {
		ys = append(ys, rng.ExpFloat64()*5)
	}
	var a, b Digest
	for _, x := range xs {
		a.Add(x)
	}
	for _, y := range ys {
		b.Add(y)
	}
	a.Merge(&b)

	all := append(append([]float64(nil), xs...), ys...)
	if a.Count() != int64(len(all)) {
		t.Fatalf("count = %d, want %d", a.Count(), len(all))
	}
	if !almostEq(a.Mean(), Mean(all)) {
		t.Errorf("mean = %v, want %v", a.Mean(), Mean(all))
	}
	if math.Abs(a.Std()-StdDev(all)) > 1e-9 {
		t.Errorf("std = %v, want %v", a.Std(), StdDev(all))
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.95, 0.99, 1} {
		if got, want := a.Quantile(q), Quantile(all, q); !almostEq(got, want) {
			t.Errorf("q%.2f = %v, want %v", q, got, want)
		}
	}
	sum := a.Summary()
	ref := Summarize(all)
	if sum.N != ref.N || !almostEq(sum.Median, ref.Median) || !almostEq(sum.Mean, ref.Mean) {
		t.Errorf("summary = %+v, want %+v", sum, ref)
	}
}

// TestDigestCompression feeds more samples than the cap and checks that
// moments stay exact and quantiles stay close.
func TestDigestCompression(t *testing.T) {
	d := NewDigest(64)
	rng := rand.New(rand.NewSource(3))
	var all []float64
	for i := 0; i < 10_000; i++ {
		x := rng.Float64() * 100
		all = append(all, x)
		d.Add(x)
	}
	if d.Count() != 10_000 {
		t.Fatalf("count = %d", d.Count())
	}
	if !almostEq(d.Mean(), Mean(all)) {
		t.Errorf("mean drifted: %v vs %v", d.Mean(), Mean(all))
	}
	if math.Abs(d.Std()-StdDev(all)) > 1e-9 {
		t.Errorf("std drifted: %v vs %v", d.Std(), StdDev(all))
	}
	if !almostEq(d.Min(), Quantile(all, 0)) || !almostEq(d.Max(), Quantile(all, 1)) {
		t.Errorf("extrema drifted")
	}
	for _, q := range []float64{0.25, 0.5, 0.95} {
		got, want := d.Quantile(q), Quantile(all, q)
		// Uniform [0,100) squeezed through ~150 compress rounds at a tiny
		// cap: quantiles stay within a few percent of exact.
		if math.Abs(got-want) > 5.0 {
			t.Errorf("q%.2f = %v, want about %v", q, got, want)
		}
	}
}

// TestDigestMergeDeterministic: the same Add/Merge sequence must give a
// byte-identical summary every time, including past compression.
func TestDigestMergeDeterministic(t *testing.T) {
	build := func() Summary {
		parts := make([]*Digest, 4)
		for p := range parts {
			parts[p] = NewDigest(32)
			rng := rand.New(rand.NewSource(int64(p) + 1))
			for i := 0; i < 1000; i++ {
				parts[p].Add(rng.NormFloat64())
			}
		}
		total := NewDigest(32)
		for _, p := range parts {
			total.Merge(p)
		}
		return total.Summary()
	}
	if a, b := build(), build(); a != b {
		t.Fatalf("summaries differ across identical runs:\n%v\n%v", a, b)
	}
}

func TestJain(t *testing.T) {
	if Jain(nil) != 0 {
		t.Error("Jain(nil) != 0")
	}
	if Jain([]float64{0, 0}) != 0 {
		t.Error("Jain(zeros) != 0")
	}
	if !almostEq(Jain([]float64{5}), 1) {
		t.Error("singleton not perfectly fair")
	}
	if !almostEq(Jain([]float64{3, 3, 3, 3}), 1) {
		t.Error("equal shares not perfectly fair")
	}
	// One user hogging everything among n: index = 1/n.
	if !almostEq(Jain([]float64{10, 0, 0, 0}), 0.25) {
		t.Errorf("hog index = %v, want 0.25", Jain([]float64{10, 0, 0, 0}))
	}
	got := Jain([]float64{1, 2, 3})
	want := 36.0 / (3 * 14.0)
	if !almostEq(got, want) {
		t.Errorf("Jain(1,2,3) = %v, want %v", got, want)
	}
}
