package stats

import (
	"math"
	"sort"
)

// DefaultDigestCap bounds the number of raw samples a Digest retains for
// quantile queries before it starts compressing.
const DefaultDigestCap = 8192

// Digest is a mergeable sample summary: exact count, mean, variance and
// extrema (maintained with Welford/Chan updates, so they survive any
// number of merges), plus a bounded sample store for quantiles. Below
// the cap quantiles are exact; past it the store is deterministically
// compressed to evenly spaced order statistics, so results remain
// bit-identical for a given sequence of Add/Merge operations regardless
// of wall-clock or scheduling — the property fleet reports rely on.
//
// Digests combine across cohorts: build one per cohort, then Merge them
// into a fleet-level digest. A zero-value Digest is ready to use.
type Digest struct {
	n        int64
	mean, m2 float64
	min, max float64
	capacity int
	vals     []float64 // retained samples; sorted only when compressed
	sorted   bool
}

// NewDigest returns a Digest retaining up to capacity raw samples for
// quantile queries (DefaultDigestCap if capacity <= 0).
func NewDigest(capacity int) *Digest {
	if capacity <= 0 {
		capacity = DefaultDigestCap
	}
	return &Digest{capacity: capacity}
}

func (d *Digest) cap() int {
	if d.capacity <= 0 {
		return DefaultDigestCap
	}
	return d.capacity
}

// Add folds one sample into the digest.
func (d *Digest) Add(x float64) {
	d.n++
	delta := x - d.mean
	d.mean += delta / float64(d.n)
	d.m2 += delta * (x - d.mean)
	if d.n == 1 || x < d.min {
		d.min = x
	}
	if d.n == 1 || x > d.max {
		d.max = x
	}
	d.vals = append(d.vals, x)
	d.sorted = false
	if len(d.vals) > 2*d.cap() {
		d.compress()
	}
}

// Merge folds o into d; o is unchanged. Merging preserves exact count,
// mean, variance and extrema; the quantile store concatenates (and
// compresses past the cap).
func (d *Digest) Merge(o *Digest) {
	if o == nil || o.n == 0 {
		return
	}
	if d.n == 0 {
		d.min, d.max = o.min, o.max
	} else {
		if o.min < d.min {
			d.min = o.min
		}
		if o.max > d.max {
			d.max = o.max
		}
	}
	// Chan et al. parallel variance combination.
	n1, n2 := float64(d.n), float64(o.n)
	delta := o.mean - d.mean
	d.mean += delta * n2 / (n1 + n2)
	d.m2 += o.m2 + delta*delta*n1*n2/(n1+n2)
	d.n += o.n
	d.vals = append(d.vals, o.vals...)
	d.sorted = false
	if len(d.vals) > 2*d.cap() {
		d.compress()
	}
}

// compress shrinks the sample store to cap evenly spaced order
// statistics. Deterministic: depends only on the stored values.
func (d *Digest) compress() {
	sort.Float64s(d.vals)
	c := d.cap()
	out := make([]float64, c)
	for i := 0; i < c; i++ {
		pos := float64(i) / float64(c-1) * float64(len(d.vals)-1)
		out[i] = d.vals[int(math.Round(pos))]
	}
	d.vals = out
	d.sorted = true
}

// Count returns the number of samples folded in.
func (d *Digest) Count() int64 { return d.n }

// Mean returns the exact mean, or 0 when empty.
func (d *Digest) Mean() float64 { return d.mean }

// Std returns the exact sample standard deviation (n-1 denominator), or
// 0 with fewer than two samples.
func (d *Digest) Std() float64 {
	if d.n < 2 {
		return 0
	}
	return math.Sqrt(d.m2 / float64(d.n-1))
}

// Min returns the smallest sample, or 0 when empty.
func (d *Digest) Min() float64 { return d.min }

// Max returns the largest sample, or 0 when empty.
func (d *Digest) Max() float64 { return d.max }

// Quantile returns the q-th quantile (0 <= q <= 1) from the sample
// store — exact while the store is below its cap — or 0 when empty.
func (d *Digest) Quantile(q float64) float64 {
	if len(d.vals) == 0 {
		return 0
	}
	if !d.sorted {
		sort.Float64s(d.vals)
		d.sorted = true
	}
	return quantileSorted(d.vals, q)
}

// Summary renders the digest as a five-number Summary. Quartiles come
// from the (possibly compressed) sample store; N, Mean and Std are
// exact.
func (d *Digest) Summary() Summary {
	if d.n == 0 {
		return Summary{}
	}
	return Summary{
		N:      int(d.n),
		Min:    d.min,
		Q1:     d.Quantile(0.25),
		Median: d.Quantile(0.5),
		Q3:     d.Quantile(0.75),
		Max:    d.max,
		Mean:   d.mean,
		Std:    d.Std(),
	}
}

// Jain returns Jain's fairness index of xs: (Σx)² / (n·Σx²), 1 when all
// shares are equal, approaching 1/n under maximal unfairness. Empty or
// all-zero input yields 0.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
