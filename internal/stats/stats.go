// Package stats provides the small set of summary statistics used by the
// MSPlayer benchmark harness: means, standard deviations, quantiles and
// five-number summaries for download-time distributions.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (n-1 denominator),
// or 0 when fewer than two samples are present.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics, or 0 for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

// quantileSorted interpolates the q-th quantile of an ascending slice;
// the shared core of Quantile and Digest.Quantile.
func quantileSorted(s []float64, q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// HarmonicMean returns the harmonic mean of xs; entries <= 0 are skipped.
func HarmonicMean(xs []float64) float64 {
	n := 0
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		s += 1 / x
		n++
	}
	if n == 0 || s == 0 {
		return 0
	}
	return float64(n) / s
}

// Summary is a five-number summary plus mean and standard deviation.
type Summary struct {
	N      int
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
	Mean   float64
	Std    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Min:    Quantile(xs, 0),
		Q1:     Quantile(xs, 0.25),
		Median: Quantile(xs, 0.5),
		Q3:     Quantile(xs, 0.75),
		Max:    Quantile(xs, 1),
		Mean:   Mean(xs),
		Std:    StdDev(xs),
	}
}

// String renders the summary as a compact boxplot row.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.2f q1=%.2f med=%.2f q3=%.2f max=%.2f mean=%.2f std=%.2f",
		s.N, s.Min, s.Q1, s.Median, s.Q3, s.Max, s.Mean, s.Std)
}
