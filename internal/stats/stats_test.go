package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-2.138089935) > 1e-6 {
		t.Errorf("StdDev = %v, want ~2.138", got)
	}
	if StdDev([]float64{3}) != 0 {
		t.Error("StdDev of one sample should be 0")
	}
	if StdDev(nil) != 0 {
		t.Error("StdDev of nil should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("Quantile of nil should be 0")
	}
	// Out-of-range q is clamped.
	if got := Quantile(xs, -1); got != 1 {
		t.Errorf("Quantile(-1) = %v, want 1", got)
	}
	if got := Quantile(xs, 2); got != 5 {
		t.Errorf("Quantile(2) = %v, want 5", got)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestHarmonicMean(t *testing.T) {
	if got := HarmonicMean([]float64{1, 4, 4}); !almostEqual(got, 2) {
		t.Errorf("HarmonicMean = %v, want 2", got)
	}
	// Non-positive entries are skipped.
	if got := HarmonicMean([]float64{0, -3, 1, 4, 4}); !almostEqual(got, 2) {
		t.Errorf("HarmonicMean with junk = %v, want 2", got)
	}
	if HarmonicMean(nil) != 0 {
		t.Error("HarmonicMean(nil) should be 0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Error("empty summary should have N=0")
	}
}

// Property: the harmonic mean never exceeds the arithmetic mean, and both
// lie within [min, max] of the (positive) sample.
func TestHarmonicLEArithmetic(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if x > 0 && !math.IsInf(x, 0) && !math.IsNaN(x) && x < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		h, a := HarmonicMean(xs), Mean(xs)
		return h <= a*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotone(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsInf(x, 0) && !math.IsNaN(x) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a := math.Abs(math.Mod(q1, 1))
		b := math.Abs(math.Mod(q2, 1))
		if a > b {
			a, b = b, a
		}
		return Quantile(xs, a) <= Quantile(xs, b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
