// Package msplayer is a reproduction of "MSPlayer: Multi-Source and
// multi-Path LeverAged YoutubER" (Chen, Towsley, Khalili — CoNEXT 2014):
// a client-based video streaming system that aggregates bandwidth across
// two network paths (WiFi + LTE) and multiple replicated video sources
// using plain HTTP range requests over legacy TCP.
//
// The package exposes three layers:
//
//   - The player: Testbed.Stream (or NewSession for long-lived control)
//     runs an MSPlayer session with a pluggable chunk scheduler (Ratio
//     baseline, or the dynamic EWMA / Harmonic schedulers of the paper's
//     Alg. 1) against any pair of network paths, and reports QoE metrics
//     (pre-buffering time, re-buffering cycles, stalls, per-path traffic
//     split).
//
//   - The testbed: NewTestbed stands up a fully emulated environment —
//     two access networks with configurable rate/RTT/variation, and a
//     YouTube-like origin (web proxy with JSON metadata + signed tokens,
//     replicated range-serving video servers) — in which the player and
//     the single-path baselines run unmodified, in virtual time.
//
//   - The experiments: package repro/internal/bench regenerates every
//     figure and table of the paper's evaluation on this testbed (see
//     cmd/benchall and bench_test.go).
//
//   - The fleet: package repro/internal/fleet scales the testbed to
//     whole populations — a declarative Scenario spawns hundreds of
//     concurrent sessions (cohorts with their own link profiles,
//     schedulers, arrival processes and mid-session events) against one
//     origin cluster in one virtual-time world, and aggregates cohort-
//     and fleet-level QoE (pre-buffer percentiles, stall rate, traffic
//     split, Jain fairness). Each testbed client (Testbed.NewClient)
//     owns its access links, so sessions on distinct clients run
//     concurrently and deterministically. Try:
//
//     go run ./cmd/fleet -scenario flashcrowd -sessions 200 -seed 1
//
// Quick start:
//
//	tb, err := msplayer.NewTestbed(msplayer.TestbedProfile(1))
//	if err != nil { ... }
//	defer tb.Close()
//	m, err := tb.Stream(context.Background(), msplayer.SessionConfig{
//		Scheduler: msplayer.NewHarmonicScheduler(256<<10, 0.05),
//		Paths:     msplayer.BothPaths,
//	})
//	fmt.Println("pre-buffered in", m.PreBufferTime)
package msplayer

import (
	"repro/internal/core"
)

// Re-exported core types: the player configuration and result surface.
type (
	// Scheduler decides per-path chunk sizes (paper §3.3).
	Scheduler = core.Scheduler
	// BufferConfig sets pre-buffer / low-water / refill thresholds.
	BufferConfig = core.BufferConfig
	// Metrics is the result of one streaming session.
	Metrics = core.Metrics
	// PathStats is the per-path traffic accounting within Metrics.
	PathStats = core.PathStats
	// Refill records one re-buffering cycle.
	Refill = core.Refill
	// Stall records one playback underrun.
	Stall = core.Stall
	// Phase labels pre-buffering versus re-buffering traffic.
	Phase = core.Phase
	// EventedSession is the handle of a session started with
	// Client.StreamEvented (the event-loop engine).
	EventedSession = core.EventedSession
	// Resilience configures circuit breakers, health-scored source
	// selection and hedged requests per path (SessionConfig.Resilience).
	Resilience = core.Resilience
)

// Buffering phases for Metrics.Share.
const (
	PhasePreBuffer = core.PhasePreBuffer
	PhaseReBuffer  = core.PhaseReBuffer
)

// Chunk-size constants of the paper.
const (
	// MinChunk is the 16 KB floor of Alg. 1.
	MinChunk = core.MinChunk
	// DefaultBaseChunk is the 256 KB default initial chunk size.
	DefaultBaseChunk = core.DefaultBaseChunk
	// DefaultDelta is the 5% throughput-variation parameter δ.
	DefaultDelta = core.DefaultDelta
	// DefaultAlpha is the 0.9 EWMA weight α.
	DefaultAlpha = core.DefaultAlpha
)

// EnergyModel estimates radio energy (active power + per-transfer tail),
// the paper's stated future-work dimension.
type EnergyModel = core.EnergyModel

// Default radio models for the testbed networks.
var (
	// WiFiRadio is the default WiFi energy model.
	WiFiRadio = core.WiFiRadio
	// LTERadio is the default LTE energy model.
	LTERadio = core.LTERadio
)

// SessionEnergy estimates a session's radio energy in joules, total and
// per path, using per-network models (see DefaultRadios).
func SessionEnergy(m *Metrics, models map[string]EnergyModel) (total float64, perPath []float64) {
	return core.SessionEnergy(m, models)
}

// DefaultRadios maps the testbed network names to their radio models.
func DefaultRadios() map[string]EnergyModel { return core.DefaultRadios() }

// NewRatioScheduler returns the paper's baseline scheduler: base chunk B
// on the slower path, ⌈w_fast/w_slow⌉·B on the faster one.
func NewRatioScheduler(base int64) Scheduler { return core.NewRatioScheduler(base) }

// NewEWMAScheduler returns the dynamic chunk-size-adjustment scheduler
// (Alg. 1) driven by the Eq. 1 EWMA estimator.
func NewEWMAScheduler(base int64, delta, alpha float64) Scheduler {
	return core.NewEWMAScheduler(base, delta, alpha)
}

// NewHarmonicScheduler returns the dynamic chunk-size-adjustment
// scheduler driven by the Eq. 2 harmonic-mean estimator — MSPlayer's
// default configuration.
func NewHarmonicScheduler(base int64, delta float64) Scheduler {
	return core.NewHarmonicScheduler(base, delta)
}

// NewFixedScheduler returns a fixed-chunk scheduler emulating the
// commercial players the paper compares against (64 KB Adobe Flash,
// 256 KB HTML5).
func NewFixedScheduler(size int64) Scheduler { return core.NewFixedScheduler(size) }

// NewBulkScheduler returns a scheduler that requests each buffering goal
// as one large range, as commercial players do during pre-buffering.
func NewBulkScheduler() Scheduler { return core.NewBulkScheduler() }
