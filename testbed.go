package msplayer

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/handshake"
	"repro/internal/netem"
	"repro/internal/netem/trace"
	"repro/internal/origin"
	"repro/internal/videostore"
)

// LinkProfile describes one access network of the testbed.
type LinkProfile struct {
	// Name is the network name ("wifi", "lte").
	Name string
	// RateMbps is the mean access-link rate in megabits per second.
	RateMbps float64
	// RTT is the round-trip time of the access link.
	RTT time.Duration
	// Sigma is the lognormal per-interval rate variation (0 = steady).
	Sigma float64
	// VaryEvery is the rate-resample interval for the variation.
	VaryEvery time.Duration
	// Jitter adds uniform random per-segment delay in [0, Jitter).
	Jitter time.Duration
	// LossProb is the per-segment loss probability.
	LossProb float64
	// LossWindows overlays time-bounded loss storms on the link: inside a
	// window the per-segment loss probability is raised to the window's
	// value (see netem.LossWindow). Fleet scenarios compile packet-loss
	// storm faults into these.
	LossWindows []netem.LossWindow
	// Shape optionally post-processes the link's rate profile (after the
	// base rate and lognormal variation are applied), e.g. to overlay a
	// deterministic degradation window or outage. Fleet scenarios use it
	// to compile per-session mid-stream events into the link itself.
	Shape func(trace.Rate) trace.Rate
}

// Profile is a full testbed configuration.
type Profile struct {
	// WiFi and LTE are the two access networks of the paper's client.
	WiFi LinkProfile
	LTE  LinkProfile
	// Video selects the streamed clip from the default catalog.
	Video string
	// Itag selects the format (22 = 720p).
	Itag int
	// ServerDelay is extra one-way distance to the origin servers.
	ServerDelay time.Duration
	// Handshake sets the web proxy / video server Δ₁, Δ₂ terms.
	Handshake handshake.Params
	// ReplicasPerNetwork is the video-server replica count per network.
	ReplicasPerNetwork int
	// Throttle optionally enables Trickle-style server pacing.
	Throttle *origin.ThrottleConfig
	// Catalog overrides the served videos (default: reference catalog).
	Catalog *videostore.Catalog
	// Seed varies the stochastic components between repetitions. In
	// virtual-clock mode a profile is fully deterministic per seed:
	// repeated runs produce bit-identical metrics regardless of machine
	// or load, because virtual time only advances when every registered
	// emulation participant is parked.
	Seed int64
	// RealTimeScale, when > 0, runs the testbed against a scaled
	// real-time clock instead of the virtual discrete-event clock.
	// Real-time runs sleep for wall-clock time (divided by the scale)
	// and are therefore subject to OS timer granularity.
	RealTimeScale float64
	// EventLoop serves the origin cluster's eligible servers as
	// event-loop state machines instead of parked per-connection
	// goroutines (see origin.ClusterConfig.EventLoop). Wire-identical to
	// the goroutine engine; fleet runs flip it together with the evented
	// session engine to keep the whole world O(cores) in goroutines.
	EventLoop bool
}

// TestbedProfile returns the emulated-testbed configuration of §5,
// calibrated so the absolute pre-buffering times and the Table 1 WiFi
// traffic share land in the paper's range: a home-WiFi-like 9.5 Mb/s /
// 25 ms path, an LTE-like 7 Mb/s / 70 ms path (RTT 2-3× WiFi, as
// measured in the paper), and the 5-minute 720p reference clip.
func TestbedProfile(seed int64) Profile {
	return Profile{
		WiFi: LinkProfile{Name: "wifi", RateMbps: 9.5, RTT: 25 * time.Millisecond,
			Sigma: 0.22, VaryEvery: 500 * time.Millisecond},
		LTE: LinkProfile{Name: "lte", RateMbps: 7.0, RTT: 70 * time.Millisecond,
			Sigma: 0.30, VaryEvery: 400 * time.Millisecond},
		Video:              "qjT4T2gU9sM",
		Itag:               22,
		ServerDelay:        2 * time.Millisecond,
		Handshake:          handshake.Params{Delta1: 4 * time.Millisecond, Delta2: 3 * time.Millisecond},
		ReplicasPerNetwork: 2,
		Seed:               seed,
	}
}

// YouTubeProfile returns the §6 configuration: same interfaces but a
// more distant, more variable service (higher server delay and rate
// variance, occasional jitter), approximating the public YouTube
// infrastructure reached across the Internet.
func YouTubeProfile(seed int64) Profile {
	p := TestbedProfile(seed)
	p.ServerDelay = 10 * time.Millisecond
	p.WiFi.Sigma = 0.30
	p.LTE.Sigma = 0.40
	p.WiFi.Jitter = 2 * time.Millisecond
	p.LTE.Jitter = 5 * time.Millisecond
	p.Handshake = handshake.Params{Delta1: 6 * time.Millisecond, Delta2: 5 * time.Millisecond}
	return p
}

// PathSelection picks which interfaces a session uses.
type PathSelection int

// Path selections for Stream.
const (
	// BothPaths streams over WiFi and LTE simultaneously (MSPlayer).
	BothPaths PathSelection = iota
	// WiFiOnly is the single-path WiFi baseline.
	WiFiOnly
	// LTEOnly is the single-path LTE baseline.
	LTEOnly
)

// Testbed is a running emulated environment: a replicated YouTube-like
// origin plus any number of client attachments (each with its own pair
// of shaped access networks), all sharing one emulated clock. A freshly
// deployed testbed has one default client, so single-session use needs
// no extra setup; fleet runs attach one client per concurrent session
// with NewClient.
type Testbed struct {
	profile Profile
	clock   *netem.Clock
	network *netem.Network
	cluster *origin.Cluster
	client  *Client // default client (session 0)

	injectMu   sync.Mutex
	injectRels []func() // pending Inject holds, released at session start
}

// NewTestbed deploys a testbed from the profile.
func NewTestbed(p Profile) (*Testbed, error) {
	if p.Itag == 0 {
		p.Itag = 22
	}
	if p.Video == "" {
		p.Video = "qjT4T2gU9sM"
	}
	var clock *netem.Clock
	if p.RealTimeScale > 0 {
		clock = netem.NewScaledClock(p.RealTimeScale)
	} else {
		clock = netem.NewVirtualClock()
	}
	network := netem.NewNetwork(clock)
	cluster, err := origin.Deploy(network, origin.ClusterConfig{
		Catalog:            p.Catalog,
		Networks:           []string{p.WiFi.Name, p.LTE.Name},
		ReplicasPerNetwork: p.ReplicasPerNetwork,
		Handshake:          p.Handshake,
		ServerDelay:        p.ServerDelay,
		Throttle:           p.Throttle,
		EventLoop:          p.EventLoop,
	})
	if err != nil {
		clock.Stop()
		return nil, err
	}
	tb := &Testbed{profile: p, clock: clock, network: network, cluster: cluster}
	tb.client = tb.NewClient(p.WiFi, p.LTE, p.Seed)
	return tb, nil
}

// Client is one emulated subscriber attachment: its own WiFi and LTE
// access links (with their own shaping, variation and randomness seed)
// reaching the testbed's shared origin cluster over the shared clock.
// Clients are cheap and independent — a fleet run attaches hundreds —
// and sessions started on distinct clients may run concurrently.
type Client struct {
	tb   *Testbed
	wifi *netem.Interface
	lte  *netem.Interface
}

// NewClient attaches a new client with its own access links. All of the
// client's stochastic components (rate variation, jitter, loss) derive
// from seed, so a fleet of clients with distinct seeds stays
// deterministic per scenario seed. The link profiles' Name fields must
// match networks the origin cluster is deployed into (the testbed
// profile's WiFi/LTE names).
func (tb *Testbed) NewClient(wifi, lte LinkProfile, seed int64) *Client {
	return &Client{
		tb:   tb,
		wifi: tb.makeInterface(wifi, seed),
		lte:  tb.makeInterface(lte, seed+101),
	}
}

func (tb *Testbed) makeInterface(lp LinkProfile, seed int64) *netem.Interface {
	mk := func(dirSeed int64) netem.LinkParams {
		params := netem.LinkParams{
			Rate:        netem.Mbps(lp.RateMbps),
			Delay:       lp.RTT / 2,
			Jitter:      lp.Jitter,
			LossProb:    lp.LossProb,
			LossWindows: lp.LossWindows,
			SlowStart:   true,
			Seed:        dirSeed,
		}
		if lp.Sigma > 0 {
			params.Trace = trace.Lognormal(trace.Constant(netem.Mbps(lp.RateMbps)),
				lp.Sigma, lp.VaryEvery, dirSeed)
		}
		if lp.Shape != nil {
			base := params.Trace
			if base == nil {
				base = trace.Constant(netem.Mbps(lp.RateMbps))
			}
			params.Trace = lp.Shape(base)
		}
		return params
	}
	return tb.network.NewInterface(lp.Name, mk(seed), mk(seed+7))
}

// Clock exposes the testbed's emulated clock.
func (tb *Testbed) Clock() *netem.Clock { return tb.clock }

// Network exposes the underlying emulated network.
func (tb *Testbed) Network() *netem.Network { return tb.network }

// Cluster exposes the emulated YouTube origin (for failure injection).
func (tb *Testbed) Cluster() *origin.Cluster { return tb.cluster }

// Profile returns the testbed's (defaulted) profile.
func (tb *Testbed) Profile() Profile { return tb.profile }

// Client returns the testbed's default client.
func (tb *Testbed) Client() *Client { return tb.client }

// WiFi returns the default client's WiFi interface (for mobility
// injection).
func (tb *Testbed) WiFi() *netem.Interface { return tb.client.WiFi() }

// LTE returns the default client's LTE interface.
func (tb *Testbed) LTE() *netem.Interface { return tb.client.LTE() }

// WiFi returns the client's WiFi interface.
func (c *Client) WiFi() *netem.Interface { return c.wifi }

// LTE returns the client's LTE interface.
func (c *Client) LTE() *netem.Interface { return c.lte }

// Testbed returns the testbed the client is attached to.
func (c *Client) Testbed() *Testbed { return c.tb }

// Inject spawns fn on a clock-registered goroutine, for fault
// injection (Interface.SetAlive, Cluster.Kill) at deterministic virtual
// instants; fn parks through the Participant handle it receives. A
// clock hold pins virtual time until the next session starts on this
// testbed (sessions release pending holds the moment they register),
// so fn's sleeps cannot run down before the session participants
// exist. The returned release function drops the hold for the error
// path where no session ever starts; defer it:
//
//	defer tb.Inject(func(p *netem.Participant) {
//		p.Sleep(30 * time.Second)
//		tb.WiFi().SetAlive(false)
//	})()
//	m, err := tb.Stream(ctx, cfg)
func (tb *Testbed) Inject(fn func(*netem.Participant)) (release func()) {
	tb.clock.Hold()
	var once sync.Once
	rel := func() { once.Do(tb.clock.Release) }
	tb.injectMu.Lock()
	tb.injectRels = append(tb.injectRels, rel)
	tb.injectMu.Unlock()
	tb.clock.Go(fn)
	return rel
}

// sessionStarted releases pending Inject holds; wired into every
// session's OnRun so injected timelines anchor to the session start.
func (tb *Testbed) sessionStarted() {
	tb.injectMu.Lock()
	rels := tb.injectRels
	tb.injectRels = nil
	tb.injectMu.Unlock()
	for _, rel := range rels {
		rel()
	}
}

// Drain parks the caller until the origin cluster's per-connection
// loops have unwound, joining them on the emulation clock (p may be nil
// to park as a transient). Call it after every session has completed —
// session teardown aborts its connections at deterministic virtual
// instants, so the server side unwinds on the clock too — and before
// sampling Cluster().Loads(): a true return guarantees the per-server
// books are final and exact. Returns false when the clock stopped
// before the books closed.
func (tb *Testbed) Drain(p *netem.Participant) bool {
	return tb.cluster.Drain(p)
}

// Close tears the testbed down: origin servers shut down (aborting
// their connections) and the clock stops, waking any remaining sleepers
// in either clock mode. Now() is frozen at the stop instant, so
// post-close accessors (session metrics, buffer levels) read a stable
// emulated time.
func (tb *Testbed) Close() {
	tb.cluster.Close()
	tb.clock.Stop()
}

// SessionConfig configures one streaming session on a testbed.
type SessionConfig struct {
	// Scheduler is required; see the New*Scheduler constructors.
	Scheduler Scheduler
	// Paths selects MSPlayer (BothPaths) or a single-path baseline.
	Paths PathSelection
	// Buffer overrides the paper's 40/10/+10 s thresholds.
	Buffer BufferConfig
	// StopAfterPreBuffer ends the session at pre-buffer completion.
	StopAfterPreBuffer bool
	// StopAfterRefills ends the session after N re-buffering cycles.
	StopAfterRefills int
	// MaxOutOfOrder overrides the out-of-order chunk bound (default 1).
	MaxOutOfOrder int
	// Sink receives the in-order video bytes (nil to discard).
	Sink io.Writer
	// Video/Itag override the testbed profile's clip.
	Video string
	Itag  int
	// VideoServers, keyed by access-network name, overrides the
	// video-server list each path gets at bootstrap. Fleet scenarios
	// with an edge tier use it to route sessions at their cohort's
	// edge cache instead of the origin replicas.
	VideoServers map[string][]string
	// RequestTimeout bounds every request either path issues with a
	// virtual-time deadline (see core.PathConfig.RequestTimeout). Zero
	// disables deadlines, the legacy behavior.
	RequestTimeout time.Duration
	// Resilience configures per-target circuit breakers, health-scored
	// source selection and hedged range requests on every path (see
	// core.Resilience). The zero value disables all of it, the legacy
	// behavior.
	Resilience Resilience
	// Seed decorrelates the session's backoff jitter streams from other
	// sessions'; fleet runs derive it from the scenario seed and session
	// index. Zero is a valid seed.
	Seed int64
}

// NewSession builds a core player for cfg on the default client without
// starting it, for callers that need access to the player while it runs
// (examples).
func (tb *Testbed) NewSession(cfg SessionConfig) (*core.Player, error) {
	return tb.client.NewSession(cfg)
}

// Stream runs a session on the default client to completion and returns
// its metrics.
func (tb *Testbed) Stream(ctx context.Context, cfg SessionConfig) (*Metrics, error) {
	return tb.client.Stream(ctx, cfg)
}

// NewSession builds a core player for cfg on this client's access links
// without starting it. Sessions on distinct clients are independent and
// may run concurrently; each registers its own goroutines with the
// shared clock, so a fleet of sessions advances deterministically in
// one virtual-time world.
func (c *Client) NewSession(cfg SessionConfig) (*core.Player, error) {
	tb := c.tb
	video := cfg.Video
	if video == "" {
		video = tb.profile.Video
	}
	itag := cfg.Itag
	if itag == 0 {
		itag = tb.profile.Itag
	}
	wifiProxy, err := tb.cluster.ProxyAddr(c.wifi.Name())
	if err != nil {
		return nil, err
	}
	lteProxy, err := tb.cluster.ProxyAddr(c.lte.Name())
	if err != nil {
		return nil, err
	}
	wifiPath := core.PathConfig{Iface: c.wifi, ProxyAddr: wifiProxy,
		VideoServers: cfg.VideoServers[c.wifi.Name()], RequestTimeout: cfg.RequestTimeout,
		Resilience: cfg.Resilience}
	ltePath := core.PathConfig{Iface: c.lte, ProxyAddr: lteProxy,
		VideoServers: cfg.VideoServers[c.lte.Name()], RequestTimeout: cfg.RequestTimeout,
		Resilience: cfg.Resilience}
	var paths []core.PathConfig
	switch cfg.Paths {
	case BothPaths:
		paths = []core.PathConfig{wifiPath, ltePath}
	case WiFiOnly:
		paths = []core.PathConfig{wifiPath}
	case LTEOnly:
		paths = []core.PathConfig{ltePath}
	default:
		return nil, fmt.Errorf("msplayer: unknown path selection %d", cfg.Paths)
	}
	return core.NewPlayer(core.Config{
		Clock:              tb.clock,
		VideoID:            video,
		Itag:               itag,
		Scheduler:          cfg.Scheduler,
		Buffer:             cfg.Buffer,
		Paths:              paths,
		MaxOutOfOrder:      cfg.MaxOutOfOrder,
		Sink:               cfg.Sink,
		StopAfterPreBuffer: cfg.StopAfterPreBuffer,
		StopAfterRefills:   cfg.StopAfterRefills,
		OnRun:              tb.sessionStarted,
		Seed:               cfg.Seed,
	})
}

// Stream runs a session on this client to completion and returns its
// metrics. The calling goroutine must not already be registered with
// the testbed clock; registered callers (fleet sessions) use StreamAs.
func (c *Client) Stream(ctx context.Context, cfg SessionConfig) (*Metrics, error) {
	p, err := c.NewSession(cfg)
	if err != nil {
		return nil, err
	}
	return p.Run(ctx)
}

// StreamAs runs a session on this client on behalf of an
// already-registered clock participant (e.g. a fleet session goroutine
// spawned with Clock.Go): the session's top-level waits park through
// part instead of registering a second time.
func (c *Client) StreamAs(ctx context.Context, part *netem.Participant, cfg SessionConfig) (*Metrics, error) {
	p, err := c.NewSession(cfg)
	if err != nil {
		return nil, err
	}
	return p.RunAs(ctx, part)
}

// StreamEvented starts a session on this client as event-loop state
// machines on loop and returns immediately; done receives the metrics
// at the virtual instant StreamAs would have returned. The caller (or
// some other registered participant) must keep the clock alive while
// the session runs; on a stopped clock, Interrupt the returned handle
// to collect the partial result. Both engines are wire-identical and
// produce identical Metrics per seed.
func (c *Client) StreamEvented(loop *netem.Loop, cfg SessionConfig, done func(*Metrics, error)) (*EventedSession, error) {
	p, err := c.NewSession(cfg)
	if err != nil {
		return nil, err
	}
	return p.RunEvented(loop, done), nil
}
