package msplayer

import (
	"context"
	"testing"
	"time"
)

// TestScaledRealTimeMode runs a short session against the scaled
// real-time clock (the interactive demo mode) and checks that the two
// clock modes agree on the emulated outcome.
func TestScaledRealTimeMode(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time mode sleeps for real")
	}
	p := steadyProfile(9)
	// Moderate compression: at aggressive factors (>~100x) the OS timer
	// granularity (tens of microseconds per sleep) inflates emulated
	// delays; 50x keeps the distortion within ~20%.
	p.RealTimeScale = 50
	tb := newTB(t, p)
	wall := time.Now() //detlint:allow wallclock -- test measures real elapsed time of the scaled clock
	m, err := tb.Stream(context.Background(), SessionConfig{
		Scheduler:          NewHarmonicScheduler(256<<10, 0.05),
		Paths:              BothPaths,
		Buffer:             BufferConfig{PreBufferTarget: 20 * time.Second},
		StopAfterPreBuffer: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.PreBufferDone {
		t.Fatal("pre-buffering did not complete in real-time mode")
	}
	// ~4-6 emulated seconds at 50x is ~100 ms of wall time; allow
	// generous slack for timer granularity.
	if elapsed := time.Since(wall); elapsed > 10*time.Second { //detlint:allow wallclock -- test measures real elapsed time of the scaled clock
		t.Fatalf("scaled mode took %v of wall time", elapsed)
	}
	// Emulated outcome comparable to the virtual-clock mode: 20 s of
	// video over ~16 Mb/s aggregate plus bootstrap.
	if m.PreBufferTime < 2*time.Second || m.PreBufferTime > 12*time.Second {
		t.Fatalf("scaled-mode pre-buffer = %v", m.PreBufferTime)
	}
}
