package msplayer

import (
	"context"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/videostore"
)

// TestServerKillRestartReprobed: a WiFi-only session loses BOTH of its
// network's replicas, exhausts the failover list, parks in jittered
// backoff/rebootstrap — and must re-probe and recover when one replica
// restarts. The restarted instance has fresh books, so traffic on its
// second Loads row proves the session really went back to it.
func TestServerKillRestartReprobed(t *testing.T) {
	tb := newTB(t, steadyProfile(9))
	p, err := tb.NewSession(SessionConfig{
		Scheduler: NewHarmonicScheduler(256<<10, 0.05),
		Paths:     WiFiOnly,
		Video:     "shortclip01",
		Seed:      9,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Inject(func(ip *netem.Participant) {
		ip.Sleep(time.Second)
		tb.Cluster().Kill("video1.youtube.wifi.test:443")
		tb.Cluster().Kill("video2.youtube.wifi.test:443")
		ip.Sleep(2 * time.Second)
		if err := tb.Cluster().Restart("video1.youtube.wifi.test:443"); err != nil {
			t.Errorf("restart: %v", err)
		}
	})()
	m, err := p.Run(context.Background())
	if err != nil {
		t.Fatalf("stream did not recover after restart: %v", err)
	}
	v, _ := videostore.DefaultCatalog().Get("shortclip01")
	if m.TotalBytes != v.Size(videostore.HD720) {
		t.Fatalf("TotalBytes = %d, want %d", m.TotalBytes, v.Size(videostore.HD720))
	}
	wifi := m.Paths[0]
	if wifi.Failures == 0 {
		t.Error("expected failed requests while both replicas were down")
	}
	if wifi.Rebootstraps == 0 {
		t.Error("expected at least one rebootstrap after exhausting the replica list")
	}
	if !tb.Drain(nil) {
		t.Fatal("origin books did not settle")
	}
	var rows, restartedReqs int
	for _, l := range tb.Cluster().Loads() {
		if l.Addr == "video1.youtube.wifi.test:443" {
			rows++
			if rows == 2 {
				restartedReqs = int(l.Total)
			}
		}
	}
	if rows != 2 {
		t.Fatalf("video1.wifi has %d load rows, want 2 (killed instance + restarted instance)", rows)
	}
	if restartedReqs == 0 {
		t.Error("restarted replica served no requests: the path never re-probed it")
	}
}

// TestInterfaceRecoveryWakesBackoff: SetAlive(true) arriving while the
// only path is parked in backoff must not be missed — the path wakes at
// its scheduled backoff instant, retries, and the session completes
// instead of hanging. (The wake is the backoff timer, not the SetAlive:
// recovery is observed on the next retry.)
func TestInterfaceRecoveryWakesBackoff(t *testing.T) {
	tb := newTB(t, steadyProfile(3))
	p, err := tb.NewSession(SessionConfig{
		Scheduler: NewHarmonicScheduler(256<<10, 0.05),
		Paths:     WiFiOnly,
		Video:     "shortclip01",
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Down at 1 s fails the in-flight request and parks the path in
	// backoff; up again 600 ms later lands inside the backoff window
	// (250 ms, 500 ms, 1 s, ... plus jitter from the session seed).
	defer tb.Inject(func(ip *netem.Participant) {
		ip.Sleep(time.Second)
		tb.WiFi().SetAlive(false)
		ip.Sleep(600 * time.Millisecond)
		tb.WiFi().SetAlive(true)
	})()
	m, err := p.Run(context.Background())
	if err != nil {
		t.Fatalf("stream did not survive the interface flap: %v", err)
	}
	v, _ := videostore.DefaultCatalog().Get("shortclip01")
	if m.TotalBytes != v.Size(videostore.HD720) {
		t.Fatalf("TotalBytes = %d, want %d", m.TotalBytes, v.Size(videostore.HD720))
	}
	if m.Paths[0].Failures == 0 {
		t.Error("expected failed requests while the interface was down")
	}
}

// TestBlackholeDeadlineFailsOver: a blackholed replica accepts
// connections but never responds, so only the request deadline can
// unwedge the path. With RequestTimeout set the path must time out,
// fail over to the healthy replica, and finish the clip; without a
// deadline it would park forever (TestDeadlineCutsBlackholedFreshDial
// pins the exact timeout instants at the transport layer).
func TestBlackholeDeadlineFailsOver(t *testing.T) {
	tb := newTB(t, steadyProfile(7))
	p, err := tb.NewSession(SessionConfig{
		Scheduler:      NewHarmonicScheduler(256<<10, 0.05),
		Paths:          WiFiOnly,
		Video:          "shortclip01",
		RequestTimeout: 800 * time.Millisecond,
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Inject(func(ip *netem.Participant) {
		ip.Sleep(1200 * time.Millisecond)
		if err := tb.Cluster().Blackhole("video1.youtube.wifi.test:443", true); err != nil {
			t.Errorf("blackhole: %v", err)
		}
	})()
	m, err := p.Run(context.Background())
	if err != nil {
		t.Fatalf("stream wedged on the blackholed replica: %v", err)
	}
	v, _ := videostore.DefaultCatalog().Get("shortclip01")
	if m.TotalBytes != v.Size(videostore.HD720) {
		t.Fatalf("TotalBytes = %d, want %d", m.TotalBytes, v.Size(videostore.HD720))
	}
	wifi := m.Paths[0]
	if wifi.Timeouts == 0 {
		t.Error("expected at least one request-deadline expiry against the blackholed replica")
	}
	if wifi.Failovers == 0 && wifi.Rebootstraps == 0 {
		t.Error("expected a failover or rebootstrap away from the blackholed replica")
	}
}

// TestBreakerStopsPayingDeadlineOnDeadReplica: without the resilience
// layer, every rotation past a blackholed replica burns a full
// RequestTimeout budget again (the PR 8 failure mode: 401 timeouts in
// the originstorm golden). With breakers on, a dead replica costs
// deadline budget only for the strikes that open its breaker;
// afterwards selection skips it in zero virtual time (the exact
// skip/half-open instants are pinned in
// core.TestBreakerFailsFastAtSelection) and half-open probes are tiny
// hedge-bounded ranges, so the same three-second total outage must
// produce strictly fewer request-deadline expiries.
func TestBreakerStopsPayingDeadlineOnDeadReplica(t *testing.T) {
	run := func(res Resilience) *Metrics {
		tb := newTB(t, steadyProfile(7))
		p, err := tb.NewSession(SessionConfig{
			Scheduler:      NewHarmonicScheduler(256<<10, 0.05),
			Paths:          WiFiOnly,
			Video:          "shortclip01",
			RequestTimeout: 800 * time.Millisecond,
			Resilience:     res,
			Seed:           7,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Blackhole BOTH wifi replicas at 1.2 s — blind rotation now
		// burns a deadline on every attempt while the outage lasts —
		// then recover video1 three seconds later.
		defer tb.Inject(func(ip *netem.Participant) {
			ip.Sleep(1200 * time.Millisecond)
			for _, addr := range []string{"video1.youtube.wifi.test:443", "video2.youtube.wifi.test:443"} {
				if err := tb.Cluster().Blackhole(addr, true); err != nil {
					t.Errorf("blackhole: %v", err)
				}
			}
			ip.Sleep(3 * time.Second)
			if err := tb.Cluster().Blackhole("video1.youtube.wifi.test:443", false); err != nil {
				t.Errorf("recover: %v", err)
			}
		})()
		m, err := p.Run(context.Background())
		if err != nil {
			t.Fatalf("stream wedged on the blackholed replicas: %v", err)
		}
		v, _ := videostore.DefaultCatalog().Get("shortclip01")
		if m.TotalBytes != v.Size(videostore.HD720) {
			t.Fatalf("TotalBytes = %d, want %d", m.TotalBytes, v.Size(videostore.HD720))
		}
		return m
	}
	blind := run(Resilience{})
	resilient := run(Resilience{BreakerThreshold: 2, HedgeEnabled: true,
		HedgeMinSamples: 2, HedgeMultiplier: 1.25})
	b, r := blind.Paths[0], resilient.Paths[0]
	if r.BreakerOpens == 0 {
		t.Error("breaker never opened against the blackholed replicas")
	}
	if r.Timeouts >= b.Timeouts {
		t.Errorf("resilient run burned %d deadlines, blind rotation %d — breaker did not fail fast",
			r.Timeouts, b.Timeouts)
	}
}
