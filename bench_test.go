package msplayer_test

// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment from
// internal/bench with a small repetition count per iteration and
// reports the headline quantities of the paper as custom metrics
// (medians in seconds, shares in percent), so
//
//	go test -bench=. -benchmem
//
// prints a compact reproduction of the whole evaluation. cmd/benchall
// runs the same experiments with full repetition counts and prints the
// complete rows.

import (
	"context"
	"io"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/fleet"
)

// BenchmarkFleetFlashcrowd runs a reduced flash-crowd fleet per
// iteration and reports allocations — the fleet hot path's perf
// trajectory guard (CI runs it with -benchtime=1x).
func BenchmarkFleetFlashcrowd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc, err := fleet.Builtin("flashcrowd", 24, 7)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := fleet.Run(context.Background(), sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.Fleet.PreBuffer.Quantile(0.5), "prebuf_p50_s")
	}
}

// BenchmarkFleetDensecrowd is the population-density counterpart at a
// CI-friendly session count.
func BenchmarkFleetDensecrowd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc, err := fleet.Builtin("densecrowd", 100, 7)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fleet.Run(context.Background(), sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetMegacrowd exercises the 20k-session scale scenario at a
// CI-friendly population: many thousands of wheel-resident arrival
// deadlines and light SD sessions, the shape that stresses the clock's
// sharded scheduling rather than the data plane.
func BenchmarkFleetMegacrowd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc, err := fleet.Builtin("megacrowd", 500, 7)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fleet.Run(context.Background(), sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetColdedge runs the edge-cache stampede study at a
// CI-friendly population: sessions route at two cold edge caches (one
// coalescing fills, one stampeding) that fill from the origin over
// emulated backhaul, exercising the whole three-tier delivery path.
func BenchmarkFleetColdedge(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc, err := fleet.Builtin("coldedge", 40, 7)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := fleet.Run(context.Background(), sc)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Edges) == 2 {
			b.ReportMetric(rep.Edges[0].HitRatio(), "sf_hit_ratio")
			b.ReportMetric(float64(rep.Edges[1].Fills), "stampede_fills")
		}
	}
}

// benchOpt keeps per-iteration work bounded; seeds vary per iteration.
func benchOpt(i int) bench.Options { return bench.Options{Reps: 2, Seed: int64(i)*97 + 1} }

func BenchmarkFig1Handshake(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig1(io.Discard, benchOpt(i))
		if len(rows) == 3 {
			b.ReportMetric(rows[1].EtaMeasured.Seconds()*1000, "eta_theta2_ms")
			b.ReportMetric(rows[1].EtaModel.Seconds()*1000, "eta_model_ms")
			b.ReportMetric(rows[1].PsiMeasured.Seconds()*1000, "psi_theta2_ms")
		}
	}
}

func BenchmarkFig2PreBuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := bench.Fig2(io.Discard, benchOpt(i))
		if len(s) == 3 {
			b.ReportMetric(s[0].Summary.Median, "wifi_med_s")
			b.ReportMetric(s[1].Summary.Median, "lte_med_s")
			b.ReportMetric(s[2].Summary.Median, "msplayer_med_s")
		}
	}
}

func BenchmarkFig3Schedulers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells := bench.Fig3(io.Discard, bench.Options{Reps: 1, Seed: int64(i)*97 + 1})
		// Headline: harmonic vs ratio at 256KB / 40s.
		for _, c := range cells {
			if c.PreBuffer == 40*time.Second && c.Chunk == 256<<10 {
				switch c.Scheduler {
				case "harmonic":
					b.ReportMetric(c.Series.Summary.Median, "harmonic_256K_40s_s")
				case "ratio":
					b.ReportMetric(c.Series.Summary.Median, "ratio_256K_40s_s")
				}
			}
		}
	}
}

func BenchmarkFig4YouTubePreBuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig4(io.Discard, benchOpt(i))
		if len(rows) == 3 {
			b.ReportMetric(rows[1].MSPlayer.Summary.Median, "msplayer_40s_med_s")
			b.ReportMetric(rows[1].Reduction*100, "reduction_40s_pct")
		}
	}
}

func BenchmarkFig5ReBuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig5For(io.Discard, benchOpt(i), 20*time.Second)
		if len(rows) == 1 {
			b.ReportMetric(rows[0].WiFi64.Summary.Median, "wifi64_med_s")
			b.ReportMetric(rows[0].WiFi256.Summary.Median, "wifi256_med_s")
			b.ReportMetric(rows[0].MSPlayer.Summary.Median, "msplayer_med_s")
		}
	}
}

func BenchmarkTable1TrafficShare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table1(io.Discard, benchOpt(i))
		if len(rows) == 3 {
			b.ReportMetric(rows[1].PreMean*100, "wifi_pre_40s_pct")
			b.ReportMetric(rows[1].ReMean*100, "wifi_re_40s_pct")
		}
	}
}

func BenchmarkMobilityFailover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := bench.Mobility(io.Discard, bench.Options{Reps: 1, Seed: int64(i)*97 + 1})
		if len(res) == 2 {
			b.ReportMetric(res[0].MeanStallSecs, "msplayer_stall_s")
			b.ReportMetric(res[1].MeanStallSecs, "wifionly_stall_s")
		}
	}
}

func BenchmarkAblationOutOfOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := bench.AblationOutOfOrder(io.Discard, bench.Options{Reps: 1, Seed: int64(i)*97 + 1})
		if len(s) == 3 {
			b.ReportMetric(s[0].Summary.Median, "ooo1_med_s")
			b.ReportMetric(s[2].Summary.Median, "ooo16_med_s")
		}
	}
}

func BenchmarkAblationHeadStart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := bench.AblationHeadStart(io.Discard, bench.Options{Reps: 1, Seed: int64(i)*97 + 1})
		if len(s) == 2 {
			b.ReportMetric(s[0].Summary.Median, "lead_paper_s")
			b.ReportMetric(s[1].Summary.Median, "lead_theta1_s")
		}
	}
}
