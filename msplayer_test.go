package msplayer

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/videostore"
)

// steadyProfile returns a deterministic testbed (no rate variation) so
// integration assertions are tight.
func steadyProfile(seed int64) Profile {
	p := TestbedProfile(seed)
	p.WiFi.Sigma = 0
	p.LTE.Sigma = 0
	return p
}

func newTB(t *testing.T, p Profile) *Testbed {
	t.Helper()
	tb, err := NewTestbed(p)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	return tb
}

func TestPreBufferMSPlayerBeatsSinglePaths(t *testing.T) {
	times := map[PathSelection]time.Duration{}
	for _, sel := range []PathSelection{BothPaths, WiFiOnly, LTEOnly} {
		tb := newTB(t, steadyProfile(1))
		sched := NewHarmonicScheduler(256<<10, 0.05)
		if sel != BothPaths {
			sched = NewBulkScheduler()
		}
		m, err := tb.Stream(context.Background(), SessionConfig{
			Scheduler:          sched,
			Paths:              sel,
			StopAfterPreBuffer: true,
		})
		if err != nil {
			t.Fatalf("selection %d: %v", sel, err)
		}
		if !m.PreBufferDone {
			t.Fatalf("selection %d: pre-buffer did not complete", sel)
		}
		times[sel] = m.PreBufferTime
	}
	t.Logf("pre-buffer times: msplayer=%v wifi=%v lte=%v",
		times[BothPaths], times[WiFiOnly], times[LTEOnly])
	if times[BothPaths] >= times[WiFiOnly] || times[BothPaths] >= times[LTEOnly] {
		t.Fatalf("MSPlayer (%v) not faster than single paths (%v, %v)",
			times[BothPaths], times[WiFiOnly], times[LTEOnly])
	}
	// 40 s of 2.5 Mb/s video over ~17.5 Mb/s aggregate: several seconds.
	if times[BothPaths] < 4*time.Second || times[BothPaths] > 12*time.Second {
		t.Fatalf("MSPlayer pre-buffer = %v, expected 4-12 s", times[BothPaths])
	}
	// WiFi-only: 12.5 MB at ~9.5 Mb/s ≈ 11 s + bootstrap.
	if times[WiFiOnly] < 9*time.Second || times[WiFiOnly] > 16*time.Second {
		t.Fatalf("WiFi pre-buffer = %v, expected 9-16 s", times[WiFiOnly])
	}
}

func TestStreamDeliversExactBytes(t *testing.T) {
	tb := newTB(t, steadyProfile(2))
	var sink bytes.Buffer
	m, err := tb.Stream(context.Background(), SessionConfig{
		Scheduler: NewHarmonicScheduler(256<<10, 0.05),
		Paths:     BothPaths,
		Video:     "shortclip01",
		Sink:      &sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := videostore.DefaultCatalog().Get("shortclip01")
	want := v.Size(videostore.HD720)
	if m.TotalBytes != want {
		t.Fatalf("TotalBytes = %d, want %d", m.TotalBytes, want)
	}
	if int64(sink.Len()) != want {
		t.Fatalf("sink length = %d, want %d", sink.Len(), want)
	}
	// Byte-exact check against the deterministic content.
	expect := make([]byte, want)
	v.Content(videostore.HD720).ReadAt(expect, 0)
	if !bytes.Equal(sink.Bytes(), expect) {
		t.Fatal("delivered stream differs from source content")
	}
	if len(m.Stalls) != 0 {
		t.Fatalf("unexpected stalls: %+v", m.Stalls)
	}
}

func TestRefillCyclesMeasured(t *testing.T) {
	tb := newTB(t, steadyProfile(3))
	m, err := tb.Stream(context.Background(), SessionConfig{
		Scheduler:        NewHarmonicScheduler(256<<10, 0.05),
		Paths:            BothPaths,
		StopAfterRefills: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Refills) < 2 {
		t.Fatalf("refills = %d, want >= 2", len(m.Refills))
	}
	for i, r := range m.Refills {
		if r.Duration <= 0 || r.Duration > 20*time.Second {
			t.Fatalf("refill %d duration = %v", i, r.Duration)
		}
		// ~10 s of refill at 2.5 Mb/s ≈ 3.1 MB, plus up to one MaxChunk
		// of overshoot per path (the final chunk crosses the goal).
		if r.Bytes < 2<<20 || r.Bytes > 9<<20 {
			t.Fatalf("refill %d bytes = %d", i, r.Bytes)
		}
	}
}

func TestWiFiCarriesMajorityOfTraffic(t *testing.T) {
	tb := newTB(t, steadyProfile(4))
	m, err := tb.Stream(context.Background(), SessionConfig{
		Scheduler:          NewHarmonicScheduler(256<<10, 0.05),
		Paths:              BothPaths,
		StopAfterPreBuffer: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	share := m.Share("wifi", PhasePreBuffer)
	t.Logf("wifi pre-buffer share = %.3f", share)
	// WiFi is both slightly faster and bootstraps ~0.5 s earlier; the
	// paper measures ~60-64%.
	if share < 0.5 || share > 0.8 {
		t.Fatalf("wifi share = %.3f, want 0.5-0.8", share)
	}
}

func TestServerFailoverMidStream(t *testing.T) {
	tb := newTB(t, steadyProfile(5))
	p, err := tb.NewSession(SessionConfig{
		Scheduler: NewHarmonicScheduler(256<<10, 0.05),
		Paths:     BothPaths,
		Video:     "shortclip01",
	})
	if err != nil {
		t.Fatal(err)
	}
	// Kill the primary WiFi replica shortly after the stream starts.
	defer tb.Inject(func(ip *netem.Participant) {
		ip.Sleep(1500 * time.Millisecond)
		tb.Cluster().Kill("video1.youtube.wifi.test:443")
	})()
	m, err := p.Run(context.Background())
	if err != nil {
		t.Fatalf("stream failed despite failover replica: %v", err)
	}
	v, _ := videostore.DefaultCatalog().Get("shortclip01")
	if m.TotalBytes != v.Size(videostore.HD720) {
		t.Fatalf("TotalBytes = %d", m.TotalBytes)
	}
	wifi := m.Paths[0]
	if wifi.Failures == 0 {
		t.Error("expected at least one failed request on wifi")
	}
	if wifi.Failovers == 0 && wifi.Rebootstraps == 0 {
		t.Error("expected a failover or rebootstrap on wifi")
	}
}

func TestInterfaceOutageStreamSurvivesOnLTE(t *testing.T) {
	tb := newTB(t, steadyProfile(6))
	p, err := tb.NewSession(SessionConfig{
		Scheduler: NewHarmonicScheduler(256<<10, 0.05),
		Paths:     BothPaths,
		Video:     "shortclip01",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Inject(func(ip *netem.Participant) {
		ip.Sleep(1200 * time.Millisecond)
		tb.WiFi().SetAlive(false) // walk out of WiFi range, never return
	})()
	m, err := p.Run(context.Background())
	if err != nil {
		t.Fatalf("stream failed despite LTE path: %v", err)
	}
	v, _ := videostore.DefaultCatalog().Get("shortclip01")
	if m.TotalBytes != v.Size(videostore.HD720) {
		t.Fatalf("TotalBytes = %d, want full clip", m.TotalBytes)
	}
	if m.Paths[1].Bytes == 0 {
		t.Fatal("LTE carried no traffic")
	}
}

// TestSessionsAreDeterministic runs the identical stochastic session
// twice and requires bit-identical virtual-time results: the
// waiter-accounted clock advances only when every registered
// participant is parked, so nothing in the emulation depends on
// scheduling or machine load.
func TestSessionsAreDeterministic(t *testing.T) {
	run := func() *Metrics {
		tb := newTB(t, TestbedProfile(12345)) // rate variation + jitter on
		m, err := tb.Stream(context.Background(), SessionConfig{
			Scheduler:          NewHarmonicScheduler(256<<10, 0.05),
			Paths:              BothPaths,
			StopAfterPreBuffer: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if a.PreBufferTime != b.PreBufferTime {
		t.Fatalf("pre-buffer times differ across identical runs: %v vs %v",
			a.PreBufferTime, b.PreBufferTime)
	}
	if a.TotalBytes != b.TotalBytes {
		t.Fatalf("total bytes differ: %d vs %d", a.TotalBytes, b.TotalBytes)
	}
	for i := range a.Paths {
		pa, pb := a.Paths[i], b.Paths[i]
		if pa.Bytes != pb.Bytes || pa.Chunks != pb.Chunks || pa.FirstVideoByte != pb.FirstVideoByte {
			t.Fatalf("path %d stats differ: %+v vs %+v", i, pa, pb)
		}
	}
}

func TestSinglePathConfigRejected(t *testing.T) {
	tb := newTB(t, steadyProfile(7))
	if _, err := tb.Stream(context.Background(), SessionConfig{Paths: PathSelection(42),
		Scheduler: NewHarmonicScheduler(0, 0)}); err == nil {
		t.Fatal("bogus path selection accepted")
	}
	if _, err := tb.Stream(context.Background(), SessionConfig{Paths: BothPaths}); err == nil {
		t.Fatal("missing scheduler accepted")
	}
}

func TestFirstVideoByteOrderMatchesHeadStart(t *testing.T) {
	tb := newTB(t, steadyProfile(8))
	m, err := tb.Stream(context.Background(), SessionConfig{
		Scheduler:          NewHarmonicScheduler(256<<10, 0.05),
		Paths:              BothPaths,
		StopAfterPreBuffer: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	wifi, lte := m.Paths[0], m.Paths[1]
	if !wifi.FirstByteSet || !lte.FirstByteSet {
		t.Fatalf("first-byte times missing: %+v %+v", wifi, lte)
	}
	if wifi.FirstVideoByte >= lte.FirstVideoByte {
		t.Fatalf("wifi first byte (%v) should precede lte (%v)",
			wifi.FirstVideoByte, lte.FirstVideoByte)
	}
}
