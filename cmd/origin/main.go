// Command origin runs the emulated YouTube origin (web proxy + video
// servers) on real localhost TCP, so the JSON/token/range-request
// protocol can be poked with curl or a browser:
//
//	origin -addr 127.0.0.1:8080
//	curl 'http://127.0.0.1:8080/watch?v=qjT4T2gU9sM'
//	curl -H 'Range: bytes=0-1023' 'http://127.0.0.1:8080/videoplayback?...'
//
// Unlike the emulated deployment, this binary serves both roles from
// one listener and uses plain HTTP (no handshake emulation) — it exists
// to make the wire protocol inspectable, not to measure timing.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"

	"repro/internal/netem"
	"repro/internal/origin"
	"repro/internal/videostore"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	network := flag.String("network", "local", "network name embedded in tokens")
	flag.Parse()

	clock := netem.NewScaledClock(1) // real time
	defer clock.Stop()
	catalog := videostore.DefaultCatalog()
	secret := []byte("msplayer-local-origin")

	// One mux serving both the proxy role (/watch) and the video role
	// (/videoplayback): replicas are pointless on a single host.
	self := *addr
	proxy := origin.NewWebProxy(*network, catalog, func() []string { return []string{self} },
		secret, origin.TokenTTL, clock, 0)
	video := origin.NewVideoServer(self, *network, catalog, secret, clock, nil)

	mux := http.NewServeMux()
	mux.Handle("/watch", proxy.Handler())
	mux.Handle("/videoplayback", video.Handler())
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "msplayer emulated origin\nvideos:\n")
		for _, id := range catalog.IDs() {
			fmt.Fprintf(w, "  /watch?v=%s\n", id)
		}
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("origin listening on http://%s (videos: %v)", *addr, catalog.IDs())
	log.Fatal((&http.Server{Handler: mux}).Serve(l))
}
