// Command msplayer streams a video over the emulated two-path testbed
// and prints QoE metrics, exercising the full MSPlayer pipeline:
// per-network JSON bootstrap, multi-source chunk scheduling, ON/OFF
// playout buffering, and failover.
//
// Usage:
//
//	msplayer                          # defaults: harmonic, 256KB, both paths
//	msplayer -scheduler ratio -chunk 1048576
//	msplayer -paths wifi              # single-path baseline
//	msplayer -profile youtube -prebuffer 60s
//	msplayer -outage 30s              # drop WiFi mid-stream for 30s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro"
	"repro/internal/bench"
	"repro/internal/netem"
)

func main() {
	var (
		schedName = flag.String("scheduler", "harmonic", "chunk scheduler: harmonic, ewma, ratio, fixed, bulk")
		chunk     = flag.Int64("chunk", 256<<10, "initial (or fixed) chunk size in bytes")
		pathsFlag = flag.String("paths", "both", "paths to use: both, wifi, lte")
		profile   = flag.String("profile", "testbed", "environment: testbed or youtube")
		video     = flag.String("video", "qjT4T2gU9sM", "video ID from the built-in catalog")
		prebuffer = flag.Duration("prebuffer", 40*time.Second, "pre-buffering target")
		refill    = flag.Duration("refill", 10*time.Second, "refill size per re-buffering cycle")
		outage    = flag.Duration("outage", 0, "drop WiFi for this long, 30s into the stream")
		seed      = flag.Int64("seed", 1, "random seed")
		preOnly   = flag.Bool("pre-only", false, "stop after the pre-buffering phase")
	)
	flag.Parse()

	var prof msplayer.Profile
	switch *profile {
	case "testbed":
		prof = msplayer.TestbedProfile(*seed)
	case "youtube":
		prof = msplayer.YouTubeProfile(*seed)
	default:
		log.Fatalf("unknown profile %q", *profile)
	}
	tb, err := msplayer.NewTestbed(prof)
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()

	var sched msplayer.Scheduler
	switch *schedName {
	case "harmonic", "ewma", "ratio":
		sched = bench.NewSchedulerByName(*schedName, *chunk)
	case "fixed":
		sched = msplayer.NewFixedScheduler(*chunk)
	case "bulk":
		sched = msplayer.NewBulkScheduler()
	default:
		log.Fatalf("unknown scheduler %q", *schedName)
	}

	var sel msplayer.PathSelection
	switch *pathsFlag {
	case "both":
		sel = msplayer.BothPaths
	case "wifi":
		sel = msplayer.WiFiOnly
	case "lte":
		sel = msplayer.LTEOnly
	default:
		log.Fatalf("unknown path selection %q", *pathsFlag)
	}

	if *outage > 0 {
		defer tb.Inject(func(p *netem.Participant) {
			p.Sleep(30 * time.Second)
			fmt.Println("-- WiFi interface down")
			tb.WiFi().SetAlive(false)
			p.Sleep(*outage)
			fmt.Println("-- WiFi interface back up")
			tb.WiFi().SetAlive(true)
		})()
	}

	fmt.Printf("streaming %s (%s scheduler, %s paths, %s profile)\n",
		*video, *schedName, *pathsFlag, *profile)
	m, err := tb.Stream(context.Background(), msplayer.SessionConfig{
		Scheduler:          sched,
		Paths:              sel,
		Video:              *video,
		Buffer:             msplayer.BufferConfig{PreBufferTarget: *prebuffer, RefillSize: *refill},
		StopAfterPreBuffer: *preOnly,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "stream error: %v\n", err)
	}
	if m == nil {
		os.Exit(1)
	}

	fmt.Printf("\nsession summary (%s scheduler)\n", m.Scheduler)
	if m.PreBufferDone {
		fmt.Printf("  pre-buffering (%v of video): %.2fs\n", *prebuffer, m.PreBufferTime.Seconds())
	}
	fmt.Printf("  delivered: %.1f MB in %.1fs emulated\n",
		float64(m.TotalBytes)/1e6, m.Elapsed.Seconds())
	for _, p := range m.Paths {
		fmt.Printf("  path %-5s %6.1f MB in %3d chunks (%d requests, %d failures, %d failovers); first video byte after %.2fs\n",
			p.Network, float64(p.Bytes)/1e6, p.Chunks, p.Requests, p.Failures, p.Failovers,
			p.FirstVideoByte.Seconds())
	}
	if len(m.Paths) == 2 {
		fmt.Printf("  wifi traffic share: pre %.1f%%  re %.1f%%\n",
			m.Share("wifi", msplayer.PhasePreBuffer)*100,
			m.Share("wifi", msplayer.PhaseReBuffer)*100)
	}
	total, perPath := msplayer.SessionEnergy(m, msplayer.DefaultRadios())
	fmt.Printf("  radio energy: %.1f J total", total)
	for i, p := range m.Paths {
		fmt.Printf("  (%s %.1f J)", p.Network, perPath[i])
	}
	fmt.Println()
	fmt.Printf("  re-buffering cycles: %d", len(m.Refills))
	for _, r := range m.Refills {
		fmt.Printf("  %.2fs", r.Duration.Seconds())
	}
	fmt.Println()
	if len(m.Stalls) > 0 {
		fmt.Printf("  stalls: %d", len(m.Stalls))
		for _, s := range m.Stalls {
			fmt.Printf("  %.1fs", s.Duration.Seconds())
		}
		fmt.Println()
	} else {
		fmt.Println("  stalls: none")
	}
}
