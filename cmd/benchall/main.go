// Command benchall regenerates every figure and table of the MSPlayer
// paper's evaluation on the emulated testbed and prints paper-style
// rows.
//
// Usage:
//
//	benchall                  # run everything with default repetitions
//	benchall -fig 3 -reps 20  # one experiment, custom repetition count
//	benchall -table 1
//	benchall -ablation        # delta/alpha/out-of-order/head-start sweeps
//	benchall -mobility        # WiFi-outage robustness experiment
//	benchall -json            # write BENCH_fleet.json / BENCH_figs.json
//	benchall -guard BENCH_fleet.json   # fail if fleet wall time regressed >25%
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime/debug"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		fig      = flag.Int("fig", 0, "run only figure N (1, 2, 3, 4 or 5)")
		table    = flag.Int("table", 0, "run only table N (1)")
		ablation = flag.Bool("ablation", false, "run the ablation sweeps")
		mobility = flag.Bool("mobility", false, "run the WiFi-outage robustness experiment")
		reps     = flag.Int("reps", 0, "repetitions per configuration (default: per-experiment)")
		seed     = flag.Int64("seed", 1, "base random seed")
		parallel = flag.Int("parallel", 0, "concurrent testbeds (default min(4, NumCPU))")
		jsonOut  = flag.Bool("json", false, "run the perf-trajectory suite and write BENCH_fleet.json / BENCH_figs.json")
		jsonDir  = flag.String("json-dir", ".", "directory for the -json artifacts")
		flashN   = flag.Int("json-flash-sessions", 200, "-json: flashcrowd session count")
		denseN   = flag.Int("json-dense-sessions", 2000, "-json: densecrowd session count")
		megaN    = flag.Int("json-mega-sessions", 20000, "-json: megacrowd session count (0 skips it)")
		coldN    = flag.Int("json-coldedge-sessions", 200, "-json: coldedge session count (0 skips it)")
		stormN   = flag.Int("json-originstorm-sessions", 200, "-json: originstorm session count (0 skips it)")
		flapN    = flag.Int("json-edgeflap-sessions", 200, "-json: edgeflap session count (0 skips it)")
		chaosN   = flag.Int("json-chaosfleet-seeds", 5, "-json: chaosfleet sweep seed count at 150 sessions (0 skips it)")
		guard    = flag.String("guard", "", "re-run the fleet experiments of the given BENCH_fleet.json and fail on wall-time regression")
		guardMax = flag.Float64("guard-factor", 1.25, "-guard: maximum allowed wall-time factor vs the baseline")
		gogc     = flag.Int("gogc", 400, "GC target percentage, matching cmd/fleet (0 keeps the runtime default)")
	)
	flag.Parse()

	if *gogc > 0 {
		// Same GC target as cmd/fleet: fleet-scale experiments churn
		// pooled buffers, and at the megacrowd population the default
		// target makes wall time GC-bound and noisy — the guard and the
		// baselines it compares against must measure under one
		// configuration.
		debug.SetGCPercent(*gogc)
	}
	opt := bench.Options{Reps: *reps, Seed: *seed, Parallel: *parallel}
	w := os.Stdout
	start := time.Now() //detlint:allow wallclock -- benchall reports wall-clock run time by design

	if *guard != "" {
		// CI regression gate: re-run the committed baseline's fleet
		// experiments and fail when the headline wall time regresses
		// beyond the allowed factor.
		fmt.Fprintf(w, "bench guard vs %s (max %.2fx):\n", *guard, *guardMax)
		if err := bench.Guard(w, *guard, *guardMax, opt); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "guard passed in %v\n", time.Since(start).Round(time.Second)) //detlint:allow wallclock -- benchall reports wall-clock run time by design
		return
	}

	if *jsonOut {
		// The artifacts record headline metrics plus the wall time and
		// allocation cost of producing them, seeding the perf
		// trajectory future PRs measure against. Experiments run
		// sequentially so the allocation accounting is attributable.
		fmt.Fprintln(w, "fleet benchmarks:")
		fleetArt, err := bench.FleetArtifact(w, opt, *flashN, *denseN, *megaN, *coldN, *stormN, *flapN, *chaosN)
		if err != nil {
			log.Fatal(err)
		}
		if err := bench.WriteArtifact(*jsonDir+"/BENCH_fleet.json", fleetArt); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(w, "figure benchmarks:")
		figOpt := opt
		if figOpt.Reps == 0 {
			figOpt.Reps = 3
		}
		figsArt, err := bench.FigsArtifact(w, figOpt)
		if err != nil {
			log.Fatal(err)
		}
		if err := bench.WriteArtifact(*jsonDir+"/BENCH_figs.json", figsArt); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "wrote %s/BENCH_fleet.json and %s/BENCH_figs.json in %v\n",
			*jsonDir, *jsonDir, time.Since(start).Round(time.Second)) //detlint:allow wallclock -- benchall reports wall-clock run time by design
		return
	}

	// Default repetition counts chosen so a full run finishes in
	// reasonable wall time; pass -reps 20 to match the paper exactly.
	withReps := func(def int) bench.Options {
		o := opt
		if o.Reps == 0 {
			o.Reps = def
		}
		return o
	}

	all := *fig == 0 && *table == 0 && !*ablation && !*mobility
	if all || *fig == 1 {
		bench.Fig1(w, withReps(3))
	}
	if all || *fig == 2 {
		bench.Fig2(w, withReps(10))
	}
	if all || *fig == 3 {
		bench.Fig3(w, withReps(5))
	}
	if all || *fig == 4 {
		bench.Fig4(w, withReps(10))
	}
	if all || *fig == 5 {
		bench.Fig5(w, withReps(4))
	}
	if all || *table == 1 {
		bench.Table1(w, withReps(6))
	}
	if all || *mobility {
		bench.Mobility(w, withReps(3))
	}
	if all || *ablation {
		bench.AblationDelta(w, withReps(5))
		bench.AblationAlpha(w, withReps(5))
		bench.AblationOutOfOrder(w, withReps(5))
		bench.AblationHeadStart(w, withReps(5))
		bench.AblationEnergy(w, withReps(5))
	}
	fmt.Fprintf(w, "\ncompleted in %v (wall time)\n", time.Since(start).Round(time.Second)) //detlint:allow wallclock -- benchall reports wall-clock run time by design
}
