// Command detlint runs the determinism / buffer-ownership analyzer
// suite (internal/detlint) over the named packages, typically:
//
//	go run ./cmd/detlint ./...
//
// Exit status: 0 when every finding is suppressed by a
// //detlint:allow directive (or there are none), 1 on unsuppressed
// findings or malformed directives, 2 on load errors.
//
//	-suppressions  audit mode: print every //detlint:allow directive
//	               in the tree (file:line, analyzers, reason) and exit;
//	               the escape-hatch surface stays reviewable as a list.
//	-v             also print the findings each directive suppressed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/detlint"
)

func main() {
	suppressions := flag.Bool("suppressions", false, "list every //detlint:allow directive and exit")
	verbose := flag.Bool("v", false, "also print suppressed findings")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: detlint [-suppressions] [-v] packages...\n\nanalyzers:\n")
		for _, a := range detlint.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-11s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := detlint.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
		os.Exit(2)
	}

	dirs := detlint.CollectDirectives(pkgs)
	if *suppressions {
		for _, d := range dirs {
			if d.Malformed != "" {
				fmt.Printf("%s:%d: MALFORMED: %s\n", d.Pos.Filename, d.Pos.Line, d.Malformed)
				continue
			}
			fmt.Printf("%s:%d: %s -- %s\n", d.Pos.Filename, d.Pos.Line, strings.Join(d.Analyzers, ","), d.Reason)
		}
		fmt.Printf("%d suppression directives\n", len(dirs))
		return
	}

	failed := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			// A clean run over code that did not type-check proves
			// nothing, so type errors fail the check loudly.
			fmt.Fprintf(os.Stderr, "detlint: %s: type error: %v\n", pkg.PkgPath, terr)
			failed = true
		}
	}

	diags, err := detlint.RunAnalyzers(pkgs, detlint.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
		os.Exit(2)
	}
	kept, suppressed := detlint.FilterSuppressed(diags, dirs)

	for _, d := range kept {
		fmt.Println(d)
		failed = true
	}
	for _, d := range dirs {
		if d.Malformed != "" {
			fmt.Printf("%s:%d: malformed //detlint:allow: %s\n", d.Pos.Filename, d.Pos.Line, d.Malformed)
			failed = true
		}
	}
	if *verbose {
		for _, d := range suppressed {
			fmt.Printf("suppressed: %s\n", d)
		}
	}
	for _, d := range detlint.Unused(dirs) {
		// Stale escape hatches get flagged, not silently tolerated —
		// but only as a warning: analyzers sharing a line (one directive,
		// two runs) and OS-specific code make hard failure too brittle.
		fmt.Printf("warning: %s:%d: //detlint:allow %s suppresses nothing (stale?)\n",
			d.Pos.Filename, d.Pos.Line, strings.Join(d.Analyzers, ","))
	}
	fmt.Printf("detlint: %d findings, %d suppressed by %d directives across %d packages\n",
		len(kept), len(suppressed), len(dirs), len(pkgs))
	if failed {
		os.Exit(1)
	}
}
