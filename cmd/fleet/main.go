// Command fleet runs a scenario-driven multi-session simulation: N
// concurrent MSPlayer sessions, organised into cohorts, against one
// emulated origin cluster in one virtual-time world, reporting cohort-
// and fleet-level QoE (pre-buffer percentiles, stall rate, re-buffer
// cycles, traffic split, Jain fairness). Runs are deterministic per
// seed: the same scenario and seed print a byte-identical report.
//
// Usage:
//
//	fleet -list
//	fleet -scenario flashcrowd -sessions 200 -seed 1
//	fleet -scenario densecrowd -sessions 2000
//	fleet -scenario megacrowd           # 20k light sessions, the scale proof
//	fleet -scenario wifiwave -sessions 60
//	fleet -scenario coldedge -sessions 200  # edge caches: single-flight vs stampede
//	fleet -scenario edgemesh -sessions 80   # four tight edges, LRU vs LFU
//	fleet -scenario flashcrowd -cpuprofile cpu.out -memprofile mem.out
//	fleet -scenario megacrowd -engine goroutine  # bisect against the blocking engine
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"

	"repro/internal/fleet"
)

func main() {
	var (
		name       = flag.String("scenario", "flashcrowd", "built-in scenario name (see -list)")
		sessions   = flag.Int("sessions", 0, "total session count (0 = scenario default)")
		seed       = flag.Int64("seed", 1, "scenario seed; all randomness derives from it")
		engine     = flag.String("engine", fleet.EngineEventLoop, "session engine: eventloop (O(cores) goroutines, borrowed zero-copy reads) or goroutine (one goroutine per path)")
		list       = flag.Bool("list", false, "list built-in scenarios and exit")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile (taken after the run) to this file")
		gogc       = flag.Int("gogc", 400, "GC target percentage; fleet runs churn pooled buffers, so a higher target than Go's default 100 trades heap for fewer collection cycles")
	)
	flag.Parse()

	if *list {
		for _, n := range fleet.BuiltinNames() {
			sc, _ := fleet.Builtin(n, 0, 1)
			fmt.Printf("  %-12s %s (default %d sessions)\n", n, sc.Description, sc.TotalSessions())
		}
		return
	}
	if *gogc > 0 {
		debug.SetGCPercent(*gogc)
	}
	// log.Fatal / os.Exit skip deferred functions, which would leave an
	// unflushed (unreadable) CPU profile behind — and a failing run is
	// exactly the one worth profiling. Flush explicitly before every
	// exit path instead of deferring.
	stopProfile := func() {}
	fail := func(format string, args ...any) {
		stopProfile()
		fmt.Fprintf(os.Stderr, format+"\n", args...)
		os.Exit(1)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("fleet: -cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			log.Fatalf("fleet: -cpuprofile: %v", err)
		}
		stopProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}

	sc, err := fleet.Builtin(*name, *sessions, *seed)
	if err != nil {
		fail("fleet: %v", err)
	}
	sc.Engine = *engine
	report, err := fleet.Run(context.Background(), sc)
	if err != nil {
		fail("fleet: %v", err)
	}
	fmt.Print(report)
	stopProfile()

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatalf("fleet: -memprofile: %v", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatalf("fleet: -memprofile: %v", err)
		}
	}
}
