// Command fleet runs a scenario-driven multi-session simulation: N
// concurrent MSPlayer sessions, organised into cohorts, against one
// emulated origin cluster in one virtual-time world, reporting cohort-
// and fleet-level QoE (pre-buffer percentiles, stall rate, re-buffer
// cycles, traffic split, Jain fairness). Runs are deterministic per
// seed: the same scenario and seed print a byte-identical report.
//
// Usage:
//
//	fleet -list
//	fleet -scenario flashcrowd -sessions 200 -seed 1
//	fleet -scenario wifiwave -sessions 60
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/fleet"
)

func main() {
	var (
		name     = flag.String("scenario", "flashcrowd", "built-in scenario name (see -list)")
		sessions = flag.Int("sessions", 0, "total session count (0 = scenario default)")
		seed     = flag.Int64("seed", 1, "scenario seed; all randomness derives from it")
		list     = flag.Bool("list", false, "list built-in scenarios and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range fleet.BuiltinNames() {
			sc, _ := fleet.Builtin(n, 0, 1)
			fmt.Printf("  %-12s %s (default %d sessions)\n", n, sc.Description, sc.TotalSessions())
		}
		return
	}

	sc, err := fleet.Builtin(*name, *sessions, *seed)
	if err != nil {
		log.Fatal(err)
	}
	report, err := fleet.Run(context.Background(), sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(report)
}
